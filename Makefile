# CI entry points. `make check` is the gate: build everything, run the
# test suites, then smoke-test the CLI's machine-readable output.

DUNE ?= dune

.PHONY: all build test smoke smoke-parallel check bench bench-smoke clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# A real end-to-end run: generated benchmark -> pipeline -> DYNSUM ->
# metrics JSON on stdout. The python step fails the target if the blob
# is not valid JSON or lacks the per-engine counters.
smoke:
	$(DUNE) exec bin/ptsto.exe -- client --bench jack -c safecast -e dynsum --metrics-json \
	  | tail -n 1 \
	  | python3 -c 'import json,sys; m=json.load(sys.stdin); e=m["engines"][0]; \
	    assert m["schema"].startswith("ptsto.metrics/"), m; \
	    assert {"engine","steps","queries","summary_hits","summary_misses"} <= set(e), e; \
	    print("smoke ok:", e["engine"], e["steps"], "steps")'

# The same client through the parallel batch scheduler: two worker
# domains over the shared frozen PAG, validated via the parallel metrics
# blob (per-domain reports must cover every query).
smoke-parallel:
	$(DUNE) exec bin/ptsto.exe -- client --bench jack -c safecast -e dynsum --jobs 2 --metrics-json \
	  | tail -n 1 \
	  | python3 -c 'import json,sys; m=json.load(sys.stdin); \
	    assert m["schema"].startswith("ptsto.parallel-metrics/"), m; \
	    assert m["jobs"] == 2 and len(m["domains"]) == 2, m; \
	    assert sum(d["queries"] for d in m["domains"]) == m["queries"], m; \
	    print("parallel smoke ok:", m["queries"], "queries on", m["jobs"], "domains")'

check: build test smoke smoke-parallel

bench:
	$(DUNE) exec bench/main.exe

# Fast parallel-scheduler benchmark (jack, jobs 1/2); writes the
# machine-readable artefact next to the repo root.
bench-smoke:
	$(DUNE) exec bench/main.exe -- parallel_smoke \
	  | grep '^BENCH_parallel_smoke.json ' \
	  | sed 's/^BENCH_parallel_smoke.json //' > BENCH_parallel_smoke.json
	python3 -c 'import json; json.load(open("BENCH_parallel_smoke.json")); print("bench-smoke ok")'

clean:
	$(DUNE) clean

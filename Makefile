# CI entry points. `make check` is the gate: build everything, run the
# test suites, then smoke-test the CLI's machine-readable output.

DUNE ?= dune

.PHONY: all build test smoke check bench clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# A real end-to-end run: generated benchmark -> pipeline -> DYNSUM ->
# metrics JSON on stdout. The python step fails the target if the blob
# is not valid JSON or lacks the per-engine counters.
smoke:
	$(DUNE) exec bin/ptsto.exe -- client --bench jack -c safecast -e dynsum --metrics-json \
	  | tail -n 1 \
	  | python3 -c 'import json,sys; m=json.load(sys.stdin); e=m["engines"][0]; \
	    assert m["schema"].startswith("ptsto.metrics/"), m; \
	    assert {"engine","steps","queries","summary_hits","summary_misses"} <= set(e), e; \
	    print("smoke ok:", e["engine"], e["steps"], "steps")'

check: build test smoke

bench:
	$(DUNE) exec bench/main.exe

clean:
	$(DUNE) clean

# CI entry points. `make check` is the gate: build everything, run the
# test suites, then smoke-test the CLI's machine-readable output.

DUNE ?= dune

.PHONY: all build test smoke smoke-parallel smoke-parallel-steal smoke-prune smoke-check smoke-minifun smoke-supa smoke-incr smoke-serve check bench bench-smoke bench-prune-smoke bench-taint-smoke bench-taint bench-minifun bench-incr bench-serve verify clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# A real end-to-end run: generated benchmark -> pipeline -> DYNSUM ->
# metrics JSON on stdout. The python step fails the target if the blob
# is not valid JSON or lacks the per-engine counters.
smoke:
	$(DUNE) exec bin/ptsto.exe -- client --bench jack -c safecast -e dynsum --metrics-json \
	  | tail -n 1 \
	  | python3 -c 'import json,sys; m=json.load(sys.stdin); e=m["engines"][0]; \
	    assert m["schema"].startswith("ptsto.metrics/"), m; \
	    assert {"engine","steps","queries","summary_hits","summary_misses"} <= set(e), e; \
	    print("smoke ok:", e["engine"], e["steps"], "steps")'

# The same client through the parallel batch scheduler: two worker
# domains over the shared frozen PAG, validated via the parallel metrics
# blob (per-domain reports must cover every query).
smoke-parallel:
	$(DUNE) exec bin/ptsto.exe -- client --bench jack -c safecast -e dynsum --jobs 2 --metrics-json \
	  | tail -n 1 \
	  | python3 -c 'import json,sys; m=json.load(sys.stdin); \
	    assert m["schema"].startswith("ptsto.parallel-metrics/"), m; \
	    assert m["jobs"] == 2 and len(m["domains"]) == 2, m; \
	    assert sum(d["queries"] for d in m["domains"]) == m["queries"], m; \
	    print("parallel smoke ok:", m["queries"], "queries on", m["jobs"], "domains")'

# Scheduling-policy equivalence end to end: the same checker batch on
# two worker domains under work-stealing and under static sharding must
# produce byte-identical report JSON — steals may reorder who answers a
# query, never what the answer is.
smoke-parallel-steal:
	$(DUNE) exec bin/ptsto.exe -- check --bench jack --jobs 2 --schedule steal --fail-on never --report-json \
	  | tail -n 1 > /tmp/ptsto_steal_report.json
	$(DUNE) exec bin/ptsto.exe -- check --bench jack --jobs 2 --schedule static --fail-on never --report-json \
	  | tail -n 1 > /tmp/ptsto_static_report.json
	cmp /tmp/ptsto_steal_report.json /tmp/ptsto_static_report.json
	python3 -c 'import json; r=json.load(open("/tmp/ptsto_steal_report.json")); \
	  assert r["schema"].startswith("ptsto.check-report/"), r; \
	  print("parallel-steal smoke ok:", r["counts"]["total"], "findings, steal == static bytes")'

# Andersen-guided pruning end to end: the pruner must be consulted
# (prune_checks > 0), must actually cut match-edge work on refinepts
# (pruned_states > 0), and the flag must leave verdict counts unchanged.
smoke-prune:
	$(DUNE) exec bin/ptsto.exe -- client --bench jython -c nullderef -e refinepts --prune --metrics-json \
	  | tail -n 1 \
	  | python3 -c 'import json,sys; e=json.load(sys.stdin)["engines"][0]; c=e["counters"]; \
	    assert c.get("prune_checks", 0) > 0, c; \
	    assert c.get("pruned_states", 0) > 0, c; \
	    print("prune smoke ok:", c["pruned_states"], "states pruned in", c["prune_checks"], "checks")'

# The checker driver end to end on a clean benchmark. The unseeded suite
# deliberately contains bad casts and null flows for the other clients,
# so the error-free run uses the checkers it cannot trigger: taint (no
# sources/sinks without seeding) and the deadcode lint (warnings/info
# only). --fail-on error must exit 0 and the report must be valid JSON.
smoke-check:
	$(DUNE) exec bin/ptsto.exe -- check --bench jack --checker taint,deadcode --fail-on error --report-json \
	  | tail -n 1 \
	  | python3 -c 'import json,sys; r=json.load(sys.stdin); \
	    assert r["schema"].startswith("ptsto.check-report/"), r; \
	    assert r["counts"]["error"] == 0, r; \
	    assert r["counts"]["total"] == len(r["findings"]), r; \
	    print("check smoke ok:", r["counts"]["total"], "findings, 0 errors")'

# The second surface language end to end: lex/parse/closure-convert the
# committed MiniFun example, run every client over it, and let Devirtopt
# monomorphize the provably-single-target closure calls. The python step
# validates the metrics blob and that at least one site was rewritten.
smoke-minifun:
	$(DUNE) exec bin/ptsto.exe -- run --lang minifun examples/programs/closures.mf -e dynsum --metrics-json \
	  | python3 -c 'import json,sys; out=sys.stdin.read().splitlines(); \
	    m=json.loads(out[-1]); \
	    assert m["schema"].startswith("ptsto.metrics/"), m; \
	    dv=[l for l in out if l.startswith("devirtopt:")][0]; \
	    n=int(dv.split()[1].split("/")[0]); assert n >= 1, dv; \
	    print("minifun smoke ok:", n, "closure calls monomorphized")'

# The overwrite-kill micro-suite end to end: a seeded benchmark with 3
# kill shapes and 2 weak-update controls, checked under every flow-
# insensitive engine and under supa. The old engines must flag every
# kill shape (a false positive each), supa must flag none of them, and
# supa's findings must be a subset of dynsum's (report-level soundness).
smoke-supa:
	for e in norefine refinepts dynsum stasum supa; do \
	  $(DUNE) exec bin/ptsto.exe -- check --bench jack --taint-flows 2 --taint-clean 1 --taint-kill 3 --taint-weak 2 \
	    -e $$e --checker taint --fail-on never --report-json \
	    | tail -n 1 > /tmp/ptsto_supa_$$e.json || exit 1; \
	done
	python3 -c 'import json; \
	  r={e: json.load(open("/tmp/ptsto_supa_%s.json" % e)) for e in ["norefine","refinepts","dynsum","stasum","supa"]}; \
	  keys=lambda e: {(f["method"], f["line"], f["message"]) for f in r[e]["findings"]}; \
	  old=["norefine","refinepts","dynsum","stasum"]; \
	  assert all(keys(e) == keys("dynsum") for e in old), "flow-insensitive engines disagree"; \
	  killed=keys("dynsum") - keys("supa"); \
	  assert len(killed) == 3 and all("TaintKill" in m for (m, _, _) in killed), killed; \
	  assert keys("supa") <= keys("dynsum"), "supa found something dynsum did not"; \
	  assert all(any("TaintWeak%d" % i in m for (m, _, _) in keys("supa")) for i in range(2)), keys("supa"); \
	  print("supa smoke ok:", len(keys("dynsum")), "findings flow-insensitive,", len(keys("supa")), "under supa; 3 kill FPs removed, weak controls kept")'

# Incremental editing end to end: seeded edit bursts applied in place,
# each burst's query verdicts and check reports compared against a
# from-scratch rebuild (byte-identity across engines x prune x jobs),
# with summary retention > 0 proving the invalidation is targeted
# rather than a cache wipe. A non-zero exit from `ptsto edit` already
# means an equivalence failure; the python step re-asserts the blob.
smoke-incr:
	$(DUNE) exec bin/ptsto.exe -- edit --bench jack --bursts 2 --edits 6 --seed 7 --report-jobs 1,2 --json \
	  | tail -n 1 \
	  | python3 -c 'import json,sys; r=json.load(sys.stdin); \
	    assert r["schema"].startswith("ptsto.edit/"), r; \
	    assert r["ok"], r; \
	    assert all(b["hash_equal"] and b["verdicts_equal"] and b["reports_equal"] for b in r["bursts"]), r; \
	    assert r["retained"] > 0, r; \
	    print("incr smoke ok:", len(r["bursts"]), "bursts,", r["retained"], "summaries retained, reports byte-equal")'

# The daemon end to end: a scripted request mix (query, full check, an
# edit burst, the query again post-edit, stats, shutdown) piped through
# `ptsto serve` on stdin. The embedded verdicts/report objects must
# equal the one-shot CLI's --verdicts-json / --report-json outputs, and
# the edit must bump the epoch every later response carries.
smoke-serve:
	printf '{"op":"query","client":"safecast","id":1}\n{"op":"check","id":2}\n{"op":"edit","edits":4,"seed":7,"id":3}\n{"op":"query","client":"safecast","id":4}\n{"op":"stats","id":5}\n{"op":"shutdown","id":6}\n' \
	  | $(DUNE) exec bin/ptsto.exe -- serve --bench jack > /tmp/ptsto_serve_out.jsonl
	$(DUNE) exec bin/ptsto.exe -- client --bench jack -c safecast -e dynsum --verdicts-json \
	  | tail -n 1 > /tmp/ptsto_serve_ref_verdicts.json
	$(DUNE) exec bin/ptsto.exe -- check --bench jack --fail-on never --report-json \
	  | tail -n 1 > /tmp/ptsto_serve_ref_report.json
	python3 -c 'import json; \
	  resp={r["id"]: r for r in (json.loads(l) for l in open("/tmp/ptsto_serve_out.jsonl") if l.strip())}; \
	  v=json.load(open("/tmp/ptsto_serve_ref_verdicts.json")); \
	  r=json.load(open("/tmp/ptsto_serve_ref_report.json")); \
	  assert resp[1]["ok"] and resp[1]["verdicts"] == v, "verdicts differ from one-shot CLI"; \
	  assert resp[2]["ok"] and resp[2]["report"] == r, "report differs from one-shot CLI"; \
	  assert resp[3]["ok"] and resp[3]["epoch"] == 1, resp[3]; \
	  assert resp[4]["ok"] and resp[4]["epoch"] == 1, resp[4]; \
	  assert resp[5]["ok"] and resp[6]["ok"], (resp[5], resp[6]); \
	  assert resp[5]["base"]["size"] > 0, resp[5]; \
	  print("serve smoke ok: verdicts+report match one-shot CLI, epoch", resp[4]["epoch"], "after edit")'

check: build test smoke smoke-parallel smoke-parallel-steal smoke-prune smoke-check smoke-minifun smoke-supa smoke-incr smoke-serve

bench:
	$(DUNE) exec bench/main.exe

# Fast parallel-scheduler benchmark (jack, jobs 1/2, static + steal);
# writes the machine-readable artefact next to the repo root. Only the
# deterministic columns are asserted — set-equality across every
# schedule/jobs configuration — because wall-clock ratios are noise on
# shared CI runners (the committed artefact carries the measured ones).
bench-smoke:
	$(DUNE) exec bench/main.exe -- parallel_smoke \
	  | grep '^BENCH_parallel_smoke.json ' \
	  | sed 's/^BENCH_parallel_smoke.json //' > BENCH_parallel_smoke.json
	python3 -c 'import json; \
	  rows=json.load(open("BENCH_parallel_smoke.json"))["rows"]; \
	  assert all(r["set_equal_vs_first"] for r in rows), rows; \
	  assert {"static","steal"} == {r["schedule"] for r in rows}, rows; \
	  assert all("steals" in r and "predicted_cost_corr" in r for r in rows), rows; \
	  print("bench-smoke ok:", len(rows), "rows, all schedules set-equal")'

# Pruning-on/off ratios on one benchmark (jython, NullDeref + alias
# pairs); writes the machine-readable artefact next to the repo root.
bench-prune-smoke:
	$(DUNE) exec bench/main.exe -- prune_smoke \
	  | grep '^BENCH_prune_smoke.json ' \
	  | sed 's/^BENCH_prune_smoke.json //' > BENCH_prune_smoke.json
	python3 -c 'import json; \
	  rows=json.load(open("BENCH_prune_smoke.json"))["rows"]; \
	  assert all(r["verdicts_equal"] for r in rows), rows; \
	  assert any(r["steps_on"] < r["steps_off"] for r in rows), rows; \
	  print("bench-prune-smoke ok:", len(rows), "rows, verdicts equal, steps reduced")'

# Taint checker precision/recall on one seeded benchmark with kill/weak
# shapes; recall must be 1.0 everywhere, the flow-insensitive engines
# must report exactly the kill shapes as false positives, supa must
# report none, and the report JSON must be byte-identical within each
# verdict family across job counts.
bench-taint-smoke:
	$(DUNE) exec bench/main.exe -- taint_smoke \
	  | grep '^BENCH_taint_smoke.json ' \
	  | sed 's/^BENCH_taint_smoke.json //' > BENCH_taint_smoke.json
	python3 -c 'import json; \
	  rows=json.load(open("BENCH_taint_smoke.json"))["rows"]; \
	  assert all(r["recall"] == 1.0 for r in rows), rows; \
	  assert all(r["report_equal_in_family"] for r in rows), rows; \
	  supa=[r for r in rows if r["engine"] == "supa"]; rest=[r for r in rows if r["engine"] != "supa"]; \
	  assert supa and all(r["fp"] == 0 for r in supa), supa; \
	  assert rest and all(r["fp"] == r["kill"] > 0 for r in rest), rest; \
	  assert all(r["precision"] > max(x["precision"] for x in rest) for r in supa), rows; \
	  print("bench-taint-smoke ok:", len(rows), "rows, recall 1.0, supa kills all", rest[0]["kill"], "kill-shape FPs")'

# The full three-benchmark taint precision study (the committed
# BENCH_taint.json); same bars as the smoke, at flows 8 / clean 8 /
# kill 4 / weak 3 across jobs 1/2/4.
bench-taint:
	$(DUNE) exec bench/main.exe -- taint \
	  | grep '^BENCH_taint.json ' \
	  | sed 's/^BENCH_taint.json //' > BENCH_taint.json
	python3 -c 'import json; \
	  rows=json.load(open("BENCH_taint.json"))["rows"]; \
	  assert all(r["recall"] == 1.0 for r in rows), rows; \
	  assert all(r["report_equal_in_family"] for r in rows), rows; \
	  supa=[r for r in rows if r["engine"] == "supa"]; rest=[r for r in rows if r["engine"] != "supa"]; \
	  assert supa and all(r["fp"] == 0 for r in supa), supa; \
	  assert rest and all(r["fp"] == r["kill"] > 0 for r in rest), rest; \
	  assert all(r["precision"] > max(x["precision"] for x in rest) for r in supa), rows; \
	  print("bench-taint ok:", len(rows), "rows, recall 1.0, supa strictly more precise on kill shapes")'

# Cross-frontend parity and Devirtopt rewrite counts per engine on the
# matched MiniJava/MiniFun pair suite; writes the committed artefact.
bench-minifun:
	$(DUNE) exec bench/main.exe -- minifun \
	  | grep '^BENCH_minifun.json ' \
	  | sed 's/^BENCH_minifun.json //' > BENCH_minifun.json
	python3 -c 'import json; \
	  rows=json.load(open("BENCH_minifun.json"))["rows"]; \
	  assert all(r["verdicts_unchanged"] for r in rows), rows; \
	  assert all(r["beyond_cha"] >= 1 for r in rows), rows; \
	  assert all(r["fix_converged"] and 1 <= r["fix_iterations"] <= 5 for r in rows), rows; \
	  assert all(e == sorted(e, reverse=True) for e in (r["fix_pag_edges"] for r in rows)), rows; \
	  print("bench-minifun ok:", len(rows), "rows, verdicts stable, fixpoint converged, PAG never grows")'

# Incremental-vs-rebuild ratios per edit-script size (jack); writes the
# committed artefact. Asserted: every burst's equivalence booleans, a
# positive retention fraction on the small edit scripts, and at least
# one burst where the incremental path beat the full rebuild.
bench-incr:
	$(DUNE) exec bench/main.exe -- incr \
	  | grep '^BENCH_incr.json ' \
	  | sed 's/^BENCH_incr.json //' > BENCH_incr.json
	python3 -c 'import json; \
	  rows=json.load(open("BENCH_incr.json"))["rows"]; \
	  assert all(r["hash_equal"] and r["verdicts_equal"] and r["reports_equal"] for r in rows), rows; \
	  small=[r for r in rows if r["edits_per_burst"] <= 8]; \
	  assert all(r["retention_fraction"] > 0 for r in small), small; \
	  assert any(r["wall_ratio_incr_vs_rebuild"] < 1.0 for r in rows), rows; \
	  print("bench-incr ok:", len(rows), "rows, equivalence holds, retention > 0 on small scripts")'

# Daemon equivalence matrix + sustained-throughput phases (jack and
# soot-c); writes the committed artefact. Asserted: every equivalence
# cell byte-equal (engines x prune x pre/post-edit), qps and latency
# percentiles in every row, and the cross-request tier buying at least
# 1.5x warm-over-cold throughput on one suite (wall-clock, so only the
# committed artefact's measured ratio is held to the bar; CI re-asserts
# the deterministic columns and a ratio > 1 sanity floor).
bench-serve:
	$(DUNE) exec bench/main.exe -- serve \
	  | grep '^BENCH_serve.json ' \
	  | sed 's/^BENCH_serve.json //' > BENCH_serve.json
	python3 -c 'import json; \
	  rows=json.load(open("BENCH_serve.json"))["rows"]; \
	  eq=[r for r in rows if r["phase"] == "equivalence"]; \
	  assert eq and all(r["query_equal"] and r["check_equal"] for r in eq), eq; \
	  assert all("qps" in r and "p50_ms" in r and "p99_ms" in r for r in rows), rows; \
	  ratios=[r["warm_vs_cold_qps"] for r in rows if "warm_vs_cold_qps" in r]; \
	  assert ratios and max(ratios) > 1.0, ratios; \
	  print("bench-serve ok:", len(eq), "equivalence cells byte-equal, warm/cold", round(max(ratios), 2))'

# Tier-1 plus the smokes in one command. bench-taint is the full
# three-benchmark precision study — it regenerates the committed
# BENCH_taint.json so the supa precision gap is re-measured, not stale.
verify: check bench-smoke bench-prune-smoke bench-taint-smoke bench-taint bench-minifun bench-incr bench-serve

clean:
	$(DUNE) clean

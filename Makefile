# CI entry points. `make check` is the gate: build everything, run the
# test suites, then smoke-test the CLI's machine-readable output.

DUNE ?= dune

.PHONY: all build test smoke smoke-parallel smoke-prune check bench bench-smoke bench-prune-smoke verify clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# A real end-to-end run: generated benchmark -> pipeline -> DYNSUM ->
# metrics JSON on stdout. The python step fails the target if the blob
# is not valid JSON or lacks the per-engine counters.
smoke:
	$(DUNE) exec bin/ptsto.exe -- client --bench jack -c safecast -e dynsum --metrics-json \
	  | tail -n 1 \
	  | python3 -c 'import json,sys; m=json.load(sys.stdin); e=m["engines"][0]; \
	    assert m["schema"].startswith("ptsto.metrics/"), m; \
	    assert {"engine","steps","queries","summary_hits","summary_misses"} <= set(e), e; \
	    print("smoke ok:", e["engine"], e["steps"], "steps")'

# The same client through the parallel batch scheduler: two worker
# domains over the shared frozen PAG, validated via the parallel metrics
# blob (per-domain reports must cover every query).
smoke-parallel:
	$(DUNE) exec bin/ptsto.exe -- client --bench jack -c safecast -e dynsum --jobs 2 --metrics-json \
	  | tail -n 1 \
	  | python3 -c 'import json,sys; m=json.load(sys.stdin); \
	    assert m["schema"].startswith("ptsto.parallel-metrics/"), m; \
	    assert m["jobs"] == 2 and len(m["domains"]) == 2, m; \
	    assert sum(d["queries"] for d in m["domains"]) == m["queries"], m; \
	    print("parallel smoke ok:", m["queries"], "queries on", m["jobs"], "domains")'

# Andersen-guided pruning end to end: the pruner must be consulted
# (prune_checks > 0), must actually cut match-edge work on refinepts
# (pruned_states > 0), and the flag must leave verdict counts unchanged.
smoke-prune:
	$(DUNE) exec bin/ptsto.exe -- client --bench jython -c nullderef -e refinepts --prune --metrics-json \
	  | tail -n 1 \
	  | python3 -c 'import json,sys; e=json.load(sys.stdin)["engines"][0]; c=e["counters"]; \
	    assert c.get("prune_checks", 0) > 0, c; \
	    assert c.get("pruned_states", 0) > 0, c; \
	    print("prune smoke ok:", c["pruned_states"], "states pruned in", c["prune_checks"], "checks")'

check: build test smoke smoke-parallel smoke-prune

bench:
	$(DUNE) exec bench/main.exe

# Fast parallel-scheduler benchmark (jack, jobs 1/2); writes the
# machine-readable artefact next to the repo root.
bench-smoke:
	$(DUNE) exec bench/main.exe -- parallel_smoke \
	  | grep '^BENCH_parallel_smoke.json ' \
	  | sed 's/^BENCH_parallel_smoke.json //' > BENCH_parallel_smoke.json
	python3 -c 'import json; json.load(open("BENCH_parallel_smoke.json")); print("bench-smoke ok")'

# Pruning-on/off ratios on one benchmark (jython, NullDeref + alias
# pairs); writes the machine-readable artefact next to the repo root.
bench-prune-smoke:
	$(DUNE) exec bench/main.exe -- prune_smoke \
	  | grep '^BENCH_prune_smoke.json ' \
	  | sed 's/^BENCH_prune_smoke.json //' > BENCH_prune_smoke.json
	python3 -c 'import json; \
	  rows=json.load(open("BENCH_prune_smoke.json"))["rows"]; \
	  assert all(r["verdicts_equal"] for r in rows), rows; \
	  assert any(r["steps_on"] < r["steps_off"] for r in rows), rows; \
	  print("bench-prune-smoke ok:", len(rows), "rows, verdicts equal, steps reduced")'

# Tier-1 plus both smokes in one command.
verify: check bench-smoke bench-prune-smoke

clean:
	$(DUNE) clean

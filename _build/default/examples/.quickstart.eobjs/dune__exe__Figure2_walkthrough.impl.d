examples/figure2_walkthrough.ml: Budget Dynsum Engine Ir List Printf Pts_andersen Pts_clients Pts_util Pts_workload Query String

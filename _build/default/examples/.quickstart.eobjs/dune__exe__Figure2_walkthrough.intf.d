examples/figure2_walkthrough.mli:

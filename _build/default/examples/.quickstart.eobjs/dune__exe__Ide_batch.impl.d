examples/ide_batch.ml: Dynsum List Printf Pts_clients Pts_workload Sys

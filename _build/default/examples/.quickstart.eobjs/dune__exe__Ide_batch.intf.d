examples/ide_batch.mli:

examples/quickstart.ml: Array Dynsum Ir List Pag Printf Pts_andersen Pts_clients Pts_util Query String Types

examples/quickstart.mli:

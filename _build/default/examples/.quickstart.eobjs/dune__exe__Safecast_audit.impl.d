examples/safecast_audit.ml: Array Ast Dynsum Frontend Ir List Printf Pts_clients Pts_workload Query Sys Types Unix

examples/safecast_audit.mli:

(* The paper's running example (Figure 2 / Table 1): a Vector used by two
   Clients under different calling contexts. Shows that all four engines
   give the paper's context-sensitive answer — s1 -> {Integer},
   s2 -> {String} — and that DYNSUM answers s2 largely from the summaries
   it computed for s1.

     dune exec examples/figure2_walkthrough.exe *)

let () =
  print_string Pts_workload.Figure2.source;
  let pl = Pts_workload.Figure2.pipeline () in
  let pag = pl.Pts_clients.Pipeline.pag in
  let prog = pl.Pts_clients.Pipeline.prog in
  let s1 = Pts_workload.Figure2.s1 pl in
  let s2 = Pts_workload.Figure2.s2 pl in

  let show engine_name outcome =
    match outcome with
    | Query.Exceeded -> Printf.printf "  %-10s budget exceeded\n" engine_name
    | Query.Resolved ts ->
      Printf.printf "  %-10s {%s}\n" engine_name
        (String.concat ", " (List.map (Ir.alloc_name prog) (Query.sites ts)))
  in

  Printf.printf "\n-- all four engines, query s1 then s2 --\n";
  List.iter
    (fun (e : Engine.engine) ->
      Printf.printf "%s:\n" e.Engine.name;
      show "s1" (e.Engine.points_to s1);
      show "s2" (e.Engine.points_to s2))
    (Pts_clients.Pipeline.engines ~with_stasum:true pl);

  Printf.printf "\n-- DYNSUM reuse between the two queries --\n";
  let dynsum = Dynsum.create pag in
  let budget = Dynsum.budget dynsum in
  ignore (Dynsum.points_to dynsum s1);
  let steps_s1 = Budget.total_steps budget in
  let sum_s1 = Dynsum.summary_count dynsum in
  let hits_s1 = Pts_util.Stats.get (Dynsum.stats dynsum) "cache_hits" in
  ignore (Dynsum.points_to dynsum s2);
  let steps_s2 = Budget.total_steps budget - steps_s1 in
  let hits_s2 = Pts_util.Stats.get (Dynsum.stats dynsum) "cache_hits" - hits_s1 in
  Printf.printf "query s1: %4d steps, %d summaries computed\n" steps_s1 sum_s1;
  Printf.printf "query s2: %4d steps, %d summaries total, %d cache hits\n" steps_s2
    (Dynsum.summary_count dynsum) hits_s2;
  Printf.printf
    "(the paper's Table 1: s1 takes 23 traversal steps, s2 only 15 because the\n\
    \ Vector summaries computed for s1 are reused under c2's calling context)\n";

  Printf.printf "\n-- the Andersen (Spark-substitute) baseline merges the contexts --\n";
  List.iter
    (fun (name, node) ->
      let sites = Pts_util.Bitset.to_list (Pts_andersen.Solver.points_to pl.Pts_clients.Pipeline.solver node) in
      Printf.printf "  %s -> {%s}\n" name (String.concat ", " (List.map (Ir.alloc_name prog) sites)))
    [ ("s1", s1); ("s2", s2) ]

(* Quickstart: compile a MiniJava program, build its PAG, and answer
   demand points-to queries with DYNSUM.

     dune exec examples/quickstart.exe *)

let program =
  {|
class Animal { Animal() {} String speak() { return "..."; } }
class Dog extends Animal { Dog() {} String speak() { return "woof"; } }
class Cat extends Animal { Cat() {} String speak() { return "meow"; } }

class Kennel {
  Animal resident;
  Kennel() {}
  void admit(Animal a) { this.resident = a; }
  Animal release() { return this.resident; }
}

class Main {
  static void main() {
    Kennel k1 = new Kennel();
    k1.admit(new Dog());
    Kennel k2 = new Kennel();
    k2.admit(new Cat());
    Animal who1 = k1.release();
    Animal who2 = k2.release();
  }
}
|}

let () =
  (* 1. compile: parse, check, lower to the three-address IR *)
  let pipeline = Pts_clients.Pipeline.of_source program in
  let pag = pipeline.Pts_clients.Pipeline.pag in
  let prog = pipeline.Pts_clients.Pipeline.prog in
  Printf.printf "compiled: %d methods, %d allocation sites, locality %.0f%%\n\n"
    (Array.length prog.Ir.methods) (Array.length prog.Ir.allocs)
    (100.0 *. Pag.locality pag);

  (* 2. create a DYNSUM engine; its summary cache persists across queries *)
  let dynsum = Dynsum.create pag in

  (* 3. issue demand queries *)
  List.iter
    (fun var ->
      let node = Pts_clients.Pipeline.find_local pipeline ~meth_pretty:"Main.main" ~var in
      match Dynsum.points_to dynsum node with
      | Query.Exceeded -> Printf.printf "%s: budget exceeded\n" var
      | Query.Resolved targets ->
        Printf.printf "%s may point to: %s\n" var
          (String.concat ", "
             (List.map
                (fun site -> Types.class_name prog.Ir.ctable prog.Ir.allocs.(site).Ir.alloc_cls)
                (Query.sites targets))))
    [ "who1"; "who2" ];

  (* 4. the context-sensitive answer separates the two kennels — an
     Andersen-style whole-program analysis cannot: *)
  let who1 = Pts_clients.Pipeline.find_local pipeline ~meth_pretty:"Main.main" ~var:"who1" in
  let andersen = Pts_andersen.Solver.points_to pipeline.Pts_clients.Pipeline.solver who1 in
  Printf.printf "\n(Andersen merges both kennels: who1 -> {%s})\n"
    (String.concat ", "
       (List.map
          (fun site -> Types.class_name prog.Ir.ctable prog.Ir.allocs.(site).Ir.alloc_cls)
          (Pts_util.Bitset.to_list andersen)));
  Printf.printf "summaries cached: %d (reused by any later query, in any context)\n"
    (Dynsum.summary_count dynsum)

lib/andersen/solver.ml: Array Builder Bytes Callgraph Hashtbl Ir List Pag Pts_util Queue Types

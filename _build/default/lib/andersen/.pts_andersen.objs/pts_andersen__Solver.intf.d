lib/andersen/solver.mli: Callgraph Ir Pag Pts_util

module Bitset = Pts_util.Bitset
module Stats = Pts_util.Stats

type t = {
  prog : Ir.program;
  pag : Pag.t;
  cg : Callgraph.t;
  n_fields : int;
  (* Units are PAG nodes first, then dynamically-created (object, field)
     cells. All growable arrays are indexed by unit id. *)
  mutable pts : Bitset.t array;
  mutable dyn_copy : int list array;
  mutable n_units : int;
  copy_dedup : (int * int, unit) Hashtbl.t;
  cells : (int, int) Hashtbl.t; (* site * n_fields + fld -> unit *)
  (* objects already subscribed (loads/stores/dispatch) per base node *)
  base_done : (int, Bitset.t) Hashtbl.t;
  virtuals_at : (int, Builder.call_desc list ref) Hashtbl.t;
  connected : (int * int, unit) Hashtbl.t; (* (site, target method) *)
  reachable : bool array;
  queue : int Queue.t;
  mutable queued : Bytes.t;
  stats : Stats.t;
}

let grow_units t needed =
  let cap = Array.length t.pts in
  if needed > cap then begin
    let ncap = max (2 * cap) needed in
    let pts = Array.make ncap (Bitset.create ~capacity:1 ()) in
    Array.blit t.pts 0 pts 0 t.n_units;
    for i = t.n_units to ncap - 1 do
      pts.(i) <- Bitset.create ~capacity:16 ()
    done;
    t.pts <- pts;
    let dyn = Array.make ncap [] in
    Array.blit t.dyn_copy 0 dyn 0 t.n_units;
    t.dyn_copy <- dyn;
    let queued = Bytes.make ncap '\000' in
    Bytes.blit t.queued 0 queued 0 (Bytes.length t.queued);
    t.queued <- queued
  end

let push t u =
  if Bytes.get t.queued u = '\000' then begin
    Bytes.set t.queued u '\001';
    Queue.add u t.queue
  end

let cell t site fld =
  let key = (site * t.n_fields) + fld in
  match Hashtbl.find_opt t.cells key with
  | Some u -> u
  | None ->
    let u = t.n_units in
    grow_units t (u + 1);
    t.n_units <- u + 1;
    Hashtbl.add t.cells key u;
    Stats.bump t.stats "cells";
    u

let add_copy t src dst =
  if not (Hashtbl.mem t.copy_dedup (src, dst)) then begin
    Hashtbl.add t.copy_dedup (src, dst) ();
    t.dyn_copy.(src) <- dst :: t.dyn_copy.(src);
    Stats.bump t.stats "copy_edges";
    if Bitset.union_into ~dst:t.pts.(dst) t.pts.(src) then push t dst
  end

let seed_obj t site dst_node =
  let obj = Pag.obj_node t.pag site in
  ignore (Bitset.add t.pts.(obj) site);
  if Bitset.add t.pts.(dst_node) site then push t dst_node

(* Connect one call edge: wire PAG entry/exit edges, record the call-graph
   edge, activate the callee, and requeue every populated source endpoint so
   the new edges are (re)propagated. *)
let rec connect t (cd : Builder.call_desc) target_mid =
  if not (Hashtbl.mem t.connected (cd.Builder.cd_site, target_mid)) then begin
    Hashtbl.add t.connected (cd.Builder.cd_site, target_mid) ();
    activate t target_mid;
    let target = t.prog.Ir.methods.(target_mid) in
    Builder.connect_call t.pag cd ~target;
    ignore (Callgraph.add_edge t.cg ~site:cd.Builder.cd_site ~caller:cd.Builder.cd_caller ~target:target_mid);
    (match Builder.receiver_node t.pag cd with Some r -> push t r | None -> ());
    (match cd.Builder.cd_kind with
    | Ir.Ctor { recv; _ } -> push t (Pag.local_node t.pag ~meth:cd.Builder.cd_caller ~var:recv)
    | Ir.Virtual _ | Ir.Static _ -> ());
    List.iter (fun a -> push t a) cd.Builder.cd_args;
    List.iter (fun r -> push t r) (Builder.return_nodes t.pag target)
  end

and activate t mid =
  if not t.reachable.(mid) then begin
    t.reachable.(mid) <- true;
    Stats.bump t.stats "reachable_methods";
    let descs = Builder.add_method_body t.pag mid in
    (* seed allocations and requeue accessed globals *)
    let m = t.prog.Ir.methods.(mid) in
    List.iter
      (fun instr ->
        match instr with
        | Ir.Alloc { dst; site; _ } -> seed_obj t site (Pag.local_node t.pag ~meth:mid ~var:dst)
        | Ir.Load_global { glb; _ } -> push t (Pag.global_node t.pag glb)
        | Ir.Move _ | Ir.Load _ | Ir.Store _ | Ir.Store_global _ | Ir.Call _ | Ir.Return _
        | Ir.Cast_move _ ->
          ())
      m.Ir.body;
    List.iter
      (fun (cd : Builder.call_desc) ->
        match cd.Builder.cd_kind with
        | Ir.Static { target } -> connect t cd target.Types.ms_id
        | Ir.Ctor { ctor; _ } -> connect t cd ctor.Types.ms_id
        | Ir.Virtual _ -> (
          match Builder.receiver_node t.pag cd with
          | Some recv ->
            (match Hashtbl.find_opt t.virtuals_at recv with
            | Some r -> r := cd :: !r
            | None -> Hashtbl.add t.virtuals_at recv (ref [ cd ]));
            push t recv
          | None -> assert false))
      descs
  end

let dispatch t recv_node site_id cd =
  ignore recv_node;
  let ctable = t.prog.Ir.ctable in
  let cls = (t.prog.Ir.allocs.(site_id)).Ir.alloc_cls in
  if cls <> Types.null_class ctable then begin
    match cd.Builder.cd_kind with
    | Ir.Virtual { mname; _ } -> (
      match Types.lookup_method ctable cls mname with
      | Some target -> connect t cd target.Types.ms_id
      | None -> () (* receiver class cannot answer: statically dead combination *))
    | Ir.Static _ | Ir.Ctor _ -> ()
  end

let process t u =
  Stats.bump t.stats "propagations";
  let pts_u = t.pts.(u) in
  let propagate dst = if Bitset.union_into ~dst:t.pts.(dst) pts_u then push t dst in
  if u < Pag.node_count t.pag then begin
    (* static copy edges from the PAG *)
    List.iter propagate (Pag.assign_out t.pag u);
    List.iter propagate (Pag.global_out t.pag u);
    List.iter (fun (_, w) -> propagate w) (Pag.entry_out t.pag u);
    List.iter (fun (_, w) -> propagate w) (Pag.exit_out t.pag u);
    (* complex constraints: u as a load/store base or virtual receiver *)
    let loads = Pag.load_out t.pag u in
    let stores = Pag.store_in t.pag u in
    let virtuals =
      match Hashtbl.find_opt t.virtuals_at u with Some r -> !r | None -> []
    in
    if loads <> [] || stores <> [] || virtuals <> [] then begin
      let processed =
        match Hashtbl.find_opt t.base_done u with
        | Some s -> s
        | None ->
          let s = Bitset.create ~capacity:16 () in
          Hashtbl.add t.base_done u s;
          s
      in
      Bitset.iter pts_u (fun o ->
          if Bitset.add processed o then begin
            List.iter (fun (f, dst) -> add_copy t (cell t o f) dst) loads;
            List.iter (fun (f, src) -> add_copy t src (cell t o f)) stores;
            List.iter (fun cd -> dispatch t u o cd) virtuals
          end)
    end
  end;
  (* dynamic copy edges (field cells and subscriptions) *)
  List.iter propagate t.dyn_copy.(u)

let run ?roots (prog : Ir.program) =
  let pag = Pag.create prog in
  let cg = Callgraph.create prog in
  let n_nodes = Pag.node_count pag in
  let t =
    {
      prog;
      pag;
      cg;
      n_fields = max 1 (Types.field_count prog.Ir.ctable);
      pts = Array.init (max n_nodes 1) (fun _ -> Bitset.create ~capacity:16 ());
      dyn_copy = Array.make (max n_nodes 1) [];
      n_units = n_nodes;
      copy_dedup = Hashtbl.create 4096;
      cells = Hashtbl.create 1024;
      base_done = Hashtbl.create 1024;
      virtuals_at = Hashtbl.create 256;
      connected = Hashtbl.create 1024;
      reachable = Array.make (Array.length prog.Ir.methods) false;
      queue = Queue.create ();
      queued = Bytes.make (max n_nodes 1) '\000';
      stats = Stats.create ();
    }
  in
  let roots =
    match roots with
    | Some rs -> rs
    | None -> (
      match prog.Ir.entry with
      | Some e -> [ e ]
      | None -> List.init (Array.length prog.Ir.methods) (fun i -> i))
  in
  List.iter (fun r -> activate t r) roots;
  while not (Queue.is_empty t.queue) do
    let u = Queue.pop t.queue in
    Bytes.set t.queued u '\000';
    process t u
  done;
  let sccs = Callgraph.mark_recursion t.cg t.pag in
  Stats.add t.stats "recursive_sccs" sccs;
  Stats.add t.stats "cg_edges" (Callgraph.edge_count t.cg);
  Pag.freeze t.pag;
  t

let pag t = t.pag
let callgraph t = t.cg
let program t = t.prog

let points_to t node =
  if node < Array.length t.pts then t.pts.(node) else Bitset.create ~capacity:1 ()

let points_to_var t ~meth ~var = points_to t (Pag.local_node t.pag ~meth ~var)

let is_reachable t mid = mid >= 0 && mid < Array.length t.reachable && t.reachable.(mid)

let reachable_methods t =
  let acc = ref [] in
  Array.iteri (fun i r -> if r then acc := i :: !acc) t.reachable;
  List.rev !acc

let stats t = t.stats

lib/clients/client.ml: Budget Engine Format List Pag Pts_util Query

lib/clients/client.mli: Engine Format Pag Query

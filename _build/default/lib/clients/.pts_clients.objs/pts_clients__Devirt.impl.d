lib/clients/devirt.ml: Array Cha Client Int Ir List Pag Pipeline Printf Pts_andersen Query Types

lib/clients/devirt.mli: Client Pipeline

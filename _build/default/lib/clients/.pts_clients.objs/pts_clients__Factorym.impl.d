lib/clients/factorym.ml: Array Ast Callgraph Client Ir List Pag Pipeline Printf Pts_andersen Query Types

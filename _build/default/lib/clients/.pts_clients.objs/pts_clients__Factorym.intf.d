lib/clients/factorym.mli: Client Pipeline

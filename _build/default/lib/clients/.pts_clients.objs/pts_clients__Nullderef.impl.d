lib/clients/nullderef.ml: Array Client Ir List Pag Pipeline Printf Pts_andersen Query

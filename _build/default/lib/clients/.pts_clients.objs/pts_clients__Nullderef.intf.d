lib/clients/nullderef.mli: Client Pipeline

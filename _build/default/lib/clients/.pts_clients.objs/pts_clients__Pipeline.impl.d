lib/clients/pipeline.ml: Array Callgraph Dynsum Frontend Ir Pag Pts_andersen Sb Stasum String

lib/clients/pipeline.mli: Callgraph Engine Ir Pag Pts_andersen

lib/clients/safecast.ml: Array Ast Client Format Ir List Pag Pipeline Printf Pts_andersen Query Types

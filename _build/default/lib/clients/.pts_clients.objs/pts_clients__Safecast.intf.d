lib/clients/safecast.mli: Client Pipeline

let name = "FactoryM"

let is_reference = function Ast.Tclass _ | Ast.Tarray _ -> true | Ast.Tint | Ast.Tbool | Ast.Tvoid -> false

(* A factory candidate must both return a reference and allocate something
   itself — accessors like [Vector.get] are not factories. *)
let allocates prog (m : Ir.meth) =
  List.exists
    (function
      | Ir.Alloc { site; _ } -> not prog.Ir.allocs.(site).Ir.alloc_is_null
      | Ir.Move _ | Ir.Load _ | Ir.Store _ | Ir.Load_global _ | Ir.Store_global _ | Ir.Call _
      | Ir.Return _ | Ir.Cast_move _ ->
        false)
    m.Ir.body

let queries (pl : Pipeline.t) =
  let prog = pl.Pipeline.prog in
  let cg = pl.Pipeline.callgraph in
  let acc = ref [] in
  Array.iter
    (fun (m : Ir.meth) ->
      if Pts_andersen.Solver.is_reachable pl.Pipeline.solver m.Ir.id then
        List.iter
          (fun instr ->
            match instr with
            | Ir.Call { dst = Some dst; site; kind; _ } -> (
              let targets = Callgraph.targets cg site in
              let candidates =
                List.filter
                  (fun t ->
                    is_reference prog.Ir.methods.(t).Ir.msig.Types.ms_ret
                    && allocates prog prog.Ir.methods.(t))
                  targets
              in
              match (candidates, kind) with
              | [], _ | _, Ir.Ctor _ -> ()
              | _ :: _, (Ir.Virtual _ | Ir.Static _) ->
                let pred ts =
                  List.for_all
                    (fun obj_site ->
                      let a = prog.Ir.allocs.(obj_site) in
                      a.Ir.alloc_is_null || List.mem a.Ir.alloc_meth targets)
                    (Query.sites ts)
                in
                acc :=
                  {
                    Client.q_node = Pag.local_node pl.Pipeline.pag ~meth:m.Ir.id ~var:dst;
                    q_desc =
                      Printf.sprintf "factory-call@site%d in %s" site m.Ir.pretty;
                    q_pred = pred;
                  }
                  :: !acc)
            | Ir.Call { dst = None; _ }
            | Ir.Alloc _ | Ir.Move _ | Ir.Load _ | Ir.Store _ | Ir.Load_global _
            | Ir.Store_global _ | Ir.Return _ | Ir.Cast_move _ ->
              ())
          m.Ir.body)
    prog.Ir.methods;
  List.rev !acc

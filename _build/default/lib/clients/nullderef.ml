let name = "NullDeref"

let queries (pl : Pipeline.t) =
  let prog = pl.Pipeline.prog in
  let acc = ref [] in
  let n = ref 0 in
  Array.iter
    (fun (m : Ir.meth) ->
      if Pts_andersen.Solver.is_reachable pl.Pipeline.solver m.Ir.id then
        List.iter
          (fun instr ->
            let base =
              match instr with
              | Ir.Load { base; _ } | Ir.Store { base; _ } -> Some base
              | Ir.Call { kind = Ir.Virtual { recv; _ }; _ } -> Some recv
              | Ir.Call { kind = Ir.Static _ | Ir.Ctor _; _ }
              | Ir.Alloc _ | Ir.Move _ | Ir.Load_global _ | Ir.Store_global _ | Ir.Return _
              | Ir.Cast_move _ ->
                None
            in
            match base with
            | None -> ()
            | Some base ->
              incr n;
              let pred ts =
                List.for_all (fun site -> not prog.Ir.allocs.(site).Ir.alloc_is_null) (Query.sites ts)
              in
              acc :=
                {
                  Client.q_node = Pag.local_node pl.Pipeline.pag ~meth:m.Ir.id ~var:base;
                  q_desc = Printf.sprintf "deref#%d of %s in %s" !n (Ir.var_name m base) m.Ir.pretty;
                  q_pred = pred;
                }
                :: !acc)
          m.Ir.body)
    prog.Ir.methods;
  List.rev !acc

let name = "SafeCast"

let queries (pl : Pipeline.t) =
  let prog = pl.Pipeline.prog in
  let ctable = prog.Ir.ctable in
  let null_cls = Types.null_class ctable in
  Array.to_list prog.Ir.casts
  |> List.filter_map (fun (c : Ir.cast_site) ->
         if c.Ir.cast_trivial then None
         else if not (Pts_andersen.Solver.is_reachable pl.Pipeline.solver c.Ir.cast_meth) then None
         else
           match Types.class_of_typ ctable c.Ir.cast_target with
           | None -> None
           | Some target_cls ->
             let node =
               Pag.local_node pl.Pipeline.pag ~meth:c.Ir.cast_meth ~var:c.Ir.cast_src
             in
             let pred ts =
               List.for_all
                 (fun site ->
                   let cls = prog.Ir.allocs.(site).Ir.alloc_cls in
                   cls = null_cls || Types.subclass ctable cls target_cls)
                 (Query.sites ts)
             in
             Some
               {
                 Client.q_node = node;
                 q_desc =
                   Printf.sprintf "cast@%d (%s) in %s" c.Ir.cast_pos.Ast.line
                     (Format.asprintf "%a" Ast.pp_typ c.Ir.cast_target)
                     prog.Ir.methods.(c.Ir.cast_meth).Ir.pretty;
                 q_pred = pred;
               })

(** The SafeCast client (§5.2): is every downcast in the program safe?

    For each non-trivial reference cast [(C) e] in a reachable method, the
    client queries the points-to set of the operand and proves the cast
    safe when every abstract object's allocation class is a subtype of
    [C]. Null pseudo-objects are benign (casting null always succeeds). *)

val queries : Pipeline.t -> Client.query list
(** One query per reachable non-trivial cast, in cast-site order. *)

val name : string

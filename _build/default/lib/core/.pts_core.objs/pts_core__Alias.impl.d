lib/core/alias.ml: Engine List Query

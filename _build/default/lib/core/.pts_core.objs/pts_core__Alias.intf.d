lib/core/alias.mli: Engine Pag Query

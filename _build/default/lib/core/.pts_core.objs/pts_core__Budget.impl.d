lib/core/budget.ml:

lib/core/budget.mli:

lib/core/dynsum.ml: Budget Engine Fun Hashtbl List Marshal Pag Ppta Pts_util Query Queue

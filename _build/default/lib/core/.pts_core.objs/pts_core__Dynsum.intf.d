lib/core/dynsum.mli: Budget Engine Pag Ppta Pts_util Query

lib/core/engine.ml: Budget Pag Pts_util Query

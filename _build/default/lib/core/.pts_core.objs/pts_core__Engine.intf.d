lib/core/engine.mli: Budget Pag Pts_util Query

lib/core/fieldbased.ml: Array Hashtbl List Pag Pts_util

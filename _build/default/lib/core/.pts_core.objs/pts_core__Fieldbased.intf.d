lib/core/fieldbased.mli: Pag

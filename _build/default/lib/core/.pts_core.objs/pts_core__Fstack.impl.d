lib/core/fstack.ml: Budget Engine List Pts_util

lib/core/fstack.mli: Engine Pts_util

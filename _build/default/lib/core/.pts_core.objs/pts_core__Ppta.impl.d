lib/core/ppta.ml: Budget Format Fstack Hashtbl List Pag Pts_util

lib/core/ppta.mli: Budget Engine Format Pag Pts_util

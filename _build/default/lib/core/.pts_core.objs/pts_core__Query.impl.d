lib/core/query.ml: Format Int Pts_util Set

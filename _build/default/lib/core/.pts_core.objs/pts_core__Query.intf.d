lib/core/query.mli: Format Pts_util Set

lib/core/sb.ml: Budget Engine Fieldbased Hashtbl Int List Pag Pts_util Query Set

lib/core/sb.mli: Budget Engine Pag Pts_util Query

lib/core/stasum.ml: Budget Dynsum Engine Hashtbl List Pag Ppta Pts_util Query Queue

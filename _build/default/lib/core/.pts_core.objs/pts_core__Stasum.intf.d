lib/core/stasum.mli: Budget Engine Pag Pts_util Query

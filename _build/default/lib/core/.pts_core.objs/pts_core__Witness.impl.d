lib/core/witness.ml: Budget Engine Fstack Hashtbl Ir List Pag Ppta Printf Pts_util Queue String Types

lib/core/witness.mli: Engine Pag Ppta Pts_util

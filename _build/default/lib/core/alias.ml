type verdict = Must_not | May | Unknown

let overlap a b = not (Query.Target_set.is_empty (Query.Target_set.inter a b))

let with_sets (engine : Engine.engine) x y k =
  match (engine.Engine.points_to x, engine.Engine.points_to y) with
  | Query.Resolved a, Query.Resolved b -> k a b
  | Query.Exceeded, _ | _, Query.Exceeded -> Unknown

let may_alias engine x y =
  if x = y then May
  else with_sets engine x y (fun a b -> if overlap a b then May else Must_not)

let sites_overlap a b =
  let sa = Query.sites a and sb = Query.sites b in
  List.exists (fun s -> List.mem s sb) sa

let may_alias_sites engine x y =
  if x = y then May
  else with_sets engine x y (fun a b -> if sites_overlap a b then May else Must_not)

exception Out_of_budget

type t = { lim : int; mutable in_query : int; mutable total : int }

let create ~limit =
  if limit <= 0 then invalid_arg "Budget.create: limit must be positive";
  { lim = limit; in_query = 0; total = 0 }

let unlimited () = { lim = max_int; in_query = 0; total = 0 }

let start_query t = t.in_query <- 0

let step t =
  t.in_query <- t.in_query + 1;
  t.total <- t.total + 1;
  if t.in_query > t.lim then raise Out_of_budget

let steps_this_query t = t.in_query
let total_steps t = t.total
let limit t = t.lim

(** Per-query traversal budgets.

    The paper caps every query at 75,000 PAG edge traversals; a query that
    exhausts its budget is answered conservatively ({!Query.Exceeded}).
    The cumulative step count across queries doubles as a deterministic,
    machine-independent cost measure for the benchmark harness. *)

exception Out_of_budget

type t

val create : limit:int -> t

val unlimited : unit -> t

val start_query : t -> unit
(** Reset the per-query allowance (cumulative counters keep running). *)

val step : t -> unit
(** Count one edge traversal. @raise Out_of_budget when the per-query
    allowance is exhausted. *)

val steps_this_query : t -> int

val total_steps : t -> int
(** Across all queries, including exceeded ones. *)

val limit : t -> int

module Hstack = Pts_util.Hstack
module Stats = Pts_util.Stats

module Cache_key = struct
  type t = int * int * int (* node, field-stack id, state *)

  let equal (a : t) (b : t) = a = b
  let hash ((n, f, s) : t) = (((n * 31) + f) * 31) + s
end

module Cache = Hashtbl.Make (Cache_key)

type t = {
  pag : Pag.t;
  conf : Engine.conf;
  budget : Budget.t;
  stats : Stats.t;
  cache : Ppta.summary Cache.t;
  key_stacks : Pts_util.Hstack.t Cache.t; (* key -> its field stack, for persistence *)
}

let create ?(conf = Engine.default_conf) pag =
  {
    pag;
    conf;
    budget = Budget.create ~limit:conf.Engine.budget_limit;
    stats = Stats.create ();
    cache = Cache.create 4096;
    key_stacks = Cache.create 4096;
  }

let summary_count t = Cache.length t.cache

let summary_points t =
  let pts = Hashtbl.create 256 in
  Cache.iter (fun (n, _f, s) _ -> Hashtbl.replace pts (n, s) ()) t.cache;
  Hashtbl.length pts

let clear_cache t =
  Cache.reset t.cache;
  Cache.reset t.key_stacks

let budget t = t.budget
let stats t = t.stats

(* ------------------------- cache persistence ------------------------ *)

(* Structural image of one cache entry: hash-cons ids are process-local,
   so stacks travel as symbol lists. *)
type entry_image = int * int list * int * int list * (int * int list * int) list

let magic = "ptsto-dynsum-cache-v1"

let fingerprint pag =
  let c = Pag.edge_counts pag in
  ( Pag.node_count pag,
    c.Pag.n_new,
    c.Pag.n_assign,
    c.Pag.n_load,
    c.Pag.n_store,
    c.Pag.n_entry,
    c.Pag.n_exit,
    c.Pag.n_assign_global )

let save_cache t path =
  (* the cache key holds only the process-local hash-cons id of the field
     stack; the parallel key_stacks table provides the structural stack *)
  let images = ref [] in
  Cache.iter
    (fun ((node, _fid, state) as key) summary ->
      match Cache.find_opt t.key_stacks key with
      | None -> ()
      | Some stack ->
        let tuples =
          List.map
            (fun (n, f, s) -> (n, Hstack.to_list f, Ppta.state_to_int s))
            summary.Ppta.tuples
        in
        images :=
          ((node, Hstack.to_list stack, state, summary.Ppta.objs, tuples) : entry_image)
          :: !images)
    t.cache;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Marshal.to_channel oc (magic, fingerprint t.pag, !images) [])

let state_of_int = function 1 -> Ppta.S1 | _ -> Ppta.S2

let load_cache t path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match (Marshal.from_channel ic : string * 'a * entry_image list) with
        | exception _ -> Error "corrupt cache file"
        | file_magic, fp, images ->
          if file_magic <> magic then Error "not a dynsum cache file"
          else if fp <> fingerprint t.pag then Error "cache was built for a different PAG"
          else begin
            let n = ref 0 in
            List.iter
              (fun (node, syms, state, objs, tuples) ->
                let key = (node, Hstack.id (Hstack.of_list syms), state) in
                if not (Cache.mem t.cache key) then begin
                  incr n;
                  Cache.add t.cache key
                    {
                      Ppta.objs;
                      tuples =
                        List.map
                          (fun (tn, tf, ts) -> (tn, Hstack.of_list tf, state_of_int ts))
                          tuples;
                    };
                  Cache.add t.key_stacks key (Hstack.of_list syms)
                end)
              images;
            Ok !n
          end)

type summary_source = Pag.node -> Hstack.t -> Ppta.state -> Ppta.summary

module Seen = Hashtbl.Make (struct
  type t = int * int * int * int (* node, fstack id, state, ctx id *)

  let equal (a : t) (b : t) = a = b
  let hash ((n, f, s, c) : t) = (((((n * 31) + f) * 31) + s) * 31) + c
end)

(* Algorithm 4's worklist: PPTA summaries handle local edges; this loop
   handles the global edges under the RRP context machine. *)
let solve pag budget (summarise : summary_source) v c0 =
  let results = ref Query.Target_set.empty in
  let seen = Seen.create 256 in
  let work = Queue.create () in
  let propagate u f s c =
    let key = (u, Hstack.id f, Ppta.state_to_int s, Hstack.id c) in
    if not (Seen.mem seen key) then begin
      Seen.add seen key ();
      Queue.add (u, f, s, c) work
    end
  in
  propagate v Hstack.empty Ppta.S1 c0;
  while not (Queue.is_empty work) do
    let u, f, s, c = Queue.pop work in
    Budget.step budget;
    let summary = summarise u f s in
    List.iter
      (fun site -> results := Query.Target_set.add { Query.Target.site; hctx = c } !results)
      summary.Ppta.objs;
    List.iter
      (fun (x, f1, s1) ->
        match s1 with
        | Ppta.S1 ->
          (* traversing backwards: exit descends into a callee (push),
             entry returns to a caller (pop) *)
          List.iter
            (fun (i, y) ->
              Budget.step budget;
              propagate y f1 Ppta.S1 (Engine.push_ctx pag c i))
            (Pag.exit_in pag x);
          List.iter
            (fun (i, y) ->
              Budget.step budget;
              match Engine.pop_ctx pag c i with
              | Some c' -> propagate y f1 Ppta.S1 c'
              | None -> ())
            (Pag.entry_in pag x);
          List.iter
            (fun y ->
              Budget.step budget;
              propagate y f1 Ppta.S1 Hstack.empty)
            (Pag.global_in pag x)
        | Ppta.S2 ->
          (* traversing forwards: entry enters a callee (push), exit
             returns to a caller (pop) *)
          List.iter
            (fun (i, y) ->
              Budget.step budget;
              match Engine.pop_ctx pag c i with
              | Some c' -> propagate y f1 Ppta.S2 c'
              | None -> ())
            (Pag.exit_out pag x);
          List.iter
            (fun (i, y) ->
              Budget.step budget;
              propagate y f1 Ppta.S2 (Engine.push_ctx pag c i))
            (Pag.entry_out pag x);
          List.iter
            (fun y ->
              Budget.step budget;
              propagate y f1 Ppta.S2 Hstack.empty)
            (Pag.global_out pag x))
      summary.Ppta.tuples
  done;
  !results

(* Summary lookup with the paper's fast path: a node without local edges
   needs no PPTA — its only continuation is itself as a frontier tuple. *)
let summarise t u f s =
  if not (Pag.has_local_edges t.pag u) then begin
    Stats.bump t.stats "no_local_fastpath";
    { Ppta.objs = []; tuples = [ (u, f, s) ] }
  end
  else begin
    let key = (u, Hstack.id f, Ppta.state_to_int s) in
    match Cache.find_opt t.cache key with
    | Some summary ->
      Stats.bump t.stats "cache_hits";
      summary
    | None ->
      Stats.bump t.stats "cache_misses";
      let summary = Ppta.compute t.pag t.conf t.budget u f s in
      Cache.add t.cache key summary;
      Cache.add t.key_stacks key f;
      summary
  end

let points_to_in t v c0 =
  Stats.bump t.stats "queries";
  Budget.start_query t.budget;
  try Query.Resolved (solve t.pag t.budget (summarise t) v c0)
  with Budget.Out_of_budget ->
    Stats.bump t.stats "exceeded";
    Query.Exceeded

let points_to t ?satisfy v =
  ignore satisfy;
  points_to_in t v Hstack.empty

let engine t =
  {
    Engine.name = "dynsum";
    points_to = (fun ?satisfy v -> points_to t ?satisfy v);
    budget = t.budget;
    stats = t.stats;
    summary_count = (fun () -> summary_count t);
  }

module Hstack = Pts_util.Hstack

type overflow = Abort | Widen

type conf = {
  budget_limit : int;
  max_field_repeat : int;
  max_field_depth : int;
  overflow : overflow;
}

let default_conf =
  { budget_limit = 75_000; max_field_repeat = 2; max_field_depth = 64; overflow = Widen }

let conf ?(budget_limit = default_conf.budget_limit)
    ?(max_field_repeat = default_conf.max_field_repeat)
    ?(max_field_depth = default_conf.max_field_depth) ?(overflow = default_conf.overflow) () =
  { budget_limit; max_field_repeat; max_field_depth; overflow }

let push_ctx pag c i = if Pag.is_recursive_site pag i then c else Hstack.push c i

let pop_ctx pag c i =
  if Pag.is_recursive_site pag i then Some c
  else
    match Hstack.peek c with
    | None -> Some c (* partially balanced: fall off into an unknown caller *)
    | Some top -> if top = i then Some (Hstack.pop_exn c) else None

type points_to_fn = ?satisfy:(Query.Target_set.t -> bool) -> Pag.node -> Query.outcome

type engine = {
  name : string;
  points_to : points_to_fn;
  budget : Budget.t;
  stats : Pts_util.Stats.t;
  summary_count : unit -> int;
}

(** Configuration and traversal helpers shared by all demand-driven
    engines.

    The context helpers implement the RRP recursive state machine of
    Figure 3(b) of the paper, including the recursion-collapsing rule of
    §5.1: entry/exit edges of a call site inside a call-graph cycle are
    traversed context-insensitively (no push, any pop allowed). The
    realizability rule allows an empty stack to pop (partially balanced
    paths may start and end in different methods). *)

type overflow =
  | Abort  (** overflow fails the query conservatively (paper behaviour) *)
  | Widen  (** k-limit the access path: sound over-approximation *)

type conf = {
  budget_limit : int; (** max PAG edge traversals per query (paper: 75,000) *)
  max_field_repeat : int;
      (** max occurrences of one field in a field stack; a push beyond it
          is cut — the stack-world analogue of Algorithm 1's visited-set
          cycle cut around recursive heap structures (see {!Fstack}) *)
  max_field_depth : int; (** hard stack cap, a backstop (see {!Fstack}) *)
  overflow : overflow;
}

val default_conf : conf
(** [{ budget_limit = 75_000; max_field_repeat = 2; max_field_depth = 64;
       overflow = Widen }]. *)

val conf :
  ?budget_limit:int -> ?max_field_repeat:int -> ?max_field_depth:int -> ?overflow:overflow ->
  unit -> conf

(** {2 Context stacks (call-site ids)} *)

val push_ctx : Pag.t -> Pts_util.Hstack.t -> int -> Pts_util.Hstack.t
(** Enter a method through call site [i] (no-op for recursive sites). *)

val pop_ctx : Pag.t -> Pts_util.Hstack.t -> int -> Pts_util.Hstack.t option
(** Leave a method through call site [i]: [None] when the path is
    unrealizable (stack top differs from [i]); [Some] of the popped stack
    when the top matches, the stack is empty, or the site is recursive. *)

(** {2 The common engine interface} *)

type points_to_fn = ?satisfy:(Query.Target_set.t -> bool) -> Pag.node -> Query.outcome
(** [satisfy] is the client's early-termination predicate; only REFINEPTS
    consults it (its refinement loop stops as soon as the — possibly still
    over-approximate — answer satisfies the client). Other engines compute
    the full answer and ignore it. *)

type engine = {
  name : string;
  points_to : points_to_fn;
  budget : Budget.t;
  stats : Pts_util.Stats.t;
  summary_count : unit -> int; (** cached summaries (0 for non-summary engines) *)
}

(** The whole-program {e field-based} approximation that REFINEPTS's match
    edges denote.

    Field-based means every field is collapsed to one abstract location
    program-wide: a store [q.f = p] may be observed by {e any} load
    [v = u.f], and calls/returns between them are skipped (the paper: "the
    state of RRP is cleared"). Operationally this is a single regular
    (non-CFL) flow relation; computing its fixpoint once per engine and
    letting each match edge look the answer up keeps the early refinement
    passes linear, exactly as a production implementation would, while the
    refined (field-sensitive) segments of a pass still run the precise
    CFL traversal.

    Everything here is a sound over-approximation of the exact
    CFL-reachability answer, which is all the refinement loop needs from
    its unrefined edges. *)

type t

val create : Pag.t -> t
(** Cheap; fixpoints run lazily on first use. *)

val pts_of_field : t -> Pag.fld -> int list
(** Allocation sites that may be stored into field [f] anywhere — the
    union the match edge [v -match-> p] family denotes for a load of [f].
    Memoised per field. *)

val flows_of_field : t -> Pag.fld -> Pag.node list
(** Nodes any value stored into field [f] may subsequently flow to
    (the load destinations of [f] and their field-based forward closure).
    Memoised per field. *)

module Hstack = Pts_util.Hstack

type state = S1 | S2

let state_to_int = function S1 -> 1 | S2 -> 2

let pp_state fmt s = Format.pp_print_string fmt (match s with S1 -> "S1" | S2 -> "S2")

type summary = { objs : int list; tuples : (int * Hstack.t * state) list }

let empty_summary = { objs = []; tuples = [] }

module Visited = Hashtbl.Make (struct
  type t = int * int * int (* node, field-stack id, state *)

  let equal (a : t) (b : t) = a = b
  let hash ((n, f, s) : t) = (((n * 31) + f) * 31) + s
end)

let compute pag conf budget ?trace v0 f0 s0 =
  let visited = Visited.create 64 in
  let objs = ref [] in
  let obj_seen = Hashtbl.create 16 in
  let tuples = ref [] in
  let add_obj site =
    if not (Hashtbl.mem obj_seen site) then begin
      Hashtbl.add obj_seen site ();
      objs := site :: !objs
    end
  in
  let add_tuple node f s = tuples := (node, f, s) :: !tuples in
  let rec go v f s =
    let key = (v, Hstack.id f, state_to_int s) in
    if not (Visited.mem visited key) then begin
      Visited.add visited key ();
      Budget.step budget;
      (match trace with Some observe -> observe v f s | None -> ());
      match s with
      | S1 ->
        (* v <-new- o: harvest the object, or flip direction to chase an
           alias of v when fields are still pending (a widened stack may
           be either, so it does both) *)
        (match Pag.new_in pag v with
        | [] -> ()
        | news ->
          if Fstack.may_be_empty f then List.iter (fun o -> add_obj (Pag.obj_site pag o)) news;
          if not (Hstack.is_empty f) then go v f S2);
        List.iter (fun x -> go x f S1) (Pag.assign_in pag v);
        (* v = u.g backwards: a pending load(g)-bar, awaiting store(g)-bar *)
        List.iter
          (fun (g, u) ->
            match Fstack.push conf f (Fstack.load_sym g) with
            | Some f' -> go u f' S1
            | None -> ())
          (Pag.load_in pag v);
        if Pag.has_global_in pag v then add_tuple v f S1
      | S2 ->
        (* x = v.g forwards: the chased value surfaces out of field g —
           matches a pending store(g) push *)
        List.iter
          (fun (g, x) ->
            match Fstack.pop_match f (Fstack.store_sym g) with
            | Some f' -> go x f' S2
            | None -> ())
          (Pag.load_out pag v);
        List.iter (fun x -> go x f S2) (Pag.assign_out pag v);
        (* b.g = v forwards: the chased value sinks into b.g — push
           store(g) and find aliases of the base b *)
        List.iter
          (fun (g, b) ->
            match Fstack.push conf f (Fstack.store_sym g) with
            | Some f' -> go b f' S1
            | None -> ())
          (Pag.store_out pag v);
        (* v.g = src backwards: store(g)-bar closing a pending load(g)-bar *)
        List.iter
          (fun (g, src) ->
            match Fstack.pop_match f (Fstack.load_sym g) with
            | Some f' -> go src f' S1
            | None -> ())
          (Pag.store_in pag v);
        if Pag.has_global_out pag v then add_tuple v f S2
    end
  in
  go v0 f0 s0;
  { objs = !objs; tuples = !tuples }

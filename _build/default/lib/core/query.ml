module Hstack = Pts_util.Hstack

module Target = struct
  type t = { site : int; hctx : Hstack.t }

  let compare a b =
    let c = Int.compare a.site b.site in
    if c <> 0 then c else Int.compare (Hstack.id a.hctx) (Hstack.id b.hctx)

  let pp fmt { site; hctx } =
    Format.fprintf fmt "o%d@%a" site (Hstack.pp Format.pp_print_int) hctx
end

module Target_set = Set.Make (Target)

type outcome = Resolved of Target_set.t | Exceeded

module Int_set = Set.Make (Int)

let sites ts =
  Target_set.fold (fun t acc -> Int_set.add t.Target.site acc) ts Int_set.empty
  |> Int_set.elements

let singleton ~site ~hctx = Target_set.singleton { Target.site; hctx }

let pp_outcome fmt = function
  | Exceeded -> Format.pp_print_string fmt "<budget exceeded>"
  | Resolved ts ->
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") Target.pp)
      (Target_set.elements ts)

let equal_outcome a b =
  match (a, b) with
  | Exceeded, Exceeded -> true
  | Resolved x, Resolved y -> Target_set.equal x y
  | (Exceeded | Resolved _), _ -> false

let equal_sites a b =
  match (a, b) with
  | Exceeded, Exceeded -> true
  | Resolved x, Resolved y -> sites x = sites y
  | (Exceeded | Resolved _), _ -> false

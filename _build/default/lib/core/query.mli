(** Query results shared by all demand-driven analyses.

    A points-to target is an abstract object: an allocation site paired
    with a heap context (the calling-context stack in force when the
    analysis reached the allocation — the paper's heap-abstraction axis of
    context sensitivity). Clients usually {!sites}-project targets. *)

module Target : sig
  type t = { site : int; hctx : Pts_util.Hstack.t }

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Target_set : Set.S with type elt = Target.t

type outcome =
  | Resolved of Target_set.t
  | Exceeded  (** budget or field-stack depth exhausted: answer unknown *)

val sites : Target_set.t -> int list
(** Distinct allocation sites, ascending. *)

val singleton : site:int -> hctx:Pts_util.Hstack.t -> Target_set.t

val pp_outcome : Format.formatter -> outcome -> unit

val equal_outcome : outcome -> outcome -> bool

val equal_sites : outcome -> outcome -> bool
(** Same verdict shape and same site projection (ignores heap contexts). *)

module Hstack = Pts_util.Hstack
module Stats = Pts_util.Stats

type mode = No_refine | Refine

type t = {
  pag : Pag.t;
  mode : mode;
  conf : Engine.conf;
  budget : Budget.t;
  stats : Stats.t;
  fb : Fieldbased.t; (* the field-based approximation match edges denote *)
}

let create ?(conf = Engine.default_conf) mode pag =
  {
    pag;
    mode;
    conf;
    budget = Budget.create ~limit:conf.Engine.budget_limit;
    stats = Stats.create ();
    fb = Fieldbased.create pag;
  }

let budget t = t.budget
let stats t = t.stats

(* A load edge [dst = base.f], the unit of refinement. *)
module Load_edge = struct
  type t = int * int * int (* dst node, field, base node *)

  let equal (a : t) (b : t) = a = b
  let hash = Hashtbl.hash
end

module Edge_tbl = Hashtbl.Make (Load_edge)

(* flowsTo results: variables a given object may flow to, with contexts. *)
module Flow = struct
  type t = { node : int; ctx : Hstack.t }

  let compare a b =
    let c = Int.compare a.node b.node in
    if c <> 0 then c else Int.compare (Hstack.id a.ctx) (Hstack.id b.ctx)
end

module Flow_set = Set.Make (Flow)

module Key = struct
  type t = int * int (* node, ctx id *)

  let equal (a : t) (b : t) = a = b
  let hash ((n, c) : t) = (n * 0x1fffffff) lxor c
end

module Key_tbl = Hashtbl.Make (Key)

(* Per-refinement-pass state. [pt_active]/[fl_active] map the DFS path of
   the two mutually recursive relations to DFS indices: re-entering an
   active key is a points-to cycle and is cut, as in the paper (§5.1).

   Caching is gated Tarjan-style: every traversal returns the lowest DFS
   index it reached back into ("lowlink"); a result is complete — and
   cacheable — exactly when its lowlink is not below its own index, i.e.
   when it did not depend on a computation still in progress. This is what
   makes the paper's "ad hoc caching within a query" effective in cyclic
   points-to graphs without compromising exactness. The two relations
   share one DFS index space, since they recurse into each other. *)
type pass = {
  e : t;
  flds_to_refine : unit Edge_tbl.t; (* shared across passes of one query *)
  flds_seen : unit Edge_tbl.t;
  pt_active : int Key_tbl.t;
  fl_active : int Key_tbl.t;
  pt_memo : Query.Target_set.t Key_tbl.t;
  fl_memo : Flow_set.t Key_tbl.t;
  mutable dfs : int;
}

let refined p edge = match p.e.mode with No_refine -> true | Refine -> Edge_tbl.mem p.flds_to_refine edge

let caching p = match p.e.mode with No_refine -> false | Refine -> true

(* SBPOINTSTO: compute the objects flowing to [v] in context [c].
   Returns the target set and its lowlink (see [pass]); [max_int] means the
   result is self-contained and has been cached. *)
let rec pt p v c : Query.Target_set.t * int =
  Budget.step p.e.budget;
  let key = (v, Hstack.id c) in
  match if caching p then Key_tbl.find_opt p.pt_memo key else None with
  | Some cached ->
    Stats.bump p.e.stats "memo_hits";
    (cached, max_int)
  | None -> (
    match Key_tbl.find_opt p.pt_active key with
    | Some index -> (Query.Target_set.empty, index)
    | None ->
      let my_index = p.dfs in
      p.dfs <- my_index + 1;
      Key_tbl.add p.pt_active key my_index;
      let pag = p.e.pag in
      let acc = ref Query.Target_set.empty in
      let low = ref max_int in
      let merge (set, lo) =
        acc := Query.Target_set.union set !acc;
        if lo < !low then low := lo
      in
      (* new: v <-new- o *)
      List.iter
        (fun o ->
          Budget.step p.e.budget;
          acc := Query.Target_set.add { Query.Target.site = Pag.obj_site pag o; hctx = c } !acc)
        (Pag.new_in pag v);
      (* assign *)
      List.iter
        (fun x ->
          Budget.step p.e.budget;
          merge (pt p x c))
        (Pag.assign_in pag v);
      (* assignglobal clears the context *)
      List.iter
        (fun x ->
          Budget.step p.e.budget;
          merge (pt p x Hstack.empty))
        (Pag.global_in pag v);
      (* exit_i backwards: descend into the callee, pushing i *)
      List.iter
        (fun (i, x) ->
          Budget.step p.e.budget;
          merge (pt p x (Engine.push_ctx pag c i)))
        (Pag.exit_in pag v);
      (* entry_i backwards: return to the caller, popping i if realizable *)
      List.iter
        (fun (i, x) ->
          Budget.step p.e.budget;
          match Engine.pop_ctx pag c i with
          | Some c' -> merge (pt p x c')
          | None -> ())
        (Pag.entry_in pag v);
      (* loads: v = u.f *)
      List.iter
        (fun (f, u) ->
          let edge = (v, f, u) in
          if refined p edge then begin
            (* field-sensitive: find aliases r of u, then follow r.f = src *)
            let objs, lo1 = pt p u c in
            if lo1 < !low then low := lo1;
            Query.Target_set.iter
              (fun { Query.Target.site; hctx } ->
                let flows, lo2 = fl_from_obj p (Pag.obj_node pag site) hctx in
                if lo2 < !low then low := lo2;
                Flow_set.iter
                  (fun { Flow.node = r; ctx = c2 } ->
                    List.iter
                      (fun (f', src) ->
                        if f' = f then begin
                          Budget.step p.e.budget;
                          merge (pt p src c2)
                        end)
                      (Pag.store_in pag r))
                  flows)
              objs
          end
          else begin
            (* field-based match edge: the load observes anything stored
               to f anywhere, under the precomputed field-based
               approximation, with the RRP state cleared *)
            if not (Edge_tbl.mem p.flds_seen edge) then Edge_tbl.add p.flds_seen edge ();
            Stats.bump p.e.stats "match_edges";
            List.iter
              (fun site ->
                Budget.step p.e.budget;
                acc :=
                  Query.Target_set.add { Query.Target.site; hctx = Hstack.empty } !acc)
              (Fieldbased.pts_of_field p.e.fb f)
          end)
        (Pag.load_in pag v);
      Key_tbl.remove p.pt_active key;
      if !low >= my_index then begin
        if caching p then Key_tbl.add p.pt_memo key !acc;
        (!acc, max_int)
      end
      else (!acc, !low))

(* SBFLOWSTO from an object node: follow its unique new edge. *)
and fl_from_obj p o c : Flow_set.t * int =
  let acc = ref Flow_set.empty in
  let low = ref max_int in
  List.iter
    (fun v ->
      Budget.step p.e.budget;
      let set, lo = fl p v c in
      acc := Flow_set.union set !acc;
      if lo < !low then low := lo)
    (Pag.new_out p.e.pag o);
  (!acc, !low)

(* SBFLOWSTO: variables the value in [v] (context [c]) may flow to. *)
and fl p v c : Flow_set.t * int =
  Budget.step p.e.budget;
  let key = (v, Hstack.id c) in
  match if caching p then Key_tbl.find_opt p.fl_memo key else None with
  | Some cached ->
    Stats.bump p.e.stats "memo_hits";
    (cached, max_int)
  | None -> (
    match Key_tbl.find_opt p.fl_active key with
    | Some index -> (Flow_set.empty, index)
    | None ->
      let my_index = p.dfs in
      p.dfs <- my_index + 1;
      Key_tbl.add p.fl_active key my_index;
      let pag = p.e.pag in
      let acc = ref (Flow_set.singleton { Flow.node = v; ctx = c }) in
      let low = ref max_int in
      let merge (set, lo) =
        acc := Flow_set.union set !acc;
        if lo < !low then low := lo
      in
      List.iter
        (fun x ->
          Budget.step p.e.budget;
          merge (fl p x c))
        (Pag.assign_out pag v);
      List.iter
        (fun x ->
          Budget.step p.e.budget;
          merge (fl p x Hstack.empty))
        (Pag.global_out pag v);
      (* entry_i forwards: enter the callee, pushing i *)
      List.iter
        (fun (i, x) ->
          Budget.step p.e.budget;
          merge (fl p x (Engine.push_ctx pag c i)))
        (Pag.entry_out pag v);
      (* exit_i forwards: return to the caller, popping i if realizable *)
      List.iter
        (fun (i, x) ->
          Budget.step p.e.budget;
          match Engine.pop_ctx pag c i with
          | Some c' -> merge (fl p x c')
          | None -> ())
        (Pag.exit_out pag v);
      (* stores: b.f = v — the value escapes into the heap *)
      List.iter
        (fun (f, b) ->
          (* match-edge jumps for the unrefined load edges of f *)
          let loads = Pag.loads_of_field pag f in
          let refined_loads =
            match p.e.mode with
            | No_refine -> loads
            | Refine ->
              let unrefined =
                List.filter (fun (lb, ldst) -> not (Edge_tbl.mem p.flds_to_refine (ldst, f, lb))) loads
              in
              if unrefined <> [] then begin
                List.iter
                  (fun (lb, ldst) ->
                    let edge = (ldst, f, lb) in
                    if not (Edge_tbl.mem p.flds_seen edge) then Edge_tbl.add p.flds_seen edge ())
                  unrefined;
                Stats.bump p.e.stats "match_edges";
                (* the value escapes into the field-based approximation:
                   it may surface at any load of f and flow on from there *)
                List.iter
                  (fun x ->
                    Budget.step p.e.budget;
                    acc := Flow_set.add { Flow.node = x; ctx = Hstack.empty } !acc)
                  (Fieldbased.flows_of_field p.e.fb f)
              end;
              List.filter (fun (lb, ldst) -> Edge_tbl.mem p.flds_to_refine (ldst, f, lb)) loads
          in
          if refined_loads <> [] then begin
            (* field-sensitive: aliases r of the base b, then r.f loads *)
            let objs, lo1 = pt p b c in
            if lo1 < !low then low := lo1;
            Query.Target_set.iter
              (fun { Query.Target.site; hctx } ->
                let flows, lo2 = fl_from_obj p (Pag.obj_node pag site) hctx in
                if lo2 < !low then low := lo2;
                Flow_set.iter
                  (fun { Flow.node = r; ctx = c2 } ->
                    List.iter
                      (fun (lb, ldst) ->
                        if lb = r then begin
                          Budget.step p.e.budget;
                          merge (fl p ldst c2)
                        end)
                      refined_loads)
                  flows)
              objs
          end)
        (Pag.store_out pag v);
      Key_tbl.remove p.fl_active key;
      if !low >= my_index then begin
        if caching p then Key_tbl.add p.fl_memo key !acc;
        (!acc, max_int)
      end
      else (!acc, !low))

let fresh_pass t flds_to_refine =
  {
    e = t;
    flds_to_refine;
    flds_seen = Edge_tbl.create 64;
    pt_active = Key_tbl.create 256;
    fl_active = Key_tbl.create 256;
    pt_memo = Key_tbl.create 256;
    fl_memo = Key_tbl.create 256;
    dfs = 0;
  }

let points_to t ?satisfy v : Query.outcome =
  Stats.bump t.stats "queries";
  Budget.start_query t.budget;
  let flds_to_refine = Edge_tbl.create 64 in
  let rec iterate () =
    Stats.bump t.stats "passes";
    let p = fresh_pass t flds_to_refine in
    let pts, _low = pt p v Hstack.empty in
    let satisfied = match satisfy with Some pred -> pred pts | None -> false in
    if satisfied then Query.Resolved pts
    else if t.mode = No_refine || Edge_tbl.length p.flds_seen = 0 then Query.Resolved pts
    else begin
      Edge_tbl.iter (fun edge () -> Edge_tbl.replace flds_to_refine edge ()) p.flds_seen;
      iterate ()
    end
  in
  try iterate ()
  with Budget.Out_of_budget ->
    Stats.bump t.stats "exceeded";
    Query.Exceeded

let engine t ~name =
  {
    Engine.name;
    points_to = (fun ?satisfy v -> points_to t ?satisfy v);
    budget = t.budget;
    stats = t.stats;
    summary_count = (fun () -> 0);
  }

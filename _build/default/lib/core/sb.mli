(** The Sridharan–Bodík demand-driven points-to analysis (Algorithms 1 and
    2 of the paper), in both variants the paper evaluates:

    - {b NOREFINE}: fully field-sensitive from the start, no refinement, no
      caching — the paper's unoptimised baseline;
    - {b REFINEPTS}: starts field-based (heap accesses connected by
      "match" edges that also clear the context), iteratively refines the
      load edges recorded in [fldsSeen] until the client is satisfied or
      the answer is exact, and memoises fully-resolved sub-results within
      a refinement pass (the paper's "ad hoc caching").

    Both are context-sensitive for method invocation (call-site stacks,
    RRP) and heap abstraction (targets carry heap contexts). Traversal is
    a mutually recursive pair: [SBPOINTSTO] walks flowsTo-paths backwards,
    [SBFLOWSTO] forwards; field sensitivity is the balanced-parentheses
    alias detour of LFT. *)

type mode = No_refine | Refine

type t

val create : ?conf:Engine.conf -> mode -> Pag.t -> t

val points_to : t -> ?satisfy:(Query.Target_set.t -> bool) -> Pag.node -> Query.outcome
(** Demand query with the empty initial context. With [satisfy] (REFINEPTS
    only) the refinement loop returns as soon as the predicate holds — the
    returned set may then still be an over-approximation, which is sound
    for clients asking "does the exact answer satisfy me?". Without
    [satisfy], the result is the exact CFL answer (or [Exceeded]). *)

val budget : t -> Budget.t
val stats : t -> Pts_util.Stats.t
(** Counters: ["queries"], ["exceeded"], ["passes"] (refinement passes),
    ["memo_hits"], ["match_edges"] (field-based jumps taken). *)

val engine : t -> name:string -> Engine.engine

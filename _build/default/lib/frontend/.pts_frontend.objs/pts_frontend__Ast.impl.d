lib/frontend/ast.ml: Format String

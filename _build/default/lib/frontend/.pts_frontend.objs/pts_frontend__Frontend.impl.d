lib/frontend/frontend.ml: Ast Fun Lazy Lexer Lower Parser Prelude Printf Types

lib/frontend/frontend.mli: Ir

lib/frontend/ir.ml: Array Ast Format Printf Types

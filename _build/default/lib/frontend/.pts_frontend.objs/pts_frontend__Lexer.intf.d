lib/frontend/lexer.mli: Ast Token

lib/frontend/lower.ml: Array Ast Format Hashtbl Ir List Printf Types

lib/frontend/lower.mli: Ast Ir

lib/frontend/prelude.ml: Ast Lazy Parser

lib/frontend/pretty.ml: Ast Buffer Format List Printf String

lib/frontend/pretty.mli: Ast

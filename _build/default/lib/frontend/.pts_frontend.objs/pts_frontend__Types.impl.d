lib/frontend/types.ml: Array Ast Format Hashtbl List Printf String

lib/frontend/types.mli: Ast

(** Three-address intermediate representation.

    Lowering normalises every allocation, call, load and store so that each
    operand is a method-local variable. Two invariants matter to the
    analyses downstream:

    - every allocation site has a {e unique} destination variable (a fresh
      temporary), which makes the [new n̄ew] direction flip of the paper's
      Algorithms 1 and 3 sound;
    - calls and allocations carry dense program-wide site ids; call-site
      ids are the context elements of the CFL analyses and allocation-site
      ids name abstract objects. *)

type var = int

type call_kind =
  | Virtual of { recv : var; mname : string }
      (** dispatched on the dynamic class of [recv] *)
  | Static of { target : Types.method_sig }
  | Ctor of { recv : var; ctor : Types.method_sig }
      (** statically-bound instance calls: constructor invocations and
          [super.m(...)] calls *)

type instr =
  | Alloc of { dst : var; cls : Types.cls; site : int }
  | Move of { dst : var; src : var }
  | Load of { dst : var; base : var; fld : int }
  | Store of { base : var; fld : int; src : var }
  | Load_global of { dst : var; glb : int }
  | Store_global of { glb : int; src : var }
  | Call of { dst : var option; kind : call_kind; args : var list; site : int }
  | Return of { src : var option }
  | Cast_move of { dst : var; src : var; cast : int }

type meth = {
  id : int; (** = [Types.method_sig.ms_id] *)
  msig : Types.method_sig;
  pretty : string;
  this_var : var option;
  param_vars : var list; (** excluding [this] *)
  body : instr list;
  nvars : int;
  var_names : string array;
  var_types : Ast.typ array;
}

type alloc_site = {
  site_id : int;
  alloc_cls : Types.cls;
  alloc_meth : int;
  alloc_pos : Ast.pos;
  alloc_is_null : bool; (** a lowered [null] pseudo-allocation *)
}

type call_site = { cs_id : int; cs_meth : int; cs_pos : Ast.pos }

type cast_site = {
  cast_id : int;
  cast_meth : int;
  cast_target : Ast.typ;
  cast_src : var;
  cast_dst : var;
  cast_pos : Ast.pos;
  cast_trivial : bool; (** statically guaranteed (upcast): not queried *)
}

type program = {
  ctable : Types.t;
  methods : meth array; (** indexed by method id *)
  allocs : alloc_site array;
  calls : call_site array;
  casts : cast_site array;
  entry : int option; (** synthetic entry method id *)
}

let method_of_program p id = p.methods.(id)

let alloc_name p site =
  let a = p.allocs.(site) in
  if a.alloc_is_null then Printf.sprintf "null@%d" a.alloc_pos.Ast.line
  else Printf.sprintf "o%d:%s" site (Types.class_name p.ctable a.alloc_cls)

let var_name (m : meth) v =
  if v >= 0 && v < Array.length m.var_names then m.var_names.(v) else Printf.sprintf "v%d" v

let pp_instr ctable m fmt instr =
  let pv fmt v = Format.pp_print_string fmt (var_name m v) in
  match instr with
  | Alloc { dst; cls; site } ->
    Format.fprintf fmt "%a = new %s  /* site %d */" pv dst (Types.class_name ctable cls) site
  | Move { dst; src } -> Format.fprintf fmt "%a = %a" pv dst pv src
  | Load { dst; base; fld } ->
    Format.fprintf fmt "%a = %a.%s" pv dst pv base (Types.field_info ctable fld).Types.fld_name
  | Store { base; fld; src } ->
    Format.fprintf fmt "%a.%s = %a" pv base (Types.field_info ctable fld).Types.fld_name pv src
  | Load_global { dst; glb } ->
    let g = Types.global_info ctable glb in
    Format.fprintf fmt "%a = %s.%s" pv dst (Types.class_name ctable g.Types.glb_class) g.Types.glb_name
  | Store_global { glb; src } ->
    let g = Types.global_info ctable glb in
    Format.fprintf fmt "%s.%s = %a" (Types.class_name ctable g.Types.glb_class) g.Types.glb_name pv src
  | Call { dst; kind; args; site } ->
    let pp_args fmt args =
      Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pv fmt args
    in
    let pp_dst fmt = function Some d -> Format.fprintf fmt "%a = " pv d | None -> () in
    (match kind with
    | Virtual { recv; mname } ->
      Format.fprintf fmt "%a%a.%s(%a)  /* site %d */" pp_dst dst pv recv mname pp_args args site
    | Static { target } ->
      Format.fprintf fmt "%a%s(%a)  /* site %d */" pp_dst dst (Types.method_pretty ctable target)
        pp_args args site
    | Ctor { recv; ctor } ->
      Format.fprintf fmt "%a.%s(%a)  /* ctor, site %d */" pv recv
        (Types.method_pretty ctable ctor) pp_args args site)
  | Return { src = Some v } -> Format.fprintf fmt "return %a" pv v
  | Return { src = None } -> Format.fprintf fmt "return"
  | Cast_move { dst; src; cast } -> Format.fprintf fmt "%a = (cast %d) %a" pv dst cast pv src

let pp_method ctable fmt (m : meth) =
  Format.fprintf fmt "@[<v 2>%s(%a) {@,%a@]@,}"
    m.pretty
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") (fun f v ->
         Format.pp_print_string f (var_name m v)))
    m.param_vars
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (pp_instr ctable m))
    m.body

let pp_program fmt p =
  Array.iter (fun m -> Format.fprintf fmt "%a@.@." (pp_method p.ctable) m) p.methods

lib/pag/builder.ml: Array Ir List Option Pag

lib/pag/builder.mli: Ir Pag

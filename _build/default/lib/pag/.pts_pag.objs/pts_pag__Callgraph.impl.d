lib/pag/callgraph.ml: Array Hashtbl Ir List Pag Pts_util

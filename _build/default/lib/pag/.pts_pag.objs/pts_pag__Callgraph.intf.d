lib/pag/callgraph.mli: Ir Pag

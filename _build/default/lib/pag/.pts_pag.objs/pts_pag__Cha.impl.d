lib/pag/cha.ml: Array Builder Callgraph Int Ir List Pag Types

lib/pag/cha.mli: Callgraph Ir Pag Types

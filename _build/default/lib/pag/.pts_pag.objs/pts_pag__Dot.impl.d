lib/pag/dot.ml: Array Buffer Callgraph Hashtbl Ir List Pag Printf String Types

lib/pag/dot.mli: Callgraph Ir Pag

lib/pag/pag.ml: Array Bytes Hashtbl Ir List Printf Types

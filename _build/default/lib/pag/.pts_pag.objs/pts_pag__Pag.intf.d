lib/pag/pag.mli: Ir

type call_desc = {
  cd_site : int;
  cd_caller : int;
  cd_kind : Ir.call_kind;
  cd_args : Pag.node list;
  cd_dst : Pag.node option;
}

let add_method_body pag mid =
  let prog = Pag.program pag in
  let m = prog.Ir.methods.(mid) in
  let node v = Pag.local_node pag ~meth:mid ~var:v in
  let calls = ref [] in
  List.iter
    (fun instr ->
      match instr with
      | Ir.Alloc { dst; cls = _; site } -> Pag.add_new pag ~obj_:(Pag.obj_node pag site) ~dst:(node dst)
      | Ir.Move { dst; src } -> Pag.add_assign pag ~src:(node src) ~dst:(node dst)
      | Ir.Cast_move { dst; src; cast = _ } -> Pag.add_assign pag ~src:(node src) ~dst:(node dst)
      | Ir.Load { dst; base; fld } -> Pag.add_load pag ~base:(node base) ~fld ~dst:(node dst)
      | Ir.Store { base; fld; src } -> Pag.add_store pag ~base:(node base) ~fld ~src:(node src)
      | Ir.Load_global { dst; glb } ->
        Pag.add_assign_global pag ~src:(Pag.global_node pag glb) ~dst:(node dst)
      | Ir.Store_global { glb; src } ->
        Pag.add_assign_global pag ~src:(node src) ~dst:(Pag.global_node pag glb)
      | Ir.Call { dst; kind; args; site } ->
        calls :=
          {
            cd_site = site;
            cd_caller = mid;
            cd_kind = kind;
            cd_args = List.map node args;
            cd_dst = Option.map node dst;
          }
          :: !calls
      | Ir.Return _ -> ())
    m.Ir.body;
  List.rev !calls

let return_nodes pag (m : Ir.meth) =
  List.filter_map
    (function
      | Ir.Return { src = Some v } -> Some (Pag.local_node pag ~meth:m.Ir.id ~var:v)
      | Ir.Return { src = None } | Ir.Alloc _ | Ir.Move _ | Ir.Load _ | Ir.Store _
      | Ir.Load_global _ | Ir.Store_global _ | Ir.Call _ | Ir.Cast_move _ ->
        None)
    m.Ir.body

let receiver_node pag cd =
  match cd.cd_kind with
  | Ir.Virtual { recv; _ } -> Some (Pag.local_node pag ~meth:cd.cd_caller ~var:recv)
  | Ir.Static _ | Ir.Ctor _ -> None

let connect_call pag cd ~target =
  let site = cd.cd_site in
  let formal v = Pag.local_node pag ~meth:target.Ir.id ~var:v in
  (* receiver to [this] *)
  (match (cd.cd_kind, target.Ir.this_var) with
  | Ir.Virtual { recv; _ }, Some this_v ->
    Pag.add_entry pag ~site ~actual:(Pag.local_node pag ~meth:cd.cd_caller ~var:recv)
      ~formal:(formal this_v)
  | Ir.Ctor { recv; _ }, Some this_v ->
    Pag.add_entry pag ~site ~actual:(Pag.local_node pag ~meth:cd.cd_caller ~var:recv)
      ~formal:(formal this_v)
  | (Ir.Virtual _ | Ir.Ctor _), None -> invalid_arg "Builder.connect_call: instance target without this"
  | Ir.Static _, _ -> ());
  (* actuals to formals *)
  List.iter2
    (fun actual formal_var -> Pag.add_entry pag ~site ~actual ~formal:(formal formal_var))
    cd.cd_args target.Ir.param_vars;
  (* returned values to the call's destination *)
  match cd.cd_dst with
  | None -> ()
  | Some dst ->
    List.iter (fun retval -> Pag.add_exit pag ~site ~retval ~dst) (return_nodes pag target)

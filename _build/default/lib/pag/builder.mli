(** Translation of IR method bodies into PAG edges.

    Shared by the two call-graph construction strategies: the Andersen
    solver activates methods on the fly with {!add_method_body} and wires
    discovered call edges with {!connect_call}; the CHA path does the same
    eagerly for every method and every hierarchy-feasible target. *)

type call_desc = {
  cd_site : int;
  cd_caller : int; (** caller method id *)
  cd_kind : Ir.call_kind;
  cd_args : Pag.node list;
  cd_dst : Pag.node option;
}

val add_method_body : Pag.t -> int -> call_desc list
(** Add every non-call edge of the method (new/assign/load/store and the
    assignglobal edges for static-field accesses); return the method's call
    sites for the caller to resolve. *)

val connect_call : Pag.t -> call_desc -> target:Ir.meth -> unit
(** Add entry edges (receiver to [this], actuals to formals) and exit edges
    (each returned variable to the call's destination). *)

val return_nodes : Pag.t -> Ir.meth -> Pag.node list
(** PAG nodes of the variables returned by the method. *)

val receiver_node : Pag.t -> call_desc -> Pag.node option
(** The receiver for virtual calls ([None] for static calls; constructor
    calls are statically resolved so they do not need dispatch). *)

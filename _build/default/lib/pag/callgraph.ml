type t = {
  n_methods : int;
  site_targets : (int, int list ref) Hashtbl.t;
  method_callers : (int, (int * int) list ref) Hashtbl.t;
  caller_sites : (int, int list ref) Hashtbl.t;
  edges : (int * int * int, unit) Hashtbl.t;
  graph : Pts_util.Digraph.t;
  mutable n_edges : int;
}

let create (prog : Ir.program) =
  let n_methods = Array.length prog.Ir.methods in
  let graph = Pts_util.Digraph.create ~capacity:n_methods () in
  Pts_util.Digraph.ensure_node graph (max 0 (n_methods - 1));
  {
    n_methods;
    site_targets = Hashtbl.create 256;
    method_callers = Hashtbl.create 256;
    caller_sites = Hashtbl.create 256;
    edges = Hashtbl.create 1024;
    graph;
    n_edges = 0;
  }

let multi_add tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add tbl key (ref [ v ])

let add_edge t ~site ~caller ~target =
  let key = (site, caller, target) in
  if Hashtbl.mem t.edges key then false
  else begin
    Hashtbl.add t.edges key ();
    multi_add t.site_targets site target;
    multi_add t.method_callers target (site, caller);
    (match Hashtbl.find_opt t.caller_sites caller with
    | Some r -> if not (List.mem site !r) then r := site :: !r
    | None -> Hashtbl.add t.caller_sites caller (ref [ site ]));
    Pts_util.Digraph.add_edge t.graph caller target;
    t.n_edges <- t.n_edges + 1;
    true
  end

let find_list tbl key = match Hashtbl.find_opt tbl key with Some r -> !r | None -> []

let targets t site = find_list t.site_targets site
let callers_of t m = find_list t.method_callers m
let sites_of_caller t m = find_list t.caller_sites m
let edge_count t = t.n_edges

let iter_edges t f = Hashtbl.iter (fun (site, caller, target) () -> f ~site ~caller ~target) t.edges

let method_sccs t = Pts_util.Digraph.scc t.graph

let mark_recursion t pag =
  let comp, n_comps = method_sccs t in
  (* count non-singleton SCCs *)
  let sizes = Array.make n_comps 0 in
  Array.iter (fun c -> if c >= 0 then sizes.(c) <- sizes.(c) + 1) comp;
  (* a self-loop makes a singleton SCC recursive too *)
  let self_recursive = Array.make t.n_methods false in
  iter_edges t (fun ~site:_ ~caller ~target -> if caller = target then self_recursive.(caller) <- true);
  iter_edges t (fun ~site ~caller ~target ->
      let cyclic =
        comp.(caller) = comp.(target) && (sizes.(comp.(caller)) > 1 || self_recursive.(caller))
      in
      if cyclic then Pag.set_recursive_site pag site);
  Array.fold_left (fun acc s -> if s > 1 then acc + 1 else acc) 0 sizes

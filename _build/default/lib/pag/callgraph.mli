(** Call graph, built on the fly by the Andersen solver (our Spark
    substitute) while it discovers receiver types.

    After construction, {!mark_recursion} collapses call-graph cycles the
    way §5.1 of the paper describes: every call site whose caller and some
    target belong to the same SCC is flagged on the PAG as recursive, and
    the CFL analyses traverse its entry/exit edges context-insensitively. *)

type t

val create : Ir.program -> t

val add_edge : t -> site:int -> caller:int -> target:int -> bool
(** Record a call edge; returns [true] iff it is new. *)

val targets : t -> int -> int list
(** Target method ids of a call site (empty if unresolved/dead). *)

val callers_of : t -> int -> (int * int) list
(** [(site, caller method)] pairs that may invoke the given method. *)

val sites_of_caller : t -> int -> int list
(** Call sites whose caller is the given method. *)

val edge_count : t -> int

val iter_edges : t -> (site:int -> caller:int -> target:int -> unit) -> unit

val mark_recursion : t -> Pag.t -> int
(** Tarjan SCC over methods; marks recursive sites on the PAG and returns
    the number of non-singleton SCCs. *)

val method_sccs : t -> int array * int
(** SCC index per method id (valid after construction finished). *)

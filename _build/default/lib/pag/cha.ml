let dispatch_targets (prog : Ir.program) ~recv_cls ~mname =
  let ctable = prog.Ir.ctable in
  (* the implementation the receiver's static class sees... *)
  let base = Types.lookup_method ctable recv_cls mname in
  (* ...plus every override in a subclass of the receiver's class *)
  let overrides =
    List.filter_map
      (fun c ->
        if Types.subclass ctable c recv_cls && c <> recv_cls then
          match Types.lookup_method ctable c mname with
          | Some ms when ms.Types.ms_class = c -> Some ms
          | Some _ | None -> None
        else None)
      (Types.classes ctable)
  in
  let all = match base with Some b -> b :: overrides | None -> overrides in
  List.sort_uniq (fun a b -> Int.compare a.Types.ms_id b.Types.ms_id) all

let receiver_static_class (prog : Ir.program) meth var =
  let m = prog.Ir.methods.(meth) in
  if var < 0 || var >= Array.length m.Ir.var_types then None
  else Types.class_of_typ prog.Ir.ctable m.Ir.var_types.(var)

let build (prog : Ir.program) =
  let pag = Pag.create prog in
  let cg = Callgraph.create prog in
  let connect (cd : Builder.call_desc) target_mid =
    let target = prog.Ir.methods.(target_mid) in
    Builder.connect_call pag cd ~target;
    ignore (Callgraph.add_edge cg ~site:cd.Builder.cd_site ~caller:cd.Builder.cd_caller ~target:target_mid)
  in
  Array.iter
    (fun (m : Ir.meth) ->
      let descs = Builder.add_method_body pag m.Ir.id in
      List.iter
        (fun (cd : Builder.call_desc) ->
          match cd.Builder.cd_kind with
          | Ir.Static { target } -> connect cd target.Types.ms_id
          | Ir.Ctor { ctor; _ } -> connect cd ctor.Types.ms_id
          | Ir.Virtual { recv; mname } -> (
            match receiver_static_class prog cd.Builder.cd_caller recv with
            | None -> ()
            | Some recv_cls ->
              List.iter
                (fun (ms : Types.method_sig) -> connect cd ms.Types.ms_id)
                (dispatch_targets prog ~recv_cls ~mname)))
        descs)
    prog.Ir.methods;
  ignore (Callgraph.mark_recursion cg pag);
  Pag.freeze pag;
  (pag, cg)

(** Class-Hierarchy-Analysis PAG construction — the classic eager
    baseline to the Andersen-driven on-the-fly construction.

    CHA resolves a virtual call [recv.m(...)] to {e every} override of
    [m] declared at or below the receiver's static class, and considers
    every method reachable. The resulting PAG is a superset of the
    on-the-fly one: same nodes, more entry/exit edges, a coarser call
    graph. The demand engines run on it unchanged (and remain sound);
    the bench's ablation quantifies what Spark-style on-the-fly
    construction buys.

    The receiver's static class is recovered from the IR's variable
    types, which lowering preserved for exactly this purpose. *)

val build : Ir.program -> Pag.t * Callgraph.t
(** Eagerly translate every method and connect every
    hierarchy-feasible call edge; recursion is collapsed and the PAG is
    frozen, as in the on-the-fly path. *)

val dispatch_targets : Ir.program -> recv_cls:Types.cls -> mname:string -> Types.method_sig list
(** All overrides visible from [recv_cls] downwards (including the
    inherited implementation), i.e. CHA's target set. *)

(** Graphviz export of the PAG and the call graph.

    Local edges are solid (new/assign bold, load/store labelled by
    field), global edges dashed (entry/exit labelled by call site,
    assignglobal dotted) — mirroring the local/global split of the
    paper's Figure 2. Nodes without any incident edge are omitted. *)

val pag : ?max_nodes:int -> Pag.t -> string
(** DOT source for the PAG; graphs larger than [max_nodes] (default
    400 touched nodes) are truncated with a warning comment. *)

val callgraph : Ir.program -> Callgraph.t -> string
(** DOT source for the method-level call graph; recursive SCC edges are
    highlighted. *)

lib/util/bitset.mli:

lib/util/digraph.ml: Array Hashtbl List

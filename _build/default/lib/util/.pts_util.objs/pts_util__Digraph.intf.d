lib/util/digraph.mli:

lib/util/hstack.ml: Format Hashtbl List

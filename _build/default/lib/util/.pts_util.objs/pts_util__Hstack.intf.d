lib/util/hstack.mli: Format Hashtbl

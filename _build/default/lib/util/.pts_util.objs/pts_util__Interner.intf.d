lib/util/interner.mli:

lib/util/prng.mli:

lib/util/table.mli:

type t = {
  mutable succs : int list array;
  mutable n : int;
  edges : (int * int, unit) Hashtbl.t;
}

let create ?(capacity = 16) () =
  { succs = Array.make (max capacity 1) []; n = 0; edges = Hashtbl.create 64 }

let ensure_node t v =
  if v < 0 then invalid_arg "Digraph.ensure_node: negative node";
  if v >= t.n then begin
    let cap = Array.length t.succs in
    if v >= cap then begin
      let succs = Array.make (max (2 * cap) (v + 1)) [] in
      Array.blit t.succs 0 succs 0 t.n;
      t.succs <- succs
    end;
    t.n <- v + 1
  end

let add_edge t u v =
  ensure_node t u;
  ensure_node t v;
  if not (Hashtbl.mem t.edges (u, v)) then begin
    Hashtbl.add t.edges (u, v) ();
    t.succs.(u) <- v :: t.succs.(u)
  end

let node_count t = t.n

let succ t v = if v < t.n then t.succs.(v) else []

let mem_edge t u v = Hashtbl.mem t.edges (u, v)

let iter_edges t f =
  for u = 0 to t.n - 1 do
    List.iter (fun v -> f u v) t.succs.(u)
  done

(* Iterative Tarjan: an explicit stack of (node, remaining successors)
   frames replaces recursion so that pathological call chains in generated
   workloads cannot overflow the OCaml stack. *)
let scc t =
  let n = t.n in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let visit root =
    let frames = ref [ (root, succ t root) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> assert false
      | (v, todo) :: rest -> (
        match todo with
        | [] ->
          frames := rest;
          (match rest with
          | (parent, _) :: _ ->
            if lowlink.(v) < lowlink.(parent) then lowlink.(parent) <- lowlink.(v)
          | [] -> ());
          if lowlink.(v) = index.(v) then begin
            let rec popall () =
              match !stack with
              | [] -> assert false
              | w :: tl ->
                stack := tl;
                on_stack.(w) <- false;
                comp.(w) <- !next_comp;
                if w <> v then popall ()
            in
            popall ();
            incr next_comp
          end
        | w :: tl ->
          frames := (v, tl) :: rest;
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack := w :: !stack;
            on_stack.(w) <- true;
            frames := (w, succ t w) :: !frames
          end
          else if on_stack.(w) && index.(w) < lowlink.(v) then lowlink.(v) <- index.(w))
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  (comp, !next_comp)

let same_scc ~comp u v = u < Array.length comp && v < Array.length comp && comp.(u) = comp.(v)

let reachable_from t roots =
  let seen = Array.make (max t.n 1) false in
  let rec go v =
    if v < t.n && not seen.(v) then begin
      seen.(v) <- true;
      List.iter go (succ t v)
    end
  in
  List.iter go roots;
  seen

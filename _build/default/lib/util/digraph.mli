(** Growable directed graphs over dense integer nodes, with Tarjan SCC.

    Used for the call graph (recursion-cycle collapsing, §5.1 of the paper)
    and for reachability utilities in the workload generator. *)

type t

val create : ?capacity:int -> unit -> t

val ensure_node : t -> int -> unit
(** Make sure node ids [0..n] exist (isolated if never mentioned). *)

val add_edge : t -> int -> int -> unit
(** [add_edge t u v] adds a directed edge; duplicates are kept out. *)

val node_count : t -> int

val succ : t -> int -> int list
(** Successors of a node, unordered. *)

val mem_edge : t -> int -> int -> bool

val iter_edges : t -> (int -> int -> unit) -> unit

val scc : t -> int array * int
(** [scc t] returns [(comp, count)] where [comp.(v)] is the SCC index of [v]
    in reverse topological order of the condensation (a successor's component
    index is <= the node's), and [count] the number of components. Tarjan's
    algorithm, iterative (no stack overflow on deep graphs). *)

val same_scc : comp:int array -> int -> int -> bool

val reachable_from : t -> int list -> bool array
(** Forward reachability from a set of roots. *)

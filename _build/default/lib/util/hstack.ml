type t =
  | Empty
  | Cons of { id : int; depth : int; top : int; rest : t }

let id = function Empty -> 0 | Cons c -> c.id

let equal = ( == )

let hash t = id t

(* The hash-cons table maps (top, id rest) to the existing cell, so that
   [push] is the only allocator of [Cons] cells. *)
module Key = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 0x1fffffff) lxor b
end

module Cache = Hashtbl.Make (Key)

let cache : t Cache.t = Cache.create 4096
let next_id = ref 1

let empty = Empty

let depth = function Empty -> 0 | Cons c -> c.depth

let push t x =
  let key = (x, id t) in
  match Cache.find_opt cache key with
  | Some s -> s
  | None ->
    let s = Cons { id = !next_id; depth = depth t + 1; top = x; rest = t } in
    incr next_id;
    Cache.add cache key s;
    s

let pop = function Empty -> None | Cons c -> Some c.rest

let pop_exn = function
  | Empty -> invalid_arg "Hstack.pop_exn: empty stack"
  | Cons c -> c.rest

let peek = function Empty -> None | Cons c -> Some c.top

let is_empty = function Empty -> true | Cons _ -> false

let rec to_list = function Empty -> [] | Cons c -> c.top :: to_list c.rest

let of_list l = List.fold_left push empty (List.rev l)

let pp pp_elt fmt t =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_elt)
    (to_list t)

let table_size () = Cache.length cache

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

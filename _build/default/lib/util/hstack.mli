(** Hash-consed immutable stacks of integers.

    Field stacks and context stacks are the hottest data structures of a
    CFL-reachability analysis: they are pushed/popped on every traversal step
    and used as hash-table keys in the summary cache. Hash-consing gives them
    O(1) physical equality and a precomputed hash, and deduplicates storage
    across the millions of stacks a query sweep creates.

    The hash-cons table is global and append-only; stacks from different
    analyses share structure safely because stacks are immutable. *)

type t

val empty : t
(** The empty stack. There is exactly one empty stack. *)

val push : t -> int -> t
(** [push s x] is the stack with [x] on top of [s]. Hash-consed: pushing the
    same element on the same stack returns the identical value. *)

val pop : t -> t option
(** [pop s] removes the top element, or [None] if [s] is empty. *)

val pop_exn : t -> t
(** @raise Invalid_argument on the empty stack. *)

val peek : t -> int option
(** Top element without removing it. *)

val is_empty : t -> bool

val depth : t -> int
(** Number of elements. O(1). *)

val equal : t -> t -> bool
(** Physical equality — valid because of hash-consing. O(1). *)

val hash : t -> int
(** Precomputed. O(1). *)

val id : t -> int
(** Unique id of this stack value; stable within a process run. *)

val to_list : t -> int list
(** Top first. *)

val of_list : int list -> t
(** [of_list l] has [List.hd l] on top; inverse of {!to_list}. *)

val pp : (Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
(** [pp pp_elt fmt s] prints [\[x1, x2, ...\]] top-first. *)

val table_size : unit -> int
(** Number of distinct stacks ever created (diagnostics). *)

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by stacks, using the O(1) equality/hash above. *)

type t = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n : int;
}

let create ?(capacity = 64) () =
  { ids = Hashtbl.create capacity; names = Array.make (max capacity 1) ""; n = 0 }

let size t = t.n

let grow t =
  let cap = Array.length t.names in
  if t.n >= cap then begin
    let names = Array.make (2 * cap) "" in
    Array.blit t.names 0 names 0 t.n;
    t.names <- names
  end

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some i -> i
  | None ->
    let i = t.n in
    grow t;
    t.names.(i) <- s;
    t.n <- i + 1;
    Hashtbl.add t.ids s i;
    i

let find t s = Hashtbl.find_opt t.ids s

let name t i =
  if i < 0 || i >= t.n then invalid_arg "Interner.name: unknown id";
  t.names.(i)

let iter t f =
  for i = 0 to t.n - 1 do
    f i t.names.(i)
  done

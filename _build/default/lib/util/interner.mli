(** Bidirectional string interner.

    Names (variables, fields, methods, classes) are interned to dense
    integers once during frontend processing; the analyses then work on
    integers only. Each namespace gets its own interner. *)

type t

val create : ?capacity:int -> unit -> t

val intern : t -> string -> int
(** [intern t s] returns the id of [s], allocating the next dense id on the
    first occurrence. *)

val find : t -> string -> int option
(** Id of [s] if already interned. *)

val name : t -> int -> string
(** Inverse of {!intern}. @raise Invalid_argument on an unknown id. *)

val size : t -> int
(** Number of interned strings; valid ids are [0 .. size - 1]. *)

val iter : t -> (int -> string -> unit) -> unit
(** Iterate in id order. *)

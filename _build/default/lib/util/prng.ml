type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.mul (Int64.of_int (seed + 1)) 0x2545F4914F6CDD1DL }

let copy t = { state = t.state }

(* SplitMix64 core step: fixed-increment state, then a 64-bit finaliser. *)
let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next64 t in
  { state = Int64.mul seed 0xDA942042E4DD58B5L }

let nonneg t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  nonneg t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t bound =
  let mask53 = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float mask53 /. 9007199254740992.0 *. bound

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let weighted t cases =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 cases in
  if total <= 0 then invalid_arg "Prng.weighted: no positive weight";
  let rec pick n = function
    | [] -> assert false
    | (w, x) :: rest -> if n < w then x else pick (n - max 0 w) rest
  in
  pick (int t total) cases

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  let n = min k (Array.length arr) in
  Array.to_list (Array.sub arr 0 n)

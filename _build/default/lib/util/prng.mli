(** Deterministic pseudo-random number generator (SplitMix64).

    Every randomised component of the reproduction (workload generation,
    property-based shrinking seeds, query shuffling) draws from this
    generator so that runs are bit-for-bit reproducible from a seed, unlike
    [Stdlib.Random] whose sequence is not stable across OCaml versions. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Generators with equal seeds
    produce equal streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Streams of the
    parent and child are statistically independent. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on [||]. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t cases] picks a case with probability proportional to its
    non-negative integer weight. @raise Invalid_argument if all weights are
    zero or the list is empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements, preserving
    no particular order. *)

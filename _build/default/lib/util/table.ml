type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  headers : string list;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?title cols =
  {
    title;
    headers = List.map fst cols;
    aligns = Array.of_list (List.map snd cols);
    rows = [];
  }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Sep -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad i s =
    let w = widths.(i) in
    let n = w - String.length s in
    if n <= 0 then s
    else
      match t.aligns.(i) with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let hline () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let put_row cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad i c);
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  hline ();
  put_row t.headers;
  hline ();
  List.iter (function Cells c -> put_row c | Sep -> hline ()) rows;
  hline ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fmt_float ?(digits = 2) x = Printf.sprintf "%.*f" digits x

let fmt_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let fmt_k n = Printf.sprintf "%.1f" (float_of_int n /. 1000.0)

let fmt_speedup x = Printf.sprintf "%.2fx" x

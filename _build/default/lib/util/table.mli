(** Aligned ASCII tables for the benchmark harness.

    Rendering matches what the paper's tables report: a header row, body
    rows, optional separators, right-aligned numeric cells. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the arity differs from the header. *)

val add_sep : t -> unit
(** Horizontal separator before the next row. *)

val render : t -> string

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

(** {2 Cell formatting helpers} *)

val fmt_float : ?digits:int -> float -> string
val fmt_pct : float -> string
(** [fmt_pct 0.873] is ["87.3%"]. *)

val fmt_k : int -> string
(** Thousands with one decimal: [fmt_k 16600] is ["16.6"]. *)

val fmt_speedup : float -> string
(** [fmt_speedup 1.95] is ["1.95x"]. *)

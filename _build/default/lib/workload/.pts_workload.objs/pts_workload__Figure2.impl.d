lib/workload/figure2.ml: Array Ir List Pts_clients Query Types

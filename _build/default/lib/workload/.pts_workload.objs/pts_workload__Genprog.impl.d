lib/workload/genprog.ml: Buffer List Printf Pts_util

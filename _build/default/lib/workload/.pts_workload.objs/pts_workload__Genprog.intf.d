lib/workload/genprog.mli:

lib/workload/suite.ml: Genprog Hashtbl List Printf Pts_clients String

lib/workload/suite.mli: Genprog Pts_clients

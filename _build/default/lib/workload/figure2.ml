(** The paper's running example (Figure 2): a [Vector] container used by
    two [Client]s under different calling contexts. The context-sensitive
    answer distinguishes [s1 -> {Integer}] from [s2 -> {String}]; any
    context-insensitive analysis merges them. Used by the Table 1
    walkthrough, the quickstart example, and as the canonical end-to-end
    correctness test. *)

let source =
  {|
class Vector {
  Object[] elems;
  int count;
  Vector() {
    Object[] t = new Object[8];
    this.elems = t;
  }
  void add(Object p) {
    Object[] t = this.elems;
    t[this.count] = p;
    this.count = this.count + 1;
  }
  Object get(int i) {
    Object[] t = this.elems;
    return t[i];
  }
}

class Client {
  Vector vec;
  Client() {}
  Client(Vector v) { this.vec = v; }
  void set(Vector v) { this.vec = v; }
  Object retrieve() {
    Vector t = this.vec;
    return t.get(0);
  }
}

class Main {
  static void main() {
    Vector v1 = new Vector();
    v1.add(new Integer(1));
    Client c1 = new Client(v1);
    Vector v2 = new Vector();
    v2.add(new String());
    Client c2 = new Client();
    c2.set(v2);
    Object s1 = c1.retrieve();
    Object s2 = c2.retrieve();
  }
}
|}

let pipeline () = Pts_clients.Pipeline.of_source source

let s1 pl = Pts_clients.Pipeline.find_local pl ~meth_pretty:"Main.main" ~var:"s1"
let s2 pl = Pts_clients.Pipeline.find_local pl ~meth_pretty:"Main.main" ~var:"s2"

(* The allocation classes the two queries must resolve to. *)
let expected_class pl node =
  let prog = pl.Pts_clients.Pipeline.prog in
  let ctable = prog.Ir.ctable in
  let integer = Types.find_class ctable "Integer" in
  let string_ = Types.find_class ctable "String" in
  ignore node;
  (integer, string_)

let site_classes pl outcome =
  let prog = pl.Pts_clients.Pipeline.prog in
  match outcome with
  | Query.Exceeded -> []
  | Query.Resolved ts ->
    List.map (fun site -> prog.Ir.allocs.(site).Ir.alloc_cls) (Query.sites ts)

test/test_andersen.ml: Alcotest Array Dynsum Ir List Pts_andersen Pts_clients Pts_util Pts_workload Query Types

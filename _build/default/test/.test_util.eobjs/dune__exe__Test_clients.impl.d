test/test_clients.ml: Alcotest Engine Float Format List Printf Pts_clients Pts_workload String

test/test_core.ml: Alcotest Alias Array Budget Dynsum Engine Fieldbased Filename Fstack Fun Ir List Option Pag Ppta Pts_clients Pts_util Pts_workload Query Sb Stasum Sys Types

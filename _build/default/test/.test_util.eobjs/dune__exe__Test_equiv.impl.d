test/test_equiv.ml: Alcotest Dynsum Engine List Pts_andersen Pts_clients Pts_util Pts_workload QCheck QCheck_alcotest Query Sb Stasum

test/test_frontend.ml: Alcotest Array Ast Frontend Hashtbl Ir Lexer List Pag Parser Pretty Printf Pts_clients Pts_core Pts_workload QCheck QCheck_alcotest Types

test/test_pag.ml: Alcotest Array Callgraph Ir Lazy List Pag Pts_clients Pts_workload Types

test/test_pag.mli:

test/test_programs.ml: Alcotest Array Dynsum Engine Filename Ir List Pts_clients Query Sys Types Witness

test/test_tools.ml: Alcotest Alias Array Budget Callgraph Cha Dot Dynsum Engine Format Frontend Ir List Ppta Pts_clients Pts_workload Query String Types Witness

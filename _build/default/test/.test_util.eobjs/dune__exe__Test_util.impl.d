test/test_util.ml: Alcotest Array List Pts_util QCheck QCheck_alcotest String

test/test_workload.ml: Alcotest Callgraph Dynsum Ir List Pag Pts_clients Pts_workload Types

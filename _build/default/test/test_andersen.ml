(* Whole-program Andersen solver (the Spark substitute) tests. *)

let check = Alcotest.check

let pipeline src = Pts_clients.Pipeline.of_source src

let site_classes (pl : Pts_clients.Pipeline.t) set =
  let prog = pl.Pts_clients.Pipeline.prog in
  Pts_util.Bitset.fold set ~init:[] ~f:(fun acc site ->
      Types.class_name prog.Ir.ctable prog.Ir.allocs.(site).Ir.alloc_cls :: acc)
  |> List.sort_uniq compare

let pts_of pl meth var =
  let node = Pts_clients.Pipeline.find_local pl ~meth_pretty:meth ~var in
  Pts_andersen.Solver.points_to pl.Pts_clients.Pipeline.solver node

let test_direct_alloc () =
  let pl = pipeline "class A {} class Main { static void main() { A a = new A(); } }" in
  check (Alcotest.list Alcotest.string) "a -> A" [ "A" ] (site_classes pl (pts_of pl "Main.main" "a"))

let test_copy_chain () =
  let pl =
    pipeline "class A {} class Main { static void main() { A a = new A(); A b = a; A c = b; } }"
  in
  check (Alcotest.list Alcotest.string) "c -> A" [ "A" ] (site_classes pl (pts_of pl "Main.main" "c"))

let test_field_sensitivity () =
  let pl =
    pipeline
      {|
class Box { Object f; Object g; Box() {} }
class A {} class B {}
class Main {
  static void main() {
    Box x = new Box();
    x.f = new A();
    x.g = new B();
    Object rf = x.f;
    Object rg = x.g;
  }
}|}
  in
  check (Alcotest.list Alcotest.string) "rf sees only f" [ "A" ]
    (site_classes pl (pts_of pl "Main.main" "rf"));
  check (Alcotest.list Alcotest.string) "rg sees only g" [ "B" ]
    (site_classes pl (pts_of pl "Main.main" "rg"))

let test_context_insensitive_merge () =
  (* the classic imprecision Andersen must exhibit: Figure 2's s1/s2 merge *)
  let pl = pipeline Pts_workload.Figure2.source in
  check (Alcotest.list Alcotest.string) "s1 merged" [ "Integer"; "String" ]
    (site_classes pl (pts_of pl "Main.main" "s1"));
  check (Alcotest.list Alcotest.string) "s2 merged" [ "Integer"; "String" ]
    (site_classes pl (pts_of pl "Main.main" "s2"))

let test_globals_flow () =
  let pl =
    pipeline
      {|
class A {}
class G { static Object slot; }
class Main {
  static void main() {
    G.slot = new A();
    Object r = G.slot;
  }
}|}
  in
  check (Alcotest.list Alcotest.string) "through global" [ "A" ]
    (site_classes pl (pts_of pl "Main.main" "r"))

let test_parameters_and_returns () =
  let pl =
    pipeline
      {|
class A {}
class Id { Object id(Object x) { return x; } }
class Main { static void main() { Id i = new Id(); Object r = i.id(new A()); } }|}
  in
  check (Alcotest.list Alcotest.string) "identity" [ "A" ]
    (site_classes pl (pts_of pl "Main.main" "r"))

let test_unreachable_methods_skipped () =
  let pl =
    pipeline
      {|
class Dead { void never() { Object x = new Object(); } }
class Main { static void main() { Object o = new Object(); } }|}
  in
  let prog = pl.Pts_clients.Pipeline.prog in
  let dead = Array.to_list prog.Ir.methods |> List.find (fun m -> m.Ir.pretty = "Dead.never") in
  check Alcotest.bool "dead method unreachable" false
    (Pts_andersen.Solver.is_reachable pl.Pts_clients.Pipeline.solver dead.Ir.id);
  let main = Array.to_list prog.Ir.methods |> List.find (fun m -> m.Ir.pretty = "Main.main") in
  check Alcotest.bool "main reachable" true
    (Pts_andersen.Solver.is_reachable pl.Pts_clients.Pipeline.solver main.Ir.id)

let test_on_the_fly_dispatch_growth () =
  (* B only becomes a receiver through a container round-trip: dispatch
     must discover B.m even though the receiver's static type is A *)
  let pl =
    pipeline
      {|
class A { Object m() { return new A(); } }
class B extends A { Object m() { return new B(); } }
class Box { Object v; Box() {} void put(Object x) { this.v = x; } Object take() { return this.v; } }
class Main {
  static void main() {
    Box box = new Box();
    box.put(new B());
    A recv = (A) box.take();
    Object r = recv.m();
  }
}|}
  in
  check (Alcotest.list Alcotest.string) "discovered B.m" [ "B" ]
    (site_classes pl (pts_of pl "Main.main" "r"))

let test_soundness_vs_demand_on_suite () =
  (* Andersen over-approximates every context-sensitive demand answer *)
  let pl = Pts_workload.Suite.pipeline "jack" in
  let pag = pl.Pts_clients.Pipeline.pag in
  let dynsum = Dynsum.create pag in
  let queries = Pts_clients.Nullderef.queries pl in
  List.iteri
    (fun i q ->
      if i mod 7 = 0 then begin
        let node = q.Pts_clients.Client.q_node in
        match Dynsum.points_to dynsum node with
        | Query.Exceeded -> ()
        | Query.Resolved ts ->
          let ander = Pts_andersen.Solver.points_to pl.Pts_clients.Pipeline.solver node in
          List.iter
            (fun site ->
              check Alcotest.bool "demand within Andersen" true (Pts_util.Bitset.mem ander site))
            (Query.sites ts)
      end)
    queries

let () =
  Alcotest.run "andersen"
    [
      ( "solver",
        [
          Alcotest.test_case "direct alloc" `Quick test_direct_alloc;
          Alcotest.test_case "copy chain" `Quick test_copy_chain;
          Alcotest.test_case "field sensitivity" `Quick test_field_sensitivity;
          Alcotest.test_case "context-insensitive merge" `Quick test_context_insensitive_merge;
          Alcotest.test_case "globals" `Quick test_globals_flow;
          Alcotest.test_case "params and returns" `Quick test_parameters_and_returns;
          Alcotest.test_case "unreachable skipped" `Quick test_unreachable_methods_skipped;
          Alcotest.test_case "on-the-fly dispatch" `Quick test_on_the_fly_dispatch_growth;
          Alcotest.test_case "soundness oracle" `Quick test_soundness_vs_demand_on_suite;
        ] );
    ]

(* Client tests: SafeCast, NullDeref, FactoryM verdicts on programs with
   known ground truth, plus the batching framework. *)

let check = Alcotest.check

let pipeline src = Pts_clients.Pipeline.of_source src

let run_client queries (pl : Pts_clients.Pipeline.t) =
  let engine = List.hd (Pts_clients.Pipeline.engines pl) in
  (* norefine: exact *)
  List.map
    (fun q ->
      ( q.Pts_clients.Client.q_desc,
        Pts_clients.Client.verdict_of q.Pts_clients.Client.q_pred
          (engine.Engine.points_to ~satisfy:q.Pts_clients.Client.q_pred q.Pts_clients.Client.q_node)
      ))
    queries

let verdict = Alcotest.testable
    (fun fmt -> function
      | Pts_clients.Client.Proved -> Format.pp_print_string fmt "Proved"
      | Pts_clients.Client.Refuted -> Format.pp_print_string fmt "Refuted"
      | Pts_clients.Client.Unknown -> Format.pp_print_string fmt "Unknown")
    ( = )

(* ----------------------------- SafeCast ----------------------------- *)

let test_safecast_safe_and_unsafe () =
  let pl =
    pipeline
      {|
class A {} class B extends A {} class C {}
class Box { Object v; Box() {} void put(Object x) { this.v = x; } Object take() { return this.v; } }
class Main {
  static void main() {
    Box good = new Box();
    good.put(new B());
    A ok = (A) good.take();
    Box bad = new Box();
    bad.put(new C());
    A boom = (A) bad.take();
  }
}|}
  in
  match run_client (Pts_clients.Safecast.queries pl) pl with
  | [ (_, v1); (_, v2) ] ->
    check verdict "downcast of B to A is safe" Pts_clients.Client.Proved v1;
    check verdict "cast of C to A is refuted" Pts_clients.Client.Refuted v2
  | l -> Alcotest.fail (Printf.sprintf "expected 2 queries, got %d" (List.length l))

let test_safecast_skips_trivial_and_dead () =
  let pl =
    pipeline
      {|
class A {} class B extends A {}
class Dead { void never() { A x = (A) new B(); Object o = (B) x; } }
class Main { static void main() { B b = new B(); A up = (A) b; } }|}
  in
  (* the upcast in main is trivial; Dead.never is unreachable *)
  check Alcotest.int "no queries" 0 (List.length (Pts_clients.Safecast.queries pl))

let test_safecast_null_is_benign () =
  let pl =
    pipeline
      {|
class A {}
class Main { static void main() { Object x = null; A a = (A) x; } }|}
  in
  match run_client (Pts_clients.Safecast.queries pl) pl with
  | [ (_, v) ] -> check verdict "casting null is safe" Pts_clients.Client.Proved v
  | _ -> Alcotest.fail "expected 1 query"

(* ----------------------------- NullDeref ---------------------------- *)

let test_nullderef_flags_null () =
  let pl =
    pipeline
      {|
class Box { Object v; Box() {} }
class Main {
  static void main() {
    Box safe = new Box();
    safe.v = new Object();
    Box dodgy = null;
    dodgy.v = new Object();
  }
}|}
  in
  let verdicts = run_client (Pts_clients.Nullderef.queries pl) pl in
  let refuted = List.filter (fun (_, v) -> v = Pts_clients.Client.Refuted) verdicts in
  let proved = List.filter (fun (_, v) -> v = Pts_clients.Client.Proved) verdicts in
  check Alcotest.bool "dodgy deref refuted" true (List.length refuted >= 1);
  check Alcotest.bool "safe deref proved" true (List.length proved >= 1)

let test_nullderef_context_sensitivity_pays () =
  (* null flows into the box of one context only; a context-insensitive
     analysis would flag both dereferences *)
  let pl =
    pipeline
      {|
class Id { Object id(Object x) { return x; } }
class Main {
  static void main() {
    Id i = new Id();
    Object clean = i.id(new Object());
    Object dirty = i.id(null);
    int h1 = clean.hashCode();
    int h2 = dirty.hashCode();
  }
}|}
  in
  let verdicts = run_client (Pts_clients.Nullderef.queries pl) pl in
  let of_desc frag =
    match
      List.find_opt
        (fun (d, _) ->
          let contains needle hay =
            let n = String.length needle and h = String.length hay in
            let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
            go 0
          in
          contains frag d)
        verdicts
    with
    | Some (_, v) -> v
    | None -> Alcotest.fail ("no query for " ^ frag)
  in
  check verdict "clean receiver proved" Pts_clients.Client.Proved (of_desc "of clean");
  check verdict "dirty receiver refuted" Pts_clients.Client.Refuted (of_desc "of dirty")

(* ----------------------------- FactoryM ----------------------------- *)

let test_factorym_fresh_vs_relay () =
  let pl =
    pipeline
      {|
class A {}
class F {
  F() {}
  Object fresh() { return new A(); }
  Object relay(Object x) { Object d = new A(); return x; }
}
class Main {
  static void main() {
    F f = new F();
    Object good = f.fresh();
    Object bad = f.relay(new Object());
  }
}|}
  in
  let verdicts = run_client (Pts_clients.Factorym.queries pl) pl in
  check Alcotest.int "two factory calls" 2 (List.length verdicts);
  let vs = List.map snd verdicts in
  check Alcotest.bool "one proved one refuted" true
    (List.mem Pts_clients.Client.Proved vs && List.mem Pts_clients.Client.Refuted vs)

let test_factorym_skips_non_allocating () =
  let pl =
    pipeline
      {|
class Box { Object v; Box() {} Object take() { return this.v; } }
class Main { static void main() { Box b = new Box(); Object r = b.take(); } }|}
  in
  check Alcotest.int "accessors are not factories" 0
    (List.length (Pts_clients.Factorym.queries pl))

(* ------------------------------ Devirt ------------------------------ *)

let test_devirt_verdicts () =
  let pl =
    pipeline
      {|
class A { Object m() { return new A(); } }
class B extends A { Object m() { return new B(); } }
class Main {
  static void main() {
    A mono = new A();
    Object r1 = mono.m();
    A poly;
    if (1 < 2) { poly = new A(); } else { poly = new B(); }
    Object r2 = poly.m();
  }
}|}
  in
  let verdicts = run_client (Pts_clients.Devirt.queries pl) pl in
  check Alcotest.int "two polymorphic-by-CHA sites" 2 (List.length verdicts);
  let vs = List.map snd verdicts in
  check Alcotest.bool "mono receiver devirtualised" true (List.mem Pts_clients.Client.Proved vs);
  check Alcotest.bool "mixed receiver not devirtualised" true
    (List.mem Pts_clients.Client.Refuted vs)

let test_devirt_skips_cha_monomorphic () =
  (* no override anywhere: CHA already resolves the site, no query *)
  let pl =
    pipeline
      {|
class A { Object m() { return new A(); } }
class Main { static void main() { A a = new A(); Object r = a.m(); } }|}
  in
  check Alcotest.int "no queries" 0 (List.length (Pts_clients.Devirt.queries pl))

(* ------------------------- Batching framework ----------------------- *)

let test_run_batches_partition () =
  let pl = Pts_workload.Suite.pipeline "jack" in
  let queries = Pts_clients.Safecast.queries pl in
  let engine = List.nth (Pts_clients.Pipeline.engines pl) 2 (* dynsum *) in
  let results = Pts_clients.Client.run_batches engine queries ~batches:10 in
  check Alcotest.int "ten batches" 10 (List.length results);
  let total =
    List.fold_left (fun acc r -> acc + Pts_clients.Client.total r.Pts_clients.Client.tally) 0 results
  in
  check Alcotest.int "partition covers all queries" (List.length queries) total

let test_batches_reuse_decreases_steps () =
  (* DYNSUM's whole point: later batches are cheaper. Raw per-batch cost
     depends on which queries land in a batch, so compare
     difficulty-adjusted cost — DYNSUM normalised to the cache-free
     NOREFINE on the same batch, exactly Figure 4's metric. *)
  let pl = Pts_workload.Suite.pipeline "javac" in
  let queries = Pts_clients.Nullderef.queries pl in
  let engines = Pts_clients.Pipeline.engines pl in
  let dyn_batches = Pts_clients.Client.run_batches (List.nth engines 2) queries ~batches:5 in
  let ref_batches = Pts_clients.Client.run_batches (List.nth engines 0) queries ~batches:5 in
  let normalised =
    List.map2
      (fun (d : Pts_clients.Client.run_result) (r : Pts_clients.Client.run_result) ->
        float_of_int d.Pts_clients.Client.steps
        /. Float.max 1.0 (float_of_int r.Pts_clients.Client.steps))
      dyn_batches ref_batches
  in
  (* reuse must pay off in later batches; individual batches wobble with
     query difficulty (as in the paper's Figure 4), so compare the first
     batch against the best and the mean of the rest *)
  let first = List.hd normalised in
  let rest = List.tl normalised in
  let best_rest = List.fold_left Float.min infinity rest in
  check Alcotest.bool "some later batch is relatively cheaper" true (best_rest < first);
  (* and the summary cache only grows *)
  let sums = List.map (fun r -> r.Pts_clients.Client.summaries_after) dyn_batches in
  check Alcotest.bool "cache monotone" true (List.sort compare sums = sums)

let test_tally_arithmetic () =
  let open Pts_clients.Client in
  let a = { proved = 1; refuted = 2; unknown = 3 } in
  let b = { proved = 10; refuted = 20; unknown = 30 } in
  let c = add_tally a b in
  check Alcotest.int "proved" 11 c.proved;
  check Alcotest.int "total" 66 (total c)

let () =
  Alcotest.run "clients"
    [
      ( "safecast",
        [
          Alcotest.test_case "safe and unsafe" `Quick test_safecast_safe_and_unsafe;
          Alcotest.test_case "skips trivial and dead" `Quick test_safecast_skips_trivial_and_dead;
          Alcotest.test_case "null benign" `Quick test_safecast_null_is_benign;
        ] );
      ( "nullderef",
        [
          Alcotest.test_case "flags null" `Quick test_nullderef_flags_null;
          Alcotest.test_case "context-sensitivity pays" `Quick test_nullderef_context_sensitivity_pays;
        ] );
      ( "factorym",
        [
          Alcotest.test_case "fresh vs relay" `Quick test_factorym_fresh_vs_relay;
          Alcotest.test_case "skips accessors" `Quick test_factorym_skips_non_allocating;
        ] );
      ( "devirt",
        [
          Alcotest.test_case "verdicts" `Quick test_devirt_verdicts;
          Alcotest.test_case "skips CHA-monomorphic" `Quick test_devirt_skips_cha_monomorphic;
        ] );
      ( "batching",
        [
          Alcotest.test_case "partition" `Quick test_run_batches_partition;
          Alcotest.test_case "reuse decreases cost" `Quick test_batches_reuse_decreases_steps;
          Alcotest.test_case "tally arithmetic" `Quick test_tally_arithmetic;
        ] );
    ]

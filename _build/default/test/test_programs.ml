(* Integration tests over the hand-written example programs in
   examples/programs/ — realistic, non-generated inputs exercising the
   whole stack (frontend with for/instanceof/super, PAG, engines,
   clients). *)

let check = Alcotest.check

(* locate examples/programs both under `dune runtest` (cwd = test dir in
   _build) and `dune exec` (cwd = invocation dir) *)
let rec find_programs_dir dir depth =
  let candidate = Filename.concat dir "examples/programs" in
  if Sys.file_exists candidate && Sys.is_directory candidate then Some candidate
  else if depth = 0 then None
  else find_programs_dir (Filename.concat dir Filename.parent_dir_name) (depth - 1)

let load name =
  let dir =
    match find_programs_dir (Sys.getcwd ()) 6 with
    | Some d -> d
    | None -> Alcotest.fail "examples/programs not found from cwd"
  in
  let ic = open_in_bin (Filename.concat dir name) in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Pts_clients.Pipeline.of_source src

let client_verdicts queries (engine : Engine.engine) =
  List.map
    (fun q ->
      ( q.Pts_clients.Client.q_desc,
        Pts_clients.Client.verdict_of q.Pts_clients.Client.q_pred
          (engine.Engine.points_to ~satisfy:q.Pts_clients.Client.q_pred q.Pts_clients.Client.q_node)
      ))
    queries

let count v verdicts = List.length (List.filter (fun (_, x) -> x = v) verdicts)

let engines_agree pl queries =
  let engines = Pts_clients.Pipeline.engines ~with_stasum:true pl in
  match List.map (client_verdicts queries) engines with
  | [] -> ()
  | first :: rest ->
    List.iter
      (fun other ->
        List.iter2
          (fun (d, a) (_, b) ->
            if a <> Pts_clients.Client.Unknown && b <> Pts_clients.Client.Unknown then
              check Alcotest.bool ("agree on " ^ d) true (a = b))
          first other)
      rest

(* ----------------------------- eventbus ----------------------------- *)

let test_eventbus_safecast () =
  let pl = load "eventbus.mj" in
  let queries = Pts_clients.Safecast.queries pl in
  let dynsum = List.nth (Pts_clients.Pipeline.engines pl) 2 in
  let verdicts = client_verdicts queries dynsum in
  (* JoinHandler's and PostHandler's casts are safe; AuditHandler's cast
     sees UserJoined payloads through publishJoin and must be refuted *)
  check Alcotest.bool "has safe casts" true (count Pts_clients.Client.Proved verdicts >= 2);
  let refuted =
    List.filter (fun (d, v) -> v = Pts_clients.Client.Refuted && d <> "") verdicts
  in
  check Alcotest.int "exactly the audit cast is unsafe" 1 (List.length refuted);
  engines_agree pl queries

let test_eventbus_handler_separation () =
  (* the JoinHandler only ever receives join events: its payload resolves
     to UserJoined only *)
  let pl = load "eventbus.mj" in
  let prog = pl.Pts_clients.Pipeline.prog in
  let dynsum = Dynsum.create pl.Pts_clients.Pipeline.pag in
  let u = Pts_clients.Pipeline.find_local pl ~meth_pretty:"JoinHandler.handle" ~var:"u" in
  match Dynsum.points_to dynsum u with
  | Query.Exceeded -> Alcotest.fail "exceeded"
  | Query.Resolved ts ->
    let classes =
      Query.sites ts
      |> List.map (fun s -> Types.class_name prog.Ir.ctable prog.Ir.allocs.(s).Ir.alloc_cls)
      |> List.sort_uniq compare
    in
    check (Alcotest.list Alcotest.string) "only join payloads" [ "UserJoined" ] classes

(* ------------------------------ shapes ------------------------------ *)

let test_shapes_compiles_and_agrees () =
  let pl = load "shapes.mj" in
  engines_agree pl (Pts_clients.Safecast.queries pl);
  engines_agree pl (Pts_clients.Factorym.queries pl)

let test_shapes_factory () =
  let pl = load "shapes.mj" in
  let queries = Pts_clients.Factorym.queries pl in
  check Alcotest.bool "factory calls found" true (queries <> []);
  let dynsum = List.nth (Pts_clients.Pipeline.engines pl) 2 in
  let verdicts = client_verdicts queries dynsum in
  (* ShapeFactory.make and the clone_ methods really return fresh objects *)
  check Alcotest.int "no violations" 0 (count Pts_clients.Client.Refuted verdicts)

let test_shapes_registry_cast () =
  (* Registry.lastDrawn is a context-insensitive global holding scene and
     its copy — both Groups here, so the (Group) downcast is provable *)
  let pl = load "shapes.mj" in
  let prog = pl.Pts_clients.Pipeline.prog in
  let dynsum = Dynsum.create pl.Pts_clients.Pipeline.pag in
  let last = Pts_clients.Pipeline.find_local pl ~meth_pretty:"Main.main" ~var:"last" in
  match Dynsum.points_to dynsum last with
  | Query.Exceeded -> Alcotest.fail "exceeded"
  | Query.Resolved ts ->
    let classes =
      Query.sites ts
      |> List.map (fun s -> Types.class_name prog.Ir.ctable prog.Ir.allocs.(s).Ir.alloc_cls)
      |> List.sort_uniq compare
    in
    check (Alcotest.list Alcotest.string) "groups only" [ "Group" ] classes

(* ------------------------------ library ----------------------------- *)

let test_library_nullderef () =
  let pl = load "library.mj" in
  let queries = Pts_clients.Nullderef.queries pl in
  let dynsum = List.nth (Pts_clients.Pipeline.engines pl) 2 in
  let verdicts = client_verdicts queries dynsum in
  (* the careless lookups (missing.isbn, returned.title after giveBack
     nulls the slot, and m.borrow(b) with b possibly null) must produce
     alarms, while most dereferences are fine *)
  check Alcotest.bool "alarms raised" true (count Pts_clients.Client.Refuted verdicts >= 2);
  check Alcotest.bool "most derefs proved" true
    (count Pts_clients.Client.Proved verdicts > count Pts_clients.Client.Refuted verdicts);
  engines_agree pl queries

let test_library_lookup_may_miss () =
  let pl = load "library.mj" in
  let prog = pl.Pts_clients.Pipeline.prog in
  let dynsum = Dynsum.create pl.Pts_clients.Pipeline.pag in
  let missing = Pts_clients.Pipeline.find_local pl ~meth_pretty:"Main.main" ~var:"missing" in
  match Dynsum.points_to dynsum missing with
  | Query.Exceeded -> Alcotest.fail "exceeded"
  | Query.Resolved ts ->
    let has_null =
      List.exists (fun s -> prog.Ir.allocs.(s).Ir.alloc_is_null) (Query.sites ts)
    in
    let has_book =
      List.exists
        (fun s -> Types.class_name prog.Ir.ctable prog.Ir.allocs.(s).Ir.alloc_cls = "Book")
        (Query.sites ts)
    in
    check Alcotest.bool "may be null" true has_null;
    check Alcotest.bool "may be a book" true has_book

let test_witness_on_eventbus () =
  (* the witness machinery explains the unsafe audit cast end to end *)
  let pl = load "eventbus.mj" in
  let pag = pl.Pts_clients.Pipeline.pag in
  let prog = pl.Pts_clients.Pipeline.prog in
  let m = Pts_clients.Pipeline.find_local pl ~meth_pretty:"AuditHandler.handle" ~var:"m" in
  let dynsum = Dynsum.create pag in
  match Dynsum.points_to dynsum m with
  | Query.Exceeded -> Alcotest.fail "exceeded"
  | Query.Resolved ts -> (
    let offending =
      List.find
        (fun s -> Types.class_name prog.Ir.ctable prog.Ir.allocs.(s).Ir.alloc_cls = "UserJoined")
        (Query.sites ts)
    in
    match Witness.explain pag m ~site:offending with
    | None -> Alcotest.fail "no witness"
    | Some steps -> check Alcotest.bool "substantial chain" true (List.length steps >= 3))

let () =
  Alcotest.run "programs"
    [
      ( "eventbus",
        [
          Alcotest.test_case "safecast" `Quick test_eventbus_safecast;
          Alcotest.test_case "handler separation" `Quick test_eventbus_handler_separation;
          Alcotest.test_case "witness" `Quick test_witness_on_eventbus;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "compiles and agrees" `Quick test_shapes_compiles_and_agrees;
          Alcotest.test_case "factory" `Quick test_shapes_factory;
          Alcotest.test_case "registry cast" `Quick test_shapes_registry_cast;
        ] );
      ( "library",
        [
          Alcotest.test_case "nullderef" `Quick test_library_nullderef;
          Alcotest.test_case "lookup may miss" `Quick test_library_lookup_may_miss;
        ] );
    ]

(* Workload generator and benchmark suite tests. *)

let check = Alcotest.check

let test_generator_deterministic () =
  let cfg = Pts_workload.Genprog.default in
  check Alcotest.string "same seed, same program" (Pts_workload.Genprog.generate cfg)
    (Pts_workload.Genprog.generate cfg)

let test_generator_seed_changes_program () =
  let cfg = Pts_workload.Genprog.default in
  let a = Pts_workload.Genprog.generate cfg in
  let b = Pts_workload.Genprog.generate { cfg with Pts_workload.Genprog.seed = cfg.seed + 1 } in
  check Alcotest.bool "different seeds differ" true (a <> b)

let test_generator_validates () =
  match Pts_workload.Genprog.generate { Pts_workload.Genprog.default with n_containers = 0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid config accepted"

let test_default_compiles () =
  let src = Pts_workload.Genprog.generate Pts_workload.Genprog.default in
  let pl = Pts_clients.Pipeline.of_source src in
  check Alcotest.bool "has call edges" true (Callgraph.edge_count pl.Pts_clients.Pipeline.callgraph > 0)

let test_no_utils_config_compiles () =
  let src =
    Pts_workload.Genprog.generate { Pts_workload.Genprog.default with n_utils = 0; seed = 9 }
  in
  ignore (Pts_clients.Pipeline.of_source src)

let test_suite_names () =
  check Alcotest.int "nine benchmarks" 9 (List.length Pts_workload.Suite.names);
  check (Alcotest.list Alcotest.string) "figure 4/5 programs"
    [ "soot-c"; "bloat"; "jython" ]
    Pts_workload.Suite.figure45_names;
  List.iter
    (fun n -> ignore (Pts_workload.Suite.config n))
    Pts_workload.Suite.names;
  match Pts_workload.Suite.config "nosuch" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown benchmark accepted"

let test_all_benchmarks_compile () =
  List.iter
    (fun name ->
      let pl = Pts_workload.Suite.pipeline name in
      let pag = pl.Pts_clients.Pipeline.pag in
      let c = Pag.edge_counts pag in
      check Alcotest.bool (name ^ " nonempty") true (c.Pag.n_new > 50);
      let l = Pag.locality pag in
      check Alcotest.bool (name ^ " locality plausible") true (l > 0.5 && l < 0.95))
    Pts_workload.Suite.names

let test_locality_bands () =
  (* the low-locality group (avrora, batik, luindex, xalan) must sit below
     the high group, as in Table 3 *)
  let locality n = Pag.locality (Pts_workload.Suite.pipeline n).Pts_clients.Pipeline.pag in
  let avg ns = List.fold_left (fun a n -> a +. locality n) 0.0 ns /. float_of_int (List.length ns) in
  let high = avg [ "jack"; "javac"; "soot-c"; "bloat"; "jython" ] in
  let low = avg [ "avrora"; "batik"; "luindex"; "xalan" ] in
  check Alcotest.bool "band separation" true (high > low)

let test_query_count_ordering () =
  (* Table 3's pattern: NullDeref issues the most queries, FactoryM the fewest *)
  List.iter
    (fun name ->
      let pl = Pts_workload.Suite.pipeline name in
      let sc = List.length (Pts_clients.Safecast.queries pl) in
      let nd = List.length (Pts_clients.Nullderef.queries pl) in
      let fm = List.length (Pts_clients.Factorym.queries pl) in
      check Alcotest.bool (name ^ ": ND > SC") true (nd > sc);
      check Alcotest.bool (name ^ ": SC > FM") true (sc > fm);
      check Alcotest.bool (name ^ ": all clients active") true (fm > 0))
    [ "jack"; "soot-c"; "xalan" ]

let test_size_ordering () =
  (* soot-c is the largest benchmark, jack/avrora/luindex among the smallest *)
  let edges n =
    let c = Pag.edge_counts (Pts_workload.Suite.pipeline n).Pts_clients.Pipeline.pag in
    c.Pag.n_new + c.Pag.n_assign + c.Pag.n_load + c.Pag.n_store + c.Pag.n_entry + c.Pag.n_exit
    + c.Pag.n_assign_global
  in
  check Alcotest.bool "soot-c > jack" true (edges "soot-c" > edges "jack");
  check Alcotest.bool "soot-c > avrora" true (edges "soot-c" > edges "avrora")

let test_figure2_module () =
  let pl = Pts_workload.Figure2.pipeline () in
  let s1 = Pts_workload.Figure2.s1 pl in
  let dynsum = Dynsum.create pl.Pts_clients.Pipeline.pag in
  let classes = Pts_workload.Figure2.site_classes pl (Dynsum.points_to dynsum s1) in
  let names = List.map (Types.class_name pl.Pts_clients.Pipeline.prog.Ir.ctable) classes in
  check (Alcotest.list Alcotest.string) "s1 is the Integer" [ "Integer" ] names

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_generator_seed_changes_program;
          Alcotest.test_case "validation" `Quick test_generator_validates;
          Alcotest.test_case "default compiles" `Quick test_default_compiles;
          Alcotest.test_case "no-utils compiles" `Quick test_no_utils_config_compiles;
        ] );
      ( "suite",
        [
          Alcotest.test_case "names" `Quick test_suite_names;
          Alcotest.test_case "all compile" `Slow test_all_benchmarks_compile;
          Alcotest.test_case "locality bands" `Slow test_locality_bands;
          Alcotest.test_case "query count ordering" `Slow test_query_count_ordering;
          Alcotest.test_case "size ordering" `Slow test_size_ordering;
        ] );
      ("figure2", [ Alcotest.test_case "module" `Quick test_figure2_module ]);
    ]

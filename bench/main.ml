(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) on the nine synthetic benchmarks, plus the ablations
   called out in DESIGN.md and a bechamel microbenchmark section.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- table4  -- one artefact (table1 table2
                                            table3 table4 figure4 figure5
                                            ablation devirt minifun scale
                                            parallel prune taint incr
                                            micro, plus *_smoke variants)

   Wall-clock numbers are machine-dependent; the harness therefore also
   reports deterministic step counts (PAG edge traversals), and all
   speedups/normalisations are computed on steps. *)

module Table = Pts_util.Table
module Stats = Pts_util.Stats
module Hstack = Pts_util.Hstack
module Suite = Pts_workload.Suite
module Client = Pts_clients.Client
module Pipeline = Pts_clients.Pipeline

let clients : (string * (Pipeline.t -> Client.query list)) list =
  [
    ("SafeCast", Pts_clients.Safecast.queries);
    ("NullDeref", Pts_clients.Nullderef.queries);
    ("FactoryM", Pts_clients.Factorym.queries);
  ]

(* STASUM's offline enumeration runs with a bounded stack space so that it
   terminates with an exact (untruncated) summary count; see EXPERIMENTS.md. *)
let stasum_conf = Engine.conf ~max_field_depth:4 ~overflow:Engine.Widen ()

let fresh_engines pl = Pipeline.engines pl

(* Machine-readable metrics: artefacts accumulate rows while printing
   their human tables, then emit one BENCH_<artefact>.json line each — the
   blob a CI trend tracker or plotting script consumes. *)
module Bm = struct
  module Json = Trace.Json

  let rows : (string, Json.t list ref) Hashtbl.t = Hashtbl.create 8

  let add artefact fields =
    let r =
      match Hashtbl.find_opt rows artefact with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add rows artefact r;
        r
    in
    r := Json.Obj fields :: !r

  let flush ?note artefact =
    match Hashtbl.find_opt rows artefact with
    | None -> ()
    | Some r ->
      Printf.printf "BENCH_%s.json %s\n%!" artefact
        (Json.to_string
           (Json.Obj
              ([ ("schema", Json.String "ptsto.bench/1"); ("artefact", Json.String artefact) ]
              @ (match note with None -> [] | Some n -> [ ("note", Json.String n) ])
              @ [ ("rows", Json.List (List.rev !r)) ])));
      Hashtbl.remove rows artefact

  let run_fields (r : Client.run_result) =
    [
      ("seconds", Json.Float r.Client.seconds);
      ("steps", Json.Int r.Client.steps);
      ("proved", Json.Int r.Client.tally.Client.proved);
      ("refuted", Json.Int r.Client.tally.Client.refuted);
      ("unknown", Json.Int r.Client.tally.Client.unknown);
      ("summaries", Json.Int r.Client.summaries_after);
    ]

  (* Every per-configuration artefact row opens with the same identity
     prefix (bench, then client/engine/jobs when they vary). Build it in
     one place so targets can't drift on key names. *)
  let row artefact ~bench ?client ?engine ?jobs fields =
    add artefact
      (("bench", Json.String bench)
       ::
       ((match client with None -> [] | Some c -> [ ("client", Json.String c) ])
       @ (match engine with None -> [] | Some e -> [ ("engine", Json.String e) ])
       @ (match jobs with None -> [] | Some j -> [ ("jobs", Json.Int j) ])
       @ fields))
end

(* Shared wall-clock discipline for every timed target: an optional
   untimed warm-up run (heap size, page cache — the first measured
   configuration must not pay the process cold start), [Gc.compact]
   before each sample when taking more than one (late configurations
   otherwise run against a heap full of earlier configurations'
   garbage), and min-of-N (answers and steps are deterministic; only
   the clock is noisy). *)
module Timing = struct
  let warm run = ignore (run ())

  (* [sample ~repeat ~wall run] returns the fastest run and its wall
     time. [wall] projects the measurement out of [run]'s result, so
     targets whose runner already reports seconds (Parsolve, Client,
     Check) reuse that clock instead of wrapping a second one. *)
  let sample ?(repeat = 1) ~wall run =
    let run1 () =
      if repeat > 1 then Gc.compact ();
      run ()
    in
    let best = ref (run1 ()) in
    let best_wall = ref (wall !best) in
    for _ = 2 to repeat do
      let r = run1 () in
      let w = wall r in
      if w < !best_wall then begin
        best := r;
        best_wall := w
      end
    done;
    (!best, !best_wall)
end

let hr title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

(* --------------------------------------------------------------------- *)
(* Table 1: DYNSUM's traversal on the paper's Figure 2 example            *)
(* --------------------------------------------------------------------- *)

let table1 () =
  hr "Table 1 — DYNSUM worklist traversal for queries s1, s2 (Figure 2)";
  let pl = Pts_workload.Figure2.pipeline () in
  let pag = pl.Pipeline.pag in
  let prog = pl.Pipeline.prog in
  let conf = Engine.default_conf in
  let budget = Budget.create ~limit:conf.Engine.budget_limit in
  let cache = Hashtbl.create 64 in
  let pp_stack f =
    let syms = Hstack.to_list f in
    if syms = [] then "[]"
    else
      "["
      ^ String.concat ";"
          (List.map
             (fun sym ->
               let fld = Fstack.sym_field sym in
               let name = (Types.field_info prog.Ir.ctable fld).Types.fld_name in
               if Fstack.sym_is_load sym then name else name ^ "!")
             syms)
      ^ "]"
  in
  let step = ref 0 in
  let run qname node =
    Printf.printf "\n%s:\n%-4s %-28s %-14s %-3s %s\n" qname "step" "node" "field-stack" "dir" "reuse";
    step := 0;
    Budget.start_query budget;
    let summarise u f s =
      incr step;
      let key = (u, Hstack.id f, Ppta.state_to_int s) in
      let reused = Hashtbl.mem cache key in
      if Pag.has_local_edges pag u then
        Printf.printf "%-4d %-28s %-14s %-3s %s\n" !step (Pag.node_name pag u) (pp_stack f)
          (match s with Ppta.S1 -> "S1" | Ppta.S2 -> "S2")
          (if reused then "reused" else "computed");
      if not (Pag.has_local_edges pag u) then { Ppta.objs = []; tuples = [ (u, f, s) ] }
      else
        match Hashtbl.find_opt cache key with
        | Some summary -> summary
        | None ->
          let summary = Ppta.compute pag conf budget u f s in
          Hashtbl.add cache key summary;
          summary
    in
    let expand u f s =
      let summary = summarise u f s in
      {
        Kernel.lr_objs = summary.Ppta.objs;
        lr_match_objs = [];
        lr_frontier = summary.Ppta.tuples;
        lr_jumps = [];
      }
    in
    let results = Kernel.solve pag budget expand node Hstack.empty in
    Printf.printf "result: %s\n"
      (String.concat ", " (List.map (Ir.alloc_name prog) (Query.sites results)))
  in
  run "query s1" (Pts_workload.Figure2.s1 pl);
  let summaries_after_s1 = Hashtbl.length cache in
  run "query s2" (Pts_workload.Figure2.s2 pl);
  Printf.printf
    "\nsummaries after s1: %d; after s2: %d (s2 reuses s1's container summaries, as in Table 1)\n"
    summaries_after_s1 (Hashtbl.length cache)

(* --------------------------------------------------------------------- *)
(* Table 2: qualitative comparison                                        *)
(* --------------------------------------------------------------------- *)

let table2 () =
  hr "Table 2 — Strengths and weaknesses of the four demand-driven analyses";
  let t =
    Table.create
      [
        ("Algorithm", Table.Left);
        ("Full Precision", Table.Left);
        ("Memorization", Table.Left);
        ("Reuse", Table.Left);
        ("On-Demandness", Table.Left);
      ]
  in
  Table.add_row t [ "NOREFINE"; "Yes"; "No"; "No"; "Yes" ];
  Table.add_row t [ "REFINEPTS"; "Yes"; "Dynamic (within queries)"; "Context Dependent"; "Yes" ];
  Table.add_row t [ "STASUM"; "No"; "Static (across queries)"; "Context Independent"; "Partly" ];
  Table.add_row t [ "DYNSUM"; "Yes"; "Dynamic (across queries)"; "Context Independent"; "Yes" ];
  Table.print t

(* --------------------------------------------------------------------- *)
(* Table 3: benchmark statistics                                          *)
(* --------------------------------------------------------------------- *)

let table3 () =
  hr "Table 3 — Benchmark statistics";
  let t =
    Table.create
      ([
         ("Benchmark", Table.Left);
         ("#Methods", Table.Right);
         ("O", Table.Right);
         ("V", Table.Right);
         ("G", Table.Right);
         ("new", Table.Right);
         ("assign", Table.Right);
         ("load", Table.Right);
         ("store", Table.Right);
         ("entry", Table.Right);
         ("exit", Table.Right);
         ("aglobal", Table.Right);
         ("Locality", Table.Right);
       ]
      @ List.map (fun (n, _) -> (n, Table.Right)) clients)
  in
  List.iter
    (fun name ->
      let pl = Suite.pipeline name in
      let pag = pl.Pipeline.pag in
      let c = Pag.edge_counts pag in
      let o, v, g = Pag.touched_counts pag in
      let n_methods = List.length (Pts_andersen.Solver.reachable_methods pl.Pipeline.solver) in
      let qcounts = List.map (fun (_, qs) -> string_of_int (List.length (qs pl))) clients in
      Table.add_row t
        ([
           name;
           string_of_int n_methods;
           string_of_int o;
           string_of_int v;
           string_of_int g;
           string_of_int c.Pag.n_new;
           string_of_int c.Pag.n_assign;
           string_of_int c.Pag.n_load;
           string_of_int c.Pag.n_store;
           string_of_int c.Pag.n_entry;
           string_of_int c.Pag.n_exit;
           string_of_int c.Pag.n_assign_global;
           Table.fmt_pct (Pag.locality pag);
         ]
        @ qcounts))
    Suite.names;
  Table.print t;
  Printf.printf
    "(paper: locality 80-90%% with avrora/batik/luindex/xalan in the lower band;\n\
    \ query counts NullDeref > SafeCast > FactoryM)\n"

(* --------------------------------------------------------------------- *)
(* Table 4: analysis cost of the three engines per client                 *)
(* --------------------------------------------------------------------- *)

let geomean xs =
  match xs with
  | [] -> nan
  | _ -> exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))

let table4 () =
  hr "Table 4 — Analysis cost (seconds | kilo-steps) of NOREFINE / REFINEPTS / DYNSUM";
  List.iter
    (fun (cname, queries_of) ->
      Printf.printf "\nClient %s:\n" cname;
      let t =
        Table.create
          [
            ("Benchmark", Table.Left);
            ("NOREFINE", Table.Right);
            ("REFINEPTS", Table.Right);
            ("DYNSUM", Table.Right);
            ("speedup vs REFINEPTS", Table.Right);
            ("speedup vs NOREFINE", Table.Right);
            ("unknown N/R/D", Table.Right);
          ]
      in
      let sp_refine = ref [] in
      let sp_norefine = ref [] in
      List.iter
        (fun bname ->
          let pl = Suite.pipeline bname in
          let queries = queries_of pl in
          let results =
            List.map (fun e -> (e, Client.run e queries)) (fresh_engines pl)
          in
          List.iter
            (fun ((e : Engine.engine), r) ->
              Bm.add "table4"
                (("client", Bm.Json.String cname)
                 :: ("bench", Bm.Json.String bname)
                 :: ("engine", Bm.Json.String e.Engine.name)
                 :: Bm.run_fields r))
            results;
          let cell (_, (r : Client.run_result)) =
            Printf.sprintf "%.3fs | %.1fk" r.Client.seconds (float_of_int r.Client.steps /. 1000.)
          in
          let steps i = float_of_int (snd (List.nth results i)).Client.steps in
          let unk i = (snd (List.nth results i)).Client.tally.Client.unknown in
          let dyn = steps 2 in
          let vs_ref = steps 1 /. Float.max dyn 1.0 in
          let vs_nor = steps 0 /. Float.max dyn 1.0 in
          sp_refine := vs_ref :: !sp_refine;
          sp_norefine := vs_nor :: !sp_norefine;
          Table.add_row t
            [
              bname;
              cell (List.nth results 0);
              cell (List.nth results 1);
              cell (List.nth results 2);
              Table.fmt_speedup vs_ref;
              Table.fmt_speedup vs_nor;
              Printf.sprintf "%d/%d/%d" (unk 0) (unk 1) (unk 2);
            ])
        Suite.names;
      Table.add_sep t;
      Table.add_row t
        [
          "geomean";
          "";
          "";
          "";
          Table.fmt_speedup (geomean !sp_refine);
          Table.fmt_speedup (geomean !sp_norefine);
          "";
        ];
      Table.print t)
    clients;
  Printf.printf
    "(paper: DYNSUM over REFINEPTS averages 1.95x / 2.28x / 1.37x for\n\
    \ SafeCast / NullDeref / FactoryM; speedups computed on steps)\n";
  Bm.flush "table4"

(* --------------------------------------------------------------------- *)
(* Figure 4: per-batch DYNSUM cost normalised to REFINEPTS                *)
(* --------------------------------------------------------------------- *)

let spark values =
  let blocks = [| " "; "_"; "."; ":"; "-"; "="; "*"; "#" |] in
  let hi = List.fold_left Float.max 0.0 values in
  if hi <= 0.0 then String.concat "" (List.map (fun _ -> " ") values)
  else
    String.concat ""
      (List.map
         (fun v ->
           let i = int_of_float (v /. hi *. 7.0) in
           blocks.(max 0 (min 7 i)))
         values)

let figure4 () =
  hr "Figure 4 — Per-batch DYNSUM steps normalised to REFINEPTS (10 batches)";
  List.iter
    (fun (cname, queries_of) ->
      Printf.printf "\n(%s)\n" cname;
      let t =
        Table.create
          ([ ("Benchmark", Table.Left) ]
          @ List.init 10 (fun i -> (Printf.sprintf "b%d" (i + 1), Table.Right))
          @ [ ("trend", Table.Left) ])
      in
      List.iter
        (fun bname ->
          let pl = Suite.pipeline bname in
          let queries = queries_of pl in
          let engines = fresh_engines pl in
          let refinepts = List.nth engines 1 in
          let dynsum = List.nth engines 2 in
          let rb = Client.run_batches refinepts queries ~batches:10 in
          let db = Client.run_batches dynsum queries ~batches:10 in
          let normalised =
            List.map2
              (fun (d : Client.run_result) (r : Client.run_result) ->
                float_of_int d.Client.steps /. Float.max 1.0 (float_of_int r.Client.steps))
              db rb
          in
          Bm.add "figure4"
            [
              ("client", Bm.Json.String cname);
              ("bench", Bm.Json.String bname);
              ( "refinepts_steps",
                Bm.Json.List
                  (List.map (fun (r : Client.run_result) -> Bm.Json.Int r.Client.steps) rb) );
              ( "dynsum_steps",
                Bm.Json.List
                  (List.map (fun (r : Client.run_result) -> Bm.Json.Int r.Client.steps) db) );
              ("normalised", Bm.Json.List (List.map (fun v -> Bm.Json.Float v) normalised));
            ];
          Table.add_row t
            ((bname :: List.map (fun v -> Printf.sprintf "%.2f" v) normalised)
            @ [ spark normalised ]))
        Suite.figure45_names;
      Table.print t)
    clients;
  Printf.printf
    "(paper: the ratio falls with the batch index as DYNSUM's summaries accumulate)\n";
  Bm.flush "figure4"

(* --------------------------------------------------------------------- *)
(* Figure 5: cumulative DYNSUM summaries normalised to STASUM             *)
(* --------------------------------------------------------------------- *)

let figure5 () =
  hr "Figure 5 — Cumulative DYNSUM summaries vs STASUM's static enumeration";
  List.iter
    (fun (cname, queries_of) ->
      Printf.printf "\n(%s)\n" cname;
      let t =
        Table.create
          ([ ("Benchmark", Table.Left) ]
          @ List.init 10 (fun i -> (Printf.sprintf "b%d" (i + 1), Table.Right))
          @ [ ("STASUM", Table.Right); ("pts %", Table.Right) ])
      in
      let finals = ref [] in
      List.iter
        (fun bname ->
          let pl = Suite.pipeline bname in
          let pag = pl.Pipeline.pag in
          let queries = queries_of pl in
          let stasum = Stasum.create ~conf:stasum_conf ~max_summaries:2_000_000 pag in
          let dynsum = Dynsum.create pag in
          let engine = Engine.dynsum dynsum in
          let batches = Client.run_batches engine queries ~batches:10 in
          let total = float_of_int (Stasum.summary_count stasum) in
          let series =
            List.map
              (fun (r : Client.run_result) ->
                float_of_int r.Client.summaries_after /. Float.max 1.0 total)
              batches
          in
          let final = List.nth series (List.length series - 1) in
          finals := final :: !finals;
          let point_pct =
            float_of_int (Dynsum.summary_points dynsum)
            /. Float.max 1.0 (float_of_int (Stasum.summary_points stasum))
          in
          Bm.add "figure5"
            [
              ("client", Bm.Json.String cname);
              ("bench", Bm.Json.String bname);
              ( "dynsum_summaries",
                Bm.Json.List
                  (List.map
                     (fun (r : Client.run_result) -> Bm.Json.Int r.Client.summaries_after)
                     batches) );
              ("stasum_summaries", Bm.Json.Int (Stasum.summary_count stasum));
              ("stasum_truncated", Bm.Json.Bool (Stasum.truncated stasum));
              ("final_ratio", Bm.Json.Float final);
              ("points_ratio", Bm.Json.Float point_pct);
            ];
          Table.add_row t
            ((bname :: List.map (fun v -> Table.fmt_pct v) series)
            @ [
                Printf.sprintf "%d%s" (Stasum.summary_count stasum)
                  (if Stasum.truncated stasum then "+" else "");
                Table.fmt_pct point_pct;
              ]))
        Suite.figure45_names;
      Table.print t;
      Printf.printf "average final ratio: %s\n" (Table.fmt_pct (geomean !finals)))
    clients;
  Printf.printf
    "(paper: DYNSUM ends at 41.3%% / 47.7%% / 37.3%% of STASUM on average; our\n\
    \ STASUM enumerates a finer field-stack-indexed space, so the raw ratio is\n\
    \ smaller — the per-program-point ratio 'pts %%' is the comparable unit)\n";
  Bm.flush "figure5"

(* --------------------------------------------------------------------- *)
(* Ablations                                                              *)
(* --------------------------------------------------------------------- *)

let ablation_cache () =
  Printf.printf "\n-- Ablation: DYNSUM summary reuse on/off (NullDeref) --\n";
  let t =
    Table.create
      [
        ("Benchmark", Table.Left);
        ("reuse on (ksteps)", Table.Right);
        ("reuse off (ksteps)", Table.Right);
        ("benefit", Table.Right);
      ]
  in
  List.iter
    (fun bname ->
      let pl = Suite.pipeline bname in
      let queries = Pts_clients.Nullderef.queries pl in
      let on = Dynsum.create pl.Pipeline.pag in
      let r_on = Client.run (Engine.dynsum on) queries in
      let off = Dynsum.create pl.Pipeline.pag in
      let steps_off =
        List.fold_left
          (fun acc q ->
            Dynsum.clear_cache off;
            let before = Budget.total_steps (Dynsum.budget off) in
            ignore (Dynsum.points_to off q.Client.q_node);
            acc + (Budget.total_steps (Dynsum.budget off) - before))
          0 queries
      in
      Table.add_row t
        [
          bname;
          string_of_int (r_on.Client.steps / 1000);
          string_of_int (steps_off / 1000);
          Table.fmt_speedup (float_of_int steps_off /. Float.max 1.0 (float_of_int r_on.Client.steps));
        ])
    [ "jack"; "jython"; "soot-c" ];
  Table.print t

let ablation_budget () =
  Printf.printf "\n-- Ablation: budget sensitivity (soot-c, NullDeref) --\n";
  let pl = Suite.pipeline "soot-c" in
  let queries = Pts_clients.Nullderef.queries pl in
  let t =
    Table.create
      [
        ("Budget", Table.Right);
        ("NOREFINE unknown", Table.Right);
        ("REFINEPTS unknown", Table.Right);
        ("DYNSUM unknown", Table.Right);
      ]
  in
  List.iter
    (fun limit ->
      let conf = Engine.conf ~budget_limit:limit () in
      let unknowns =
        List.map
          (fun e -> (Client.run e queries).Client.tally.Client.unknown)
          (Pipeline.engines ~conf pl)
      in
      Table.add_row t
        (string_of_int limit :: List.map string_of_int unknowns))
    [ 1_000; 5_000; 25_000; 75_000 ];
  Table.print t

let ablation_field_limits () =
  Printf.printf "\n-- Ablation: field-stack repeat limit (jython, SafeCast) --\n";
  let pl = Suite.pipeline "jython" in
  let queries = Pts_clients.Safecast.queries pl in
  let t =
    Table.create
      [
        ("max repeat", Table.Right);
        ("proved", Table.Right);
        ("refuted", Table.Right);
        ("unknown", Table.Right);
        ("ksteps", Table.Right);
      ]
  in
  List.iter
    (fun repeat ->
      let conf = Engine.conf ~max_field_repeat:repeat () in
      let dynsum = Dynsum.create ~conf pl.Pipeline.pag in
      let r = Client.run (Engine.dynsum dynsum) queries in
      Table.add_row t
        [
          string_of_int repeat;
          string_of_int r.Client.tally.Client.proved;
          string_of_int r.Client.tally.Client.refuted;
          string_of_int r.Client.tally.Client.unknown;
          string_of_int (r.Client.steps / 1000);
        ])
    [ 1; 2; 3 ];
  Table.print t

let ablation_locality () =
  Printf.printf "\n-- Ablation: locality vs DYNSUM benefit (generated, NullDeref) --\n";
  let t =
    Table.create
      [
        ("churn", Table.Right);
        ("locality", Table.Right);
        ("NOREFINE ksteps", Table.Right);
        ("DYNSUM ksteps", Table.Right);
        ("speedup", Table.Right);
      ]
  in
  List.iter
    (fun churn ->
      let cfg = { (Suite.config "jack") with Pts_workload.Genprog.churn; name = "jack-churn" } in
      let pl = Pipeline.of_source (Pts_workload.Genprog.generate cfg) in
      let queries = Pts_clients.Nullderef.queries pl in
      let engines = fresh_engines pl in
      let nr = Client.run (List.nth engines 0) queries in
      let dy = Client.run (List.nth engines 2) queries in
      Table.add_row t
        [
          string_of_int churn;
          Table.fmt_pct (Pag.locality pl.Pipeline.pag);
          string_of_int (nr.Client.steps / 1000);
          string_of_int (dy.Client.steps / 1000);
          Table.fmt_speedup
            (float_of_int nr.Client.steps /. Float.max 1.0 (float_of_int dy.Client.steps));
        ])
    [ 0; 5; 10; 20; 30 ];
  Table.print t

let ablation_callgraph () =
  Printf.printf "\n-- Ablation: CHA vs on-the-fly (Andersen) call-graph construction --\n";
  let t =
    Table.create
      [
        ("Benchmark", Table.Left);
        ("cg edges otf", Table.Right);
        ("cg edges CHA", Table.Right);
        ("entry edges otf", Table.Right);
        ("entry edges CHA", Table.Right);
        ("SafeCast proved otf", Table.Right);
        ("SafeCast proved CHA", Table.Right);
      ]
  in
  List.iter
    (fun bname ->
      let pl = Suite.pipeline bname in
      let prog = pl.Pipeline.prog in
      let cha_pag, cha_cg = Cha.build prog in
      let run pag =
        let dynsum = Dynsum.create pag in
        let r = Client.run (Engine.dynsum dynsum) (Pts_clients.Safecast.queries pl) in
        r.Client.tally.Client.proved
      in
      Table.add_row t
        [
          bname;
          string_of_int (Callgraph.edge_count pl.Pipeline.callgraph);
          string_of_int (Callgraph.edge_count cha_cg);
          string_of_int (Pag.edge_counts pl.Pipeline.pag).Pag.n_entry;
          string_of_int (Pag.edge_counts cha_pag).Pag.n_entry;
          string_of_int (run pl.Pipeline.pag);
          string_of_int (run cha_pag);
        ])
    [ "jack"; "jython" ];
  Table.print t;
  Printf.printf
    "(CHA's eager hierarchy-based dispatch inflates the graph and can cost the\n\
    \ clients precision; the paper's setup constructs the call graph on the fly)\n"

(* Not in the paper: the canonical JIT client, per the paper's JIT/IDE
   motivation. Only CHA-polymorphic sites are queried, so every "proved"
   is a devirtualisation the context-sensitive analysis wins over CHA. *)
let devirt () =
  hr "Extension — Devirt client (virtual-call devirtualisation for JITs)";
  let t =
    Table.create
      [
        ("Benchmark", Table.Left);
        ("queries", Table.Right);
        ("devirtualised", Table.Right);
        ("polymorphic", Table.Right);
        ("unknown", Table.Right);
        ("DYNSUM ksteps", Table.Right);
        ("speedup vs NOREFINE", Table.Right);
      ]
  in
  List.iter
    (fun bname ->
      let pl = Suite.pipeline bname in
      let queries = Pts_clients.Devirt.queries pl in
      let engines = fresh_engines pl in
      let nr = Client.run (List.nth engines 0) queries in
      let dy = Client.run (List.nth engines 2) queries in
      Bm.add "devirt"
        [
          ("bench", Bm.Json.String bname);
          ("queries", Bm.Json.Int (List.length queries));
          ("devirtualised", Bm.Json.Int dy.Client.tally.Client.proved);
          ("polymorphic", Bm.Json.Int dy.Client.tally.Client.refuted);
          ("unknown", Bm.Json.Int dy.Client.tally.Client.unknown);
          ("dynsum_steps", Bm.Json.Int dy.Client.steps);
          ("norefine_steps", Bm.Json.Int nr.Client.steps);
        ];
      Table.add_row t
        [
          bname;
          string_of_int (List.length queries);
          string_of_int dy.Client.tally.Client.proved;
          string_of_int dy.Client.tally.Client.refuted;
          string_of_int dy.Client.tally.Client.unknown;
          Printf.sprintf "%.1f" (float_of_int dy.Client.steps /. 1000.);
          Table.fmt_speedup
            (float_of_int nr.Client.steps /. Float.max 1.0 (float_of_int dy.Client.steps));
        ])
    Suite.names;
  Table.print t;
  Bm.flush "devirt"

(* --------------------------------------------------------------------- *)
(* Extension — MiniFun frontend parity + Devirtopt rewriting              *)
(* --------------------------------------------------------------------- *)

(* The committed matched-pair suite: both surface languages lower through
   the same [Ir.Emit] contract, so each pair's points-to verdicts must
   agree between the MiniJava and MiniFun halves on every engine. On top,
   the Devirtopt pass must monomorphize at least one beyond-CHA closure
   call per half, and the rewritten program must re-analyze to the same
   per-query verdicts — the acceptance row this artefact commits as
   BENCH_minifun.json. *)
let minifun () =
  hr "Extension — MiniFun frontend parity and analysis-guided devirtualization";
  let module Genpair = Pts_workload.Genpair in
  let module Devirtopt = Pts_clients.Devirtopt in
  let conf = Engine.conf ~budget_limit:2_000_000 () in
  let mono_pred prog ts =
    let nonnull =
      List.filter (fun s -> not prog.Ir.allocs.(s).Ir.alloc_is_null) (Query.sites ts)
    in
    List.length nonnull <= 1
  in
  let verdicts pl engine_name (queries : Genpair.query_spec list) =
    let prog = pl.Pipeline.prog in
    List.map
      (fun q ->
        let node = Pipeline.find_local_any pl ~var:q.Genpair.q_var in
        let engine = Engine.create ~conf engine_name pl.Pipeline.pag in
        Client.verdict_of (mono_pred prog)
          (engine.Engine.points_to ~satisfy:(mono_pred prog) node))
      queries
  in
  let t =
    Table.create
      [
        ("Pair", Table.Left);
        ("lang", Table.Left);
        ("engine", Table.Left);
        ("virtual sites", Table.Right);
        ("rewritten", Table.Right);
        ("beyond CHA", Table.Right);
        ("verdicts after rewrite", Table.Right);
        ("iters", Table.Right);
        ("PAG edges/iter", Table.Right);
      ]
  in
  List.iter
    (fun pname ->
      let pair = Suite.pair pname in
      List.iter
        (fun lang ->
          let pl = Suite.pair_pipeline pname lang in
          List.iter
            (fun engine_name ->
              (* Iterate the pass to its fixed point: the headline columns
                 keep reporting the first pass, and the per-state
                 reachable/edge lists record how much each re-analysis of
                 the rewritten program shrank. *)
              let fp = Devirtopt.run_fixpoint ~conf ~engine:engine_name pl in
              let dv = fp.Devirtopt.fp_first in
              let before = verdicts pl engine_name pair.Genpair.p_queries in
              let after = verdicts fp.Devirtopt.fp_pipeline engine_name pair.Genpair.p_queries in
              let unchanged = before = after in
              let ints l = Bm.Json.List (List.map (fun n -> Bm.Json.Int n) l) in
              Bm.add "minifun"
                [
                  ("pair", Bm.Json.String pname);
                  ("lang", Bm.Json.String (Loc.lang_name lang));
                  ("engine", Bm.Json.String engine_name);
                  ("virtual_sites", Bm.Json.Int dv.Devirtopt.dv_virtual_sites);
                  ("rewrites", Bm.Json.Int (List.length dv.Devirtopt.dv_rewrites));
                  ("beyond_cha", Bm.Json.Int (Devirtopt.analysis_rewrites dv));
                  ("verdicts_unchanged", Bm.Json.Bool unchanged);
                  ("fix_iterations", Bm.Json.Int fp.Devirtopt.fp_iterations);
                  ("fix_converged", Bm.Json.Bool fp.Devirtopt.fp_converged);
                  ("fix_reachable", ints fp.Devirtopt.fp_reachable);
                  ("fix_pag_edges", ints fp.Devirtopt.fp_pag_edges);
                ];
              Table.add_row t
                [
                  pname;
                  Loc.lang_name lang;
                  engine_name;
                  string_of_int dv.Devirtopt.dv_virtual_sites;
                  string_of_int (List.length dv.Devirtopt.dv_rewrites);
                  string_of_int (Devirtopt.analysis_rewrites dv);
                  (if unchanged then "unchanged" else "CHANGED");
                  Printf.sprintf "%d%s" fp.Devirtopt.fp_iterations
                    (if fp.Devirtopt.fp_converged then "" else "+");
                  String.concat ">" (List.map string_of_int fp.Devirtopt.fp_pag_edges);
                ])
            (Engine.names ()))
        [ Loc.Mjava; Loc.Minifun ])
    Suite.pair_names;
  Table.print t;
  Bm.flush "minifun"

let ablation () =
  hr "Ablations (design choices called out in DESIGN.md)";
  ablation_cache ();
  ablation_budget ();
  ablation_field_limits ();
  ablation_locality ();
  ablation_callgraph ()

(* --------------------------------------------------------------------- *)
(* Scalability: the same measurement at growing program sizes             *)
(* --------------------------------------------------------------------- *)

let scale () =
  hr "Extension — scalability (soot-c scaled x1/x2/x4, NullDeref)";
  let t =
    Table.create
      [
        ("Program", Table.Left);
        ("edges", Table.Right);
        ("queries", Table.Right);
        ("NOREFINE s", Table.Right);
        ("DYNSUM s", Table.Right);
        ("DYNSUM ksteps", Table.Right);
        ("speedup", Table.Right);
        ("summaries", Table.Right);
      ]
  in
  List.iter
    (fun k ->
      let cfg = Suite.scaled "soot-c" k in
      let pl = Pipeline.of_source (Pts_workload.Genprog.generate cfg) in
      let queries = Pts_clients.Nullderef.queries pl in
      let engines = fresh_engines pl in
      let nr = Client.run (List.nth engines 0) queries in
      let dy = Client.run (List.nth engines 2) queries in
      let c = Pag.edge_counts pl.Pipeline.pag in
      let edges =
        c.Pag.n_new + c.Pag.n_assign + c.Pag.n_load + c.Pag.n_store + c.Pag.n_entry + c.Pag.n_exit
        + c.Pag.n_assign_global
      in
      Bm.add "scale"
        ([
           ("program", Bm.Json.String cfg.Pts_workload.Genprog.name);
           ("edges", Bm.Json.Int edges);
           ("queries", Bm.Json.Int (List.length queries));
           ("norefine_steps", Bm.Json.Int nr.Client.steps);
           ("norefine_seconds", Bm.Json.Float nr.Client.seconds);
         ]
        @ List.map (fun (k, v) -> ("dynsum_" ^ k, v)) (Bm.run_fields dy));
      Table.add_row t
        [
          cfg.Pts_workload.Genprog.name;
          string_of_int edges;
          string_of_int (List.length queries);
          Printf.sprintf "%.2f" nr.Client.seconds;
          Printf.sprintf "%.2f" dy.Client.seconds;
          Printf.sprintf "%.0f" (float_of_int dy.Client.steps /. 1000.);
          Table.fmt_speedup
            (float_of_int nr.Client.steps /. Float.max 1.0 (float_of_int dy.Client.steps));
          string_of_int dy.Client.summaries_after;
        ])
    [ 1; 2; 4 ];
  Table.print t;
  Printf.printf
    "(DYNSUM's advantage should hold or grow with program size: more shared
    \ library traversal to amortise)
";
  Bm.flush "scale"

(* --------------------------------------------------------------------- *)
(* Parallel batch evaluation (Parsolve)                                   *)
(* --------------------------------------------------------------------- *)

(* The budget is generous enough that every query resolves: a resolved
   demand query is the exact CFL answer and therefore independent of how
   the batch was sharded or how warm each domain's summary cache was, so
   the cross-jobs set-equality check below is deterministic. (Under a
   tight budget, cache warmth changes which queries exceed — that is the
   per-query budget semantics, not a parallelism artefact.) *)
let parallel_conf = Engine.conf ~budget_limit:2_000_000 ()

(* A/B of the two Parsolve schedules across job counts. [repeat] re-runs
   each configuration and keeps the minimum wall time (answers and steps
   are deterministic; only the clock is noisy) — the smoke variant uses
   it so the jobs=1 steal-vs-static overhead ratio is a scheduling
   measurement, not an OS-jitter one. *)
let run_parallel_bench ~artefact ~bench ~jobs_list ~rounds ?(schedules = [ Parsolve.Static; Parsolve.Steal ])
    ?(repeat = 1) () =
  hr
    (Printf.sprintf "Extension — parallel batch evaluation (%s, NullDeref, dynsum, %d round%s)"
       bench rounds (if rounds = 1 then "" else "s"));
  let pl = Suite.pipeline bench in
  let queries = Pts_clients.Nullderef.queries pl in
  let qarr = Array.of_list (List.map (fun q -> Parsolve.query q.Client.q_node) queries) in
  (* when repeating for a min-wall measurement, also warm the process
     with one untimed run so the first measured configuration isn't the
     one paying the cold start *)
  if repeat > 1 then
    Timing.warm (fun () ->
        Parsolve.run ~conf:parallel_conf ~jobs:1 ~schedule:Parsolve.Static ~engine:"dynsum"
          pl.Pipeline.pag qarr);
  let t =
    Table.create
      [
        ("schedule", Table.Left);
        ("jobs", Table.Right);
        ("wall s", Table.Right);
        ("ksteps", Table.Right);
        ("steals", Table.Right);
        ("imbalance", Table.Right);
        ("pred corr", Table.Right);
        ("derived", Table.Right);
        ("unique", Table.Right);
        ("speedup vs jobs=1", Table.Right);
        ("set-equal", Table.Left);
      ]
  in
  (* set-equality is checked against the very first configuration; the
     speedup baseline is each schedule's own jobs=1 run *)
  let global_baseline = ref None in
  let static_walls = ref [] in
  List.iter
    (fun schedule ->
      let sched_baseline = ref None in
      List.iter
        (fun jobs ->
          let r, wall =
            Timing.sample ~repeat
              ~wall:(fun r -> r.Parsolve.wall_seconds)
              (fun () ->
                Parsolve.run ~conf:parallel_conf ~jobs ~rounds ~schedule ~engine:"dynsum"
                  pl.Pipeline.pag qarr)
          in
          let steps = List.fold_left (fun a d -> a + d.Parsolve.dr_steps) 0 r.Parsolve.reports in
          (* per-domain total steps across rounds; imbalance = max/mean —
             1.0 is a perfectly level load, the static shard's pathology
             is exactly this number drifting up *)
          let by_domain = Array.make jobs 0 in
          List.iter
            (fun d -> by_domain.(d.Parsolve.dr_domain) <- by_domain.(d.Parsolve.dr_domain) + d.Parsolve.dr_steps)
            r.Parsolve.reports;
          let imbalance =
            let mean = float_of_int steps /. float_of_int jobs in
            if mean <= 0.0 then 1.0
            else float_of_int (Array.fold_left max 0 by_domain) /. mean
          in
          let equal =
            match !global_baseline with
            | None ->
              global_baseline := Some r;
              true
            | Some r0 ->
              let eq = ref true in
              Array.iteri
                (fun i o -> if not (Query.equal_outcome o r0.Parsolve.outcomes.(i)) then eq := false)
                r.Parsolve.outcomes;
              !eq
          in
          let speedup =
            match !sched_baseline with
            | None ->
              sched_baseline := Some wall;
              1.0
            | Some w0 -> w0 /. Float.max 1e-9 wall
          in
          (if schedule = Parsolve.Static then static_walls := (jobs, wall) :: !static_walls);
          let wall_vs_static =
            match (schedule, List.assoc_opt jobs !static_walls) with
            | Parsolve.Steal, Some w -> [ ("wall_ratio_vs_static", Bm.Json.Float (wall /. Float.max 1e-9 w)) ]
            | _ -> []
          in
          Bm.row artefact ~bench ~engine:"dynsum" ~jobs
            ([
               ("schedule", Bm.Json.String (Parsolve.schedule_name schedule));
               ("rounds", Bm.Json.Int r.Parsolve.rounds);
               ("queries", Bm.Json.Int (Array.length qarr));
               ("wall_seconds", Bm.Json.Float wall);
               ("steps", Bm.Json.Int steps);
               ("steals", Bm.Json.Int r.Parsolve.steals);
               ("queue_imbalance", Bm.Json.Float imbalance);
               ("predicted_cost_corr", Bm.Json.Float r.Parsolve.cost_corr);
               ("merged_summaries", Bm.Json.Int r.Parsolve.merged_summaries);
               ("unique_summaries", Bm.Json.Int r.Parsolve.unique_summaries);
               ("base_hits", Bm.Json.Int r.Parsolve.base_hits);
               ("base_misses", Bm.Json.Int r.Parsolve.base_misses);
               ("base_evictions", Bm.Json.Int r.Parsolve.base_evictions);
               ("base_size", Bm.Json.Int r.Parsolve.base_size);
               ("speedup_vs_jobs1", Bm.Json.Float speedup);
               ("set_equal_vs_first", Bm.Json.Bool equal);
               ("recommended_domains", Bm.Json.Int (Domain.recommended_domain_count ()));
             ]
            @ wall_vs_static
            @ [
                ( "domains",
                  Bm.Json.List
                    (List.map
                       (fun d ->
                         Bm.Json.Obj
                           [
                             ("round", Bm.Json.Int d.Parsolve.dr_round);
                             ("domain", Bm.Json.Int d.Parsolve.dr_domain);
                             ("queries", Bm.Json.Int d.Parsolve.dr_queries);
                             ("steps", Bm.Json.Int d.Parsolve.dr_steps);
                             ("seconds", Bm.Json.Float d.Parsolve.dr_seconds);
                             ("summaries", Bm.Json.Int d.Parsolve.dr_summaries);
                             ("steals", Bm.Json.Int d.Parsolve.dr_steals);
                           ])
                       r.Parsolve.reports) );
              ]);
          Table.add_row t
            [
              Parsolve.schedule_name schedule;
              string_of_int jobs;
              Printf.sprintf "%.3f" wall;
              Printf.sprintf "%.1f" (float_of_int steps /. 1000.);
              string_of_int r.Parsolve.steals;
              Printf.sprintf "%.2f" imbalance;
              Printf.sprintf "%.2f" r.Parsolve.cost_corr;
              string_of_int r.Parsolve.merged_summaries;
              string_of_int r.Parsolve.unique_summaries;
              Table.fmt_speedup speedup;
              (if equal then "yes" else "NO");
            ])
        jobs_list;
      Table.add_sep t)
    schedules;
  Table.print t;
  Printf.printf
    "(wall-clock speedup tracks the machine's core count — %d domain(s) recommended here;\n\
    \ 'derived' counts every summary computed in some domain, 'unique' the distinct keys:\n\
    \ their gap is the cross-domain recomputation the shared base tier eliminates)\n"
    (Domain.recommended_domain_count ());
  Bm.flush artefact
    ~note:
      ("recommended_domains is Domain.recommended_domain_count() of the measuring host — 1 in the \
        CI container, so wall-clock speedup is unattainable there and the steps/imbalance columns \
        are the machine-independent signal. jobs is the requested domain count, independent of \
        the host. rounds=" ^ string_of_int rounds)

let parallel () =
  run_parallel_bench ~artefact:"parallel" ~bench:Suite.largest ~jobs_list:[ 1; 2; 4 ] ~rounds:2 ()

let parallel_smoke () =
  run_parallel_bench ~artefact:"parallel_smoke" ~bench:"jack" ~jobs_list:[ 1; 2 ] ~rounds:1
    ~repeat:5 ()

(* --------------------------------------------------------------------- *)
(* Andersen-guided pruning (--prune)                                      *)
(* --------------------------------------------------------------------- *)

(* Two measurements per benchmark: the NullDeref query load under every
   engine with the oracle pruner on vs off (same verdicts, fewer steps —
   the reduction concentrates in REFINEPTS, whose field-based match edges
   are the one place the demand side is coarser than Andersen), and an
   alias-pair load where disjoint oracle rows answer Must_not without
   issuing the two underlying points-to queries at all. *)
let run_prune_bench ~artefact ~benches ~engines:engine_names ?(repeat = 1) () =
  hr
    (Printf.sprintf "Extension — Andersen-guided pruning (%s; NullDeref + alias pairs)"
       (String.concat ", " benches));
  let conf_for ename ~prune =
    (* STASUM's offline enumeration needs the bounded stack space (see
       [stasum_conf]); the flag must not change the offline table. *)
    if ename = "stasum" then Engine.conf ~max_field_depth:4 ~overflow:Engine.Widen ~prune ()
    else Engine.conf ~prune ()
  in
  let t =
    Table.create
      [
        ("Benchmark", Table.Left);
        ("Engine", Table.Left);
        ("steps off (k)", Table.Right);
        ("steps on (k)", Table.Right);
        ("ratio", Table.Right);
        ("pruned", Table.Right);
        ("checks", Table.Right);
        ("verdicts", Table.Left);
      ]
  in
  List.iter
    (fun bname ->
      let pl = Suite.pipeline bname in
      let queries = Pts_clients.Nullderef.queries pl in
      List.iter
        (fun ename ->
          (* a fresh engine per sample keeps the step counts cold-cache
             deterministic; min-of-N only de-noises the clock *)
          let run_with prune =
            fst
              (Timing.sample ~repeat
                 ~wall:(fun (r, _) -> r.Client.seconds)
                 (fun () ->
                   let e = Engine.create ~conf:(conf_for ename ~prune) ename pl.Pipeline.pag in
                   (Client.run e queries, e)))
          in
          let r_off, _ = run_with false in
          let r_on, e_on = run_with true in
          let pruned = Stats.get e_on.Engine.stats "pruned_states" in
          let checks = Stats.get e_on.Engine.stats "prune_checks" in
          let ratio = float_of_int r_on.Client.steps /. Float.max 1.0 (float_of_int r_off.Client.steps) in
          let same = r_on.Client.tally = r_off.Client.tally in
          Bm.row artefact ~bench:bname ~client:"NullDeref" ~engine:ename
            [
              ("steps_off", Bm.Json.Int r_off.Client.steps);
              ("steps_on", Bm.Json.Int r_on.Client.steps);
              ("step_ratio", Bm.Json.Float ratio);
              ("pruned_states", Bm.Json.Int pruned);
              ("prune_checks", Bm.Json.Int checks);
              ("seconds_off", Bm.Json.Float r_off.Client.seconds);
              ("seconds_on", Bm.Json.Float r_on.Client.seconds);
              ("verdicts_equal", Bm.Json.Bool same);
            ];
          Table.add_row t
            [
              bname;
              ename;
              Printf.sprintf "%.1f" (float_of_int r_off.Client.steps /. 1000.);
              Printf.sprintf "%.1f" (float_of_int r_on.Client.steps /. 1000.);
              Printf.sprintf "%.3f" ratio;
              string_of_int pruned;
              string_of_int checks;
              (if same then "equal" else "DIFFER");
            ])
        engine_names)
    benches;
  Table.print t;
  (* Alias pairs: the whole-query fast path. *)
  let ta =
    Table.create
      [
        ("Benchmark", Table.Left);
        ("pairs", Table.Right);
        ("must-not", Table.Right);
        ("fast-path", Table.Right);
        ("steps off (k)", Table.Right);
        ("steps on (k)", Table.Right);
        ("ratio", Table.Right);
        ("verdicts", Table.Left);
      ]
  in
  List.iter
    (fun bname ->
      let pl = Suite.pipeline bname in
      let pag = pl.Pipeline.pag in
      let nodes =
        List.filteri (fun i _ -> i < 24)
          (List.map (fun q -> q.Client.q_node) (Pts_clients.Nullderef.queries pl))
      in
      let pairs =
        List.concat_map
          (fun x -> List.filter_map (fun y -> if x < y then Some (x, y) else None) nodes)
          nodes
      in
      let run_with pag_opt =
        let e = Engine.create ~conf:(Engine.conf ()) "dynsum" pag in
        let verdicts = List.map (fun (x, y) -> Alias.may_alias ?pag:pag_opt e x y) pairs in
        (verdicts, Budget.total_steps e.Engine.budget)
      in
      let v_off, steps_off = run_with None in
      let v_on, steps_on = run_with (Some pag) in
      let fastpath =
        List.length (List.filter (fun (x, y) -> Pag.oracle_disjoint pag x y) pairs)
      in
      let mustnot = List.length (List.filter (fun v -> v = Alias.Must_not) v_on) in
      let same = v_on = v_off in
      let ratio = float_of_int steps_on /. Float.max 1.0 (float_of_int steps_off) in
      Bm.row artefact ~bench:bname ~client:"alias" ~engine:"dynsum"
        [
          ("pairs", Bm.Json.Int (List.length pairs));
          ("must_not", Bm.Json.Int mustnot);
          ("fastpath_pairs", Bm.Json.Int fastpath);
          ("steps_off", Bm.Json.Int steps_off);
          ("steps_on", Bm.Json.Int steps_on);
          ("step_ratio", Bm.Json.Float ratio);
          ("verdicts_equal", Bm.Json.Bool same);
        ];
      Table.add_row ta
        [
          bname;
          string_of_int (List.length pairs);
          string_of_int mustnot;
          string_of_int fastpath;
          Printf.sprintf "%.1f" (float_of_int steps_off /. 1000.);
          Printf.sprintf "%.1f" (float_of_int steps_on /. 1000.);
          Printf.sprintf "%.3f" ratio;
          (if same then "equal" else "DIFFER");
        ])
    benches;
  Table.print ta;
  Printf.printf
    "(pruning never changes a verdict; steps drop where REFINEPTS match edges\n\
    \ or disjoint alias rows let the oracle cut work, and stay flat for the\n\
    \ exact engines — on a PAG built by Andersen itself, every state an exact\n\
    \ traversal reaches is Andersen-consistent)\n";
  Bm.flush artefact

let prune () =
  run_prune_bench ~artefact:"prune" ~benches:Suite.names
    ~engines:[ "norefine"; "refinepts"; "dynsum"; "stasum" ] ()

let prune_smoke () =
  run_prune_bench ~artefact:"prune_smoke" ~benches:[ "jython" ]
    ~engines:[ "refinepts"; "dynsum" ] ()

(* --------------------------------------------------------------------- *)
(* Taint checker: precision/recall on seeded defects, per engine          *)
(* --------------------------------------------------------------------- *)

(* Each benchmark is re-generated with known source->sink flows,
   known-clean look-alikes, overwrite-kill shapes and weak-update controls
   (ground truth from Genprog.generate_with_truth), then the taint checker
   runs under every demand engine. Within the flow-insensitive family
   (norefine/refinepts/dynsum/stasum) reports are byte-equal by the
   central equivalence property; supa is its own flow-sensitive family —
   it drops the kill-shape false positives the others must report, which
   is the measured precision gap. Recall stays 1.00 everywhere: the
   weak-update controls pin that supa only strong-updates where it is
   sound. *)
let run_taint_bench ~artefact ~benches ~flows ~clean ?(kill = 0) ?(weak = 0) ~jobs_list
    ?(repeat = 1) () =
  hr
    (Printf.sprintf
       "Extension — taint checker precision/recall (%d flows / %d clean / %d kill / %d weak per \
        bench)"
       flows clean kill weak);
  let family engine = if String.equal engine "supa" then "flow-sensitive" else "flow-insensitive" in
  let module Check = Pts_clients.Check in
  let module Diag = Pts_clients.Diag in
  let t =
    Table.create
      [
        ("Program", Table.Left);
        ("engine", Table.Left);
        ("jobs", Table.Right);
        ("tp", Table.Right);
        ("fp", Table.Right);
        ("fn", Table.Right);
        ("prec", Table.Right);
        ("recall", Table.Right);
        ("flow hit/miss", Table.Right);
        ("oracle skips", Table.Right);
        ("dedup", Table.Right);
        ("s", Table.Right);
        ("report=", Table.Left);
      ]
  in
  List.iter
    (fun bname ->
      let cfg = Suite.tainted ~flows ~clean ~kill ~weak bname in
      let source, labels = Pts_workload.Genprog.generate_with_truth cfg in
      let pl = Pipeline.of_source source in
      let spec = Pts_taint.Spec.of_source source in
      let checkers = [ Pts_taint.Checker.checker ~spec () ] in
      (* one reference report per verdict family — supa legitimately
         differs from the flow-insensitive engines on kill shapes *)
      let references : (string, string) Hashtbl.t = Hashtbl.create 2 in
      List.iter
        (fun (engine, jobs) ->
          let opts = { Check.default_opts with Check.o_engine = engine; o_jobs = jobs } in
          let report, _ =
            Timing.sample ~repeat
              ~wall:(fun r -> r.Check.r_seconds)
              (fun () -> Check.run ~opts ~checkers pl)
          in
          let json = Bm.Json.to_string (Check.report_json report) in
          let equal =
            match Hashtbl.find_opt references (family engine) with
            | None ->
              Hashtbl.add references (family engine) json;
              true
            | Some j0 -> String.equal j0 json
          in
          let flagged m =
            List.exists (fun d -> String.equal d.Diag.d_method m) report.Check.r_diags
          in
          let tp =
            List.length
              (List.filter
                 (fun l -> l.Pts_workload.Genprog.tl_tainted && flagged l.Pts_workload.Genprog.tl_method)
                 labels)
          in
          let fn =
            List.length
              (List.filter
                 (fun l ->
                   l.Pts_workload.Genprog.tl_tainted
                   && not (flagged l.Pts_workload.Genprog.tl_method))
                 labels)
          in
          (* False positives: any finding outside a tainted-labelled
             method (covers both flagged clean variants and spurious
             findings elsewhere in the program). *)
          let fp =
            List.length
              (List.filter
                 (fun d ->
                   not
                     (List.exists
                        (fun l ->
                          l.Pts_workload.Genprog.tl_tainted
                          && String.equal l.Pts_workload.Genprog.tl_method d.Diag.d_method)
                        labels))
                 report.Check.r_diags)
          in
          let ratio a b = if a + b = 0 then 1.0 else float_of_int a /. float_of_int (a + b) in
          let precision = ratio tp fp and recall = ratio tp fn in
          let c name = Stats.get report.Check.r_stats name in
          Bm.row artefact ~bench:bname ~engine ~jobs
            [
              ("flows", Bm.Json.Int flows);
              ("clean", Bm.Json.Int clean);
              ("kill", Bm.Json.Int kill);
              ("weak", Bm.Json.Int weak);
              ("family", Bm.Json.String (family engine));
              ("sources", Bm.Json.Int (c "taint_sources"));
              ("sinks", Bm.Json.Int (c "taint_sinks"));
              ("findings", Bm.Json.Int (List.length report.Check.r_diags));
              ("tp", Bm.Json.Int tp);
              ("fp", Bm.Json.Int fp);
              ("fn", Bm.Json.Int fn);
              ("precision", Bm.Json.Float precision);
              ("recall", Bm.Json.Float recall);
              ("flow_summary_hits", Bm.Json.Int (c "taint_summary_hits"));
              ("flow_summary_misses", Bm.Json.Int (c "taint_summary_misses"));
              ("oracle_skips", Bm.Json.Int (c "taint_oracle_skips"));
              ("flow_skips", Bm.Json.Int (c "taint_flow_skips"));
              ("summary_hits", Bm.Json.Int (c "summary_hits"));
              ("summary_misses", Bm.Json.Int (c "summary_misses"));
              ("dedup_hits", Bm.Json.Int report.Check.r_dedup_hits);
              ("witness_found", Bm.Json.Int (c "witness_found"));
              ("witness_missing", Bm.Json.Int (c "witness_missing"));
              ("seconds", Bm.Json.Float report.Check.r_seconds);
              ("report_equal_in_family", Bm.Json.Bool equal);
            ];
          Table.add_row t
            [
              bname;
              engine;
              string_of_int jobs;
              string_of_int tp;
              string_of_int fp;
              string_of_int fn;
              Printf.sprintf "%.2f" precision;
              Printf.sprintf "%.2f" recall;
              Printf.sprintf "%d/%d" (c "taint_summary_hits") (c "taint_summary_misses");
              string_of_int (c "taint_oracle_skips");
              string_of_int report.Check.r_dedup_hits;
              Printf.sprintf "%.3f" report.Check.r_seconds;
              (if equal then "yes" else "NO");
            ])
        (List.map (fun e -> (e, 1)) (Engine.names ())
        @ List.map (fun j -> ("dynsum", j)) (List.filter (fun j -> j > 1) jobs_list)))
    benches;
  Table.print t;
  Printf.printf
    "(recall must be 1.00 and clean variants unflagged on every engine; the report\n\
    \ JSON is byte-identical within each verdict family — the flow-insensitive\n\
    \ engines report every overwrite-kill shape as a false positive, supa none)\n";
  Bm.flush artefact

let taint () =
  run_taint_bench ~artefact:"taint" ~benches:[ "jack"; "javac"; Suite.largest ] ~flows:8 ~clean:8
    ~kill:4 ~weak:3 ~jobs_list:[ 1; 2; 4 ] ()

let taint_smoke () =
  run_taint_bench ~artefact:"taint_smoke" ~benches:[ "jack" ] ~flows:5 ~clean:5 ~kill:3 ~weak:2
    ~jobs_list:[ 1; 2 ] ()

(* --------------------------------------------------------------------- *)
(* Incremental edits vs from-scratch rebuild                              *)
(* --------------------------------------------------------------------- *)

(* Per edit-script size: apply seeded bursts through the Editlab driver
   (incremental side keeps its engines, invalidating only summaries whose
   footprints touch the dirty nodes) and compare against a full rebuild.
   The interesting numbers are the retention fraction (how much of the
   summary caches a small edit leaves standing) and the wall-clock ratio
   of incremental re-query to rebuild — plus the equivalence booleans,
   which must all be true. *)
let run_incr_bench ~artefact ~bench ~bursts ~edits_list ~seed ~report_jobs () =
  hr
    (Printf.sprintf
       "Extension — incremental edit bursts vs from-scratch rebuild (%s, %d bursts/size)" bench
       bursts);
  let t =
    Table.create
      [
        ("edits/burst", Table.Right);
        ("burst", Table.Right);
        ("dirty", Table.Right);
        ("dropped", Table.Right);
        ("retained", Table.Right);
        ("retention", Table.Right);
        ("incr s", Table.Right);
        ("rebuild s", Table.Right);
        ("ratio", Table.Right);
        ("verdicts", Table.Left);
        ("reports", Table.Left);
      ]
  in
  List.iter
    (fun edits_per_burst ->
      let r =
        Pts_workload.Editlab.run ~report_jobs ~bench ~bursts ~edits_per_burst ~seed ()
      in
      List.iter
        (fun (b : Pts_workload.Editlab.burst_report) ->
          let retention =
            let total = b.b_stats.Incr.i_dropped + b.b_stats.Incr.i_retained in
            if total = 0 then 1.0
            else float_of_int b.b_stats.Incr.i_retained /. float_of_int total
          in
          let ratio = b.b_incr_seconds /. Float.max 1e-9 b.b_rebuild_seconds in
          Bm.row artefact ~bench
            [
              ("edits_per_burst", Bm.Json.Int edits_per_burst);
              ("burst", Bm.Json.Int b.b_index);
              ("edits_applied", Bm.Json.Int b.b_edits);
              ("inserted", Bm.Json.Int b.b_stats.Incr.i_inserted);
              ("deleted", Bm.Json.Int b.b_stats.Incr.i_deleted);
              ("dirty_nodes", Bm.Json.Int b.b_stats.Incr.i_dirty);
              ("oracle_rows_invalidated", Bm.Json.Int b.b_stats.Incr.i_oracle_invalidated);
              ("summaries_dropped", Bm.Json.Int b.b_stats.Incr.i_dropped);
              ("summaries_retained", Bm.Json.Int b.b_stats.Incr.i_retained);
              ("retention_fraction", Bm.Json.Float retention);
              ("incr_seconds", Bm.Json.Float b.b_incr_seconds);
              ("rebuild_seconds", Bm.Json.Float b.b_rebuild_seconds);
              ("wall_ratio_incr_vs_rebuild", Bm.Json.Float ratio);
              ("hash_equal", Bm.Json.Bool b.b_hash_equal);
              ("verdicts_equal", Bm.Json.Bool b.b_verdicts_equal);
              ("reports_equal", Bm.Json.Bool b.b_reports_equal);
              ("queries", Bm.Json.Int r.Pts_workload.Editlab.r_queries);
              ("engine_confs", Bm.Json.Int r.Pts_workload.Editlab.r_engine_confs);
              ("report_runs", Bm.Json.Int r.Pts_workload.Editlab.r_report_runs);
            ];
          Table.add_row t
            [
              string_of_int edits_per_burst;
              string_of_int b.b_index;
              string_of_int b.b_stats.Incr.i_dirty;
              string_of_int b.b_stats.Incr.i_dropped;
              string_of_int b.b_stats.Incr.i_retained;
              Table.fmt_pct retention;
              Printf.sprintf "%.3f" b.b_incr_seconds;
              Printf.sprintf "%.3f" b.b_rebuild_seconds;
              Printf.sprintf "%.3f" ratio;
              (if b.b_verdicts_equal && b.b_hash_equal then "equal" else "DIFFER");
              (if b.b_reports_equal then "equal" else "DIFFER");
            ])
        r.Pts_workload.Editlab.r_bursts)
    edits_list;
  Table.print t;
  Printf.printf
    "(incr s = edit apply + invalidation + re-answering every query on the live engines;\n\
    \ rebuild s = recompile + Andersen + replay + fresh engines + the same queries.\n\
    \ Verdicts and check reports are byte-compared against the rebuild each burst.)\n";
  Bm.flush artefact
    ~note:
      "retention_fraction is summaries kept / (kept + dropped) across all live engine \
       configurations after each burst; wall ratio < 1 means the incremental path beat the \
       from-scratch rebuild"

let incr () =
  run_incr_bench ~artefact:"incr" ~bench:"jack" ~bursts:3 ~edits_list:[ 2; 8; 32 ] ~seed:11
    ~report_jobs:[ 1; 2; 4 ] ()

let incr_smoke () =
  run_incr_bench ~artefact:"incr_smoke" ~bench:"jack" ~bursts:2 ~edits_list:[ 4 ] ~seed:11
    ~report_jobs:[ 1; 2 ] ()

(* --------------------------------------------------------------------- *)
(* Analysis-as-a-service: the serve daemon's equivalence matrix and       *)
(* sustained-throughput measurement (BENCH_serve.json)                    *)
(* --------------------------------------------------------------------- *)

module Daemon = Pts_serve.Daemon
module Proto = Pts_serve.Proto

(* Nearest-rank percentile over per-request wall times, in milliseconds. *)
let pctl_ms lat p =
  let a = Array.of_list lat in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.0
  else a.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))) *. 1000.0

let serve_checkers bench =
  Pts_taint.Registry.all ~taint:(Pts_taint.Spec.of_source ~lang:Loc.Mjava (Suite.source bench)) ()

let serve_req ?(client_id = "bench") op =
  { Proto.rq_id = Bm.Json.Null; rq_client = client_id; rq_op = op }

let serve_query ?client_id ~engine ~prune client =
  serve_req ?client_id (Proto.Query { client; engine; prune; budget = None })

let serve_handle_timed d lat rq =
  let resp, dt = Stats.time (fun () -> Daemon.handle d rq) in
  lat := dt :: !lat;
  resp

let run_serve_equiv ~artefact ~bench () =
  hr (Printf.sprintf "serve: daemon equivalence matrix on %s" bench);
  let module Check = Pts_clients.Check in
  let checkers = serve_checkers bench in
  let mk_req = serve_req ?client_id:None in
  let query_req = serve_query ?client_id:None in
  let handle_timed = serve_handle_timed in
  let member_str name resp =
    match Bm.Json.member name resp with
    | Some j -> Bm.Json.to_string j
    | None -> Printf.sprintf "<missing %s in %s>" name (Bm.Json.to_string resp)
  in
  (* Fresh one-shot references, computed on a pipeline the daemon never
     touches: the same canonical encoders the CLI prints, answered with
     no cross-request tier. *)
  let fresh_verdicts pl ~engine ~prune client_key =
    let cname, queries_of = List.assoc client_key Daemon.clients in
    let queries = queries_of pl in
    let qarr =
      Array.of_list
        (List.map (fun q -> Parsolve.query ~satisfy:q.Client.q_pred q.Client.q_node) queries)
    in
    let r = Parsolve.run ~conf:(Engine.conf ~prune ()) ~engine pl.Pipeline.pag qarr in
    let verdicts =
      List.mapi (fun i q -> (q, Client.verdict_of q.Client.q_pred r.Parsolve.outcomes.(i))) queries
    in
    Bm.Json.to_string (Client.verdicts_json ~client:cname verdicts)
  in
  let fresh_report pl ~engine ~prune =
    let opts =
      {
        Check.o_engine = engine;
        o_conf = Engine.conf ~prune ();
        o_jobs = 1;
        o_rounds = 1;
        o_schedule = Parsolve.Steal;
        o_base = None;
      }
    in
    Bm.Json.to_string (Check.report_json (Check.run ~opts ~checkers pl))
  in
  (* ---- phase 1: equivalence matrix, engines x prune, before and after
     an interleaved edit burst. One daemon serves the whole matrix, so
     later cells run against whatever the earlier ones left in the
     shared tier — exactly the state a long-lived daemon accumulates. *)
  let t =
    Table.create ~title:"serve equivalence: daemon responses vs one-shot CLI (byte compare)"
      [
        ("engine", Table.Left);
        ("prune", Table.Left);
        ("epoch", Table.Right);
        ("query", Table.Left);
        ("check", Table.Left);
        ("qps", Table.Right);
        ("p99 ms", Table.Right);
      ]
  in
  let daemon = Daemon.create ~checkers (Suite.pipeline bench) in
  let reference = ref (Suite.pipeline bench) in
  let ref_incr = ref (Incr.create !reference.Pipeline.pag) in
  let all_equal = ref true in
  let matrix epoch_label =
    List.iter
      (fun engine ->
        List.iter
          (fun prune ->
            let lat = ref [] in
            let (q_eq, c_eq), wall =
              Stats.time (fun () ->
                  let q_resp = handle_timed daemon lat (query_req ~engine ~prune "safecast") in
                  let c_resp =
                    handle_timed daemon lat
                      (mk_req (Proto.Check { checkers = []; engine; prune; budget = None }))
                  in
                  ( member_str "verdicts" q_resp = fresh_verdicts !reference ~engine ~prune "safecast",
                    member_str "report" c_resp = fresh_report !reference ~engine ~prune ))
            in
            if not (q_eq && c_eq) then all_equal := false;
            let qps = 2.0 /. Float.max 1e-9 wall in
            Bm.row artefact ~bench ~engine
              [
                ("phase", Bm.Json.String "equivalence");
                ("prune", Bm.Json.Bool prune);
                ("epoch", Bm.Json.String epoch_label);
                ("requests", Bm.Json.Int 2);
                ("query_equal", Bm.Json.Bool q_eq);
                ("check_equal", Bm.Json.Bool c_eq);
                ("qps", Bm.Json.Float qps);
                ("p50_ms", Bm.Json.Float (pctl_ms !lat 0.50));
                ("p99_ms", Bm.Json.Float (pctl_ms !lat 0.99));
              ];
            Table.add_row t
              [
                engine;
                (if prune then "on" else "off");
                epoch_label;
                (if q_eq then "equal" else "DIFFER");
                (if c_eq then "equal" else "DIFFER");
                Printf.sprintf "%.0f" qps;
                Printf.sprintf "%.2f" (pctl_ms !lat 0.99);
              ])
          [ false; true ])
      (Engine.names ())
  in
  matrix "0";
  (* interleaved edit burst: the daemon applies it through Incr (dropping
     exactly the footprint-dirty tier entries); the reference pipeline
     replays the same seeded burst through its own Incr, so both sides
     answer on identical PAGs but only the daemon kept warm summaries. *)
  let edit_seed = 97 in
  let edit_resp = Daemon.handle daemon (mk_req (Proto.Edit { edits = 6; seed = edit_seed })) in
  ignore (Incr.apply !ref_incr (Pts_workload.Editscript.burst (Pts_util.Prng.create edit_seed) !reference.Pipeline.pag ~n:6));
  Printf.printf "edit burst: %s\n" (Bm.Json.to_string edit_resp);
  matrix "post-edit";
  Table.print t;
  if not !all_equal then begin
    Printf.printf "serve: EQUIVALENCE FAILURE — daemon responses differ from one-shot CLI\n";
    exit 1
  end

(* Sustained throughput under a seeded mixed workload. Client skew
   60/25/10/5 gives the tier a hot set and a long tail; the cold and
   warm rounds replay one identical request list on the same daemon, so
   their qps ratio isolates what the persistent tier buys. The sustained
   pass interleaves edit bursts, forcing targeted invalidation
   mid-stream. *)
let run_serve_tput ~artefact ~bench ~requests ~edit_every () =
  hr (Printf.sprintf "serve: sustained throughput on %s" bench);
  let mk_req = serve_req ?client_id:None in
  let handle_timed = serve_handle_timed in
  let skew = [ (60, "safecast"); (25, "nullderef"); (10, "factorym"); (5, "devirt") ] in
  let workload seed n =
    let rng = Pts_util.Prng.create seed in
    List.init n (fun i ->
        serve_query ~engine:"dynsum" ~prune:false
          ~client_id:(Printf.sprintf "c%d" (i mod 4))
          (Pts_util.Prng.weighted rng skew))
  in
  let tput =
    Table.create ~title:(Printf.sprintf "serve throughput on %s (dynsum, shared cross-request tier)" bench)
      [
        ("phase", Table.Left);
        ("requests", Table.Right);
        ("qps", Table.Right);
        ("p50 ms", Table.Right);
        ("p99 ms", Table.Right);
        ("tier hits", Table.Right);
        ("tier size", Table.Right);
        ("evictions", Table.Right);
      ]
  in
  let fresh () = Daemon.create ~checkers:(serve_checkers bench) (Suite.pipeline bench) in
  let d = fresh () in
  (* [pairs] maps each request to the daemon that answers it: the warm
     and sustained phases route everything through the long-lived [d],
     while the cold phase gives every request its own fresh daemon. *)
  let phase_row name pairs ~edits =
    let lat = ref [] in
    let edits_done = ref 0 in
    let (), wall =
      Stats.time (fun () ->
          List.iteri
            (fun i (dmn, rq) ->
              if edits && edit_every > 0 && i > 0 && i mod edit_every = 0 then begin
                edits_done := !edits_done + 1;
                ignore
                  (Daemon.handle dmn (mk_req (Proto.Edit { edits = 4; seed = 1000 + !edits_done })))
              end;
              ignore (handle_timed dmn lat rq))
            pairs)
    in
    let n = List.length pairs in
    let qps = float_of_int n /. Float.max 1e-9 wall in
    let daemons =
      List.fold_left (fun acc (dmn, _) -> if List.memq dmn acc then acc else dmn :: acc) [] pairs
    in
    let sum f = List.fold_left (fun acc dmn -> acc + f (Daemon.base dmn)) 0 daemons in
    let hits = sum Dynsum.base_hits in
    let size = sum Dynsum.base_length in
    let ev = sum Dynsum.base_evictions in
    Bm.row artefact ~bench ~engine:"dynsum"
      [
        ("phase", Bm.Json.String name);
        ("requests", Bm.Json.Int n);
        ("edit_bursts", Bm.Json.Int !edits_done);
        ("qps", Bm.Json.Float qps);
        ("p50_ms", Bm.Json.Float (pctl_ms !lat 0.50));
        ("p99_ms", Bm.Json.Float (pctl_ms !lat 0.99));
        ("base_hits", Bm.Json.Int hits);
        ("base_misses", Bm.Json.Int (sum Dynsum.base_misses));
        ("base_evictions", Bm.Json.Int ev);
        ("base_size", Bm.Json.Int size);
      ];
    Table.add_row tput
      [
        name;
        string_of_int n;
        Printf.sprintf "%.0f" qps;
        Printf.sprintf "%.2f" (pctl_ms !lat 0.50);
        Printf.sprintf "%.2f" (pctl_ms !lat 0.99);
        string_of_int hits;
        string_of_int size;
        string_of_int ev;
      ];
    qps
  in
  (* cold vs warm: one round over every distinct query request (each
     client, both prune modes). Cold answers each request on its own
     fresh daemon — the derivation cost a one-shot invocation pays,
     with no cross-request reuse (PAG load excluded, so this still
     understates cold start). Warm replays the identical round on the
     long-lived daemon after it has served the round once, so every
     answer draws on the persistent tier. The sustained pass then runs
     the mixed skewed workload with interleaved edit bursts. *)
  let round =
    List.concat_map
      (fun (key, _) ->
        [
          serve_query ~engine:"dynsum" ~prune:false key;
          serve_query ~engine:"dynsum" ~prune:true key;
        ])
      Daemon.clients
  in
  let cold_qps = phase_row "cold" (List.map (fun rq -> (fresh (), rq)) round) ~edits:false in
  List.iter (fun rq -> ignore (Daemon.handle d rq)) round;
  let warm_qps = phase_row "warm" (List.map (fun rq -> (d, rq)) round) ~edits:false in
  let _ = phase_row "sustained" (List.map (fun rq -> (d, rq)) (workload 8 (2 * requests))) ~edits:true in
  Bm.row artefact ~bench ~engine:"dynsum"
    [
      ("phase", Bm.Json.String "summary");
      ("requests", Bm.Json.Int ((2 * List.length round) + (2 * requests)));
      ("qps", Bm.Json.Float warm_qps);
      ("p50_ms", Bm.Json.Float 0.0);
      ("p99_ms", Bm.Json.Float 0.0);
      ("warm_vs_cold_qps", Bm.Json.Float (warm_qps /. Float.max 1e-9 cold_qps));
    ];
  Table.print tput;
  Printf.printf "warm/cold qps ratio on %s: %.2f (the cross-request tier's payoff)\n" bench
    (warm_qps /. Float.max 1e-9 cold_qps)

let serve_note =
  "equivalence rows byte-compare the daemon's embedded verdicts/report objects against fresh \
   one-shot runs with no cross-request tier, before and after an interleaved edit burst; \
   throughput rows answer one round over every distinct query request cold (each on its own fresh \
   daemon, as a one-shot invocation would) then replay the identical round warm on one long-lived \
   daemon, then run a sustained pass over a seeded 60/25/10/5 client-skewed workload with edit \
   bursts every few requests"

let serve () =
  run_serve_equiv ~artefact:"serve" ~bench:"jack" ();
  run_serve_tput ~artefact:"serve" ~bench:"jack" ~requests:100 ~edit_every:25 ();
  run_serve_tput ~artefact:"serve" ~bench:"soot-c" ~requests:60 ~edit_every:20 ();
  Bm.flush "serve" ~note:serve_note

let serve_smoke () =
  run_serve_equiv ~artefact:"serve_smoke" ~bench:"jack" ();
  run_serve_tput ~artefact:"serve_smoke" ~bench:"jack" ~requests:20 ~edit_every:8 ();
  Bm.flush "serve_smoke" ~note:serve_note

(* --------------------------------------------------------------------- *)
(* Bechamel microbenchmarks                                               *)
(* --------------------------------------------------------------------- *)

let micro () =
  hr "Microbenchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let pl = Suite.pipeline "jack" in
  let pag = pl.Pipeline.pag in
  let queries = Pts_clients.Safecast.queries pl in
  let q0 = (List.hd queries).Client.q_node in
  let warm_dynsum = Dynsum.create pag in
  ignore (Dynsum.points_to warm_dynsum q0);
  let tests =
    [
      Test.make ~name:"hstack push/pop" (Staged.stage (fun () ->
          let s = Hstack.push (Hstack.push Hstack.empty 1) 2 in
          ignore (Hstack.pop_exn s)));
      Test.make ~name:"ppta (Vector.get ret)" (Staged.stage (fun () ->
          let budget = Budget.unlimited () in
          ignore (Ppta.compute pag Engine.default_conf budget q0 Hstack.empty Ppta.S1)));
      Test.make ~name:"dynsum query (warm cache)" (Staged.stage (fun () ->
          ignore (Dynsum.points_to warm_dynsum q0)));
      Test.make ~name:"dynsum query (cold cache)" (Staged.stage (fun () ->
          let d = Dynsum.create pag in
          ignore (Dynsum.points_to d q0)));
      Test.make ~name:"norefine query" (Staged.stage (fun () ->
          let n = Sb.create Sb.No_refine pag in
          ignore (Sb.points_to n q0)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        ols)
    tests;
  print_newline ()

(* --------------------------------------------------------------------- *)

let () =
  let targets =
    [
      ("table1", table1);
      ("table2", table2);
      ("table3", table3);
      ("table4", table4);
      ("figure4", figure4);
      ("figure5", figure5);
      ("ablation", ablation);
      ("devirt", devirt);
      ("minifun", minifun);
      ("scale", scale);
      ("parallel", parallel);
      ("parallel_smoke", parallel_smoke);
      ("prune", prune);
      ("prune_smoke", prune_smoke);
      ("taint", taint);
      ("taint_smoke", taint_smoke);
      ("incr", incr);
      ("incr_smoke", incr_smoke);
      ("serve", serve);
      ("serve_smoke", serve_smoke);
      ("micro", micro);
    ]
  in
  let args = Array.to_list Sys.argv |> List.tl |> List.filter (fun a -> a <> "--") in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) targets
  | names ->
    List.iter
      (fun n ->
        match List.assoc_opt n targets with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown target %s (expected: %s)\n" n
            (String.concat " " (List.map fst targets));
          exit 1)
      names

(* ptsto — command-line front door to the reproduction.

     ptsto stats prog.mj                     PAG and call-graph statistics
     ptsto ir prog.mj                        dump the lowered IR
     ptsto query prog.mj -m Main.main -v s1  answer one points-to query
     ptsto client prog.mj -c safecast        run a client's query set
     ptsto compare prog.mj                   all engines x all clients
     ptsto edit --bench soot-c               edit bursts: incremental vs rebuild
     ptsto gen soot-c -o prog.mj             emit a generated benchmark

   Every subcommand accepts --bench NAME instead of a file to run on a
   generated benchmark directly. *)

open Cmdliner

module Table = Pts_util.Table
module Pipeline = Pts_clients.Pipeline
module Client = Pts_clients.Client

let clients =
  [
    ("safecast", ("SafeCast", Pts_clients.Safecast.queries));
    ("nullderef", ("NullDeref", Pts_clients.Nullderef.queries));
    ("factorym", ("FactoryM", Pts_clients.Factorym.queries));
    ("devirt", ("Devirt", Pts_clients.Devirt.queries));
  ]

(* ----------------------------- arguments ---------------------------- *)

let file_arg =
  Arg.(
    value & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Source file (MiniJava, or MiniFun with --lang minifun / a .mf extension).")

let lang_arg =
  Arg.(
    value
    & opt
        (some
           (enum
              [ ("mjava", Loc.Mjava); ("minijava", Loc.Mjava); ("minifun", Loc.Minifun); ("mf", Loc.Minifun) ]))
        None
    & info [ "lang" ] ~docv:"LANG"
        ~doc:
          "Surface language of FILE (mjava|minifun). Default: inferred from the file extension \
           ($(b,.mf)/$(b,.minifun) is MiniFun, anything else MiniJava).")

(* the effective language: an explicit --lang wins over the extension *)
let lang_of lang file =
  match (lang, file) with
  | Some l, _ -> l
  | None, Some path -> Frontend.lang_of_path path
  | None, None -> Loc.Mjava

let bench_arg =
  Arg.(
    value
    & opt (some (enum (List.map (fun n -> (n, n)) Pts_workload.Suite.names))) None
    & info [ "bench" ] ~docv:"NAME" ~doc:"Use a generated benchmark instead of a file.")

let engine_arg =
  let names = Engine.names () in
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) names)) "dynsum"
    & info [ "engine"; "e" ] ~docv:"ENGINE"
        ~doc:(Printf.sprintf "Analysis engine (%s)." (String.concat "|" names)))

let budget_arg =
  Arg.(
    value & opt int Engine.default_conf.Engine.budget_limit
    & info [ "budget" ] ~docv:"N" ~doc:"Per-query traversal budget.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"Write a JSONL trace of engine events to $(docv).")

let prune_arg =
  Arg.(
    value
    & vflag false
        [
          ( true,
            info [ "prune" ]
              ~doc:"Prune the CFL search with the Andersen oracle (answers unchanged)." );
          (false, info [ "no-prune" ] ~doc:"Disable Andersen-guided pruning (default).");
        ])

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics-json" ] ~doc:"Emit a machine-readable per-engine metrics object on stdout.")

(* --jobs N|auto: "auto" resolves at parse time, so every consumer just
   sees a validated positive int. *)
let jobs_conv =
  let parse = function
    | "auto" -> Ok (Domain.recommended_domain_count ())
    | s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some n -> Error (`Msg (Printf.sprintf "JOBS must be >= 1 (got %d)" n))
      | None -> Error (`Msg (Printf.sprintf "JOBS must be a positive integer or 'auto' (got %s)" s)))
  in
  Arg.conv ~docv:"JOBS" (parse, Format.pp_print_int)

let jobs_arg ~doc =
  Arg.(
    value & opt jobs_conv 1
    & info [ "jobs"; "j" ] ~docv:"JOBS"
        ~doc:
          (doc
         ^ " $(docv) is a positive integer, or $(b,auto) for the host's recommended domain \
            count — e.g. $(b,--jobs auto)."))

let schedule_arg =
  Arg.(
    value
    & opt (enum [ ("steal", Parsolve.Steal); ("static", Parsolve.Static) ]) Parsolve.Steal
    & info [ "schedule" ] ~docv:"POLICY"
        ~doc:
          "Parallel batch scheduling policy: $(b,steal) (per-domain work-stealing deques seeded \
           longest-first by the cost model; default) or $(b,static) (fixed round-robin shards — \
           the A/B baseline). Answers are identical either way.")

(* One shared sink per invocation: a [--trace FILE] JSONL writer, or null. *)
let with_trace trace f =
  let sink =
    match trace with
    | None -> Trace.null
    | Some path -> (
      match Trace.to_file path with
      | sink -> sink
      | exception Sys_error msg ->
        Printf.eprintf "error: cannot open trace file: %s\n" msg;
        exit 1)
  in
  Fun.protect ~finally:(fun () -> Trace.close sink) (fun () -> f sink)

(* each row is an engine plus an optional client label — [compare] runs
   fresh engines per client, so the label is what keeps rows apart *)
let metrics_json rows =
  let open Trace.Json in
  let get e k = Pts_util.Stats.get e.Engine.stats k in
  Obj
    [
      ("schema", String "ptsto.metrics/1");
      ( "engines",
        List
          (List.map
             (fun (client, (e : Engine.engine)) ->
               let base_hits, base_misses, base_evictions, base_size = e.Engine.cache_health () in
               Obj
                 ((match client with None -> [] | Some c -> [ ("client", String c) ])
                 @ [
                   ("engine", String e.Engine.name);
                   ("steps", Int (Budget.total_steps e.Engine.budget));
                   ("queries", Int (get e "queries"));
                   ("summary_hits", Int (get e "summary_hits"));
                   ("summary_misses", Int (get e "summary_misses"));
                   ("summaries", Int (e.Engine.summary_count ()));
                   ("base_hits", Int base_hits);
                   ("base_misses", Int base_misses);
                   ("base_evictions", Int base_evictions);
                   ("base_size", Int base_size);
                   ( "counters",
                     Obj (List.map (fun (k, v) -> (k, Int v)) (Pts_util.Stats.to_list e.Engine.stats))
                   );
                 ]))
             rows) );
    ]

let print_metrics rows = print_endline (Trace.Json.to_string (metrics_json rows))

(* ------------------------------ commands ---------------------------- *)

let with_pipeline ?lang file bench f =
  match (file, bench) with
  | _, Some name -> f (Pts_workload.Suite.pipeline name)
  | Some path, None -> (
    match Frontend.compile_file ?lang path with
    | prog -> f (Pipeline.of_program prog)
    | exception Frontend.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1)
  | None, None ->
    Printf.eprintf "error: either FILE or --bench NAME is required\n";
    exit 1

let stats_cmd lang file bench =
  with_pipeline ?lang file bench (fun pl ->
      let pag = pl.Pipeline.pag in
      let c = Pag.edge_counts pag in
      let o, v, g = Pag.touched_counts pag in
      let t = Table.create ~title:"PAG statistics" [ ("metric", Table.Left); ("value", Table.Right) ] in
      List.iter
        (fun (k, n) -> Table.add_row t [ k; string_of_int n ])
        [
          ("reachable methods", List.length (Pts_andersen.Solver.reachable_methods pl.Pipeline.solver));
          ("objects (O)", o);
          ("locals (V)", v);
          ("globals (G)", g);
          ("new edges", c.Pag.n_new);
          ("assign edges", c.Pag.n_assign);
          ("load edges", c.Pag.n_load);
          ("store edges", c.Pag.n_store);
          ("entry edges", c.Pag.n_entry);
          ("exit edges", c.Pag.n_exit);
          ("assignglobal edges", c.Pag.n_assign_global);
          ("call-graph edges", Callgraph.edge_count pl.Pipeline.callgraph);
        ];
      Table.add_row t [ "locality"; Table.fmt_pct (Pag.locality pag) ];
      Table.print t)

let ir_cmd lang file bench =
  with_pipeline ?lang file bench (fun pl -> Format.printf "%a@." Ir.pp_program pl.Pipeline.prog)

let query_cmd lang file bench meth var engine_name budget prune trace metrics =
  with_pipeline ?lang file bench (fun pl ->
      with_trace trace (fun sink ->
          let conf = Engine.conf ~budget_limit:budget ~prune () in
          let engine = Engine.create ~conf ~trace:sink engine_name pl.Pipeline.pag in
          match Pipeline.find_local pl ~meth_pretty:meth ~var with
          | exception Not_found ->
            Printf.eprintf "error: no variable %s in method %s\n" var meth;
            exit 1
          | node ->
            let outcome, dt = Pts_util.Stats.time (fun () -> engine.Engine.points_to node) in
            (match outcome with
            | Query.Exceeded -> Printf.printf "budget exceeded (%d steps)\n" budget
            | Query.Resolved ts ->
              let prog = pl.Pipeline.prog in
              Printf.printf "%s points to %d object(s) [%s, %.3fs, %d steps]:\n"
                (Pag.node_name pl.Pipeline.pag node)
                (List.length (Query.sites ts))
                engine.Engine.name dt
                (Budget.total_steps engine.Engine.budget);
              List.iter
                (fun site ->
                  let a = prog.Ir.allocs.(site) in
                  Printf.printf "  %-24s allocated in %s (line %d)\n" (Ir.alloc_name prog site)
                    prog.Ir.methods.(a.Ir.alloc_meth).Ir.pretty a.Ir.alloc_pos.Loc.line)
                (Query.sites ts));
            if metrics then print_metrics [ (None, engine) ]))

(* --jobs/--rounds: the Parsolve batch path. Distinct from the sequential
   path below because the trace plumbing differs (a shared mutex-guarded
   writer instead of one sink) and per-domain reports replace the single
   engine's counters. *)
let client_par_cmd lang file bench client_key engine_name budget prune cache_file trace metrics vjson jobs
    rounds schedule =
  with_pipeline ?lang file bench (fun pl ->
      let cname, queries_of = List.assoc client_key clients in
      if cache_file <> None then
        Printf.eprintf "warning: --cache is ignored in parallel batch mode\n";
      let conf = Engine.conf ~budget_limit:budget ~prune () in
      let writer = Option.map Trace.writer_to_file trace in
      let queries = queries_of pl in
      let qarr =
        Array.of_list
          (List.map (fun q -> Parsolve.query ~satisfy:q.Client.q_pred q.Client.q_node) queries)
      in
      let r =
        Parsolve.run ~conf ?trace_writer:writer ~jobs ~rounds ~schedule ~engine:engine_name
          pl.Pipeline.pag qarr
      in
      Option.iter Trace.writer_close writer;
      let verdicts =
        List.mapi (fun i q -> (q, Client.verdict_of q.Client.q_pred r.Parsolve.outcomes.(i))) queries
      in
      let tally =
        List.fold_left
          (fun t (_, v) ->
            match v with
            | Client.Proved -> { t with Client.proved = t.Client.proved + 1 }
            | Client.Refuted -> { t with Client.refuted = t.Client.refuted + 1 }
            | Client.Unknown -> { t with Client.unknown = t.Client.unknown + 1 })
          { Client.proved = 0; refuted = 0; unknown = 0 }
          verdicts
      in
      Printf.printf
        "%s with %s: %d queries in %.3fs (%d jobs, %d rounds, %s schedule, %d steals, %d unique \
         summaries)\n"
        cname engine_name (Array.length qarr) r.Parsolve.wall_seconds r.Parsolve.jobs
        r.Parsolve.rounds
        (Parsolve.schedule_name r.Parsolve.schedule)
        r.Parsolve.steals r.Parsolve.unique_summaries;
      Format.printf "  %a@." Client.pp_tally tally;
      List.iter
        (fun d ->
          Printf.printf "  round %d domain %d: %d queries, %d steps, %.3fs, %d summaries, %d steals\n"
            d.Parsolve.dr_round d.Parsolve.dr_domain d.Parsolve.dr_queries d.Parsolve.dr_steps
            d.Parsolve.dr_seconds d.Parsolve.dr_summaries d.Parsolve.dr_steals)
        r.Parsolve.reports;
      List.iter
        (fun (q, v) ->
          match v with
          | Client.Refuted -> Printf.printf "  REFUTED %s\n" q.Client.q_desc
          | Client.Unknown -> Printf.printf "  UNKNOWN %s\n" q.Client.q_desc
          | Client.Proved -> ())
        verdicts;
      if vjson then
        print_endline (Trace.Json.to_string (Client.verdicts_json ~client:cname verdicts));
      if metrics then
        let open Trace.Json in
        print_endline
          (to_string
             (Obj
                [
                  ("schema", String "ptsto.parallel-metrics/2");
                  ("engine", String engine_name);
                  ("jobs", Int r.Parsolve.jobs);
                  ("recommended_domains", Int (Domain.recommended_domain_count ()));
                  ("rounds", Int r.Parsolve.rounds);
                  ("schedule", String (Parsolve.schedule_name r.Parsolve.schedule));
                  ("queries", Int (Array.length qarr));
                  ("wall_seconds", Float r.Parsolve.wall_seconds);
                  ("steals", Int r.Parsolve.steals);
                  ("predicted_cost_corr", Float r.Parsolve.cost_corr);
                  ("merged_summaries", Int r.Parsolve.merged_summaries);
                  ("unique_summaries", Int r.Parsolve.unique_summaries);
                  ("base_hits", Int r.Parsolve.base_hits);
                  ("base_misses", Int r.Parsolve.base_misses);
                  ("base_evictions", Int r.Parsolve.base_evictions);
                  ("base_size", Int r.Parsolve.base_size);
                  ( "domains",
                    List
                      (List.map
                         (fun d ->
                           Obj
                             [
                               ("round", Int d.Parsolve.dr_round);
                               ("domain", Int d.Parsolve.dr_domain);
                               ("queries", Int d.Parsolve.dr_queries);
                               ("steps", Int d.Parsolve.dr_steps);
                               ("seconds", Float d.Parsolve.dr_seconds);
                               ("summaries", Int d.Parsolve.dr_summaries);
                               ("steals", Int d.Parsolve.dr_steals);
                             ])
                         r.Parsolve.reports) );
                  ( "counters",
                    Obj (List.map (fun (k, v) -> (k, Int v)) (Pts_util.Stats.to_list r.Parsolve.stats))
                  );
                ])))

let client_cmd lang file bench client_key engine_name budget prune cache_file trace metrics vjson jobs
    rounds schedule =
  if jobs <> 1 || rounds <> 1 then
    client_par_cmd lang file bench client_key engine_name budget prune cache_file trace metrics vjson jobs
      rounds schedule
  else
  with_pipeline ?lang file bench (fun pl ->
      with_trace trace (fun sink ->
          let cname, queries_of = List.assoc client_key clients in
          let conf = Engine.conf ~budget_limit:budget ~prune () in
          (* with --cache, a DYNSUM session persists its summaries across runs *)
          let dynsum_session =
            match cache_file with
            | Some path when engine_name = "dynsum" ->
              let d = Dynsum.create ~conf ~trace:sink pl.Pipeline.pag in
              (if Sys.file_exists path then
                 match Dynsum.load_cache d path with
                 | Ok n -> Printf.printf "loaded %d summaries from %s\n" n path
                 | Error e -> Printf.printf "ignoring cache %s: %s\n" path e);
              Some (d, path)
            | Some _ ->
              Printf.eprintf "warning: --cache only applies to the dynsum engine\n";
              None
            | None -> None
          in
          let engine =
            match dynsum_session with
            | Some (d, _) -> Engine.dynsum d
            | None -> Engine.create ~conf ~trace:sink engine_name pl.Pipeline.pag
          in
          let queries = queries_of pl in
          let r = Client.run engine queries in
          Printf.printf "%s with %s: %d queries in %.3fs (%d steps)\n" cname engine.Engine.name
            (List.length queries) r.Client.seconds r.Client.steps;
          Format.printf "  %a@." Client.pp_tally r.Client.tally;
          (* list refuted/unknown queries for actionability (the re-query
             is answered from warm summaries) *)
          let verdicts =
            List.map
              (fun q ->
                ( q,
                  Client.verdict_of q.Client.q_pred
                    (engine.Engine.points_to ~satisfy:q.Client.q_pred q.Client.q_node) ))
              queries
          in
          List.iter
            (fun (q, v) ->
              match v with
              | Client.Refuted -> Printf.printf "  REFUTED %s\n" q.Client.q_desc
              | Client.Unknown -> Printf.printf "  UNKNOWN %s\n" q.Client.q_desc
              | Client.Proved -> ())
            verdicts;
          if vjson then
            print_endline (Trace.Json.to_string (Client.verdicts_json ~client:cname verdicts));
          (match dynsum_session with
          | Some (d, path) ->
            Dynsum.save_cache d path;
            Printf.printf "saved %d summaries to %s\n" (Dynsum.summary_count d) path
          | None -> ());
          if metrics then print_metrics [ (None, engine) ]))

let compare_cmd lang file bench budget prune trace metrics =
  with_pipeline ?lang file bench (fun pl ->
      with_trace trace (fun sink ->
      let conf = Engine.conf ~budget_limit:budget ~prune () in
      let t =
        Table.create
          [
            ("client", Table.Left);
            ("engine", Table.Left);
            ("proved", Table.Right);
            ("refuted", Table.Right);
            ("unknown", Table.Right);
            ("seconds", Table.Right);
            ("steps", Table.Right);
            ("summaries", Table.Right);
          ]
      in
      let used = ref [] in
      List.iter
        (fun (_, (cname, queries_of)) ->
          let queries = queries_of pl in
          List.iter
            (fun (engine : Engine.engine) ->
              used := (Some cname, engine) :: !used;
              let r = Client.run engine queries in
              Table.add_row t
                [
                  cname;
                  engine.Engine.name;
                  string_of_int r.Client.tally.Client.proved;
                  string_of_int r.Client.tally.Client.refuted;
                  string_of_int r.Client.tally.Client.unknown;
                  Printf.sprintf "%.3f" r.Client.seconds;
                  string_of_int r.Client.steps;
                  string_of_int r.Client.summaries_after;
                ])
            (Pipeline.engines ~conf ~trace:sink pl);
          Table.add_sep t)
        clients;
      Table.print t;
      if metrics then print_metrics (List.rev !used)))

let alias_cmd lang file bench meth var1 var2 engine_name budget prune =
  with_pipeline ?lang file bench (fun pl ->
      let conf = Engine.conf ~budget_limit:budget ~prune () in
      let engine = Engine.create ~conf engine_name pl.Pipeline.pag in
      let node v =
        match Pipeline.find_local pl ~meth_pretty:meth ~var:v with
        | n -> n
        | exception Not_found ->
          Printf.eprintf "error: no variable %s in method %s\n" v meth;
          exit 1
      in
      let x = node var1 and y = node var2 in
      let show = function
        | Alias.Must_not -> "must-not-alias"
        | Alias.May -> "may-alias"
        | Alias.Unknown -> "unknown (budget exceeded)"
      in
      let pag = if prune then Some pl.Pipeline.pag else None in
      Printf.printf "%s ~ %s: %s (with heap contexts), %s (sites only)\n" var1 var2
        (show (Alias.may_alias ?pag engine x y))
        (show (Alias.may_alias_sites ?pag engine x y)))

let why_cmd lang file bench meth var site =
  with_pipeline ?lang file bench (fun pl ->
      let pag = pl.Pipeline.pag in
      match Pipeline.find_local pl ~meth_pretty:meth ~var with
      | exception Not_found ->
        Printf.eprintf "error: no variable %s in method %s\n" var meth;
        exit 1
      | node -> (
        match Witness.explain pag node ~site with
        | None -> Printf.printf "o%d is not in the points-to set of %s (or budget exceeded)\n" site var
        | Some steps ->
          Printf.printf "%s may point to %s because:\n" (Pag.node_name pag node)
            (Ir.alloc_name pl.Pipeline.prog site);
          List.iter print_endline (Witness.render pag steps)))

(* [run] is the quickstart driver: compile, answer every client's query
   set with one engine, then close the loop with the Devirtopt pass and
   report what the analysis let it rewrite. *)
let run_cmd lang file bench engine_name budget prune metrics =
  with_pipeline ?lang file bench (fun pl ->
      let prog = pl.Pipeline.prog in
      let conf = Engine.conf ~budget_limit:budget ~prune () in
      Printf.printf "%s program: %d methods (%d reachable), %d allocation sites, %d call sites\n"
        (Loc.lang_name prog.Ir.lang)
        (Array.length prog.Ir.methods)
        (List.length (Pts_andersen.Solver.reachable_methods pl.Pipeline.solver))
        (Array.length prog.Ir.allocs) (Array.length prog.Ir.calls);
      let used = ref [] in
      List.iter
        (fun (_, (cname, queries_of)) ->
          let engine = Engine.create ~conf engine_name pl.Pipeline.pag in
          used := (Some cname, engine) :: !used;
          let queries = queries_of pl in
          let r = Client.run engine queries in
          Format.printf "%-9s %a (%d queries, %d steps)@." cname Client.pp_tally r.Client.tally
            (List.length queries) r.Client.steps)
        clients;
      let module Devirtopt = Pts_clients.Devirtopt in
      let dv = Devirtopt.run ~conf ~engine:engine_name pl in
      Printf.printf "devirtopt: %d/%d virtual sites monomorphized (%d beyond CHA) with %s\n"
        (List.length dv.Devirtopt.dv_rewrites)
        dv.Devirtopt.dv_virtual_sites
        (Devirtopt.analysis_rewrites dv)
        engine_name;
      List.iter
        (fun rw -> Format.printf "  rewrote %a@." Devirtopt.pp_rewrite rw)
        dv.Devirtopt.dv_rewrites;
      if metrics then print_metrics (List.rev !used))

let dot_cmd lang file bench what out =
  with_pipeline ?lang file bench (fun pl ->
      let src =
        match what with
        | `Pag -> Dot.pag pl.Pipeline.pag
        | `Callgraph -> Dot.callgraph pl.Pipeline.prog pl.Pipeline.callgraph
      in
      match out with
      | None -> print_string src
      | Some path ->
        let oc = open_out path in
        output_string oc src;
        close_out oc;
        Printf.printf "wrote %s\n" path)

(* The checker driver needs the program *text* as well as the pipeline:
   taint annotations ([// @taint-source]) live in comments the lexer
   otherwise discards. *)
let check_source file bench tflows tclean tkill tweak =
  match (file, bench) with
  | _, Some name ->
    if tflows > 0 || tclean > 0 || tkill > 0 || tweak > 0 then
      Pts_workload.Genprog.generate
        (Pts_workload.Suite.tainted ~flows:tflows ~clean:tclean ~kill:tkill ~weak:tweak name)
    else Pts_workload.Suite.source name
  | Some path, None -> (
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Printf.eprintf "error: cannot read %s: %s\n" path msg;
      exit 2)
  | None, None ->
    Printf.eprintf "error: either FILE or --bench NAME is required\n";
    exit 2

let check_cmd lang file bench tflows tclean tkill tweak checker_names engine_name budget prune jobs
    rounds schedule fail_on report_json metrics =
  let module Check = Pts_clients.Check in
  let module Diag = Pts_clients.Diag in
  let source = check_source file bench tflows tclean tkill tweak in
  (* benches are always MiniJava; for files --lang wins over the extension *)
  let lang = match bench with Some _ -> Loc.Mjava | None -> lang_of lang file in
  let pl =
    match Pipeline.of_source ~lang source with
    | pl -> pl
    | exception Frontend.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  let spec = Pts_taint.Spec.of_source ~lang source in
  let available = Pts_taint.Registry.all ~taint:spec () in
  let checkers =
    match List.concat checker_names with
    | [] -> available
    | names ->
      List.map
        (fun n ->
          match Pts_taint.Registry.find available n with
          | Some ck -> ck
          | None ->
            Printf.eprintf "error: unknown checker %s (have: %s)\n" n
              (String.concat ", " (List.map String.lowercase_ascii (Pts_taint.Registry.names ())));
            exit 2)
        names
  in
  let conf = Engine.conf ~budget_limit:budget ~prune () in
  let opts =
    {
      Check.o_engine = engine_name;
      o_conf = conf;
      o_jobs = jobs;
      o_rounds = rounds;
      o_schedule = schedule;
      o_base = None;
    }
  in
  let report = Check.run ~opts ~checkers pl in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "ptsto check: %d finding(s) from %s"
           (List.length report.Check.r_diags)
           (String.concat "," (List.map (fun ck -> ck.Check.ck_name) checkers)))
      [
        ("severity", Table.Left);
        ("checker", Table.Left);
        ("location", Table.Left);
        ("message", Table.Left);
      ]
  in
  List.iter
    (fun d ->
      Table.add_row t
        [
          Diag.severity_to_string d.Diag.d_severity;
          d.Diag.d_checker;
          Diag.location d;
          d.Diag.d_message;
        ])
    report.Check.r_diags;
  Table.print t;
  List.iter
    (fun d ->
      if d.Diag.d_witness <> [] then begin
        Printf.printf "\nwitness for %s (%s):\n" (Diag.location d) d.Diag.d_message;
        List.iter (fun l -> Printf.printf "  %s\n" l) d.Diag.d_witness
      end)
    report.Check.r_diags;
  Printf.printf "\n%d point(s), %d unique node(s), %d dedup hit(s), %d cheap diag(s), %.3fs\n"
    report.Check.r_points report.Check.r_unique_nodes report.Check.r_dedup_hits
    report.Check.r_cheap report.Check.r_seconds;
  if metrics then begin
    let open Trace.Json in
    print_endline
      (to_string
         (Obj
            [
              ("schema", String "ptsto.check-metrics/1");
              ("engine", String engine_name);
              ("jobs", Int jobs);
              ("rounds", Int rounds);
              ("prune", Bool prune);
              ("points", Int report.Check.r_points);
              ("unique_nodes", Int report.Check.r_unique_nodes);
              ("dedup_hits", Int report.Check.r_dedup_hits);
              ("cheap_diags", Int report.Check.r_cheap);
              ("findings", Int (List.length report.Check.r_diags));
              ("seconds", Float report.Check.r_seconds);
              ( "counters",
                Obj (List.map (fun (k, v) -> (k, Int v)) (Pts_util.Stats.to_list report.Check.r_stats))
              );
            ]))
  end;
  if report_json then print_endline (Trace.Json.to_string (Check.report_json report));
  let fail =
    match fail_on with
    | `Never -> false
    | `Sev s ->
      List.exists (fun d -> Diag.severity_geq d.Diag.d_severity s) report.Check.r_diags
  in
  exit (if fail then 1 else 0)

(* Analysis-as-a-service: load and freeze one PAG, then answer
   newline-delimited JSON requests forever. Responses are the only thing
   written to stdout (the banner goes to stderr), so
   [printf ... | ptsto serve --bench jack] is scriptable as-is. *)
let serve_cmd lang file bench budget max_budget jobs rounds schedule base_capacity queue_capacity
    max_cost pipeline socket trace =
  let module Daemon = Pts_serve.Daemon in
  let source = check_source file bench 0 0 0 0 in
  let lang = match bench with Some _ -> Loc.Mjava | None -> lang_of lang file in
  let pl =
    match Pipeline.of_source ~lang source with
    | pl -> pl
    | exception Frontend.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  let spec = Pts_taint.Spec.of_source ~lang source in
  let checkers = Pts_taint.Registry.all ~taint:spec () in
  with_trace trace (fun sink ->
      Trace.flush_on_signals ();
      let config =
        {
          Daemon.c_jobs = jobs;
          c_rounds = rounds;
          c_schedule = schedule;
          c_budget = budget;
          c_max_budget = max_budget;
          c_base_capacity = base_capacity;
          c_queue_capacity = queue_capacity;
          c_max_cost = max_cost;
          c_pipeline = pipeline;
        }
      in
      let d = Daemon.create ~config ~trace:sink ~checkers pl in
      let o, v, g = Pag.touched_counts pl.Pipeline.pag in
      Printf.eprintf "ptsto serve: PAG frozen (%d objects, %d locals, %d globals), %s\n%!" o v g
        (match socket with
        | Some path -> Printf.sprintf "listening on %s" path
        | None -> "reading requests from stdin");
      match socket with
      | Some path -> Daemon.serve_socket d path
      | None -> Daemon.serve_channel d stdin stdout)

(* Incremental editing: seeded edit bursts against live engines, each
   burst checked for verdict- and report-equality against a from-scratch
   rebuild. Exit status reflects the equivalence checks, so CI can gate
   on it directly. *)
let edit_cmd bench bursts edits seed report_jobs json =
  let open Pts_workload.Editlab in
  let progress = if json then fun _ -> () else fun s -> Printf.printf "%s\n%!" s in
  let r = run ~report_jobs ~progress ~bench ~bursts ~edits_per_burst:edits ~seed () in
  let dropped = List.fold_left (fun a b -> a + b.b_stats.Incr.i_dropped) 0 r.r_bursts in
  let retained = List.fold_left (fun a b -> a + b.b_stats.Incr.i_retained) 0 r.r_bursts in
  if json then begin
    let open Trace.Json in
    let row b =
      Obj
        [
          ("burst", Int b.b_index);
          ("edits", Int b.b_edits);
          ("inserted", Int b.b_stats.Incr.i_inserted);
          ("deleted", Int b.b_stats.Incr.i_deleted);
          ("dirty", Int b.b_stats.Incr.i_dirty);
          ("oracle_invalidated", Int b.b_stats.Incr.i_oracle_invalidated);
          ("dropped", Int b.b_stats.Incr.i_dropped);
          ("retained", Int b.b_stats.Incr.i_retained);
          ("incr_seconds", Float b.b_incr_seconds);
          ("rebuild_seconds", Float b.b_rebuild_seconds);
          ("hash_equal", Bool b.b_hash_equal);
          ("verdicts_equal", Bool b.b_verdicts_equal);
          ("reports_equal", Bool b.b_reports_equal);
        ]
    in
    print_endline
      (to_string
         (Obj
            [
              ("schema", String "ptsto.edit/1");
              ("bench", String r.r_bench);
              ("queries", Int r.r_queries);
              ("engine_confs", Int r.r_engine_confs);
              ("report_runs", Int r.r_report_runs);
              ("dropped", Int dropped);
              ("retained", Int retained);
              ("ok", Bool r.r_ok);
              ("bursts", List (List.map row r.r_bursts));
            ]))
  end
  else
    Printf.printf
      "%s: %d bursts, %d queries, %d engine confs, %d report runs/burst; dropped %d retained %d; \
       %s\n"
      r.r_bench (List.length r.r_bursts) r.r_queries r.r_engine_confs r.r_report_runs dropped
      retained
      (if r.r_ok then "all equivalence checks passed" else "EQUIVALENCE FAILURE");
  exit (if r.r_ok then 0 else 1)

let gen_cmd bench out =
  let src = Pts_workload.Suite.source bench in
  match out with
  | None -> print_string src
  | Some path ->
    let oc = open_out path in
    output_string oc src;
    close_out oc;
    Printf.printf "wrote %s (%d lines, config %s)\n" path
      (List.length (String.split_on_char '\n' src))
      (Pts_workload.Genprog.describe (Pts_workload.Suite.config bench))

(* ------------------------------- wiring ----------------------------- *)

let stats_t =
  Cmd.v (Cmd.info "stats" ~doc:"PAG and call-graph statistics")
    Term.(const stats_cmd $ lang_arg $ file_arg $ bench_arg)

let ir_t = Cmd.v (Cmd.info "ir" ~doc:"Dump the lowered IR") Term.(const ir_cmd $ lang_arg $ file_arg $ bench_arg)

let query_t =
  let meth =
    Arg.(required & opt (some string) None & info [ "method"; "m" ] ~docv:"M" ~doc:"Method, e.g. Main.main.")
  in
  let var = Arg.(required & opt (some string) None & info [ "var"; "v" ] ~docv:"V" ~doc:"Variable name.") in
  Cmd.v (Cmd.info "query" ~doc:"Answer one points-to query")
    Term.(
      const query_cmd $ lang_arg $ file_arg $ bench_arg $ meth $ var $ engine_arg $ budget_arg $ prune_arg
      $ trace_arg $ metrics_arg)

let client_t =
  let client =
    Arg.(
      value
      & opt (enum (List.map (fun (k, _) -> (k, k)) clients)) "safecast"
      & info [ "client"; "c" ] ~docv:"CLIENT" ~doc:"Client (safecast|nullderef|factorym|devirt).")
  in
  let cache =
    Arg.(
      value & opt (some string) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:"Persist the dynsum summary cache across runs (load before, save after).")
  in
  let jobs =
    jobs_arg
      ~doc:
        "Answer the query batch on $(docv) worker domains over the shared frozen PAG (parallel \
         batch mode when > 1)."
  in
  let rounds =
    Arg.(
      value & opt int 1
      & info [ "rounds" ] ~docv:"N"
          ~doc:
            "Split the batch into $(docv) consecutive rounds, publishing the per-domain dynsum \
             summaries to a shared base tier between rounds.")
  in
  let vjson =
    Arg.(
      value & flag
      & info [ "verdicts-json" ]
          ~doc:
            "Print the canonical verdicts object as one JSON line (the same encoder the serve \
             daemon embeds in query responses, so the two are byte-comparable).")
  in
  Cmd.v (Cmd.info "client" ~doc:"Run a client's query set")
    Term.(
      const client_cmd $ lang_arg $ file_arg $ bench_arg $ client $ engine_arg $ budget_arg $ prune_arg
      $ cache $ trace_arg $ metrics_arg $ vjson $ jobs $ rounds $ schedule_arg)

let compare_t =
  Cmd.v (Cmd.info "compare" ~doc:"All engines on all clients")
    Term.(const compare_cmd $ lang_arg $ file_arg $ bench_arg $ budget_arg $ prune_arg $ trace_arg $ metrics_arg)

let gen_t =
  let bench =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) Pts_workload.Suite.names))) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name.")
  in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.") in
  Cmd.v (Cmd.info "gen" ~doc:"Emit a generated benchmark program") Term.(const gen_cmd $ bench $ out)

let edit_t =
  let bench =
    Arg.(
      required
      & opt (some (enum (List.map (fun n -> (n, n)) Pts_workload.Suite.names))) None
      & info [ "bench" ] ~docv:"NAME" ~doc:"Benchmark to edit.")
  in
  let bursts =
    Arg.(value & opt int 3 & info [ "bursts" ] ~docv:"N" ~doc:"Number of edit bursts to apply.")
  in
  let edits =
    Arg.(value & opt int 8 & info [ "edits" ] ~docv:"N" ~doc:"Edits drawn per burst.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Edit-script PRNG seed.") in
  let report_jobs =
    Arg.(
      value & opt (list int) [ 1; 2; 4 ]
      & info [ "report-jobs" ] ~docv:"JOBS"
          ~doc:
            "Comma-separated Parsolve job counts for the report byte-identity matrix (default \
             1,2,4).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one machine-readable JSON line instead of text.")
  in
  Cmd.v
    (Cmd.info "edit"
       ~doc:
         "Apply seeded edit bursts incrementally and verify verdict- and report-equality against \
          a from-scratch rebuild")
    Term.(const edit_cmd $ bench $ bursts $ edits $ seed $ report_jobs $ json)

let alias_t =
  let meth =
    Arg.(required & opt (some string) None & info [ "method"; "m" ] ~docv:"M" ~doc:"Method, e.g. Main.main.")
  in
  let var1 = Arg.(required & opt (some string) None & info [ "x" ] ~docv:"X" ~doc:"First variable.") in
  let var2 = Arg.(required & opt (some string) None & info [ "y" ] ~docv:"Y" ~doc:"Second variable.") in
  Cmd.v (Cmd.info "alias" ~doc:"May two variables alias?")
    Term.(
      const alias_cmd $ lang_arg $ file_arg $ bench_arg $ meth $ var1 $ var2 $ engine_arg $ budget_arg
      $ prune_arg)

let why_t =
  let meth =
    Arg.(required & opt (some string) None & info [ "method"; "m" ] ~docv:"M" ~doc:"Method, e.g. Main.main.")
  in
  let var = Arg.(required & opt (some string) None & info [ "var"; "v" ] ~docv:"V" ~doc:"Variable name.") in
  let site = Arg.(required & opt (some int) None & info [ "site"; "s" ] ~docv:"N" ~doc:"Allocation site id.") in
  Cmd.v (Cmd.info "why" ~doc:"Explain why a variable points to a site")
    Term.(const why_cmd $ lang_arg $ file_arg $ bench_arg $ meth $ var $ site)

let check_t =
  let checker =
    Arg.(
      value & opt_all (list string) []
      & info [ "checker"; "c" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated checker names to run (repeatable). Default: all of safecast, \
             nullderef, factorym, devirt, deadcode, taint.")
  in
  let taint_flows =
    Arg.(
      value & opt int 0
      & info [ "taint-flows" ] ~docv:"N"
          ~doc:"With $(b,--bench): seed $(docv) known source->sink taint flows into the program.")
  in
  let taint_clean =
    Arg.(
      value & opt int 0
      & info [ "taint-clean" ] ~docv:"N"
          ~doc:"With $(b,--bench): seed $(docv) known-clean taint look-alikes.")
  in
  let taint_kill =
    Arg.(
      value & opt int 0
      & info [ "taint-kill" ] ~docv:"N"
          ~doc:
            "With $(b,--bench): seed $(docv) overwrite-kill taint shapes — the secret is \
             unconditionally overwritten before the sink, so only a strong-update engine \
             ($(b,--engine supa)) proves them clean.")
  in
  let taint_weak =
    Arg.(
      value & opt int 0
      & info [ "taint-weak" ] ~docv:"N"
          ~doc:
            "With $(b,--bench): seed $(docv) weak-update control shapes — conditional, \
             aliased or loop-carried overwrites that every sound engine must still flag.")
  in
  let jobs = jobs_arg ~doc:"Answer the checker query batch on $(docv) worker domains." in
  let rounds =
    Arg.(
      value & opt int 1
      & info [ "rounds" ] ~docv:"N" ~doc:"Split the batch into $(docv) consecutive rounds.")
  in
  let fail_on =
    Arg.(
      value
      & opt
          (enum
             [
               ("error", `Sev Pts_clients.Diag.Error);
               ("warning", `Sev Pts_clients.Diag.Warning);
               ("info", `Sev Pts_clients.Diag.Info);
               ("never", `Never);
             ])
          (`Sev Pts_clients.Diag.Error)
      & info [ "fail-on" ] ~docv:"SEVERITY"
          ~doc:
            "Exit non-zero when any finding has at least this severity \
             (error|warning|info|never). Default: error.")
  in
  let report_json =
    Arg.(
      value & flag
      & info [ "report-json" ]
          ~doc:
            "Print the machine-readable report as one JSON line (engine-independent: \
             byte-identical across engines, job counts and pruning).")
  in
  Cmd.v (Cmd.info "check" ~doc:"Run the demand-driven checkers and report diagnostics")
    Term.(
      const check_cmd $ lang_arg $ file_arg $ bench_arg $ taint_flows $ taint_clean $ taint_kill
      $ taint_weak $ checker $ engine_arg $ budget_arg $ prune_arg $ jobs $ rounds $ schedule_arg
      $ fail_on $ report_json $ metrics_arg)

let serve_t =
  let jobs = jobs_arg ~doc:"Answer each request's query batch on $(docv) worker domains." in
  let rounds =
    Arg.(
      value & opt int 1
      & info [ "rounds" ] ~docv:"N" ~doc:"Split each request's batch into $(docv) rounds.")
  in
  let max_budget =
    Arg.(
      value & opt int 0
      & info [ "max-budget" ] ~docv:"N"
          ~doc:
            "Reject requests asking for a per-query budget above $(docv) with a structured \
             $(b,budget_too_large) error (0 = no ceiling).")
  in
  let base_capacity =
    Arg.(
      value & opt int 4096
      & info [ "base-capacity" ] ~docv:"N"
          ~doc:
            "Bound the cross-request summary tier to $(docv) entries, evicting with a \
             second-chance clock (0 = unbounded).")
  in
  let queue_capacity =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:
            "Bound the admission queue to $(docv) pending requests; excess requests are rejected \
             with $(b,overloaded) (0 = unbounded).")
  in
  let max_cost =
    Arg.(
      value & opt int 0
      & info [ "max-cost" ] ~docv:"N"
          ~doc:
            "Reject requests whose predicted step cost exceeds $(docv) with $(b,oversized) (0 = \
             off).")
  in
  let pipeline =
    Arg.(
      value & opt int 1
      & info [ "pipeline" ] ~docv:"N"
          ~doc:
            "Read up to $(docv) requests before draining the admission queue in per-client \
             fair-share order; responses carry the request $(b,id) for matching.")
  in
  let socket =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv) instead of stdin/stdout.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run as a long-lived daemon: freeze one PAG, answer newline-delimited JSON requests \
          (query/check/edit/stats/shutdown) with a persistent cross-request summary tier")
    Term.(
      const serve_cmd $ lang_arg $ file_arg $ bench_arg $ budget_arg $ max_budget $ jobs $ rounds
      $ schedule_arg $ base_capacity $ queue_capacity $ max_cost $ pipeline $ socket $ trace_arg)

let run_t =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Compile, run every client with one engine, and apply the Devirtopt rewrite")
    Term.(
      const run_cmd $ lang_arg $ file_arg $ bench_arg $ engine_arg $ budget_arg $ prune_arg
      $ metrics_arg)

let dot_t =
  let what =
    Arg.(
      value
      & opt (enum [ ("pag", `Pag); ("callgraph", `Callgraph) ]) `Pag
      & info [ "graph"; "g" ] ~docv:"WHAT" ~doc:"Which graph (pag|callgraph).")
  in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.") in
  Cmd.v (Cmd.info "dot" ~doc:"Export the PAG or call graph as Graphviz DOT")
    Term.(const dot_cmd $ lang_arg $ file_arg $ bench_arg $ what $ out)

let () =
  let doc = "demand-driven summary-based points-to analysis (DYNSUM reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "ptsto" ~version:"1.0.0" ~doc)
          [
            run_t; stats_t; ir_t; query_t; client_t; check_t; serve_t; compare_t; edit_t; gen_t;
            alias_t; why_t; dot_t;
          ]))

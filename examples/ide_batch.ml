(* Simulates the paper's motivating deployment: an IDE issuing bursts of
   NullDeref queries against a long-lived analysis session. DYNSUM keeps
   its summary cache across bursts, so per-query latency collapses after
   the first burst — the property that makes it "better-suited for
   low-budget environments such as JIT compilers and IDEs" (§5.3).

     dune exec examples/ide_batch.exe [-- BENCH] *)

let () =
  let bench = match Sys.argv with [| _; b |] -> b | _ -> "jython" in
  let pl = Pts_workload.Suite.pipeline bench in
  let queries = Pts_clients.Nullderef.queries pl in
  Printf.printf "IDE session on %s: %d null-dereference queries in 10 bursts\n\n" bench
    (List.length queries);
  let engines =
    [
      ("refinepts (per-query caching only)", List.nth (Pts_clients.Pipeline.engines pl) 1);
      ("dynsum (summaries persist)", Engine.dynsum (Dynsum.create pl.Pts_clients.Pipeline.pag));
    ]
  in
  List.iter
    (fun (label, engine) ->
      Printf.printf "%s:\n" label;
      let batches = Pts_clients.Client.run_batches engine queries ~batches:10 in
      List.iteri
        (fun i (r : Pts_clients.Client.run_result) ->
          let n = Pts_clients.Client.total r.Pts_clients.Client.tally in
          Printf.printf "  burst %2d: %4d queries, %6.2f ms, %6d steps/query%s\n" (i + 1) n
            (1000.0 *. r.Pts_clients.Client.seconds)
            (if n = 0 then 0 else r.Pts_clients.Client.steps / n)
            (if r.Pts_clients.Client.summaries_after > 0 then
               Printf.sprintf ", %d summaries cached" r.Pts_clients.Client.summaries_after
             else ""))
        batches;
      print_newline ())
    engines

(* A small cast-auditing tool built on the public API: runs the SafeCast
   client over a program and reports every downcast with a verdict and,
   for refuted casts, the offending allocation sites.

     dune exec examples/safecast_audit.exe              (javac benchmark)
     dune exec examples/safecast_audit.exe -- prog.mj   (your program) *)

let () =
  let pl =
    match Sys.argv with
    | [| _; path |] -> (
      match Frontend.compile_file path with
      | prog -> Pts_clients.Pipeline.of_program prog
      | exception Frontend.Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1)
    | _ -> Pts_workload.Suite.pipeline "javac"
  in
  let prog = pl.Pts_clients.Pipeline.prog in
  let dynsum = Dynsum.create pl.Pts_clients.Pipeline.pag in
  let queries = Pts_clients.Safecast.queries pl in
  Printf.printf "auditing %d non-trivial downcasts...\n\n" (List.length queries);
  let verdictn = ref (0, 0, 0) in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun q ->
      let outcome = Dynsum.points_to dynsum q.Pts_clients.Client.q_node in
      match Pts_clients.Client.verdict_of q.Pts_clients.Client.q_pred outcome with
      | Pts_clients.Client.Proved ->
        let p, r, u = !verdictn in
        verdictn := (p + 1, r, u)
      | Pts_clients.Client.Unknown ->
        let p, r, u = !verdictn in
        verdictn := (p, r, u + 1);
        Printf.printf "UNKNOWN %s (budget exceeded)\n" q.Pts_clients.Client.q_desc
      | Pts_clients.Client.Refuted ->
        let p, r, u = !verdictn in
        verdictn := (p, r + 1, u);
        Printf.printf "UNSAFE  %s\n" q.Pts_clients.Client.q_desc;
        (match outcome with
        | Query.Resolved ts ->
          List.iter
            (fun site ->
              let a = prog.Ir.allocs.(site) in
              if not a.Ir.alloc_is_null then
                Printf.printf "        may hold %-20s (allocated in %s, line %d)\n"
                  (Types.class_name prog.Ir.ctable a.Ir.alloc_cls)
                  prog.Ir.methods.(a.Ir.alloc_meth).Ir.pretty a.Ir.alloc_pos.Loc.line)
            (Query.sites ts)
        | Query.Exceeded -> ()))
    queries;
  let p, r, u = !verdictn in
  Printf.printf "\n%d safe, %d unsafe, %d unknown in %.3fs (%d summaries cached)\n" p r u
    (Unix.gettimeofday () -. t0)
    (Dynsum.summary_count dynsum)

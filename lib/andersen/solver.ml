module Bitset = Pts_util.Bitset
module Stats = Pts_util.Stats
module Digraph = Pts_util.Digraph

type t = {
  prog : Ir.program;
  pag : Pag.t;
  cg : Callgraph.t;
  n_fields : int;
  (* Units are PAG nodes first, then dynamically-created (object, field)
     cells. All growable arrays are indexed by unit id. *)
  mutable pts : Bitset.t array;
  mutable delta : Bitset.t array; (* not-yet-propagated frontier per unit *)
  mutable dyn_copy : int list array;
  mutable uf : int array; (* union-find over collapsed copy-SCCs *)
  mutable members : int list array; (* units merged into this rep *)
  mutable n_units : int;
  copy_dedup : (int * int, unit) Hashtbl.t;
  cells : (int, int) Hashtbl.t; (* site * n_fields + fld -> unit *)
  virtuals_at : (int, Builder.call_desc list ref) Hashtbl.t;
  connected : (int * int, unit) Hashtbl.t; (* (site, target method) *)
  reachable : bool array;
  queue : int Queue.t;
  mutable queued : Bytes.t;
  stats : Stats.t;
}

let rec find t u =
  let p = t.uf.(u) in
  if p = u then u
  else begin
    let r = find t p in
    t.uf.(u) <- r;
    r
  end

let grow_units t needed =
  let cap = Array.length t.pts in
  if needed > cap then begin
    let ncap = max (2 * cap) needed in
    let pts = Array.make ncap (Bitset.create ~capacity:1 ()) in
    Array.blit t.pts 0 pts 0 t.n_units;
    let delta = Array.make ncap (Bitset.create ~capacity:1 ()) in
    Array.blit t.delta 0 delta 0 t.n_units;
    for i = t.n_units to ncap - 1 do
      pts.(i) <- Bitset.create ~capacity:16 ();
      delta.(i) <- Bitset.create ~capacity:16 ()
    done;
    t.pts <- pts;
    t.delta <- delta;
    let dyn = Array.make ncap [] in
    Array.blit t.dyn_copy 0 dyn 0 t.n_units;
    t.dyn_copy <- dyn;
    let uf = Array.init ncap (fun i -> i) in
    Array.blit t.uf 0 uf 0 t.n_units;
    t.uf <- uf;
    let members = Array.init ncap (fun i -> [ i ]) in
    Array.blit t.members 0 members 0 t.n_units;
    t.members <- members;
    let queued = Bytes.make ncap '\000' in
    Bytes.blit t.queued 0 queued 0 (Bytes.length t.queued);
    t.queued <- queued
  end

let push t u =
  if Bytes.get t.queued u = '\000' then begin
    Bytes.set t.queued u '\001';
    Queue.add u t.queue
  end

(* Re-arm a node whose edge set just grew (a call edge connected after its
   points-to set was already propagated): mark everything it holds as
   frontier again so the fresh edges see the full set, and requeue. *)
let reseed t u =
  let r = find t u in
  if not (Bitset.is_empty t.pts.(r)) then begin
    ignore (Bitset.union_into ~dst:t.delta.(r) t.pts.(r));
    push t r
  end

let cell t site fld =
  let key = (site * t.n_fields) + fld in
  match Hashtbl.find_opt t.cells key with
  | Some u -> u
  | None ->
    let u = t.n_units in
    grow_units t (u + 1);
    t.n_units <- u + 1;
    Hashtbl.add t.cells key u;
    Stats.bump t.stats "cells";
    u

let add_copy t src dst =
  if not (Hashtbl.mem t.copy_dedup (src, dst)) then begin
    Hashtbl.add t.copy_dedup (src, dst) ();
    let s = find t src and d = find t dst in
    t.dyn_copy.(s) <- dst :: t.dyn_copy.(s);
    Stats.bump t.stats "copy_edges";
    if s <> d && Bitset.diff_union_into ~dst:t.pts.(d) ~delta:t.delta.(d) t.pts.(s) then push t d
  end

let seed_obj t site dst_node =
  let obj = Pag.obj_node t.pag site in
  ignore (Bitset.add t.pts.(find t obj) site);
  let d = find t dst_node in
  if Bitset.add t.pts.(d) site then begin
    ignore (Bitset.add t.delta.(d) site);
    push t d
  end

(* Connect one call edge: wire PAG entry/exit edges, record the call-graph
   edge, activate the callee, and reseed every populated source endpoint so
   the new edges see the whole set, not just future deltas. *)
let rec connect t (cd : Builder.call_desc) target_mid =
  if not (Hashtbl.mem t.connected (cd.Builder.cd_site, target_mid)) then begin
    Hashtbl.add t.connected (cd.Builder.cd_site, target_mid) ();
    activate t target_mid;
    let target = t.prog.Ir.methods.(target_mid) in
    Builder.connect_call t.pag cd ~target;
    ignore (Callgraph.add_edge t.cg ~site:cd.Builder.cd_site ~caller:cd.Builder.cd_caller ~target:target_mid);
    (match Builder.receiver_node t.pag cd with Some r -> reseed t r | None -> ());
    (match cd.Builder.cd_kind with
    | Ir.Ctor { recv; _ } -> reseed t (Pag.local_node t.pag ~meth:cd.Builder.cd_caller ~var:recv)
    | Ir.Virtual _ | Ir.Static _ -> ());
    List.iter (fun a -> reseed t a) cd.Builder.cd_args;
    List.iter (fun r -> reseed t r) (Builder.return_nodes t.pag target)
  end

and activate t mid =
  if not t.reachable.(mid) then begin
    t.reachable.(mid) <- true;
    Stats.bump t.stats "reachable_methods";
    let descs = Builder.add_method_body t.pag mid in
    (* seed allocations and reseed accessed globals *)
    let m = t.prog.Ir.methods.(mid) in
    List.iter
      (fun instr ->
        match instr with
        | Ir.Alloc { dst; site; _ } -> seed_obj t site (Pag.local_node t.pag ~meth:mid ~var:dst)
        | Ir.Load_global { glb; _ } -> reseed t (Pag.global_node t.pag glb)
        | Ir.Move _ | Ir.Load _ | Ir.Store _ | Ir.Store_global _ | Ir.Call _ | Ir.Return _
        | Ir.Cast_move _ ->
          ())
      m.Ir.body;
    List.iter
      (fun (cd : Builder.call_desc) ->
        match cd.Builder.cd_kind with
        | Ir.Static { target } -> connect t cd target.Types.ms_id
        | Ir.Ctor { ctor; _ } -> connect t cd ctor.Types.ms_id
        | Ir.Virtual _ -> (
          match Builder.receiver_node t.pag cd with
          | Some recv ->
            (match Hashtbl.find_opt t.virtuals_at recv with
            | Some r -> r := cd :: !r
            | None -> Hashtbl.add t.virtuals_at recv (ref [ cd ]));
            reseed t recv
          | None -> assert false))
      descs
  end

let dispatch t recv_node site_id cd =
  ignore recv_node;
  let ctable = t.prog.Ir.ctable in
  let cls = (t.prog.Ir.allocs.(site_id)).Ir.alloc_cls in
  if cls <> Types.null_class ctable then begin
    match cd.Builder.cd_kind with
    | Ir.Virtual { mname; _ } -> (
      match Types.lookup_method ctable cls mname with
      | Some target -> connect t cd target.Types.ms_id
      | None -> () (* receiver class cannot answer: statically dead combination *))
    | Ir.Static _ | Ir.Ctor _ -> ()
  end

(* Difference propagation: drain the unit's delta and push only that along
   every outgoing copy edge; complex constraints (loads/stores/dispatch)
   likewise fire only for the frontier sites. A merged class propagates
   once through the union of its members' edges. *)
let process t u0 =
  let u = find t u0 in
  let d = t.delta.(u) in
  if not (Bitset.is_empty d) then begin
    t.delta.(u) <- Bitset.create ~capacity:16 ();
    Stats.bump t.stats "propagations";
    let propagate dst =
      let w = find t dst in
      if w <> u && Bitset.diff_union_into ~dst:t.pts.(w) ~delta:t.delta.(w) d then push t w
    in
    List.iter
      (fun m ->
        if m < Pag.node_count t.pag then begin
          (* static copy edges from the PAG *)
          List.iter propagate (Pag.assign_out t.pag m);
          List.iter propagate (Pag.global_out t.pag m);
          List.iter (fun (_, w) -> propagate w) (Pag.entry_out t.pag m);
          List.iter (fun (_, w) -> propagate w) (Pag.exit_out t.pag m);
          (* complex constraints: m as a load/store base or virtual receiver *)
          let loads = Pag.load_out t.pag m in
          let stores = Pag.store_in t.pag m in
          let virtuals =
            match Hashtbl.find_opt t.virtuals_at m with Some r -> !r | None -> []
          in
          if loads <> [] || stores <> [] || virtuals <> [] then
            Bitset.iter d (fun o ->
                List.iter (fun (f, dst) -> add_copy t (cell t o f) dst) loads;
                List.iter (fun (f, src) -> add_copy t src (cell t o f)) stores;
                List.iter (fun cd -> dispatch t m o cd) virtuals)
        end)
      t.members.(u);
    (* dynamic copy edges — fetched after the members loop so edges added
       by the complex constraints above are included *)
    List.iter propagate t.dyn_copy.(u)
  end

(* Online cycle collapse: SCCs of the current copy graph (static assign-like
   edges plus dynamic ones) become single units. Periodically invoked from
   the run loop; stale queue entries are harmless since [process] works on
   representatives and skips empty deltas. *)
let collapse t =
  let g = Digraph.create ~capacity:t.n_units () in
  Digraph.ensure_node g (t.n_units - 1);
  let n_nodes = Pag.node_count t.pag in
  for u = 0 to t.n_units - 1 do
    if find t u = u then begin
      let edge dst =
        let w = find t dst in
        if w <> u then Digraph.add_edge g u w
      in
      List.iter
        (fun m ->
          if m < n_nodes then begin
            List.iter edge (Pag.assign_out t.pag m);
            List.iter edge (Pag.global_out t.pag m);
            List.iter (fun (_, w) -> edge w) (Pag.entry_out t.pag m);
            List.iter (fun (_, w) -> edge w) (Pag.exit_out t.pag m)
          end)
        t.members.(u);
      List.iter edge t.dyn_copy.(u)
    end
  done;
  let comp, count = Digraph.scc g in
  let group = Array.make count [] in
  for u = 0 to t.n_units - 1 do
    if find t u = u then group.(comp.(u)) <- u :: group.(comp.(u))
  done;
  Array.iter
    (fun us ->
      match us with
      | [] | [ _ ] -> ()
      | r :: rest ->
        List.iter
          (fun u ->
            t.uf.(u) <- r;
            ignore (Bitset.union_into ~dst:t.pts.(r) t.pts.(u));
            ignore (Bitset.union_into ~dst:t.delta.(r) t.delta.(u));
            t.dyn_copy.(r) <- List.rev_append t.dyn_copy.(u) t.dyn_copy.(r);
            t.dyn_copy.(u) <- [];
            t.members.(r) <- List.rev_append t.members.(u) t.members.(r);
            t.members.(u) <- [];
            Stats.bump t.stats "collapsed_units")
          rest;
        (* everything the class holds must flow through the merged edge
           set at least once *)
        ignore (Bitset.union_into ~dst:t.delta.(r) t.pts.(r));
        push t r)
    group;
  Stats.bump t.stats "collapse_passes"

let collapse_interval = 2048

let run ?roots (prog : Ir.program) =
  let pag = Pag.create prog in
  let cg = Callgraph.create prog in
  let n_nodes = Pag.node_count pag in
  let t =
    {
      prog;
      pag;
      cg;
      n_fields = max 1 (Types.field_count prog.Ir.ctable);
      pts = Array.init (max n_nodes 1) (fun _ -> Bitset.create ~capacity:16 ());
      delta = Array.init (max n_nodes 1) (fun _ -> Bitset.create ~capacity:16 ());
      dyn_copy = Array.make (max n_nodes 1) [];
      uf = Array.init (max n_nodes 1) (fun i -> i);
      members = Array.init (max n_nodes 1) (fun i -> [ i ]);
      n_units = n_nodes;
      copy_dedup = Hashtbl.create 4096;
      cells = Hashtbl.create 1024;
      virtuals_at = Hashtbl.create 256;
      connected = Hashtbl.create 1024;
      reachable = Array.make (Array.length prog.Ir.methods) false;
      queue = Queue.create ();
      queued = Bytes.make (max n_nodes 1) '\000';
      stats = Stats.create ();
    }
  in
  let roots =
    match roots with
    | Some rs -> rs
    | None -> (
      match prog.Ir.entry with
      | Some e -> [ e ]
      | None -> List.init (Array.length prog.Ir.methods) (fun i -> i))
  in
  List.iter (fun r -> activate t r) roots;
  let processed = ref 0 in
  while not (Queue.is_empty t.queue) do
    let u = Queue.pop t.queue in
    Bytes.set t.queued u '\000';
    process t u;
    incr processed;
    if !processed mod collapse_interval = 0 then collapse t
  done;
  let sccs = Callgraph.mark_recursion t.cg t.pag in
  Stats.add t.stats "recursive_sccs" sccs;
  Stats.add t.stats "cg_edges" (Callgraph.edge_count t.cg);
  (* flatten the union-find so post-run lookups are one indirection *)
  for i = 0 to t.n_units - 1 do
    ignore (find t i)
  done;
  (* install the solution as the demand kernel's pruning oracle, then seal *)
  Pag.set_oracle t.pag (fun n -> t.pts.(find t n));
  Pag.freeze t.pag;
  t

let pag t = t.pag
let callgraph t = t.cg
let program t = t.prog

let points_to t node =
  if node < Array.length t.pts && node < t.n_units then t.pts.(find t node)
  else Bitset.create ~capacity:1 ()

let points_to_var t ~meth ~var = points_to t (Pag.local_node t.pag ~meth ~var)

let is_reachable t mid = mid >= 0 && mid < Array.length t.reachable && t.reachable.(mid)

let reachable_methods t =
  let acc = ref [] in
  Array.iteri (fun i r -> if r then acc := i :: !acc) t.reachable;
  List.rev !acc

let stats t = t.stats

(** Whole-program Andersen-style (inclusion-based) points-to analysis —
    the reproduction's substitute for Spark (Lhoták & Hendren, CC'03).

    Field-sensitive on (object, field) cells, context-insensitive,
    flow-insensitive. It plays two roles, both taken from the paper's
    setup (§5.1):

    - it constructs the PAG and the call graph {e on the fly}: a method's
      edges enter the graph only once the method is discovered reachable,
      and virtual call sites are resolved against the receiver's growing
      points-to set ("determined using a call graph constructed on the fly
      with Andersen-style analysis", Table 3);
    - its solution is a sound over-approximation of every context-sensitive
      demand answer, which the test-suite uses as an oracle.

    The fixpoint runs with {e difference propagation} — each unit keeps a
    delta bitset of not-yet-propagated sites and only the delta flows
    along copy edges — and {e online cycle collapse}: copy-edge SCCs
    detected periodically during solving are merged into single units via
    union-find, so a cycle's set is propagated once instead of once per
    member.

    [run] returns a frozen PAG with recursion-collapsed call sites and
    the solution installed as the PAG's pruning oracle
    (see {!Pag.set_oracle}), ready for the demand-driven analyses. *)

type t

val run : ?roots:int list -> Ir.program -> t
(** Solve to fixpoint. [roots] defaults to the program's synthetic entry
    method (or every method when the program has none). *)

val pag : t -> Pag.t
val callgraph : t -> Callgraph.t
val program : t -> Ir.program

val points_to : t -> Pag.node -> Pts_util.Bitset.t
(** Allocation-site ids that may flow to the node. The returned set is the
    solver's own — do not mutate. *)

val points_to_var : t -> meth:int -> var:int -> Pts_util.Bitset.t

val is_reachable : t -> int -> bool
(** Is the method id reachable from the roots? *)

val reachable_methods : t -> int list

val stats : t -> Pts_util.Stats.t
(** Counters: ["propagations"], ["copy_edges"], ["cells"],
    ["reachable_methods"], ["cg_edges"], ["recursive_sccs"],
    ["collapsed_units"], ["collapse_passes"]. *)

module Stats = Pts_util.Stats

type ctx = { cx_pl : Pipeline.t; cx_stats : Stats.t }

type point = {
  pt_node : Pag.node;
  pt_desc : string;
  pt_method : string;
  pt_line : int;
  pt_severity : Diag.severity;
  pt_pred : Query.Target_set.t -> bool;
  pt_bad_sites : int list -> int list;
  pt_message : int list -> string;
}

type checker = {
  ck_name : string;
  ck_doc : string;
  ck_points : ctx -> point list;
  ck_cheap : ctx -> Diag.t list;
}

let make ?(points = fun _ -> []) ?(cheap = fun _ -> []) ~doc name =
  { ck_name = name; ck_doc = doc; ck_points = points; ck_cheap = cheap }

let to_query p = { Client.q_node = p.pt_node; q_desc = p.pt_desc; q_pred = p.pt_pred }

let points_of pl ck = ck.ck_points { cx_pl = pl; cx_stats = Stats.create () }
let queries_of pl ck = List.map to_query (points_of pl ck)

let site_name (prog : Ir.program) site =
  let a = prog.Ir.allocs.(site) in
  if a.Ir.alloc_is_null then Printf.sprintf "o%d:null" site
  else
    Printf.sprintf "o%d:%s (new in %s:%d)" site
      (Types.class_name prog.Ir.ctable a.Ir.alloc_cls)
      prog.Ir.methods.(a.Ir.alloc_meth).Ir.pretty a.Ir.alloc_pos.Loc.line

let sites_blurb (prog : Ir.program) sites =
  let shown = List.filteri (fun i _ -> i < 3) sites in
  let extra = List.length sites - List.length shown in
  String.concat ", " (List.map (site_name prog) shown)
  ^ (if extra > 0 then Printf.sprintf " (+%d more)" extra else "")

type opts = {
  o_engine : string;
  o_conf : Conf.t;
  o_jobs : int;
  o_rounds : int;
  o_schedule : Parsolve.schedule;
  o_base : Dynsum.base option;
}

let default_opts =
  {
    o_engine = "dynsum";
    o_conf = Conf.default;
    o_jobs = 1;
    o_rounds = 1;
    o_schedule = Parsolve.Steal;
    o_base = None;
  }

type report = {
  r_diags : Diag.t list;
  r_points : int;
  r_unique_nodes : int;
  r_dedup_hits : int;
  r_cheap : int;
  r_stats : Stats.t;
  r_seconds : float;
}

let run ?(opts = default_opts) ~checkers pl =
  let stats = Stats.create () in
  let cx = { cx_pl = pl; cx_stats = stats } in
  let pag = pl.Pipeline.pag in
  let (diags, n_points, n_unique, n_cheap), seconds =
    Stats.time (fun () ->
        let per_checker = List.map (fun ck -> (ck, ck.ck_points cx)) checkers in
        let cheap = List.concat_map (fun ck -> ck.ck_cheap cx) checkers in
        let all_points = List.concat_map snd per_checker in
        let n_points = List.length all_points in
        (* Dedup by PAG node: NullDeref et al. emit one point per
           instruction, so the same variable node recurs many times; the
           engine answers each node once and every point reads the
           memoised outcome. *)
        let index : (Pag.node, int) Hashtbl.t = Hashtbl.create 64 in
        let rev_nodes = ref [] in
        List.iter
          (fun p ->
            if not (Hashtbl.mem index p.pt_node) then begin
              Hashtbl.add index p.pt_node (Hashtbl.length index);
              rev_nodes := p.pt_node :: !rev_nodes
            end)
          all_points;
        let nodes = Array.of_list (List.rev !rev_nodes) in
        Stats.add stats "check_points" n_points;
        Stats.add stats "check_unique_nodes" (Array.length nodes);
        Stats.add stats "dedup_hits" (n_points - Array.length nodes);
        let outcomes =
          if Array.length nodes = 0 then [||]
          else begin
            (* No [satisfy]: early exit leaves resolved sets partial and
               engine-dependent; full answers are what make the report
               byte-identical across engines, jobs and pruning. *)
            let qs = Array.map (fun n -> Parsolve.query n) nodes in
            let res =
              Parsolve.run ~conf:opts.o_conf ~jobs:opts.o_jobs ~rounds:opts.o_rounds
                ~schedule:opts.o_schedule ?base:opts.o_base ~engine:opts.o_engine pag qs
            in
            Stats.merge_into ~into:stats res.Parsolve.stats;
            res.Parsolve.outcomes
          end
        in
        let outcome_of node = outcomes.(Hashtbl.find index node) in
        let wcache : (Pag.node * int, Witness.step list option) Hashtbl.t = Hashtbl.create 32 in
        let explain node site =
          match Hashtbl.find_opt wcache (node, site) with
          | Some r -> r
          | None ->
            let r = Witness.explain ~conf:opts.o_conf pag node ~site in
            (match r with
            | Some _ -> Stats.bump stats "witness_found"
            | None -> Stats.bump stats "witness_missing");
            Hashtbl.add wcache (node, site) r;
            r
        in
        let rec witness_for node = function
          | [] -> []
          | site :: rest -> (
            match explain node site with
            | Some steps -> Witness.render pag steps
            | None -> witness_for node rest)
        in
        let diags =
          List.concat_map
            (fun (ck, points) ->
              List.filter_map
                (fun p ->
                  match outcome_of p.pt_node with
                  | Query.Exceeded ->
                    Some
                      {
                        Diag.d_checker = ck.ck_name;
                        d_severity = Diag.Warning;
                        d_method = p.pt_method;
                        d_line = p.pt_line;
                        d_message = p.pt_desc ^ ": unresolved (budget exceeded)";
                        d_witness = [];
                      }
                  | Query.Resolved ts ->
                    if p.pt_pred ts then None
                    else begin
                      let bad = p.pt_bad_sites (Query.sites ts) in
                      Some
                        {
                          Diag.d_checker = ck.ck_name;
                          d_severity = p.pt_severity;
                          d_method = p.pt_method;
                          d_line = p.pt_line;
                          d_message = p.pt_message bad;
                          d_witness = witness_for p.pt_node bad;
                        }
                    end)
                points)
            per_checker
        in
        let diags = List.sort_uniq Diag.compare (cheap @ diags) in
        (diags, n_points, Array.length nodes, List.length cheap))
  in
  {
    r_diags = diags;
    r_points = n_points;
    r_unique_nodes = n_unique;
    r_dedup_hits = n_points - n_unique;
    r_cheap = n_cheap;
    r_stats = stats;
    r_seconds = seconds;
  }

let max_severity r =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.Diag.d_severity
      | Some s -> if Diag.severity_geq d.Diag.d_severity s then Some d.Diag.d_severity else acc)
    None r.r_diags

(* Engine-independent by construction: no stats, no timings, no engine or
   job identifiers — those belong in the metrics blob, not the report. *)
let report_json r =
  let count sev =
    List.length (List.filter (fun d -> d.Diag.d_severity = sev) r.r_diags)
  in
  Trace.Json.Obj
    [
      ("schema", Trace.Json.String "ptsto.check-report/1");
      ( "counts",
        Trace.Json.Obj
          [
            ("error", Trace.Json.Int (count Diag.Error));
            ("warning", Trace.Json.Int (count Diag.Warning));
            ("info", Trace.Json.Int (count Diag.Info));
            ("total", Trace.Json.Int (List.length r.r_diags));
          ] );
      ("findings", Trace.Json.List (List.map Diag.to_json r.r_diags));
    ]

(** The checker driver: batch-evaluates {e check points} from any number
    of checkers through one engine run and turns refutations into
    {!Diag.t} records with witness traces.

    A check point is the typed successor of {!Client.query}: the same
    anti-monotone predicate over a points-to answer, plus everything
    needed to render a diagnostic when the predicate fails — location,
    severity, the subset of sites that violate it, and a message
    builder. {!Client.query} values are derived from points via
    {!to_query}, so the legacy [Client.run] path and the bench harness
    keep working off the same definitions.

    The driver deduplicates points by PAG node (many instructions deref
    the same variable), answers each unique node once under the
    {!Parsolve} scheduler, and reads every point's verdict from the
    memoised outcome. Queries are issued {e without} [satisfy]: early
    exit leaves resolved sets partial and engine-dependent, and report
    byte-identity across engines / jobs / pruning is an acceptance
    criterion of the subsystem. *)

type ctx = {
  cx_pl : Pipeline.t;
  cx_stats : Pts_util.Stats.t;
      (** checkers bump their own counters here (pre-filter skips,
          summary reuse, …); merged into the report stats *)
}

type point = {
  pt_node : Pag.node;  (** the variable whose points-to set is queried *)
  pt_desc : string;  (** legacy [Client.q_desc] text *)
  pt_method : string;  (** pretty name of the enclosing method *)
  pt_line : int;  (** user-source line, 0 if the IR carries none *)
  pt_severity : Diag.severity;  (** severity of a refutation *)
  pt_pred : Query.Target_set.t -> bool;  (** anti-monotone, as before *)
  pt_bad_sites : int list -> int list;
      (** the violating subset of the (sorted) answer sites; witnesses
          are sought for these, in order *)
  pt_message : int list -> string;  (** violating sites -> message *)
}

type checker = {
  ck_name : string;
  ck_doc : string;
  ck_points : ctx -> point list;  (** engine-backed points *)
  ck_cheap : ctx -> Diag.t list;
      (** diagnostics needing no CFL queries (lints off the Andersen
          call graph); run unconditionally *)
}

val make :
  ?points:(ctx -> point list) ->
  ?cheap:(ctx -> Diag.t list) ->
  doc:string ->
  string ->
  checker

val to_query : point -> Client.query
val points_of : Pipeline.t -> checker -> point list
val queries_of : Pipeline.t -> checker -> Client.query list

val site_name : Ir.program -> int -> string
(** ["o12:Vector (new in App0.run:34)"], or ["o3:null"]. *)

val sites_blurb : Ir.program -> int list -> string
(** Comma-joined {!site_name}s, truncated after three with ["(+k more)"]. *)

type opts = {
  o_engine : string;  (** registry name; default ["dynsum"] *)
  o_conf : Conf.t;
  o_jobs : int;  (** {!Parsolve} worker domains; default 1 *)
  o_rounds : int;
  o_schedule : Parsolve.schedule;  (** batch scheduling policy; default {!Parsolve.Steal} *)
  o_base : Dynsum.base option;
      (** external summary tier handed to {!Parsolve.run} (the serve
          daemon's cross-request store); default [None] — a per-call
          tier. Freshness is the caller's contract, see
          {!Parsolve.run}. *)
}

val default_opts : opts

type report = {
  r_diags : Diag.t list;  (** sorted by {!Diag.compare}, deduplicated *)
  r_points : int;
  r_unique_nodes : int;
  r_dedup_hits : int;  (** [r_points - r_unique_nodes] *)
  r_cheap : int;  (** diagnostics from cheap passes *)
  r_stats : Pts_util.Stats.t;
      (** checker counters + merged engine counters + [dedup_hits] *)
  r_seconds : float;
}

val run : ?opts:opts -> checkers:checker list -> Pipeline.t -> report

val max_severity : report -> Diag.severity option
(** Highest severity present, for the [--fail-on] gate. *)

val report_json : report -> Trace.Json.t
(** Machine-readable report, schema ["ptsto.check-report/1"]. Contains
    only engine-independent data (sorted findings and their counts), so
    the serialised bytes are identical across engines, job counts and
    pruning whenever the verdicts are. *)

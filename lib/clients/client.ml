type verdict = Proved | Refuted | Unknown

type query = {
  q_node : Pag.node;
  q_desc : string;
  q_pred : Query.Target_set.t -> bool;
}

type tally = { proved : int; refuted : int; unknown : int }

let total t = t.proved + t.refuted + t.unknown

let add_tally a b =
  { proved = a.proved + b.proved; refuted = a.refuted + b.refuted; unknown = a.unknown + b.unknown }

type run_result = { tally : tally; seconds : float; steps : int; summaries_after : int }

let verdict_of pred = function
  | Query.Exceeded -> Unknown
  | Query.Resolved ts -> if pred ts then Proved else Refuted

let run (engine : Engine.engine) queries =
  let steps_before = Budget.total_steps engine.Engine.budget in
  let tally, seconds =
    Pts_util.Stats.time (fun () ->
        List.fold_left
          (fun acc q ->
            let outcome = engine.Engine.points_to ~satisfy:q.q_pred q.q_node in
            match verdict_of q.q_pred outcome with
            | Proved -> { acc with proved = acc.proved + 1 }
            | Refuted -> { acc with refuted = acc.refuted + 1 }
            | Unknown -> { acc with unknown = acc.unknown + 1 })
          { proved = 0; refuted = 0; unknown = 0 }
          queries)
  in
  {
    tally;
    seconds;
    steps = Budget.total_steps engine.Engine.budget - steps_before;
    summaries_after = engine.Engine.summary_count ();
  }

let run_batches engine queries ~batches =
  if batches <= 0 then invalid_arg "Client.run_batches";
  let n = List.length queries in
  let size = max 1 (n / batches) in
  let rec split i acc rest =
    if i = batches - 1 || rest = [] then List.rev (rest :: acc)
    else begin
      let batch = List.filteri (fun j _ -> j < size) rest in
      let rest' = List.filteri (fun j _ -> j >= size) rest in
      split (i + 1) (batch :: acc) rest'
    end
  in
  let groups = split 0 [] queries in
  List.map (fun batch -> run engine batch) groups

let pp_tally fmt t =
  Format.fprintf fmt "proved=%d refuted=%d unknown=%d" t.proved t.refuted t.unknown

(* One canonical verdict rendering, shared by [ptsto client
   --verdicts-json] and the serve daemon's query responses so that
   "serve answers what the CLI answers" is checkable as byte equality.
   Engine-independent by construction, like {!Check.report_json}: no
   engine name, no timings, no step counts. *)
let verdicts_json ~client results =
  let count v = List.length (List.filter (fun (_, w) -> w = v) results) in
  let descs v =
    List.filter_map
      (fun (q, w) -> if w = v then Some (Trace.Json.String q.q_desc) else None)
      results
  in
  Trace.Json.Obj
    [
      ("schema", Trace.Json.String "ptsto.verdicts/1");
      ("client", Trace.Json.String client);
      ("queries", Trace.Json.Int (List.length results));
      ("proved", Trace.Json.Int (count Proved));
      ("refuted", Trace.Json.List (descs Refuted));
      ("unknown", Trace.Json.List (descs Unknown));
    ]

(** Client framework: queries, verdicts, batching.

    A client turns program points into points-to queries, each with an
    anti-monotone predicate ("every object in the set is benign"), so that
    REFINEPTS may stop refining as soon as an over-approximate answer
    already satisfies it — exactly the paper's [satisfyClient]. *)

type verdict =
  | Proved  (** property holds *)
  | Refuted  (** exact answer violates the property *)
  | Unknown  (** budget exceeded *)

type query = {
  q_node : Pag.node;
  q_desc : string; (** e.g. ["cast@14 Main.main"] *)
  q_pred : Query.Target_set.t -> bool; (** must be anti-monotone *)
}

type tally = { proved : int; refuted : int; unknown : int }

val total : tally -> int
val add_tally : tally -> tally -> tally

type run_result = {
  tally : tally;
  seconds : float;
  steps : int; (** deterministic budget steps consumed *)
  summaries_after : int; (** engine's summary-cache size after the run *)
}

val run : Engine.engine -> query list -> run_result
(** Issue the queries in order against the engine. *)

val run_batches : Engine.engine -> query list -> batches:int -> run_result list
(** Split the query sequence into [batches] consecutive batches (the first
    [batches-1] of size [n/batches], the last taking the remainder, as in
    §5.3) and report per-batch results. The engine is shared, so caches
    persist across batches. *)

val verdict_of : (Query.Target_set.t -> bool) -> Query.outcome -> verdict

val pp_tally : Format.formatter -> tally -> unit

val verdicts_json : client:string -> (query * verdict) list -> Trace.Json.t
(** Canonical machine-readable verdicts, schema ["ptsto.verdicts/1"]:
    query/proved counts plus the refuted and unknown descriptions in
    query order. Engine-independent by construction — [ptsto client
    --verdicts-json] and the serve daemon's [query] responses both
    render through this, so cross-checking them is a byte comparison. *)

let name = "deadcode"

(* Both passes read only the Andersen whole-program results (call-graph
   reachability and the PAG's load edges) — no CFL queries, so this is a
   [ck_cheap] checker and its findings are engine-independent for free. *)
let cheap (cx : Check.ctx) =
  let pl = cx.Check.cx_pl in
  let prog = pl.Pipeline.prog in
  let pag = pl.Pipeline.pag in
  let solver = pl.Pipeline.solver in
  let ctable = prog.Ir.ctable in
  let diags = ref [] in
  let emit severity meth_pretty line message =
    diags :=
      {
        Diag.d_checker = name;
        d_severity = severity;
        d_method = meth_pretty;
        d_line = line;
        d_message = message;
        d_witness = [];
      }
      :: !diags
  in
  (* Unreachable methods. Library classes are library surface — callers
     outside this program may use them — and the synthetic entry is the
     root, so both are exempt. The list is the union of both frontends'
     implicit classes (the MiniJava prelude; MiniFun synthesises no
     library methods, so its builtins never appear here anyway). *)
  let library_classes = [ "Object"; "String"; "Integer"; "Boolean" ] in
  Array.iter
    (fun (m : Ir.meth) ->
      let cls = Types.class_name ctable m.Ir.msig.Types.ms_class in
      if
        (not (List.mem cls library_classes))
        && prog.Ir.entry <> Some m.Ir.id
        && not (Pts_andersen.Solver.is_reachable solver m.Ir.id)
      then emit Diag.Info m.Ir.pretty 0 (Printf.sprintf "method %s is unreachable" m.Ir.pretty))
    prog.Ir.methods;
  (* Dead stores: a field written somewhere reachable but loaded nowhere
     in the whole PAG, and a global written but never read from a
     reachable method. One diagnostic per field/global, located at the
     first reachable method (in method order) that writes it. *)
  let read_globals = Hashtbl.create 16 in
  Array.iter
    (fun (m : Ir.meth) ->
      if Pts_andersen.Solver.is_reachable solver m.Ir.id then
        List.iter
          (function
            | Ir.Load_global { glb; _ } -> Hashtbl.replace read_globals glb ()
            | _ -> ())
          m.Ir.body)
    prog.Ir.methods;
  let seen_fld = Hashtbl.create 16 and seen_glb = Hashtbl.create 16 in
  Array.iter
    (fun (m : Ir.meth) ->
      if Pts_andersen.Solver.is_reachable solver m.Ir.id then
        List.iter
          (function
            | Ir.Store { fld; _ }
              when (not (Hashtbl.mem seen_fld fld)) && Pag.loads_of_field pag fld = [] ->
              Hashtbl.replace seen_fld fld ();
              emit Diag.Warning m.Ir.pretty 0
                (Printf.sprintf "field %s is stored but never loaded"
                   (Types.field_info ctable fld).Types.fld_name)
            | Ir.Store_global { glb; _ }
              when (not (Hashtbl.mem seen_glb glb)) && not (Hashtbl.mem read_globals glb) ->
              Hashtbl.replace seen_glb glb ();
              emit Diag.Warning m.Ir.pretty 0
                (Printf.sprintf "global %s is stored but never read"
                   (Types.global_info ctable glb).Types.glb_name)
            | _ -> ())
          m.Ir.body)
    prog.Ir.methods;
  List.rev !diags

let checker =
  Check.make name ~doc:"unreachable methods and dead stores, from the Andersen call graph" ~cheap

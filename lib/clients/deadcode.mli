(** Unreachable-code / dead-store lint off the Andersen call graph.

    Two cheap passes needing no CFL-reachability queries: methods the
    whole-program call graph never reaches (prelude classes and the
    synthetic entry exempt), and fields/globals that are written from
    reachable code but read nowhere. Severities: unreachable method =
    [Info] (often intentional in generated workloads), dead store =
    [Warning] (the write is wasted work, or the read was forgotten). *)

val name : string
val cheap : Check.ctx -> Diag.t list
val checker : Check.checker

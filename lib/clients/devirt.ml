let name = "Devirt"

let points (cx : Check.ctx) =
  let pl = cx.Check.cx_pl in
  let prog = pl.Pipeline.prog in
  let ctable = prog.Ir.ctable in
  let null_cls = Types.null_class ctable in
  let acc = ref [] in
  Array.iter
    (fun (m : Ir.meth) ->
      if Pts_andersen.Solver.is_reachable pl.Pipeline.solver m.Ir.id then
        List.iter
          (fun instr ->
            match instr with
            | Ir.Call { kind = Ir.Virtual { recv; mname }; site; _ } -> (
              match Types.class_of_typ ctable m.Ir.var_types.(recv) with
              | None -> ()
              | Some recv_cls ->
                let cha_targets = Cha.dispatch_targets prog ~recv_cls ~mname in
                if List.length cha_targets >= 2 then begin
                  let impl_of obj_site =
                    let a = prog.Ir.allocs.(obj_site) in
                    if a.Ir.alloc_cls = null_cls then None
                    else
                      match Types.lookup_method ctable a.Ir.alloc_cls mname with
                      | Some ms -> Some ms.Types.ms_id
                      | None -> None
                  in
                  let impls sites =
                    List.sort_uniq Int.compare (List.filter_map impl_of sites)
                  in
                  let pred ts =
                    (* every non-null object must dispatch to one target *)
                    match impls (Query.sites ts) with [] | [ _ ] -> true | _ :: _ :: _ -> false
                  in
                  acc :=
                    {
                      Check.pt_node = Pag.local_node pl.Pipeline.pag ~meth:m.Ir.id ~var:recv;
                      pt_desc =
                        Printf.sprintf "call@site%d %s.%s (%d CHA targets) in %s" site
                          (Types.class_name ctable recv_cls) mname (List.length cha_targets)
                          m.Ir.pretty;
                      pt_method = m.Ir.pretty;
                      pt_line = prog.Ir.calls.(site).Ir.cs_pos.Loc.line;
                      pt_severity = Diag.Info;
                      pt_pred = pred;
                      pt_bad_sites = List.filter (fun s -> impl_of s <> None);
                      pt_message =
                        (fun bad ->
                          Printf.sprintf
                            "virtual call %s.%s cannot be devirtualised: %d implementations \
                             reachable via %s"
                            (Types.class_name ctable recv_cls) mname
                            (List.length (impls bad))
                            (Check.sites_blurb prog bad));
                    }
                    :: !acc
                end)
            | Ir.Call { kind = Ir.Static _ | Ir.Ctor _; _ }
            | Ir.Alloc _ | Ir.Move _ | Ir.Load _ | Ir.Store _ | Ir.Load_global _
            | Ir.Store_global _ | Ir.Return _ | Ir.Cast_move _ ->
              ())
          m.Ir.body)
    prog.Ir.methods;
  List.rev !acc

let checker =
  Check.make name ~doc:"virtual calls with several CHA targets that still resolve to one impl"
    ~points

let queries pl = Check.queries_of pl checker

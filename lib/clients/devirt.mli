(** The Devirt client: can a virtual call site be devirtualised?

    The paper motivates demand-driven analysis with JIT compilers; this is
    the canonical JIT client. A virtual call site is devirtualisable when
    the receiver's points-to set dispatches every abstract object to the
    {e same} implementation — then the JIT can inline or emit a direct
    call. Only sites that CHA leaves polymorphic (≥ 2 hierarchy-feasible
    targets) are queried: monomorphic-by-hierarchy sites need no points-to
    analysis, so these queries measure precisely the value the
    context-sensitive analysis adds over CHA. *)

val points : Check.ctx -> Check.point list

val checker : Check.checker

val queries : Pipeline.t -> Client.query list
(** Derived from {!points} via {!Check.to_query}; kept for the bench
    harness and the legacy [ptsto client] path. *)

val name : string

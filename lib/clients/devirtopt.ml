(* Devirtualization as an IR-to-IR pass: the end-to-end consumer of
   points-to verdicts the paper's JIT motivation describes. A virtual call
   whose receiver provably reaches implementations of exactly one method is
   rewritten to a statically-bound instance call ([Ir.Ctor] keeps the
   receiver-to-this entry edge but skips dispatch), so the rewritten
   program re-analyzes without the spurious call edges. *)

type rewrite = {
  rw_site : int;
  rw_caller : string;  (* caller method pretty-name *)
  rw_mname : string;
  rw_target : string;  (* chosen implementation's pretty-name *)
  rw_cha_targets : int;
  rw_line : int;
}

type result = {
  dv_prog : Ir.program;  (* rewritten program; input is left untouched *)
  dv_rewrites : rewrite list;
  dv_virtual_sites : int;  (* reachable virtual call sites examined *)
  dv_poly_cha : int;  (* of those, polymorphic by CHA (>= 2 targets) *)
  dv_exceeded : int;  (* receiver queries that blew the budget *)
}

let pp_rewrite ppf r =
  Format.fprintf ppf "site%d %s -> %s (of %d CHA targets) in %s" r.rw_site r.rw_mname r.rw_target
    r.rw_cha_targets r.rw_caller

(* The single implementation every non-null object in [sites] dispatches
   to, if there is one. Mirrors the Devirt client's predicate but keeps
   the signature so the rewrite can name its target. *)
let sole_impl prog ~mname sites =
  let ctable = prog.Ir.ctable in
  let null_cls = Types.null_class ctable in
  let impls =
    List.filter_map
      (fun obj_site ->
        let a = prog.Ir.allocs.(obj_site) in
        if a.Ir.alloc_cls = null_cls then None else Types.lookup_method ctable a.Ir.alloc_cls mname)
      sites
  in
  match List.sort_uniq compare (List.map (fun ms -> ms.Types.ms_id) impls) with
  | [ id ] -> List.find_opt (fun ms -> ms.Types.ms_id = id) impls
  | [] | _ :: _ :: _ -> None

let run ?conf ~engine:engine_name (pl : Pipeline.t) =
  let prog = pl.Pipeline.prog in
  let ctable = prog.Ir.ctable in
  let engine = Engine.create ?conf engine_name pl.Pipeline.pag in
  let rewrites = ref [] in
  let virtual_sites = ref 0 and poly_cha = ref 0 and exceeded = ref 0 in
  (* site -> statically-resolved target, for the rewrite map *)
  let resolved = Hashtbl.create 16 in
  Array.iter
    (fun (m : Ir.meth) ->
      if Pts_andersen.Solver.is_reachable pl.Pipeline.solver m.Ir.id then
        List.iter
          (function
            | Ir.Call { kind = Ir.Virtual { recv; mname }; site; _ } -> (
              incr virtual_sites;
              let cha =
                match Types.class_of_typ ctable m.Ir.var_types.(recv) with
                | Some recv_cls -> List.length (Cha.dispatch_targets prog ~recv_cls ~mname)
                | None -> 0
              in
              if cha >= 2 then incr poly_cha;
              let node = Pag.local_node pl.Pipeline.pag ~meth:m.Ir.id ~var:recv in
              match engine.Engine.points_to node with
              | Query.Exceeded -> incr exceeded
              | Query.Resolved ts -> (
                match sole_impl prog ~mname (Query.sites ts) with
                | None -> ()
                | Some ms ->
                  Hashtbl.replace resolved site ms;
                  rewrites :=
                    {
                      rw_site = site;
                      rw_caller = m.Ir.pretty;
                      rw_mname = mname;
                      rw_target = Types.method_pretty ctable ms;
                      rw_cha_targets = cha;
                      rw_line = prog.Ir.calls.(site).Ir.cs_pos.Loc.line;
                    }
                    :: !rewrites))
            | Ir.Call { kind = Ir.Static _ | Ir.Ctor _; _ }
            | Ir.Alloc _ | Ir.Move _ | Ir.Load _ | Ir.Store _ | Ir.Load_global _
            | Ir.Store_global _ | Ir.Return _ | Ir.Cast_move _ ->
              ())
          m.Ir.body)
    prog.Ir.methods;
  let rewrite_instr = function
    | Ir.Call ({ kind = Ir.Virtual { recv; _ }; site; _ } as c) as instr -> (
      match Hashtbl.find_opt resolved site with
      | Some ms -> Ir.Call { c with kind = Ir.Ctor { recv; ctor = ms } }
      | None -> instr)
    | instr -> instr
  in
  let dv_prog =
    {
      prog with
      Ir.methods =
        Array.map
          (fun (m : Ir.meth) -> { m with Ir.body = List.map rewrite_instr m.Ir.body })
          prog.Ir.methods;
    }
  in
  {
    dv_prog;
    dv_rewrites = List.rev !rewrites;
    dv_virtual_sites = !virtual_sites;
    dv_poly_cha = !poly_cha;
    dv_exceeded = !exceeded;
  }

(* How many rewrites needed the points-to analysis, i.e. CHA alone left
   the site polymorphic. This is the number the bench reports per engine. *)
let analysis_rewrites r = List.length (List.filter (fun rw -> rw.rw_cha_targets >= 2) r.dv_rewrites)

(* ------------------------- fixpoint iteration ------------------------ *)

type fixpoint = {
  fp_first : result;  (* iteration 1's pass output — the headline numbers *)
  fp_final : result;  (* last iteration's output; [dv_prog] is the fixed point *)
  fp_pipeline : Pipeline.t;  (* pipeline of the final program *)
  fp_iterations : int;
  fp_converged : bool;
  fp_reachable : int list;  (* reachable methods per pipeline state, input first *)
  fp_pag_edges : int list;  (* total PAG edges per pipeline state, input first *)
}

let measure (pl : Pipeline.t) =
  let reachable = ref 0 in
  Array.iter
    (fun (m : Ir.meth) ->
      if Pts_andersen.Solver.is_reachable pl.Pipeline.solver m.Ir.id then incr reachable)
    pl.Pipeline.prog.Ir.methods;
  let c = Pag.edge_counts pl.Pipeline.pag in
  let edges =
    c.Pag.n_new + c.Pag.n_assign + c.Pag.n_load + c.Pag.n_store + c.Pag.n_entry + c.Pag.n_exit
    + c.Pag.n_assign_global
  in
  (!reachable, edges)

(* Devirtualizing monomorphic sites tightens the call graph, which can
   strand whole methods (fewer dispatch targets => fewer reachable
   bodies => smaller PAG) and in turn prove further receivers
   monomorphic. Iterate the pass on its own output until it rewrites
   nothing or [max_iters] passes ran; each pipeline state's
   reachable-method and PAG-edge counts record the shrinkage. *)
let run_fixpoint ?conf ?(max_iters = 5) ~engine (pl : Pipeline.t) =
  if max_iters < 1 then invalid_arg "Devirtopt.run_fixpoint: max_iters must be >= 1";
  let r0, e0 = measure pl in
  let rec go iter pl reachable edges first =
    let dv = run ?conf ~engine pl in
    let first = match first with Some f -> Some f | None -> Some dv in
    if dv.dv_rewrites = [] || iter >= max_iters then
      ( dv,
        (match first with Some f -> f | None -> dv),
        pl,
        iter,
        dv.dv_rewrites = [],
        List.rev reachable,
        List.rev edges )
    else begin
      let pl' = Pipeline.of_program dv.dv_prog in
      let r, e = measure pl' in
      go (iter + 1) pl' (r :: reachable) (e :: edges) first
    end
  in
  let final, first, last_pl, iterations, converged, reachable, edges =
    go 1 pl [ r0 ] [ e0 ] None
  in
  (* the final program either equals the last pipeline's (converged) or
     carries the cap iteration's rewrites; expose the matching pipeline *)
  let fp_pipeline = if final.dv_rewrites = [] then last_pl else Pipeline.of_program final.dv_prog in
  {
    fp_first = first;
    fp_final = final;
    fp_pipeline;
    fp_iterations = iterations;
    fp_converged = converged;
    fp_reachable = reachable;
    fp_pag_edges = edges;
  }

(** Devirtopt: monomorphize provably-single-target virtual calls.

    Where {!Devirt} only reports whether a site could be devirtualised,
    this pass acts on the verdict the way a JIT would: every reachable
    virtual call whose receiver's points-to set dispatches to exactly one
    implementation is rewritten into a statically-bound instance call
    ([Ir.Ctor] — the receiver still flows to [this], but call-graph
    construction no longer dispatches on its points-to set). The rewritten
    program is a fresh {!Ir.program}; re-analysing it must yield the same
    verdicts, which the bench harness and tests check. *)

type rewrite = {
  rw_site : int;
  rw_caller : string;
  rw_mname : string;
  rw_target : string;
  rw_cha_targets : int;  (* CHA target count before the rewrite *)
  rw_line : int;
}

type result = {
  dv_prog : Ir.program;
  dv_rewrites : rewrite list;  (* in site order *)
  dv_virtual_sites : int;
  dv_poly_cha : int;
  dv_exceeded : int;
}

val run : ?conf:Engine.conf -> engine:string -> Pipeline.t -> result
(** Query every reachable virtual site's receiver with a fresh [engine]
    and rewrite the provably-monomorphic ones. The input pipeline and its
    program are not mutated. *)

val analysis_rewrites : result -> int
(** Rewrites CHA could not justify alone ([rw_cha_targets >= 2]) — the
    sites where the points-to engine earned its keep. *)

type fixpoint = {
  fp_first : result;  (** iteration 1's pass output — the headline numbers *)
  fp_final : result;
      (** last iteration's output; when [fp_converged] its [dv_prog] is
          the fixed point (no rewrites left) *)
  fp_pipeline : Pipeline.t;  (** analysed pipeline of the final program *)
  fp_iterations : int;  (** passes actually run, [>= 1] *)
  fp_converged : bool;  (** last pass rewrote nothing *)
  fp_reachable : int list;
      (** reachable-method count per pipeline state, input program first —
          length [fp_iterations] when converged in one pass, one entry per
          re-analysis otherwise *)
  fp_pag_edges : int list;  (** total PAG edge count per pipeline state *)
}

val run_fixpoint : ?conf:Engine.conf -> ?max_iters:int -> engine:string -> Pipeline.t -> fixpoint
(** Iterate {!run} on its own output until a pass rewrites nothing or
    [max_iters] (default 5, must be [>= 1]) passes ran. Devirtualizing
    monomorphic sites tightens the call graph, which can strand whole
    method bodies and in turn prove further receivers monomorphic; the
    per-state [fp_reachable] / [fp_pag_edges] lists record that
    shrinkage. *)

val pp_rewrite : Format.formatter -> rewrite -> unit

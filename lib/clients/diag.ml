type severity = Info | Warning | Error

let severity_to_string = function Info -> "info" | Warning -> "warning" | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let severity_geq a b = severity_rank a >= severity_rank b

type t = {
  d_checker : string;
  d_severity : severity;
  d_method : string;
  d_line : int;
  d_message : string;
  d_witness : string list;
}

(* The report order: checker, then location, then message. Deliberately
   independent of query evaluation order, engine, and job count — report
   byte-identity across those axes is an acceptance criterion. *)
let compare a b =
  let c = String.compare a.d_checker b.d_checker in
  if c <> 0 then c
  else
    let c = String.compare a.d_method b.d_method in
    if c <> 0 then c
    else
      let c = Int.compare a.d_line b.d_line in
      if c <> 0 then c
      else
        let c = String.compare a.d_message b.d_message in
        if c <> 0 then c
        else
          let c = Int.compare (severity_rank a.d_severity) (severity_rank b.d_severity) in
          if c <> 0 then c else Stdlib.compare a.d_witness b.d_witness

let to_json d =
  Trace.Json.Obj
    [
      ("checker", Trace.Json.String d.d_checker);
      ("severity", Trace.Json.String (severity_to_string d.d_severity));
      ("method", Trace.Json.String d.d_method);
      ("line", Trace.Json.Int d.d_line);
      ("message", Trace.Json.String d.d_message);
      ("witness", Trace.Json.List (List.map (fun l -> Trace.Json.String l) d.d_witness));
    ]

let location d = if d.d_line > 0 then Printf.sprintf "%s:%d" d.d_method d.d_line else d.d_method

let pp fmt d =
  Format.fprintf fmt "%-7s %-10s %-24s %s"
    (severity_to_string d.d_severity)
    d.d_checker (location d) d.d_message

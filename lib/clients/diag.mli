(** The diagnostic record every checker reports through: a located,
    severity-ranked finding that carries its own witness trace (rendered
    from {!Pts_core.Witness}) so each report says {e why}, not just
    {e that} — the property a demand-driven analysis is uniquely placed
    to provide, since the CFL traversal that refutes a query is itself
    the explanation. *)

type severity = Info | Warning | Error

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

val severity_rank : severity -> int
(** [Info] = 0, [Warning] = 1, [Error] = 2. *)

val severity_geq : severity -> severity -> bool
(** [severity_geq a b] — is [a] at least as severe as [b]? Drives the
    [ptsto check --fail-on] exit-code gate. *)

type t = {
  d_checker : string;  (** checker name, e.g. ["taint"] *)
  d_severity : severity;
  d_method : string;  (** pretty name of the enclosing method *)
  d_line : int;  (** user-source line; 0 when the IR carries no position *)
  d_message : string;
  d_witness : string list;
      (** rendered {!Pts_core.Witness} trace; [[]] when no witness applies
          (cheap lints, budget-exceeded findings) *)
}

val compare : t -> t -> int
(** Total order: checker, method, line, message, severity, witness.
    Independent of evaluation order, engine and job count — report
    byte-identity across those axes depends on it. *)

val to_json : t -> Trace.Json.t
(** Fixed field order: checker, severity, method, line, message, witness. *)

val location : t -> string
(** ["Meth.name:line"], or just the method when the line is unknown. *)

val pp : Format.formatter -> t -> unit
(** One table row (severity, checker, location, message); the witness is
    not included. *)

let name = "FactoryM"

let is_reference = function Ityp.Tclass _ | Ityp.Tarray _ -> true | Ityp.Tint | Ityp.Tbool | Ityp.Tvoid -> false

(* A factory candidate must both return a reference and allocate something
   itself — accessors like [Vector.get] are not factories. *)
let allocates prog (m : Ir.meth) =
  List.exists
    (function
      | Ir.Alloc { site; _ } -> not prog.Ir.allocs.(site).Ir.alloc_is_null
      | Ir.Move _ | Ir.Load _ | Ir.Store _ | Ir.Load_global _ | Ir.Store_global _ | Ir.Call _
      | Ir.Return _ | Ir.Cast_move _ ->
        false)
    m.Ir.body

let points (cx : Check.ctx) =
  let pl = cx.Check.cx_pl in
  let prog = pl.Pipeline.prog in
  let cg = pl.Pipeline.callgraph in
  let acc = ref [] in
  Array.iter
    (fun (m : Ir.meth) ->
      if Pts_andersen.Solver.is_reachable pl.Pipeline.solver m.Ir.id then
        List.iter
          (fun instr ->
            match instr with
            | Ir.Call { dst = Some dst; site; kind; _ } -> (
              let targets = Callgraph.targets cg site in
              let candidates =
                List.filter
                  (fun t ->
                    is_reference prog.Ir.methods.(t).Ir.msig.Types.ms_ret
                    && allocates prog prog.Ir.methods.(t))
                  targets
              in
              match (candidates, kind) with
              | [], _ | _, Ir.Ctor _ -> ()
              | _ :: _, (Ir.Virtual _ | Ir.Static _) ->
                let site_ok obj_site =
                  let a = prog.Ir.allocs.(obj_site) in
                  a.Ir.alloc_is_null || List.mem a.Ir.alloc_meth targets
                in
                acc :=
                  {
                    Check.pt_node = Pag.local_node pl.Pipeline.pag ~meth:m.Ir.id ~var:dst;
                    pt_desc = Printf.sprintf "factory-call@site%d in %s" site m.Ir.pretty;
                    pt_method = m.Ir.pretty;
                    pt_line = prog.Ir.calls.(site).Ir.cs_pos.Loc.line;
                    pt_severity = Diag.Warning;
                    pt_pred = (fun ts -> List.for_all site_ok (Query.sites ts));
                    pt_bad_sites = List.filter (fun s -> not (site_ok s));
                    pt_message =
                      (fun bad ->
                        Printf.sprintf
                          "factory result %s may hold objects not allocated by the callee: %s"
                          (Ir.var_name m dst) (Check.sites_blurb prog bad));
                  }
                  :: !acc)
            | Ir.Call { dst = None; _ }
            | Ir.Alloc _ | Ir.Move _ | Ir.Load _ | Ir.Store _ | Ir.Load_global _
            | Ir.Store_global _ | Ir.Return _ | Ir.Cast_move _ ->
              ())
          m.Ir.body)
    prog.Ir.methods;
  List.rev !acc

let checker =
  Check.make name ~doc:"factory-style calls whose result escapes the factory's own allocations"
    ~points

let queries pl = Check.queries_of pl checker

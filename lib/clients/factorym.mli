(** The FactoryM client (§5.2): does a factory method return a
    newly-allocated object for each call?

    Candidate factories are reachable methods with a reference return
    type. For each reachable call site that may dispatch to a candidate,
    the client queries the call's result variable and proves the factory
    property when every abstract object flowing out was allocated inside
    one of the site's callees (rather than, say, fetched from a cache or
    a static field). *)

val points : Check.ctx -> Check.point list

val checker : Check.checker

val queries : Pipeline.t -> Client.query list
(** Derived from {!points} via {!Check.to_query}; kept for the bench
    harness and the legacy [ptsto client] path. *)

val name : string

let name = "NullDeref"

let points (cx : Check.ctx) =
  let pl = cx.Check.cx_pl in
  let prog = pl.Pipeline.prog in
  let acc = ref [] in
  Array.iter
    (fun (m : Ir.meth) ->
      if Pts_andersen.Solver.is_reachable pl.Pipeline.solver m.Ir.id then begin
        (* Numbering restarts per method so a diagnostic's index depends
           only on its own method's body, not on how many dereferences
           earlier methods happen to contain. *)
        let n = ref 0 in
        List.iter
          (fun instr ->
            let base =
              match instr with
              | Ir.Load { base; _ } | Ir.Store { base; _ } -> Some (base, 0)
              | Ir.Call { kind = Ir.Virtual { recv; _ }; site; _ } ->
                Some (recv, prog.Ir.calls.(site).Ir.cs_pos.Loc.line)
              | Ir.Call { kind = Ir.Static _ | Ir.Ctor _; _ }
              | Ir.Alloc _ | Ir.Move _ | Ir.Load_global _ | Ir.Store_global _ | Ir.Return _
              | Ir.Cast_move _ ->
                None
            in
            match base with
            | None -> ()
            | Some (base, line) ->
              incr n;
              let i = !n in
              let pred ts =
                List.for_all
                  (fun site -> not prog.Ir.allocs.(site).Ir.alloc_is_null)
                  (Query.sites ts)
              in
              acc :=
                {
                  Check.pt_node = Pag.local_node pl.Pipeline.pag ~meth:m.Ir.id ~var:base;
                  pt_desc = Printf.sprintf "deref#%d of %s in %s" i (Ir.var_name m base) m.Ir.pretty;
                  pt_method = m.Ir.pretty;
                  pt_line = line;
                  pt_severity = Diag.Error;
                  pt_pred = pred;
                  pt_bad_sites =
                    List.filter (fun site -> prog.Ir.allocs.(site).Ir.alloc_is_null);
                  pt_message =
                    (fun _ ->
                      Printf.sprintf "deref#%d: %s may be null when dereferenced" i
                        (Ir.var_name m base));
                }
                :: !acc)
          m.Ir.body
      end)
    prog.Ir.methods;
  List.rev !acc

let checker = Check.make name ~doc:"dereferenced variables whose answer contains a null site" ~points
let queries pl = Check.queries_of pl checker

(** The NullDeref client (§5.2): may a dereference observe null?

    For every field load, field store, array access and virtual-call
    receiver in a reachable method, the client queries the base variable
    and proves the dereference safe when no null pseudo-allocation reaches
    it. This is the paper's precision-hungry client: field-based
    approximations smear nulls across unrelated heap locations, so
    REFINEPTS rarely terminates early on it. *)

val points : Check.ctx -> Check.point list

val checker : Check.checker

val queries : Pipeline.t -> Client.query list
(** Derived from {!points} via {!Check.to_query}; kept for the bench
    harness and the legacy [ptsto client] path. *)

val name : string

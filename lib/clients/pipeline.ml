type t = {
  prog : Ir.program;
  solver : Pts_andersen.Solver.t;
  pag : Pag.t;
  callgraph : Callgraph.t;
}

let of_program prog =
  let solver = Pts_andersen.Solver.run prog in
  {
    prog;
    solver;
    pag = Pts_andersen.Solver.pag solver;
    callgraph = Pts_andersen.Solver.callgraph solver;
  }

let of_source ?lang source = of_program (Frontend.compile ?lang source)

let find_local t ~meth_pretty ~var =
  let found = ref None in
  Array.iter
    (fun (m : Ir.meth) ->
      if String.equal m.Ir.pretty meth_pretty then
        Array.iteri
          (fun v name -> if String.equal name var then found := Some (m.Ir.id, v))
          m.Ir.var_names)
    t.prog.Ir.methods;
  match !found with
  | Some (meth, v) -> Pag.local_node t.pag ~meth ~var:v
  | None -> raise Not_found

let find_local_any t ~var =
  let found = ref None in
  Array.iter
    (fun (m : Ir.meth) ->
      Array.iteri
        (fun v name -> if String.equal name var && !found = None then found := Some (m.Ir.id, v))
        m.Ir.var_names)
    t.prog.Ir.methods;
  match !found with
  | Some (meth, v) -> Pag.local_node t.pag ~meth ~var:v
  | None -> raise Not_found

let engines ?conf ?trace ?(with_stasum = false) t =
  let wanted = [ "norefine"; "refinepts"; "dynsum" ] @ if with_stasum then [ "stasum" ] else [] in
  List.map (fun name -> Engine.create ?conf ?trace name t.pag) wanted

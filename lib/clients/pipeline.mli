(** End-to-end driver: source text (any frontend) to an analysed program.

    Bundles the artefacts every client and benchmark needs: the IR, the
    Andersen solution (call graph + soundness oracle) and the frozen PAG. *)

type t = {
  prog : Ir.program;
  solver : Pts_andersen.Solver.t;
  pag : Pag.t;
  callgraph : Callgraph.t;
}

val of_source : ?lang:Loc.lang -> string -> t
(** Compile ([lang] defaults to MiniJava, with prelude), run the
    on-the-fly Andersen construction, freeze the PAG.
    @raise Frontend.Error on bad source. *)

val of_program : Ir.program -> t

val find_local : t -> meth_pretty:string -> var:string -> Pag.node
(** Look up a variable node by method pretty-name (e.g. ["Main.main"]) and
    source variable name. @raise Not_found. *)

val find_local_any : t -> var:string -> Pag.node
(** Like {!find_local} but searches every method, returning the first
    local with that source name (in method order). Lets cross-frontend
    tests locate a uniquely-named variable without knowing which
    synthesised method (e.g. a MiniFun closure's [apply]) holds it.
    @raise Not_found. *)

val engines :
  ?conf:Engine.conf -> ?trace:Trace.sink -> ?with_stasum:bool -> t -> Engine.engine list
(** Fresh [norefine; refinepts; dynsum] engines (plus [stasum] when
    requested — its eager offline phase is costly), built from
    {!Engine.registry} in that order; [trace] is shared by all of them. *)

let name = "SafeCast"

let points (cx : Check.ctx) =
  let pl = cx.Check.cx_pl in
  let prog = pl.Pipeline.prog in
  let ctable = prog.Ir.ctable in
  let null_cls = Types.null_class ctable in
  Array.to_list prog.Ir.casts
  |> List.filter_map (fun (c : Ir.cast_site) ->
         if c.Ir.cast_trivial then None
         else if not (Pts_andersen.Solver.is_reachable pl.Pipeline.solver c.Ir.cast_meth) then None
         else
           match Types.class_of_typ ctable c.Ir.cast_target with
           | None -> None
           | Some target_cls ->
             let node =
               Pag.local_node pl.Pipeline.pag ~meth:c.Ir.cast_meth ~var:c.Ir.cast_src
             in
             let site_ok site =
               let cls = prog.Ir.allocs.(site).Ir.alloc_cls in
               cls = null_cls || Types.subclass ctable cls target_cls
             in
             let target_str = Format.asprintf "%a" Ityp.pp_typ c.Ir.cast_target in
             Some
               {
                 Check.pt_node = node;
                 pt_desc =
                   Printf.sprintf "cast@%d (%s) in %s" c.Ir.cast_pos.Loc.line target_str
                     prog.Ir.methods.(c.Ir.cast_meth).Ir.pretty;
                 pt_method = prog.Ir.methods.(c.Ir.cast_meth).Ir.pretty;
                 pt_line = c.Ir.cast_pos.Loc.line;
                 pt_severity = Diag.Error;
                 pt_pred = (fun ts -> List.for_all site_ok (Query.sites ts));
                 pt_bad_sites = List.filter (fun site -> not (site_ok site));
                 pt_message =
                   (fun bad ->
                     Printf.sprintf "cast to %s may fail: %s reaches %s" target_str
                       (Ir.var_name prog.Ir.methods.(c.Ir.cast_meth) c.Ir.cast_src)
                       (Check.sites_blurb prog bad));
               })

let checker = Check.make name ~doc:"downcasts that can only see subtypes of their target" ~points
let queries pl = Check.queries_of pl checker

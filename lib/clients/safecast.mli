(** The SafeCast client (§5.2): is every downcast in the program safe?

    For each non-trivial reference cast [(C) e] in a reachable method, the
    client queries the points-to set of the operand and proves the cast
    safe when every abstract object's allocation class is a subtype of
    [C]. Null pseudo-objects are benign (casting null always succeeds). *)

val points : Check.ctx -> Check.point list

val checker : Check.checker

val queries : Pipeline.t -> Client.query list
(** Derived from {!points} via {!Check.to_query}; kept for the bench
    harness and the legacy [ptsto client] path. One query per reachable
    non-trivial cast, in cast-site order. *)

val name : string

type verdict = Must_not | May | Unknown

let overlap a b = not (Query.Target_set.is_empty (Query.Target_set.inter a b))

let with_sets (engine : Engine.engine) x y k =
  match (engine.Engine.points_to x, engine.Engine.points_to y) with
  | Query.Resolved a, Query.Resolved b -> k a b
  | Query.Exceeded, _ | _, Query.Exceeded -> Unknown

(* Oracle fast path: disjoint Andersen rows refute every shared target
   (the demand answers are subsets of the rows), so [Must_not] holds with
   no query at all. A shared singleton row would still need the precise
   heap contexts, so only disjointness short-circuits. *)
let oracle_must_not pag x y =
  match pag with Some pag -> Pag.oracle_disjoint pag x y | None -> false

let may_alias ?pag engine x y =
  if x = y then May
  else if oracle_must_not pag x y then Must_not
  else with_sets engine x y (fun a b -> if overlap a b then May else Must_not)

let sites_overlap a b =
  let sa = Query.sites a and sb = Query.sites b in
  List.exists (fun s -> List.mem s sb) sa

let may_alias_sites ?pag engine x y =
  if x = y then May
  else if oracle_must_not pag x y then Must_not
  else with_sets engine x y (fun a b -> if sites_overlap a b then May else Must_not)

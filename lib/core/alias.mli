(** Demand alias queries on top of the points-to engines.

    In the CFL formulation, [x alias y] iff some abstract object flows to
    both ([x flowsTo-bar o flowsTo y], §3.2): two variables may alias
    exactly when their points-to sets share a target. Heap contexts
    participate in the comparison — two allocations of the same site under
    provably different calling contexts do not alias — with a
    site-granularity fallback for clients that want the conservative
    answer. *)

type verdict =
  | Must_not  (** target sets are disjoint: never aliases *)
  | May  (** sets intersect: possible alias *)
  | Unknown  (** a budget ran out *)

val may_alias : ?pag:Pag.t -> Engine.engine -> Pag.node -> Pag.node -> verdict
(** Full-precision comparison on (site, heap-context) targets. With
    [?pag] (and an installed oracle, see {!Pag.set_oracle}), disjoint
    Andersen rows answer [Must_not] without issuing any query — the
    definite-negative fast path. *)

val may_alias_sites : ?pag:Pag.t -> Engine.engine -> Pag.node -> Pag.node -> verdict
(** Coarser comparison on allocation sites only (ignores heap contexts);
    never more precise than {!may_alias}, useful as a sanity oracle.
    Same [?pag] fast path. *)

val overlap : Query.Target_set.t -> Query.Target_set.t -> bool

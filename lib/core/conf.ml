type overflow = Abort | Widen

type t = {
  budget_limit : int;
  max_field_repeat : int;
  max_field_depth : int;
  overflow : overflow;
  prune : bool;
}

let default =
  { budget_limit = 75_000; max_field_repeat = 2; max_field_depth = 64; overflow = Widen;
    prune = false }

let make ?(budget_limit = default.budget_limit) ?(max_field_repeat = default.max_field_repeat)
    ?(max_field_depth = default.max_field_depth) ?(overflow = default.overflow)
    ?(prune = default.prune) () =
  { budget_limit; max_field_repeat; max_field_depth; overflow; prune }

(** Per-engine analysis configuration.

    Lives below every engine module so that {!Fstack}, {!Kernel} and the
    engines can all consume it; {!Engine} re-exports it (with the record
    fields) as [Engine.conf] for external callers. *)

type overflow =
  | Abort  (** overflow fails the query conservatively (paper behaviour) *)
  | Widen  (** k-limit the access path: sound over-approximation *)

type t = {
  budget_limit : int; (** max PAG edge traversals per query (paper: 75,000) *)
  max_field_repeat : int;
      (** max occurrences of one field in a field stack; a push beyond it
          is cut — the stack-world analogue of Algorithm 1's visited-set
          cycle cut around recursive heap structures (see {!Fstack}) *)
  max_field_depth : int; (** hard stack cap, a backstop (see {!Fstack}) *)
  overflow : overflow;
  prune : bool;
      (** consult the PAG's Andersen oracle to skip provably-fruitless
          traversal states ({!Kernel.pruner}); answers are unchanged, only
          the work done per query. No-op when the PAG has no oracle. *)
}

val default : t
(** [{ budget_limit = 75_000; max_field_repeat = 2; max_field_depth = 64;
       overflow = Widen; prune = false }]. *)

val make :
  ?budget_limit:int -> ?max_field_repeat:int -> ?max_field_depth:int -> ?overflow:overflow ->
  ?prune:bool -> unit -> t

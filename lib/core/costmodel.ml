(* Per-query cost prediction from the Andersen oracle.

   The batch scheduler wants queries sorted longest-first so stragglers
   start early; all it needs from us is a ranking that correlates with
   actual kernel steps. The signal we have before running anything is
   the oracle row of the query root: a query can only traverse towards
   allocation sites its root may point to, so row size bounds how much
   of the graph the CFL search can touch. Two regimes:

   - empty row + pruning on: the kernel answers from the fast path
     without entering the worklist at all (see [Kernel.should_prune]),
     so the prediction collapses to a constant;
   - otherwise cost grows with row size. The true relationship is
     superlinear in bad cases (field-stack blowup), but a monotone
     affine map preserves the *ranking*, which is all scheduling uses,
     and keeps the model trivially auditable.

   The constants are step-scale (the kernel charges 1 budget step per
   worklist pop): [base_cost] is the typical pop count of a tiny query,
   [per_site_cost] the marginal pops per reachable allocation site on
   the bundled benchmarks. They only need to be ordered sensibly —
   predictions are compared against each other, never against a
   deadline. *)

let fastpath_cost = 1

let base_cost = 64

let per_site_cost = 48

let predict_of_row ~empty row_size =
  if empty then fastpath_cost else base_cost + (per_site_cost * max 0 row_size)

let predict ?(prune = true) pag node =
  if not (Pag.has_oracle pag) then base_cost
  else
    let empty = prune && Pag.oracle_row_empty pag node in
    predict_of_row ~empty (Pag.oracle_row_size pag node)

(* Pearson correlation of predicted vs actual cost, reported in
   [--metrics-json] and the bench artefact so the model stays honest.
   [nan] when undefined (fewer than two points, or a constant side). *)
let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Costmodel.pearson: length mismatch";
  if n < 2 then nan
  else begin
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    let mx = mean xs and my = mean ys in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then nan else !sxy /. sqrt (!sxx *. !syy)
  end

(** Predicted per-query step cost from the Andersen oracle.

    {!Parsolve} seeds its work-stealing deques longest-first by this
    model; only the {e ranking} of predictions matters, so the model is
    a deliberately simple monotone map from oracle row size to a step
    count, with a constant for the pruner's empty-row fast path. *)

val fastpath_cost : int
val base_cost : int
val per_site_cost : int

val predict_of_row : empty:bool -> int -> int
(** [predict_of_row ~empty row_size] — pure core of the model.
    [empty] selects the fast-path constant ({!fastpath_cost});
    otherwise the result is affine in [row_size] and monotone:
    a larger row never predicts cheaper. *)

val predict : ?prune:bool -> Pag.t -> Pag.node -> int
(** Predicted steps for a query rooted at the node. [prune] (default
    [true]) says whether the engine will run with oracle pruning — only
    then does an empty row hit the fast path. Falls back to
    {!base_cost} when the PAG carries no oracle. *)

val pearson : float array -> float array -> float
(** Sample Pearson correlation coefficient; [nan] when undefined
    (fewer than 2 points or zero variance on either side).
    @raise Invalid_argument on length mismatch. *)

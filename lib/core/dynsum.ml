module Hstack = Pts_util.Hstack
module Stats = Pts_util.Stats

module Cache_key = Kernel.Key
module Cache = Kernel.Key_tbl

(* Shared base tier: merged summaries of earlier rounds (and, in the
   serve daemon, earlier requests), keyed structurally
   ((node, stack symbols, state)) so the table crosses domains without
   hash-cons rebasing. Workers never write the table — the main domain
   grows and evicts between rounds, after all workers have joined — so
   plain Hashtbl reads from many domains are safe. The two per-entry
   mutables that workers do touch are race-tolerant by design: hit/miss
   tallies are [Atomic.t], and the clock bit is a plain bool whose only
   writes are [true] (a stale read merely demotes an entry one eviction
   lap early). *)
type base_key = int * int list * int

(* The polymorphic hash only samples a prefix of the structure, and deep
   field stacks share prefixes — under it, a large tier degenerates into
   a few long buckets and every probe's cost grows with residency. Fold
   the whole symbol list instead. *)
module Base_tbl = Hashtbl.Make (struct
  type t = base_key

  let equal (a : base_key) b = a = b

  let hash ((node, syms, state) : base_key) =
    let mix h x = (h * 0x01000193) lxor x in
    let h = List.fold_left mix (mix (mix 0x811c9dc5 node) state) syms in
    h land max_int
end)

type base_entry = {
  be_objs : int list;
  be_tuples : (int * int list * int) list;
  be_fp : int list; (* derivation footprint, for targeted invalidation *)
  mutable be_ref : bool; (* second-chance clock bit, set on every hit *)
  (* One-slot memo of the rematerialised summary, tagged with the domain
     that built it. Hstack ids are domain-local, so a consumer only
     reuses a memo its own domain produced; the field is a single
     immutable-tuple write, so concurrent overwrites from other domains
     are benign (last publisher wins, every reader sees a consistent
     pair). Without this, a long-lived daemon re-interns every tuple's
     field stack on every request that re-probes a hot entry. *)
  mutable be_mat : (int * Ppta.summary) option;
}

type base = {
  b_tbl : base_entry Base_tbl.t;
  b_cap : int; (* max entries; 0 = unbounded *)
  b_ring : base_key Queue.t; (* clock hand: insertion order, with second chances *)
  b_hits : int Atomic.t;
  b_misses : int Atomic.t;
  b_evictions : int Atomic.t;
}

type t = {
  pag : Pag.t;
  conf : Conf.t;
  budget : Budget.t;
  stats : Stats.t;
  sink : Trace.sink;
  cache : Ppta.summary Cache.t;
  key_stacks : Pts_util.Hstack.t Cache.t; (* key -> its field stack, for persistence *)
  footprints : int list Cache.t; (* key -> PAG nodes its derivation visited *)
  mutable base : base option; (* shared lower tier; overlay = cache above it *)
}

let name = "dynsum"

(* Legacy counter names for the cross-query summary cache. *)
let rename = function
  | Trace.Summary_hit _ -> Some "cache_hits"
  | Trace.Summary_miss _ -> Some "cache_misses"
  | _ -> None

let create ?(conf = Conf.default) ?(trace = Trace.null) pag =
  let stats = Stats.create () in
  {
    pag;
    conf;
    budget = Budget.create ~limit:conf.Conf.budget_limit;
    stats;
    sink = Trace.tee (Trace.counting ~rename stats) trace;
    cache = Cache.create 4096;
    key_stacks = Cache.create 4096;
    footprints = Cache.create 4096;
    base = None;
  }

let summary_count t = Cache.length t.cache

let new_summary_count t = Cache.length t.key_stacks

let summary_points t =
  let pts = Hashtbl.create 256 in
  Cache.iter (fun (n, _f, s) _ -> Hashtbl.replace pts (n, s) ()) t.cache;
  Hashtbl.length pts

let clear_cache t =
  Cache.reset t.cache;
  Cache.reset t.key_stacks;
  Cache.reset t.footprints

let budget t = t.budget
let stats t = t.stats

(* ------------------------- cache persistence ------------------------ *)

(* Structural image of one cache entry: hash-cons ids are process-local,
   so stacks travel as symbol lists. The trailing list is the derivation
   footprint — the PAG nodes the PPTA run visited — which targeted
   invalidation intersects against the dirty set of an edit burst. *)
type entry_image =
  int * int list * int * int list * (int * int list * int) list * int list

let magic = "ptsto-dynsum-cache-v2"

let fingerprint pag =
  let c = Pag.edge_counts pag in
  ( Pag.node_count pag,
    c.Pag.n_new,
    c.Pag.n_assign,
    c.Pag.n_load,
    c.Pag.n_store,
    c.Pag.n_entry,
    c.Pag.n_exit,
    c.Pag.n_assign_global )

type snapshot = entry_image list

let snapshot t : snapshot =
  (* the cache key holds only the domain-local hash-cons id of the field
     stack; the parallel key_stacks table provides the structural stack.
     Keys absent from key_stacks — memoised hits against the shared base
     tier — are deliberately skipped: a snapshot carries only summaries
     this engine computed itself. Sorted so the marshalled bytes don't
     depend on insertion (and hence scheduling) order. *)
  let images = ref [] in
  Cache.iter
    (fun ((node, _fid, state) as key) summary ->
      match Cache.find_opt t.key_stacks key with
      | None -> ()
      | Some stack ->
        let tuples =
          List.map
            (fun (n, f, s) -> (n, Hstack.to_list f, Ppta.state_to_int s))
            summary.Ppta.tuples
        in
        let fp = Option.value ~default:[] (Cache.find_opt t.footprints key) in
        images :=
          ((node, Hstack.to_list stack, state, summary.Ppta.objs, tuples, fp) : entry_image)
          :: !images)
    t.cache;
  List.sort compare !images

let state_of_int = function 1 -> Ppta.S1 | _ -> Ppta.S2

(* Decode a structural image in the calling domain (re-interning every
   stack in this domain's hash-cons store) and merge it into the live
   cache, first-writer-wins per key. All-or-nothing: decodes into a
   staging list first so a malformed payload never half-mutates the
   cache. *)
let absorb_images t images =
  match
    List.map
      (fun ((node, syms, state, objs, tuples, fp) : entry_image) ->
        let stack = Hstack.of_list syms in
        let summary =
          {
            Ppta.objs;
            tuples =
              List.map (fun (tn, tf, ts) -> (tn, Hstack.of_list tf, state_of_int ts)) tuples;
          }
        in
        ((node, Hstack.id stack, state), stack, summary, fp))
      images
  with
  | exception _ -> Error "corrupt cache payload"
  | staged ->
    let n = ref 0 in
    List.iter
      (fun (key, stack, summary, fp) ->
        if not (Cache.mem t.cache key) then begin
          incr n;
          Cache.add t.cache key summary;
          Cache.add t.key_stacks key stack;
          Cache.add t.footprints key fp
        end)
      staged;
    Ok !n

let absorb t (s : snapshot) =
  match absorb_images t s with Ok n -> n | Error _ -> 0

let snapshot_length (s : snapshot) = List.length s

let snapshot_union (snaps : snapshot list) : snapshot =
  (* identical (node, stack, state) keys: last writer wins — summaries
     for the same key are equal sets anyway (PPTA is deterministic), so
     the choice only affects representation order. Sorted for a
     domain-count-independent result. *)
  let tbl = Hashtbl.create 256 in
  List.iter
    (List.iter (fun ((node, syms, state, _, _, _) as img : entry_image) ->
         Hashtbl.replace tbl (node, syms, state) img))
    snaps;
  Hashtbl.fold (fun _ img acc -> img :: acc) tbl [] |> List.sort compare

(* ---------------------------- base tier ----------------------------- *)

let base_create ?(capacity = 0) () : base =
  if capacity < 0 then invalid_arg "Dynsum.base_create: capacity must be >= 0";
  {
    b_tbl = Base_tbl.create 1024;
    b_cap = capacity;
    b_ring = Queue.create ();
    b_hits = Atomic.make 0;
    b_misses = Atomic.make 0;
    b_evictions = Atomic.make 0;
  }

(* Second-chance clock sweep: pop ring slots until one points at a live,
   unreferenced entry and evict it. Slots whose key has already left the
   table (invalidation, or a duplicate slot from re-insertion) are
   discarded for free; a referenced entry loses its bit and goes to the
   back of the ring. Terminates: every iteration removes a slot, clears a
   set bit, or evicts, and all three are finite. *)
let rec base_evict_one (b : base) =
  match Queue.take_opt b.b_ring with
  | None -> ()
  | Some key -> (
    match Base_tbl.find_opt b.b_tbl key with
    | None -> base_evict_one b
    | Some e ->
      if e.be_ref then begin
        e.be_ref <- false;
        Queue.push key b.b_ring;
        base_evict_one b
      end
      else begin
        Base_tbl.remove b.b_tbl key;
        Atomic.incr b.b_evictions
      end)

let base_add (b : base) (s : snapshot) =
  (* first writer wins, like [absorb_images]: summaries for the same key
     are equal sets (PPTA is deterministic), so keeping the incumbent
     only pins representation. Returns how many keys were new. Must only
     run while no worker is reading the base (between rounds/requests). *)
  let fresh = ref 0 in
  List.iter
    (fun ((node, syms, state, objs, tuples, fp) : entry_image) ->
      let key = (node, syms, state) in
      if not (Base_tbl.mem b.b_tbl key) then begin
        if b.b_cap > 0 then
          while Base_tbl.length b.b_tbl >= b.b_cap do
            base_evict_one b
          done;
        incr fresh;
        Base_tbl.add b.b_tbl key
          { be_objs = objs; be_tuples = tuples; be_fp = fp; be_ref = false; be_mat = None };
        Queue.push key b.b_ring
      end)
    s;
  !fresh

(* Drop the ring slots of keys no longer in the table once they dominate,
   so a long-lived daemon's ring stays proportional to the live store. *)
let base_compact_ring (b : base) =
  if Queue.length b.b_ring > (2 * Base_tbl.length b.b_tbl) + 16 then begin
    let live = Queue.create () in
    let seen = Hashtbl.create (Base_tbl.length b.b_tbl) in
    Queue.iter
      (fun key ->
        if Base_tbl.mem b.b_tbl key && not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          Queue.push key live
        end)
      b.b_ring;
    Queue.clear b.b_ring;
    Queue.transfer live b.b_ring
  end

let base_invalidate (b : base) dirty =
  (* Same footprint discipline as the per-engine [invalidate] below: an
     entry survives an edit burst iff its derivation never visited a
     dirtied node. Runs on the owning thread between requests, never
     concurrently with readers. *)
  let dirtyt = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.replace dirtyt d ()) dirty;
  let doomed = ref [] in
  Base_tbl.iter
    (fun key e ->
      let dead =
        match e.be_fp with
        | [] -> true (* a real PPTA footprint at least holds the root *)
        | fp -> List.exists (Hashtbl.mem dirtyt) fp
      in
      if dead then doomed := key :: !doomed)
    b.b_tbl;
  List.iter (Base_tbl.remove b.b_tbl) !doomed;
  base_compact_ring b;
  (List.length !doomed, Base_tbl.length b.b_tbl)

let base_length (b : base) = Base_tbl.length b.b_tbl
let base_capacity (b : base) = b.b_cap
let base_hits (b : base) = Atomic.get b.b_hits
let base_misses (b : base) = Atomic.get b.b_misses
let base_evictions (b : base) = Atomic.get b.b_evictions

let set_base t b = t.base <- Some b

let base_health t =
  match t.base with
  | None -> (0, 0, 0, 0)
  | Some b -> (base_hits b, base_misses b, base_evictions b, base_length b)

let save_cache t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Marshal.to_channel oc
        (magic, fingerprint t.pag, Pag.graph_hash t.pag, Pag.epoch t.pag, snapshot t)
        [])

let load_cache t path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match (Marshal.from_channel ic : string * 'a * int * int * entry_image list) with
        | exception _ -> Error "corrupt cache file"
        | file_magic, fp, ghash, _epoch, images ->
          if file_magic <> magic then Error "not a dynsum cache file"
          else if fp <> fingerprint t.pag then Error "cache was built for a different PAG"
          else if ghash <> Pag.graph_hash t.pag then
            (* counts can collide across different edge sets (e.g. one
               assign deleted, another inserted); the order-independent
               edge-multiset hash cannot, so a cache from a drifted build
               of the same program is refused here *)
            Error "cache was built for a different version of this PAG"
          else absorb_images t images)

(* Summary lookup with the paper's fast path: a node without local edges
   needs no PPTA — its only continuation is itself as a frontier tuple. *)
let summarise t u f s =
  if not (Pag.has_local_edges t.pag u) then begin
    Trace.emit t.sink (Trace.Counter { engine = name; name = "no_local_fastpath"; delta = 1 });
    { Ppta.objs = []; tuples = [ (u, f, s) ] }
  end
  else begin
    let key = (u, Hstack.id f, Ppta.state_to_int s) in
    match Cache.find_opt t.cache key with
    | Some summary ->
      Trace.emit t.sink (Trace.Summary_hit { engine = name; node = u });
      summary
    | None ->
      (* Overlay miss: probe the shared base tier (structural key, so no
         rebase needed) before paying for a PPTA run. A base hit is
         memoised in the local cache but {e not} in [key_stacks], so the
         next [snapshot] won't re-export a summary this engine merely
         borrowed. *)
      let from_base =
        match t.base with
        | None -> None
        | Some b -> (
          match Base_tbl.find_opt b.b_tbl (u, Hstack.to_list f, Ppta.state_to_int s) with
          | Some e ->
            e.be_ref <- true;
            Atomic.incr b.b_hits;
            Some e
          | None ->
            Atomic.incr b.b_misses;
            Trace.emit t.sink (Trace.Counter { engine = name; name = "base_misses"; delta = 1 });
            None)
      in
      (match from_base with
      | Some ({ be_objs = objs; be_tuples = tuples; be_fp = fp; _ } as e) ->
        Trace.emit t.sink (Trace.Summary_hit { engine = name; node = u });
        Trace.emit t.sink (Trace.Counter { engine = name; name = "base_hits"; delta = 1 });
        let did = (Domain.self () :> int) in
        let summary =
          match e.be_mat with
          | Some (d, s) when d = did -> s
          | _ ->
            let s =
              {
                Ppta.objs;
                tuples =
                  List.map (fun (tn, tf, ts) -> (tn, Hstack.of_list tf, state_of_int ts)) tuples;
              }
            in
            e.be_mat <- Some (did, s);
            s
        in
        Cache.add t.cache key summary;
        Cache.add t.footprints key fp;
        summary
      | None ->
        Trace.emit t.sink (Trace.Summary_miss { engine = name; node = u });
        (* record which nodes the derivation visits: the entry stays
           valid across an edit burst iff none of them got dirty *)
        let seen = Hashtbl.create 32 in
        let fp = ref [] in
        let trace v _ _ =
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.add seen v ();
            fp := v :: !fp
          end
        in
        let summary = Ppta.compute t.pag t.conf t.budget ~trace u f s in
        Cache.add t.cache key summary;
        Cache.add t.key_stacks key f;
        Cache.add t.footprints key (List.sort compare !fp);
        summary)
  end

(* ----------------------- targeted invalidation ---------------------- *)

(* Drop exactly the entries whose derivation footprint meets the dirty
   set. Sound because the local walk only ever reads adjacency at nodes
   it visits, and an edit burst dirties both endpoints of every changed
   edge — so an edge change that could alter a summary always lands on a
   footprint node. Entries with no recorded footprint (none today, but a
   future producer might skip tracing) are dropped conservatively. *)
let invalidate t dirty =
  let n = Pag.node_count t.pag in
  let dirtyb = Bytes.make (max 1 n) '\000' in
  List.iter (fun d -> if d >= 0 && d < n then Bytes.set dirtyb d '\001') dirty;
  let doomed = ref [] in
  Cache.iter
    (fun key _ ->
      let dead =
        match Cache.find_opt t.footprints key with
        | None | Some [] -> true (* a real PPTA footprint at least holds the root *)
        | Some fp -> List.exists (fun v -> Bytes.get dirtyb v = '\001') fp
      in
      if dead then doomed := key :: !doomed)
    t.cache;
  List.iter
    (fun key ->
      Cache.remove t.cache key;
      Cache.remove t.key_stacks key;
      Cache.remove t.footprints key)
    !doomed;
  (List.length !doomed, Cache.length t.cache)

let expand t u f s =
  let summary = summarise t u f s in
  { Kernel.lr_objs = summary.Ppta.objs;
    lr_match_objs = [];
    lr_frontier = summary.Ppta.tuples;
    lr_jumps = [] }

(* [satisfy] early exit: the worklist's accumulated set grows towards the
   answer from below, so the only sound early exit for an anti-monotone
   predicate is refutation — once the partial set falsifies the predicate,
   every superset (including the exact answer) does too. *)
let stop_of_satisfy satisfy =
  Option.map (fun pred -> fun acc -> not (pred acc)) satisfy

(* Per-query pruner counters -> trace counters (and thence stats). *)
let flush_pruner sink engine = function
  | None -> ()
  | Some pr ->
    let checked = Kernel.checked_count pr and pruned = Kernel.pruned_count pr in
    if checked > 0 then
      Trace.emit sink (Trace.Counter { engine; name = "prune_checks"; delta = checked });
    if pruned > 0 then
      Trace.emit sink (Trace.Counter { engine; name = "pruned_states"; delta = pruned })

let points_to_in t ?satisfy v c0 =
  Trace.emit t.sink (Trace.Query_start { engine = name; node = v });
  Budget.start_query t.budget;
  (* The pruner applies only to the inter-procedural worklist here — the
     expander computes/reuses PPTA summaries, which must stay prune-free
     so the cache is identical whichever way the flag is set. *)
  let prune = if t.conf.Conf.prune then Kernel.pruner t.pag ~root:v else None in
  let outcome =
    if t.conf.Conf.prune && Pag.oracle_row_empty t.pag v then begin
      (* definite-negative fast path: nothing flows to the root at all *)
      Trace.emit t.sink (Trace.Counter { engine = name; name = "oracle_empty_root"; delta = 1 });
      Query.Resolved Query.Target_set.empty
    end
    else
      try
        Query.Resolved
          (Kernel.solve ?stop:(stop_of_satisfy satisfy) ?prune t.pag t.budget (expand t) v c0)
      with Budget.Out_of_budget ->
        Trace.emit t.sink
          (Trace.Budget_exceeded { engine = name; node = v; steps = Budget.steps_this_query t.budget });
        Query.Exceeded
  in
  flush_pruner t.sink name prune;
  (match outcome with
  | Query.Resolved ts ->
    Trace.emit t.sink
      (Trace.Query_end
         {
           engine = name;
           node = v;
           resolved = true;
           targets = Query.Target_set.cardinal ts;
           steps = Budget.steps_this_query t.budget;
         })
  | Query.Exceeded ->
    Trace.emit t.sink
      (Trace.Query_end
         { engine = name; node = v; resolved = false; targets = 0;
           steps = Budget.steps_this_query t.budget }));
  outcome

let points_to t ?satisfy v = points_to_in t ?satisfy v Hstack.empty

(** DYNSUM — Algorithm 4 of the paper, this reproduction's core
    contribution.

    {!Kernel.solve} propagates query states [(u, f, s, c)] across the
    context-dependent {e global} edges according to the RRP machine of
    Figure 3(b), while all work along {e local} edges is delegated to the
    context-independent {!Ppta} and cached in a summary table keyed by
    [(u, f, s)]. Summaries therefore accumulate {e across} queries and are
    reused under arbitrary calling contexts without precision loss, which
    is what makes DYNSUM outperform REFINEPTS on query-heavy clients.

    The cache persists for the lifetime of the engine; clearing between
    batches (for ablations) is explicit via {!clear_cache}. As the paper's
    implementation note prescribes, nodes without local edges bypass the
    PPTA (and the cache) entirely. *)

module Cache_key : sig
  type t = int * int * int (** node, field-stack id, state *)

  val equal : t -> t -> bool
  val hash : t -> int
end

type t

val create : ?conf:Conf.t -> ?trace:Trace.sink -> Pag.t -> t

val points_to : t -> ?satisfy:(Query.Target_set.t -> bool) -> Pag.node -> Query.outcome
(** Demand query with the empty initial context.

    {b Precision/semantics of [satisfy]}: unlike REFINEPTS — whose passes
    over-approximate, so a satisfied pass proves the client — DYNSUM's
    worklist grows its answer from below. The only sound early exit is
    therefore in the {e refutation} direction: the query stops as soon as
    the accumulated partial set {e falsifies} the (anti-monotone)
    predicate, since every superset — in particular the exact answer —
    then falsifies it too. The client verdict is unchanged in all cases:
    a satisfied run completes and returns the exact set; a refuted run
    may return early with a partial set on which the predicate is already
    false. Callers that need the full points-to set must not pass
    [satisfy]. *)

val points_to_in :
  t -> ?satisfy:(Query.Target_set.t -> bool) -> Pag.node -> Pts_util.Hstack.t -> Query.outcome
(** Query under a given initial calling context; [satisfy] as in
    {!points_to}. *)

val summary_count : t -> int
(** Number of cached PPTA summaries (the size of [Cache] in Algorithm 4 —
    the quantity Figure 5 compares against STASUM). *)

val summary_points : t -> int
(** Distinct (node, direction) pairs covered by the cache — a coarser
    count, comparable to per-boundary-node summary units as in Yan et
    al.'s STASUM, reported alongside the raw cache size in Figure 5. *)

val clear_cache : t -> unit

val invalidate : t -> Pag.node list -> int * int
(** [invalidate t dirty] drops every cached summary whose derivation
    footprint (the PAG nodes its PPTA run visited) intersects the dirty
    set of an edit burst ({!Pag.commit}'s [c_dirty]); all other entries
    are provably unaffected and survive. Returns
    [(dropped, retained)]. *)

(** {2 Cache persistence}

    The summary cache is the analysis session's accumulated knowledge; an
    IDE wants it to survive restarts. Summaries are serialised
    structurally (field stacks as symbol lists — hash-cons ids are
    process-local) together with a fingerprint of the PAG (node and
    per-kind edge counts), and a load against a differently-shaped PAG is
    refused. *)

type snapshot
(** Structural (domain-portable) image of a summary cache: field stacks
    travel as symbol lists, never as hash-cons ids, so a snapshot taken
    in one domain can be absorbed in any other. *)

val snapshot : t -> snapshot
(** Image of the summaries {e this engine computed itself}: entries
    memoised from a shared {!base} tier are excluded, so per-round
    snapshots in the parallel scheduler count each summary's derivation
    exactly once. Sorted, so the marshalled bytes are independent of
    insertion (and hence scheduling) order. *)

val snapshot_length : snapshot -> int

val absorb : t -> snapshot -> int
(** Merge a snapshot into this engine's live cache, re-interning every
    stack in the calling domain's hash-cons store. Existing entries win
    over incoming ones (the summaries are equal anyway — PPTA is
    deterministic, so two caches never disagree on a key). Returns the
    number of entries added. *)

val snapshot_union : snapshot list -> snapshot
(** Union of several snapshots, last-writer-wins on identical
    [(node, stack, state)] keys; result is sorted so it does not depend
    on how the entries were distributed across the inputs. The parallel
    batch scheduler merges per-domain caches with this between rounds. *)

(** {2 Shared base tier}

    The parallel batch scheduler used to re-absorb the full merged cache
    into every worker each round — N domains × M summaries of re-interning,
    all counted again in [merged_summaries]. Instead, the merged summaries
    of earlier rounds now live in a {!base}: a structurally-keyed table
    built once on the main domain and shared {e by reference} across
    worker engines, structurally read-only after {!set_base} (the main
    domain only grows or evicts between rounds, after every worker has
    joined — the only per-entry mutables workers touch are the atomic
    hit/miss tallies and the clock bit, both race-tolerant). Lookups
    re-intern lazily on first use and memoise into the engine's local
    overlay cache; such borrowed entries never appear in the engine's own
    {!snapshot}.

    The serve daemon promotes the same table to a {e cross-request} tier:
    size-bounded with second-chance (clock) eviction, hit/miss/eviction
    counters, and footprint-keyed invalidation so an edit burst evicts
    exactly the dirtied summaries instead of flushing the store. *)

type base
(** Merged summary table, shareable across domains because its keys and
    payloads are structural (no hash-cons ids). *)

val base_create : ?capacity:int -> unit -> base
(** [capacity] bounds the number of resident entries; [0] (the default)
    means unbounded. @raise Invalid_argument on a negative capacity. *)

val base_add : base -> snapshot -> int
(** Merge a snapshot into the base, first-writer-wins per key; returns
    how many keys were new. At capacity, each insertion first evicts the
    next clock victim (an entry that has not been hit since its last
    second chance). Must only be called while no domain is reading the
    base (between parallel rounds / between serve requests). *)

val base_invalidate : base -> Pag.node list -> int * int
(** [base_invalidate b dirty] drops every entry whose derivation
    footprint meets the dirty set of an edit burst ({!Pag.commit}'s
    [c_dirty]), exactly like the per-engine {!invalidate}; all other
    entries provably still describe the edited graph and survive.
    Returns [(dropped, retained)]. Must not run concurrently with
    readers. *)

val base_length : base -> int

val base_capacity : base -> int
(** The configured bound; [0] = unbounded. *)

val base_hits : base -> int
(** Lifetime lookup hits against this base, across all attached engines
    and rounds. *)

val base_misses : base -> int
(** Lifetime lookups that fell through to a PPTA run (counted only when
    a base is attached). *)

val base_evictions : base -> int
(** Entries removed by the clock sweep (capacity pressure only —
    invalidation drops are reported by {!base_invalidate}). *)

val set_base : t -> base -> unit
(** Attach a shared base tier below this engine's cache. *)

val base_health : t -> int * int * int * int
(** [(hits, misses, evictions, size)] of the attached base tier, all
    zero when none is attached. Engines surface this through
    [Engine.cache_health] so [--metrics-json] can report cache health
    uniformly. *)

val new_summary_count : t -> int
(** Summaries this engine computed itself (excludes base-tier memos) —
    the per-round "new work" figure the scheduler reports. *)

val save_cache : t -> string -> unit
(** Write the cache to a file. @raise Sys_error on IO failure. *)

val load_cache : t -> string -> (int, string) result
(** Merge a saved cache into this engine; returns the number of entries
    loaded, or an error for a missing/corrupt file, a PAG-fingerprint
    mismatch, or a {!Pag.graph_hash} mismatch (the header records the
    exact edge-multiset hash and epoch at save time, so a cache from a
    drifted build of the same program — where node/edge {e counts} may
    still collide — is refused rather than replayed). Failures never
    mutate the live cache: the payload is decoded and validated in full
    before any entry is committed. *)

val budget : t -> Budget.t
val stats : t -> Pts_util.Stats.t
(** Counters: ["queries"], ["exceeded"], ["cache_hits"] (=
    ["summary_hits"]), ["cache_misses"] (= ["summary_misses"]),
    ["no_local_fastpath"]. *)

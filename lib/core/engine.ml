(* Conf and the RRP context helpers moved below the engines (Conf, Kernel)
   so this module can sit on top of them and own the registry; the type
   equations keep external code compiling against the old names. *)

type overflow = Conf.overflow = Abort | Widen

type conf = Conf.t = {
  budget_limit : int;
  max_field_repeat : int;
  max_field_depth : int;
  overflow : overflow;
  prune : bool;
}

let default_conf = Conf.default
let conf = Conf.make

let push_ctx = Kernel.push_ctx
let pop_ctx = Kernel.pop_ctx

type points_to_fn = ?satisfy:(Query.Target_set.t -> bool) -> Pag.node -> Query.outcome

type engine = {
  name : string;
  points_to : points_to_fn;
  budget : Budget.t;
  stats : Pts_util.Stats.t;
  summary_count : unit -> int;
  invalidate : Pag.node list -> int * int;
      (* drop cached summaries whose derivation touched a dirty node;
         (dropped, retained). Engines without a cross-query summary cache
         answer (0, 0) — their per-query state rebuilds itself (the
         field-based index is epoch-checked internally). *)
  cache_health : unit -> int * int * int * int;
      (* (base_hits, base_misses, base_evictions, base_size) of the shared
         summary tier this engine reads through, all zero when none is
         attached (only DYNSUM ever attaches one). *)
}

(* --------------------------- constructors -------------------------- *)

let sb ?(name = "sb") t =
  {
    name;
    points_to = (fun ?satisfy v -> Sb.points_to t ?satisfy v);
    budget = Sb.budget t;
    stats = Sb.stats t;
    summary_count = (fun () -> 0);
    invalidate = (fun _ -> (0, 0));
    cache_health = (fun () -> (0, 0, 0, 0));
  }

let dynsum t =
  {
    name = "dynsum";
    points_to = (fun ?satisfy v -> Dynsum.points_to t ?satisfy v);
    budget = Dynsum.budget t;
    stats = Dynsum.stats t;
    summary_count = (fun () -> Dynsum.summary_count t);
    invalidate = (fun dirty -> Dynsum.invalidate t dirty);
    cache_health = (fun () -> Dynsum.base_health t);
  }

let stasum t =
  {
    name = "stasum";
    points_to = (fun ?satisfy v -> Stasum.points_to t ?satisfy v);
    budget = Stasum.budget t;
    stats = Stasum.stats t;
    summary_count = (fun () -> Stasum.summary_count t);
    invalidate = (fun dirty -> Stasum.invalidate t dirty);
    cache_health = (fun () -> (0, 0, 0, 0));
  }

let supa t =
  {
    name = "supa";
    points_to = (fun ?satisfy v -> Supa.points_to t ?satisfy v);
    budget = Supa.budget t;
    stats = Supa.stats t;
    summary_count = (fun () -> 0);
    invalidate = (fun _ -> (0, 0));
    cache_health = (fun () -> (0, 0, 0, 0));
  }

(* ----------------------------- registry ---------------------------- *)

type builder = ?conf:conf -> ?trace:Trace.sink -> Pag.t -> engine

type spec = { spec_name : string; spec_doc : string; build : builder }

let registry =
  [
    {
      spec_name = "norefine";
      spec_doc = "Sridharan-Bodik, fully field-sensitive from the start, no refinement";
      build = (fun ?conf ?trace pag -> sb ~name:"norefine" (Sb.create ?conf ?trace Sb.No_refine pag));
    };
    {
      spec_name = "refinepts";
      spec_doc = "Sridharan-Bodik with iterative match-edge refinement";
      build = (fun ?conf ?trace pag -> sb ~name:"refinepts" (Sb.create ?conf ?trace Sb.Refine pag));
    };
    {
      spec_name = "dynsum";
      spec_doc = "on-demand dynamic summaries (Algorithm 4, the paper's contribution)";
      build = (fun ?conf ?trace pag -> dynsum (Dynsum.create ?conf ?trace pag));
    };
    {
      spec_name = "stasum";
      spec_doc = "static whole-program summarisation baseline (eager offline phase)";
      build = (fun ?conf ?trace pag -> stasum (Stasum.create ?conf ?trace pag));
    };
    {
      spec_name = "supa";
      spec_doc = "flow-sensitive strong updates via value-flow refinement (Sui-Xue SUPA)";
      build = (fun ?conf ?trace pag -> supa (Supa.create ?conf ?trace pag));
    };
  ]

let names () = List.map (fun s -> s.spec_name) registry

let find name = List.find_opt (fun s -> s.spec_name = name) registry

let create ?conf ?trace name pag =
  match find name with
  | Some s -> s.build ?conf ?trace pag
  | None ->
    invalid_arg
      (Printf.sprintf "unknown engine %S (known: %s)" name (String.concat ", " (names ())))

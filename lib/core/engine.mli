(** The uniform engine interface and the engine registry.

    Every demand analysis in the system is exposed as an {!type:engine}
    record, and every consumer — [bin/ptsto], the client pipeline, the
    bench harness — selects engines by name from the one {!registry}
    table instead of pattern-matching constructors.

    For compatibility this module also re-exports the configuration
    record (now {!Conf.t}, shared by everything below the engines) and the
    RRP context helpers (now in {!Kernel}): the paper's Figure 3(b)
    recursive state machine, including the recursion-collapsing rule of
    §5.1 (entry/exit edges of a call site inside a call-graph cycle are
    traversed context-insensitively) and the realizability rule that
    allows an empty stack to pop (partially balanced paths). *)

type overflow = Conf.overflow =
  | Abort  (** overflow fails the query conservatively (paper behaviour) *)
  | Widen  (** k-limit the access path: sound over-approximation *)

type conf = Conf.t = {
  budget_limit : int; (** max PAG edge traversals per query (paper: 75,000) *)
  max_field_repeat : int;
      (** max occurrences of one field in a field stack; a push beyond it
          is cut — the stack-world analogue of Algorithm 1's visited-set
          cycle cut around recursive heap structures (see {!Fstack}) *)
  max_field_depth : int; (** hard stack cap, a backstop (see {!Fstack}) *)
  overflow : overflow;
  prune : bool;
      (** consult the PAG's Andersen oracle to skip provably-fruitless
          traversal states; answers are unchanged (see {!Kernel.pruner}) *)
}

val default_conf : conf
(** [{ budget_limit = 75_000; max_field_repeat = 2; max_field_depth = 64;
       overflow = Widen; prune = false }]. *)

val conf :
  ?budget_limit:int -> ?max_field_repeat:int -> ?max_field_depth:int -> ?overflow:overflow ->
  ?prune:bool -> unit -> conf

(** {2 Context stacks (call-site ids)} *)

val push_ctx : Pag.t -> Pts_util.Hstack.t -> int -> Pts_util.Hstack.t
(** Enter a method through call site [i] (no-op for recursive sites). *)

val pop_ctx : Pag.t -> Pts_util.Hstack.t -> int -> Pts_util.Hstack.t option
(** Leave a method through call site [i]: [None] when the path is
    unrealizable (stack top differs from [i]); [Some] of the popped stack
    when the top matches, the stack is empty, or the site is recursive. *)

(** {2 The common engine interface} *)

type points_to_fn = ?satisfy:(Query.Target_set.t -> bool) -> Pag.node -> Query.outcome
(** [satisfy] is the client's early-termination predicate (anti-monotone).
    REFINEPTS stops refining as soon as the — possibly still
    over-approximate — answer satisfies it; DYNSUM and STASUM stop their
    worklist as soon as the — still under-approximate — answer {e
    refutes} it (see {!Dynsum.points_to} for why that is the sound
    direction). Either way client verdicts are engine-independent. *)

type engine = {
  name : string;
  points_to : points_to_fn;
  budget : Budget.t;
  stats : Pts_util.Stats.t;
  summary_count : unit -> int; (** cached summaries (0 for non-summary engines) *)
  invalidate : Pag.node list -> int * int;
      (** After a {!Pag.apply_edits} burst, drop cached summaries whose
          derivation footprint intersects the commit's dirty nodes;
          returns [(dropped, retained)]. [(0, 0)] for engines without a
          cross-query cache — their graph-derived state (the field-based
          index) re-solves itself on the next query via the PAG epoch. *)
  cache_health : unit -> int * int * int * int;
      (** [(base_hits, base_misses, base_evictions, base_size)] of the
          shared summary tier this engine reads through
          ({!Dynsum.base_health}); all zero for engines without one, so
          [--metrics-json] can report cache health uniformly. *)
}

(** {2 Wrapping a concrete engine} *)

val sb : ?name:string -> Sb.t -> engine
val dynsum : Dynsum.t -> engine
val stasum : Stasum.t -> engine
val supa : Supa.t -> engine

(** {2 The registry} *)

type builder = ?conf:conf -> ?trace:Trace.sink -> Pag.t -> engine

type spec = { spec_name : string; spec_doc : string; build : builder }

val registry : spec list
(** [norefine], [refinepts], [dynsum], [stasum] in the paper's
    presentation order — which the pipeline and benches rely on —
    followed by [supa], the flow-sensitive strong-update engine. *)

val names : unit -> string list
val find : string -> spec option

val create : ?conf:conf -> ?trace:Trace.sink -> string -> Pag.t -> engine
(** Build an engine by registry name.
    @raise Invalid_argument on an unknown name. *)

module Bitset = Pts_util.Bitset
module Digraph = Pts_util.Digraph

type t = {
  pag : Pag.t;
  mutable pts : Bitset.t array; (* node -> sites; valid once solved *)
  mutable reach : Bitset.t array; (* SCC component -> reachable nodes *)
  mutable comp : int array; (* node -> component *)
  mutable solved : bool;
  mutable epoch_seen : int; (* PAG epoch the index was solved at *)
  field_pts : (int, int list) Hashtbl.t;
  field_flows : (int, int list) Hashtbl.t;
}

let create pag =
  {
    pag;
    pts = [||];
    reach = [||];
    comp = [||];
    solved = false;
    epoch_seen = Pag.epoch pag;
    field_pts = Hashtbl.create 16;
    field_flows = Hashtbl.create 16;
  }

(* The whole index derives from the edge set; any edit burst since the
   last solve invalidates it wholesale (it is cheap relative to the
   demand traversals it serves, so no finer tracking here). *)
let refresh t =
  if t.solved && Pag.epoch t.pag <> t.epoch_seen then begin
    t.solved <- false;
    Hashtbl.reset t.field_pts;
    Hashtbl.reset t.field_flows
  end

(* Field-based successors: plain copies, calls/returns without context,
   and store(f) jumping to every load of f. *)
let successors pag load_dsts n =
  let stores =
    List.concat_map (fun (f, _base) -> load_dsts f) (Pag.store_out pag n)
  in
  Pag.assign_out pag n
  @ Pag.global_out pag n
  @ List.map snd (Pag.entry_out pag n)
  @ List.map snd (Pag.exit_out pag n)
  @ stores

let solve t =
  refresh t;
  if not t.solved then begin
    t.solved <- true;
    t.epoch_seen <- Pag.epoch t.pag;
    let pag = t.pag in
    let n = Pag.node_count pag in
    let load_dsts_cache = Hashtbl.create 16 in
    let load_dsts f =
      match Hashtbl.find_opt load_dsts_cache f with
      | Some l -> l
      | None ->
        let l = List.map snd (Pag.loads_of_field pag f) in
        Hashtbl.add load_dsts_cache f l;
        l
    in
    (* build the field-based flow graph once *)
    let g = Digraph.create ~capacity:n () in
    if n > 0 then Digraph.ensure_node g (n - 1);
    for v = 0 to n - 1 do
      List.iter (fun w -> Digraph.add_edge g v w) (successors pag load_dsts v)
    done;
    (* forward reachability per SCC component, in reverse topological
       order (Digraph.scc numbers components so successors come first) *)
    let comp, n_comps = Digraph.scc g in
    let reach = Array.init n_comps (fun _ -> Bitset.create ~capacity:n ()) in
    let comp_succs = Array.make n_comps [] in
    Digraph.iter_edges g (fun u v ->
        if comp.(u) <> comp.(v) then comp_succs.(comp.(u)) <- comp.(v) :: comp_succs.(comp.(u)));
    for v = 0 to n - 1 do
      ignore (Bitset.add reach.(comp.(v)) v)
    done;
    for c = 0 to n_comps - 1 do
      List.iter (fun c' -> ignore (Bitset.union_into ~dst:reach.(c) reach.(c'))) comp_succs.(c)
    done;
    t.comp <- comp;
    t.reach <- reach;
    (* field-based points-to: each allocation site reaches everything its
       destination variable reaches *)
    let pts = Array.init (max n 1) (fun _ -> Bitset.create ~capacity:16 ()) in
    for node = 0 to n - 1 do
      if Pag.is_obj pag node then begin
        let site = Pag.obj_site pag node in
        List.iter
          (fun dst ->
            ignore (Bitset.add pts.(dst) site);
            Bitset.iter t.reach.(comp.(dst)) (fun w -> ignore (Bitset.add pts.(w) site)))
          (Pag.new_out pag node)
      end
    done;
    t.pts <- pts
  end

let pts_of_field t f =
  refresh t;
  match Hashtbl.find_opt t.field_pts f with
  | Some sites -> sites
  | None ->
    solve t;
    let acc = Bitset.create ~capacity:64 () in
    List.iter
      (fun (_base, src) -> ignore (Bitset.union_into ~dst:acc t.pts.(src)))
      (Pag.stores_of_field t.pag f);
    let sites = Bitset.to_list acc in
    Hashtbl.add t.field_pts f sites;
    sites

let flows_of_field t f =
  refresh t;
  match Hashtbl.find_opt t.field_flows f with
  | Some nodes -> nodes
  | None ->
    solve t;
    let acc = Bitset.create ~capacity:64 () in
    List.iter
      (fun (_base, dst) ->
        ignore (Bitset.add acc dst);
        ignore (Bitset.union_into ~dst:acc t.reach.(t.comp.(dst))))
      (Pag.loads_of_field t.pag f);
    let nodes = Bitset.to_list acc in
    Hashtbl.add t.field_flows f nodes;
    nodes

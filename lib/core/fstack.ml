module Hstack = Pts_util.Hstack

let unknown_tail = -1

let load_sym f = 2 * f
let store_sym f = (2 * f) + 1
let sym_field sym = sym / 2
let sym_is_load sym = sym land 1 = 0

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* the marker only ever sits at the bottom, so a linear scan suffices *)
let is_widened f = List.exists (fun x -> x = unknown_tail) (Hstack.to_list f)

let occurrences g f = List.length (List.filter (fun x -> x = g) (Hstack.to_list f))

let push conf f g =
  if occurrences g f >= conf.Conf.max_field_repeat then None
  else if Hstack.depth f < conf.Conf.max_field_depth then Some (Hstack.push f g)
  else
    match conf.Conf.overflow with
    | Conf.Abort -> raise Budget.Out_of_budget
    | Conf.Widen ->
      let real = List.filter (fun x -> x <> unknown_tail) (Hstack.to_list f) in
      let kept = take (conf.Conf.max_field_depth - 2) real in
      Some (Hstack.of_list ((g :: kept) @ [ unknown_tail ]))

let pop_match f g =
  match Hstack.peek f with
  | Some top when top = g -> Some (Hstack.pop_exn f)
  | Some top when top = unknown_tail -> Some f
  | Some _ | None -> None

let may_be_empty f =
  match Hstack.peek f with
  | None -> true
  | Some top -> top = unknown_tail && Hstack.depth f = 1

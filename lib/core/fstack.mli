(** Field stacks with cycle cutting.

    DYNSUM's explicit field stack is the pushdown store of the LFT
    language; around recursive heap structures (a linked list's
    [n.next = head] / [cur = cur.next]) exact exploration grows it without
    bound. The paper leaves this to the query budget, which answers such
    queries [Exceeded]; Algorithm 1's nested formulation instead cuts the
    cycle with its per-(node, context) visited set and still answers.

    {!push} gives the stack world the matching cut: a field may occur at
    most [max_field_repeat] times in a stack — a push beyond that is the
    unfolding of a heap cycle and returns [None] (the branch is dropped,
    exactly like a visited-set cut; nesting a class inside itself deeper
    than the limit is sacrificed, as it is by Algorithm 1's cut). This
    bounds stacks by [max_field_repeat * #fields], so exploration is
    finite.

    The depth cap is a backstop: under [`Widen] the stack bottom becomes
    an "unknown tail" marker that matches any pop and admits "may be
    empty" (a sound over-approximation); under [`Abort] the query fails
    conservatively with {!Budget.Out_of_budget}. *)

val unknown_tail : int
(** The widening marker (an impossible symbol). *)

(** {2 Stack symbols}

    A stack entry is a {e field-edge label}, not a bare field: a field
    pushed by a backward load ([load(f)-bar], S1) may only be matched by a
    backward store ([store(f)-bar]), while a field pushed by a forward
    store ([store(f)], S2's alias detour) may only be matched by a forward
    load ([load(f)]). Conflating the two lets a pending load-bar be
    "answered" by reading the same field somewhere unrelated — a parse
    outside the LFT grammar. *)

val load_sym : int -> int
(** Symbol for field [f] pushed by [load(f)-bar] (Algorithm 3, S1). *)

val store_sym : int -> int
(** Symbol for field [f] pushed by [store(f)] (Algorithm 3, S2). *)

val sym_field : int -> int
(** The field id of a symbol (for printing). *)

val sym_is_load : int -> bool

val push : Conf.t -> Pts_util.Hstack.t -> int -> Pts_util.Hstack.t option
(** Push a field. [None] = repeat-limit cut: drop this branch.
    @raise Budget.Out_of_budget on depth overflow under [`Abort]. *)

val pop_match : Pts_util.Hstack.t -> int -> Pts_util.Hstack.t option
(** Match the top of the stack against field [g] (the [f.Peek() = g] of
    Algorithm 3): a real match pops; the unknown-tail marker matches and
    persists; otherwise [None]. *)

val may_be_empty : Pts_util.Hstack.t -> bool
(** True for the empty stack and for a bare unknown tail. *)

val is_widened : Pts_util.Hstack.t -> bool

(* Incremental edit orchestration: one place that applies a PAG edit
   burst and fans the resulting dirty set out to every registered
   engine's summary cache. Engines registered here keep their retained
   summaries across bursts — that retention is the whole point of
   incrementality (re-querying after a small edit should not pay for the
   summaries the edit provably did not touch). *)

type stats = {
  i_epoch : int;
  i_dirty : int;
  i_inserted : int;
  i_deleted : int;
  i_oracle_invalidated : int;
  i_dropped : int; (* summaries invalidated across all engines *)
  i_retained : int; (* summaries kept across all engines *)
}

type t = {
  pag : Pag.t;
  mutable engines : Engine.engine list;
  mutable bases : Dynsum.base list;
}

let create pag = { pag; engines = []; bases = [] }

let register t e = t.engines <- e :: t.engines

let register_base t b = t.bases <- b :: t.bases

let apply t edits =
  let c = Pag.apply_edits t.pag edits in
  let dropped = ref 0 and retained = ref 0 in
  List.iter
    (fun e ->
      let d, r = e.Engine.invalidate c.Pag.c_dirty in
      dropped := !dropped + d;
      retained := !retained + r)
    t.engines;
  List.iter
    (fun b ->
      let d, r = Dynsum.base_invalidate b c.Pag.c_dirty in
      dropped := !dropped + d;
      retained := !retained + r)
    t.bases;
  {
    i_epoch = c.Pag.c_epoch;
    i_dirty = List.length c.Pag.c_dirty;
    i_inserted = c.Pag.c_inserted;
    i_deleted = c.Pag.c_deleted;
    i_oracle_invalidated = c.Pag.c_oracle_invalidated;
    i_dropped = !dropped;
    i_retained = !retained;
  }

(** Incremental edit orchestration.

    Applies a {!Pag.apply_edits} burst and fans the commit's dirty node
    set out to every registered engine's {!Engine.engine.invalidate},
    so one call keeps a whole set of live engines consistent with the
    edited graph while retaining every summary the burst provably did
    not touch. Stateless beyond the engine list — safe to create one per
    editing session. *)

type stats = {
  i_epoch : int;  (** PAG epoch after the burst *)
  i_dirty : int;  (** dirty nodes (endpoints of changed edges) *)
  i_inserted : int;
  i_deleted : int;
  i_oracle_invalidated : int;  (** Andersen rows flipped to conservative *)
  i_dropped : int;  (** summaries invalidated, summed over engines *)
  i_retained : int;  (** summaries kept, summed over engines *)
}

type t

val create : Pag.t -> t

val register : t -> Engine.engine -> unit
(** Engines registered before {!apply} have their caches invalidated in
    the same call that edits the graph; an engine that queries an edited
    PAG without having been registered (or freshly built) may serve
    stale summaries. *)

val register_base : t -> Dynsum.base -> unit
(** Shared summary tiers need the same treatment as engine caches: a
    registered {!Dynsum.base} gets {!Dynsum.base_invalidate} on every
    burst, keeping its dropped/retained totals in {!stats}. This is how
    the serve daemon's cross-request tier stays epoch-consistent — the
    burst evicts exactly the footprint-dirty entries, never the whole
    store. *)

val apply : t -> Pag.edit list -> stats

module Hstack = Pts_util.Hstack

type state = S1 | S2

let state_to_int = function S1 -> 1 | S2 -> 2

let pp_state fmt s = Format.pp_print_string fmt (match s with S1 -> "S1" | S2 -> "S2")

(* ------------------------ RRP context machine ----------------------- *)

let push_ctx pag c i = if Pag.is_recursive_site pag i then c else Hstack.push c i

let pop_ctx pag c i =
  if Pag.is_recursive_site pag i then Some c
  else
    match Hstack.peek c with
    | None -> Some c (* partially balanced: fall off into an unknown caller *)
    | Some top -> if top = i then Some (Hstack.pop_exn c) else None

(* ------------------------- local-edge walker ------------------------ *)

type policy = {
  exact : bool;
  refined : dst:Pag.node -> fld:int -> base:Pag.node -> bool;
  note_match : dst:Pag.node -> fld:int -> base:Pag.node -> unit;
  match_pts : int -> int list;
  match_flows : int -> Pag.node list;
}

let exact_policy =
  {
    exact = true;
    refined = (fun ~dst:_ ~fld:_ ~base:_ -> true);
    note_match = (fun ~dst:_ ~fld:_ ~base:_ -> ());
    match_pts = (fun _ -> []);
    match_flows = (fun _ -> []);
  }

type local_result = {
  lr_objs : int list;
  lr_match_objs : int list;
  lr_frontier : (Pag.node * Hstack.t * state) list;
  lr_jumps : (Pag.node * Hstack.t * state) list;
}

let frontier_only u f s = { lr_objs = []; lr_match_objs = []; lr_frontier = [ (u, f, s) ]; lr_jumps = [] }

(* (node, field-stack id, state) — the identity of a local query state,
   also the key every summary table in the system uses. *)
module Key = struct
  type t = int * int * int

  let equal (a : t) (b : t) = a = b
  let hash ((n, f, s) : t) = (((n * 31) + f) * 31) + s
end

module Key_tbl = Hashtbl.Make (Key)
module Visited = Key_tbl

(* ------------------------- Andersen pruning ------------------------- *)

(* A per-query view of the PAG's Andersen oracle. Soundness of the two
   cuts (see kernel.mli); both are skipped for widened field stacks,
   where the traversal itself over-approximates and pruning could shrink
   the (equally over-approximate) answer the unpruned engine gives. *)
type pruner = {
  pr_pag : Pag.t;
  pr_root : Pag.node;
  mutable pr_pruned : int;
  mutable pr_checked : int;
}

let pruner pag ~root =
  if Pag.has_oracle pag then Some { pr_pag = pag; pr_root = root; pr_pruned = 0; pr_checked = 0 }
  else None

let pruned_count pr = pr.pr_pruned
let checked_count pr = pr.pr_checked

let should_prune pr u f s =
  pr.pr_checked <- pr.pr_checked + 1;
  if Fstack.is_widened f then false
  else if Pag.oracle_row_empty pr.pr_pag u then begin
    pr.pr_pruned <- pr.pr_pruned + 1;
    true
  end
  else
    match s with
    | S1 when Hstack.is_empty f ->
      if Pag.oracle_disjoint pr.pr_pag u pr.pr_root then begin
        pr.pr_pruned <- pr.pr_pruned + 1;
        true
      end
      else false
    | S1 | S2 -> false

(* Match-edge cuts: the one place the demand side is strictly coarser
   than Andersen. A field-based match edge for [g] assumes every site
   ever stored to [g] may surface at the load destination; the oracle
   knows which of them actually reach it. Filtering here only changes
   unconverged REFINEPTS passes — the pass a query returns crosses no
   match edges, so the final answer is untouched. *)

let prune_match_site pr ~dst site =
  pr.pr_checked <- pr.pr_checked + 1;
  if Pag.oracle_mem pr.pr_pag dst site then false
  else begin
    pr.pr_pruned <- pr.pr_pruned + 1;
    true
  end

let prune_match_flow pr ~src x =
  pr.pr_checked <- pr.pr_checked + 1;
  if Pag.oracle_disjoint pr.pr_pag src x then begin
    pr.pr_pruned <- pr.pr_pruned + 1;
    true
  end
  else false

(* Harvested allocation sites are small dense ints: an int-keyed table
   avoids the polymorphic hash on every dedup probe. *)
module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash x = x land max_int
end)

let local_walk ?observe ?prune ~policy pag conf budget v0 f0 s0 =
  (* all traversal below goes through Pag.View: the frozen CSR slabs plus
     any post-freeze edit overlay, still allocation-free on the hot path *)
  let visited = Visited.create 64 in
  let objs = ref [] in
  let obj_seen = Int_tbl.create 16 in
  let match_objs = ref [] in
  let match_seen = Int_tbl.create 16 in
  let frontier = ref [] in
  let jumps = ref [] in
  let add_obj site =
    if not (Int_tbl.mem obj_seen site) then begin
      Int_tbl.add obj_seen site ();
      objs := site :: !objs
    end
  in
  let add_match_obj site =
    if not (Int_tbl.mem match_seen site) then begin
      Int_tbl.add match_seen site ();
      match_objs := site :: !match_objs
    end
  in
  let add_frontier node f s = frontier := (node, f, s) :: !frontier in
  let add_jump node f s = jumps := (node, f, s) :: !jumps in
  let rec go v f s =
    let key = (v, Hstack.id f, state_to_int s) in
    if not (Visited.mem visited key) then begin
      Visited.add visited key ();
      (* prune before charging budget: a pruned state costs no steps *)
      let pruned = match prune with Some pr -> should_prune pr v f s | None -> false in
      if not pruned then begin
        Budget.step budget;
        (match observe with Some obs -> obs v f s | None -> ());
        match s with
      | S1 ->
        (* v <-new- o: harvest the object, or flip direction to chase an
           alias of v when fields are still pending (a widened stack may
           be either, so it does both) *)
        if Pag.View.has_new_in pag v then begin
          if Fstack.may_be_empty f then
            Pag.View.iter_new_in pag v (fun o -> add_obj (Pag.obj_site pag o));
          if not (Hstack.is_empty f) then go v f S2
        end;
        Pag.View.iter_assign_in pag v (fun u -> go u f S1);
        (* v = u.g backwards: a pending load(g)-bar, awaiting store(g)-bar *)
        Pag.View.iter_load_in pag v (fun g u ->
            if policy.exact || policy.refined ~dst:v ~fld:g ~base:u then begin
              match Fstack.push conf f (Fstack.load_sym g) with
              | Some f' -> go u f' S1
              | None -> ()
            end
            else begin
              (* field-based match edge: the load observes anything stored
                 to g anywhere under the precomputed field-based
                 approximation, with context and field stack cleared *)
              policy.note_match ~dst:v ~fld:g ~base:u;
              let sites = policy.match_pts g in
              let sites =
                match prune with
                | Some pr -> List.filter (fun site -> not (prune_match_site pr ~dst:v site)) sites
                | None -> sites
              in
              if Fstack.may_be_empty f then List.iter add_match_obj sites;
              if not (Hstack.is_empty f) then
                List.iter
                  (fun site ->
                    let o = Pag.obj_node pag site in
                    Pag.View.iter_new_out pag o (fun d -> add_jump d f S2))
                  sites
            end);
        if Pag.has_global_in pag v then add_frontier v f S1
      | S2 ->
        (* x = v.g forwards: the chased value surfaces out of field g —
           matches a pending store(g) push *)
        Pag.View.iter_load_out pag v (fun g x ->
            if policy.exact || policy.refined ~dst:x ~fld:g ~base:v then
              match Fstack.pop_match f (Fstack.store_sym g) with
              | Some f' -> go x f' S2
              | None -> ());
        Pag.View.iter_assign_out pag v (fun x -> go x f S2);
        (* b.g = v forwards: the chased value sinks into b.g — push
           store(g) and find aliases of the base b *)
        Pag.View.iter_store_out pag v (fun g b ->
            let push_store () =
              match Fstack.push conf f (Fstack.store_sym g) with
              | Some f' -> go b f' S1
              | None -> ()
            in
            if policy.exact then push_store ()
            else begin
              let loads = Pag.loads_of_field pag g in
              let refined_exists = ref false in
              let unrefined_exists = ref false in
              List.iter
                (fun (lb, ldst) ->
                  if policy.refined ~dst:ldst ~fld:g ~base:lb then refined_exists := true
                  else begin
                    unrefined_exists := true;
                    policy.note_match ~dst:ldst ~fld:g ~base:lb
                  end)
                loads;
              (* unrefined loads of g: the value escapes into the
                 field-based approximation and may surface at any of them *)
              if !unrefined_exists then
                List.iter
                  (fun x ->
                    let cut =
                      match prune with Some pr -> prune_match_flow pr ~src:v x | None -> false
                    in
                    if not cut then add_jump x f S2)
                  (policy.match_flows g);
              (* refined loads of g: worth the exact alias detour *)
              if !refined_exists then push_store ()
            end);
        (* v.g = src backwards: store(g)-bar closing a pending load(g)-bar *)
        Pag.View.iter_store_in pag v (fun g src ->
            match Fstack.pop_match f (Fstack.load_sym g) with
            | Some f' -> go src f' S1
            | None -> ());
        if Pag.has_global_out pag v then add_frontier v f S2
      end
    end
  in
  go v0 f0 s0;
  { lr_objs = !objs; lr_match_objs = !match_objs; lr_frontier = !frontier; lr_jumps = !jumps }

(* ------------------------ Algorithm 4 worklist ---------------------- *)

type expander = Pag.node -> Hstack.t -> state -> local_result

module Seen = Hashtbl.Make (struct
  type t = int * int * int * int (* node, fstack id, state, ctx id *)

  let equal (a : t) (b : t) = a = b
  let hash ((n, f, s, c) : t) = (((((n * 31) + f) * 31) + s) * 31) + c
end)

let solve ?stop ?prune pag budget (expand : expander) v c0 =
  let results = ref Query.Target_set.empty in
  let seen = Seen.create 256 in
  let work = Queue.create () in
  let propagate u f s c =
    let key = (u, Hstack.id f, state_to_int s, Hstack.id c) in
    if not (Seen.mem seen key) then begin
      Seen.add seen key ();
      let pruned = match prune with Some pr -> should_prune pr u f s | None -> false in
      if not pruned then Queue.add (u, f, s, c) work
    end
  in
  let stop_now () = match stop with Some pred -> pred !results | None -> false in
  propagate v Hstack.empty S1 c0;
  let finished = ref (Option.is_some stop && stop_now ()) in
  while (not (Queue.is_empty work)) && not !finished do
    let u, f, s, c = Queue.pop work in
    Budget.step budget;
    let r = expand u f s in
    let before = !results in
    List.iter
      (fun site -> results := Query.Target_set.add { Query.Target.site; hctx = c } !results)
      r.lr_objs;
    (* match-edge harvests are field-based: no heap context *)
    List.iter
      (fun site ->
        results := Query.Target_set.add { Query.Target.site; hctx = Hstack.empty } !results)
      r.lr_match_objs;
    if Option.is_some stop && !results != before && stop_now () then finished := true
    else begin
      List.iter
        (fun (x, f1, s1) ->
          match s1 with
          | S1 ->
            (* traversing backwards: exit descends into a callee (push),
               entry returns to a caller (pop) *)
            Pag.View.iter_exit_in pag x (fun i r ->
                Budget.step budget;
                propagate r f1 S1 (push_ctx pag c i));
            Pag.View.iter_entry_in pag x (fun i a ->
                Budget.step budget;
                match pop_ctx pag c i with
                | Some c' -> propagate a f1 S1 c'
                | None -> ());
            Pag.View.iter_global_in pag x (fun u ->
                Budget.step budget;
                propagate u f1 S1 Hstack.empty)
          | S2 ->
            (* traversing forwards: entry enters a callee (push), exit
               returns to a caller (pop) *)
            Pag.View.iter_exit_out pag x (fun i d ->
                Budget.step budget;
                match pop_ctx pag c i with
                | Some c' -> propagate d f1 S2 c'
                | None -> ());
            Pag.View.iter_entry_out pag x (fun i fo ->
                Budget.step budget;
                propagate fo f1 S2 (push_ctx pag c i));
            Pag.View.iter_global_out pag x (fun u ->
                Budget.step budget;
                propagate u f1 S2 Hstack.empty))
        r.lr_frontier;
      (* match-edge jumps clear the calling context *)
      List.iter
        (fun (x, f1, s1) ->
          Budget.step budget;
          propagate x f1 s1 Hstack.empty)
        r.lr_jumps
    end
  done;
  !results

(** The shared CFL-traversal kernel all four demand engines run on.

    The paper's analyses — NOREFINE, REFINEPTS, DYNSUM, STASUM — are all
    instances of one RRP/CFL-reachability machine; they differ only in how
    they treat {e local} edges (exact field stacks vs field-based match
    edges vs cached summaries). The kernel owns everything they share:

    - the RRP call/return context machine of Figure 3(b) ({!push_ctx},
      {!pop_ctx}), including the §5.1 recursion-collapsing rule and the
      partially-balanced empty-stack pop;
    - the field-sensitive {e local-edge walker} (Algorithm 3's traversal
      skeleton), parameterised by a {!type:policy} deciding per load edge
      whether to track fields exactly or jump through the field-based
      match approximation;
    - the {e global-edge worklist} of Algorithm 4 ({!solve}),
      parameterised by an {!type:expander} — the engine's local-edge
      strategy (a fresh walk, a summary cache, a static table…);
    - budget charging and the visited/seen dedup sets for both.

    Engines become thin strategy wrappers, and future sharding/batching/
    parallelisation lands here once instead of four times. *)

type state = S1 | S2
(** RSM direction: [S1] traverses a flowsTo-path backwards, [S2] forwards
    (the alias detour). Re-exported as {!Ppta.state}. *)

val state_to_int : state -> int
val pp_state : Format.formatter -> state -> unit

(** The identity of a local query state — (node, field-stack id,
    [state_to_int]) — and the key of every summary/memo table. *)
module Key : sig
  type t = int * int * int

  val equal : t -> t -> bool
  val hash : t -> int
end

module Key_tbl : Hashtbl.S with type key = Key.t

(** {2 Andersen-guided pruning}

    A per-query view of the PAG's oracle (the whole-program Andersen
    solution installed by {!Solver.run} via {!Pag.set_oracle}). Two cuts,
    both checked {e before} budget is charged so pruning reduces step
    counts:

    - {e empty row}: no allocation flows to the node under the
      over-approximation, so no flowsTo(-bar) path through it can harvest
      anything — valid in both [S1] and [S2];
    - {e root disjointness}: at an [S1] state with an {e empty} field
      stack, any object harvested downstream flows to the current node
      {e and} (being an answer) to the query root; disjoint oracle rows
      refute that conjunction.

    On a PAG built by Andersen itself these per-state cuts almost never
    fire for exact traversals — every reachable state sits on real,
    saturated edges, so the oracle cannot refute it (the demand side is
    more precise only in the context/field-stack dimensions, invisible
    to a flow-insensitive oracle). The cuts with measured bite act on
    the one construct {e coarser} than Andersen, the field-based match
    edges of an unconverged REFINEPTS pass:

    - {e match-site filter} ([S1], unrefined load): of [match_pts g] —
      every site ever stored to [g] anywhere — keep only sites the
      oracle admits at the load destination;
    - {e match-flow filter} ([S2], unrefined store): drop [match_flows
      g] jump targets whose rows are disjoint from the traced value's.

    Both only alter unconverged refinement passes: the pass a query
    returns crosses no unrefined match edge, so final answers are
    unchanged.

    The per-state cuts are suppressed for widened field stacks: there the
    traversal itself over-approximates, and pruning could shrink the
    (equally widened) answer the unpruned engine gives, breaking
    prune-on/off equality.

    Pruning is per-query state and must never run inside summary
    computation ({!Ppta.compute} takes no pruner): DYNSUM/STASUM
    summaries are query-independent and shared, so a query-specific cut
    would poison the cache for later queries. Engines thread the pruner
    only through {!solve} and their own per-query local walks. *)

type pruner

val pruner : Pag.t -> root:Pag.node -> pruner option
(** [None] when the PAG has no oracle — pruning silently disabled. *)

val pruned_count : pruner -> int
(** States cut so far by this pruner. *)

val checked_count : pruner -> int
(** Oracle consultations so far by this pruner. *)

(** {2 Context stacks (call-site ids)} *)

val push_ctx : Pag.t -> Pts_util.Hstack.t -> int -> Pts_util.Hstack.t
(** Enter a method through call site [i] (no-op for recursive sites). *)

val pop_ctx : Pag.t -> Pts_util.Hstack.t -> int -> Pts_util.Hstack.t option
(** Leave a method through call site [i]: [None] when the path is
    unrealizable (stack top differs from [i]); [Some] of the popped stack
    when the top matches, the stack is empty, or the site is recursive. *)

(** {2 The local-edge walker} *)

type policy = {
  exact : bool;
      (** [true] short-circuits all match-edge machinery: every field is
          tracked exactly (Algorithm 3 / NOREFINE / the PPTA) *)
  refined : dst:Pag.node -> fld:int -> base:Pag.node -> bool;
      (** is load edge [dst = base.fld] refined (tracked exactly)? *)
  note_match : dst:Pag.node -> fld:int -> base:Pag.node -> unit;
      (** an unrefined load edge was crossed via its match edge — record
          it for the next refinement pass *)
  match_pts : int -> int list;
      (** field-based points-to of a field: sites storable into any
          [_.fld] (see {!Fieldbased.pts_of_field}) *)
  match_flows : int -> Pag.node list;
      (** field-based flows of a field: nodes a value stored into any
          [_.fld] may surface at (see {!Fieldbased.flows_of_field}) *)
}

val exact_policy : policy

type local_result = {
  lr_objs : int list;  (** sites reached with an empty stack — harvest under the current context *)
  lr_match_objs : int list;
      (** sites contributed by match edges — context-free harvest *)
  lr_frontier : (Pag.node * Pts_util.Hstack.t * state) list;
      (** states at which a global edge is about to be crossed; {!solve}
          expands them under the RRP context machine *)
  lr_jumps : (Pag.node * Pts_util.Hstack.t * state) list;
      (** match-edge continuations; {!solve} propagates them with the
          calling context cleared *)
}

val frontier_only : Pag.node -> Pts_util.Hstack.t -> state -> local_result
(** The fast path for a node without local edges: its only continuation is
    itself as a frontier state. *)

val local_walk :
  ?observe:(Pag.node -> Pts_util.Hstack.t -> state -> unit) ->
  ?prune:pruner ->
  policy:policy ->
  Pag.t -> Conf.t -> Budget.t -> Pag.node -> Pts_util.Hstack.t -> state -> local_result
(** One local-edge-only traversal from a query state. With {!exact_policy}
    this is exactly Algorithm 3 (see {!Ppta.compute}, which wraps it).
    Consumes budget per newly visited state; [observe] sees each one.
    [prune] cuts provably-fruitless states before they are charged —
    never pass it from summary computation (see the pruning section).
    @raise Budget.Out_of_budget (also on field-stack overflow under
    [Abort]), in which case the partial result must not be cached. *)

(** {2 The global-edge worklist (Algorithm 4)} *)

type expander = Pag.node -> Pts_util.Hstack.t -> state -> local_result
(** The engine's local-edge strategy: given a popped worklist state,
    produce its local consequences (however it likes — walking, a summary
    cache, a precomputed table). *)

val solve :
  ?stop:(Query.Target_set.t -> bool) ->
  ?prune:pruner ->
  Pag.t -> Budget.t -> expander -> Pag.node -> Pts_util.Hstack.t -> Query.Target_set.t
(** Run the worklist from [(v, ε, S1, c0)] to exhaustion. [prune] drops
    provably-fruitless states at enqueue time (inter-procedural expansion
    only — the engine decides separately whether its expander prunes its
    local walks, and summary-backed expanders must not). [stop] is
    checked whenever the accumulated target set grows (and once on the
    empty set); when it returns [true] the loop returns the partial set
    immediately. {b Soundness caveat}: the accumulated set grows towards
    the answer from below, so early exit is only meaningful for
    anti-monotone client predicates in the {e refutation} direction —
    see {!Dynsum.points_to}. @raise Budget.Out_of_budget *)

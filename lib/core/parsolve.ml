module Hstack = Pts_util.Hstack
module Stats = Pts_util.Stats

type query = { node : Pag.node; satisfy : (Query.Target_set.t -> bool) option }

let query ?satisfy node = { node; satisfy }

type schedule = Static | Steal

let schedule_name = function Static -> "static" | Steal -> "steal"

let schedule_of_string = function
  | "static" -> Some Static
  | "steal" -> Some Steal
  | _ -> None

type domain_report = {
  dr_round : int;
  dr_domain : int;
  dr_queries : int;
  dr_steps : int;
  dr_seconds : float;
  dr_summaries : int;
  dr_steals : int;
}

type result = {
  outcomes : Query.outcome array;
  reports : domain_report list;
  stats : Stats.t;
  wall_seconds : float;
  jobs : int;
  rounds : int;
  schedule : schedule;
  steals : int;
  predicted_steps : int array;
  actual_steps : int array;
  cost_corr : float;
  merged_summaries : int;
  unique_summaries : int;
  summaries : Dynsum.snapshot;
  base_hits : int;
  base_misses : int;
  base_evictions : int;
  base_size : int;
}

(* What one domain hands back from one round. Everything in here is
   either immutable, or mutable state the worker stops touching before
   [Domain.join] (which is the happens-before edge the main domain reads
   it under). Field stacks inside [wr_outcomes] are hash-consed in the
   {e worker's} store and must be rebased before the main domain may use
   them as keys (see {!Pts_util.Hstack.rebase}); [wr_snapshot] is already
   structural and travels freely. *)
type worker_result = {
  wr_outcomes : (int * Query.outcome * int) list; (* index, outcome, steps *)
  wr_stats : Stats.t;
  wr_steps : int;
  wr_seconds : float;
  wr_summaries : int;
  wr_steals : int;
  wr_snapshot : Dynsum.snapshot option;
}

(* DYNSUM is special-cased by registry name: the uniform [Engine.engine]
   record hides the concrete engine, and the summary base/snapshot
   protocol only exists for DYNSUM (STASUM's table is a pure function of
   the PAG, the SB engines have no cross-query state). *)
let build_engine ~conf ~trace name pag =
  if name = "dynsum" then begin
    let d = Dynsum.create ~conf ?trace pag in
    (Engine.dynsum d, Some d)
  end
  else (Engine.create ~conf ?trace name pag, None)

(* Re-intern every context stack of a worker-domain outcome in the
   calling domain's hash-cons store. [Target.compare] orders by stack id,
   so a set is only meaningful in the domain whose store minted the ids. *)
let rebase_outcome = function
  | Query.Exceeded -> Query.Exceeded
  | Query.Resolved ts ->
    Query.Resolved
      (Query.Target_set.fold
         (fun t acc ->
           Query.Target_set.add
             { t with Query.Target.hctx = Hstack.rebase t.Query.Target.hctx }
             acc)
         ts Query.Target_set.empty)

(* The two ways a worker obtains its tasks. [Fixed] is the legacy static
   shard: a private list, no cross-domain traffic. [Deques] is the
   work-stealing pool: the worker owns [w_deques.(w_self)] (ownership
   transferred by the main domain across [Domain.spawn]) and steals from
   the fullest peer once its own deque runs dry. Tasks are only ever
   seeded before the round starts, so "every deque empty" is a stable
   termination condition — [Wsdeque.steal] returning [None] on a lost
   race just sends the thief back to rescan. *)
type feed =
  | Fixed of (int * query) list
  | Deques of { w_self : int; w_deques : (int * query) Wsdeque.t array }

let run_worker ~conf ~trace_writer ~engine_name ~pag ~base ~feed () =
  let trace = Option.map Trace.buffered_jsonl trace_writer in
  let eng, dyn = build_engine ~conf ~trace engine_name pag in
  (match dyn, base with Some d, Some b -> Dynsum.set_base d b | _ -> ());
  let outs = ref [] in
  let steals = ref 0 in
  let run_task (i, q) =
    let before = Budget.total_steps eng.Engine.budget in
    let o = eng.Engine.points_to ?satisfy:q.satisfy q.node in
    outs := (i, o, Budget.total_steps eng.Engine.budget - before) :: !outs
  in
  let (), seconds =
    Stats.time (fun () ->
        match feed with
        | Fixed items -> List.iter run_task items
        | Deques { w_self; w_deques } ->
          let jobs = Array.length w_deques in
          let rec drain () =
            match Wsdeque.pop w_deques.(w_self) with
            | Some t ->
              run_task t;
              drain ()
            | None -> scavenge ()
          and scavenge () =
            (* own deque dry: raid the fullest peer (FIFO end, i.e. its
               cheapest remaining task under longest-first seeding) *)
            let victim = ref (-1) and depth = ref 0 in
            for d = 0 to jobs - 1 do
              if d <> w_self then begin
                let s = Wsdeque.size w_deques.(d) in
                if s > !depth then begin
                  victim := d;
                  depth := s
                end
              end
            done;
            if !victim >= 0 then begin
              (match trace with
              | Some s ->
                Trace.emit s
                  (Trace.Queue_depth { engine = engine_name; domain = !victim; depth = !depth })
              | None -> ());
              match Wsdeque.steal w_deques.(!victim) with
              | Some t ->
                incr steals;
                (match trace with
                | Some s ->
                  Trace.emit s
                    (Trace.Steal { engine = engine_name; thief = w_self; victim = !victim })
                | None -> ());
                run_task t;
                drain ()
              | None -> scavenge () (* lost the race; someone made progress *)
            end
            (* else: every deque empty — in-flight tasks belong to their
               takers, nothing left for us *)
          in
          drain ())
  in
  (match trace with Some s -> Trace.close s | None -> ());
  {
    wr_outcomes = !outs;
    wr_stats = eng.Engine.stats;
    wr_steps = Budget.total_steps eng.Engine.budget;
    wr_seconds = seconds;
    wr_summaries =
      (match dyn with Some d -> Dynsum.new_summary_count d | None -> eng.Engine.summary_count ());
    wr_steals = !steals;
    wr_snapshot = Option.map Dynsum.snapshot dyn;
  }

let run ?(conf = Conf.default) ?trace_writer ?(jobs = 1) ?(rounds = 1) ?(schedule = Steal) ?base
    ~engine:engine_name pag queries =
  if jobs < 1 then invalid_arg "Parsolve.run: jobs must be >= 1";
  if rounds < 1 then invalid_arg "Parsolve.run: rounds must be >= 1";
  (match Engine.find engine_name with
  | Some _ -> ()
  | None ->
    invalid_arg
      (Printf.sprintf "Parsolve.run: unknown engine %S (known: %s)" engine_name
         (String.concat ", " (Engine.names ()))));
  (* a frozen PAG is shareable: the slabs are immutable and the edit
     overlay, if any, is only written by [Pag.apply_edits] between
     batches — never concurrently with a run. [packed] raises before
     [freeze], turning a data race on the build side into an immediate
     error. By default the shared base tier below lives within this one
     call, so an edit between calls can never feed it a stale summary; a
     caller passing [?base] owns that invariant instead — the serve
     daemon keeps one tier across requests and runs
     [Dynsum.base_invalidate] on every edit commit. *)
  ignore (Pag.packed pag);
  let n = Array.length queries in
  let outcomes = Array.make n Query.Exceeded in
  let predicted_steps =
    Array.map (fun q -> Costmodel.predict ~prune:conf.Conf.prune pag q.node) queries
  in
  let actual_steps = Array.make n 0 in
  let agg_stats = Stats.create () in
  let reports = ref [] in
  (* Shared summary tiers. [base] holds every summary any domain has
     computed in a {e finished} round, read by reference from all workers
     of later rounds (grown only here, between joins). [all_snaps]
     remembers each per-round snapshot for the final merged pool and the
     recomputation accounting. *)
  let base =
    match base with
    | Some _ as b -> if engine_name = "dynsum" then b else None
    | None -> if engine_name = "dynsum" then Some (Dynsum.base_create ()) else None
  in
  let all_snaps = ref [] in
  let produced = ref 0 in
  let total_steals = ref 0 in
  let rounds = min rounds (max n 1) in
  let (), wall_seconds =
    Stats.time (fun () ->
        for round = 0 to rounds - 1 do
          (* consecutive index chunk per round (batch arrival order) *)
          let lo = round * n / rounds and hi = (round + 1) * n / rounds in
          let feeds =
            match schedule with
            | Static ->
              (* legacy shard: round-robin by index within the round *)
              let shards = Array.make jobs [] in
              for i = hi - 1 downto lo do
                let d = (i - lo) mod jobs in
                shards.(d) <- (i, queries.(i)) :: shards.(d)
              done;
              Array.map (fun items -> Fixed items) shards
            | Steal ->
              (* cost-model seeding: deal the round's queries round-robin
                 in descending predicted cost, and push each deque's share
                 cheapest-first so the owner pops expensive-first while
                 thieves lift the cheap end — stragglers start earliest
                 and migrate last *)
              let order = Array.init (hi - lo) (fun k -> lo + k) in
              Array.sort
                (fun i j ->
                  match compare predicted_steps.(j) predicted_steps.(i) with
                  | 0 -> compare i j
                  | c -> c)
                order;
              let shares = Array.make jobs [] in
              Array.iteri
                (fun k i -> shares.(k mod jobs) <- (i, queries.(i)) :: shares.(k mod jobs))
                order;
              let deques =
                Array.map
                  (fun share ->
                    let dq = Wsdeque.create ~capacity:(max 16 (List.length share + 1)) () in
                    List.iter (fun t -> Wsdeque.push dq t) share;
                    dq)
                  shares
              in
              Array.init jobs (fun d -> Deques { w_self = d; w_deques = deques })
          in
          let work d = run_worker ~conf ~trace_writer ~engine_name ~pag ~base ~feed:feeds.(d) in
          let results =
            if jobs = 1 then [| work 0 () |]
            else Array.map Domain.join (Array.init jobs (fun d -> Domain.spawn (work d)))
          in
          Array.iteri
            (fun d wr ->
              List.iter
                (fun (i, o, steps) ->
                  outcomes.(i) <- rebase_outcome o;
                  actual_steps.(i) <- steps)
                wr.wr_outcomes;
              Stats.merge_into ~into:agg_stats wr.wr_stats;
              total_steals := !total_steals + wr.wr_steals;
              reports :=
                {
                  dr_round = round;
                  dr_domain = d;
                  dr_queries = List.length wr.wr_outcomes;
                  dr_steps = wr.wr_steps;
                  dr_seconds = wr.wr_seconds;
                  dr_summaries = wr.wr_summaries;
                  dr_steals = wr.wr_steals;
                }
                :: !reports)
            results;
          Array.iter
            (fun wr ->
              match wr.wr_snapshot with
              | None -> ()
              | Some s ->
                produced := !produced + Dynsum.snapshot_length s;
                all_snaps := s :: !all_snaps;
                match base with Some b -> ignore (Dynsum.base_add b s) | None -> ())
            results
        done)
  in
  if !total_steals > 0 then Stats.add agg_stats "steals" !total_steals;
  let summaries = Dynsum.snapshot_union (List.rev !all_snaps) in
  let to_float a = Array.map float_of_int a in
  let base_hits, base_misses, base_evictions, base_size =
    match base with
    | None -> (0, 0, 0, 0)
    | Some b -> (Dynsum.base_hits b, Dynsum.base_misses b, Dynsum.base_evictions b, Dynsum.base_length b)
  in
  {
    outcomes;
    reports = List.rev !reports;
    stats = agg_stats;
    wall_seconds;
    jobs;
    rounds;
    schedule;
    steals = !total_steals;
    predicted_steps;
    actual_steps;
    cost_corr = Costmodel.pearson (to_float predicted_steps) (to_float actual_steps);
    merged_summaries = !produced;
    unique_summaries = Dynsum.snapshot_length summaries;
    summaries;
    base_hits;
    base_misses;
    base_evictions;
    base_size;
  }

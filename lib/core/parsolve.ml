module Hstack = Pts_util.Hstack
module Stats = Pts_util.Stats

type query = { node : Pag.node; satisfy : (Query.Target_set.t -> bool) option }

let query ?satisfy node = { node; satisfy }

type domain_report = {
  dr_round : int;
  dr_domain : int;
  dr_queries : int;
  dr_steps : int;
  dr_seconds : float;
  dr_summaries : int;
}

type result = {
  outcomes : Query.outcome array;
  reports : domain_report list;
  stats : Stats.t;
  wall_seconds : float;
  jobs : int;
  rounds : int;
  merged_summaries : int;
}

(* What one domain hands back from one round. Everything in here is
   either immutable, or mutable state the worker stops touching before
   [Domain.join] (which is the happens-before edge the main domain reads
   it under). Field stacks inside [wr_outcomes] are hash-consed in the
   {e worker's} store and must be rebased before the main domain may use
   them as keys (see {!Pts_util.Hstack.rebase}); [wr_snapshot] is already
   structural and travels freely. *)
type worker_result = {
  wr_outcomes : (int * Query.outcome) list;
  wr_stats : Stats.t;
  wr_steps : int;
  wr_seconds : float;
  wr_summaries : int;
  wr_snapshot : Dynsum.snapshot option;
}

(* DYNSUM is special-cased by registry name: the uniform [Engine.engine]
   record hides the concrete engine, and the summary-cache snapshot/absorb
   protocol only exists for DYNSUM (STASUM's table is a pure function of
   the PAG, the SB engines have no cross-query state). *)
let build_engine ~conf ~trace name pag =
  if name = "dynsum" then begin
    let d = Dynsum.create ~conf ?trace pag in
    (Engine.dynsum d, Some d)
  end
  else (Engine.create ~conf ?trace name pag, None)

(* Re-intern every context stack of a worker-domain outcome in the
   calling domain's hash-cons store. [Target.compare] orders by stack id,
   so a set is only meaningful in the domain whose store minted the ids. *)
let rebase_outcome = function
  | Query.Exceeded -> Query.Exceeded
  | Query.Resolved ts ->
    Query.Resolved
      (Query.Target_set.fold
         (fun t acc ->
           Query.Target_set.add
             { t with Query.Target.hctx = Hstack.rebase t.Query.Target.hctx }
             acc)
         ts Query.Target_set.empty)

let run_worker ~conf ~trace_writer ~engine_name ~pag ~pool items () =
  let trace = Option.map Trace.buffered_jsonl trace_writer in
  let eng, dyn = build_engine ~conf ~trace engine_name pag in
  (match dyn with Some d -> ignore (Dynsum.absorb d pool) | None -> ());
  let outs, seconds =
    Stats.time (fun () ->
        List.map (fun (i, q) -> (i, eng.Engine.points_to ?satisfy:q.satisfy q.node)) items)
  in
  (match trace with Some s -> Trace.close s | None -> ());
  {
    wr_outcomes = outs;
    wr_stats = eng.Engine.stats;
    wr_steps = Budget.total_steps eng.Engine.budget;
    wr_seconds = seconds;
    wr_summaries = eng.Engine.summary_count ();
    wr_snapshot = Option.map Dynsum.snapshot dyn;
  }

let run ?(conf = Conf.default) ?trace_writer ?(jobs = 1) ?(rounds = 1) ~engine:engine_name pag
    queries =
  if jobs < 1 then invalid_arg "Parsolve.run: jobs must be >= 1";
  if rounds < 1 then invalid_arg "Parsolve.run: rounds must be >= 1";
  (match Engine.find engine_name with
  | Some _ -> ()
  | None ->
    invalid_arg
      (Printf.sprintf "Parsolve.run: unknown engine %S (known: %s)" engine_name
         (String.concat ", " (Engine.names ()))));
  (* a frozen PAG is immutable and therefore shareable; [packed] raises
     before [freeze], turning a data race into an immediate error *)
  ignore (Pag.packed pag);
  let n = Array.length queries in
  let outcomes = Array.make n Query.Exceeded in
  let agg_stats = Stats.create () in
  let reports = ref [] in
  let pool = ref (Dynsum.snapshot_union []) in
  let rounds = min rounds (max n 1) in
  let (), wall_seconds =
    Stats.time (fun () ->
        for round = 0 to rounds - 1 do
          (* consecutive index chunk per round (batch arrival order),
             round-robin shards within the round (load balance) *)
          let lo = round * n / rounds and hi = (round + 1) * n / rounds in
          let shards = Array.make jobs [] in
          for i = hi - 1 downto lo do
            let d = (i - lo) mod jobs in
            shards.(d) <- (i, queries.(i)) :: shards.(d)
          done;
          let work d =
            run_worker ~conf ~trace_writer ~engine_name ~pag ~pool:!pool shards.(d)
          in
          let results =
            if jobs = 1 then [| work 0 () |]
            else Array.map Domain.join (Array.init jobs (fun d -> Domain.spawn (work d)))
          in
          Array.iteri
            (fun d wr ->
              List.iter (fun (i, o) -> outcomes.(i) <- rebase_outcome o) wr.wr_outcomes;
              Stats.merge_into ~into:agg_stats wr.wr_stats;
              reports :=
                {
                  dr_round = round;
                  dr_domain = d;
                  dr_queries = List.length wr.wr_outcomes;
                  dr_steps = wr.wr_steps;
                  dr_seconds = wr.wr_seconds;
                  dr_summaries = wr.wr_summaries;
                }
                :: !reports)
            results;
          let snaps =
            Array.to_list results |> List.filter_map (fun wr -> wr.wr_snapshot)
          in
          if snaps <> [] then pool := Dynsum.snapshot_union (!pool :: snaps)
        done)
  in
  {
    outcomes;
    reports = List.rev !reports;
    stats = agg_stats;
    wall_seconds;
    jobs;
    rounds;
    merged_summaries = Dynsum.snapshot_length !pool;
  }

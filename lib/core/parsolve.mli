(** Multicore batch-query evaluation over a frozen, CSR-packed PAG.

    A batch of points-to queries is sharded round-robin across [jobs]
    worker domains. Every domain builds its {e own} engine instance from
    the {!Engine} registry against the one shared (frozen, hence
    immutable) {!Pag.t} — engines are single-domain state; the graph is
    the only thing the domains share.

    For DYNSUM the per-domain summary caches are the interesting state:
    after each round the scheduler takes a structural {!Dynsum.snapshot}
    of every worker's cache, merges them with {!Dynsum.snapshot_union}
    (last-writer-wins on identical keys — summaries are equal there
    anyway, PPTA being deterministic), and seeds the next round's workers
    with the merged pool via {!Dynsum.absorb}. Merging cannot change
    answers: a PPTA summary is context-independent, so a summary computed
    under one domain's query mix is valid under any other's (see
    DESIGN.md, "Parallel batch evaluation and the packed PAG").

    Hash-consed stacks never cross domains raw: snapshots carry symbol
    lists, and worker outcomes are {!Pts_util.Hstack.rebase}d into the
    main domain's store before they land in {!type:result}. *)

type query = { node : Pag.node; satisfy : (Query.Target_set.t -> bool) option }

val query : ?satisfy:(Query.Target_set.t -> bool) -> Pag.node -> query

type domain_report = {
  dr_round : int;
  dr_domain : int;
  dr_queries : int;  (** queries this domain answered in this round *)
  dr_steps : int;  (** its engine's cumulative edge traversals *)
  dr_seconds : float;  (** wall-clock inside the worker, excluding spawn/join *)
  dr_summaries : int;  (** its engine's cached summaries at round end *)
}

type result = {
  outcomes : Query.outcome array;
      (** one per input query, same order; context stacks are interned in
          the calling domain's store and safe to compare against
          sequential results *)
  reports : domain_report list;  (** per (round, domain), in order *)
  stats : Pts_util.Stats.t;  (** all workers' counters, merged *)
  wall_seconds : float;  (** whole batch, including spawn/join/merge *)
  jobs : int;
  rounds : int;
  merged_summaries : int;
      (** size of the final merged DYNSUM pool (0 for other engines) *)
}

val run :
  ?conf:Conf.t ->
  ?trace_writer:Trace.writer ->
  ?jobs:int ->
  ?rounds:int ->
  engine:string ->
  Pag.t ->
  query array ->
  result
(** [run ~engine pag queries] answers the batch and returns outcomes
    positionally. [jobs] defaults to 1 (inline, no spawn — the sequential
    baseline); [rounds] (default 1) splits the batch into consecutive
    chunks with a cache merge between chunks, so DYNSUM summaries learned
    early help later rounds even across domains. When [trace_writer] is
    given, every worker traces through its own {!Trace.buffered_jsonl}
    sink onto the shared writer — whole lines only.

    @raise Invalid_argument on [jobs < 1], [rounds < 1], an unknown
    engine name, or an unfrozen PAG. *)

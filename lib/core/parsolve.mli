(** Multicore batch-query evaluation over a frozen, CSR-packed PAG.

    A batch of points-to queries is distributed across [jobs] worker
    domains. Every domain builds its {e own} engine instance from the
    {!Engine} registry against the one shared (frozen, hence immutable)
    {!Pag.t} — engines are single-domain state; the graph, the task
    deques and the summary base tier are the only things the domains
    share.

    {b Scheduling.} Two policies, A/B-able via [?schedule]:

    - {!Static} — the legacy shard: queries round-robined by index, each
      domain works its fixed list. Wall-clock tracks the slowest shard.
    - {!Steal} (default) — one {!Wsdeque} per domain, seeded longest-first
      by the {!Costmodel} prediction (oracle row size of the query root),
      so predicted stragglers start immediately; a domain that runs dry
      steals the cheapest remaining task from the fullest peer. Wall-clock
      tracks total work instead of the worst shard.

    Either way each query is answered {e exactly once} by {e some}
    single-domain engine, so the verdicts are those of a sequential run —
    scheduling moves work, never changes it (pinned by the cross-jobs ×
    cross-schedule set-equality tests).

    {b Summary reuse.} For DYNSUM, summaries computed in round [k] are
    published to later rounds through a shared read-only base tier
    ({!Dynsum.base}): after all workers of a round join, their structural
    {!Dynsum.snapshot}s are merged into the base, which round [k+1]'s
    engines consult by reference on cache miss — no more re-absorbing
    (and re-counting) the whole pool into every domain. Merging cannot
    change answers: a PPTA summary is context-independent, so a summary
    computed under one domain's query mix is valid under any other's
    (see DESIGN.md, "Work-stealing, the cost model, and the summary base
    tier").

    Hash-consed stacks never cross domains raw: snapshots carry symbol
    lists, and worker outcomes are {!Pts_util.Hstack.rebase}d into the
    main domain's store before they land in {!type:result}. *)

type query = { node : Pag.node; satisfy : (Query.Target_set.t -> bool) option }

val query : ?satisfy:(Query.Target_set.t -> bool) -> Pag.node -> query

type schedule = Static | Steal

val schedule_name : schedule -> string
val schedule_of_string : string -> schedule option

type domain_report = {
  dr_round : int;
  dr_domain : int;
  dr_queries : int;  (** queries this domain answered in this round *)
  dr_steps : int;  (** its engine's cumulative edge traversals *)
  dr_seconds : float;  (** wall-clock inside the worker, excluding spawn/join *)
  dr_summaries : int;
      (** summaries this domain {e computed itself} this round (base-tier
          hits excluded); for non-DYNSUM engines, its engine's table size *)
  dr_steals : int;  (** tasks this domain lifted from peers *)
}

type result = {
  outcomes : Query.outcome array;
      (** one per input query, same order; context stacks are interned in
          the calling domain's store and safe to compare against
          sequential results *)
  reports : domain_report list;  (** per (round, domain), in order *)
  stats : Pts_util.Stats.t;
      (** all workers' counters, merged; plus ["steals"] when any occurred *)
  wall_seconds : float;  (** whole batch, including spawn/join/merge *)
  jobs : int;
  rounds : int;
  schedule : schedule;
  steals : int;  (** total successful steals across all rounds *)
  predicted_steps : int array;  (** {!Costmodel.predict} per query, input order *)
  actual_steps : int array;  (** kernel steps each query actually charged *)
  cost_corr : float;
      (** Pearson correlation of predicted vs actual ([nan] when
          undefined) — the cost model's audit trail *)
  merged_summaries : int;
      (** total DYNSUM summaries {e derived} across all domains and
          rounds (0 for other engines); minus {!field-unique_summaries}
          this is the cross-domain recomputation the base tier exists to
          kill *)
  unique_summaries : int;  (** distinct summary keys in the final pool *)
  summaries : Dynsum.snapshot;
      (** the final merged pool — absorb into a fresh engine to persist *)
  base_hits : int;
      (** base-tier lookup hits; for a caller-supplied [?base] these are
          its {e lifetime} tallies (delta across the call is the caller's
          to take), for the internal tier they are per-run *)
  base_misses : int;
  base_evictions : int;
  base_size : int;  (** resident entries when the run finished *)
}

val run :
  ?conf:Conf.t ->
  ?trace_writer:Trace.writer ->
  ?jobs:int ->
  ?rounds:int ->
  ?schedule:schedule ->
  ?base:Dynsum.base ->
  engine:string ->
  Pag.t ->
  query array ->
  result
(** [run ~engine pag queries] answers the batch and returns outcomes
    positionally. [jobs] defaults to 1 (inline, no spawn — the sequential
    baseline; with {!Steal} the deque machinery still runs, which is what
    the smoke benches measure as scheduler overhead). [rounds] (default 1)
    splits the batch into consecutive chunks with a base-tier publish
    between chunks, so DYNSUM summaries learned early help later rounds
    even across domains. [schedule] defaults to {!Steal}. When
    [trace_writer] is given, every worker traces through its own
    {!Trace.buffered_jsonl} sink onto the shared writer — whole lines
    only — including per-steal {!Trace.Steal} and queue-depth events.

    [base] supplies an external (possibly size-bounded) summary tier to
    read through and publish into, instead of the per-call tier built by
    default; ignored for non-DYNSUM engines. The caller owns its
    freshness: the tier must describe the PAG as currently edited
    ({!Dynsum.base_invalidate} after every {!Pag.apply_edits}) and must
    not be touched while the run is in flight. The serve daemon uses
    this to make summary reuse cross-request.

    @raise Invalid_argument on [jobs < 1], [rounds < 1], an unknown
    engine name, or an unfrozen PAG. *)

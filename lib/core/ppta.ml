module Hstack = Pts_util.Hstack

type state = Kernel.state = S1 | S2

let state_to_int = Kernel.state_to_int
let pp_state = Kernel.pp_state

type summary = { objs : int list; tuples : (int * Hstack.t * state) list }

let empty_summary = { objs = []; tuples = [] }

(* Algorithm 3 is the kernel's local walker under the exact policy: every
   field is tracked precisely, so no match edges and no jumps arise. *)
let compute pag conf budget ?trace v0 f0 s0 =
  let r = Kernel.local_walk ?observe:trace ~policy:Kernel.exact_policy pag conf budget v0 f0 s0 in
  { objs = r.Kernel.lr_objs; tuples = r.Kernel.lr_frontier }

(** Partial Points-To Analysis — Algorithm 3 of the paper, the heart of
    DYNSUM.

    A PPTA run starts from a query state [(v, f, s)] — node, field stack,
    RSM direction ([S1] = traversing a flowsTo-path backwards, [S2] =
    forwards) — and explores {e only the local edges} (new/assign/load/
    store) reachable from it, following the pointsTo and alias RSMs of
    Figure 3(a) field-sensitively. It returns:

    - the allocation sites proven to flow to the query (reached with an
      empty field stack), and
    - the {e frontier tuples} [(u, f', s')] at which a global edge
      (assignglobal/entry/exit) is about to be crossed.

    Because local edges never touch the calling context, the result is
    context-independent and can be cached and reused under any context —
    the paper's key observation. The [new n̄ew] flip from S1 to S2 at an
    allocation (line 10 of Algorithm 3) is sound because lowering gives
    every allocation site a unique destination variable. *)

type state = Kernel.state = S1 | S2

val state_to_int : state -> int
val pp_state : Format.formatter -> state -> unit

type summary = {
  objs : int list; (** allocation sites, deduplicated *)
  tuples : (int * Pts_util.Hstack.t * state) list; (** frontier states *)
}

val empty_summary : summary

val compute :
  Pag.t -> Conf.t -> Budget.t -> ?trace:(int -> Pts_util.Hstack.t -> state -> unit) ->
  Pag.node -> Pts_util.Hstack.t -> state -> summary
(** One PPTA run — {!Kernel.local_walk} under {!Kernel.exact_policy}.
    Consumes budget per visited state; @raise Budget.Out_of_budget (also
    on field-stack overflow), in which case the partial result must not be
    cached. [trace] observes each newly visited state (used by the Table 1
    walkthrough). *)

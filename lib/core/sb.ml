module Hstack = Pts_util.Hstack
module Stats = Pts_util.Stats

type mode = No_refine | Refine

type t = {
  pag : Pag.t;
  mode : mode;
  ename : string; (* registry name, used in trace events *)
  conf : Conf.t;
  budget : Budget.t;
  stats : Stats.t;
  sink : Trace.sink;
  fb : Fieldbased.t; (* the field-based approximation match edges denote *)
}

(* Legacy counter names: the within-query memo is this engine's summary. *)
let rename = function
  | Trace.Summary_hit _ -> Some "memo_hits"
  | _ -> None

let create ?(conf = Conf.default) ?(trace = Trace.null) mode pag =
  let stats = Stats.create () in
  {
    pag;
    mode;
    ename = (match mode with No_refine -> "norefine" | Refine -> "refinepts");
    conf;
    budget = Budget.create ~limit:conf.Conf.budget_limit;
    stats;
    sink = Trace.tee (Trace.counting ~rename stats) trace;
    fb = Fieldbased.create pag;
  }

let budget t = t.budget
let stats t = t.stats
let mode t = t.mode

(* A load edge [dst = base.f], the unit of refinement. *)
module Load_edge = struct
  type t = int * int * int (* dst node, field, base node *)

  let equal (a : t) (b : t) = a = b
  let hash = Hashtbl.hash
end

module Edge_tbl = Hashtbl.Make (Load_edge)
module Memo = Kernel.Key_tbl

(* One refinement pass: a kernel run whose policy treats exactly the load
   edges in [flds_to_refine] field-sensitively and jumps the rest through
   field-based match edges, recording them in [flds_seen].

   Within the pass, local walks are memoised by (node, field stack,
   direction) — the policy is fixed for the pass, so a walk's result is
   too. This replaces the old nested formulation's "ad hoc caching within
   a query" and is what {!Trace.Summary_hit} means for this engine. *)
let run_pass t ?prune ~flds_to_refine ~flds_seen v =
  let policy =
    match t.mode with
    | No_refine -> Kernel.exact_policy
    | Refine ->
      {
        Kernel.exact = false;
        refined = (fun ~dst ~fld ~base -> Edge_tbl.mem flds_to_refine (dst, fld, base));
        note_match =
          (fun ~dst ~fld ~base ->
            let edge = (dst, fld, base) in
            if not (Edge_tbl.mem flds_seen edge) then begin
              Edge_tbl.add flds_seen edge ();
              Trace.emit t.sink (Trace.Match_edge { engine = t.ename; fld })
            end);
        match_pts = (fun f -> Fieldbased.pts_of_field t.fb f);
        match_flows = (fun f -> Fieldbased.flows_of_field t.fb f);
      }
  in
  let memo = Memo.create 256 in
  let expand u f s =
    if not (Pag.has_local_edges t.pag u) then Kernel.frontier_only u f s
    else begin
      let key = (u, Hstack.id f, Kernel.state_to_int s) in
      match Memo.find_opt memo key with
      | Some r ->
        Trace.emit t.sink (Trace.Summary_hit { engine = t.ename; node = u });
        r
      | None ->
        Trace.emit t.sink (Trace.Summary_miss { engine = t.ename; node = u });
        let r = Kernel.local_walk ?prune ~policy t.pag t.conf t.budget u f s in
        Memo.add memo key r;
        r
    end
  in
  Kernel.solve ?prune t.pag t.budget expand v Hstack.empty

let flush_pruner sink engine = function
  | None -> ()
  | Some pr ->
    let checked = Kernel.checked_count pr and pruned = Kernel.pruned_count pr in
    if checked > 0 then
      Trace.emit sink (Trace.Counter { engine; name = "prune_checks"; delta = checked });
    if pruned > 0 then
      Trace.emit sink (Trace.Counter { engine; name = "pruned_states"; delta = pruned })

let points_to t ?satisfy v : Query.outcome =
  Trace.emit t.sink (Trace.Query_start { engine = t.ename; node = v });
  Budget.start_query t.budget;
  let prune = if t.conf.Conf.prune then Kernel.pruner t.pag ~root:v else None in
  let flds_to_refine = Edge_tbl.create 64 in
  let outcome =
    if t.conf.Conf.prune && Pag.oracle_row_empty t.pag v then begin
      (* definite-negative fast path: nothing flows to the root at all *)
      Trace.emit t.sink
        (Trace.Counter { engine = t.ename; name = "oracle_empty_root"; delta = 1 });
      Query.Resolved Query.Target_set.empty
    end
    else
    try
      let rec iterate pass =
        Trace.emit t.sink (Trace.Refine_pass { engine = t.ename; node = v; pass });
        let flds_seen = Edge_tbl.create 64 in
        let pts = run_pass t ?prune ~flds_to_refine ~flds_seen v in
        let satisfied = match satisfy with Some pred -> pred pts | None -> false in
        if satisfied then pts
        else if t.mode = No_refine || Edge_tbl.length flds_seen = 0 then pts
        else begin
          Edge_tbl.iter (fun edge () -> Edge_tbl.replace flds_to_refine edge ()) flds_seen;
          iterate (pass + 1)
        end
      in
      Query.Resolved (iterate 1)
    with Budget.Out_of_budget ->
      Trace.emit t.sink
        (Trace.Budget_exceeded
           { engine = t.ename; node = v; steps = Budget.steps_this_query t.budget });
      Query.Exceeded
  in
  flush_pruner t.sink t.ename prune;
  (match outcome with
  | Query.Resolved ts ->
    Trace.emit t.sink
      (Trace.Query_end
         {
           engine = t.ename;
           node = v;
           resolved = true;
           targets = Query.Target_set.cardinal ts;
           steps = Budget.steps_this_query t.budget;
         })
  | Query.Exceeded ->
    Trace.emit t.sink
      (Trace.Query_end
         {
           engine = t.ename;
           node = v;
           resolved = false;
           targets = 0;
           steps = Budget.steps_this_query t.budget;
         }));
  outcome

(** The Sridharan–Bodík demand-driven points-to analysis (Algorithms 1 and
    2 of the paper), in both variants the paper evaluates:

    - {b NOREFINE}: fully field-sensitive from the start, no refinement —
      the paper's unoptimised baseline. On the shared kernel this is the
      exact local-edge policy, i.e. precisely DYNSUM's traversal without a
      cross-query summary cache.
    - {b REFINEPTS}: starts field-based (heap accesses connected by
      "match" edges that also clear the context and field stack),
      iteratively refines the load edges recorded in [fldsSeen] until the
      client is satisfied or the answer is exact, and memoises local walks
      within each refinement pass (the paper's "ad hoc caching").

    Both are context-sensitive for method invocation (call-site stacks,
    RRP) and heap abstraction (targets carry heap contexts). Both run
    {!Kernel.solve} over a per-pass {!Kernel.policy}. *)

type mode = No_refine | Refine

type t

val create : ?conf:Conf.t -> ?trace:Trace.sink -> mode -> Pag.t -> t

val points_to : t -> ?satisfy:(Query.Target_set.t -> bool) -> Pag.node -> Query.outcome
(** Demand query with the empty initial context. With [satisfy] (REFINEPTS
    only) the refinement loop returns as soon as the predicate holds — the
    returned set may then still be an over-approximation, which is sound
    for clients asking "does the exact answer satisfy me?" with
    anti-monotone predicates. Without [satisfy], the result is the exact
    CFL answer (or [Exceeded]). *)

val budget : t -> Budget.t
val mode : t -> mode

val stats : t -> Pts_util.Stats.t
(** Counters: ["queries"], ["exceeded"], ["passes"] (refinement passes),
    ["memo_hits"] (= ["summary_hits"], the within-pass walk memo),
    ["match_edges"] (field-based edges recorded for refinement). *)

module Hstack = Pts_util.Hstack
module Stats = Pts_util.Stats
module Tbl = Kernel.Key_tbl

type t = {
  pag : Pag.t;
  conf : Conf.t;
  budget : Budget.t; (* per-query budget for the online phase *)
  offline_budget : Budget.t;
  stats : Stats.t;
  sink : Trace.sink;
  cache : Ppta.summary Tbl.t;
  footprints : int list Tbl.t; (* key -> PAG nodes its derivation visited *)
  mutable truncated : bool;
}

let name = "stasum"

(* Legacy counter names for the precomputed summary table. *)
let rename = function
  | Trace.Summary_hit _ -> Some "online_hits"
  | Trace.Summary_miss _ -> Some "online_misses"
  | _ -> None

let summary_count t = Tbl.length t.cache

let summary_points t =
  let pts = Hashtbl.create 256 in
  Tbl.iter (fun (n, _f, s) _ -> Hashtbl.replace pts (n, s) ()) t.cache;
  Hashtbl.length pts
let truncated t = t.truncated
let budget t = t.budget
let stats t = t.stats
let offline_steps t = Budget.total_steps t.offline_budget

let key u f s = (u, Hstack.id f, Ppta.state_to_int s)

(* A PPTA run that also records which nodes it visited — the entry's
   invalidation footprint under post-freeze edits. *)
let traced_compute t budget u f s =
  let seen = Hashtbl.create 32 in
  let fp = ref [] in
  let trace v _ _ =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      fp := v :: !fp
    end
  in
  let summary = Ppta.compute t.pag t.conf budget ~trace u f s in
  (summary, List.sort compare !fp)

(* Frontier expansion, context-free: the summary keys a worklist could
   request next, regardless of calling context. *)
let successors pag (x, f1, s1) =
  match s1 with
  | Ppta.S1 ->
    List.map (fun (_, y) -> (y, f1, Ppta.S1)) (Pag.exit_in pag x)
    @ List.map (fun (_, y) -> (y, f1, Ppta.S1)) (Pag.entry_in pag x)
    @ List.map (fun y -> (y, f1, Ppta.S1)) (Pag.global_in pag x)
  | Ppta.S2 ->
    List.map (fun (_, y) -> (y, f1, Ppta.S2)) (Pag.exit_out pag x)
    @ List.map (fun (_, y) -> (y, f1, Ppta.S2)) (Pag.entry_out pag x)
    @ List.map (fun y -> (y, f1, Ppta.S2)) (Pag.global_out pag x)

let offline t max_summaries =
  let pag = t.pag in
  let queue = Queue.create () in
  let seen : unit Tbl.t = Tbl.create 4096 in
  (* [visit] dedups every key encountered; keys whose node has local edges
     are queued for PPTA, the others take Algorithm 4's fast path and their
     global-edge successors are chased transitively (cycles are cut by
     [seen]). *)
  let rec visit (u, f, s) =
    if not (Tbl.mem seen (key u f s)) then begin
      Tbl.add seen (key u f s) ();
      if Pag.has_local_edges pag u then Queue.add (u, f, s) queue
      else List.iter visit (successors pag (u, f, s))
    end
  in
  (* seeds: every queryable node (vars and globals touched by any edge) *)
  for n = 0 to Pag.node_count pag - 1 do
    if (not (Pag.is_obj pag n)) && Pag.has_local_edges pag n then
      visit (n, Hstack.empty, Ppta.S1)
  done;
  let depth_aborts = ref 0 in
  while (not (Queue.is_empty queue)) && not t.truncated do
    let u, f, s = Queue.pop queue in
    if Tbl.length t.cache >= max_summaries then t.truncated <- true
    else begin
      match traced_compute t t.offline_budget u f s with
      | summary, fp ->
        Tbl.replace t.cache (key u f s) summary;
        Tbl.replace t.footprints (key u f s) fp;
        List.iter
          (fun tuple -> List.iter visit (successors pag tuple))
          summary.Ppta.tuples
      | exception Budget.Out_of_budget ->
        (* field-depth overflow on this seed: drop it, note the loss *)
        incr depth_aborts
    end
  done;
  if !depth_aborts > 0 then
    Trace.emit t.sink
      (Trace.Counter { engine = name; name = "offline_depth_aborts"; delta = !depth_aborts })

let create ?(conf = Conf.default) ?(trace = Trace.null) ?(max_summaries = 300_000) pag =
  let stats = Stats.create () in
  let t =
    {
      pag;
      conf;
      budget = Budget.create ~limit:conf.Conf.budget_limit;
      offline_budget = Budget.unlimited ();
      stats;
      sink = Trace.tee (Trace.counting ~rename stats) trace;
      cache = Tbl.create 4096;
      footprints = Tbl.create 4096;
      truncated = false;
    }
  in
  offline t max_summaries;
  t

(* Online: Algorithm 4's worklist over the precomputed cache. *)
let summarise t u f s =
  if not (Pag.has_local_edges t.pag u) then { Ppta.objs = []; tuples = [ (u, f, s) ] }
  else
    match Tbl.find_opt t.cache (key u f s) with
    | Some summary ->
      Trace.emit t.sink (Trace.Summary_hit { engine = name; node = u });
      summary
    | None ->
      Trace.emit t.sink (Trace.Summary_miss { engine = name; node = u });
      let summary, fp = traced_compute t t.budget u f s in
      Tbl.replace t.cache (key u f s) summary;
      Tbl.replace t.footprints (key u f s) fp;
      summary

(* Same footprint-vs-dirty cut as {!Dynsum.invalidate}; dropped offline
   entries are recovered lazily by the online backfill above. *)
let invalidate t dirty =
  let n = Pag.node_count t.pag in
  let dirtyb = Bytes.make (max 1 n) '\000' in
  List.iter (fun d -> if d >= 0 && d < n then Bytes.set dirtyb d '\001') dirty;
  let doomed = ref [] in
  Tbl.iter
    (fun key _ ->
      let dead =
        match Tbl.find_opt t.footprints key with
        | None | Some [] -> true
        | Some fp -> List.exists (fun v -> Bytes.get dirtyb v = '\001') fp
      in
      if dead then doomed := key :: !doomed)
    t.cache;
  List.iter
    (fun key ->
      Tbl.remove t.cache key;
      Tbl.remove t.footprints key)
    !doomed;
  (List.length !doomed, Tbl.length t.cache)

let expand t u f s =
  let summary = summarise t u f s in
  { Kernel.lr_objs = summary.Ppta.objs;
    lr_match_objs = [];
    lr_frontier = summary.Ppta.tuples;
    lr_jumps = [] }

(* Same refutation-direction early exit as {!Dynsum.points_to}. *)
let stop_of_satisfy satisfy =
  Option.map (fun pred -> fun acc -> not (pred acc)) satisfy

let flush_pruner sink engine = function
  | None -> ()
  | Some pr ->
    let checked = Kernel.checked_count pr and pruned = Kernel.pruned_count pr in
    if checked > 0 then
      Trace.emit sink (Trace.Counter { engine; name = "prune_checks"; delta = checked });
    if pruned > 0 then
      Trace.emit sink (Trace.Counter { engine; name = "pruned_states"; delta = pruned })

let points_to t ?satisfy v =
  Trace.emit t.sink (Trace.Query_start { engine = name; node = v });
  Budget.start_query t.budget;
  (* Pruning applies only to the online worklist; the offline table and
     any online summary backfill stay prune-free (query-independent). *)
  let prune = if t.conf.Conf.prune then Kernel.pruner t.pag ~root:v else None in
  let outcome =
    if t.conf.Conf.prune && Pag.oracle_row_empty t.pag v then begin
      Trace.emit t.sink (Trace.Counter { engine = name; name = "oracle_empty_root"; delta = 1 });
      Query.Resolved Query.Target_set.empty
    end
    else
      try
        Query.Resolved
          (Kernel.solve ?stop:(stop_of_satisfy satisfy) ?prune t.pag t.budget (expand t) v
             Hstack.empty)
      with Budget.Out_of_budget ->
        Trace.emit t.sink
          (Trace.Budget_exceeded { engine = name; node = v; steps = Budget.steps_this_query t.budget });
        Query.Exceeded
  in
  flush_pruner t.sink name prune;
  (match outcome with
  | Query.Resolved ts ->
    Trace.emit t.sink
      (Trace.Query_end
         {
           engine = name;
           node = v;
           resolved = true;
           targets = Query.Target_set.cardinal ts;
           steps = Budget.steps_this_query t.budget;
         })
  | Query.Exceeded ->
    Trace.emit t.sink
      (Trace.Query_end
         { engine = name; node = v; resolved = false; targets = 0;
           steps = Budget.steps_this_query t.budget }));
  outcome

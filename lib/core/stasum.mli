(** STASUM — the static whole-program summarisation baseline (Yan et al.,
    ISSTA'11) the paper compares DYNSUM against in Table 2 and Figure 5.

    The offline phase enumerates {e every} summary a demand query could
    ever request: it seeds a PPTA at [(v, ε, S1)] for every variable and
    global with at least one incident edge, then closes the set under
    global-edge expansion — each frontier tuple of a computed summary
    spawns the summary keys its worklist successors would request,
    context-insensitively (STASUM cannot know which contexts queries will
    use, so it must cover all boundary states). This is why it computes
    far more summaries than DYNSUM ever materialises on demand, which is
    precisely the paper's Figure 5 measurement.

    Queries then run {!Kernel.solve} over the precomputed cache. With an
    uncapped offline phase the cache is total and demand queries never
    compute a summary; if the safety cap (or the field-depth bound)
    truncates the offline phase, missing keys are computed lazily and
    counted in ["online_misses"]. *)

type t

val create : ?conf:Conf.t -> ?trace:Trace.sink -> ?max_summaries:int -> Pag.t -> t
(** Runs the offline phase eagerly. [max_summaries] (default 300,000) is a
    safety cap; hitting it truncates enumeration. *)

val points_to : t -> ?satisfy:(Query.Target_set.t -> bool) -> Pag.node -> Query.outcome
(** [satisfy] early-exits in the refutation direction only, exactly as
    {!Dynsum.points_to} (the worklist under-approximates until done). *)

val summary_count : t -> int
(** Summaries computed offline (Figure 5's denominator). *)

val summary_points : t -> int
(** Distinct (node, direction) pairs covered (see {!Dynsum.summary_points}). *)

val truncated : t -> bool

val invalidate : t -> Pag.node list -> int * int
(** Drop the offline/backfilled summaries whose derivation footprint
    intersects an edit burst's dirty nodes (see {!Dynsum.invalidate});
    dropped keys are recomputed lazily by the online phase on next use.
    Returns [(dropped, retained)]. *)

val offline_steps : t -> int
(** PPTA steps spent in the offline phase. *)

val budget : t -> Budget.t

val stats : t -> Pts_util.Stats.t
(** Counters: ["queries"], ["exceeded"], ["online_hits"] (=
    ["summary_hits"]), ["online_misses"] (= ["summary_misses"]),
    ["offline_depth_aborts"]. *)

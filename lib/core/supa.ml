(* SUPA: demand-driven flow-sensitive points-to with strong updates via
   value-flow refinement (after Sui & Xue).

   The engine answers in two stages. Stage one is the exact CFL kernel
   solve every other engine starts from — the flow-insensitive baseline,
   and the proof obligation for soundness: the final answer is always a
   subset of it. Stage two builds a query-local sparse value-flow graph
   from the lowered IR of the query variable's method — def-use chains
   walked backwards in body order — and filters the baseline down to the
   allocation sites that survive flow-sensitive reasoning. A load's value
   flow is refined by locating the stores that may feed it; when the
   nearest feeding store must-alias the load's base and the Andersen
   oracle admits the base as a singleton non-summary object
   ({!Pag.oracle_singleton}), the store kills everything older — a strong
   update. Every channel the walk cannot account for (parameters, globals,
   call returns, loops, overlay-edited nodes) degrades to Top, i.e. the
   baseline answer, so refinement can only remove flow-insensitive noise,
   never invent or lose a value. *)

module Hstack = Pts_util.Hstack
module Stats = Pts_util.Stats
module Int_set = Set.Make (Int)

type t = {
  pag : Pag.t;
  conf : Conf.t;
  budget : Budget.t;
  stats : Stats.t;
  sink : Trace.sink;
}

let ename = "supa"

(* Within-query memo of local walks, as in the SB engines. *)
let rename = function
  | Trace.Summary_hit _ -> Some "memo_hits"
  | _ -> None

let create ?(conf = Conf.default) ?(trace = Trace.null) pag =
  let stats = Stats.create () in
  {
    pag;
    conf;
    budget = Budget.create ~limit:conf.Conf.budget_limit;
    stats;
    sink = Trace.tee (Trace.counting ~rename stats) trace;
  }

let budget t = t.budget
let stats t = t.stats

module Memo = Kernel.Key_tbl

(* ----------------------- stage one: the baseline --------------------- *)

(* Exact kernel solve (NOREFINE's machine verbatim): field stacks tracked
   exactly, local walks memoised per (node, fstack, state). [budget] is
   passed explicitly so refinement sub-queries can run on a private
   allowance without corrupting the engine's per-query accounting. *)
let kernel_pts t ?prune budget v =
  let memo = Memo.create 256 in
  let expand u f s =
    if not (Pag.has_local_edges t.pag u) then Kernel.frontier_only u f s
    else begin
      let key = (u, Hstack.id f, Kernel.state_to_int s) in
      match Memo.find_opt memo key with
      | Some r ->
        Trace.emit t.sink (Trace.Summary_hit { engine = ename; node = u });
        r
      | None ->
        Trace.emit t.sink (Trace.Summary_miss { engine = ename; node = u });
        let r = Kernel.local_walk ?prune ~policy:Kernel.exact_policy t.pag t.conf budget u f s in
        Memo.add memo key r;
        r
    end
  in
  Kernel.solve ?prune t.pag budget expand v Hstack.empty

(* ------------------- stage two: value-flow refinement ----------------- *)

(* The contribution a value-flow chain makes: the allocation sites it can
   deliver, whether it also taps a channel the walk cannot enumerate
   ([c_top] — the contribution is then the whole baseline), and, when the
   chain is a straight must-alias line to one allocation instruction
   executed exactly once per invocation, that site ([c_strong] — the
   licence for must-alias reasoning at stores). Loads, calls, globals and
   merges all break [c_strong]. *)
type contrib = { c_sites : Int_set.t; c_top : bool; c_strong : int option }

let top = { c_sites = Int_set.empty; c_top = true; c_strong = None }
let of_site s = { c_sites = Int_set.singleton s; c_top = false; c_strong = Some s }

let merge a b =
  { c_sites = Int_set.union a.c_sites b.c_sites; c_top = a.c_top || b.c_top; c_strong = None }

(* Refinement walks bail out on unreasonably large bodies: the backward
   scans are quadratic in body length in the worst case. *)
let max_body = 4096

type walk = {
  t : t;
  meth : Ir.meth;
  mid : int;
  instrs : Ir.instr array;
  depths : int array; (* packed, parallel to instrs *)
  mutable vfg_nodes : int;
  mutable strong_updates : int;
  mutable weak_updates : int;
  mutable subqueries : int;
}

let node_of w var = Pag.local_node w.t.pag ~meth:w.mid ~var

let depth_at w i =
  let d = w.depths.(i) in
  (Ir.depth_loop d, Ir.depth_cond d)

let unconditional w i = depth_at w i = (0, 0)

let is_param w x = List.mem x w.meth.Ir.param_vars || w.meth.Ir.this_var = Some x

let def_of = function
  | Ir.Alloc { dst; _ }
  | Ir.Move { dst; _ }
  | Ir.Cast_move { dst; _ }
  | Ir.Load { dst; _ }
  | Ir.Load_global { dst; _ }
  | Ir.Call { dst = Some dst; _ } ->
    Some dst
  | Ir.Call { dst = None; _ } | Ir.Store _ | Ir.Store_global _ | Ir.Return _ -> None

(* Can [node] point to [site]? Oracle first; when it cannot refute, a
   points-to sub-query through the shared kernel on a private budget — the
   refinement step proper. Inconclusive (sub-query exceeded) means yes. *)
let may_point_to w node site =
  Pag.oracle_mem w.t.pag node site
  && begin
       w.subqueries <- w.subqueries + 1;
       let budget = Budget.create ~limit:(max 1 (w.t.conf.Conf.budget_limit / 4)) in
       Budget.start_query budget;
       match kernel_pts w.t budget node with
       | pts -> List.mem site (Query.sites pts)
       | exception Budget.Out_of_budget -> true
     end

(* Value of variable [x] just before instruction [j] executes: scan
   backwards for definitions. An unconditional definition screens off
   everything older; conditional ones accumulate and the scan continues.
   A use under a loop is Top — a later definition can reach it through
   the back edge, so the backward screen is invalid there. *)
let rec resolve_value w x j =
  w.vfg_nodes <- w.vfg_nodes + 1;
  if not (Pag.node_overlay_clean w.t.pag (node_of w x)) then top
  else if fst (depth_at w j) > 0 then top
  else begin
    (* [first]: no conditional definition seen yet, so a strong
       definition's contribution (and its must-alias licence) passes
       through unmerged *)
    let rec scan k first acc =
      if k < 0 then
        (* method head: parameters and [this] arrive from the caller;
           an undefined temporary contributes nothing *)
        if is_param w x then merge acc top else acc
      else if def_of w.instrs.(k) = Some x then begin
        let c =
          match w.instrs.(k) with
          | Ir.Alloc { site; _ } -> of_site site
          | Ir.Move { src; _ } | Ir.Cast_move { src; _ } -> resolve_value w src k
          | Ir.Load _ -> resolve_load w k
          | Ir.Load_global _ | Ir.Call _ -> top
          | Ir.Store _ | Ir.Store_global _ | Ir.Return _ -> assert false
        in
        if unconditional w k then
          (* strong definition: older ones are dead at this use *)
          if first then c else merge acc c
        else scan (k - 1) false (merge acc c)
      end
      else scan (k - 1) first acc
    in
    scan (j - 1) true { c_sites = Int_set.empty; c_top = false; c_strong = None }
  end

(* Value produced by the load instruction at index [i] ([dst = base.fld]):
   what [base.fld] holds at that point. Only attempted when [base] is a
   syntactic must-alias of one non-summary allocation in this body and the
   Andersen oracle agrees it is a singleton ({!Pag.oracle_singleton}, the
   strong-update admission test); every feeding store is then classified
   must-alias (kills when unconditional), provably disjoint (skipped — by
   oracle or kernel sub-query), or may-alias (weak update: accumulated).
   Intervening calls can write the object behind our back: Top. *)
and resolve_load w i =
  w.vfg_nodes <- w.vfg_nodes + 1;
  match w.instrs.(i) with
  | Ir.Load { base; fld; _ } ->
    if not (Pag.field_overlay_clean w.t.pag fld) then top
    else begin
      let bv = resolve_value w base i in
      match bv.c_strong with
      | Some site when Pag.oracle_singleton w.t.pag (node_of w base) = Some site -> begin
        let rec scan k first acc =
          if k < 0 then acc (* unreachable: the Alloc of [site] precedes [i] *)
          else
            match w.instrs.(k) with
            | Ir.Alloc { site = s2; _ } when s2 = site ->
              (* birth of the object: the field holds nothing older *)
              acc
            | Ir.Store { base = b2; fld = f2; src } when f2 = fld -> begin
              let b2v = resolve_value w b2 k in
              match b2v.c_strong with
              | Some s2
                when s2 = site && Pag.oracle_singleton w.t.pag (node_of w b2) = Some site ->
                (* must-alias store *)
                let sv = resolve_value w src k in
                if unconditional w k then begin
                  (* strong update: the store kills every older write *)
                  w.strong_updates <- w.strong_updates + 1;
                  if first then sv else merge acc sv
                end
                else begin
                  (* the store may not execute: weak update *)
                  w.weak_updates <- w.weak_updates + 1;
                  scan (k - 1) false (merge acc sv)
                end
              | _ ->
                (* not a must-alias: provably disjoint stores (resolved
                   locally, or refuted by oracle/kernel sub-query) are
                   skipped; the rest may write our object — weak update *)
                let disjoint =
                  ((not b2v.c_top) && not (Int_set.mem site b2v.c_sites))
                  || not (may_point_to w (node_of w b2) site)
                in
                if disjoint then scan (k - 1) first acc
                else begin
                  w.weak_updates <- w.weak_updates + 1;
                  let sv = resolve_value w src k in
                  scan (k - 1) false (merge acc sv)
                end
            end
            | Ir.Call _ ->
              (* the callee may store through an escaped alias *)
              merge acc top
            | _ -> scan (k - 1) first acc
        in
        let r = scan (i - 1) true { c_sites = Int_set.empty; c_top = false; c_strong = None } in
        { r with c_strong = None }
      end
      | _ -> top
    end
  | _ -> top

(* Survivor sites for the query variable: the union over all its
   definitions (any definition can reach some use), each resolved
   flow-sensitively. [None] = no refinement possible (Top). *)
let survivors t v =
  match Pag.kind t.pag v with
  | Pag.Global _ | Pag.Obj _ -> None
  | Pag.Local { meth; var } ->
    let prog = Pag.program t.pag in
    let m = prog.Ir.methods.(meth) in
    let n = List.length m.Ir.body in
    if Array.length m.Ir.depths <> n || n = 0 || n > max_body then None
    else begin
      let w =
        {
          t;
          meth = m;
          mid = meth;
          instrs = Array.of_list m.Ir.body;
          depths = m.Ir.depths;
          vfg_nodes = 0;
          strong_updates = 0;
          weak_updates = 0;
          subqueries = 0;
        }
      in
      let acc = ref { c_sites = Int_set.empty; c_top = false; c_strong = None } in
      if is_param w var || not (Pag.node_overlay_clean t.pag v) then acc := top
      else
        Array.iteri
          (fun i instr ->
            if def_of instr = Some var && not !acc.c_top then
              let c =
                match instr with
                | Ir.Alloc { site; _ } -> of_site site
                | Ir.Move { src; _ } | Ir.Cast_move { src; _ } -> resolve_value w src i
                | Ir.Load _ -> resolve_load w i
                | _ -> top
              in
              acc := merge !acc c)
          w.instrs;
      let emit name v =
        if v > 0 then Trace.emit t.sink (Trace.Counter { engine = ename; name; delta = v })
      in
      emit "vfg_nodes" w.vfg_nodes;
      emit "strong_updates" w.strong_updates;
      emit "weak_updates" w.weak_updates;
      emit "refinement_subqueries" w.subqueries;
      if !acc.c_top then None else Some !acc.c_sites
    end

(* ------------------------------ the query ---------------------------- *)

let points_to t ?satisfy v : Query.outcome =
  Trace.emit t.sink (Trace.Query_start { engine = ename; node = v });
  Budget.start_query t.budget;
  let prune = if t.conf.Conf.prune then Kernel.pruner t.pag ~root:v else None in
  let outcome =
    if t.conf.Conf.prune && Pag.oracle_row_empty t.pag v then begin
      Trace.emit t.sink (Trace.Counter { engine = ename; name = "oracle_empty_root"; delta = 1 });
      Query.Resolved Query.Target_set.empty
    end
    else
      try
        Trace.emit t.sink (Trace.Refine_pass { engine = ename; node = v; pass = 1 });
        let base = kernel_pts t ?prune t.budget v in
        let satisfied = match satisfy with Some pred -> pred base | None -> false in
        if satisfied || Query.Target_set.is_empty base then Query.Resolved base
        else begin
          Trace.emit t.sink (Trace.Refine_pass { engine = ename; node = v; pass = 2 });
          match survivors t v with
          | None -> Query.Resolved base
          | Some sites ->
            Query.Resolved
              (Query.Target_set.filter
                 (fun tgt -> Int_set.mem tgt.Query.Target.site sites)
                 base)
        end
      with Budget.Out_of_budget ->
        Trace.emit t.sink
          (Trace.Budget_exceeded
             { engine = ename; node = v; steps = Budget.steps_this_query t.budget });
        Query.Exceeded
  in
  (match prune with
  | None -> ()
  | Some pr ->
    let checked = Kernel.checked_count pr and pruned = Kernel.pruned_count pr in
    if checked > 0 then
      Trace.emit t.sink (Trace.Counter { engine = ename; name = "prune_checks"; delta = checked });
    if pruned > 0 then
      Trace.emit t.sink (Trace.Counter { engine = ename; name = "pruned_states"; delta = pruned }));
  (match outcome with
  | Query.Resolved ts ->
    Trace.emit t.sink
      (Trace.Query_end
         {
           engine = ename;
           node = v;
           resolved = true;
           targets = Query.Target_set.cardinal ts;
           steps = Budget.steps_this_query t.budget;
         })
  | Query.Exceeded ->
    Trace.emit t.sink
      (Trace.Query_end
         {
           engine = ename;
           node = v;
           resolved = false;
           targets = 0;
           steps = Budget.steps_this_query t.budget;
         }));
  outcome

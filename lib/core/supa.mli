(** SUPA: demand-driven flow-sensitive points-to with strong updates via
    value-flow refinement (after Sui & Xue, "On-Demand Strong Update
    Analysis via Value-Flow Refinement").

    Answers in two stages. Stage one is the exact CFL kernel solve
    (NOREFINE's machine verbatim) — the flow-insensitive baseline. Stage
    two builds a query-local sparse value-flow graph from the lowered IR
    of the query variable's method — def-use chains walked backwards in
    body order, derived through {!Pag.View} metadata so edit overlays
    degrade it safely — and intersects the baseline with the allocation
    sites that survive flow-sensitive reasoning. A store kills older
    writes (a {e strong update}) only when its base is a syntactic
    must-alias of one allocation executed exactly once per invocation
    {e and} the Andersen oracle admits the base as a singleton
    non-summary object ({!Pag.oracle_singleton}); ambiguous stores are
    weak updates, refined where possible by recursive points-to
    sub-queries through the shared kernel on a private budget. Every
    channel the walk cannot model (parameters, globals, call returns,
    loops, overlay-dirty nodes or fields) degrades to Top — the baseline
    — so the answer is a subset of NOREFINE's by construction. *)

type t

val create : ?conf:Conf.t -> ?trace:Trace.sink -> Pag.t -> t

val points_to : t -> ?satisfy:(Query.Target_set.t -> bool) -> Pag.node -> Query.outcome
(** Demand query with the empty initial context. With [satisfy], the
    refinement stage is skipped as soon as the baseline satisfies the
    predicate — sound for anti-monotone client predicates, as in
    {!Sb.points_to}. Refinement sub-queries run on private budgets, so
    an outcome that is [Resolved] without refinement is never turned
    into [Exceeded] by it. *)

val budget : t -> Budget.t

val stats : t -> Pts_util.Stats.t
(** Counters: ["queries"], ["exceeded"], ["passes"] (1 = baseline,
    2 = refinement), ["memo_hits"] (within-query walk memo),
    ["vfg_nodes"] (value-flow nodes visited), ["strong_updates"],
    ["weak_updates"], ["refinement_subqueries"] (kernel sub-queries
    issued to refute store aliasing). *)

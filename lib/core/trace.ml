module Stats = Pts_util.Stats

(* ------------------------------ JSON ------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float x ->
      if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.6g" x)
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    emit buf j;
    Buffer.contents buf

  (* Recursive-descent parser for the serve daemon's request lines — the
     inverse of [emit], and like it hand-rolled because the toolchain
     ships no JSON library. Numbers with a fraction or exponent decode to
     [Float], the rest to [Int]; object member order is preserved. *)
  exception Parse of string * int

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse (msg, !pos)) in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let keyword kw v =
      if !pos + String.length kw <= n && String.sub s !pos (String.length kw) = kw then begin
        pos := !pos + String.length kw;
        v
      end
      else fail (Printf.sprintf "expected %s" kw)
    in
    let add_utf8 buf cp =
      (* the emitter only escapes control characters, so decoding \uXXXX
         to UTF-8 bytes round-trips everything it produces *)
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = int_of_string ("0x" ^ String.sub s !pos 4) in
      pos := !pos + 4;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "truncated escape";
          let c = s.[!pos] in
          incr pos;
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' -> add_utf8 buf (hex4 ())
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      if !pos < n && s.[!pos] = '-' then incr pos;
      let digits () =
        let d0 = !pos in
        while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
          incr pos
        done;
        if !pos = d0 then fail "expected digit"
      in
      digits ();
      let fractional = ref false in
      if !pos < n && s.[!pos] = '.' then begin
        fractional := true;
        incr pos;
        digits ()
      end;
      if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
        fractional := true;
        incr pos;
        if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then incr pos;
        digits ()
      end;
      let lit = String.sub s start (!pos - start) in
      if !fractional then Float (float_of_string lit)
      else match int_of_string_opt lit with Some i -> Int i | None -> Float (float_of_string lit)
    in
    let rec parse_value () =
      skip_ws ();
      if !pos >= n then fail "unexpected end of input";
      match s.[!pos] with
      | 'n' -> keyword "null" Null
      | 't' -> keyword "true" (Bool true)
      | 'f' -> keyword "false" (Bool false)
      | '"' -> String (parse_string ())
      | '[' ->
        incr pos;
        skip_ws ();
        if !pos < n && s.[!pos] = ']' then begin
          incr pos;
          List []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            if !pos < n && s.[!pos] = ',' then begin
              incr pos;
              elems (v :: acc)
            end
            else begin
              expect ']';
              List.rev (v :: acc)
            end
          in
          List (elems [])
      | '{' ->
        incr pos;
        skip_ws ();
        if !pos < n && s.[!pos] = '}' then begin
          incr pos;
          Obj []
        end
        else
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec members acc =
            let kv = member () in
            skip_ws ();
            if !pos < n && s.[!pos] = ',' then begin
              incr pos;
              members (kv :: acc)
            end
            else begin
              expect '}';
              List.rev (kv :: acc)
            end
          in
          Obj (members [])
      | '-' | '0' .. '9' -> parse_number ()
      | c -> fail (Printf.sprintf "unexpected %C" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse (msg, p) -> Error (Printf.sprintf "%s at offset %d" msg p)
    | exception Failure _ -> Error "malformed number"

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

(* ------------------------------ events ----------------------------- *)

type event =
  | Query_start of { engine : string; node : int }
  | Query_end of { engine : string; node : int; resolved : bool; targets : int; steps : int }
  | Summary_hit of { engine : string; node : int }
  | Summary_miss of { engine : string; node : int }
  | Refine_pass of { engine : string; node : int; pass : int }
  | Match_edge of { engine : string; fld : int }
  | Budget_exceeded of { engine : string; node : int; steps : int }
  | Steal of { engine : string; thief : int; victim : int }
  | Queue_depth of { engine : string; domain : int; depth : int }
  | Counter of { engine : string; name : string; delta : int }
  | Request_latency of { engine : string; op : string; micros : int }

let event_engine = function
  | Query_start { engine; _ }
  | Query_end { engine; _ }
  | Summary_hit { engine; _ }
  | Summary_miss { engine; _ }
  | Refine_pass { engine; _ }
  | Match_edge { engine; _ }
  | Budget_exceeded { engine; _ }
  | Steal { engine; _ }
  | Queue_depth { engine; _ }
  | Counter { engine; _ }
  | Request_latency { engine; _ } -> engine

(* The counter a counting sink aggregates the event into. [Query_end]
   carries no count of its own (its steps are already in the budget). *)
let counter_name = function
  | Query_start _ -> Some "queries"
  | Query_end _ -> None
  | Summary_hit _ -> Some "summary_hits"
  | Summary_miss _ -> Some "summary_misses"
  | Refine_pass _ -> Some "passes"
  | Match_edge _ -> Some "match_edges"
  | Budget_exceeded _ -> Some "exceeded"
  | Steal _ -> Some "steals"
  | Queue_depth _ -> None (* a gauge, not a count *)
  | Counter { name; _ } -> Some name
  | Request_latency _ -> Some "request_latency_micros"

let counter_delta = function
  | Counter { delta; _ } -> delta
  | Request_latency { micros; _ } -> micros
  | _ -> 1

let event_to_json e =
  let open Json in
  let base kind fields = Obj (("ev", String kind) :: ("engine", String (event_engine e)) :: fields)
  in
  match e with
  | Query_start { node; _ } -> base "query_start" [ ("node", Int node) ]
  | Query_end { node; resolved; targets; steps; _ } ->
    base "query_end"
      [ ("node", Int node); ("resolved", Bool resolved); ("targets", Int targets); ("steps", Int steps) ]
  | Summary_hit { node; _ } -> base "summary_hit" [ ("node", Int node) ]
  | Summary_miss { node; _ } -> base "summary_miss" [ ("node", Int node) ]
  | Refine_pass { node; pass; _ } -> base "refine_pass" [ ("node", Int node); ("pass", Int pass) ]
  | Match_edge { fld; _ } -> base "match_edge" [ ("fld", Int fld) ]
  | Budget_exceeded { node; steps; _ } ->
    base "budget_exceeded" [ ("node", Int node); ("steps", Int steps) ]
  | Steal { thief; victim; _ } -> base "steal" [ ("thief", Int thief); ("victim", Int victim) ]
  | Queue_depth { domain; depth; _ } ->
    base "queue_depth" [ ("domain", Int domain); ("depth", Int depth) ]
  | Counter { name; delta; _ } -> base "counter" [ ("name", String name); ("delta", Int delta) ]
  | Request_latency { op; micros; _ } ->
    base "request_latency" [ ("op", String op); ("micros", Int micros) ]

(* ------------------------------ sinks ------------------------------ *)

type sink = { emit : event -> unit; close : unit -> unit }

let null = { emit = ignore; close = ignore }

let emit sink e = sink.emit e
let close sink = sink.close ()

let tee a b =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

let counting ?rename stats =
  {
    emit =
      (fun e ->
        let d = counter_delta e in
        (match counter_name e with Some n -> Stats.add stats n d | None -> ());
        match rename with
        | None -> ()
        | Some f -> ( match f e with Some n -> Stats.add stats n d | None -> ()));
    close = ignore;
  }

(* --------------------- shutdown-flush registry --------------------- *)

(* A process killed by SIGINT/SIGTERM dies without running [at_exit], so
   whatever a trace channel has buffered is lost and the file ends
   mid-line. Every channel-owning sink/writer registers a flush thunk
   here; [flush_on_signals] installs handlers that drain the registry and
   then exit with the conventional 128+signal status. *)
let flush_mutex = Mutex.create ()
let flush_fns : (int, unit -> unit) Hashtbl.t = Hashtbl.create 8
let flush_next_id = ref 0

let register_flush f =
  Mutex.lock flush_mutex;
  let id = !flush_next_id in
  incr flush_next_id;
  Hashtbl.replace flush_fns id f;
  Mutex.unlock flush_mutex;
  id

let unregister_flush id =
  Mutex.lock flush_mutex;
  Hashtbl.remove flush_fns id;
  Mutex.unlock flush_mutex

let flush_all () =
  (* snapshot under the lock, run outside it: a thunk may take its own
     writer mutex, and a slow flush must not block registration *)
  Mutex.lock flush_mutex;
  let fns = Hashtbl.fold (fun _ f acc -> f :: acc) flush_fns [] in
  Mutex.unlock flush_mutex;
  List.iter (fun f -> try f () with _ -> ()) fns

let signals_installed = ref false

let flush_on_signals () =
  if not !signals_installed then begin
    signals_installed := true;
    let handle signo =
      flush_all ();
      exit (if signo = Sys.sigint then 130 else if signo = Sys.sigterm then 143 else 1)
    in
    List.iter
      (fun signo ->
        try ignore (Sys.signal signo (Sys.Signal_handle handle))
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ]
  end

let jsonl oc =
  {
    emit =
      (fun e ->
        output_string oc (Json.to_string (event_to_json e));
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let to_file path =
  let oc = open_out path in
  let inner = jsonl oc in
  let fid = register_flush (fun () -> flush oc) in
  {
    emit = inner.emit;
    close =
      (fun () ->
        unregister_flush fid;
        inner.close ();
        close_out_noerr oc);
  }

(* ----------------------- domain-safe plumbing ---------------------- *)

type writer = { w_mutex : Mutex.t; w_oc : out_channel; w_owns : bool; w_flush_id : int }

(* The registered thunk uses [try_lock]: if a signal lands while some
   domain is mid-[writer_lines], skipping the flush keeps the output free
   of torn lines (the runtime's own channel flushing still runs via
   [exit]); the handler must never block on a mutex its interrupted
   thread may hold. *)
let make_writer oc owns =
  let m = Mutex.create () in
  let id =
    register_flush (fun () ->
        if Mutex.try_lock m then
          Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> flush oc))
  in
  { w_mutex = m; w_oc = oc; w_owns = owns; w_flush_id = id }

let writer oc = make_writer oc false
let writer_to_file path = make_writer (open_out path) true

let with_writer w f =
  Mutex.lock w.w_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.w_mutex) f

let writer_lines w s = if String.length s > 0 then with_writer w (fun () -> output_string w.w_oc s)

let writer_close w =
  unregister_flush w.w_flush_id;
  with_writer w (fun () ->
      flush w.w_oc;
      if w.w_owns then close_out_noerr w.w_oc)

let buffered_jsonl ?(flush_bytes = 1 lsl 16) w =
  let buf = Buffer.create 4096 in
  let flush_buf () =
    if Buffer.length buf > 0 then begin
      writer_lines w (Buffer.contents buf);
      Buffer.clear buf
    end
  in
  {
    emit =
      (fun e ->
        Json.emit buf (event_to_json e);
        Buffer.add_char buf '\n';
        if Buffer.length buf >= flush_bytes then flush_buf ());
    close = (fun () -> flush_buf ());
  }

let locked sink =
  let m = Mutex.create () in
  let guarded f x =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f x)
  in
  { emit = guarded sink.emit; close = (fun () -> guarded sink.close ()) }

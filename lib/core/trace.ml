module Stats = Pts_util.Stats

(* ------------------------------ JSON ------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float x ->
      if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.6g" x)
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    emit buf j;
    Buffer.contents buf
end

(* ------------------------------ events ----------------------------- *)

type event =
  | Query_start of { engine : string; node : int }
  | Query_end of { engine : string; node : int; resolved : bool; targets : int; steps : int }
  | Summary_hit of { engine : string; node : int }
  | Summary_miss of { engine : string; node : int }
  | Refine_pass of { engine : string; node : int; pass : int }
  | Match_edge of { engine : string; fld : int }
  | Budget_exceeded of { engine : string; node : int; steps : int }
  | Steal of { engine : string; thief : int; victim : int }
  | Queue_depth of { engine : string; domain : int; depth : int }
  | Counter of { engine : string; name : string; delta : int }

let event_engine = function
  | Query_start { engine; _ }
  | Query_end { engine; _ }
  | Summary_hit { engine; _ }
  | Summary_miss { engine; _ }
  | Refine_pass { engine; _ }
  | Match_edge { engine; _ }
  | Budget_exceeded { engine; _ }
  | Steal { engine; _ }
  | Queue_depth { engine; _ }
  | Counter { engine; _ } -> engine

(* The counter a counting sink aggregates the event into. [Query_end]
   carries no count of its own (its steps are already in the budget). *)
let counter_name = function
  | Query_start _ -> Some "queries"
  | Query_end _ -> None
  | Summary_hit _ -> Some "summary_hits"
  | Summary_miss _ -> Some "summary_misses"
  | Refine_pass _ -> Some "passes"
  | Match_edge _ -> Some "match_edges"
  | Budget_exceeded _ -> Some "exceeded"
  | Steal _ -> Some "steals"
  | Queue_depth _ -> None (* a gauge, not a count *)
  | Counter { name; _ } -> Some name

let counter_delta = function Counter { delta; _ } -> delta | _ -> 1

let event_to_json e =
  let open Json in
  let base kind fields = Obj (("ev", String kind) :: ("engine", String (event_engine e)) :: fields)
  in
  match e with
  | Query_start { node; _ } -> base "query_start" [ ("node", Int node) ]
  | Query_end { node; resolved; targets; steps; _ } ->
    base "query_end"
      [ ("node", Int node); ("resolved", Bool resolved); ("targets", Int targets); ("steps", Int steps) ]
  | Summary_hit { node; _ } -> base "summary_hit" [ ("node", Int node) ]
  | Summary_miss { node; _ } -> base "summary_miss" [ ("node", Int node) ]
  | Refine_pass { node; pass; _ } -> base "refine_pass" [ ("node", Int node); ("pass", Int pass) ]
  | Match_edge { fld; _ } -> base "match_edge" [ ("fld", Int fld) ]
  | Budget_exceeded { node; steps; _ } ->
    base "budget_exceeded" [ ("node", Int node); ("steps", Int steps) ]
  | Steal { thief; victim; _ } -> base "steal" [ ("thief", Int thief); ("victim", Int victim) ]
  | Queue_depth { domain; depth; _ } ->
    base "queue_depth" [ ("domain", Int domain); ("depth", Int depth) ]
  | Counter { name; delta; _ } -> base "counter" [ ("name", String name); ("delta", Int delta) ]

(* ------------------------------ sinks ------------------------------ *)

type sink = { emit : event -> unit; close : unit -> unit }

let null = { emit = ignore; close = ignore }

let emit sink e = sink.emit e
let close sink = sink.close ()

let tee a b =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
    close =
      (fun () ->
        a.close ();
        b.close ());
  }

let counting ?rename stats =
  {
    emit =
      (fun e ->
        let d = counter_delta e in
        (match counter_name e with Some n -> Stats.add stats n d | None -> ());
        match rename with
        | None -> ()
        | Some f -> ( match f e with Some n -> Stats.add stats n d | None -> ()));
    close = ignore;
  }

let jsonl oc =
  {
    emit =
      (fun e ->
        output_string oc (Json.to_string (event_to_json e));
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let to_file path =
  let oc = open_out path in
  let inner = jsonl oc in
  { emit = inner.emit; close = (fun () -> inner.close (); close_out_noerr oc) }

(* ----------------------- domain-safe plumbing ---------------------- *)

type writer = { w_mutex : Mutex.t; w_oc : out_channel; w_owns : bool }

let writer oc = { w_mutex = Mutex.create (); w_oc = oc; w_owns = false }

let writer_to_file path = { w_mutex = Mutex.create (); w_oc = open_out path; w_owns = true }

let with_writer w f =
  Mutex.lock w.w_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.w_mutex) f

let writer_lines w s = if String.length s > 0 then with_writer w (fun () -> output_string w.w_oc s)

let writer_close w =
  with_writer w (fun () ->
      flush w.w_oc;
      if w.w_owns then close_out_noerr w.w_oc)

let buffered_jsonl ?(flush_bytes = 1 lsl 16) w =
  let buf = Buffer.create 4096 in
  let flush_buf () =
    if Buffer.length buf > 0 then begin
      writer_lines w (Buffer.contents buf);
      Buffer.clear buf
    end
  in
  {
    emit =
      (fun e ->
        Json.emit buf (event_to_json e);
        Buffer.add_char buf '\n';
        if Buffer.length buf >= flush_bytes then flush_buf ());
    close = (fun () -> flush_buf ());
  }

let locked sink =
  let m = Mutex.create () in
  let guarded f x =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f x)
  in
  { emit = guarded sink.emit; close = (fun () -> guarded sink.close ()) }

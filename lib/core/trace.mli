(** Structured observability for the demand engines.

    Engines report typed {!type:event}s to a pluggable {!type:sink} instead of
    bumping ad-hoc printf counters. The stock sinks cover the three
    consumers the system has today:

    - {!null} — production hot path, zero work;
    - {!counting} — aggregates events into a {!Pts_util.Stats} table,
      preserving the legacy per-engine counter names via [rename];
    - {!jsonl} / {!to_file} — one JSON object per event, for offline
      analysis of query behaviour ([ptsto --trace FILE]).

    Sinks compose with {!tee}. Events carry no wall-clock timestamps so
    that traces of deterministic runs are byte-for-byte reproducible. *)

(** Hand-rolled JSON (the toolchain has no JSON library baked in). Also
    used by [ptsto --metrics-json] and the bench metrics blobs. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering; strings are escaped, non-finite floats become
      [null]. *)

  val of_string : string -> (t, string) result
  (** Parse one JSON value (the serve daemon's request lines). Strict:
      rejects trailing garbage; numbers with a fraction or exponent
      decode to [Float], all others to [Int]; object member order is
      preserved, and [\uXXXX] escapes decode to UTF-8 bytes. The error
      string includes the byte offset. *)

  val member : string -> t -> t option
  (** [member k (Obj kvs)] is the first binding of [k]; [None] on any
      other constructor or an absent key. *)
end

type event =
  | Query_start of { engine : string; node : int }
  | Query_end of { engine : string; node : int; resolved : bool; targets : int; steps : int }
  | Summary_hit of { engine : string; node : int }
      (** a local-edge summary (PPTA cache, STASUM table, or the
          Sridharan–Bodík within-query memo) answered a worklist pop *)
  | Summary_miss of { engine : string; node : int }
  | Refine_pass of { engine : string; node : int; pass : int }
  | Match_edge of { engine : string; fld : int }
      (** a field-based match edge was recorded for later refinement *)
  | Budget_exceeded of { engine : string; node : int; steps : int }
  | Steal of { engine : string; thief : int; victim : int }
      (** the batch scheduler moved a query from [victim]'s deque to
          [thief] (domain indices); aggregates into ["steals"] *)
  | Queue_depth of { engine : string; domain : int; depth : int }
      (** deque depth sampled when a worker goes looking for work — a
          gauge, not a count, so it feeds no counter *)
  | Counter of { engine : string; name : string; delta : int }
      (** escape hatch for engine-specific counters (e.g. DYNSUM's
          ["no_local_fastpath"]) *)
  | Request_latency of { engine : string; op : string; micros : int }
      (** wall-clock service time of one serve-daemon request; aggregates
          into ["request_latency_micros"]. The one deliberately
          timing-bearing event: daemon traces measure a live system, so
          they trade the reproducibility guarantee above for latency. *)

val event_engine : event -> string

val counter_name : event -> string option
(** Canonical counter the event aggregates into (["queries"],
    ["summary_hits"], …); [None] for events that are not counted. *)

val counter_delta : event -> int

val event_to_json : event -> Json.t

type sink = { emit : event -> unit; close : unit -> unit }

val null : sink
val emit : sink -> event -> unit
val close : sink -> unit

val tee : sink -> sink -> sink

val counting : ?rename:(event -> string option) -> Pts_util.Stats.t -> sink
(** Aggregate events into [stats] under their canonical names; [rename]
    may map an event to an {e additional} legacy counter name (e.g.
    [Summary_hit] → ["cache_hits"] for DYNSUM). *)

val jsonl : out_channel -> sink
(** One compact JSON object per event, newline-delimited. [close] flushes
    but does not close the channel. *)

val to_file : string -> sink
(** [jsonl] over a fresh file; [close] closes it. *)

(** {2 Shutdown flushing}

    A daemon killed by SIGINT/SIGTERM dies without [at_exit], truncating
    buffered trace files mid-line. {!to_file} sinks and {!type:writer}s
    register themselves with a process-wide flush registry;
    {!flush_on_signals} arranges for that registry to drain before the
    process exits on either signal. *)

val flush_all : unit -> unit
(** Flush every registered channel now. Best-effort and non-blocking: a
    writer whose mutex is currently held by an interrupted thread is
    skipped (its lines are whole on disk; only its channel buffer waits
    for the runtime's own exit flushing). Exceptions are swallowed. *)

val flush_on_signals : unit -> unit
(** Install SIGINT/SIGTERM handlers that run {!flush_all} and exit with
    the conventional [128+signal] status. Idempotent; safe on platforms
    without signals (installation failures are ignored). *)

(** {2 Domain-safe plumbing}

    A plain {!sink} is single-domain state. When several domains trace
    concurrently (the parallel batch scheduler), give each domain its own
    {!buffered_jsonl} sink over one shared {!type:writer}: events
    accumulate in a per-domain buffer of complete lines and are flushed
    to the underlying channel under the writer's mutex, so the output
    file interleaves whole JSONL lines, never partial ones. *)

type writer

val writer : out_channel -> writer
(** Mutex-guarded writer over an existing channel; {!writer_close}
    flushes but does not close it. *)

val writer_to_file : string -> writer
(** Writer over a fresh file; {!writer_close} closes it. *)

val writer_lines : writer -> string -> unit
(** Append a chunk (one or more complete ['\n']-terminated lines)
    atomically with respect to other writers of the same {!type:writer}. *)

val writer_close : writer -> unit

val buffered_jsonl : ?flush_bytes:int -> writer -> sink
(** Per-domain sink: buffers whole JSONL lines locally and hands them to
    the shared writer once [flush_bytes] (default 64 KiB) accumulate.
    [close] flushes the buffer; call it in the domain that emitted. *)

val locked : sink -> sink
(** Serialise [emit]/[close] of an arbitrary sink behind a fresh mutex —
    the blunt fallback for sinks with no domain-safe variant (e.g.
    {!counting} over a shared {!Pts_util.Stats.t}). Prefer per-domain
    sinks merged after join. *)

module Hstack = Pts_util.Hstack

type step = {
  w_node : Pag.node;
  w_fstack : Hstack.t;
  w_state : Ppta.state;
  w_ctx : Hstack.t;
}

module Key = struct
  type t = int * int * int * int

  let equal (a : t) (b : t) = a = b
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

let key (s : step) =
  (s.w_node, Hstack.id s.w_fstack, Ppta.state_to_int s.w_state, Hstack.id s.w_ctx)

(* Worklist successors of [st] given its local summary: one step per
   method-boundary crossing (exit/entry/global edge) reachable from a
   frontier tuple, in the same order Algorithm 4 visits them. Shared
   between [explain] (forward search) and [validate] (chain checking) so
   the two can never disagree about what a legal step is. *)
let successors pag (summary : Ppta.summary) (st : step) =
  let acc = ref [] in
  let go node fstack state ctx =
    acc := { w_node = node; w_fstack = fstack; w_state = state; w_ctx = ctx } :: !acc
  in
  List.iter
    (fun (x, f1, s1) ->
      match s1 with
      | Ppta.S1 ->
        List.iter
          (fun (i, y) -> go y f1 Ppta.S1 (Kernel.push_ctx pag st.w_ctx i))
          (Pag.exit_in pag x);
        List.iter
          (fun (i, y) ->
            match Kernel.pop_ctx pag st.w_ctx i with
            | Some c' -> go y f1 Ppta.S1 c'
            | None -> ())
          (Pag.entry_in pag x);
        List.iter (fun y -> go y f1 Ppta.S1 Hstack.empty) (Pag.global_in pag x)
      | Ppta.S2 ->
        List.iter
          (fun (i, y) ->
            match Kernel.pop_ctx pag st.w_ctx i with
            | Some c' -> go y f1 Ppta.S2 c'
            | None -> ())
          (Pag.exit_out pag x);
        List.iter
          (fun (i, y) -> go y f1 Ppta.S2 (Kernel.push_ctx pag st.w_ctx i))
          (Pag.entry_out pag x);
        List.iter (fun y -> go y f1 Ppta.S2 Hstack.empty) (Pag.global_out pag x))
    summary.Ppta.tuples;
  List.rev !acc

(* A re-run of Algorithm 4's worklist that records each state's parent.
   Kept separate from the production loop so the hot path stays lean. *)
let explain ?(conf = Conf.default) pag v ~site =
  let budget = Budget.create ~limit:conf.Conf.budget_limit in
  let cache = Hashtbl.create 256 in
  let summarise u f s =
    if not (Pag.has_local_edges pag u) then { Ppta.objs = []; tuples = [ (u, f, s) ] }
    else begin
      let k = (u, Hstack.id f, Ppta.state_to_int s) in
      match Hashtbl.find_opt cache k with
      | Some summary -> summary
      | None ->
        let summary = Ppta.compute pag conf budget u f s in
        Hashtbl.add cache k summary;
        summary
    end
  in
  let parents : step option Tbl.t = Tbl.create 256 in
  let work = Queue.create () in
  let found = ref None in
  let propagate parent st =
    if not (Tbl.mem parents (key st)) then begin
      Tbl.add parents (key st) parent;
      Queue.add st work
    end
  in
  propagate None { w_node = v; w_fstack = Hstack.empty; w_state = Ppta.S1; w_ctx = Hstack.empty };
  (try
     while (not (Queue.is_empty work)) && !found = None do
       let st = Queue.pop work in
       Budget.step budget;
       let summary = summarise st.w_node st.w_fstack st.w_state in
       if List.mem site summary.Ppta.objs then found := Some st
       else List.iter (propagate (Some st)) (successors pag summary st)
     done
   with Budget.Out_of_budget -> found := None);
  match !found with
  | None -> None
  | Some last ->
    (* walk parent links back to the query; result is query-first *)
    let rec chain acc st =
      match Tbl.find_opt parents (key st) with
      | Some (Some parent) -> chain (st :: acc) parent
      | Some None | None -> st :: acc
    in
    Some (chain [] last)

(* A chain is well formed iff it starts at the query's initial state,
   every consecutive pair is joined by a legal worklist transition (the
   successor sets above — so adjacent steps share their boundary-edge
   endpoint by construction), and the final step's local summary exposes
   the site. Summaries are recomputed from scratch: validation must not
   trust whatever cache produced the chain. *)
let validate ?(conf = Conf.default) pag ~query ~site steps =
  let budget = Budget.create ~limit:conf.Conf.budget_limit in
  let summarise u f s =
    if not (Pag.has_local_edges pag u) then { Ppta.objs = []; tuples = [ (u, f, s) ] }
    else Ppta.compute pag conf budget u f s
  in
  let rec walk = function
    | [] -> false
    | [ last ] ->
      List.mem site (summarise last.w_node last.w_fstack last.w_state).Ppta.objs
    | a :: (b :: _ as rest) ->
      let succs = successors pag (summarise a.w_node a.w_fstack a.w_state) a in
      List.exists (fun s -> key s = key b) succs && walk rest
  in
  match steps with
  | [] -> false
  | first :: _ ->
    key first
    = (query, Hstack.id Hstack.empty, Ppta.state_to_int Ppta.S1, Hstack.id Hstack.empty)
    && (try walk steps with Budget.Out_of_budget -> false)

let render pag steps =
  let prog = Pag.program pag in
  List.mapi
    (fun i (s : step) ->
      let fields =
        Hstack.to_list s.w_fstack
        |> List.map (fun sym ->
               let name = (Types.field_info prog.Ir.ctable (Fstack.sym_field sym)).Types.fld_name in
               if Fstack.sym_is_load sym then name else name ^ "!")
      in
      Printf.sprintf "%2d. %-32s %-4s fields=[%s] ctx=[%s]" (i + 1) (Pag.node_name pag s.w_node)
        (match s.w_state with Ppta.S1 -> "S1" | Ppta.S2 -> "S2")
        (String.concat ";" fields)
        (String.concat ";" (List.map string_of_int (Hstack.to_list s.w_ctx))))
    steps

(** Provenance for demand answers: {e why} does a variable point to an
    allocation site?

    Replays DYNSUM's worklist with parent tracking and reconstructs, for a
    chosen target, the chain of worklist states that led to it — each step
    a method-boundary crossing (entry/exit/global edge, with the call site
    and the context stack in force) or a method-local summary application.
    This is the explanation a tool user needs to audit an alarm such as an
    unsafe cast: which call path smuggles the offending object in. *)

type step = {
  w_node : Pag.node;
  w_fstack : Pts_util.Hstack.t;
  w_state : Ppta.state;
  w_ctx : Pts_util.Hstack.t;
}

val explain :
  ?conf:Conf.t -> Pag.t -> Pag.node -> site:int -> step list option
(** The chain of worklist states from the query (first element) to the
    state whose local summary exposed [site] (last element). [None] when
    the site is not in the answer (or the budget runs out). *)

val validate :
  ?conf:Conf.t -> Pag.t -> query:Pag.node -> site:int -> step list -> bool
(** Checks that a chain is well formed: the first step is the query's
    initial state [(query, ε, S1, ε)], every consecutive pair of steps is
    a legal worklist transition (so adjacent steps share the endpoint of
    the boundary edge that joins them), and the last step's local summary
    exposes [site]. Summaries are recomputed from scratch — validation
    does not trust the cache that produced the chain. *)

val render : Pag.t -> step list -> string list
(** Human-readable lines, one per step. *)

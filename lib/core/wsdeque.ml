(* Chase-Lev work-stealing deque (SPAA'05), the OCaml-5 Atomic variant.

   One owner domain pushes and pops at the bottom (LIFO); any number of
   thief domains steal from the top (FIFO). [top]/[bottom] are logical
   indices that only ever grow modulo the owner's bottom-decrement in
   [pop]; the circular buffer is replaced wholesale on growth, which is
   safe for concurrent thieves because every slot in [top, bottom) of the
   old buffer holds the same element in the new one (grow copies before
   the owner publishes the new buffer, and thieves re-read [tab] on every
   attempt).

   OCaml's [Atomic] operations are sequentially consistent, so the
   store-load fences of the original algorithm are implicit: the
   bottom-decrement in [pop] is globally ordered before the [top] read,
   which is the one ordering the single-element race depends on. *)

type 'a t = {
  top : int Atomic.t;  (* next index a thief would take *)
  bottom : int Atomic.t;  (* next index the owner would fill *)
  tab : 'a slot array Atomic.t;  (* circular: index i lives at i mod length *)
}

and 'a slot = Empty | Elt of 'a

let create ?(capacity = 16) () =
  let capacity = max 2 capacity in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    tab = Atomic.make (Array.make capacity Empty);
  }

let size q =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  max 0 (b - t)

let is_empty q = size q = 0

let grow q t b =
  let old = Atomic.get q.tab in
  let n = Array.length old in
  let fresh = Array.make (2 * n) Empty in
  for i = t to b - 1 do
    fresh.(i mod (2 * n)) <- old.(i mod n)
  done;
  Atomic.set q.tab fresh

let push q x =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  let a = Atomic.get q.tab in
  if b - t >= Array.length a - 1 then grow q t b;
  let a = Atomic.get q.tab in
  a.(b mod Array.length a) <- Elt x;
  Atomic.set q.bottom (b + 1)

(* Owner-only. The lone race is the last element, decided by a CAS on
   [top] against any concurrent thief; the loser sees the winner's
   increment and restores [bottom]. *)
let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* already empty: undo the decrement *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let a = Atomic.get q.tab in
    let x = a.(b mod Array.length a) in
    if b > t then
      match x with
      | Elt v ->
        a.(b mod Array.length a) <- Empty;
        Some v
      | Empty -> assert false
    else begin
      (* b = t: fight the thieves for the final element *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then match x with Elt v -> Some v | Empty -> assert false else None
    end
  end

(* Thief-safe. [None] means the deque looked empty {e or} the CAS lost to
   a concurrent taker — callers treat both as "try elsewhere" and re-check
   [size] before concluding global exhaustion. *)
let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let a = Atomic.get q.tab in
    match a.(t mod Array.length a) with
    | Empty -> None (* owner raced the slot away before our CAS *)
    | Elt v -> if Atomic.compare_and_set q.top t (t + 1) then Some v else None
  end

(** Chase-Lev work-stealing deque (single owner, many thieves).

    The batch scheduler ({!Parsolve}) gives every worker domain one
    deque: the owner treats the bottom as a LIFO stack ({!push}/{!pop}),
    idle peers {!steal} from the top, so the oldest (in our seeding:
    cheapest remaining) task of the busiest domain migrates first.

    Lock-free: [top] is advanced by a compare-and-set, [bottom] only by
    the owner. OCaml's [Atomic] is sequentially consistent, which
    supplies the fences the original algorithm needs; buffer growth
    replaces the circular array wholesale, so thieves holding the old
    array still read valid elements.

    Ownership discipline — {b not} checked at runtime: {!push} and
    {!pop} must only ever be called from one domain at a time (ownership
    may transfer across a [Domain.spawn] happens-before edge, which is
    how {!Parsolve} seeds deques on the main domain before handing them
    to workers); {!steal} and {!size} are safe from any domain. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty deque. [capacity] (default 16) is the initial ring size;
    the deque grows unboundedly as needed. *)

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed remaining element, or
    [None] when the deque is (momentarily) empty. *)

val steal : 'a t -> 'a option
(** Any domain: take the oldest remaining element. [None] means the
    deque looked empty {e or} the attempt lost a race with a concurrent
    taker — callers should re-check {!size} before concluding the deque
    is exhausted. *)

val size : 'a t -> int
(** Snapshot of the element count; exact when quiescent, a bounded
    approximation under concurrency (never negative). *)

val is_empty : 'a t -> bool

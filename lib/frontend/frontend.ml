exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let wrap f =
  try f () with
  | Lexer.Error (msg, pos) -> fail "%d:%d: lexical error: %s" pos.Ast.line pos.Ast.col msg
  | Parser.Error (msg, pos) -> fail "%d:%d: syntax error: %s" pos.Ast.line pos.Ast.col msg
  | Lower.Error (msg, pos) -> fail "%d:%d: error: %s" pos.Ast.line pos.Ast.col msg
  | Types.Error (msg, pos) -> fail "%d:%d: error: %s" pos.Ast.line pos.Ast.col msg

let compile source =
  wrap (fun () ->
      let user = Parser.parse_program source in
      Lower.lower_program (Lazy.force Prelude.ast @ user))

let compile_no_prelude source =
  wrap (fun () -> Lower.lower_program (Parser.parse_program source))

let annotations source =
  List.filter_map
    (fun (text, pos) -> if String.contains text '@' then Some (String.trim text, pos) else None)
    (Lexer.comments source)

let compile_file path =
  let source =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> fail "cannot read %s: %s" path msg
  in
  compile source

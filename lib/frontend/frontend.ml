module Mj = Pts_frontend_mjava
module Mf = Pts_frontend_minifun

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let wrap lang f =
  let at what msg (pos : Loc.pos) = fail "%d:%d: %s%s" pos.Loc.line pos.Loc.col what msg in
  match lang with
  | Loc.Mjava -> (
    try f () with
    | Mj.Lexer.Error (msg, pos) -> at "lexical error: " msg pos
    | Mj.Parser.Error (msg, pos) -> at "syntax error: " msg pos
    | Mj.Lower.Error (msg, pos) -> at "" msg pos
    | Types.Error (msg, pos) -> at "" msg pos)
  | Loc.Minifun -> (
    try f () with
    | Mf.Mf_lexer.Error (msg, pos) -> at "lexical error: " msg pos
    | Mf.Mf_parser.Error (msg, pos) -> at "syntax error: " msg pos
    | Mf.Mf_lower.Error (msg, pos) -> at "" msg pos
    | Types.Error (msg, pos) -> at "" msg pos)

let compile ?(lang = Loc.Mjava) source =
  wrap lang (fun () ->
      match lang with
      | Loc.Mjava ->
        let user = Mj.Parser.parse_program source in
        Mj.Lower.lower_program (Lazy.force Mj.Prelude.ast @ user)
      | Loc.Minifun -> Mf.Mf_lower.lower_program (Mf.Mf_parser.parse_program source))

let compile_no_prelude source =
  wrap Loc.Mjava (fun () -> Mj.Lower.lower_program (Mj.Parser.parse_program source))

let comments ?(lang = Loc.Mjava) source =
  match lang with
  | Loc.Mjava -> Mj.Lexer.comments source
  | Loc.Minifun -> Mf.Mf_lexer.comments source

let annotations ?lang source =
  List.filter_map
    (fun (text, pos) -> if String.contains text '@' then Some (String.trim text, pos) else None)
    (comments ?lang source)

let lang_of_path path =
  if Filename.check_suffix path ".mf" || Filename.check_suffix path ".minifun" then Loc.Minifun
  else Loc.Mjava

let compile_file ?lang path =
  let source =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> fail "cannot read %s: %s" path msg
  in
  let lang = match lang with Some l -> l | None -> lang_of_path path in
  compile ~lang source

(** Frontend driver: source text to {!Ir.program}.

    Prepends the {!Prelude} classes, parses, checks and lowers. All frontend
    failure modes are funnelled into a single {!Error} exception so callers
    need one handler. *)

exception Error of string
(** Message already includes the source position. *)

val compile : string -> Ir.program
(** Compile one MiniJava compilation unit (plus the prelude).
    @raise Error on any lexical, syntactic or semantic error. *)

val compile_file : string -> Ir.program
(** Read a file and {!compile} it. @raise Error also on IO failure. *)

val compile_no_prelude : string -> Ir.program
(** For tests that define their own [Object]; ordinary callers want
    {!compile}. *)

val annotations : string -> (string * Ast.pos) list
(** Annotation comments: every comment whose text contains ['@'], trimmed,
    with the position of its opening delimiter, in source order. The
    prelude is parsed separately, so these positions are the user's own
    line numbers — the same lines {!Ir} instruction positions carry.
    Never raises. *)

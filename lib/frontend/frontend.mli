(** Frontend driver: source text to {!Ir.program}, for any surface language.

    This facade is the only place the rest of the system selects a
    frontend: everything downstream of {!compile} consumes the
    frontend-agnostic IR ({!Ir}, {!Types}, {!Loc}, {!Ityp}) and never sees
    a surface syntax module. All frontend failure modes are funnelled into
    a single {!Error} exception so callers need one handler. *)

exception Error of string
(** Message already includes the source position. *)

val compile : ?lang:Loc.lang -> string -> Ir.program
(** Compile one compilation unit; [lang] defaults to {!Loc.Mjava} (which
    prepends the MiniJava prelude).
    @raise Error on any lexical, syntactic or semantic error. *)

val compile_file : ?lang:Loc.lang -> string -> Ir.program
(** Read a file and {!compile} it; without [lang] the language is inferred
    from the extension ({!lang_of_path}). @raise Error also on IO failure. *)

val lang_of_path : string -> Loc.lang
(** [.mf]/[.minifun] files are MiniFun; anything else is MiniJava. *)

val compile_no_prelude : string -> Ir.program
(** MiniJava only, for tests that define their own [Object]; ordinary
    callers want {!compile}. *)

val comments : ?lang:Loc.lang -> string -> (string * Loc.pos) list
(** All comment texts with the position of their opening delimiter, in
    source order, via the selected language's lexer. Never raises. *)

val annotations : ?lang:Loc.lang -> string -> (string * Loc.pos) list
(** Annotation comments: every comment whose text contains ['@'], trimmed,
    with the position of its opening delimiter, in source order. The
    MiniJava prelude is parsed separately, so these positions are the
    user's own line numbers — the same lines {!Ir} instruction positions
    carry. Never raises. *)

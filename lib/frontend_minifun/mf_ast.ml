(** Abstract syntax of MiniFun, the second frontend language.

    MiniFun is a small expression language with the constructs MiniJava
    cannot express: first-class functions and closures (capturing mutable
    state through [ref] cells), and result-style sum types ([Ok]/[Err] with
    [match]). A program is a sequence of top-level [let] bindings evaluated
    in order; the binding named [main] (a zero-argument function) is the
    program's entry point.

    Lowering (see {!Mf_lower}) closure-converts onto the class-based IR:
    every [fun] literal becomes a heap-allocated environment object whose
    captured bindings are fields, every call an indirect [apply] dispatch,
    so the same seven PAG edge kinds drive the analyses. *)

type binop = Add | Sub | Mul | Div | Mod | Eq | Neq | Lt | Gt | Le | Ge | And | Or

type expr = { desc : desc; pos : Loc.pos }

and desc =
  | Unit
  | Int_lit of int
  | Bool_lit of bool
  | Str_lit of string
  | Var of string
  | Fun of { fname : string option; params : string list; body : expr }
      (** [fun name(params) -> body]; the optional name labels the
          synthesised closure class for diagnostics and determinism *)
  | App of expr * expr list
  | Let of { name : string; rhs : expr; body : expr }
  | Seq of expr * expr
  | Ref of expr (** [ref e]: a fresh heap cell holding [e] *)
  | Deref of expr (** [!e] *)
  | Setref of expr * expr (** [e1 := e2]; evaluates to unit *)
  | Ok_ of expr
  | Err_ of expr
  | Match of {
      scrut : expr;
      ok_name : string;
      ok_body : expr;
      err_name : string;
      err_body : expr;
    } (** [match e with | Ok(x) -> e1 | Err(y) -> e2 end] *)
  | If of expr * expr * expr
  | Binop of binop * expr * expr
  | Not of expr
  | Neg of expr

type decl = { d_name : string; d_rhs : expr; d_pos : Loc.pos }

type program = decl list

(** Structural equality, ignoring positions (the pretty→parse round-trip
    property compares with this). *)
let rec equal_expr a b =
  match (a.desc, b.desc) with
  | Unit, Unit -> true
  | Int_lit x, Int_lit y -> x = y
  | Bool_lit x, Bool_lit y -> x = y
  | Str_lit x, Str_lit y -> String.equal x y
  | Var x, Var y -> String.equal x y
  | Fun f, Fun g ->
    Option.equal String.equal f.fname g.fname
    && List.length f.params = List.length g.params
    && List.for_all2 String.equal f.params g.params
    && equal_expr f.body g.body
  | App (f, xs), App (g, ys) ->
    equal_expr f g && List.length xs = List.length ys && List.for_all2 equal_expr xs ys
  | Let l, Let m -> String.equal l.name m.name && equal_expr l.rhs m.rhs && equal_expr l.body m.body
  | Seq (a1, a2), Seq (b1, b2) -> equal_expr a1 b1 && equal_expr a2 b2
  | Ref x, Ref y | Deref x, Deref y | Ok_ x, Ok_ y | Err_ x, Err_ y | Not x, Not y | Neg x, Neg y
    ->
    equal_expr x y
  | Setref (a1, a2), Setref (b1, b2) -> equal_expr a1 b1 && equal_expr a2 b2
  | Match m, Match n ->
    equal_expr m.scrut n.scrut
    && String.equal m.ok_name n.ok_name
    && equal_expr m.ok_body n.ok_body
    && String.equal m.err_name n.err_name
    && equal_expr m.err_body n.err_body
  | If (c1, t1, e1), If (c2, t2, e2) -> equal_expr c1 c2 && equal_expr t1 t2 && equal_expr e1 e2
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | ( ( Unit | Int_lit _ | Bool_lit _ | Str_lit _ | Var _ | Fun _ | App _ | Let _ | Seq _ | Ref _
      | Deref _ | Setref _ | Ok_ _ | Err_ _ | Match _ | If _ | Binop _ | Not _ | Neg _ ),
      _ ) ->
    false

let equal_program (p : program) (q : program) =
  List.length p = List.length q
  && List.for_all2
       (fun d e -> String.equal d.d_name e.d_name && equal_expr d.d_rhs e.d_rhs)
       p q

(** Free variables of an expression (referenced but not bound within).
    Used by closure conversion to compute captures; a [fun]'s label is not
    a binder, so self-reference goes through an enclosing binding. *)
let free_vars e =
  let module S = Set.Make (String) in
  let rec fv bound acc e =
    match e.desc with
    | Unit | Int_lit _ | Bool_lit _ | Str_lit _ -> acc
    | Var x -> if S.mem x bound then acc else S.add x acc
    | Fun { params; body; _ } -> fv (List.fold_left (fun b p -> S.add p b) bound params) acc body
    | App (f, args) -> List.fold_left (fv bound) (fv bound acc f) args
    | Let { name; rhs; body } -> fv (S.add name bound) (fv bound acc rhs) body
    | Seq (a, b) | Setref (a, b) | Binop (_, a, b) -> fv bound (fv bound acc a) b
    | Ref x | Deref x | Ok_ x | Err_ x | Not x | Neg x -> fv bound acc x
    | Match { scrut; ok_name; ok_body; err_name; err_body } ->
      let acc = fv bound acc scrut in
      let acc = fv (S.add ok_name bound) acc ok_body in
      fv (S.add err_name bound) acc err_body
    | If (c, t, f) -> fv bound (fv bound (fv bound acc c) t) f
  in
  S.elements (fv S.empty S.empty e)

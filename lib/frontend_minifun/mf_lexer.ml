(** Hand-written lexer for MiniFun. Comments are [//] to end of line and
    [/* ... */]; both are collected by {!comments} for annotation scanning
    (the taint checker's [@taint-source]/[@taint-sink] markers live in
    them, exactly as in MiniJava sources). *)

exception Error of string * Loc.pos

type token =
  | LET
  | IN
  | FUN
  | REF
  | IF
  | THEN
  | ELSE
  | MATCH
  | WITH
  | END
  | TRUE
  | FALSE
  | NOT
  | OK
  | ERR
  | IDENT of string
  | INT_LIT of int
  | STR_LIT of string
  | LPAREN
  | RPAREN
  | ARROW (* -> *)
  | BAR (* | *)
  | SEMI (* ; *)
  | SEMISEMI (* ;; *)
  | COMMA
  | SETREF (* := *)
  | BANG (* ! *)
  | EQUAL (* = *)
  | EQEQ (* == *)
  | NEQ (* != *)
  | LT
  | GT
  | LE
  | GE
  | ANDAND
  | OROR
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EOF

let token_to_string = function
  | LET -> "let"
  | IN -> "in"
  | FUN -> "fun"
  | REF -> "ref"
  | IF -> "if"
  | THEN -> "then"
  | ELSE -> "else"
  | MATCH -> "match"
  | WITH -> "with"
  | END -> "end"
  | TRUE -> "true"
  | FALSE -> "false"
  | NOT -> "not"
  | OK -> "Ok"
  | ERR -> "Err"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT_LIT n -> Printf.sprintf "integer %d" n
  | STR_LIT s -> Printf.sprintf "string %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | ARROW -> "'->'"
  | BAR -> "'|'"
  | SEMI -> "';'"
  | SEMISEMI -> "';;'"
  | COMMA -> "','"
  | SETREF -> "':='"
  | BANG -> "'!'"
  | EQUAL -> "'='"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | GT -> "'>'"
  | LE -> "'<='"
  | GE -> "'>='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | EOF -> "end of input"

type state = {
  src : string;
  mutable idx : int;
  mutable line : int;
  mutable bol : int;
}

let pos st = { Loc.line = st.line; col = st.idx - st.bol + 1 }

let peek st = if st.idx < String.length st.src then Some st.src.[st.idx] else None

let peek2 st = if st.idx + 1 < String.length st.src then Some st.src.[st.idx + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.idx + 1
  | Some _ | None -> ());
  st.idx <- st.idx + 1

let is_digit c = c >= '0' && c <= '9'

(* MiniFun identifiers start lowercase (or '_'); capitalised names are
   reserved for the result constructors. *)
let is_ident_start c = (c >= 'a' && c <= 'z') || c = '_'

let is_ident_char c =
  is_ident_start c || is_digit c || (c >= 'A' && c <= 'Z') || c = '\''

let keyword = function
  | "let" -> Some LET
  | "in" -> Some IN
  | "fun" -> Some FUN
  | "ref" -> Some REF
  | "if" -> Some IF
  | "then" -> Some THEN
  | "else" -> Some ELSE
  | "match" -> Some MATCH
  | "with" -> Some WITH
  | "end" -> Some END
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | "not" -> Some NOT
  | _ -> None

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    let start = pos st in
    advance st;
    advance st;
    let rec to_close () =
      match peek st with
      | None -> raise (Error ("unterminated block comment", start))
      | Some '*' when peek2 st = Some '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_trivia st
  | Some _ | None -> ()

let lex_ident st =
  let start = st.idx in
  while match peek st with Some c -> is_ident_char c | None -> false do
    advance st
  done;
  String.sub st.src start (st.idx - start)

let lex_int st =
  let start = st.idx in
  while match peek st with Some c -> is_digit c | None -> false do
    advance st
  done;
  int_of_string (String.sub st.src start (st.idx - start))

let lex_string st =
  let start_pos = pos st in
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Error ("unterminated string literal", start_pos))
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        go ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        advance st;
        go ()
      | Some '\\' ->
        Buffer.add_char buf '\\';
        advance st;
        go ()
      | Some '"' ->
        Buffer.add_char buf '"';
        advance st;
        go ()
      | Some c -> raise (Error (Printf.sprintf "invalid escape '\\%c'" c, pos st))
      | None -> raise (Error ("unterminated string literal", start_pos)))
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let next_token st : token * Loc.pos =
  skip_trivia st;
  let p = pos st in
  match peek st with
  | None -> (EOF, p)
  | Some c when is_ident_start c ->
    let name = lex_ident st in
    let tok = match keyword name with Some kw -> kw | None -> IDENT name in
    (tok, p)
  | Some c when c >= 'A' && c <= 'Z' ->
    let name = lex_ident st in
    (match name with
    | "Ok" -> (OK, p)
    | "Err" -> (ERR, p)
    | other -> raise (Error (Printf.sprintf "unknown constructor %s (expected Ok or Err)" other, p)))
  | Some c when is_digit c -> (INT_LIT (lex_int st), p)
  | Some '"' -> (STR_LIT (lex_string st), p)
  | Some c ->
    let simple tok =
      advance st;
      (tok, p)
    in
    let two_char ~second ~double ~single =
      advance st;
      if peek st = Some second then begin
        advance st;
        (double, p)
      end
      else (single, p)
    in
    (match c with
    | '(' -> simple LPAREN
    | ')' -> simple RPAREN
    | ',' -> simple COMMA
    | '|' ->
      advance st;
      if peek st = Some '|' then begin
        advance st;
        (OROR, p)
      end
      else (BAR, p)
    | ';' -> two_char ~second:';' ~double:SEMISEMI ~single:SEMI
    | ':' ->
      advance st;
      if peek st = Some '=' then begin
        advance st;
        (SETREF, p)
      end
      else raise (Error ("expected ':='", p))
    | '!' -> two_char ~second:'=' ~double:NEQ ~single:BANG
    | '=' -> two_char ~second:'=' ~double:EQEQ ~single:EQUAL
    | '<' -> two_char ~second:'=' ~double:LE ~single:LT
    | '>' -> two_char ~second:'=' ~double:GE ~single:GT
    | '-' -> two_char ~second:'>' ~double:ARROW ~single:MINUS
    | '+' -> simple PLUS
    | '*' -> simple STAR
    | '/' -> simple SLASH
    | '%' -> simple PERCENT
    | '&' ->
      advance st;
      if peek st = Some '&' then begin
        advance st;
        (ANDAND, p)
      end
      else raise (Error ("expected '&&'", p))
    | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, p)))

let tokenize src =
  let st = { src; idx = 0; line = 1; bol = 0 } in
  let rec go acc =
    let tok, p = next_token st in
    match tok with
    | EOF -> List.rev ((EOF, p) :: acc)
    | _ -> go ((tok, p) :: acc)
  in
  go []

(* Comment texts with the position of the opening delimiter — a lenient
   side scanner for annotation extraction, same contract as the MiniJava
   lexer's: string-literal aware, never raises. *)
let comments src =
  let st = { src; idx = 0; line = 1; bol = 0 } in
  let acc = ref [] in
  let rec go () =
    match peek st with
    | None -> ()
    | Some '/' when peek2 st = Some '/' ->
      let p = pos st in
      advance st;
      advance st;
      let start = st.idx in
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
          advance st;
          to_eol ()
      in
      to_eol ();
      acc := (String.sub st.src start (st.idx - start), p) :: !acc;
      go ()
    | Some '/' when peek2 st = Some '*' ->
      let p = pos st in
      advance st;
      advance st;
      let start = st.idx in
      let rec to_close () =
        match peek st with
        | None -> st.idx - start
        | Some '*' when peek2 st = Some '/' ->
          let len = st.idx - start in
          advance st;
          advance st;
          len
        | Some _ ->
          advance st;
          to_close ()
      in
      let len = to_close () in
      acc := (String.sub st.src start len, p) :: !acc;
      go ()
    | Some '"' ->
      advance st;
      let rec to_quote () =
        match peek st with
        | None -> ()
        | Some '"' -> advance st
        | Some '\\' ->
          advance st;
          (match peek st with Some _ -> advance st | None -> ());
          to_quote ()
        | Some _ ->
          advance st;
          to_quote ()
      in
      to_quote ();
      go ()
    | Some _ ->
      advance st;
      go ()
  in
  go ();
  List.rev !acc

(** Closure conversion of MiniFun onto the class-based {!Ir}.

    MiniFun is dynamically typed, so lowering performs no type checking —
    only name resolution — and maps every construct onto the heap shapes
    the frontend-agnostic IR already speaks:

    - every [fun] literal becomes a synthesised class [$Clo<i>$<label>]
      extending the arity-indexed base [$Fun$<k>], with one instance field
      per captured binding and a virtual [apply] method; creating the
      closure is an allocation plus one store per capture, and entering
      [apply] reloads each capture into a local, so environments flow
      through ordinary new/store/load edges;
    - every application [f(a, ..)] is an {e indirect} call: the callee
      value is copied into a receiver temporary whose static type is
      [$Fun$<k>], and the call dispatches virtually on [apply] — CHA sees
      every arity-[k] closure as a feasible target, and the points-to
      analyses narrow that set exactly as they narrow MiniJava virtual
      calls;
    - [ref] cells are [$Ref] objects with a single [contents] field;
      [!e] / [e := v] are field loads/stores;
    - [Ok]/[Err] are [$Ok]/[$Err] objects sharing the [value] field of
      their common base [$Result]; [match] loads that field into both
      branch binders (the analyses are flow-insensitive, so both branches
      simply merge);
    - top-level [let] bindings are globals of the synthetic [$Top] class,
      stored by the entry method [$Top.main] which evaluates the bindings
      in order and finally applies the binding named [main], if any.

    Ints, bools and unit lower to edge-free temporaries — exactly the
    treatment MiniJava gives its arithmetic. *)

exception Error of string * Loc.pos

let err msg pos = raise (Error (msg, pos))

let t_object = Ityp.Tclass Ityp.object_class

type ctx = {
  ctable : Types.t;
  mutable allocs : Ir.alloc_site list; (* reversed *)
  mutable n_allocs : int;
  mutable call_sites : Ir.call_site list; (* reversed *)
  mutable n_calls : int;
  mutable lowered : Ir.meth list; (* any order; indexed later by id *)
  mutable n_closures : int;
  mutable arity_classes : (int * Types.cls) list;
  globals : (string, Types.global_info) Hashtbl.t;
  c_string : Types.cls;
  c_ref : Types.cls;
  ref_fld : Types.field_info;
  c_ok : Types.cls;
  c_err : Types.cls;
  result_fld : Types.field_info;
}

type menv = {
  ctx : ctx;
  msig : Types.method_sig;
  this_var : Ir.var option;
  mutable scopes : (string * Ir.var) list; (* innermost binding first *)
  mutable nvars : int;
  mutable names : string list; (* reversed *)
  mutable typs : Ityp.typ list; (* reversed *)
  mutable code : Ir.instr list; (* reversed *)
  mutable depths : int list; (* reversed, parallel to code *)
  mutable cond_depth : int;
}

let fresh_var env name typ =
  let v = env.nvars in
  env.nvars <- v + 1;
  env.names <- name :: env.names;
  env.typs <- typ :: env.typs;
  v

let fresh_tmp env typ = fresh_var env (Printf.sprintf "$t%d" env.nvars) typ

let emit env instr =
  env.code <- instr :: env.code;
  env.depths <- Ir.depth_pack ~loop:0 ~cond:env.cond_depth :: env.depths

(* [if]/[match] lower both branches into straight-line code; marking each
   branch conditional is what stops a flow-sensitive consumer treating the
   second branch's merge move as killing the first's. MiniFun has no
   loops (recursion only), so loop depth stays 0. *)
let in_branch env f =
  env.cond_depth <- env.cond_depth + 1;
  let r = f () in
  env.cond_depth <- env.cond_depth - 1;
  r

let fresh_alloc_site env cls pos =
  let site = env.ctx.n_allocs in
  env.ctx.n_allocs <- site + 1;
  env.ctx.allocs <-
    { Ir.site_id = site; alloc_cls = cls; alloc_meth = env.msig.Types.ms_id; alloc_pos = pos;
      alloc_is_null = false }
    :: env.ctx.allocs;
  site

let fresh_call_site env pos =
  let site = env.ctx.n_calls in
  env.ctx.n_calls <- site + 1;
  env.ctx.call_sites <-
    { Ir.cs_id = site; cs_meth = env.msig.Types.ms_id; cs_pos = pos } :: env.ctx.call_sites;
  site

(* Allocate an object of [cls] into a fresh temporary of its own type. *)
let alloc_into env cls pos =
  let dst = fresh_tmp env (Ityp.Tclass (Types.class_name env.ctx.ctable cls)) in
  let site = fresh_alloc_site env cls pos in
  emit env (Ir.Alloc { dst; cls; site });
  dst

(* The arity-indexed closure base class, created on first use. Every
   arity-[k] closure class extends [$Fun$k], and every [k]-argument
   application dispatches on a receiver statically typed as [$Fun$k], so
   the class hierarchy alone (CHA) bounds indirect-call targets by arity. *)
let fun_class ctx k =
  match List.assoc_opt k ctx.arity_classes with
  | Some c -> c
  | None ->
    let c = Types.declare_class ctx.ctable (Printf.sprintf "$Fun$%d" k) Loc.dummy_pos in
    (match Types.find_class ctx.ctable Ityp.object_class with
    | Some obj -> Types.set_super ctx.ctable c obj Loc.dummy_pos
    | None -> ());
    ctx.arity_classes <- (k, c) :: ctx.arity_classes;
    c

let finish_method env ~param_vars ~this_var =
  {
    Ir.id = env.msig.Types.ms_id;
    msig = env.msig;
    pretty = Types.method_pretty env.ctx.ctable env.msig;
    this_var;
    param_vars;
    body = List.rev env.code;
    nvars = env.nvars;
    var_names = Array.of_list (List.rev env.names);
    var_types = Array.of_list (List.rev env.typs);
    depths = Array.of_list (List.rev env.depths);
  }

let make_menv ctx msig ~this_var =
  { ctx; msig; this_var; scopes = []; nvars = 0; names = []; typs = []; code = [];
    depths = []; cond_depth = 0 }

(* MiniFun allows shadowing: resolution walks the binding stack innermost
   first, then the top-level globals. *)
let resolve env name pos =
  match List.assoc_opt name env.scopes with
  | Some v -> v
  | None -> (
    match Hashtbl.find_opt env.ctx.globals name with
    | Some g ->
      let dst = fresh_tmp env g.Types.glb_typ in
      emit env (Ir.Load_global { dst; glb = g.Types.glb_id });
      dst
    | None -> err (Printf.sprintf "unbound variable %s" name) pos)

let in_scope env bindings f =
  let saved = env.scopes in
  env.scopes <- bindings @ saved;
  let r = f () in
  env.scopes <- saved;
  r

let rec lower_expr env (e : Mf_ast.expr) : Ir.var =
  let pos = e.Mf_ast.pos in
  match e.Mf_ast.desc with
  | Mf_ast.Unit -> fresh_tmp env Ityp.Tint
  | Mf_ast.Int_lit _ -> fresh_tmp env Ityp.Tint
  | Mf_ast.Bool_lit _ -> fresh_tmp env Ityp.Tbool
  | Mf_ast.Str_lit _ -> alloc_into env env.ctx.c_string pos
  | Mf_ast.Var x -> resolve env x pos
  | Mf_ast.Fun { fname; params; body } -> lower_fun env pos ~fname ~params ~body
  | Mf_ast.App (f, args) ->
    let vf = lower_expr env f in
    let vargs = List.map (lower_expr env) args in
    let k = List.length args in
    let base = fun_class env.ctx k in
    (* the receiver temporary's static type drives CHA dispatch *)
    let recv = fresh_var env (Printf.sprintf "$recv%d" env.nvars)
        (Ityp.Tclass (Types.class_name env.ctx.ctable base)) in
    emit env (Ir.Move { dst = recv; src = vf });
    let dst = fresh_tmp env t_object in
    let site = fresh_call_site env pos in
    emit env (Ir.Call { dst = Some dst; kind = Ir.Virtual { recv; mname = "apply" }; args = vargs; site });
    dst
  | Mf_ast.Let { name; rhs; body } ->
    let v = lower_expr env rhs in
    (* re-alias into a variable carrying the source name, so diagnostics
       and node lookups see [name] rather than a temporary *)
    let named = fresh_var env name t_object in
    emit env (Ir.Move { dst = named; src = v });
    in_scope env [ (name, named) ] (fun () -> lower_expr env body)
  | Mf_ast.Seq (a, b) ->
    let _ = lower_expr env a in
    lower_expr env b
  | Mf_ast.Ref x ->
    let v = lower_expr env x in
    let dst = alloc_into env env.ctx.c_ref pos in
    emit env (Ir.Store { base = dst; fld = env.ctx.ref_fld.Types.fld_id; src = v });
    dst
  | Mf_ast.Deref x ->
    let base = lower_expr env x in
    let dst = fresh_tmp env t_object in
    emit env (Ir.Load { dst; base; fld = env.ctx.ref_fld.Types.fld_id });
    dst
  | Mf_ast.Setref (r, v) ->
    let base = lower_expr env r in
    let src = lower_expr env v in
    emit env (Ir.Store { base; fld = env.ctx.ref_fld.Types.fld_id; src });
    fresh_tmp env Ityp.Tint (* unit *)
  | Mf_ast.Ok_ x -> lower_result env pos env.ctx.c_ok x
  | Mf_ast.Err_ x -> lower_result env pos env.ctx.c_err x
  | Mf_ast.Match { scrut; ok_name; ok_body; err_name; err_body } ->
    let vs = lower_expr env scrut in
    let res = fresh_tmp env t_object in
    let branch name body =
      in_branch env (fun () ->
          let bound = fresh_var env name t_object in
          emit env (Ir.Load { dst = bound; base = vs; fld = env.ctx.result_fld.Types.fld_id });
          let v = in_scope env [ (name, bound) ] (fun () -> lower_expr env body) in
          emit env (Ir.Move { dst = res; src = v }))
    in
    branch ok_name ok_body;
    branch err_name err_body;
    res
  | Mf_ast.If (c, t, f) ->
    let _ = lower_expr env c in
    let res = fresh_tmp env t_object in
    in_branch env (fun () ->
        let vt = lower_expr env t in
        emit env (Ir.Move { dst = res; src = vt }));
    in_branch env (fun () ->
        let vf = lower_expr env f in
        emit env (Ir.Move { dst = res; src = vf }));
    res
  | Mf_ast.Binop (_, a, b) ->
    let _ = lower_expr env a in
    let _ = lower_expr env b in
    fresh_tmp env Ityp.Tint
  | Mf_ast.Not x | Mf_ast.Neg x ->
    let _ = lower_expr env x in
    fresh_tmp env Ityp.Tint

and lower_result env pos cls x =
  let v = lower_expr env x in
  let dst = alloc_into env cls pos in
  emit env (Ir.Store { base = dst; fld = env.ctx.result_fld.Types.fld_id; src = v });
  dst

and lower_fun env pos ~fname ~params ~body =
  let ctx = env.ctx in
  let k = List.length params in
  let base = fun_class ctx k in
  let idx = ctx.n_closures in
  ctx.n_closures <- idx + 1;
  let label = match fname with Some n -> n | None -> "anon" in
  let cname = Printf.sprintf "$Clo%d$%s" idx label in
  let cls = Types.declare_class ctx.ctable cname pos in
  Types.set_super ctx.ctable cls base pos;
  (* captures: free variables bound as locals in the enclosing method.
     Free names that are top-level globals resolve globally inside the
     body; anything else is reported there, with a precise position. *)
  let frees = Mf_ast.free_vars { Mf_ast.desc = Mf_ast.Fun { fname; params; body }; pos } in
  let captures =
    List.filter_map
      (fun x -> Option.map (fun v -> (x, v)) (List.assoc_opt x env.scopes))
      frees
  in
  let cap_fields =
    List.map
      (fun (x, v) -> (x, v, Types.add_field ctx.ctable cls ~name:x ~typ:t_object pos))
      captures
  in
  let msig =
    Types.add_method ctx.ctable cls ~name:"apply" ~static:false ~is_ctor:false ~ret:t_object
      ~params:(List.init k (fun _ -> t_object)) pos
  in
  (* the apply method: reload captures, then the body *)
  let aenv = make_menv ctx msig ~this_var:None in
  let this_v = fresh_var aenv "this" (Ityp.Tclass cname) in
  let param_vars = List.map (fun p -> fresh_var aenv p t_object) params in
  let aenv = { aenv with this_var = Some this_v } in
  let param_bindings = List.combine params param_vars in
  let cap_bindings =
    List.map
      (fun (x, _, (fld : Types.field_info)) ->
        let v = fresh_var aenv x t_object in
        emit aenv (Ir.Load { dst = v; base = this_v; fld = fld.Types.fld_id });
        (x, v))
      cap_fields
  in
  aenv.scopes <- cap_bindings @ param_bindings;
  let r = lower_expr aenv body in
  emit aenv (Ir.Return { src = Some r });
  ctx.lowered <- finish_method aenv ~param_vars ~this_var:(Some this_v) :: ctx.lowered;
  (* back in the enclosing method: allocate the environment object and
     store each captured value into its field *)
  let dst = alloc_into env cls pos in
  List.iter
    (fun (_, v, (fld : Types.field_info)) ->
      emit env (Ir.Store { base = dst; fld = fld.Types.fld_id; src = v }))
    cap_fields;
  dst

let entry_class_name = "$Top"

let entry_method_name = "main"

let lower_program (prog : Mf_ast.program) : Ir.program =
  let ctable = Types.create () in
  let c_object = Types.declare_class ctable Ityp.object_class Loc.dummy_pos in
  let c_string = Types.declare_class ctable Ityp.string_class Loc.dummy_pos in
  Types.set_super ctable c_string c_object Loc.dummy_pos;
  let declare name =
    let c = Types.declare_class ctable name Loc.dummy_pos in
    Types.set_super ctable c c_object Loc.dummy_pos;
    c
  in
  let c_ref = declare "$Ref" in
  let ref_fld = Types.add_field ctable c_ref ~name:"contents" ~typ:t_object Loc.dummy_pos in
  let c_result = declare "$Result" in
  let result_fld = Types.add_field ctable c_result ~name:"value" ~typ:t_object Loc.dummy_pos in
  let c_ok = Types.declare_class ctable "$Ok" Loc.dummy_pos in
  Types.set_super ctable c_ok c_result Loc.dummy_pos;
  let c_err = Types.declare_class ctable "$Err" Loc.dummy_pos in
  Types.set_super ctable c_err c_result Loc.dummy_pos;
  let c_top = declare entry_class_name in
  let ctx =
    {
      ctable; allocs = []; n_allocs = 0; call_sites = []; n_calls = 0; lowered = [];
      n_closures = 0; arity_classes = []; globals = Hashtbl.create 16;
      c_string; c_ref; ref_fld; c_ok; c_err; result_fld;
    }
  in
  (* all top-level names are in scope everywhere (mutual recursion) *)
  List.iter
    (fun (d : Mf_ast.decl) ->
      if Hashtbl.mem ctx.globals d.Mf_ast.d_name then
        err (Printf.sprintf "top-level binding %s is already declared" d.Mf_ast.d_name)
          d.Mf_ast.d_pos;
      Hashtbl.add ctx.globals d.Mf_ast.d_name
        (Types.add_global ctable c_top ~name:d.Mf_ast.d_name ~typ:t_object d.Mf_ast.d_pos))
    prog;
  let msig =
    Types.add_method ctable c_top ~name:entry_method_name ~static:true ~is_ctor:false
      ~ret:Ityp.Tvoid ~params:[] Loc.dummy_pos
  in
  let env = make_menv ctx msig ~this_var:None in
  List.iter
    (fun (d : Mf_ast.decl) ->
      let v = lower_expr env d.Mf_ast.d_rhs in
      let named = fresh_var env d.Mf_ast.d_name t_object in
      emit env (Ir.Move { dst = named; src = v });
      let g = Hashtbl.find ctx.globals d.Mf_ast.d_name in
      emit env (Ir.Store_global { glb = g.Types.glb_id; src = named }))
    prog;
  (* run the program: apply the binding named [main], if any *)
  (match Hashtbl.find_opt ctx.globals "main" with
  | Some g ->
    let vm = fresh_tmp env t_object in
    emit env (Ir.Load_global { dst = vm; glb = g.Types.glb_id });
    let base = fun_class ctx 0 in
    let recv = fresh_var env "$mainrecv" (Ityp.Tclass (Types.class_name ctable base)) in
    emit env (Ir.Move { dst = recv; src = vm });
    let site = fresh_call_site env Loc.dummy_pos in
    emit env (Ir.Call { dst = None; kind = Ir.Virtual { recv; mname = "apply" }; args = []; site })
  | None -> ());
  let entry = finish_method env ~param_vars:[] ~this_var:None in
  ctx.lowered <- entry :: ctx.lowered;
  let n_methods = Types.method_count ctable in
  let methods = Array.make n_methods entry in
  List.iter (fun (m : Ir.meth) -> methods.(m.Ir.id) <- m) ctx.lowered;
  Array.iteri
    (fun i m ->
      if m.Ir.id <> i then
        invalid_arg (Printf.sprintf "Mf_lower: method id %d has no body (%s)" i m.Ir.pretty))
    methods;
  {
    Ir.ctable;
    methods;
    allocs = Array.of_list (List.rev ctx.allocs);
    calls = Array.of_list (List.rev ctx.call_sites);
    casts = [||];
    entry = Some entry.Ir.id;
    lang = Loc.Minifun;
  }

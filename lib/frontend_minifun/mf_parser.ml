(** Recursive-descent parser for MiniFun.

    Precedence, loosest to tightest: binders ([let]/[fun]/[if]/[match],
    extending maximally right), sequence [;] (right-associative),
    ref-assignment [:=] (right-associative), [||], [&&], comparisons
    (non-associative), additive, multiplicative, prefix operators
    ([!], [-], [not], [ref]), application [f(a, b)], atoms. *)

exception Error of string * Loc.pos

type state = { toks : (Mf_lexer.token * Loc.pos) array; mutable idx : int }

let peek st = fst st.toks.(st.idx)

let peek_pos st = snd st.toks.(st.idx)

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let err st msg = raise (Error (msg, peek_pos st))

let expect st tok =
  if peek st = tok then advance st
  else
    err st
      (Printf.sprintf "expected %s but found %s" (Mf_lexer.token_to_string tok)
         (Mf_lexer.token_to_string (peek st)))

let expect_ident st =
  match peek st with
  | Mf_lexer.IDENT name ->
    advance st;
    name
  | t -> err st (Printf.sprintf "expected an identifier but found %s" (Mf_lexer.token_to_string t))

let mk pos desc = { Mf_ast.desc; pos }

let rec parse_expr st : Mf_ast.expr =
  let pos = peek_pos st in
  match peek st with
  | Mf_lexer.LET ->
    advance st;
    let name = expect_ident st in
    expect st Mf_lexer.EQUAL;
    let rhs = parse_expr st in
    expect st Mf_lexer.IN;
    let body = parse_expr st in
    mk pos (Mf_ast.Let { name; rhs; body })
  | Mf_lexer.FUN ->
    advance st;
    let fname = match peek st with
      | Mf_lexer.IDENT name ->
        advance st;
        Some name
      | _ -> None
    in
    expect st Mf_lexer.LPAREN;
    let params = parse_params st in
    expect st Mf_lexer.RPAREN;
    expect st Mf_lexer.ARROW;
    let body = parse_expr st in
    mk pos (Mf_ast.Fun { fname; params; body })
  | Mf_lexer.IF ->
    advance st;
    let cond = parse_expr st in
    expect st Mf_lexer.THEN;
    let then_ = parse_expr st in
    expect st Mf_lexer.ELSE;
    let else_ = parse_expr st in
    mk pos (Mf_ast.If (cond, then_, else_))
  | Mf_lexer.MATCH ->
    advance st;
    let scrut = parse_expr st in
    expect st Mf_lexer.WITH;
    (match peek st with Mf_lexer.BAR -> advance st | _ -> ());
    expect st Mf_lexer.OK;
    expect st Mf_lexer.LPAREN;
    let ok_name = expect_ident st in
    expect st Mf_lexer.RPAREN;
    expect st Mf_lexer.ARROW;
    let ok_body = parse_expr st in
    expect st Mf_lexer.BAR;
    expect st Mf_lexer.ERR;
    expect st Mf_lexer.LPAREN;
    let err_name = expect_ident st in
    expect st Mf_lexer.RPAREN;
    expect st Mf_lexer.ARROW;
    let err_body = parse_expr st in
    expect st Mf_lexer.END;
    mk pos (Mf_ast.Match { scrut; ok_name; ok_body; err_name; err_body })
  | _ -> parse_seq st

and parse_params st =
  match peek st with
  | Mf_lexer.RPAREN -> []
  | _ ->
    let first = expect_ident st in
    let rec more acc =
      match peek st with
      | Mf_lexer.COMMA ->
        advance st;
        more (expect_ident st :: acc)
      | _ -> List.rev acc
    in
    more [ first ]

and parse_seq st =
  let pos = peek_pos st in
  let a = parse_assign st in
  match peek st with
  | Mf_lexer.SEMI ->
    advance st;
    let b = parse_expr st in
    mk pos (Mf_ast.Seq (a, b))
  | _ -> a

and parse_assign st =
  let pos = peek_pos st in
  let a = parse_or st in
  match peek st with
  | Mf_lexer.SETREF ->
    advance st;
    let b = parse_assign st in
    mk pos (Mf_ast.Setref (a, b))
  | _ -> a

and parse_or st =
  let pos = peek_pos st in
  let rec go acc =
    match peek st with
    | Mf_lexer.OROR ->
      advance st;
      go (mk pos (Mf_ast.Binop (Mf_ast.Or, acc, parse_and st)))
    | _ -> acc
  in
  go (parse_and st)

and parse_and st =
  let pos = peek_pos st in
  let rec go acc =
    match peek st with
    | Mf_lexer.ANDAND ->
      advance st;
      go (mk pos (Mf_ast.Binop (Mf_ast.And, acc, parse_cmp st)))
    | _ -> acc
  in
  go (parse_cmp st)

and parse_cmp st =
  let pos = peek_pos st in
  let a = parse_add st in
  let bin op =
    advance st;
    mk pos (Mf_ast.Binop (op, a, parse_add st))
  in
  match peek st with
  | Mf_lexer.EQEQ -> bin Mf_ast.Eq
  | Mf_lexer.NEQ -> bin Mf_ast.Neq
  | Mf_lexer.LT -> bin Mf_ast.Lt
  | Mf_lexer.GT -> bin Mf_ast.Gt
  | Mf_lexer.LE -> bin Mf_ast.Le
  | Mf_lexer.GE -> bin Mf_ast.Ge
  | _ -> a

and parse_add st =
  let pos = peek_pos st in
  let rec go acc =
    match peek st with
    | Mf_lexer.PLUS ->
      advance st;
      go (mk pos (Mf_ast.Binop (Mf_ast.Add, acc, parse_mul st)))
    | Mf_lexer.MINUS ->
      advance st;
      go (mk pos (Mf_ast.Binop (Mf_ast.Sub, acc, parse_mul st)))
    | _ -> acc
  in
  go (parse_mul st)

and parse_mul st =
  let pos = peek_pos st in
  let rec go acc =
    match peek st with
    | Mf_lexer.STAR ->
      advance st;
      go (mk pos (Mf_ast.Binop (Mf_ast.Mul, acc, parse_unary st)))
    | Mf_lexer.SLASH ->
      advance st;
      go (mk pos (Mf_ast.Binop (Mf_ast.Div, acc, parse_unary st)))
    | Mf_lexer.PERCENT ->
      advance st;
      go (mk pos (Mf_ast.Binop (Mf_ast.Mod, acc, parse_unary st)))
    | _ -> acc
  in
  go (parse_unary st)

and parse_unary st =
  let pos = peek_pos st in
  match peek st with
  | Mf_lexer.BANG ->
    advance st;
    mk pos (Mf_ast.Deref (parse_unary st))
  | Mf_lexer.MINUS ->
    advance st;
    mk pos (Mf_ast.Neg (parse_unary st))
  | Mf_lexer.NOT ->
    advance st;
    mk pos (Mf_ast.Not (parse_unary st))
  | Mf_lexer.REF ->
    advance st;
    mk pos (Mf_ast.Ref (parse_unary st))
  | _ -> parse_app st

and parse_app st =
  let e = parse_atom st in
  let rec go acc =
    match peek st with
    | Mf_lexer.LPAREN ->
      let pos = peek_pos st in
      advance st;
      let args = parse_args st in
      expect st Mf_lexer.RPAREN;
      go (mk pos (Mf_ast.App (acc, args)))
    | _ -> acc
  in
  go e

and parse_args st =
  match peek st with
  | Mf_lexer.RPAREN -> []
  | _ ->
    let first = parse_expr st in
    let rec more acc =
      match peek st with
      | Mf_lexer.COMMA ->
        advance st;
        more (parse_expr st :: acc)
      | _ -> List.rev acc
    in
    more [ first ]

and parse_atom st =
  let pos = peek_pos st in
  match peek st with
  | Mf_lexer.INT_LIT n ->
    advance st;
    mk pos (Mf_ast.Int_lit n)
  | Mf_lexer.STR_LIT s ->
    advance st;
    mk pos (Mf_ast.Str_lit s)
  | Mf_lexer.TRUE ->
    advance st;
    mk pos (Mf_ast.Bool_lit true)
  | Mf_lexer.FALSE ->
    advance st;
    mk pos (Mf_ast.Bool_lit false)
  | Mf_lexer.IDENT name ->
    advance st;
    mk pos (Mf_ast.Var name)
  | Mf_lexer.OK ->
    advance st;
    expect st Mf_lexer.LPAREN;
    let e = parse_expr st in
    expect st Mf_lexer.RPAREN;
    mk pos (Mf_ast.Ok_ e)
  | Mf_lexer.ERR ->
    advance st;
    expect st Mf_lexer.LPAREN;
    let e = parse_expr st in
    expect st Mf_lexer.RPAREN;
    mk pos (Mf_ast.Err_ e)
  | Mf_lexer.LPAREN -> (
    advance st;
    match peek st with
    | Mf_lexer.RPAREN ->
      advance st;
      mk pos Mf_ast.Unit
    | _ ->
      let e = parse_expr st in
      expect st Mf_lexer.RPAREN;
      e)
  | t -> err st (Printf.sprintf "unexpected %s" (Mf_lexer.token_to_string t))

let parse_program source : Mf_ast.program =
  let toks = Array.of_list (Mf_lexer.tokenize source) in
  let st = { toks; idx = 0 } in
  let rec go acc =
    match peek st with
    | Mf_lexer.EOF -> List.rev acc
    | Mf_lexer.LET ->
      let d_pos = peek_pos st in
      advance st;
      let d_name = expect_ident st in
      expect st Mf_lexer.EQUAL;
      let d_rhs = parse_expr st in
      expect st Mf_lexer.SEMISEMI;
      go ({ Mf_ast.d_name; d_rhs; d_pos } :: acc)
    | t ->
      err st
        (Printf.sprintf "expected a top-level 'let' binding but found %s"
           (Mf_lexer.token_to_string t))
  in
  go []

(** MiniFun pretty-printer.

    [program_to_string] emits concrete syntax that re-parses to an equal
    AST (the QCheck round-trip property pins this). Parenthesisation
    mirrors the parser's precedence ladder; binders are always wrapped
    when they appear in an operand position, which keeps the printer
    simple and the output unambiguous. *)

(* Precedence levels, loosest to tightest; an expression is printed with
   parens whenever its own level is looser than its context requires. *)
let lv_binder = 0 (* let/fun/if/match *)
let lv_seq = 1
let lv_assign = 2
let lv_or = 3
let lv_and = 4
let lv_cmp = 5
let lv_add = 6
let lv_mul = 7
let lv_unary = 8
let lv_app = 9
let lv_atom = 10

let level (e : Mf_ast.expr) =
  match e.desc with
  | Mf_ast.Let _ | Mf_ast.Fun _ | Mf_ast.If _ | Mf_ast.Match _ -> lv_binder
  | Mf_ast.Seq _ -> lv_seq
  | Mf_ast.Setref _ -> lv_assign
  | Mf_ast.Binop ((Mf_ast.Or : Mf_ast.binop), _, _) -> lv_or
  | Mf_ast.Binop (Mf_ast.And, _, _) -> lv_and
  | Mf_ast.Binop ((Mf_ast.Eq | Mf_ast.Neq | Mf_ast.Lt | Mf_ast.Gt | Mf_ast.Le | Mf_ast.Ge), _, _)
    ->
    lv_cmp
  | Mf_ast.Binop ((Mf_ast.Add | Mf_ast.Sub), _, _) -> lv_add
  | Mf_ast.Binop ((Mf_ast.Mul | Mf_ast.Div | Mf_ast.Mod), _, _) -> lv_mul
  | Mf_ast.Ref _ | Mf_ast.Deref _ | Mf_ast.Not _ | Mf_ast.Neg _ -> lv_unary
  | Mf_ast.App _ -> lv_app
  | Mf_ast.Unit | Mf_ast.Int_lit _ | Mf_ast.Bool_lit _ | Mf_ast.Str_lit _ | Mf_ast.Var _
  | Mf_ast.Ok_ _ | Mf_ast.Err_ _ ->
    lv_atom

let binop_str = function
  | Mf_ast.Add -> "+"
  | Mf_ast.Sub -> "-"
  | Mf_ast.Mul -> "*"
  | Mf_ast.Div -> "/"
  | Mf_ast.Mod -> "%"
  | Mf_ast.Eq -> "=="
  | Mf_ast.Neq -> "!="
  | Mf_ast.Lt -> "<"
  | Mf_ast.Gt -> ">"
  | Mf_ast.Le -> "<="
  | Mf_ast.Ge -> ">="
  | Mf_ast.And -> "&&"
  | Mf_ast.Or -> "||"

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf ~min (e : Mf_ast.expr) =
  let parens = level e < min in
  if parens then Buffer.add_char buf '(';
  (match e.desc with
  | Mf_ast.Unit -> Buffer.add_string buf "()"
  | Mf_ast.Int_lit n ->
    if n < 0 then Buffer.add_string buf (Printf.sprintf "(%d)" n)
    else Buffer.add_string buf (string_of_int n)
  | Mf_ast.Bool_lit b -> Buffer.add_string buf (string_of_bool b)
  | Mf_ast.Str_lit s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Mf_ast.Var x -> Buffer.add_string buf x
  | Mf_ast.Fun { fname; params; body } ->
    Buffer.add_string buf "fun ";
    (match fname with
    | Some n ->
      Buffer.add_string buf n;
      Buffer.add_char buf ' '
    | None -> ());
    Buffer.add_char buf '(';
    List.iteri
      (fun i p ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf p)
      params;
    Buffer.add_string buf ") -> ";
    emit buf ~min:lv_binder body
  | Mf_ast.App (f, args) ->
    (* the callee must be app-level or tighter: [f(x)(y)] round-trips *)
    emit buf ~min:lv_app f;
    Buffer.add_char buf '(';
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_string buf ", ";
        emit buf ~min:lv_binder a)
      args;
    Buffer.add_char buf ')'
  | Mf_ast.Let { name; rhs; body } ->
    Buffer.add_string buf "let ";
    Buffer.add_string buf name;
    Buffer.add_string buf " = ";
    emit buf ~min:lv_binder rhs;
    Buffer.add_string buf " in ";
    emit buf ~min:lv_binder body
  | Mf_ast.Seq (a, b) ->
    (* the head of a sequence must not swallow the tail: binders extend
       right, so a binder head needs parens *)
    emit buf ~min:lv_assign a;
    Buffer.add_string buf "; ";
    emit buf ~min:lv_seq b
  | Mf_ast.Ref x ->
    Buffer.add_string buf "ref ";
    emit buf ~min:lv_unary x
  | Mf_ast.Deref x ->
    Buffer.add_char buf '!';
    emit buf ~min:lv_unary x
  | Mf_ast.Setref (r, v) ->
    emit buf ~min:lv_or r;
    Buffer.add_string buf " := ";
    emit buf ~min:lv_assign v
  | Mf_ast.Ok_ x ->
    Buffer.add_string buf "Ok(";
    emit buf ~min:lv_binder x;
    Buffer.add_char buf ')'
  | Mf_ast.Err_ x ->
    Buffer.add_string buf "Err(";
    emit buf ~min:lv_binder x;
    Buffer.add_char buf ')'
  | Mf_ast.Match { scrut; ok_name; ok_body; err_name; err_body } ->
    Buffer.add_string buf "match ";
    emit buf ~min:lv_binder scrut;
    Buffer.add_string buf " with | Ok(";
    Buffer.add_string buf ok_name;
    Buffer.add_string buf ") -> ";
    emit buf ~min:lv_binder ok_body;
    Buffer.add_string buf " | Err(";
    Buffer.add_string buf err_name;
    Buffer.add_string buf ") -> ";
    emit buf ~min:lv_binder err_body;
    Buffer.add_string buf " end"
  | Mf_ast.If (c, t, f) ->
    Buffer.add_string buf "if ";
    emit buf ~min:lv_binder c;
    Buffer.add_string buf " then ";
    emit buf ~min:lv_binder t;
    Buffer.add_string buf " else ";
    emit buf ~min:lv_binder f
  | Mf_ast.Binop (op, a, b) ->
    let lv = level e in
    (* left-associative chains re-parse flat; comparisons are
       non-associative so both sides step down a level *)
    let lmin = match op with Mf_ast.Eq | Mf_ast.Neq | Mf_ast.Lt | Mf_ast.Gt | Mf_ast.Le | Mf_ast.Ge -> lv + 1 | _ -> lv in
    emit buf ~min:lmin a;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (binop_str op);
    Buffer.add_char buf ' ';
    emit buf ~min:(lv + 1) b
  | Mf_ast.Not x ->
    Buffer.add_string buf "not ";
    emit buf ~min:lv_unary x
  | Mf_ast.Neg x ->
    Buffer.add_string buf "-";
    emit buf ~min:lv_unary x);
  if parens then Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 256 in
  emit buf ~min:lv_binder e;
  Buffer.contents buf

let program_to_string (p : Mf_ast.program) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (d : Mf_ast.decl) ->
      Buffer.add_string buf "let ";
      Buffer.add_string buf d.Mf_ast.d_name;
      Buffer.add_string buf " = ";
      emit buf ~min:lv_binder d.Mf_ast.d_rhs;
      Buffer.add_string buf ";;\n")
    p;
  Buffer.contents buf

let equal_program = Mf_ast.equal_program

(** Abstract syntax of MiniJava, the frontend language of the reproduction.

    MiniJava covers the Java features that matter to a points-to analysis —
    classes with single inheritance, instance and static fields, virtual and
    static methods, constructors, object and array allocation, field loads
    and stores, casts, [null], and string literals — and parses a familiar
    Java-like concrete syntax. Arithmetic, booleans and control flow are
    parsed and type-checked but are irrelevant to the (flow-insensitive)
    analyses, exactly as in §2 of the paper. *)

(* Positions and types are re-exports of the frontend-agnostic IR core:
   MiniJava's surface types lower one-for-one, so the AST uses the IR's
   [Ityp.typ] directly (as transparent aliases — constructors coincide). *)

type pos = Loc.pos = { line : int; col : int }

let dummy_pos = Loc.dummy_pos

let pp_pos = Loc.pp_pos

type typ = Ityp.typ =
  | Tint
  | Tbool
  | Tvoid (* return type only *)
  | Tclass of string
  | Tarray of typ

let pp_typ = Ityp.pp_typ

let typ_equal = Ityp.typ_equal

type binop = Add | Sub | Mul | Div | Mod | Eq | Neq | Lt | Gt | Le | Ge | And | Or

type unop = Not | Neg

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Null
  | Int_lit of int
  | Bool_lit of bool
  | Str_lit of string
  | Ident of string (* local, parameter, field of [this], or class name (resolved later) *)
  | This
  | Field_access of expr * string
  | Array_index of expr * expr
  | New_object of string * expr list
  | New_array of typ * expr
  | Cast of typ * expr
  | Instanceof of expr * typ
  | Method_call of expr option * string * expr list
  | Super_call of string * expr list
      (** [super.m(args)]: statically dispatched to the superclass's
          implementation *)
  | Binop of binop * expr * expr
  | Unop of unop * expr

type stmt =
  | Local_decl of { typ : typ; name : string; init : expr option; pos : pos }
  | Assign of { lhs : expr; rhs : expr; pos : pos }
  | Expr_stmt of expr
  | Return of expr option * pos
  | If of expr * stmt list * stmt list * pos
  | While of expr * stmt list * pos
  | For of { init : stmt option; cond : expr option; step : stmt option; body : stmt list; pos : pos }
      (** [for (init; cond; step) body]; flow-insensitively, just its pieces *)
  | Block of stmt list

type method_decl = {
  m_static : bool;
  m_ret : typ;
  m_name : string;
  m_params : (typ * string) list;
  m_body : stmt list;
  m_pos : pos;
  m_is_ctor : bool;
}

type field_decl = {
  f_static : bool;
  f_typ : typ;
  f_name : string;
  f_init : expr option;
  f_pos : pos;
}

type class_decl = {
  c_name : string;
  c_super : string option;
  c_fields : field_decl list;
  c_methods : method_decl list;
  c_pos : pos;
}

type program = class_decl list

(** Names of classes every program implicitly knows (see {!Prelude}). *)
let object_class = Ityp.object_class

let string_class = Ityp.string_class

let null_class = Ityp.null_class (* pseudo-class of null pseudo-allocations *)

exception Error of string * Ast.pos

type state = {
  src : string;
  mutable idx : int;
  mutable line : int;
  mutable bol : int; (* index of beginning of current line *)
}

let pos st = { Ast.line = st.line; col = st.idx - st.bol + 1 }

let peek st = if st.idx < String.length st.src then Some st.src.[st.idx] else None

let peek2 st =
  if st.idx + 1 < String.length st.src then Some st.src.[st.idx + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.idx + 1
  | Some _ | None -> ());
  st.idx <- st.idx + 1

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || is_digit c

let keyword = function
  | "class" -> Some Token.CLASS
  | "extends" -> Some Token.EXTENDS
  | "static" -> Some Token.STATIC
  | "new" -> Some Token.NEW
  | "return" -> Some Token.RETURN
  | "if" -> Some Token.IF
  | "else" -> Some Token.ELSE
  | "while" -> Some Token.WHILE
  | "for" -> Some Token.FOR
  | "instanceof" -> Some Token.INSTANCEOF
  | "super" -> Some Token.SUPER
  | "this" -> Some Token.THIS
  | "null" -> Some Token.NULL
  | "true" -> Some Token.TRUE
  | "false" -> Some Token.FALSE
  | "int" -> Some Token.INT
  | "boolean" -> Some Token.BOOLEAN
  | "void" -> Some Token.VOID
  | _ -> None

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    let start = pos st in
    advance st;
    advance st;
    let rec to_close () =
      match peek st with
      | None -> raise (Error ("unterminated block comment", start))
      | Some '*' when peek2 st = Some '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_trivia st
  | Some _ | None -> ()

let lex_ident st =
  let start = st.idx in
  while match peek st with Some c -> is_ident_char c | None -> false do
    advance st
  done;
  String.sub st.src start (st.idx - start)

let lex_int st =
  let start = st.idx in
  while match peek st with Some c -> is_digit c | None -> false do
    advance st
  done;
  int_of_string (String.sub st.src start (st.idx - start))

let lex_string st =
  let start_pos = pos st in
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Error ("unterminated string literal", start_pos))
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        go ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        advance st;
        go ()
      | Some '\\' ->
        Buffer.add_char buf '\\';
        advance st;
        go ()
      | Some '"' ->
        Buffer.add_char buf '"';
        advance st;
        go ()
      | Some c -> raise (Error (Printf.sprintf "invalid escape '\\%c'" c, pos st))
      | None -> raise (Error ("unterminated string literal", start_pos)))
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let next_token st : Token.t * Ast.pos =
  skip_trivia st;
  let p = pos st in
  match peek st with
  | None -> (Token.EOF, p)
  | Some c when is_ident_start c ->
    let name = lex_ident st in
    let tok = match keyword name with Some kw -> kw | None -> Token.IDENT name in
    (tok, p)
  | Some c when is_digit c -> (Token.INT_LIT (lex_int st), p)
  | Some '"' -> (Token.STR_LIT (lex_string st), p)
  | Some c ->
    let simple tok =
      advance st;
      (tok, p)
    in
    let two_char ~second ~double ~single =
      advance st;
      if peek st = Some second then begin
        advance st;
        (double, p)
      end
      else (single, p)
    in
    (match c with
    | '{' -> simple Token.LBRACE
    | '}' -> simple Token.RBRACE
    | '(' -> simple Token.LPAREN
    | ')' -> simple Token.RPAREN
    | '[' -> simple Token.LBRACKET
    | ']' -> simple Token.RBRACKET
    | ';' -> simple Token.SEMI
    | ',' -> simple Token.COMMA
    | '.' -> simple Token.DOT
    | '+' -> simple Token.PLUS
    | '-' -> simple Token.MINUS
    | '*' -> simple Token.STAR
    | '/' -> simple Token.SLASH
    | '%' -> simple Token.PERCENT
    | '=' -> two_char ~second:'=' ~double:Token.EQ ~single:Token.ASSIGN
    | '!' -> two_char ~second:'=' ~double:Token.NEQ ~single:Token.BANG
    | '<' -> two_char ~second:'=' ~double:Token.LE ~single:Token.LT
    | '>' -> two_char ~second:'=' ~double:Token.GE ~single:Token.GT
    | '&' ->
      advance st;
      if peek st = Some '&' then begin
        advance st;
        (Token.ANDAND, p)
      end
      else raise (Error ("expected '&&'", p))
    | '|' ->
      advance st;
      if peek st = Some '|' then begin
        advance st;
        (Token.OROR, p)
      end
      else raise (Error ("expected '||'", p))
    | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, p)))

(* Comment texts with the position of the opening delimiter. A lenient
   side scanner for annotation extraction: it tracks string literals so a
   "//" inside one is not mistaken for a comment, but it never raises —
   unterminated literals or block comments simply end at EOF. *)
let comments src =
  let st = { src; idx = 0; line = 1; bol = 0 } in
  let acc = ref [] in
  let rec go () =
    match peek st with
    | None -> ()
    | Some '/' when peek2 st = Some '/' ->
      let p = pos st in
      advance st;
      advance st;
      let start = st.idx in
      let rec to_eol () =
        match peek st with Some '\n' | None -> () | Some _ -> advance st; to_eol ()
      in
      to_eol ();
      acc := (String.sub st.src start (st.idx - start), p) :: !acc;
      go ()
    | Some '/' when peek2 st = Some '*' ->
      let p = pos st in
      advance st;
      advance st;
      let start = st.idx in
      let rec to_close () =
        match peek st with
        | None -> st.idx - start
        | Some '*' when peek2 st = Some '/' ->
          let len = st.idx - start in
          advance st;
          advance st;
          len
        | Some _ ->
          advance st;
          to_close ()
      in
      let len = to_close () in
      acc := (String.sub st.src start len, p) :: !acc;
      go ()
    | Some '"' ->
      advance st;
      let rec to_quote () =
        match peek st with
        | None -> ()
        | Some '"' -> advance st
        | Some '\\' ->
          advance st;
          (match peek st with Some _ -> advance st | None -> ());
          to_quote ()
        | Some _ ->
          advance st;
          to_quote ()
      in
      to_quote ();
      go ()
    | Some _ ->
      advance st;
      go ()
  in
  go ();
  List.rev !acc

let tokenize src =
  let st = { src; idx = 0; line = 1; bol = 0 } in
  let rec go acc =
    let tok, p = next_token st in
    match tok with
    | Token.EOF -> List.rev ((Token.EOF, p) :: acc)
    | _ -> go ((tok, p) :: acc)
  in
  go []

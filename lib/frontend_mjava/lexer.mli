(** Hand-written lexer for MiniJava.

    Menhir/ocamllex are deliberately not used: the container has no menhir,
    and a direct lexer keeps the frontend dependency-free. Supports [//]
    line comments and [/* ... */] block comments, decimal integers, and
    double-quoted strings with backslash escapes (n, t, backslash, quote). *)

exception Error of string * Ast.pos

val tokenize : string -> (Token.t * Ast.pos) list
(** Whole-input tokenization, ending with [EOF]. @raise Error on an
    unexpected character, unterminated string or comment. *)

val comments : string -> (string * Ast.pos) list
(** Every comment's text paired with the position of its opening
    delimiter, in source order. String literals are skipped so a ["//"]
    inside one is not mistaken for a comment. Never raises: malformed
    input simply truncates at EOF. Used for checker annotations such as
    [// @taint-source]. *)

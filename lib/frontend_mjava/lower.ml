exception Error of string * Ast.pos

let err msg pos = raise (Error (msg, pos))

(* [null] has its own type during checking: assignable to any reference. *)
let null_typ = Ast.Tclass Ast.null_class

let is_reference = function
  | Ast.Tclass _ | Ast.Tarray _ -> true
  | Ast.Tint | Ast.Tbool | Ast.Tvoid -> false

type ctx = {
  ctable : Types.t;
  mutable allocs : Ir.alloc_site list; (* reversed *)
  mutable n_allocs : int;
  mutable call_sites : Ir.call_site list; (* reversed *)
  mutable n_calls : int;
  mutable casts : Ir.cast_site list; (* reversed *)
  mutable n_casts : int;
  mutable lowered : Ir.meth list; (* any order; indexed later by id *)
}

type menv = {
  ctx : ctx;
  cls : Types.cls;
  msig : Types.method_sig;
  this_var : Ir.var option;
  mutable scopes : (string, Ir.var * Ast.typ) Hashtbl.t list;
  mutable nvars : int;
  mutable names : string list; (* reversed *)
  mutable typs : Ast.typ list; (* reversed *)
  mutable code : Ir.instr list; (* reversed *)
  mutable depths : int list; (* reversed, parallel to code *)
  mutable loop_depth : int;
  mutable cond_depth : int;
}

let ctable env = env.ctx.ctable

let fresh_var env name typ =
  let v = env.nvars in
  env.nvars <- v + 1;
  env.names <- name :: env.names;
  env.typs <- typ :: env.typs;
  v

let fresh_tmp env typ = fresh_var env (Printf.sprintf "$t%d" env.nvars) typ

let emit env instr =
  env.code <- instr :: env.code;
  env.depths <- Ir.depth_pack ~loop:env.loop_depth ~cond:env.cond_depth :: env.depths

(* Statements under a loop (or branch) may run many times (or not at all);
   the recorded depth is what lets flow-sensitive consumers refuse to
   treat their definitions as killing ones. *)
let in_loop env f =
  env.loop_depth <- env.loop_depth + 1;
  let r = f () in
  env.loop_depth <- env.loop_depth - 1;
  r

let in_branch env f =
  env.cond_depth <- env.cond_depth + 1;
  let r = f () in
  env.cond_depth <- env.cond_depth - 1;
  r

let fresh_alloc_site env cls pos ~is_null =
  let site = env.ctx.n_allocs in
  env.ctx.n_allocs <- site + 1;
  env.ctx.allocs <-
    { Ir.site_id = site; alloc_cls = cls; alloc_meth = env.msig.Types.ms_id; alloc_pos = pos;
      alloc_is_null = is_null }
    :: env.ctx.allocs;
  site

let fresh_call_site env pos =
  let site = env.ctx.n_calls in
  env.ctx.n_calls <- site + 1;
  env.ctx.call_sites <-
    { Ir.cs_id = site; cs_meth = env.msig.Types.ms_id; cs_pos = pos } :: env.ctx.call_sites;
  site

let fresh_cast_site env ~target ~src ~dst ~trivial pos =
  let id = env.ctx.n_casts in
  env.ctx.n_casts <- id + 1;
  env.ctx.casts <-
    { Ir.cast_id = id; cast_meth = env.msig.Types.ms_id; cast_target = target; cast_src = src;
      cast_dst = dst; cast_pos = pos; cast_trivial = trivial }
    :: env.ctx.casts;
  id

(* Validate that a surface type only mentions declared classes. *)
let rec check_typ env typ pos =
  match typ with
  | Ast.Tint | Ast.Tbool | Ast.Tvoid -> ()
  | Ast.Tclass name ->
    if Types.find_class (ctable env) name = None then err (Printf.sprintf "unknown class %s" name) pos
  | Ast.Tarray elem ->
    check_typ env elem pos;
    if Ast.typ_equal elem Ast.Tvoid then err "array of void" pos

let assignable env ~src ~dst =
  if Ast.typ_equal src null_typ then is_reference dst else Types.subtype (ctable env) src dst

let check_assignable env ~src ~dst pos =
  if not (assignable env ~src ~dst) then
    err
      (Format.asprintf "type mismatch: cannot assign %a to %a" Ast.pp_typ src Ast.pp_typ dst)
      pos

let lookup_scopes env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> ( match Hashtbl.find_opt scope name with Some b -> Some b | None -> go rest)
  in
  go env.scopes

let declare_local env name typ pos =
  (match env.scopes with
  | scope :: _ ->
    if Hashtbl.mem scope name then err (Printf.sprintf "variable %s is already declared" name) pos
  | [] -> assert false);
  (match lookup_scopes env name with
  | Some _ -> err (Printf.sprintf "variable %s shadows an enclosing declaration" name) pos
  | None -> ());
  let v = fresh_var env name typ in
  (match env.scopes with scope :: _ -> Hashtbl.add scope name (v, typ) | [] -> assert false);
  v

let in_new_scope env f =
  env.scopes <- Hashtbl.create 8 :: env.scopes;
  let r = f () in
  (env.scopes <- match env.scopes with _ :: rest -> rest | [] -> assert false);
  r

let require_this env pos =
  match env.this_var with
  | Some v -> v
  | None -> err "cannot reference 'this' in a static method" pos

(* An identifier used as a receiver may denote a class name for static
   access; a plain identifier never does. *)
let class_receiver env (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Ident name when lookup_scopes env name = None -> (
    match Types.find_class (ctable env) name with
    | Some c when c <> Types.null_class (ctable env) -> Some c
    | Some _ | None -> None)
  | _ -> None

let class_of_reference env typ pos =
  match Types.class_of_typ (ctable env) typ with
  | Some c -> c
  | None -> err (Format.asprintf "expected an object but found a value of type %a" Ast.pp_typ typ) pos

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec lower_expr env (e : Ast.expr) : Ir.var * Ast.typ =
  let pos = e.Ast.pos in
  match e.Ast.desc with
  | Ast.Null ->
    let dst = fresh_tmp env null_typ in
    let site = fresh_alloc_site env (Types.null_class (ctable env)) pos ~is_null:true in
    emit env (Ir.Alloc { dst; cls = Types.null_class (ctable env); site });
    (dst, null_typ)
  | Ast.Int_lit _ -> (fresh_tmp env Ast.Tint, Ast.Tint)
  | Ast.Bool_lit _ -> (fresh_tmp env Ast.Tbool, Ast.Tbool)
  | Ast.Str_lit _ ->
    let typ = Ast.Tclass Ast.string_class in
    let dst = fresh_tmp env typ in
    let cls = Types.string_class (ctable env) in
    let site = fresh_alloc_site env cls pos ~is_null:false in
    emit env (Ir.Alloc { dst; cls; site });
    (dst, typ)
  | Ast.This ->
    let v = require_this env pos in
    (v, Ast.Tclass (Types.class_name (ctable env) env.cls))
  | Ast.Ident name -> lower_ident env name pos
  | Ast.Field_access (recv, fname) -> lower_field_load env recv fname pos
  | Ast.Array_index (arr, idx) ->
    let base, base_typ = lower_expr env arr in
    let _ = lower_int env idx in
    let elem =
      match base_typ with
      | Ast.Tarray elem -> elem
      | t -> err (Format.asprintf "cannot index a value of type %a" Ast.pp_typ t) pos
    in
    let dst = fresh_tmp env elem in
    emit env (Ir.Load { dst; base; fld = (Types.arr_field (ctable env)).Types.fld_id });
    (dst, elem)
  | Ast.New_object (cname, args) ->
    let cls = Types.find_class_exn (ctable env) cname pos in
    let typ = Ast.Tclass cname in
    let dst = fresh_tmp env typ in
    let site = fresh_alloc_site env cls pos ~is_null:false in
    emit env (Ir.Alloc { dst; cls; site });
    (match Types.constructor (ctable env) cls (List.length args) with
    | Some ctor ->
      let arg_vars = lower_args env args ctor.Types.ms_params pos in
      let call = fresh_call_site env pos in
      emit env (Ir.Call { dst = None; kind = Ir.Ctor { recv = dst; ctor }; args = arg_vars; site = call })
    | None ->
      err
        (Printf.sprintf "class %s has no %d-argument constructor" cname (List.length args))
        pos);
    (dst, typ)
  | Ast.New_array (elem, len) ->
    check_typ env elem pos;
    let _ = lower_int env len in
    let typ = Ast.Tarray elem in
    let cls = Types.array_class (ctable env) elem in
    let dst = fresh_tmp env typ in
    let site = fresh_alloc_site env cls pos ~is_null:false in
    emit env (Ir.Alloc { dst; cls; site });
    (dst, typ)
  | Ast.Cast (target, operand) ->
    check_typ env target pos;
    let src, src_typ = lower_expr env operand in
    if not (is_reference target) then begin
      (* primitive casts are identities in MiniJava *)
      if not (Ast.typ_equal target src_typ) then
        err (Format.asprintf "cannot cast %a to %a" Ast.pp_typ src_typ Ast.pp_typ target) pos;
      (src, target)
    end
    else begin
      if not (is_reference src_typ || Ast.typ_equal src_typ null_typ) then
        err (Format.asprintf "cannot cast %a to %a" Ast.pp_typ src_typ Ast.pp_typ target) pos;
      let trivial =
        Ast.typ_equal src_typ null_typ || Types.subtype (ctable env) src_typ target
      in
      let dst = fresh_tmp env target in
      let cast = fresh_cast_site env ~target ~src ~dst ~trivial pos in
      emit env (Ir.Cast_move { dst; src; cast });
      (dst, target)
    end
  | Ast.Instanceof (operand, target) ->
    check_typ env target pos;
    if not (is_reference target) then err "instanceof requires a reference type" pos;
    let _, t = lower_expr env operand in
    if not (is_reference t || Ast.typ_equal t null_typ) then
      err "operand of instanceof must be a reference" pos;
    (fresh_tmp env Ast.Tbool, Ast.Tbool)
  | Ast.Method_call (recv, mname, args) -> lower_call env recv mname args pos
  | Ast.Super_call (mname, args) -> lower_super_call env mname args pos
  | Ast.Binop (op, a, b) -> lower_binop env op a b pos
  | Ast.Unop (op, a) -> (
    match op with
    | Ast.Not ->
      let v, t = lower_expr env a in
      if not (Ast.typ_equal t Ast.Tbool) then err "operand of '!' must be boolean" pos;
      (v, Ast.Tbool)
    | Ast.Neg ->
      let v, t = lower_expr env a in
      if not (Ast.typ_equal t Ast.Tint) then err "operand of unary '-' must be int" pos;
      (v, Ast.Tint))

and lower_int env e =
  let v, t = lower_expr env e in
  if not (Ast.typ_equal t Ast.Tint) then
    err (Format.asprintf "expected int but found %a" Ast.pp_typ t) e.Ast.pos;
  v

and lower_binop env op a b pos =
  let va, ta = lower_expr env a in
  let _vb, tb = lower_expr env b in
  ignore va;
  let string_typ = Ast.Tclass Ast.string_class in
  match op with
  | Ast.Add when Ast.typ_equal ta string_typ && Ast.typ_equal tb string_typ ->
    (* string concatenation allocates a fresh String, as in Java *)
    let dst = fresh_tmp env string_typ in
    let cls = Types.string_class (ctable env) in
    let site = fresh_alloc_site env cls pos ~is_null:false in
    emit env (Ir.Alloc { dst; cls; site });
    (dst, string_typ)
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
    if not (Ast.typ_equal ta Ast.Tint && Ast.typ_equal tb Ast.Tint) then
      err "arithmetic operands must be int" pos;
    (fresh_tmp env Ast.Tint, Ast.Tint)
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge ->
    if not (Ast.typ_equal ta Ast.Tint && Ast.typ_equal tb Ast.Tint) then
      err "comparison operands must be int" pos;
    (fresh_tmp env Ast.Tbool, Ast.Tbool)
  | Ast.And | Ast.Or ->
    if not (Ast.typ_equal ta Ast.Tbool && Ast.typ_equal tb Ast.Tbool) then
      err "logical operands must be boolean" pos;
    (fresh_tmp env Ast.Tbool, Ast.Tbool)
  | Ast.Eq | Ast.Neq ->
    let both_int = Ast.typ_equal ta Ast.Tint && Ast.typ_equal tb Ast.Tint in
    let both_bool = Ast.typ_equal ta Ast.Tbool && Ast.typ_equal tb Ast.Tbool in
    let both_ref =
      (is_reference ta || Ast.typ_equal ta null_typ) && (is_reference tb || Ast.typ_equal tb null_typ)
    in
    if not (both_int || both_bool || both_ref) then err "incomparable operand types" pos;
    (fresh_tmp env Ast.Tbool, Ast.Tbool)

and lower_ident env name pos =
  match lookup_scopes env name with
  | Some (v, typ) -> (v, typ)
  | None -> (
    match Types.lookup_field (ctable env) env.cls name with
    | Some (`Instance f) ->
      let this = require_this env pos in
      let dst = fresh_tmp env f.Types.fld_typ in
      emit env (Ir.Load { dst; base = this; fld = f.Types.fld_id });
      (dst, f.Types.fld_typ)
    | Some (`Static g) ->
      let dst = fresh_tmp env g.Types.glb_typ in
      emit env (Ir.Load_global { dst; glb = g.Types.glb_id });
      (dst, g.Types.glb_typ)
    | None -> err (Printf.sprintf "unknown identifier %s" name) pos)

and lower_field_load env recv fname pos =
  match class_receiver env recv with
  | Some c -> (
    match Types.lookup_field (ctable env) c fname with
    | Some (`Static g) ->
      let dst = fresh_tmp env g.Types.glb_typ in
      emit env (Ir.Load_global { dst; glb = g.Types.glb_id });
      (dst, g.Types.glb_typ)
    | Some (`Instance _) ->
      err (Printf.sprintf "field %s.%s is not static" (Types.class_name (ctable env) c) fname) pos
    | None ->
      err (Printf.sprintf "unknown static field %s.%s" (Types.class_name (ctable env) c) fname) pos)
  | None -> (
    let base, base_typ = lower_expr env recv in
    match (base_typ, fname) with
    | Ast.Tarray _, "length" -> (fresh_tmp env Ast.Tint, Ast.Tint)
    | _ -> (
      let c = class_of_reference env base_typ pos in
      match Types.lookup_field (ctable env) c fname with
      | Some (`Instance f) ->
        let dst = fresh_tmp env f.Types.fld_typ in
        emit env (Ir.Load { dst; base; fld = f.Types.fld_id });
        (dst, f.Types.fld_typ)
      | Some (`Static g) ->
        let dst = fresh_tmp env g.Types.glb_typ in
        emit env (Ir.Load_global { dst; glb = g.Types.glb_id });
        (dst, g.Types.glb_typ)
      | None ->
        err
          (Printf.sprintf "class %s has no field %s" (Types.class_name (ctable env) c) fname)
          pos))

and lower_args env args params pos =
  if List.length args <> List.length params then
    err
      (Printf.sprintf "wrong number of arguments: expected %d, found %d" (List.length params)
         (List.length args))
      pos;
  List.map2
    (fun arg param_typ ->
      let v, t = lower_expr env arg in
      check_assignable env ~src:t ~dst:param_typ arg.Ast.pos;
      v)
    args params

and lower_call env recv mname args pos =
  let finish ~kind ~(target : Types.method_sig) =
    let arg_vars = lower_args env args target.Types.ms_params pos in
    let site = fresh_call_site env pos in
    let ret = target.Types.ms_ret in
    let dst = if Ast.typ_equal ret Ast.Tvoid then None else Some (fresh_tmp env ret) in
    emit env (Ir.Call { dst; kind = kind arg_vars; args = arg_vars; site });
    match dst with Some d -> (d, ret) | None -> (fresh_tmp env Ast.Tvoid, Ast.Tvoid)
  in
  let virtual_call recv_var target =
    finish ~kind:(fun _ -> Ir.Virtual { recv = recv_var; mname }) ~target
  in
  let static_call target = finish ~kind:(fun _ -> Ir.Static { target }) ~target in
  match recv with
  | Some r -> (
    match class_receiver env r with
    | Some c -> (
      match Types.lookup_method (ctable env) c mname with
      | Some target when target.Types.ms_static -> static_call target
      | Some _ ->
        err
          (Printf.sprintf "method %s.%s is not static" (Types.class_name (ctable env) c) mname)
          pos
      | None ->
        err (Printf.sprintf "unknown method %s.%s" (Types.class_name (ctable env) c) mname) pos)
    | None -> (
      let recv_var, recv_typ = lower_expr env r in
      let c = class_of_reference env recv_typ pos in
      match Types.lookup_method (ctable env) c mname with
      | Some target when target.Types.ms_static -> static_call target
      | Some target -> virtual_call recv_var target
      | None ->
        err (Printf.sprintf "class %s has no method %s" (Types.class_name (ctable env) c) mname) pos))
  | None -> (
    match Types.lookup_method (ctable env) env.cls mname with
    | Some target when target.Types.ms_static -> static_call target
    | Some target ->
      let this = require_this env pos in
      virtual_call this target
    | None ->
      err
        (Printf.sprintf "class %s has no method %s" (Types.class_name (ctable env) env.cls) mname)
        pos)

(* [super.m(args)]: statically bound to the superclass's implementation,
   with [this] as the receiver — lowered like a constructor invocation
   (the other statically-bound instance call). *)
and lower_super_call env mname args pos =
  let this = require_this env pos in
  let super_cls =
    match Types.super (ctable env) env.cls with
    | Some s -> s
    | None -> err "class has no superclass" pos
  in
  match Types.lookup_method (ctable env) super_cls mname with
  | Some target when not target.Types.ms_static ->
    let arg_vars = lower_args env args target.Types.ms_params pos in
    let site = fresh_call_site env pos in
    let ret = target.Types.ms_ret in
    let dst = if Ast.typ_equal ret Ast.Tvoid then None else Some (fresh_tmp env ret) in
    emit env (Ir.Call { dst; kind = Ir.Ctor { recv = this; ctor = target }; args = arg_vars; site });
    (match dst with Some d -> (d, ret) | None -> (fresh_tmp env Ast.Tvoid, Ast.Tvoid))
  | Some _ ->
    err (Printf.sprintf "super.%s is static" mname) pos
  | None ->
    err
      (Printf.sprintf "class %s has no method %s" (Types.class_name (ctable env) super_cls) mname)
      pos

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt env (s : Ast.stmt) =
  match s with
  | Ast.Local_decl { typ; name; init; pos } ->
    check_typ env typ pos;
    if Ast.typ_equal typ Ast.Tvoid then err "variable of type void" pos;
    let rhs =
      match init with
      | None -> None
      | Some e ->
        let v, t = lower_expr env e in
        check_assignable env ~src:t ~dst:typ pos;
        Some v
    in
    let dst = declare_local env name typ pos in
    (match rhs with Some src -> emit env (Ir.Move { dst; src }) | None -> ())
  | Ast.Assign { lhs; rhs; pos } -> lower_assign env lhs rhs pos
  | Ast.Expr_stmt e -> ignore (lower_expr env e)
  | Ast.Return (eo, pos) -> (
    let ret_typ = env.msig.Types.ms_ret in
    match eo with
    | None ->
      if not (Ast.typ_equal ret_typ Ast.Tvoid) then err "missing return value" pos;
      emit env (Ir.Return { src = None })
    | Some e ->
      if Ast.typ_equal ret_typ Ast.Tvoid then err "cannot return a value from a void method" pos;
      let v, t = lower_expr env e in
      check_assignable env ~src:t ~dst:ret_typ pos;
      emit env (Ir.Return { src = Some v }))
  | Ast.If (cond, then_, else_, pos) ->
    let _, t = lower_expr env cond in
    if not (Ast.typ_equal t Ast.Tbool) then err "condition must be boolean" pos;
    in_branch env (fun () ->
        in_new_scope env (fun () -> List.iter (lower_stmt env) then_);
        in_new_scope env (fun () -> List.iter (lower_stmt env) else_))
  | Ast.While (cond, body, pos) ->
    (* the condition re-executes each iteration, so its lowered
       instructions carry loop depth too *)
    in_loop env (fun () ->
        let _, t = lower_expr env cond in
        if not (Ast.typ_equal t Ast.Tbool) then err "condition must be boolean" pos;
        in_new_scope env (fun () -> List.iter (lower_stmt env) body))
  | Ast.For { init; cond; step; body; pos } ->
    (* the init declaration scopes over condition, step and body *)
    in_new_scope env (fun () ->
        (match init with Some s -> lower_stmt env s | None -> ());
        in_loop env (fun () ->
            (match cond with
            | Some c ->
              let _, t = lower_expr env c in
              if not (Ast.typ_equal t Ast.Tbool) then err "for condition must be boolean" pos
            | None -> ());
            in_new_scope env (fun () -> List.iter (lower_stmt env) body);
            match step with Some s -> lower_stmt env s | None -> ()))
  | Ast.Block body -> in_new_scope env (fun () -> List.iter (lower_stmt env) body)

and lower_assign env lhs rhs pos =
  match lhs.Ast.desc with
  | Ast.Ident name -> (
    match lookup_scopes env name with
    | Some (dst, dst_typ) ->
      let src, src_typ = lower_expr env rhs in
      check_assignable env ~src:src_typ ~dst:dst_typ pos;
      emit env (Ir.Move { dst; src })
    | None -> (
      match Types.lookup_field (ctable env) env.cls name with
      | Some (`Instance f) ->
        let this = require_this env pos in
        let src, src_typ = lower_expr env rhs in
        check_assignable env ~src:src_typ ~dst:f.Types.fld_typ pos;
        emit env (Ir.Store { base = this; fld = f.Types.fld_id; src })
      | Some (`Static g) ->
        let src, src_typ = lower_expr env rhs in
        check_assignable env ~src:src_typ ~dst:g.Types.glb_typ pos;
        emit env (Ir.Store_global { glb = g.Types.glb_id; src })
      | None -> err (Printf.sprintf "unknown identifier %s" name) pos))
  | Ast.Field_access (recv, fname) -> (
    match class_receiver env recv with
    | Some c -> (
      match Types.lookup_field (ctable env) c fname with
      | Some (`Static g) ->
        let src, src_typ = lower_expr env rhs in
        check_assignable env ~src:src_typ ~dst:g.Types.glb_typ pos;
        emit env (Ir.Store_global { glb = g.Types.glb_id; src })
      | Some (`Instance _) ->
        err (Printf.sprintf "field %s.%s is not static" (Types.class_name (ctable env) c) fname) pos
      | None ->
        err (Printf.sprintf "unknown static field %s.%s" (Types.class_name (ctable env) c) fname) pos)
    | None -> (
      let base, base_typ = lower_expr env recv in
      let c = class_of_reference env base_typ pos in
      match Types.lookup_field (ctable env) c fname with
      | Some (`Instance f) ->
        let src, src_typ = lower_expr env rhs in
        check_assignable env ~src:src_typ ~dst:f.Types.fld_typ pos;
        emit env (Ir.Store { base; fld = f.Types.fld_id; src })
      | Some (`Static g) ->
        let src, src_typ = lower_expr env rhs in
        check_assignable env ~src:src_typ ~dst:g.Types.glb_typ pos;
        emit env (Ir.Store_global { glb = g.Types.glb_id; src })
      | None ->
        err (Printf.sprintf "class %s has no field %s" (Types.class_name (ctable env) c) fname) pos))
  | Ast.Array_index (arr, idx) ->
    let base, base_typ = lower_expr env arr in
    let _ = lower_int env idx in
    let elem =
      match base_typ with
      | Ast.Tarray elem -> elem
      | t -> err (Format.asprintf "cannot index a value of type %a" Ast.pp_typ t) pos
    in
    let src, src_typ = lower_expr env rhs in
    check_assignable env ~src:src_typ ~dst:elem pos;
    emit env (Ir.Store { base; fld = (Types.arr_field (ctable env)).Types.fld_id; src })
  | _ -> err "left-hand side of assignment is not assignable" pos

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let clinit_name = "$clinit"
let entry_class_name = "$Entry"
let entry_method_name = "$entry"

(* Surface types must name declared classes; checked at declaration time
   so that even unused fields and signatures are validated. *)
let rec check_typ_decl ctable typ pos =
  match typ with
  | Ast.Tint | Ast.Tbool | Ast.Tvoid -> ()
  | Ast.Tclass name ->
    if Types.find_class ctable name = None then err (Printf.sprintf "unknown class %s" name) pos
  | Ast.Tarray elem ->
    check_typ_decl ctable elem pos;
    if Ast.typ_equal elem Ast.Tvoid then err "array of void" pos

(* Phase 1: declare every class, then supers, fields and method
   signatures, so that bodies can resolve anything in any order. *)
let declare_program ctable (prog : Ast.program) =
  List.iter (fun (c : Ast.class_decl) -> ignore (Types.declare_class ctable c.Ast.c_name c.Ast.c_pos)) prog;
  let obj =
    match Types.find_class ctable Ast.object_class with
    | Some c -> c
    | None -> err "prelude class Object is missing" Ast.dummy_pos
  in
  List.iter
    (fun (c : Ast.class_decl) ->
      let cid = Types.find_class_exn ctable c.Ast.c_name c.Ast.c_pos in
      match c.Ast.c_super with
      | Some s ->
        let sid = Types.find_class_exn ctable s c.Ast.c_pos in
        Types.set_super ctable cid sid c.Ast.c_pos
      | None -> if cid <> obj then Types.set_super ctable cid obj c.Ast.c_pos)
    prog;
  List.iter
    (fun (c : Ast.class_decl) ->
      let cid = Types.find_class_exn ctable c.Ast.c_name c.Ast.c_pos in
      List.iter
        (fun (f : Ast.field_decl) ->
          if Ast.typ_equal f.Ast.f_typ Ast.Tvoid then err "field of type void" f.Ast.f_pos;
          check_typ_decl ctable f.Ast.f_typ f.Ast.f_pos;
          if f.Ast.f_static then
            ignore (Types.add_global ctable cid ~name:f.Ast.f_name ~typ:f.Ast.f_typ f.Ast.f_pos)
          else ignore (Types.add_field ctable cid ~name:f.Ast.f_name ~typ:f.Ast.f_typ f.Ast.f_pos))
        c.Ast.c_fields;
      List.iter
        (fun (m : Ast.method_decl) ->
          check_typ_decl ctable m.Ast.m_ret m.Ast.m_pos;
          List.iter (fun (typ, _) -> check_typ_decl ctable typ m.Ast.m_pos) m.Ast.m_params;
          ignore
            (Types.add_method ctable cid ~name:m.Ast.m_name ~static:m.Ast.m_static
               ~is_ctor:m.Ast.m_is_ctor ~ret:m.Ast.m_ret
               ~params:(List.map fst m.Ast.m_params) m.Ast.m_pos))
        c.Ast.c_methods;
      (* Synthesise a default constructor signature when none is declared. *)
      if Types.constructors ctable cid = [] then
        ignore
          (Types.add_method ctable cid ~name:c.Ast.c_name ~static:false ~is_ctor:true
             ~ret:Ast.Tvoid ~params:[] c.Ast.c_pos))
    prog

let make_menv ctx cls (msig : Types.method_sig) =
  let env =
    { ctx; cls; msig; this_var = None; scopes = [ Hashtbl.create 8 ]; nvars = 0; names = [];
      typs = []; code = []; depths = []; loop_depth = 0; cond_depth = 0 }
  in
  env

let finish_method env ~param_vars ~this_var : Ir.meth =
  let names = Array.of_list (List.rev env.names) in
  let typs = Array.of_list (List.rev env.typs) in
  {
    Ir.id = env.msig.Types.ms_id;
    msig = env.msig;
    pretty = Types.method_pretty env.ctx.ctable env.msig;
    this_var;
    param_vars;
    body = List.rev env.code;
    nvars = env.nvars;
    var_names = names;
    var_types = typs;
    depths = Array.of_list (List.rev env.depths);
  }

(* Constructor prologue: implicit zero-argument superclass constructor
   call (when the superclass has one — MiniJava has no [super(...)] syntax,
   so parameterised superclass constructors are simply not chained), then
   instance field initialisers. *)
let emit_ctor_prologue env (cdecl : Ast.class_decl) =
  let ctable = ctable env in
  let this = match env.this_var with Some v -> v | None -> assert false in
  (match Types.super ctable env.cls with
  | Some s -> (
    match Types.constructor ctable s 0 with
    | Some ctor ->
      let site = fresh_call_site env cdecl.Ast.c_pos in
      emit env (Ir.Call { dst = None; kind = Ir.Ctor { recv = this; ctor }; args = []; site })
    | None -> ())
  | None -> ());
  List.iter
    (fun (f : Ast.field_decl) ->
      match f.Ast.f_init with
      | Some init when not f.Ast.f_static ->
        let fi =
          match Types.lookup_field ctable env.cls f.Ast.f_name with
          | Some (`Instance fi) -> fi
          | Some (`Static _) | None -> assert false
        in
        let src, src_typ = lower_expr env init in
        check_assignable env ~src:src_typ ~dst:fi.Types.fld_typ f.Ast.f_pos;
        emit env (Ir.Store { base = this; fld = fi.Types.fld_id; src })
      | Some _ | None -> ())
    cdecl.Ast.c_fields

let lower_method ctx cls (cdecl : Ast.class_decl) (msig : Types.method_sig)
    (mdecl : Ast.method_decl option) : Ir.meth =
  let env = make_menv ctx cls msig in
  let this_var =
    if msig.Types.ms_static then None
    else Some (fresh_var env "this" (Ast.Tclass (Types.class_name ctx.ctable cls)))
  in
  let env = { env with this_var } in
  let param_vars =
    match mdecl with
    | Some m ->
      List.map
        (fun (typ, name) ->
          check_typ env typ m.Ast.m_pos;
          declare_local env name typ m.Ast.m_pos)
        m.Ast.m_params
    | None -> []
  in
  check_typ env msig.Types.ms_ret cdecl.Ast.c_pos;
  if msig.Types.ms_is_ctor then emit_ctor_prologue env cdecl;
  (match mdecl with
  | Some m -> List.iter (lower_stmt env) m.Ast.m_body
  | None -> ());
  finish_method env ~param_vars ~this_var

(* The per-class static initialiser, holding lowered static field
   initialisers. Only created for classes that need one. *)
let lower_clinit ctx cls (cdecl : Ast.class_decl) : Ir.meth option =
  let inits =
    List.filter (fun (f : Ast.field_decl) -> f.Ast.f_static && f.Ast.f_init <> None) cdecl.Ast.c_fields
  in
  if inits = [] then None
  else begin
    let msig =
      Types.add_method ctx.ctable cls ~name:clinit_name ~static:true ~is_ctor:false ~ret:Ast.Tvoid
        ~params:[] cdecl.Ast.c_pos
    in
    let env = make_menv ctx cls msig in
    List.iter
      (fun (f : Ast.field_decl) ->
        let g =
          match Types.lookup_field ctx.ctable cls f.Ast.f_name with
          | Some (`Static g) -> g
          | Some (`Instance _) | None -> assert false
        in
        match f.Ast.f_init with
        | Some init ->
          let src, src_typ = lower_expr env init in
          check_assignable env ~src:src_typ ~dst:g.Types.glb_typ f.Ast.f_pos;
          emit env (Ir.Store_global { glb = g.Types.glb_id; src })
        | None -> ())
      inits;
    Some (finish_method env ~param_vars:[] ~this_var:None)
  end

let find_main ctable =
  let candidates =
    List.filter_map
      (fun c ->
        match Types.lookup_method ctable c "main" with
        | Some ms when ms.Types.ms_static && ms.Types.ms_params = [] && ms.Types.ms_class = c ->
          Some ms
        | Some _ | None -> None)
      (Types.classes ctable)
  in
  let in_main_class =
    List.find_opt (fun ms -> Types.class_name ctable ms.Types.ms_class = "Main") candidates
  in
  match in_main_class with Some ms -> Some ms | None -> ( match candidates with ms :: _ -> Some ms | [] -> None)

(* Synthesised program root: runs every $clinit, then main if present. *)
let lower_entry ctx ~clinits =
  let cls = Types.declare_class ctx.ctable entry_class_name Ast.dummy_pos in
  (match Types.find_class ctx.ctable Ast.object_class with
  | Some obj -> Types.set_super ctx.ctable cls obj Ast.dummy_pos
  | None -> ());
  let msig =
    Types.add_method ctx.ctable cls ~name:entry_method_name ~static:true ~is_ctor:false
      ~ret:Ast.Tvoid ~params:[] Ast.dummy_pos
  in
  let env = make_menv ctx cls msig in
  List.iter
    (fun (clinit : Types.method_sig) ->
      let site = fresh_call_site env Ast.dummy_pos in
      emit env (Ir.Call { dst = None; kind = Ir.Static { target = clinit }; args = []; site }))
    clinits;
  (match find_main ctx.ctable with
  | Some main ->
    let site = fresh_call_site env Ast.dummy_pos in
    emit env (Ir.Call { dst = None; kind = Ir.Static { target = main }; args = []; site })
  | None -> ());
  finish_method env ~param_vars:[] ~this_var:None

let lower_program (prog : Ast.program) : Ir.program =
  let ctable = Types.create () in
  declare_program ctable prog;
  let ctx =
    { ctable; allocs = []; n_allocs = 0; call_sites = []; n_calls = 0; casts = []; n_casts = 0;
      lowered = [] }
  in
  let clinits = ref [] in
  List.iter
    (fun (cdecl : Ast.class_decl) ->
      let cls = Types.find_class_exn ctable cdecl.Ast.c_name cdecl.Ast.c_pos in
      (* explicit methods and constructors *)
      List.iter
        (fun (mdecl : Ast.method_decl) ->
          let msig =
            match
              if mdecl.Ast.m_is_ctor then
                Types.constructor ctable cls (List.length mdecl.Ast.m_params)
              else Types.lookup_method ctable cls mdecl.Ast.m_name
            with
            | Some ms when ms.Types.ms_class = cls -> ms
            | Some _ | None -> assert false
          in
          ctx.lowered <- lower_method ctx cls cdecl msig (Some mdecl) :: ctx.lowered)
        cdecl.Ast.c_methods;
      (* synthesised default constructor *)
      (match Types.constructor ctable cls 0 with
      | Some ms when not (List.exists (fun (m : Ast.method_decl) -> m.Ast.m_is_ctor) cdecl.Ast.c_methods)
        -> ctx.lowered <- lower_method ctx cls cdecl ms None :: ctx.lowered
      | Some _ | None -> ());
      (* static initialiser *)
      match lower_clinit ctx cls cdecl with
      | Some m ->
        clinits := m.Ir.msig :: !clinits;
        ctx.lowered <- m :: ctx.lowered
      | None -> ())
    prog;
  let entry = lower_entry ctx ~clinits:(List.rev !clinits) in
  ctx.lowered <- entry :: ctx.lowered;
  let n_methods = Types.method_count ctable in
  let dummy = entry in
  let methods = Array.make n_methods dummy in
  List.iter (fun (m : Ir.meth) -> methods.(m.Ir.id) <- m) ctx.lowered;
  (* Every declared signature must have been lowered. *)
  Array.iteri
    (fun i m ->
      if m.Ir.id <> i then
        invalid_arg (Printf.sprintf "Lower: method id %d has no body (%s)" i m.Ir.pretty))
    methods;
  {
    Ir.ctable;
    methods;
    allocs = Array.of_list (List.rev ctx.allocs);
    calls = Array.of_list (List.rev ctx.call_sites);
    casts = Array.of_list (List.rev ctx.casts);
    entry = Some entry.Ir.id;
    lang = Loc.Mjava;
  }

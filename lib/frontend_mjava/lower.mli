(** Semantic analysis and lowering of MiniJava to the three-address {!Ir}.

    This pass performs all name resolution and type checking (class
    hierarchy well-formedness, duplicate declarations, assignability, call
    arity, l-value shapes) and simultaneously flattens expressions into IR
    instructions over fresh temporaries.

    Lowering also synthesises the glue a JVM provides implicitly:
    - a default constructor for every class without an explicit one (which
      runs the implicit superclass constructor and instance field
      initialisers; explicit constructors get the same prologue),
    - a [$clinit] static initialiser per class with initialised static
      fields,
    - a [$Entry.$entry] root method that invokes all [$clinit]s and then
      [main], used as the call-graph root. [main] is any 0-argument static
      method named [main]; the one in class [Main] wins if several exist. *)

exception Error of string * Ast.pos

val lower_program : Ast.program -> Ir.program
(** @raise Error on the first semantic error. *)

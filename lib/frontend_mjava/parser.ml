exception Error of string * Ast.pos

type state = { toks : (Token.t * Ast.pos) array; mutable cur : int }

let peek st = fst st.toks.(st.cur)

let peek_at st n =
  let i = st.cur + n in
  if i < Array.length st.toks then fst st.toks.(i) else Token.EOF

let pos st = snd st.toks.(st.cur)

let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1

let error st msg = raise (Error (msg, pos st))

let expect st tok =
  if Token.equal (peek st) tok then advance st
  else error st (Printf.sprintf "expected %s but found %s" (Token.to_string tok) (Token.to_string (peek st)))

let expect_ident st =
  match peek st with
  | Token.IDENT name ->
    advance st;
    name
  | t -> error st (Printf.sprintf "expected identifier but found %s" (Token.to_string t))

let accept st tok =
  if Token.equal (peek st) tok then begin
    advance st;
    true
  end
  else false

(* type := (int | boolean | void | Ident) ('[' ']')* *)
let rec finish_array_type st base =
  if Token.equal (peek st) Token.LBRACKET && Token.equal (peek_at st 1) Token.RBRACKET then begin
    advance st;
    advance st;
    finish_array_type st (Ast.Tarray base)
  end
  else base

let parse_type st =
  let base =
    match peek st with
    | Token.INT ->
      advance st;
      Ast.Tint
    | Token.BOOLEAN ->
      advance st;
      Ast.Tbool
    | Token.VOID ->
      advance st;
      Ast.Tvoid
    | Token.IDENT name ->
      advance st;
      Ast.Tclass name
    | t -> error st (Printf.sprintf "expected a type but found %s" (Token.to_string t))
  in
  finish_array_type st base

(* A token that may begin a unary expression; used to disambiguate casts. *)
let starts_expr = function
  | Token.IDENT _ | Token.INT_LIT _ | Token.STR_LIT _ | Token.NEW | Token.THIS | Token.NULL
  | Token.TRUE | Token.FALSE | Token.LPAREN | Token.BANG | Token.MINUS ->
    true
  | _ -> false

let mk p desc = { Ast.desc; pos = p }

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept st Token.OROR then
    let rhs = parse_or st in
    mk lhs.Ast.pos (Ast.Binop (Ast.Or, lhs, rhs))
  else lhs

and parse_and st =
  let lhs = parse_equality st in
  if accept st Token.ANDAND then
    let rhs = parse_and st in
    mk lhs.Ast.pos (Ast.Binop (Ast.And, lhs, rhs))
  else lhs

and parse_equality st =
  let lhs = parse_relational st in
  match peek st with
  | Token.EQ ->
    advance st;
    let rhs = parse_relational st in
    mk lhs.Ast.pos (Ast.Binop (Ast.Eq, lhs, rhs))
  | Token.NEQ ->
    advance st;
    let rhs = parse_relational st in
    mk lhs.Ast.pos (Ast.Binop (Ast.Neq, lhs, rhs))
  | _ -> lhs

and parse_relational st =
  let lhs = parse_additive st in
  let op =
    match peek st with
    | Token.LT -> Some Ast.Lt
    | Token.GT -> Some Ast.Gt
    | Token.LE -> Some Ast.Le
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None ->
    if accept st Token.INSTANCEOF then begin
      let typ = parse_type st in
      mk lhs.Ast.pos (Ast.Instanceof (lhs, typ))
    end
    else lhs
  | Some op ->
    advance st;
    let rhs = parse_additive st in
    mk lhs.Ast.pos (Ast.Binop (op, lhs, rhs))

and parse_additive st =
  let rec loop lhs =
    match peek st with
    | Token.PLUS ->
      advance st;
      loop (mk lhs.Ast.pos (Ast.Binop (Ast.Add, lhs, parse_multiplicative st)))
    | Token.MINUS ->
      advance st;
      loop (mk lhs.Ast.pos (Ast.Binop (Ast.Sub, lhs, parse_multiplicative st)))
    | _ -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    match peek st with
    | Token.STAR ->
      advance st;
      loop (mk lhs.Ast.pos (Ast.Binop (Ast.Mul, lhs, parse_unary st)))
    | Token.SLASH ->
      advance st;
      loop (mk lhs.Ast.pos (Ast.Binop (Ast.Div, lhs, parse_unary st)))
    | Token.PERCENT ->
      advance st;
      loop (mk lhs.Ast.pos (Ast.Binop (Ast.Mod, lhs, parse_unary st)))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  let p = pos st in
  match peek st with
  | Token.BANG ->
    advance st;
    mk p (Ast.Unop (Ast.Not, parse_unary st))
  | Token.MINUS ->
    advance st;
    mk p (Ast.Unop (Ast.Neg, parse_unary st))
  | Token.LPAREN when is_cast st -> begin
    advance st;
    let typ = parse_type st in
    expect st Token.RPAREN;
    let operand = parse_unary st in
    mk p (Ast.Cast (typ, operand))
  end
  | _ -> parse_postfix st

(* Look ahead from an LPAREN to decide cast vs parenthesised expression.
   '(' int/boolean ... ')' is always a cast; '(' Ident ')' is a cast only if
   followed by an expression starter other than an operator; '(' Ident '[' ']'
   ... ')' is a cast. *)
and is_cast st =
  match peek_at st 1 with
  | Token.INT | Token.BOOLEAN -> true
  | Token.IDENT _ -> (
    (* scan over Ident ('[' ']')* and require ')' then an expression start *)
    let i = ref 2 in
    while
      Token.equal (peek_at st !i) Token.LBRACKET && Token.equal (peek_at st (!i + 1)) Token.RBRACKET
    do
      i := !i + 2
    done;
    match peek_at st !i with
    | Token.RPAREN ->
      if !i > 2 then true (* array type: must be a cast *)
      else starts_expr (peek_at st (!i + 1)) && not (Token.equal (peek_at st (!i + 1)) Token.MINUS)
    | _ -> false)
  | _ -> false

and parse_postfix st =
  let rec loop recv =
    match peek st with
    | Token.DOT -> begin
      advance st;
      let name = expect_ident st in
      if Token.equal (peek st) Token.LPAREN then begin
        let args = parse_args st in
        loop (mk recv.Ast.pos (Ast.Method_call (Some recv, name, args)))
      end
      else loop (mk recv.Ast.pos (Ast.Field_access (recv, name)))
    end
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      loop (mk recv.Ast.pos (Ast.Array_index (recv, idx)))
    | _ -> recv
  in
  loop (parse_primary st)

and parse_args st =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if accept st Token.COMMA then go (e :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st =
  let p = pos st in
  match peek st with
  | Token.NULL ->
    advance st;
    mk p Ast.Null
  | Token.THIS ->
    advance st;
    mk p Ast.This
  | Token.TRUE ->
    advance st;
    mk p (Ast.Bool_lit true)
  | Token.FALSE ->
    advance st;
    mk p (Ast.Bool_lit false)
  | Token.INT_LIT n ->
    advance st;
    mk p (Ast.Int_lit n)
  | Token.STR_LIT s ->
    advance st;
    mk p (Ast.Str_lit s)
  | Token.NEW -> begin
    advance st;
    match peek st with
    | Token.INT | Token.BOOLEAN ->
      let elem =
        if accept st Token.INT then Ast.Tint
        else begin
          expect st Token.BOOLEAN;
          Ast.Tbool
        end
      in
      parse_new_array st p elem
    | Token.IDENT name ->
      advance st;
      if Token.equal (peek st) Token.LPAREN then begin
        let args = parse_args st in
        mk p (Ast.New_object (name, args))
      end
      else parse_new_array st p (Ast.Tclass name)
    | t -> error st (Printf.sprintf "expected a type after 'new' but found %s" (Token.to_string t))
  end
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | Token.SUPER ->
    advance st;
    expect st Token.DOT;
    let name = expect_ident st in
    let args = parse_args st in
    mk p (Ast.Super_call (name, args))
  | Token.IDENT name ->
    advance st;
    if Token.equal (peek st) Token.LPAREN then
      (* unqualified call: receiver resolved during lowering *)
      let args = parse_args st in
      mk p (Ast.Method_call (None, name, args))
    else mk p (Ast.Ident name)
  | t -> error st (Printf.sprintf "expected an expression but found %s" (Token.to_string t))

(* new T [ e ] ( '[' ']' )*  — multi-dimensional allocation allocates the
   outermost dimension only, as in Java's 'new T[n][]'. *)
and parse_new_array st p elem =
  expect st Token.LBRACKET;
  let len = parse_expr st in
  expect st Token.RBRACKET;
  let elem = finish_array_type st elem in
  mk p (Ast.New_array (elem, len))

let is_decl_start st =
  match peek st with
  | Token.INT | Token.BOOLEAN -> true
  | Token.IDENT _ -> (
    match peek_at st 1 with
    | Token.IDENT _ -> true
    | Token.LBRACKET -> Token.equal (peek_at st 2) Token.RBRACKET
    | _ -> false)
  | _ -> false

let rec parse_stmt st : Ast.stmt =
  let p = pos st in
  match peek st with
  | Token.LBRACE ->
    advance st;
    let body = parse_stmts_until_rbrace st in
    Ast.Block body
  | Token.RETURN ->
    advance st;
    if accept st Token.SEMI then Ast.Return (None, p)
    else begin
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.Return (Some e, p)
    end
  | Token.IF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let then_ = parse_block_or_stmt st in
    let else_ = if accept st Token.ELSE then parse_block_or_stmt st else [] in
    Ast.If (cond, then_, else_, p)
  | Token.WHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let body = parse_block_or_stmt st in
    Ast.While (cond, body, p)
  | Token.FOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if accept st Token.SEMI then None
      else begin
        let s = parse_simple_stmt st in
        expect st Token.SEMI;
        Some s
      end
    in
    let cond = if Token.equal (peek st) Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    let step = if Token.equal (peek st) Token.RPAREN then None else Some (parse_simple_stmt st) in
    expect st Token.RPAREN;
    let body = parse_block_or_stmt st in
    Ast.For { init; cond; step; body; pos = p }
  | _ when is_decl_start st ->
    let typ = parse_type st in
    let name = expect_ident st in
    let init = if accept st Token.ASSIGN then Some (parse_expr st) else None in
    expect st Token.SEMI;
    Ast.Local_decl { typ; name; init; pos = p }
  | _ ->
    let e = parse_expr st in
    if accept st Token.ASSIGN then begin
      let rhs = parse_expr st in
      expect st Token.SEMI;
      (match e.Ast.desc with
      | Ast.Ident _ | Ast.Field_access _ | Ast.Array_index _ -> ()
      | _ -> raise (Error ("left-hand side of assignment is not assignable", p)));
      Ast.Assign { lhs = e; rhs; pos = p }
    end
    else begin
      expect st Token.SEMI;
      Ast.Expr_stmt e
    end

(* declaration, assignment or expression — without the trailing ';'
   (the headers of a for loop) *)
and parse_simple_stmt st : Ast.stmt =
  let p = pos st in
  if is_decl_start st then begin
    let typ = parse_type st in
    let name = expect_ident st in
    let init = if accept st Token.ASSIGN then Some (parse_expr st) else None in
    Ast.Local_decl { typ; name; init; pos = p }
  end
  else begin
    let e = parse_expr st in
    if accept st Token.ASSIGN then begin
      let rhs = parse_expr st in
      (match e.Ast.desc with
      | Ast.Ident _ | Ast.Field_access _ | Ast.Array_index _ -> ()
      | _ -> raise (Error ("left-hand side of assignment is not assignable", p)));
      Ast.Assign { lhs = e; rhs; pos = p }
    end
    else Ast.Expr_stmt e
  end

and parse_block_or_stmt st =
  if Token.equal (peek st) Token.LBRACE then begin
    advance st;
    parse_stmts_until_rbrace st
  end
  else [ parse_stmt st ]

and parse_stmts_until_rbrace st =
  let rec go acc =
    if accept st Token.RBRACE then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

let parse_params st =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then []
  else begin
    let rec go acc =
      let typ = parse_type st in
      let name = expect_ident st in
      if accept st Token.COMMA then go ((typ, name) :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev ((typ, name) :: acc)
      end
    in
    go []
  end

let parse_member st ~class_name : [ `Field of Ast.field_decl | `Method of Ast.method_decl ] =
  let p = pos st in
  let is_static = accept st Token.STATIC in
  (* Constructor: Ident '(' where Ident is the class name. *)
  match peek st with
  | Token.IDENT name when (not is_static) && name = class_name && Token.equal (peek_at st 1) Token.LPAREN ->
    advance st;
    let params = parse_params st in
    expect st Token.LBRACE;
    let body = parse_stmts_until_rbrace st in
    `Method
      {
        Ast.m_static = false;
        m_ret = Ast.Tvoid;
        m_name = name;
        m_params = params;
        m_body = body;
        m_pos = p;
        m_is_ctor = true;
      }
  | _ ->
    let typ = parse_type st in
    let name = expect_ident st in
    if Token.equal (peek st) Token.LPAREN then begin
      let params = parse_params st in
      expect st Token.LBRACE;
      let body = parse_stmts_until_rbrace st in
      `Method
        {
          Ast.m_static = is_static;
          m_ret = typ;
          m_name = name;
          m_params = params;
          m_body = body;
          m_pos = p;
          m_is_ctor = false;
        }
    end
    else begin
      let init = if accept st Token.ASSIGN then Some (parse_expr st) else None in
      expect st Token.SEMI;
      `Field { Ast.f_static = is_static; f_typ = typ; f_name = name; f_init = init; f_pos = p }
    end

let parse_class st : Ast.class_decl =
  let p = pos st in
  expect st Token.CLASS;
  let name = expect_ident st in
  let super = if accept st Token.EXTENDS then Some (expect_ident st) else None in
  expect st Token.LBRACE;
  let fields = ref [] in
  let methods = ref [] in
  let rec members () =
    if accept st Token.RBRACE then ()
    else begin
      (match parse_member st ~class_name:name with
      | `Field f -> fields := f :: !fields
      | `Method m -> methods := m :: !methods);
      members ()
    end
  in
  members ();
  {
    Ast.c_name = name;
    c_super = super;
    c_fields = List.rev !fields;
    c_methods = List.rev !methods;
    c_pos = p;
  }

let with_state src f =
  let toks =
    try Array.of_list (Lexer.tokenize src)
    with Lexer.Error (msg, p) -> raise (Error ("lexical error: " ^ msg, p))
  in
  f { toks; cur = 0 }

let parse_program src =
  with_state src (fun st ->
      let rec go acc =
        match peek st with
        | Token.EOF -> List.rev acc
        | Token.CLASS -> go (parse_class st :: acc)
        | t -> error st (Printf.sprintf "expected 'class' but found %s" (Token.to_string t))
      in
      go [])

let parse_expr_string src =
  with_state src (fun st ->
      let e = parse_expr st in
      expect st Token.EOF;
      e)

(** Recursive-descent parser for MiniJava.

    Standard precedence-climbing expression grammar; the two classic
    Java ambiguities are resolved as javac does:
    - [(C) e] is a cast when the parenthesised name is followed by a token
      that can begin a unary expression; otherwise it is a parenthesised
      expression,
    - [T x ...] at statement position is a declaration when an identifier
      is followed by another identifier or by [\[\]]. *)

exception Error of string * Ast.pos

val parse_program : string -> Ast.program
(** Parse a whole compilation unit. @raise Error with a message and source
    position on the first syntax error. *)

val parse_expr_string : string -> Ast.expr
(** Parse a single expression (used by unit tests). *)

(** The implicit classes every MiniJava program knows, playing the role of
    the JDK classes the paper's benchmarks link against. The prelude is
    ordinary MiniJava source, parsed and lowered together with the user
    program so the analyses see its code like any other. *)

let source =
  {|
class Object {
  Object() {}
  boolean equals(Object other) { return this == other; }
  int hashCode() { return 0; }
  String toString() { return "Object"; }
}

class String extends Object {
  String() {}
  int length() { return 0; }
  String concat(String other) { return this; }
}

class Integer extends Object {
  int value;
  Integer(int v) { this.value = v; }
  int intValue() { return this.value; }
}

class Boolean extends Object {
  boolean value;
  Boolean(boolean v) { this.value = v; }
  boolean booleanValue() { return this.value; }
}
|}

let ast : Ast.program Lazy.t = lazy (Parser.parse_program source)

let class_names = [ "Object"; "String"; "Integer"; "Boolean" ]

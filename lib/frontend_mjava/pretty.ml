let typ_to_string t = Format.asprintf "%a" Ast.pp_typ t

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "=="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Gt -> ">"
  | Ast.Le -> "<="
  | Ast.Ge -> ">="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Everything is parenthesised defensively: the goal is a faithful
   round-trip, not minimal parentheses. *)
let rec expr_to_string (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Null -> "null"
  | Ast.Int_lit n -> string_of_int n
  | Ast.Bool_lit b -> string_of_bool b
  | Ast.Str_lit s -> "\"" ^ escape_string s ^ "\""
  | Ast.Ident x -> x
  | Ast.This -> "this"
  | Ast.Field_access (r, f) -> receiver r ^ "." ^ f
  | Ast.Array_index (a, i) -> receiver a ^ "[" ^ expr_to_string i ^ "]"
  | Ast.New_object (c, args) -> "new " ^ c ^ "(" ^ args_to_string args ^ ")"
  | Ast.New_array (elem, len) ->
    (* nested array types print as new T[len][]... *)
    let rec split = function Ast.Tarray inner -> let b, d = split inner in (b, d + 1) | t -> (t, 0) in
    let base, extra = split elem in
    "new " ^ typ_to_string base ^ "[" ^ expr_to_string len ^ "]" ^ String.concat "" (List.init extra (fun _ -> "[]"))
  | Ast.Cast (t, x) -> "((" ^ typ_to_string t ^ ") " ^ receiver x ^ ")"
  | Ast.Instanceof (x, t) -> "(" ^ expr_to_string x ^ " instanceof " ^ typ_to_string t ^ ")"
  | Ast.Method_call (None, m, args) -> m ^ "(" ^ args_to_string args ^ ")"
  | Ast.Method_call (Some r, m, args) -> receiver r ^ "." ^ m ^ "(" ^ args_to_string args ^ ")"
  | Ast.Super_call (m, args) -> "super." ^ m ^ "(" ^ args_to_string args ^ ")"
  | Ast.Binop (op, a, b) ->
    "(" ^ expr_to_string a ^ " " ^ binop_str op ^ " " ^ expr_to_string b ^ ")"
  | Ast.Unop (Ast.Not, a) -> "(!" ^ expr_to_string a ^ ")"
  | Ast.Unop (Ast.Neg, a) -> "(-" ^ expr_to_string a ^ ")"

(* a receiver/postfix position needs no extra parens for postfix-shaped
   expressions, but casts/binops must be wrapped *)
and receiver (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Ident _ | Ast.This | Ast.Field_access _ | Ast.Array_index _ | Ast.Method_call _
  | Ast.Super_call _ | Ast.New_object _ ->
    expr_to_string e
  | _ -> "(" ^ expr_to_string e ^ ")"

and args_to_string args = String.concat ", " (List.map expr_to_string args)

let rec stmt_lines indent (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Ast.Local_decl { typ; name; init; _ } ->
    let rhs = match init with Some e -> " = " ^ expr_to_string e | None -> "" in
    [ pad ^ typ_to_string typ ^ " " ^ name ^ rhs ^ ";" ]
  | Ast.Assign { lhs; rhs; _ } -> [ pad ^ expr_to_string lhs ^ " = " ^ expr_to_string rhs ^ ";" ]
  | Ast.Expr_stmt e -> [ pad ^ expr_to_string e ^ ";" ]
  | Ast.Return (None, _) -> [ pad ^ "return;" ]
  | Ast.Return (Some e, _) -> [ pad ^ "return " ^ expr_to_string e ^ ";" ]
  | Ast.If (c, t, e, _) ->
    [ pad ^ "if (" ^ expr_to_string c ^ ") {" ]
    @ List.concat_map (stmt_lines (indent + 2)) t
    @ [ pad ^ "} else {" ]
    @ List.concat_map (stmt_lines (indent + 2)) e
    @ [ pad ^ "}" ]
  | Ast.While (c, body, _) ->
    [ pad ^ "while (" ^ expr_to_string c ^ ") {" ]
    @ List.concat_map (stmt_lines (indent + 2)) body
    @ [ pad ^ "}" ]
  | Ast.For { init; cond; step; body; _ } ->
    let simple = function
      | Some s -> (
        match stmt_lines 0 s with
        | [ line ] -> String.sub line 0 (String.length line - 1) (* drop ';' *)
        | _ -> invalid_arg "Pretty: non-simple for header")
      | None -> ""
    in
    [
      pad ^ "for (" ^ simple init ^ "; "
      ^ (match cond with Some c -> expr_to_string c | None -> "")
      ^ "; " ^ simple step ^ ") {";
    ]
    @ List.concat_map (stmt_lines (indent + 2)) body
    @ [ pad ^ "}" ]
  | Ast.Block body ->
    [ pad ^ "{" ] @ List.concat_map (stmt_lines (indent + 2)) body @ [ pad ^ "}" ]

let method_lines (m : Ast.method_decl) =
  let params =
    String.concat ", " (List.map (fun (t, n) -> typ_to_string t ^ " " ^ n) m.Ast.m_params)
  in
  let header =
    if m.Ast.m_is_ctor then Printf.sprintf "  %s(%s) {" m.Ast.m_name params
    else
      Printf.sprintf "  %s%s %s(%s) {"
        (if m.Ast.m_static then "static " else "")
        (typ_to_string m.Ast.m_ret) m.Ast.m_name params
  in
  (header :: List.concat_map (stmt_lines 4) m.Ast.m_body) @ [ "  }" ]

let field_line (f : Ast.field_decl) =
  Printf.sprintf "  %s%s %s%s;"
    (if f.Ast.f_static then "static " else "")
    (typ_to_string f.Ast.f_typ) f.Ast.f_name
    (match f.Ast.f_init with Some e -> " = " ^ expr_to_string e | None -> "")

let class_lines (c : Ast.class_decl) =
  let header =
    match c.Ast.c_super with
    | Some s -> Printf.sprintf "class %s extends %s {" c.Ast.c_name s
    | None -> Printf.sprintf "class %s {" c.Ast.c_name
  in
  (header :: List.map field_line c.Ast.c_fields)
  @ List.concat_map method_lines c.Ast.c_methods
  @ [ "}" ]

let program_to_string prog =
  String.concat "\n" (List.concat_map (fun c -> class_lines c @ [ "" ]) prog)

(* ------------------- equality modulo positions ---------------------- *)

let rec equal_expr (a : Ast.expr) (b : Ast.expr) =
  match (a.Ast.desc, b.Ast.desc) with
  | Ast.Null, Ast.Null | Ast.This, Ast.This -> true
  | Ast.Int_lit x, Ast.Int_lit y -> x = y
  | Ast.Bool_lit x, Ast.Bool_lit y -> x = y
  | Ast.Str_lit x, Ast.Str_lit y -> String.equal x y
  | Ast.Ident x, Ast.Ident y -> String.equal x y
  | Ast.Field_access (r1, f1), Ast.Field_access (r2, f2) -> String.equal f1 f2 && equal_expr r1 r2
  | Ast.Array_index (a1, i1), Ast.Array_index (a2, i2) -> equal_expr a1 a2 && equal_expr i1 i2
  | Ast.New_object (c1, a1), Ast.New_object (c2, a2) -> String.equal c1 c2 && equal_exprs a1 a2
  | Ast.New_array (t1, l1), Ast.New_array (t2, l2) -> Ast.typ_equal t1 t2 && equal_expr l1 l2
  | Ast.Cast (t1, e1), Ast.Cast (t2, e2) -> Ast.typ_equal t1 t2 && equal_expr e1 e2
  | Ast.Instanceof (e1, t1), Ast.Instanceof (e2, t2) -> Ast.typ_equal t1 t2 && equal_expr e1 e2
  | Ast.Method_call (r1, m1, a1), Ast.Method_call (r2, m2, a2) ->
    String.equal m1 m2 && equal_exprs a1 a2
    && (match (r1, r2) with
       | None, None -> true
       | Some x, Some y -> equal_expr x y
       | None, Some _ | Some _, None -> false)
  | Ast.Super_call (m1, a1), Ast.Super_call (m2, a2) -> String.equal m1 m2 && equal_exprs a1 a2
  | Ast.Binop (o1, x1, y1), Ast.Binop (o2, x2, y2) -> o1 = o2 && equal_expr x1 x2 && equal_expr y1 y2
  | Ast.Unop (o1, x1), Ast.Unop (o2, x2) -> o1 = o2 && equal_expr x1 x2
  | _, _ -> false

and equal_exprs a b = List.length a = List.length b && List.for_all2 equal_expr a b

let rec equal_stmt (a : Ast.stmt) (b : Ast.stmt) =
  match (a, b) with
  | Ast.Local_decl d1, Ast.Local_decl d2 ->
    Ast.typ_equal d1.typ d2.typ
    && String.equal d1.name d2.name
    && (match (d1.init, d2.init) with
       | None, None -> true
       | Some x, Some y -> equal_expr x y
       | None, Some _ | Some _, None -> false)
  | Ast.Assign a1, Ast.Assign a2 -> equal_expr a1.lhs a2.lhs && equal_expr a1.rhs a2.rhs
  | Ast.Expr_stmt e1, Ast.Expr_stmt e2 -> equal_expr e1 e2
  | Ast.Return (e1, _), Ast.Return (e2, _) -> (
    match (e1, e2) with
    | None, None -> true
    | Some x, Some y -> equal_expr x y
    | None, Some _ | Some _, None -> false)
  | Ast.If (c1, t1, e1, _), Ast.If (c2, t2, e2, _) ->
    equal_expr c1 c2 && equal_stmts t1 t2 && equal_stmts e1 e2
  | Ast.While (c1, b1, _), Ast.While (c2, b2, _) -> equal_expr c1 c2 && equal_stmts b1 b2
  | Ast.For f1, Ast.For f2 ->
    (match (f1.init, f2.init) with
    | None, None -> true
    | Some x, Some y -> equal_stmt x y
    | None, Some _ | Some _, None -> false)
    && (match (f1.cond, f2.cond) with
       | None, None -> true
       | Some x, Some y -> equal_expr x y
       | None, Some _ | Some _, None -> false)
    && (match (f1.step, f2.step) with
       | None, None -> true
       | Some x, Some y -> equal_stmt x y
       | None, Some _ | Some _, None -> false)
    && equal_stmts f1.body f2.body
  | Ast.Block b1, Ast.Block b2 -> equal_stmts b1 b2
  | _, _ -> false

and equal_stmts a b = List.length a = List.length b && List.for_all2 equal_stmt a b

let equal_method (a : Ast.method_decl) (b : Ast.method_decl) =
  a.Ast.m_static = b.Ast.m_static
  && a.Ast.m_is_ctor = b.Ast.m_is_ctor
  && Ast.typ_equal a.Ast.m_ret b.Ast.m_ret
  && String.equal a.Ast.m_name b.Ast.m_name
  && List.length a.Ast.m_params = List.length b.Ast.m_params
  && List.for_all2
       (fun (t1, n1) (t2, n2) -> Ast.typ_equal t1 t2 && String.equal n1 n2)
       a.Ast.m_params b.Ast.m_params
  && equal_stmts a.Ast.m_body b.Ast.m_body

let equal_field (a : Ast.field_decl) (b : Ast.field_decl) =
  a.Ast.f_static = b.Ast.f_static
  && Ast.typ_equal a.Ast.f_typ b.Ast.f_typ
  && String.equal a.Ast.f_name b.Ast.f_name
  && (match (a.Ast.f_init, b.Ast.f_init) with
     | None, None -> true
     | Some x, Some y -> equal_expr x y
     | None, Some _ | Some _, None -> false)

let equal_class (a : Ast.class_decl) (b : Ast.class_decl) =
  String.equal a.Ast.c_name b.Ast.c_name
  && a.Ast.c_super = b.Ast.c_super
  && List.length a.Ast.c_fields = List.length b.Ast.c_fields
  && List.for_all2 equal_field a.Ast.c_fields b.Ast.c_fields
  && List.length a.Ast.c_methods = List.length b.Ast.c_methods
  && List.for_all2 equal_method a.Ast.c_methods b.Ast.c_methods

let equal_program a b = List.length a = List.length b && List.for_all2 equal_class a b

(** Pretty-printer from the AST back to MiniJava concrete syntax.

    [program_to_string] emits source that re-parses to a structurally
    equal AST (positions aside) — the round-trip property the test-suite
    checks against the generator's output. Useful for normalising
    generated programs and for dumping fixtures. *)

val typ_to_string : Ast.typ -> string
val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string

(** {2 Structural equality modulo positions} *)

val equal_expr : Ast.expr -> Ast.expr -> bool
val equal_stmt : Ast.stmt -> Ast.stmt -> bool
val equal_program : Ast.program -> Ast.program -> bool

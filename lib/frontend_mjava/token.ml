(** Tokens of MiniJava and their printer (used in parser error messages). *)

type t =
  | CLASS
  | EXTENDS
  | STATIC
  | NEW
  | RETURN
  | IF
  | ELSE
  | WHILE
  | FOR
  | INSTANCEOF
  | SUPER
  | THIS
  | NULL
  | TRUE
  | FALSE
  | INT
  | BOOLEAN
  | VOID
  | IDENT of string
  | INT_LIT of int
  | STR_LIT of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | ASSIGN (* = *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ (* == *)
  | NEQ
  | LT
  | GT
  | LE
  | GE
  | ANDAND
  | OROR
  | BANG
  | EOF

let to_string = function
  | CLASS -> "class"
  | EXTENDS -> "extends"
  | STATIC -> "static"
  | NEW -> "new"
  | RETURN -> "return"
  | IF -> "if"
  | ELSE -> "else"
  | WHILE -> "while"
  | FOR -> "for"
  | INSTANCEOF -> "instanceof"
  | SUPER -> "super"
  | THIS -> "this"
  | NULL -> "null"
  | TRUE -> "true"
  | FALSE -> "false"
  | INT -> "int"
  | BOOLEAN -> "boolean"
  | VOID -> "void"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT_LIT n -> Printf.sprintf "integer %d" n
  | STR_LIT s -> Printf.sprintf "string %S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | EQ -> "'=='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | GT -> "'>'"
  | LE -> "'<='"
  | GE -> "'>='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | EOF -> "end of input"

let equal (a : t) (b : t) = a = b

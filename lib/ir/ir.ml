(** Three-address intermediate representation.

    Lowering normalises every allocation, call, load and store so that each
    operand is a method-local variable. Two invariants matter to the
    analyses downstream:

    - every allocation site has a {e unique} destination variable (a fresh
      temporary), which makes the [new n̄ew] direction flip of the paper's
      Algorithms 1 and 3 sound;
    - calls and allocations carry dense program-wide site ids; call-site
      ids are the context elements of the CFL analyses and allocation-site
      ids name abstract objects. *)

type var = int

type call_kind =
  | Virtual of { recv : var; mname : string }
      (** dispatched on the dynamic class of [recv] *)
  | Static of { target : Types.method_sig }
  | Ctor of { recv : var; ctor : Types.method_sig }
      (** statically-bound instance calls: constructor invocations and
          [super.m(...)] calls *)

type instr =
  | Alloc of { dst : var; cls : Types.cls; site : int }
  | Move of { dst : var; src : var }
  | Load of { dst : var; base : var; fld : int }
  | Store of { base : var; fld : int; src : var }
  | Load_global of { dst : var; glb : int }
  | Store_global of { glb : int; src : var }
  | Call of { dst : var option; kind : call_kind; args : var list; site : int }
  | Return of { src : var option }
  | Cast_move of { dst : var; src : var; cast : int }

type meth = {
  id : int; (** = [Types.method_sig.ms_id] *)
  msig : Types.method_sig;
  pretty : string;
  this_var : var option;
  param_vars : var list; (** excluding [this] *)
  body : instr list;
  nvars : int;
  var_names : string array;
  var_types : Ityp.typ array;
  depths : int array;
      (** control depth per instruction, parallel to [body] (see
          {!depth_pack}). Bodies are flattened, so this is the only record
          of whether an instruction sits under a loop or branch; [[||]]
          means unknown and flow-sensitive consumers must treat every
          instruction as conditional. *)
}

(** Loop nesting depth and branch nesting depth of an instruction, packed
    into one int (loop in the high bits). An instruction with both depths
    zero executes exactly once per method invocation, in body order —
    the precondition for treating its definition as a strong (killing)
    one. *)
let depth_pack ~loop ~cond = (min loop 0xff lsl 8) lor min cond 0xff

let depth_loop d = d lsr 8
let depth_cond d = d land 0xff

(** Depth of instruction [i] of [m], conservatively [(max, max)] when the
    frontend recorded no metadata. *)
let instr_depth (m : meth) i =
  if i >= 0 && i < Array.length m.depths then
    let d = m.depths.(i) in
    (depth_loop d, depth_cond d)
  else (0xff, 0xff)

type alloc_site = {
  site_id : int;
  alloc_cls : Types.cls;
  alloc_meth : int;
  alloc_pos : Loc.pos;
  alloc_is_null : bool; (** a lowered [null] pseudo-allocation *)
}

type call_site = { cs_id : int; cs_meth : int; cs_pos : Loc.pos }

type cast_site = {
  cast_id : int;
  cast_meth : int;
  cast_target : Ityp.typ;
  cast_src : var;
  cast_dst : var;
  cast_pos : Loc.pos;
  cast_trivial : bool; (** statically guaranteed (upcast): not queried *)
}

type program = {
  ctable : Types.t;
  methods : meth array; (** indexed by method id *)
  allocs : alloc_site array;
  calls : call_site array;
  casts : cast_site array;
  entry : int option; (** synthetic entry method id *)
  lang : Loc.lang; (** surface language the program was lowered from *)
}

let method_of_program p id = p.methods.(id)

let alloc_name p site =
  let a = p.allocs.(site) in
  if a.alloc_is_null then Printf.sprintf "null@%d" a.alloc_pos.Loc.line
  else Printf.sprintf "o%d:%s" site (Types.class_name p.ctable a.alloc_cls)

let var_name (m : meth) v =
  if v >= 0 && v < Array.length m.var_names then m.var_names.(v) else Printf.sprintf "v%d" v

let pp_instr ctable m fmt instr =
  let pv fmt v = Format.pp_print_string fmt (var_name m v) in
  match instr with
  | Alloc { dst; cls; site } ->
    Format.fprintf fmt "%a = new %s  /* site %d */" pv dst (Types.class_name ctable cls) site
  | Move { dst; src } -> Format.fprintf fmt "%a = %a" pv dst pv src
  | Load { dst; base; fld } ->
    Format.fprintf fmt "%a = %a.%s" pv dst pv base (Types.field_info ctable fld).Types.fld_name
  | Store { base; fld; src } ->
    Format.fprintf fmt "%a.%s = %a" pv base (Types.field_info ctable fld).Types.fld_name pv src
  | Load_global { dst; glb } ->
    let g = Types.global_info ctable glb in
    Format.fprintf fmt "%a = %s.%s" pv dst (Types.class_name ctable g.Types.glb_class) g.Types.glb_name
  | Store_global { glb; src } ->
    let g = Types.global_info ctable glb in
    Format.fprintf fmt "%s.%s = %a" (Types.class_name ctable g.Types.glb_class) g.Types.glb_name pv src
  | Call { dst; kind; args; site } ->
    let pp_args fmt args =
      Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pv fmt args
    in
    let pp_dst fmt = function Some d -> Format.fprintf fmt "%a = " pv d | None -> () in
    (match kind with
    | Virtual { recv; mname } ->
      Format.fprintf fmt "%a%a.%s(%a)  /* site %d */" pp_dst dst pv recv mname pp_args args site
    | Static { target } ->
      Format.fprintf fmt "%a%s(%a)  /* site %d */" pp_dst dst (Types.method_pretty ctable target)
        pp_args args site
    | Ctor { recv; ctor } ->
      Format.fprintf fmt "%a.%s(%a)  /* ctor, site %d */" pv recv
        (Types.method_pretty ctable ctor) pp_args args site)
  | Return { src = Some v } -> Format.fprintf fmt "return %a" pv v
  | Return { src = None } -> Format.fprintf fmt "return"
  | Cast_move { dst; src; cast } -> Format.fprintf fmt "%a = (cast %d) %a" pv dst cast pv src

let pp_method ctable fmt (m : meth) =
  Format.fprintf fmt "@[<v 2>%s(%a) {@,%a@]@,}"
    m.pretty
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") (fun f v ->
         Format.pp_print_string f (var_name m v)))
    m.param_vars
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (pp_instr ctable m))
    m.body

let pp_program fmt p =
  Array.iter (fun m -> Format.fprintf fmt "%a@.@." (pp_method p.ctable) m) p.methods

(** The lowering contract between frontends and the PAG builder.

    [Emit] re-expresses a method body as the seven PAG edge kinds of the
    paper — new, assign, assign-global, load, store, entry, exit — plus the
    call descriptors the call-graph layer needs. It is the {e only} view of
    the instruction set that [lib/pag/builder.ml] consumes: a frontend is
    correct iff its lowered instructions project onto these events with the
    invariants below, and the analyses can never observe anything else.

    Invariants every frontend must uphold:
    - [New]: the destination variable is {e unique} to its allocation site
      (a fresh temporary) — required by the new/n̄ew direction flip of the
      paper's Algorithms 1 and 3;
    - [New] site ids and [call] site ids are dense, program-wide, and
      consistent with [program.allocs] / [program.calls];
    - field ids in [Load]/[Store] are interned in the program's class
      table; global ids likewise;
    - every variable mentioned is method-local ([< meth.nvars]);
    - calls carry the callee view needed for entry/exit edges: receiver
      (virtual and statically-bound instance calls), actuals in formal
      order, and an optional destination for returned values. *)
module Emit = struct
  (** One intra-method PAG edge event. [Assign] covers moves and casts
      (a cast is an identity at the points-to level); global accesses are
      the assign-global edge kind, split by direction. *)
  type edge =
    | New of { site : int; dst : var }
    | Assign of { src : var; dst : var }
    | Load of { base : var; fld : int; dst : var }
    | Store of { base : var; fld : int; src : var }
    | Global_load of { glb : int; dst : var }
    | Global_store of { src : var; glb : int }

  (** A call, in caller-local terms. Entry edges connect [receiver]/[args]
      to the callee's [this]/formals; exit edges connect the callee's
      returns to [dst]. *)
  type call = { site : int; kind : call_kind; args : var list; dst : var option }

  let iter_edges (m : meth) f =
    List.iter
      (fun instr ->
        match instr with
        | Alloc { dst; cls = _; site } -> f (New { site; dst })
        | Move { dst; src } -> f (Assign { src; dst })
        | Cast_move { dst; src; cast = _ } -> f (Assign { src; dst })
        | Load { dst; base; fld } -> f (Load { base; fld; dst })
        | Store { base; fld; src } -> f (Store { base; fld; src })
        | Load_global { dst; glb } -> f (Global_load { glb; dst })
        | Store_global { glb; src } -> f (Global_store { src; glb })
        | Call _ | Return _ -> ())
      m.body

  let calls (m : meth) =
    List.filter_map
      (function
        | Call { dst; kind; args; site } -> Some { site; kind; args; dst }
        | Alloc _ | Move _ | Cast_move _ | Load _ | Store _ | Load_global _ | Store_global _
        | Return _ ->
          None)
      m.body

  (** Variables returned by the method (one per [return v] instruction). *)
  let returns (m : meth) =
    List.filter_map
      (function
        | Return { src } -> src
        | Alloc _ | Move _ | Cast_move _ | Load _ | Store _ | Load_global _ | Store_global _
        | Call _ ->
          None)
      m.body

  (** The caller-side receiver of a call, for dispatch ([Virtual]) or the
      [this] entry edge ([Virtual] and [Ctor]); [None] for static calls. *)
  let receiver = function
    | Virtual { recv; _ } | Ctor { recv; _ } -> Some recv
    | Static _ -> None

  (** The receiver a dispatch decision is made on: only virtual calls
      dispatch; statically-bound instance calls ([Ctor]) do not. *)
  let dispatch_receiver = function
    | Virtual { recv; _ } -> Some recv
    | Static _ | Ctor _ -> None
end

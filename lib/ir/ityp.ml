(** IR-level types.

    Every frontend lowers its surface types into this little lattice; the
    class table ({!Types}) and the IR ({!Ir}) know no other notion of type.
    MiniJava maps its types one-for-one; MiniFun maps every reference value
    (closure, ref cell, result constructor, string) to [Tclass] of a
    synthesised class and every ground value to [Tint]/[Tbool]. *)

type typ =
  | Tint
  | Tbool
  | Tvoid (* return type only *)
  | Tclass of string
  | Tarray of typ

let rec pp_typ fmt = function
  | Tint -> Format.pp_print_string fmt "int"
  | Tbool -> Format.pp_print_string fmt "boolean"
  | Tvoid -> Format.pp_print_string fmt "void"
  | Tclass c -> Format.pp_print_string fmt c
  | Tarray t -> Format.fprintf fmt "%a[]" pp_typ t

let rec typ_equal a b =
  match (a, b) with
  | Tint, Tint | Tbool, Tbool | Tvoid, Tvoid -> true
  | Tclass c, Tclass d -> String.equal c d
  | Tarray t, Tarray u -> typ_equal t u
  | (Tint | Tbool | Tvoid | Tclass _ | Tarray _), _ -> false

let is_reference = function
  | Tclass _ | Tarray _ -> true
  | Tint | Tbool | Tvoid -> false

(** Names of classes every class table knows (see {!Types.create}). *)
let object_class = "Object"

let string_class = "String"

let null_class = "$Null" (* pseudo-class of null pseudo-allocations *)

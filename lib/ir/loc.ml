(** Source locations and source-language tags, shared by every frontend.

    The IR core is frontend-agnostic: positions and the language tag are
    the only provenance a lowered program carries, and both live here so
    that neither the PAG builder nor the clients ever depend on a surface
    syntax module. *)

type pos = { line : int; col : int }

let dummy_pos = { line = 0; col = 0 }

let pp_pos fmt { line; col } = Format.fprintf fmt "%d:%d" line col

(** The surface language a program (or allocation site) was lowered from.
    Purely informational — analyses never branch on it — but carried for
    diagnostics, DOT labels and mixed-frontend debugging. *)
type lang = Mjava | Minifun

let lang_name = function Mjava -> "mjava" | Minifun -> "minifun"

let lang_of_string = function
  | "mjava" | "minijava" | "mj" -> Some Mjava
  | "minifun" | "mf" -> Some Minifun
  | _ -> None

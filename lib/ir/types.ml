exception Error of string * Loc.pos

type cls = int

type field_info = {
  fld_id : int;
  fld_class : cls;
  fld_name : string;
  fld_typ : Ityp.typ;
}

type global_info = {
  glb_id : int;
  glb_class : cls;
  glb_name : string;
  glb_typ : Ityp.typ;
}

type method_sig = {
  ms_id : int;
  ms_class : cls;
  ms_name : string;
  ms_static : bool;
  ms_is_ctor : bool;
  ms_ret : Ityp.typ;
  ms_params : Ityp.typ list;
}

type class_info = {
  ci_id : cls;
  ci_name : string;
  mutable ci_super : cls option;
  mutable ci_fields : (string * field_info) list;
  mutable ci_globals : (string * global_info) list;
  mutable ci_methods : (string * method_sig) list;
  mutable ci_ctors : method_sig list;
  ci_is_array : bool;
}

type t = {
  names : (string, cls) Hashtbl.t;
  mutable infos : class_info array;
  mutable n_classes : int;
  mutable fields : field_info list; (* reversed *)
  mutable n_fields : int;
  mutable globals_rev : global_info list;
  mutable n_globals : int;
  mutable sigs : method_sig list; (* reversed *)
  mutable n_methods : int;
  arr_cache : (Ityp.typ, cls) Hashtbl.t;
  mutable arr : field_info option;
  mutable c_null : cls;
}

let err msg pos = raise (Error (msg, pos))

let info t c =
  if c < 0 || c >= t.n_classes then invalid_arg "Types: unknown class id";
  t.infos.(c)

let declare_class_raw t name ~is_array =
  if Hashtbl.mem t.names name then None
  else begin
    let id = t.n_classes in
    let cap = Array.length t.infos in
    if id >= cap then begin
      let infos =
        Array.make (max 8 (2 * cap))
          { ci_id = -1; ci_name = ""; ci_super = None; ci_fields = []; ci_globals = [];
            ci_methods = []; ci_ctors = []; ci_is_array = false }
      in
      Array.blit t.infos 0 infos 0 t.n_classes;
      t.infos <- infos
    end;
    t.infos.(id) <-
      { ci_id = id; ci_name = name; ci_super = None; ci_fields = []; ci_globals = [];
        ci_methods = []; ci_ctors = []; ci_is_array = is_array };
    t.n_classes <- id + 1;
    Hashtbl.add t.names name id;
    Some id
  end

let declare_class t name pos =
  match declare_class_raw t name ~is_array:false with
  | Some id -> id
  | None -> err (Printf.sprintf "class %s is already declared" name) pos

let find_class t name = Hashtbl.find_opt t.names name

let find_class_exn t name pos =
  match find_class t name with
  | Some c -> c
  | None -> err (Printf.sprintf "unknown class %s" name) pos

let class_name t c = (info t c).ci_name
let class_count t = t.n_classes
let classes t = List.init t.n_classes (fun i -> i)
let null_class t = t.c_null
let is_array_class t c = (info t c).ci_is_array

let super t c = (info t c).ci_super

let rec subclass t c d =
  if c = d then true
  else match super t c with None -> false | Some s -> subclass t s d

let set_super t c s pos =
  if subclass t s c then
    err (Printf.sprintf "inheritance cycle through class %s" (class_name t c)) pos;
  (info t c).ci_super <- Some s

let create () =
  let t =
    {
      names = Hashtbl.create 64;
      infos = [||];
      n_classes = 0;
      fields = [];
      n_fields = 0;
      globals_rev = [];
      n_globals = 0;
      sigs = [];
      n_methods = 0;
      arr_cache = Hashtbl.create 8;
      arr = None;
      c_null = -1;
    }
  in
  (* The null pseudo-class is internal; Object/String come from the prelude
     source so they behave like ordinary classes. *)
  (match declare_class_raw t Ityp.null_class ~is_array:false with
  | Some c -> t.c_null <- c
  | None -> assert false);
  (* The collapsed array-element field (§2 of the paper): all array classes
     share this single field id. It is not a member of any class; lowering
     uses it directly for every array element access. *)
  let arr = { fld_id = 0; fld_class = t.c_null; fld_name = "arr"; fld_typ = Ityp.Tclass Ityp.object_class } in
  t.arr <- Some arr;
  t.fields <- [ arr ];
  t.n_fields <- 1;
  t

let arr_field t = match t.arr with Some f -> f | None -> assert false

let object_class t =
  match find_class t Ityp.object_class with
  | Some c -> c
  | None -> invalid_arg "Types.object_class: prelude not loaded"

let string_class t =
  match find_class t Ityp.string_class with
  | Some c -> c
  | None -> invalid_arg "Types.string_class: prelude not loaded"

let add_field t c ~name ~typ pos =
  let ci = info t c in
  if List.mem_assoc name ci.ci_fields || List.mem_assoc name ci.ci_globals then
    err (Printf.sprintf "field %s.%s is already declared" ci.ci_name name) pos;
  let f = { fld_id = t.n_fields; fld_class = c; fld_name = name; fld_typ = typ } in
  t.fields <- f :: t.fields;
  t.n_fields <- t.n_fields + 1;
  ci.ci_fields <- (name, f) :: ci.ci_fields;
  f

let add_global t c ~name ~typ pos =
  let ci = info t c in
  if List.mem_assoc name ci.ci_fields || List.mem_assoc name ci.ci_globals then
    err (Printf.sprintf "field %s.%s is already declared" ci.ci_name name) pos;
  let g = { glb_id = t.n_globals; glb_class = c; glb_name = name; glb_typ = typ } in
  t.globals_rev <- g :: t.globals_rev;
  t.n_globals <- t.n_globals + 1;
  ci.ci_globals <- (name, g) :: ci.ci_globals;
  g

let rec lookup_field t c name =
  let ci = info t c in
  match List.assoc_opt name ci.ci_fields with
  | Some f -> Some (`Instance f)
  | None -> (
    match List.assoc_opt name ci.ci_globals with
    | Some g -> Some (`Static g)
    | None -> ( match ci.ci_super with Some s -> lookup_field t s name | None -> None))

let field_count t = t.n_fields

let field_info t id =
  if id < 0 || id >= t.n_fields then invalid_arg "Types.field_info: unknown id";
  List.nth t.fields (t.n_fields - 1 - id)

let global_count t = t.n_globals

let global_info t id =
  if id < 0 || id >= t.n_globals then invalid_arg "Types.global_info: unknown id";
  List.nth t.globals_rev (t.n_globals - 1 - id)

let globals t = List.rev t.globals_rev

let add_method t c ~name ~static ~is_ctor ~ret ~params pos =
  let ci = info t c in
  let ms =
    { ms_id = t.n_methods; ms_class = c; ms_name = name; ms_static = static; ms_is_ctor = is_ctor;
      ms_ret = ret; ms_params = params }
  in
  if is_ctor then begin
    (* Constructors may be overloaded by arity (the paper's Figure 2 example
       declares both [Client()] and [Client(Vector)]). *)
    let arity = List.length params in
    if List.exists (fun m -> List.length m.ms_params = arity) ci.ci_ctors then
      err (Printf.sprintf "class %s already has a %d-argument constructor" ci.ci_name arity) pos;
    ci.ci_ctors <- ms :: ci.ci_ctors
  end
  else begin
    if List.mem_assoc name ci.ci_methods then
      err (Printf.sprintf "method %s.%s is already declared (no overloading)" ci.ci_name name) pos;
    ci.ci_methods <- (name, ms) :: ci.ci_methods
  end;
  t.sigs <- ms :: t.sigs;
  t.n_methods <- t.n_methods + 1;
  ms

let rec lookup_method t c name =
  let ci = info t c in
  match List.assoc_opt name ci.ci_methods with
  | Some ms -> Some ms
  | None -> ( match ci.ci_super with Some s -> lookup_method t s name | None -> None)

let constructors t c = List.rev (info t c).ci_ctors

let constructor t c arity =
  List.find_opt (fun m -> List.length m.ms_params = arity) (info t c).ci_ctors

let own_methods t c =
  List.rev_map snd (info t c).ci_methods @ List.rev (info t c).ci_ctors

let method_count t = t.n_methods

let method_sig t id =
  if id < 0 || id >= t.n_methods then invalid_arg "Types.method_sig: unknown id";
  List.nth t.sigs (t.n_methods - 1 - id)

let method_pretty t ms = Printf.sprintf "%s.%s" (class_name t ms.ms_class) ms.ms_name

let rec array_class t elem =
  match Hashtbl.find_opt t.arr_cache elem with
  | Some c -> c
  | None ->
    (* Normalise nested element classes first so names are deterministic. *)
    (match elem with Ityp.Tarray inner -> ignore (array_class t inner) | _ -> ());
    let name = Format.asprintf "%a[]" Ityp.pp_typ elem in
    let c =
      match declare_class_raw t name ~is_array:true with
      | Some c ->
        t.infos.(c).ci_super <- Some (object_class t);
        c
      | None -> ( match find_class t name with Some c -> c | None -> assert false)
    in
    Hashtbl.add t.arr_cache elem c;
    c

let class_of_typ t = function
  | Ityp.Tclass name -> find_class t name
  | Ityp.Tarray elem -> Some (array_class t elem)
  | Ityp.Tint | Ityp.Tbool | Ityp.Tvoid -> None

let rec subtype t a b =
  match (a, b) with
  | Ityp.Tint, Ityp.Tint | Ityp.Tbool, Ityp.Tbool | Ityp.Tvoid, Ityp.Tvoid -> true
  | Ityp.Tclass ca, Ityp.Tclass cb -> (
    match (find_class t ca, find_class t cb) with
    | Some ia, Some ib -> subclass t ia ib
    | _ -> false)
  | Ityp.Tarray ea, Ityp.Tarray eb -> subtype t ea eb (* covariant, as in Java *)
  | Ityp.Tarray _, Ityp.Tclass cb -> String.equal cb Ityp.object_class
  | (Ityp.Tint | Ityp.Tbool | Ityp.Tvoid | Ityp.Tclass _ | Ityp.Tarray _), _ -> false

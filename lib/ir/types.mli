(** Class table: the program's class hierarchy, fields, globals and method
    signatures, shared by the semantic checker, the lowering pass, the PAG
    builder, and the clients.

    Instance fields are interned to dense ids program-wide (the analyses
    are field-sensitive on these ids). All array element accesses collapse
    to the single special field {!arr_field}, as in §2 of the paper. Static
    fields are the PAG's "globals" and get their own dense id space. *)

type t

type cls = int
(** Dense class id. *)

exception Error of string * Loc.pos

type field_info = {
  fld_id : int;
  fld_class : cls; (** declaring class *)
  fld_name : string;
  fld_typ : Ityp.typ;
}

type global_info = {
  glb_id : int;
  glb_class : cls;
  glb_name : string;
  glb_typ : Ityp.typ;
}

type method_sig = {
  ms_id : int; (** dense program-wide method id *)
  ms_class : cls;
  ms_name : string;
  ms_static : bool;
  ms_is_ctor : bool;
  ms_ret : Ityp.typ;
  ms_params : Ityp.typ list;
}

val create : unit -> t
(** A table that already knows [Object], [String] and the internal null
    pseudo-class. *)

(** {2 Classes} *)

val declare_class : t -> string -> Loc.pos -> cls
(** @raise Error if the name is already declared. *)

val find_class : t -> string -> cls option
val find_class_exn : t -> string -> Loc.pos -> cls
val class_name : t -> cls -> string
val class_count : t -> int
val classes : t -> cls list
val object_class : t -> cls
val string_class : t -> cls
val null_class : t -> cls
val is_array_class : t -> cls -> bool

val set_super : t -> cls -> cls -> Loc.pos -> unit
(** @raise Error if this would create a hierarchy cycle. *)

val super : t -> cls -> cls option
(** Direct superclass; [None] only for [Object] (and the null class). *)

val subclass : t -> cls -> cls -> bool
(** [subclass t c d] — is [c] equal to or a descendant of [d]? *)

val array_class : t -> Ityp.typ -> cls
(** Array class for the given element type, created on demand; its
    superclass is [Object]. *)

val class_of_typ : t -> Ityp.typ -> cls option
(** The class implementing a reference type ([Tclass] or [Tarray]); [None]
    for primitive types. Unknown class names yield [None]. *)

val subtype : t -> Ityp.typ -> Ityp.typ -> bool
(** Assignability: reflexive, class subtyping, covariant arrays (as in
    Java), any array type is a subtype of [Object]. Primitives are subtypes
    of themselves only. *)

(** {2 Fields} *)

val arr_field : t -> field_info
(** The special collapsed array-element field. *)

val add_field : t -> cls -> name:string -> typ:Ityp.typ -> Loc.pos -> field_info
(** Instance field. @raise Error on a duplicate in the same class. *)

val add_global : t -> cls -> name:string -> typ:Ityp.typ -> Loc.pos -> global_info
(** Static field. @raise Error on a duplicate in the same class. *)

val lookup_field : t -> cls -> string -> [ `Instance of field_info | `Static of global_info ] option
(** Walks the superclass chain. *)

val field_count : t -> int
val field_info : t -> int -> field_info
val global_count : t -> int
val global_info : t -> int -> global_info
val globals : t -> global_info list

(** {2 Methods} *)

val add_method :
  t -> cls -> name:string -> static:bool -> is_ctor:bool -> ret:Ityp.typ -> params:Ityp.typ list -> Loc.pos -> method_sig
(** @raise Error on a duplicate method name in the same class. Ordinary
    methods cannot be overloaded; constructors may be overloaded by arity
    (the paper's Figure 2 example needs this). *)

val lookup_method : t -> cls -> string -> method_sig option
(** Walks the superclass chain — this is also virtual dispatch: the result
    for a receiver class is the implementation that class inherits.
    Constructors are never returned. *)

val constructor : t -> cls -> int -> method_sig option
(** The class's own constructor of the given arity, if declared (not
    inherited). *)

val constructors : t -> cls -> method_sig list

val own_methods : t -> cls -> method_sig list

val method_count : t -> int
val method_sig : t -> int -> method_sig

val method_pretty : t -> method_sig -> string
(** ["Vector.add"]. *)

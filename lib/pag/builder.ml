(* The builder consumes method bodies exclusively through the {!Ir.Emit}
   lowering contract: the seven edge kinds plus call descriptors. It never
   inspects [Ir.instr] directly, so any frontend whose lowering satisfies
   the [Emit] invariants drives the same construction. *)

type call_desc = {
  cd_site : int;
  cd_caller : int;
  cd_kind : Ir.call_kind;
  cd_args : Pag.node list;
  cd_dst : Pag.node option;
}

let add_method_body pag mid =
  let prog = Pag.program pag in
  let m = prog.Ir.methods.(mid) in
  let node v = Pag.local_node pag ~meth:mid ~var:v in
  Ir.Emit.iter_edges m (fun edge ->
      match edge with
      | Ir.Emit.New { site; dst } -> Pag.add_new pag ~obj_:(Pag.obj_node pag site) ~dst:(node dst)
      | Ir.Emit.Assign { src; dst } -> Pag.add_assign pag ~src:(node src) ~dst:(node dst)
      | Ir.Emit.Load { base; fld; dst } -> Pag.add_load pag ~base:(node base) ~fld ~dst:(node dst)
      | Ir.Emit.Store { base; fld; src } -> Pag.add_store pag ~base:(node base) ~fld ~src:(node src)
      | Ir.Emit.Global_load { glb; dst } ->
        Pag.add_assign_global pag ~src:(Pag.global_node pag glb) ~dst:(node dst)
      | Ir.Emit.Global_store { src; glb } ->
        Pag.add_assign_global pag ~src:(node src) ~dst:(Pag.global_node pag glb));
  List.map
    (fun (c : Ir.Emit.call) ->
      {
        cd_site = c.Ir.Emit.site;
        cd_caller = mid;
        cd_kind = c.Ir.Emit.kind;
        cd_args = List.map node c.Ir.Emit.args;
        cd_dst = Option.map node c.Ir.Emit.dst;
      })
    (Ir.Emit.calls m)

let return_nodes pag (m : Ir.meth) =
  List.map (fun v -> Pag.local_node pag ~meth:m.Ir.id ~var:v) (Ir.Emit.returns m)

let receiver_node pag cd =
  Option.map
    (fun v -> Pag.local_node pag ~meth:cd.cd_caller ~var:v)
    (Ir.Emit.dispatch_receiver cd.cd_kind)

let connect_call pag cd ~target =
  let site = cd.cd_site in
  let formal v = Pag.local_node pag ~meth:target.Ir.id ~var:v in
  (* receiver to [this] *)
  (match (Ir.Emit.receiver cd.cd_kind, target.Ir.this_var) with
  | Some recv, Some this_v ->
    Pag.add_entry pag ~site ~actual:(Pag.local_node pag ~meth:cd.cd_caller ~var:recv)
      ~formal:(formal this_v)
  | Some _, None -> invalid_arg "Builder.connect_call: instance target without this"
  | None, _ -> ());
  (* actuals to formals *)
  List.iter2
    (fun actual formal_var -> Pag.add_entry pag ~site ~actual ~formal:(formal formal_var))
    cd.cd_args target.Ir.param_vars;
  (* returned values to the call's destination *)
  match cd.cd_dst with
  | None -> ()
  | Some dst ->
    List.iter (fun retval -> Pag.add_exit pag ~site ~retval ~dst) (return_nodes pag target)

(* Edit overlay over the frozen CSR slabs.

   One [side] mirrors one packed slab (label × direction): [added] holds
   overlay edges per node as (aux, other) pairs in insertion order,
   [deleted] tombstones base-slab edges by their exact (node, aux, other)
   triple. Unlabelled sides use aux = 0 throughout. The module is pure
   int bookkeeping — which sides exist and what an edge means is Pag's
   business, and Pag writes both directions of every logical edge. *)

type side = {
  added : (int, (int * int) list) Hashtbl.t; (* node -> (aux, other), newest first *)
  deleted : (int * int * int, unit) Hashtbl.t; (* (node, aux, other) *)
  mutable n_added : int;
  mutable n_deleted : int;
}

type t = { sides : side array }

let n_sides = 14

let fresh_side () =
  { added = Hashtbl.create 16; deleted = Hashtbl.create 16; n_added = 0; n_deleted = 0 }

let create () = { sides = Array.init n_sides (fun _ -> fresh_side ()) }

let side t i = t.sides.(i)

let added_at t i node =
  Option.value ~default:[] (Hashtbl.find_opt (side t i).added node)

let is_added t i node aux other =
  List.exists (fun (a, o) -> a = aux && o = other) (added_at t i node)

let add t i node aux other =
  let s = side t i in
  Hashtbl.replace s.added node ((aux, other) :: added_at t i node);
  s.n_added <- s.n_added + 1

(* Removes one occurrence; the caller guarantees presence (checked via
   [is_added] before deciding between un-adding and tombstoning). *)
let remove_added t i node aux other =
  let s = side t i in
  let rec drop = function
    | [] -> []
    | (a, o) :: rest when a = aux && o = other -> rest
    | p :: rest -> p :: drop rest
  in
  (match drop (added_at t i node) with
  | [] -> Hashtbl.remove s.added node
  | l -> Hashtbl.replace s.added node l);
  s.n_added <- s.n_added - 1

let is_deleted t i node aux other = Hashtbl.mem (side t i).deleted (node, aux, other)

let mark_deleted t i node aux other =
  let s = side t i in
  if not (Hashtbl.mem s.deleted (node, aux, other)) then begin
    Hashtbl.add s.deleted (node, aux, other) ();
    s.n_deleted <- s.n_deleted + 1
  end

let unmark_deleted t i node aux other =
  let s = side t i in
  if Hashtbl.mem s.deleted (node, aux, other) then begin
    Hashtbl.remove s.deleted (node, aux, other);
    s.n_deleted <- s.n_deleted - 1
  end

let has_deletions t i = (side t i).n_deleted > 0

let added_count t = Array.fold_left (fun acc s -> acc + s.n_added) 0 t.sides

let deleted_count t = Array.fold_left (fun acc s -> acc + s.n_deleted) 0 t.sides

(* Insertion-order iteration: the stored list is newest-first, and the
   traversal order feeds the kernel's worklist, so it must be a pure
   function of the edit history (incremental and rebuilt graphs replay
   the same history and must enqueue identically). *)
let iter_added t i node f = List.iter (fun (a, o) -> f a o) (List.rev (added_at t i node))

(** Edit overlay over the frozen CSR slabs.

    Fourteen {e sides} (one per packed slab: label × direction), each an
    added-edge adjacency plus a tombstone set for deleted base edges.
    Everything is plain ints — edge semantics, direction symmetry and the
    side numbering live in {!Pag}, which is the only writer. Unlabelled
    sides carry aux = 0.

    Reads are lock-free Hashtbl lookups; during query execution no domain
    writes the overlay (edits happen strictly between query batches, like
    {!Pag.freeze} before them), so sharing the frozen-plus-overlay view
    across domains stays safe. *)

type t

val n_sides : int

val create : unit -> t

val add : t -> int -> int -> int -> int -> unit
(** [add t side node aux other] appends an overlay edge. *)

val remove_added : t -> int -> int -> int -> int -> unit
(** Remove one previously-added occurrence (caller checks {!is_added}). *)

val is_added : t -> int -> int -> int -> int -> bool

val mark_deleted : t -> int -> int -> int -> int -> unit
(** Tombstone a base-slab edge; idempotent. *)

val unmark_deleted : t -> int -> int -> int -> int -> unit

val is_deleted : t -> int -> int -> int -> int -> bool

val has_deletions : t -> int -> bool
(** Fast guard: any tombstone on this side at all? Lets base-slab loops
    skip the per-edge tombstone probe when nothing was ever deleted. *)

val added_at : t -> int -> int -> (int * int) list
(** Overlay edges of a node on a side, newest first. *)

val iter_added : t -> int -> int -> (int -> int -> unit) -> unit
(** Iterate a node's overlay edges in {e insertion} order ([f aux other]);
    deterministic so replayed edit histories enqueue identically. *)

val added_count : t -> int
val deleted_count : t -> int

let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let touched pag n =
  Pag.new_in pag n <> [] || Pag.new_out pag n <> [] || Pag.assign_in pag n <> []
  || Pag.assign_out pag n <> [] || Pag.global_in pag n <> [] || Pag.global_out pag n <> []
  || Pag.load_in pag n <> [] || Pag.load_out pag n <> [] || Pag.store_in pag n <> []
  || Pag.store_out pag n <> [] || Pag.entry_in pag n <> [] || Pag.entry_out pag n <> []
  || Pag.exit_in pag n <> [] || Pag.exit_out pag n <> []

let pag ?(max_nodes = 400) pag_ =
  let prog = Pag.program pag_ in
  let lang = Loc.lang_name prog.Ir.lang in
  let buf = Buffer.create 8192 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph pag {\n  rankdir=LR;\n  node [fontsize=9];\n";
  pr "  label=\"source language: %s\";\n  labelloc=t;\n" (escape lang);
  let included = Hashtbl.create 256 in
  let count = ref 0 in
  for n = 0 to Pag.node_count pag_ - 1 do
    if touched pag_ n && !count < max_nodes then begin
      Hashtbl.add included n ();
      incr count;
      (* Allocation nodes carry their provenance: which method allocated,
         at which source line of which language — so a graph mixing
         synthesized closure classes with user code stays attributable. *)
      let shape, style, label =
        match Pag.kind pag_ n with
        | Pag.Obj site ->
          let a = prog.Ir.allocs.(site) in
          let provenance =
            Printf.sprintf "\\n%s:%d in %s" lang a.Ir.alloc_pos.Loc.line
              (escape prog.Ir.methods.(a.Ir.alloc_meth).Ir.pretty)
          in
          ("box", ",style=filled,fillcolor=lightyellow",
           escape (Pag.node_name pag_ n) ^ provenance)
        | Pag.Global _ -> ("diamond", ",style=filled,fillcolor=lightblue", escape (Pag.node_name pag_ n))
        | Pag.Local _ -> ("ellipse", "", escape (Pag.node_name pag_ n))
      in
      pr "  n%d [label=\"%s\",shape=%s%s];\n" n label shape style
    end
  done;
  if !count >= max_nodes then pr "  // graph truncated at %d nodes\n" max_nodes;
  let mem n = Hashtbl.mem included n in
  let fld_name f = (Types.field_info prog.Ir.ctable f).Types.fld_name in
  for n = 0 to Pag.node_count pag_ - 1 do
    if mem n then begin
      List.iter (fun o -> if mem o then pr "  n%d -> n%d [label=\"new\",penwidth=2];\n" o n) (Pag.new_in pag_ n);
      List.iter (fun x -> if mem x then pr "  n%d -> n%d [label=\"assign\"];\n" x n) (Pag.assign_in pag_ n);
      List.iter
        (fun x -> if mem x then pr "  n%d -> n%d [label=\"assignglobal\",style=dotted];\n" x n)
        (Pag.global_in pag_ n);
      List.iter
        (fun (f, b) -> if mem b then pr "  n%d -> n%d [label=\"load(%s)\",color=darkgreen];\n" b n (escape (fld_name f)))
        (Pag.load_in pag_ n);
      List.iter
        (fun (f, s) -> if mem s then pr "  n%d -> n%d [label=\"store(%s)\",color=brown];\n" s n (escape (fld_name f)))
        (Pag.store_in pag_ n);
      List.iter
        (fun (i, a) ->
          if mem a then
            pr "  n%d -> n%d [label=\"entry%d\",style=dashed%s];\n" a n i
              (if Pag.is_recursive_site pag_ i then ",color=red" else ""))
        (Pag.entry_in pag_ n);
      List.iter
        (fun (i, r) ->
          if mem r then
            pr "  n%d -> n%d [label=\"exit%d\",style=dashed%s];\n" r n i
              (if Pag.is_recursive_site pag_ i then ",color=red" else ""))
        (Pag.exit_in pag_ n)
    end
  done;
  pr "}\n";
  Buffer.contents buf

let callgraph prog cg =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph callgraph {\n  node [fontsize=10,shape=box];\n";
  let mentioned = Hashtbl.create 64 in
  Callgraph.iter_edges cg (fun ~site:_ ~caller ~target ->
      Hashtbl.replace mentioned caller ();
      Hashtbl.replace mentioned target ());
  Hashtbl.iter
    (fun m () -> pr "  m%d [label=\"%s\"];\n" m (escape prog.Ir.methods.(m).Ir.pretty))
    mentioned;
  let comp, _ = Callgraph.method_sccs cg in
  Callgraph.iter_edges cg (fun ~site ~caller ~target ->
      let recursive = comp.(caller) = comp.(target) in
      pr "  m%d -> m%d [label=\"%d\"%s];\n" caller target site
        (if recursive then ",color=red,penwidth=2" else ""));
  pr "}\n";
  Buffer.contents buf

type node = int
type fld = int
type site = int

type node_kind =
  | Local of { meth : int; var : int }
  | Global of int
  | Obj of int

(* Per-node adjacency, indexed by label and direction. Lists are the
   build-side representation only: [freeze] packs them into int-array CSR
   slabs and drops them, so queries run over dense read-only arrays. *)
type adj = {
  mutable new_in : node list;
  mutable new_out : node list;
  mutable assign_in : node list;
  mutable assign_out : node list;
  mutable global_in : node list;
  mutable global_out : node list;
  mutable load_in : (fld * node) list;
  mutable load_out : (fld * node) list;
  mutable store_in : (fld * node) list;
  mutable store_out : (fld * node) list;
  mutable entry_in : (site * node) list;
  mutable entry_out : (site * node) list;
  mutable exit_in : (site * node) list;
  mutable exit_out : (site * node) list;
}

(* One CSR slab: edges of node [n] occupy [off.(n) .. off.(n+1)-1] in
   [dst] (neighbour ids) and, for labelled slabs, [aux] (field or call
   site, parallel to [dst]; [||] for unlabelled slabs). *)
type slab = { off : int array; dst : int array; aux : int array }

type packed = {
  p_new_in : slab;
  p_new_out : slab;
  p_assign_in : slab;
  p_assign_out : slab;
  p_global_in : slab;
  p_global_out : slab;
  p_load_in : slab;
  p_load_out : slab;
  p_store_in : slab;
  p_store_out : slab;
  p_entry_in : slab;
  p_entry_out : slab;
  p_exit_in : slab;
  p_exit_out : slab;
}

type edge_counts = {
  n_new : int;
  n_assign : int;
  n_load : int;
  n_store : int;
  n_entry : int;
  n_exit : int;
  n_assign_global : int;
}

type t = {
  prog : Ir.program;
  var_base : int array; (* node id of var 0 of each method *)
  global_base : int;
  obj_base : int;
  n_nodes : int;
  mutable adjs : adj array; (* build side; emptied at freeze *)
  dedup : (int * int * int * int, unit) Hashtbl.t; (* (label tag, src, dst, f-or-site) *)
  mutable recursive_sites : bool array;
  mutable counts : edge_counts;
  mutable frozen : bool;
  mutable packed : packed option; (* the read side, valid after freeze *)
  mutable flag_local : Bytes.t; (* per-node flags, valid after freeze *)
  mutable flag_gin : Bytes.t;
  mutable flag_gout : Bytes.t;
  (* per-field edge indices, filled eagerly at freeze so the frozen
     structure is genuinely read-only (safe to share across domains) *)
  loads_by_field : (fld, (node * node) list) Hashtbl.t;
  stores_by_field : (fld, (node * node) list) Hashtbl.t;
  (* Andersen pruning oracle: flat per-node bitset rows over allocation
     sites, [oracle_stride] words per node; stride 0 means no oracle is
     installed and every accessor answers conservatively. *)
  mutable oracle : int array;
  mutable oracle_stride : int;
}

let fresh_adj () =
  {
    new_in = []; new_out = []; assign_in = []; assign_out = []; global_in = []; global_out = [];
    load_in = []; load_out = []; store_in = []; store_out = []; entry_in = []; entry_out = [];
    exit_in = []; exit_out = [];
  }

let create (prog : Ir.program) =
  let n_methods = Array.length prog.Ir.methods in
  let var_base = Array.make n_methods 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i (m : Ir.meth) ->
      var_base.(i) <- !acc;
      acc := !acc + m.Ir.nvars)
    prog.Ir.methods;
  let global_base = !acc in
  let n_globals = Types.global_count prog.Ir.ctable in
  let obj_base = global_base + n_globals in
  let n_nodes = obj_base + Array.length prog.Ir.allocs in
  {
    prog;
    var_base;
    global_base;
    obj_base;
    n_nodes;
    adjs = Array.init (max n_nodes 1) (fun _ -> fresh_adj ());
    dedup = Hashtbl.create 4096;
    recursive_sites = Array.make (max 1 (Array.length prog.Ir.calls)) false;
    counts =
      { n_new = 0; n_assign = 0; n_load = 0; n_store = 0; n_entry = 0; n_exit = 0;
        n_assign_global = 0 };
    frozen = false;
    packed = None;
    flag_local = Bytes.empty;
    flag_gin = Bytes.empty;
    flag_gout = Bytes.empty;
    loads_by_field = Hashtbl.create 64;
    stores_by_field = Hashtbl.create 64;
    oracle = [||];
    oracle_stride = 0;
  }

let program t = t.prog

let node_count t = t.n_nodes

let local_node t ~meth ~var =
  let m = t.prog.Ir.methods.(meth) in
  if var < 0 || var >= m.Ir.nvars then invalid_arg "Pag.local_node: variable out of range";
  t.var_base.(meth) + var

let global_node t g =
  if g < 0 || g >= t.obj_base - t.global_base then invalid_arg "Pag.global_node";
  t.global_base + g

let obj_node t site =
  if site < 0 || site >= t.n_nodes - t.obj_base then invalid_arg "Pag.obj_node";
  t.obj_base + site

let kind t n =
  if n < 0 || n >= t.n_nodes then invalid_arg "Pag.kind: bad node";
  if n >= t.obj_base then Obj (n - t.obj_base)
  else if n >= t.global_base then Global (n - t.global_base)
  else begin
    (* binary search for the owning method *)
    let lo = ref 0 and hi = ref (Array.length t.var_base - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.var_base.(mid) <= n then lo := mid else hi := mid - 1
    done;
    Local { meth = !lo; var = n - t.var_base.(!lo) }
  end

let is_obj t n = n >= t.obj_base && n < t.n_nodes

let obj_site t n =
  if is_obj t n then n - t.obj_base else invalid_arg "Pag.obj_site: not an object node"

let method_of_node t n =
  match kind t n with Local { meth; _ } -> Some meth | Global _ | Obj _ -> None

let node_name t n =
  match kind t n with
  | Local { meth; var } ->
    let m = t.prog.Ir.methods.(meth) in
    Printf.sprintf "%s::%s" m.Ir.pretty (Ir.var_name m var)
  | Global g ->
    let gi = Types.global_info t.prog.Ir.ctable g in
    Printf.sprintf "%s.%s$static"
      (Types.class_name t.prog.Ir.ctable gi.Types.glb_class)
      gi.Types.glb_name
  | Obj site -> Ir.alloc_name t.prog site

let check_not_frozen t = if t.frozen then invalid_arg "Pag: graph is frozen"

(* returns true when the edge is fresh *)
let dedup_edge t tag src dst aux =
  let key = (tag, src, dst, aux) in
  if Hashtbl.mem t.dedup key then false
  else begin
    Hashtbl.add t.dedup key ();
    true
  end

let adj t n = t.adjs.(n)

let add_new t ~obj_ ~dst =
  check_not_frozen t;
  if dedup_edge t 0 obj_ dst 0 then begin
    (match (adj t obj_).new_out with
    | [] -> ()
    | existing :: _ when existing <> dst ->
      invalid_arg
        (Printf.sprintf "Pag.add_new: allocation %s already flows to %s" (node_name t obj_)
           (node_name t existing))
    | _ :: _ -> ());
    (adj t dst).new_in <- obj_ :: (adj t dst).new_in;
    (adj t obj_).new_out <- dst :: (adj t obj_).new_out;
    t.counts <- { t.counts with n_new = t.counts.n_new + 1 }
  end

let add_assign t ~src ~dst =
  check_not_frozen t;
  if dedup_edge t 1 src dst 0 then begin
    (adj t dst).assign_in <- src :: (adj t dst).assign_in;
    (adj t src).assign_out <- dst :: (adj t src).assign_out;
    t.counts <- { t.counts with n_assign = t.counts.n_assign + 1 }
  end

let add_assign_global t ~src ~dst =
  check_not_frozen t;
  if dedup_edge t 2 src dst 0 then begin
    (adj t dst).global_in <- src :: (adj t dst).global_in;
    (adj t src).global_out <- dst :: (adj t src).global_out;
    t.counts <- { t.counts with n_assign_global = t.counts.n_assign_global + 1 }
  end

let add_load t ~base ~fld ~dst =
  check_not_frozen t;
  if dedup_edge t 3 base dst fld then begin
    (adj t dst).load_in <- (fld, base) :: (adj t dst).load_in;
    (adj t base).load_out <- (fld, dst) :: (adj t base).load_out;
    t.counts <- { t.counts with n_load = t.counts.n_load + 1 }
  end

let add_store t ~base ~fld ~src =
  check_not_frozen t;
  if dedup_edge t 4 src base fld then begin
    (adj t base).store_in <- (fld, src) :: (adj t base).store_in;
    (adj t src).store_out <- (fld, base) :: (adj t src).store_out;
    t.counts <- { t.counts with n_store = t.counts.n_store + 1 }
  end

let add_entry t ~site ~actual ~formal =
  check_not_frozen t;
  if dedup_edge t 5 actual formal site then begin
    (adj t formal).entry_in <- (site, actual) :: (adj t formal).entry_in;
    (adj t actual).entry_out <- (site, formal) :: (adj t actual).entry_out;
    t.counts <- { t.counts with n_entry = t.counts.n_entry + 1 }
  end

let add_exit t ~site ~retval ~dst =
  check_not_frozen t;
  if dedup_edge t 6 retval dst site then begin
    (adj t dst).exit_in <- (site, retval) :: (adj t dst).exit_in;
    (adj t retval).exit_out <- (site, dst) :: (adj t retval).exit_out;
    t.counts <- { t.counts with n_exit = t.counts.n_exit + 1 }
  end

let set_recursive_site t site =
  if site >= 0 && site < Array.length t.recursive_sites then t.recursive_sites.(site) <- true

let is_recursive_site t site =
  site >= 0 && site < Array.length t.recursive_sites && t.recursive_sites.(site)

(* ----------------------------- packing ------------------------------ *)

let pack_nodes n_nodes adjs select =
  let off = Array.make (n_nodes + 1) 0 in
  for i = 0 to n_nodes - 1 do
    off.(i + 1) <- off.(i) + List.length (select adjs.(i))
  done;
  let dst = Array.make off.(n_nodes) 0 in
  for i = 0 to n_nodes - 1 do
    let k = ref off.(i) in
    List.iter
      (fun x ->
        dst.(!k) <- x;
        incr k)
      (select adjs.(i))
  done;
  { off; dst; aux = [||] }

let pack_pairs n_nodes adjs select =
  let off = Array.make (n_nodes + 1) 0 in
  for i = 0 to n_nodes - 1 do
    off.(i + 1) <- off.(i) + List.length (select adjs.(i))
  done;
  let dst = Array.make off.(n_nodes) 0 in
  let aux = Array.make off.(n_nodes) 0 in
  for i = 0 to n_nodes - 1 do
    let k = ref off.(i) in
    List.iter
      (fun (a, x) ->
        aux.(!k) <- a;
        dst.(!k) <- x;
        incr k)
      (select adjs.(i))
  done;
  { off; dst; aux }

let degree s n = s.off.(n + 1) - s.off.(n)

(* Post-freeze list views, reconstructed from the slabs (cold paths only;
   the kernel iterates the arrays directly). *)
let slab_nodes s n =
  let lo = s.off.(n) in
  let rec go k acc = if k < lo then acc else go (k - 1) (s.dst.(k) :: acc) in
  go (s.off.(n + 1) - 1) []

let slab_pairs s n =
  let lo = s.off.(n) in
  let rec go k acc = if k < lo then acc else go (k - 1) ((s.aux.(k), s.dst.(k)) :: acc) in
  go (s.off.(n + 1) - 1) []

let packed t =
  match t.packed with
  | Some p -> p
  | None -> invalid_arg "Pag.packed: call Pag.freeze first"

let freeze t =
  if not t.frozen then begin
    t.frozen <- true;
    let n = max t.n_nodes 1 in
    t.flag_local <- Bytes.make n '\000';
    t.flag_gin <- Bytes.make n '\000';
    t.flag_gout <- Bytes.make n '\000';
    for i = 0 to t.n_nodes - 1 do
      let a = t.adjs.(i) in
      let local =
        a.new_in <> [] || a.new_out <> [] || a.assign_in <> [] || a.assign_out <> []
        || a.load_in <> [] || a.load_out <> [] || a.store_in <> [] || a.store_out <> []
      in
      if local then Bytes.set t.flag_local i '\001';
      if a.global_in <> [] || a.entry_in <> [] || a.exit_in <> [] then Bytes.set t.flag_gin i '\001';
      if a.global_out <> [] || a.entry_out <> [] || a.exit_out <> [] then
        Bytes.set t.flag_gout i '\001'
    done;
    let nn = t.n_nodes in
    let adjs = t.adjs in
    t.packed <-
      Some
        {
          p_new_in = pack_nodes nn adjs (fun a -> a.new_in);
          p_new_out = pack_nodes nn adjs (fun a -> a.new_out);
          p_assign_in = pack_nodes nn adjs (fun a -> a.assign_in);
          p_assign_out = pack_nodes nn adjs (fun a -> a.assign_out);
          p_global_in = pack_nodes nn adjs (fun a -> a.global_in);
          p_global_out = pack_nodes nn adjs (fun a -> a.global_out);
          p_load_in = pack_pairs nn adjs (fun a -> a.load_in);
          p_load_out = pack_pairs nn adjs (fun a -> a.load_out);
          p_store_in = pack_pairs nn adjs (fun a -> a.store_in);
          p_store_out = pack_pairs nn adjs (fun a -> a.store_out);
          p_entry_in = pack_pairs nn adjs (fun a -> a.entry_in);
          p_entry_out = pack_pairs nn adjs (fun a -> a.entry_out);
          p_exit_in = pack_pairs nn adjs (fun a -> a.exit_in);
          p_exit_out = pack_pairs nn adjs (fun a -> a.exit_out);
        };
    (* per-field indices, eagerly: the frozen graph must need no further
       writes, so concurrent readers never race on a lazy memo *)
    for b = 0 to t.n_nodes - 1 do
      List.iter
        (fun (f, dst) ->
          Hashtbl.replace t.loads_by_field f
            ((b, dst) :: Option.value ~default:[] (Hashtbl.find_opt t.loads_by_field f)))
        adjs.(b).load_out;
      List.iter
        (fun (f, src) ->
          Hashtbl.replace t.stores_by_field f
            ((b, src) :: Option.value ~default:[] (Hashtbl.find_opt t.stores_by_field f)))
        adjs.(b).store_in
    done;
    (* construction-only state: the dedup table and the list adjacency are
       dead weight once packed — drop them to cut resident memory *)
    Hashtbl.reset t.dedup;
    t.adjs <- [||]
  end

(* Adjacency accessors: CSR views once frozen, build-side lists before. *)
let new_in t n = match t.packed with Some p -> slab_nodes p.p_new_in n | None -> (adj t n).new_in
let new_out t n = match t.packed with Some p -> slab_nodes p.p_new_out n | None -> (adj t n).new_out

let assign_in t n =
  match t.packed with Some p -> slab_nodes p.p_assign_in n | None -> (adj t n).assign_in

let assign_out t n =
  match t.packed with Some p -> slab_nodes p.p_assign_out n | None -> (adj t n).assign_out

let global_in t n =
  match t.packed with Some p -> slab_nodes p.p_global_in n | None -> (adj t n).global_in

let global_out t n =
  match t.packed with Some p -> slab_nodes p.p_global_out n | None -> (adj t n).global_out

let load_in t n = match t.packed with Some p -> slab_pairs p.p_load_in n | None -> (adj t n).load_in

let load_out t n =
  match t.packed with Some p -> slab_pairs p.p_load_out n | None -> (adj t n).load_out

let store_in t n =
  match t.packed with Some p -> slab_pairs p.p_store_in n | None -> (adj t n).store_in

let store_out t n =
  match t.packed with Some p -> slab_pairs p.p_store_out n | None -> (adj t n).store_out

let entry_in t n =
  match t.packed with Some p -> slab_pairs p.p_entry_in n | None -> (adj t n).entry_in

let entry_out t n =
  match t.packed with Some p -> slab_pairs p.p_entry_out n | None -> (adj t n).entry_out

let exit_in t n = match t.packed with Some p -> slab_pairs p.p_exit_in n | None -> (adj t n).exit_in

let exit_out t n =
  match t.packed with Some p -> slab_pairs p.p_exit_out n | None -> (adj t n).exit_out

let scan_field t f ~index ~select =
  if t.frozen then Option.value ~default:[] (Hashtbl.find_opt index f)
  else begin
    let acc = ref [] in
    Array.iteri
      (fun n a -> List.iter (fun (g, other) -> if g = f then acc := (n, other) :: !acc) (select a))
      t.adjs;
    !acc
  end

let loads_of_field t f = scan_field t f ~index:t.loads_by_field ~select:(fun a -> a.load_out)

let stores_of_field t f = scan_field t f ~index:t.stores_by_field ~select:(fun a -> a.store_in)

let require_frozen t name = if not t.frozen then invalid_arg (name ^ ": call Pag.freeze first")

let has_local_edges t n =
  require_frozen t "Pag.has_local_edges";
  Bytes.get t.flag_local n = '\001'

let has_global_in t n =
  require_frozen t "Pag.has_global_in";
  Bytes.get t.flag_gin n = '\001'

let has_global_out t n =
  require_frozen t "Pag.has_global_out";
  Bytes.get t.flag_gout n = '\001'

(* ------------------------- pruning oracle --------------------------- *)

let oracle_word_bits = Sys.int_size

let set_oracle t row_of =
  if t.oracle_stride <> 0 then invalid_arg "Pag.set_oracle: oracle already installed";
  let n_sites = t.n_nodes - t.obj_base in
  let stride = max 1 ((n_sites + oracle_word_bits - 1) / oracle_word_bits) in
  let slab = Array.make (max 1 (t.n_nodes * stride)) 0 in
  for n = 0 to t.n_nodes - 1 do
    let base = n * stride in
    Pts_util.Bitset.iter (row_of n) (fun site ->
        if site < 0 || site >= n_sites then invalid_arg "Pag.set_oracle: site out of range";
        let w = base + (site / oracle_word_bits) in
        slab.(w) <- slab.(w) lor (1 lsl (site mod oracle_word_bits)))
  done;
  t.oracle <- slab;
  t.oracle_stride <- stride

let has_oracle t = t.oracle_stride > 0

let oracle_row_empty t n =
  let s = t.oracle_stride in
  s > 0
  &&
  let base = n * s in
  let rec go i = i >= s || (t.oracle.(base + i) = 0 && go (i + 1)) in
  go 0

let oracle_mem t n site =
  let s = t.oracle_stride in
  s = 0
  || t.oracle.((n * s) + (site / oracle_word_bits)) land (1 lsl (site mod oracle_word_bits)) <> 0

let oracle_disjoint t m n =
  let s = t.oracle_stride in
  s > 0
  &&
  let bm = m * s and bn = n * s in
  let rec go i = i >= s || (t.oracle.(bm + i) land t.oracle.(bn + i) = 0 && go (i + 1)) in
  go 0

let oracle_singleton t n =
  let s = t.oracle_stride in
  if s = 0 then None
  else begin
    let base = n * s in
    let found = ref (-1) in
    try
      for i = 0 to s - 1 do
        let w = t.oracle.(base + i) in
        if w <> 0 then begin
          if !found >= 0 || w land (w - 1) <> 0 then raise Exit;
          let rec bit_index b j = if b land 1 <> 0 then j else bit_index (b lsr 1) (j + 1) in
          found := (i * oracle_word_bits) + bit_index w 0
        end
      done;
      if !found >= 0 then Some !found else None
    with Exit -> None
  end

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let oracle_row_size t n =
  let s = t.oracle_stride in
  if s = 0 then 0
  else begin
    let base = n * s in
    let acc = ref 0 in
    for i = 0 to s - 1 do
      acc := !acc + popcount t.oracle.(base + i)
    done;
    !acc
  end

let edge_counts t = t.counts

let locality t =
  let c = t.counts in
  let local = c.n_new + c.n_assign + c.n_load + c.n_store in
  let global = c.n_entry + c.n_exit + c.n_assign_global in
  if local + global = 0 then 1.0 else float_of_int local /. float_of_int (local + global)

let touched_counts t =
  let objs = ref 0 and locals = ref 0 and globals = ref 0 in
  let tally i touched =
    if touched then
      if i >= t.obj_base then incr objs else if i >= t.global_base then incr globals else incr locals
  in
  (match t.packed with
  | Some p ->
    for i = 0 to t.n_nodes - 1 do
      tally i
        (degree p.p_new_in i > 0 || degree p.p_new_out i > 0 || degree p.p_assign_in i > 0
        || degree p.p_assign_out i > 0 || degree p.p_global_in i > 0 || degree p.p_global_out i > 0
        || degree p.p_load_in i > 0 || degree p.p_load_out i > 0 || degree p.p_store_in i > 0
        || degree p.p_store_out i > 0 || degree p.p_entry_in i > 0 || degree p.p_entry_out i > 0
        || degree p.p_exit_in i > 0 || degree p.p_exit_out i > 0)
    done
  | None ->
    for i = 0 to t.n_nodes - 1 do
      let a = t.adjs.(i) in
      tally i
        (a.new_in <> [] || a.new_out <> [] || a.assign_in <> [] || a.assign_out <> []
        || a.global_in <> [] || a.global_out <> [] || a.load_in <> [] || a.load_out <> []
        || a.store_in <> [] || a.store_out <> [] || a.entry_in <> [] || a.entry_out <> []
        || a.exit_in <> [] || a.exit_out <> [])
    done);
  (!objs, !locals, !globals)

type node = int
type fld = int
type site = int

type node_kind =
  | Local of { meth : int; var : int }
  | Global of int
  | Obj of int

(* Per-node adjacency, indexed by label and direction. Lists are the
   build-side representation only: [freeze] packs them into int-array CSR
   slabs and drops them, so queries run over dense read-only arrays. *)
type adj = {
  mutable new_in : node list;
  mutable new_out : node list;
  mutable assign_in : node list;
  mutable assign_out : node list;
  mutable global_in : node list;
  mutable global_out : node list;
  mutable load_in : (fld * node) list;
  mutable load_out : (fld * node) list;
  mutable store_in : (fld * node) list;
  mutable store_out : (fld * node) list;
  mutable entry_in : (site * node) list;
  mutable entry_out : (site * node) list;
  mutable exit_in : (site * node) list;
  mutable exit_out : (site * node) list;
}

(* One CSR slab: edges of node [n] occupy [off.(n) .. off.(n+1)-1] in
   [dst] (neighbour ids) and, for labelled slabs, [aux] (field or call
   site, parallel to [dst]; [||] for unlabelled slabs). *)
type slab = { off : int array; dst : int array; aux : int array }

type packed = {
  p_new_in : slab;
  p_new_out : slab;
  p_assign_in : slab;
  p_assign_out : slab;
  p_global_in : slab;
  p_global_out : slab;
  p_load_in : slab;
  p_load_out : slab;
  p_store_in : slab;
  p_store_out : slab;
  p_entry_in : slab;
  p_entry_out : slab;
  p_exit_in : slab;
  p_exit_out : slab;
}

type edge_counts = {
  n_new : int;
  n_assign : int;
  n_load : int;
  n_store : int;
  n_entry : int;
  n_exit : int;
  n_assign_global : int;
}

type t = {
  prog : Ir.program;
  var_base : int array; (* node id of var 0 of each method *)
  global_base : int;
  obj_base : int;
  n_nodes : int;
  mutable adjs : adj array; (* build side; emptied at freeze *)
  dedup : (int * int * int * int, unit) Hashtbl.t; (* (label tag, src, dst, f-or-site) *)
  mutable recursive_sites : bool array;
  mutable counts : edge_counts;
  mutable frozen : bool;
  mutable packed : packed option; (* the read side, valid after freeze *)
  mutable flag_local : Bytes.t; (* per-node flags, valid after freeze *)
  mutable flag_gin : Bytes.t;
  mutable flag_gout : Bytes.t;
  (* per-field edge indices, filled eagerly at freeze so the frozen
     structure is genuinely read-only (safe to share across domains) *)
  loads_by_field : (fld, (node * node) list) Hashtbl.t;
  stores_by_field : (fld, (node * node) list) Hashtbl.t;
  (* Andersen pruning oracle: flat per-node bitset rows over allocation
     sites, [oracle_stride] words per node; stride 0 means no oracle is
     installed and every accessor answers conservatively. *)
  mutable oracle : int array;
  mutable oracle_stride : int;
  (* Rows invalidated by post-freeze edge insertions answer conservatively
     (an insertion can only grow true points-to sets, so the frozen rows
     may under-approximate exactly on the forward-reachable cone of the
     inserted value). Empty = every row still valid. *)
  mutable oracle_valid : Bytes.t;
  (* Post-freeze edit overlay (base slabs stay immutable), edit-batch
     counter, and an order-independent XOR hash of the current edge set. *)
  mutable delta : Delta.t option;
  mutable epoch : int;
  mutable ghash : int;
  (* Allocation sites whose abstract object conflates several runtime
     objects (arrays, null pseudo-allocations, loop allocations): never
     admissible for a strong update. *)
  site_summary : Bytes.t;
  (* Nodes that were an endpoint of any applied edit, cumulatively.
     Flow-sensitive reasoning derived from the IR is only valid at nodes
     the overlay never touched. *)
  mutable overlay_dirty : Bytes.t;
  (* Fields that gained or lost a store edge through the overlay,
     cumulatively. Overlay store edges are flow-insensitive — they could
     execute between any IR store and a later load — so a flow-sensitive
     kill on such a field is unsound even when every scanned node is
     overlay-clean. *)
  overlay_fields : (fld, unit) Hashtbl.t;
}

(* A site is a summary object when one abstract object stands for several
   runtime objects at once: array objects (all elements collapse onto one
   field), null pseudo-allocations, and allocations under a loop (one per
   iteration). Methods lowered without depth metadata report every
   instruction as maximally nested, so their sites are conservatively
   summary too. *)
let compute_site_summary (prog : Ir.program) =
  let n_sites = Array.length prog.Ir.allocs in
  let b = Bytes.make (max 1 n_sites) '\000' in
  Array.iteri
    (fun site (a : Ir.alloc_site) ->
      if a.Ir.alloc_is_null || Types.is_array_class prog.Ir.ctable a.Ir.alloc_cls then
        Bytes.set b site '\001')
    prog.Ir.allocs;
  Array.iter
    (fun (m : Ir.meth) ->
      List.iteri
        (fun i instr ->
          match instr with
          | Ir.Alloc { site; _ } ->
            let loop, _ = Ir.instr_depth m i in
            if loop > 0 && site >= 0 && site < n_sites then Bytes.set b site '\001'
          | _ -> ())
        m.Ir.body)
    prog.Ir.methods;
  b

let fresh_adj () =
  {
    new_in = []; new_out = []; assign_in = []; assign_out = []; global_in = []; global_out = [];
    load_in = []; load_out = []; store_in = []; store_out = []; entry_in = []; entry_out = [];
    exit_in = []; exit_out = [];
  }

let create (prog : Ir.program) =
  let n_methods = Array.length prog.Ir.methods in
  let var_base = Array.make n_methods 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i (m : Ir.meth) ->
      var_base.(i) <- !acc;
      acc := !acc + m.Ir.nvars)
    prog.Ir.methods;
  let global_base = !acc in
  let n_globals = Types.global_count prog.Ir.ctable in
  let obj_base = global_base + n_globals in
  let n_nodes = obj_base + Array.length prog.Ir.allocs in
  {
    prog;
    var_base;
    global_base;
    obj_base;
    n_nodes;
    adjs = Array.init (max n_nodes 1) (fun _ -> fresh_adj ());
    dedup = Hashtbl.create 4096;
    recursive_sites = Array.make (max 1 (Array.length prog.Ir.calls)) false;
    counts =
      { n_new = 0; n_assign = 0; n_load = 0; n_store = 0; n_entry = 0; n_exit = 0;
        n_assign_global = 0 };
    frozen = false;
    packed = None;
    flag_local = Bytes.empty;
    flag_gin = Bytes.empty;
    flag_gout = Bytes.empty;
    loads_by_field = Hashtbl.create 64;
    stores_by_field = Hashtbl.create 64;
    oracle = [||];
    oracle_stride = 0;
    oracle_valid = Bytes.empty;
    delta = None;
    epoch = 0;
    ghash = 0;
    site_summary = compute_site_summary prog;
    overlay_dirty = Bytes.empty;
    overlay_fields = Hashtbl.create 8;
  }

let program t = t.prog

let node_count t = t.n_nodes

let local_node t ~meth ~var =
  let m = t.prog.Ir.methods.(meth) in
  if var < 0 || var >= m.Ir.nvars then invalid_arg "Pag.local_node: variable out of range";
  t.var_base.(meth) + var

let global_node t g =
  if g < 0 || g >= t.obj_base - t.global_base then invalid_arg "Pag.global_node";
  t.global_base + g

let obj_node t site =
  if site < 0 || site >= t.n_nodes - t.obj_base then invalid_arg "Pag.obj_node";
  t.obj_base + site

let kind t n =
  if n < 0 || n >= t.n_nodes then invalid_arg "Pag.kind: bad node";
  if n >= t.obj_base then Obj (n - t.obj_base)
  else if n >= t.global_base then Global (n - t.global_base)
  else begin
    (* binary search for the owning method *)
    let lo = ref 0 and hi = ref (Array.length t.var_base - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.var_base.(mid) <= n then lo := mid else hi := mid - 1
    done;
    Local { meth = !lo; var = n - t.var_base.(!lo) }
  end

let is_obj t n = n >= t.obj_base && n < t.n_nodes

let obj_site t n =
  if is_obj t n then n - t.obj_base else invalid_arg "Pag.obj_site: not an object node"

let method_of_node t n =
  match kind t n with Local { meth; _ } -> Some meth | Global _ | Obj _ -> None

let node_name t n =
  match kind t n with
  | Local { meth; var } ->
    let m = t.prog.Ir.methods.(meth) in
    Printf.sprintf "%s::%s" m.Ir.pretty (Ir.var_name m var)
  | Global g ->
    let gi = Types.global_info t.prog.Ir.ctable g in
    Printf.sprintf "%s.%s$static"
      (Types.class_name t.prog.Ir.ctable gi.Types.glb_class)
      gi.Types.glb_name
  | Obj site -> Ir.alloc_name t.prog site

let check_not_frozen t = if t.frozen then invalid_arg "Pag: graph is frozen"

(* returns true when the edge is fresh *)
let dedup_edge t tag src dst aux =
  let key = (tag, src, dst, aux) in
  if Hashtbl.mem t.dedup key then false
  else begin
    Hashtbl.add t.dedup key ();
    true
  end

let adj t n = t.adjs.(n)

let add_new t ~obj_ ~dst =
  check_not_frozen t;
  if dedup_edge t 0 obj_ dst 0 then begin
    (match (adj t obj_).new_out with
    | [] -> ()
    | existing :: _ when existing <> dst ->
      invalid_arg
        (Printf.sprintf "Pag.add_new: allocation %s already flows to %s" (node_name t obj_)
           (node_name t existing))
    | _ :: _ -> ());
    (adj t dst).new_in <- obj_ :: (adj t dst).new_in;
    (adj t obj_).new_out <- dst :: (adj t obj_).new_out;
    t.counts <- { t.counts with n_new = t.counts.n_new + 1 }
  end

let add_assign t ~src ~dst =
  check_not_frozen t;
  if dedup_edge t 1 src dst 0 then begin
    (adj t dst).assign_in <- src :: (adj t dst).assign_in;
    (adj t src).assign_out <- dst :: (adj t src).assign_out;
    t.counts <- { t.counts with n_assign = t.counts.n_assign + 1 }
  end

let add_assign_global t ~src ~dst =
  check_not_frozen t;
  if dedup_edge t 2 src dst 0 then begin
    (adj t dst).global_in <- src :: (adj t dst).global_in;
    (adj t src).global_out <- dst :: (adj t src).global_out;
    t.counts <- { t.counts with n_assign_global = t.counts.n_assign_global + 1 }
  end

let add_load t ~base ~fld ~dst =
  check_not_frozen t;
  if dedup_edge t 3 base dst fld then begin
    (adj t dst).load_in <- (fld, base) :: (adj t dst).load_in;
    (adj t base).load_out <- (fld, dst) :: (adj t base).load_out;
    t.counts <- { t.counts with n_load = t.counts.n_load + 1 }
  end

let add_store t ~base ~fld ~src =
  check_not_frozen t;
  if dedup_edge t 4 src base fld then begin
    (adj t base).store_in <- (fld, src) :: (adj t base).store_in;
    (adj t src).store_out <- (fld, base) :: (adj t src).store_out;
    t.counts <- { t.counts with n_store = t.counts.n_store + 1 }
  end

let add_entry t ~site ~actual ~formal =
  check_not_frozen t;
  if dedup_edge t 5 actual formal site then begin
    (adj t formal).entry_in <- (site, actual) :: (adj t formal).entry_in;
    (adj t actual).entry_out <- (site, formal) :: (adj t actual).entry_out;
    t.counts <- { t.counts with n_entry = t.counts.n_entry + 1 }
  end

let add_exit t ~site ~retval ~dst =
  check_not_frozen t;
  if dedup_edge t 6 retval dst site then begin
    (adj t dst).exit_in <- (site, retval) :: (adj t dst).exit_in;
    (adj t retval).exit_out <- (site, dst) :: (adj t retval).exit_out;
    t.counts <- { t.counts with n_exit = t.counts.n_exit + 1 }
  end

let set_recursive_site t site =
  if site >= 0 && site < Array.length t.recursive_sites then t.recursive_sites.(site) <- true

let is_recursive_site t site =
  site >= 0 && site < Array.length t.recursive_sites && t.recursive_sites.(site)

(* --------------------------- edge hashing --------------------------- *)

(* Order-independent fingerprint of the logical edge set: XOR of a mixed
   hash of each edge's canonical (tag, a, b, aux) tuple — the same tuples
   the dedup table keys on. XOR is self-inverse, so deleting an edge
   re-applies its hash and a delete/re-add round-trip restores the exact
   fingerprint; it is maintained incrementally by [apply_edits] and
   equals the from-scratch fold at [freeze] by construction. *)

let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * 0x369DEA0F31A53F85 in
  (x lxor (x lsr 31)) land max_int

let edge_hash tag a b aux = mix (mix (mix (mix (tag + 1) + a) + b) + aux)

(* ------------------------- overlay side ids ------------------------- *)

(* One id per packed slab; [Delta] stores overlay edges per side under
   these indices. Unlabelled sides keep aux = 0. *)
let s_new_in = 0
let s_new_out = 1
let s_assign_in = 2
let s_assign_out = 3
let s_global_in = 4
let s_global_out = 5
let s_load_in = 6
let s_load_out = 7
let s_store_in = 8
let s_store_out = 9
let s_entry_in = 10
let s_entry_out = 11
let s_exit_in = 12
let s_exit_out = 13

(* ----------------------------- packing ------------------------------ *)

let pack_nodes n_nodes adjs select =
  let off = Array.make (n_nodes + 1) 0 in
  for i = 0 to n_nodes - 1 do
    off.(i + 1) <- off.(i) + List.length (select adjs.(i))
  done;
  let dst = Array.make off.(n_nodes) 0 in
  for i = 0 to n_nodes - 1 do
    let k = ref off.(i) in
    List.iter
      (fun x ->
        dst.(!k) <- x;
        incr k)
      (select adjs.(i))
  done;
  { off; dst; aux = [||] }

let pack_pairs n_nodes adjs select =
  let off = Array.make (n_nodes + 1) 0 in
  for i = 0 to n_nodes - 1 do
    off.(i + 1) <- off.(i) + List.length (select adjs.(i))
  done;
  let dst = Array.make off.(n_nodes) 0 in
  let aux = Array.make off.(n_nodes) 0 in
  for i = 0 to n_nodes - 1 do
    let k = ref off.(i) in
    List.iter
      (fun (a, x) ->
        aux.(!k) <- a;
        dst.(!k) <- x;
        incr k)
      (select adjs.(i))
  done;
  { off; dst; aux }

let degree s n = s.off.(n + 1) - s.off.(n)

(* Post-freeze list views, reconstructed from the slabs (cold paths only;
   the kernel iterates the arrays directly). *)
let slab_nodes s n =
  let lo = s.off.(n) in
  let rec go k acc = if k < lo then acc else go (k - 1) (s.dst.(k) :: acc) in
  go (s.off.(n + 1) - 1) []

let slab_pairs s n =
  let lo = s.off.(n) in
  let rec go k acc = if k < lo then acc else go (k - 1) ((s.aux.(k), s.dst.(k)) :: acc) in
  go (s.off.(n + 1) - 1) []

let packed t =
  match t.packed with
  | Some p -> p
  | None -> invalid_arg "Pag.packed: call Pag.freeze first"

let freeze t =
  if not t.frozen then begin
    t.frozen <- true;
    let n = max t.n_nodes 1 in
    t.flag_local <- Bytes.make n '\000';
    t.flag_gin <- Bytes.make n '\000';
    t.flag_gout <- Bytes.make n '\000';
    for i = 0 to t.n_nodes - 1 do
      let a = t.adjs.(i) in
      let local =
        a.new_in <> [] || a.new_out <> [] || a.assign_in <> [] || a.assign_out <> []
        || a.load_in <> [] || a.load_out <> [] || a.store_in <> [] || a.store_out <> []
      in
      if local then Bytes.set t.flag_local i '\001';
      if a.global_in <> [] || a.entry_in <> [] || a.exit_in <> [] then Bytes.set t.flag_gin i '\001';
      if a.global_out <> [] || a.entry_out <> [] || a.exit_out <> [] then
        Bytes.set t.flag_gout i '\001'
    done;
    let nn = t.n_nodes in
    let adjs = t.adjs in
    t.packed <-
      Some
        {
          p_new_in = pack_nodes nn adjs (fun a -> a.new_in);
          p_new_out = pack_nodes nn adjs (fun a -> a.new_out);
          p_assign_in = pack_nodes nn adjs (fun a -> a.assign_in);
          p_assign_out = pack_nodes nn adjs (fun a -> a.assign_out);
          p_global_in = pack_nodes nn adjs (fun a -> a.global_in);
          p_global_out = pack_nodes nn adjs (fun a -> a.global_out);
          p_load_in = pack_pairs nn adjs (fun a -> a.load_in);
          p_load_out = pack_pairs nn adjs (fun a -> a.load_out);
          p_store_in = pack_pairs nn adjs (fun a -> a.store_in);
          p_store_out = pack_pairs nn adjs (fun a -> a.store_out);
          p_entry_in = pack_pairs nn adjs (fun a -> a.entry_in);
          p_entry_out = pack_pairs nn adjs (fun a -> a.entry_out);
          p_exit_in = pack_pairs nn adjs (fun a -> a.exit_in);
          p_exit_out = pack_pairs nn adjs (fun a -> a.exit_out);
        };
    (* per-field indices, eagerly: the frozen graph must need no further
       writes, so concurrent readers never race on a lazy memo *)
    for b = 0 to t.n_nodes - 1 do
      List.iter
        (fun (f, dst) ->
          Hashtbl.replace t.loads_by_field f
            ((b, dst) :: Option.value ~default:[] (Hashtbl.find_opt t.loads_by_field f)))
        adjs.(b).load_out;
      List.iter
        (fun (f, src) ->
          Hashtbl.replace t.stores_by_field f
            ((b, src) :: Option.value ~default:[] (Hashtbl.find_opt t.stores_by_field f)))
        adjs.(b).store_in
    done;
    (* graph hash: fold every logical edge once via its in-side, with the
       same canonical (tag, a, b, aux) tuples the dedup table keys on *)
    let gh = ref 0 in
    for i = 0 to t.n_nodes - 1 do
      let a = adjs.(i) in
      List.iter (fun o -> gh := !gh lxor edge_hash 0 o i 0) a.new_in;
      List.iter (fun src -> gh := !gh lxor edge_hash 1 src i 0) a.assign_in;
      List.iter (fun src -> gh := !gh lxor edge_hash 2 src i 0) a.global_in;
      List.iter (fun (f, base) -> gh := !gh lxor edge_hash 3 base i f) a.load_in;
      List.iter (fun (f, src) -> gh := !gh lxor edge_hash 4 src i f) a.store_in;
      List.iter (fun (site, actual) -> gh := !gh lxor edge_hash 5 actual i site) a.entry_in;
      List.iter (fun (site, retval) -> gh := !gh lxor edge_hash 6 retval i site) a.exit_in
    done;
    t.ghash <- !gh;
    (* construction-only state: the dedup table and the list adjacency are
       dead weight once packed — drop them to cut resident memory *)
    Hashtbl.reset t.dedup;
    t.adjs <- [||]
  end

(* Overlay composition for the list accessors: base slab minus tombstones,
   then overlay edges in insertion order. With no delta both helpers are
   the identity on the slab view. *)
let overlay_nodes t i n base =
  match t.delta with
  | None -> base
  | Some d ->
    let base =
      if Delta.has_deletions d i then
        List.filter (fun x -> not (Delta.is_deleted d i n 0 x)) base
      else base
    in
    (match Delta.added_at d i n with [] -> base | l -> base @ List.rev_map snd l)

let overlay_pairs t i n base =
  match t.delta with
  | None -> base
  | Some d ->
    let base =
      if Delta.has_deletions d i then
        List.filter (fun (a, o) -> not (Delta.is_deleted d i n a o)) base
      else base
    in
    (match Delta.added_at d i n with [] -> base | l -> base @ List.rev l)

(* Adjacency accessors: CSR views (composed with the edit overlay) once
   frozen, build-side lists before. *)
let new_in t n =
  match t.packed with
  | Some p -> overlay_nodes t s_new_in n (slab_nodes p.p_new_in n)
  | None -> (adj t n).new_in

let new_out t n =
  match t.packed with
  | Some p -> overlay_nodes t s_new_out n (slab_nodes p.p_new_out n)
  | None -> (adj t n).new_out

let assign_in t n =
  match t.packed with
  | Some p -> overlay_nodes t s_assign_in n (slab_nodes p.p_assign_in n)
  | None -> (adj t n).assign_in

let assign_out t n =
  match t.packed with
  | Some p -> overlay_nodes t s_assign_out n (slab_nodes p.p_assign_out n)
  | None -> (adj t n).assign_out

let global_in t n =
  match t.packed with
  | Some p -> overlay_nodes t s_global_in n (slab_nodes p.p_global_in n)
  | None -> (adj t n).global_in

let global_out t n =
  match t.packed with
  | Some p -> overlay_nodes t s_global_out n (slab_nodes p.p_global_out n)
  | None -> (adj t n).global_out

let load_in t n =
  match t.packed with
  | Some p -> overlay_pairs t s_load_in n (slab_pairs p.p_load_in n)
  | None -> (adj t n).load_in

let load_out t n =
  match t.packed with
  | Some p -> overlay_pairs t s_load_out n (slab_pairs p.p_load_out n)
  | None -> (adj t n).load_out

let store_in t n =
  match t.packed with
  | Some p -> overlay_pairs t s_store_in n (slab_pairs p.p_store_in n)
  | None -> (adj t n).store_in

let store_out t n =
  match t.packed with
  | Some p -> overlay_pairs t s_store_out n (slab_pairs p.p_store_out n)
  | None -> (adj t n).store_out

let entry_in t n =
  match t.packed with
  | Some p -> overlay_pairs t s_entry_in n (slab_pairs p.p_entry_in n)
  | None -> (adj t n).entry_in

let entry_out t n =
  match t.packed with
  | Some p -> overlay_pairs t s_entry_out n (slab_pairs p.p_entry_out n)
  | None -> (adj t n).entry_out

let exit_in t n =
  match t.packed with
  | Some p -> overlay_pairs t s_exit_in n (slab_pairs p.p_exit_in n)
  | None -> (adj t n).exit_in

let exit_out t n =
  match t.packed with
  | Some p -> overlay_pairs t s_exit_out n (slab_pairs p.p_exit_out n)
  | None -> (adj t n).exit_out

let scan_field t f ~index ~select =
  if t.frozen then Option.value ~default:[] (Hashtbl.find_opt index f)
  else begin
    let acc = ref [] in
    Array.iteri
      (fun n a -> List.iter (fun (g, other) -> if g = f then acc := (n, other) :: !acc) (select a))
      t.adjs;
    !acc
  end

let loads_of_field t f = scan_field t f ~index:t.loads_by_field ~select:(fun a -> a.load_out)

let stores_of_field t f = scan_field t f ~index:t.stores_by_field ~select:(fun a -> a.store_in)

let require_frozen t name = if not t.frozen then invalid_arg (name ^ ": call Pag.freeze first")

let has_local_edges t n =
  require_frozen t "Pag.has_local_edges";
  Bytes.get t.flag_local n = '\001'

let has_global_in t n =
  require_frozen t "Pag.has_global_in";
  Bytes.get t.flag_gin n = '\001'

let has_global_out t n =
  require_frozen t "Pag.has_global_out";
  Bytes.get t.flag_gout n = '\001'

(* ------------------------- unified view ----------------------------- *)

let slab_of_side p = function
  | 0 -> p.p_new_in
  | 1 -> p.p_new_out
  | 2 -> p.p_assign_in
  | 3 -> p.p_assign_out
  | 4 -> p.p_global_in
  | 5 -> p.p_global_out
  | 6 -> p.p_load_in
  | 7 -> p.p_load_out
  | 8 -> p.p_store_in
  | 9 -> p.p_store_out
  | 10 -> p.p_entry_in
  | 11 -> p.p_entry_out
  | 12 -> p.p_exit_in
  | 13 -> p.p_exit_out
  | _ -> invalid_arg "Pag.slab_of_side"

(* The allocation-free successor view the engines traverse: base slab
   first (skipping tombstones only when the side has any), then overlay
   edges in insertion order. With no delta this is exactly the old direct
   slab loop plus one branch per call. *)
module View = struct
  let iter_side_nodes t i n f =
    let slab = slab_of_side (packed t) i in
    let lo = slab.off.(n) and hi = slab.off.(n + 1) - 1 in
    (match t.delta with
    | Some d when Delta.has_deletions d i ->
      for k = lo to hi do
        let x = slab.dst.(k) in
        if not (Delta.is_deleted d i n 0 x) then f x
      done
    | _ ->
      for k = lo to hi do
        f slab.dst.(k)
      done);
    match t.delta with None -> () | Some d -> Delta.iter_added d i n (fun _ x -> f x)

  let iter_side_pairs t i n f =
    let slab = slab_of_side (packed t) i in
    let lo = slab.off.(n) and hi = slab.off.(n + 1) - 1 in
    (match t.delta with
    | Some d when Delta.has_deletions d i ->
      for k = lo to hi do
        let a = slab.aux.(k) and x = slab.dst.(k) in
        if not (Delta.is_deleted d i n a x) then f a x
      done
    | _ ->
      for k = lo to hi do
        f slab.aux.(k) slab.dst.(k)
      done);
    match t.delta with None -> () | Some d -> Delta.iter_added d i n f

  let iter_new_in t n f = iter_side_nodes t s_new_in n f
  let iter_new_out t n f = iter_side_nodes t s_new_out n f
  let iter_assign_in t n f = iter_side_nodes t s_assign_in n f
  let iter_assign_out t n f = iter_side_nodes t s_assign_out n f
  let iter_global_in t n f = iter_side_nodes t s_global_in n f
  let iter_global_out t n f = iter_side_nodes t s_global_out n f
  let iter_load_in t n f = iter_side_pairs t s_load_in n f
  let iter_load_out t n f = iter_side_pairs t s_load_out n f
  let iter_store_in t n f = iter_side_pairs t s_store_in n f
  let iter_store_out t n f = iter_side_pairs t s_store_out n f
  let iter_entry_in t n f = iter_side_pairs t s_entry_in n f
  let iter_entry_out t n f = iter_side_pairs t s_entry_out n f
  let iter_exit_in t n f = iter_side_pairs t s_exit_in n f
  let iter_exit_out t n f = iter_side_pairs t s_exit_out n f

  exception Found

  let has_new_in t n =
    let slab = slab_of_side (packed t) s_new_in in
    match t.delta with
    | None -> slab.off.(n + 1) > slab.off.(n)
    | Some _ -> (
      try
        iter_new_in t n (fun _ -> raise Found);
        false
      with Found -> true)
end

(* ------------------------- pruning oracle --------------------------- *)

let oracle_word_bits = Sys.int_size

let set_oracle t row_of =
  if t.oracle_stride <> 0 then invalid_arg "Pag.set_oracle: oracle already installed";
  let n_sites = t.n_nodes - t.obj_base in
  let stride = max 1 ((n_sites + oracle_word_bits - 1) / oracle_word_bits) in
  let slab = Array.make (max 1 (t.n_nodes * stride)) 0 in
  for n = 0 to t.n_nodes - 1 do
    let base = n * stride in
    Pts_util.Bitset.iter (row_of n) (fun site ->
        if site < 0 || site >= n_sites then invalid_arg "Pag.set_oracle: site out of range";
        let w = base + (site / oracle_word_bits) in
        slab.(w) <- slab.(w) lor (1 lsl (site mod oracle_word_bits)))
  done;
  t.oracle <- slab;
  t.oracle_stride <- stride

let has_oracle t = t.oracle_stride > 0

(* Rows invalidated by edits (see [apply_edits]) answer conservatively:
   membership yes, emptiness/disjointness no, singleton unknown — exactly
   the no-oracle fallbacks, per row. *)
let oracle_row_valid t n =
  Bytes.length t.oracle_valid = 0 || Bytes.get t.oracle_valid n = '\001'

let oracle_row_empty t n =
  let s = t.oracle_stride in
  s > 0 && oracle_row_valid t n
  &&
  let base = n * s in
  let rec go i = i >= s || (t.oracle.(base + i) = 0 && go (i + 1)) in
  go 0

let oracle_mem t n site =
  let s = t.oracle_stride in
  s = 0
  || (not (oracle_row_valid t n))
  || t.oracle.((n * s) + (site / oracle_word_bits)) land (1 lsl (site mod oracle_word_bits)) <> 0

let oracle_disjoint t m n =
  let s = t.oracle_stride in
  s > 0
  && oracle_row_valid t m && oracle_row_valid t n
  &&
  let bm = m * s and bn = n * s in
  let rec go i = i >= s || (t.oracle.(bm + i) land t.oracle.(bn + i) = 0 && go (i + 1)) in
  go 0

let site_is_summary t site =
  site < 0 || site >= Bytes.length t.site_summary || Bytes.get t.site_summary site = '\001'

let oracle_singleton t n =
  let s = t.oracle_stride in
  if s = 0 || not (oracle_row_valid t n) then None
  else begin
    let base = n * s in
    let found = ref (-1) in
    try
      for i = 0 to s - 1 do
        let w = t.oracle.(base + i) in
        if w <> 0 then begin
          if !found >= 0 || w land (w - 1) <> 0 then raise Exit;
          let rec bit_index b j = if b land 1 <> 0 then j else bit_index (b lsr 1) (j + 1) in
          found := (i * oracle_word_bits) + bit_index w 0
        end
      done;
      (* A summary object is one abstract object for many runtime objects:
         a row of exactly one such site still gives no strong-update
         licence, so it is not reported as a singleton. *)
      if !found >= 0 && not (site_is_summary t !found) then Some !found else None
    with Exit -> None
  end

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let oracle_row_size t n =
  let s = t.oracle_stride in
  if s = 0 then 0
  else begin
    let base = n * s in
    let acc = ref 0 in
    for i = 0 to s - 1 do
      acc := !acc + popcount t.oracle.(base + i)
    done;
    !acc
  end

let edge_counts t = t.counts

let locality t =
  let c = t.counts in
  let local = c.n_new + c.n_assign + c.n_load + c.n_store in
  let global = c.n_entry + c.n_exit + c.n_assign_global in
  if local + global = 0 then 1.0 else float_of_int local /. float_of_int (local + global)

let touched_counts t =
  let objs = ref 0 and locals = ref 0 and globals = ref 0 in
  let tally i touched =
    if touched then
      if i >= t.obj_base then incr objs else if i >= t.global_base then incr globals else incr locals
  in
  (match t.packed with
  | Some p ->
    for i = 0 to t.n_nodes - 1 do
      tally i
        (degree p.p_new_in i > 0 || degree p.p_new_out i > 0 || degree p.p_assign_in i > 0
        || degree p.p_assign_out i > 0 || degree p.p_global_in i > 0 || degree p.p_global_out i > 0
        || degree p.p_load_in i > 0 || degree p.p_load_out i > 0 || degree p.p_store_in i > 0
        || degree p.p_store_out i > 0 || degree p.p_entry_in i > 0 || degree p.p_entry_out i > 0
        || degree p.p_exit_in i > 0 || degree p.p_exit_out i > 0)
    done
  | None ->
    for i = 0 to t.n_nodes - 1 do
      let a = t.adjs.(i) in
      tally i
        (a.new_in <> [] || a.new_out <> [] || a.assign_in <> [] || a.assign_out <> []
        || a.global_in <> [] || a.global_out <> [] || a.load_in <> [] || a.load_out <> []
        || a.store_in <> [] || a.store_out <> [] || a.entry_in <> [] || a.entry_out <> []
        || a.exit_in <> [] || a.exit_out <> [])
    done);
  (!objs, !locals, !globals)

(* --------------------------- post-freeze edits ----------------------- *)

type ekind =
  | Enew of { obj_ : node; dst : node }
  | Eassign of { src : node; dst : node }
  | Eglobal of { src : node; dst : node }
  | Eload of { base : node; fld : fld; dst : node }
  | Estore of { base : node; fld : fld; src : node }
  | Eentry of { site : site; actual : node; formal : node }
  | Eexit of { site : site; retval : node; dst : node }

type edit = Eadd of ekind | Edel of ekind

type commit = {
  c_epoch : int;
  c_dirty : node list;
  c_inserted : int;
  c_deleted : int;
  c_oracle_invalidated : int;
}

let epoch t = t.epoch

let node_overlay_clean t n =
  Bytes.length t.overlay_dirty = 0 || Bytes.get t.overlay_dirty n = '\000'

let field_overlay_clean t fld = not (Hashtbl.mem t.overlay_fields fld)

let graph_hash t = t.ghash

let delta_counts t =
  match t.delta with None -> (0, 0) | Some d -> (Delta.added_count d, Delta.deleted_count d)

(* Canonical decomposition of a logical edge: the dedup/hash tuple plus
   where each direction lives in the overlay. *)
type ecanon = {
  e_tag : int;
  e_a : int;
  e_b : int;
  e_aux : int;
  e_in_side : int;
  e_in_node : int;
  e_in_other : int;
  e_out_side : int;
  e_out_node : int;
  e_out_other : int;
}

let canon = function
  | Enew { obj_; dst } ->
    { e_tag = 0; e_a = obj_; e_b = dst; e_aux = 0; e_in_side = s_new_in; e_in_node = dst;
      e_in_other = obj_; e_out_side = s_new_out; e_out_node = obj_; e_out_other = dst }
  | Eassign { src; dst } ->
    { e_tag = 1; e_a = src; e_b = dst; e_aux = 0; e_in_side = s_assign_in; e_in_node = dst;
      e_in_other = src; e_out_side = s_assign_out; e_out_node = src; e_out_other = dst }
  | Eglobal { src; dst } ->
    { e_tag = 2; e_a = src; e_b = dst; e_aux = 0; e_in_side = s_global_in; e_in_node = dst;
      e_in_other = src; e_out_side = s_global_out; e_out_node = src; e_out_other = dst }
  | Eload { base; fld; dst } ->
    { e_tag = 3; e_a = base; e_b = dst; e_aux = fld; e_in_side = s_load_in; e_in_node = dst;
      e_in_other = base; e_out_side = s_load_out; e_out_node = base; e_out_other = dst }
  | Estore { base; fld; src } ->
    { e_tag = 4; e_a = src; e_b = base; e_aux = fld; e_in_side = s_store_in; e_in_node = base;
      e_in_other = src; e_out_side = s_store_out; e_out_node = src; e_out_other = base }
  | Eentry { site; actual; formal } ->
    { e_tag = 5; e_a = actual; e_b = formal; e_aux = site; e_in_side = s_entry_in;
      e_in_node = formal; e_in_other = actual; e_out_side = s_entry_out; e_out_node = actual;
      e_out_other = formal }
  | Eexit { site; retval; dst } ->
    { e_tag = 6; e_a = retval; e_b = dst; e_aux = site; e_in_side = s_exit_in; e_in_node = dst;
      e_in_other = retval; e_out_side = s_exit_out; e_out_node = retval; e_out_other = dst }

(* Does the edge exist in the current view (base minus tombstones plus
   overlay)? Probes the in-side only — the two directions are kept in
   lock-step by construction. *)
let view_mem t c =
  let in_base =
    let slab = slab_of_side (packed t) c.e_in_side in
    let hi = slab.off.(c.e_in_node + 1) - 1 in
    let has_aux = Array.length slab.aux > 0 in
    let rec scan k =
      k <= hi
      && ((slab.dst.(k) = c.e_in_other && ((not has_aux) || slab.aux.(k) = c.e_aux)) || scan (k + 1))
    in
    scan slab.off.(c.e_in_node)
  in
  match t.delta with
  | None -> in_base
  | Some d ->
    if in_base then not (Delta.is_deleted d c.e_in_side c.e_in_node c.e_aux c.e_in_other)
    else Delta.is_added d c.e_in_side c.e_in_node c.e_aux c.e_in_other

let bump_count t tag d =
  let c = t.counts in
  t.counts <-
    (match tag with
    | 0 -> { c with n_new = c.n_new + d }
    | 1 -> { c with n_assign = c.n_assign + d }
    | 2 -> { c with n_assign_global = c.n_assign_global + d }
    | 3 -> { c with n_load = c.n_load + d }
    | 4 -> { c with n_store = c.n_store + d }
    | 5 -> { c with n_entry = c.n_entry + d }
    | _ -> { c with n_exit = c.n_exit + d })

(* Per-field index maintenance. Appends keep the frozen prefix stable, so
   a rebuilt graph replaying the same edit history reproduces the exact
   same index order (traversal order must be a pure function of the
   history for incremental-vs-rebuild byte-equality). *)
let index_add idx f pair =
  Hashtbl.replace idx f (Option.value ~default:[] (Hashtbl.find_opt idx f) @ [ pair ])

let index_remove idx f pair =
  match Hashtbl.find_opt idx f with
  | None -> ()
  | Some l ->
    let rec drop = function [] -> [] | x :: r when x = pair -> r | x :: r -> x :: drop r in
    Hashtbl.replace idx f (drop l)

let recompute_flags t n =
  let local =
    new_in t n <> [] || new_out t n <> [] || assign_in t n <> [] || assign_out t n <> []
    || load_in t n <> [] || load_out t n <> [] || store_in t n <> [] || store_out t n <> []
  in
  Bytes.set t.flag_local n (if local then '\001' else '\000');
  let gin = global_in t n <> [] || entry_in t n <> [] || exit_in t n <> [] in
  Bytes.set t.flag_gin n (if gin then '\001' else '\000');
  let gout = global_out t n <> [] || entry_out t n <> [] || exit_out t n <> [] in
  Bytes.set t.flag_gout n (if gout then '\001' else '\000')

(* Insertions can grow true points-to sets, so the frozen Andersen rows
   may under-approximate — unsound for pruning — on every node forward-
   reachable from the insertion's value destination in the field-based
   flow graph (copies, calls/returns without context, store(f) jumping to
   every load of f: a superset of Andersen's propagation paths). Those
   rows are flipped to conservative. Deletions only shrink true sets, so
   existing rows stay over-approximate and remain sound untouched. *)
let invalidate_oracle t seeds =
  if t.oracle_stride = 0 then 0
  else begin
    if Bytes.length t.oracle_valid = 0 then t.oracle_valid <- Bytes.make (max 1 t.n_nodes) '\001';
    let visited = Bytes.make (max 1 t.n_nodes) '\000' in
    let q = Queue.create () in
    let push n =
      if n >= 0 && n < t.n_nodes && Bytes.get visited n = '\000' then begin
        Bytes.set visited n '\001';
        Queue.add n q
      end
    in
    List.iter push seeds;
    let fresh = ref 0 in
    while not (Queue.is_empty q) do
      let n = Queue.pop q in
      if Bytes.get t.oracle_valid n = '\001' then begin
        Bytes.set t.oracle_valid n '\000';
        incr fresh
      end;
      List.iter push (assign_out t n);
      List.iter push (global_out t n);
      List.iter (fun (_, m) -> push m) (entry_out t n);
      List.iter (fun (_, m) -> push m) (exit_out t n);
      List.iter
        (fun (f, _) -> List.iter (fun (_, dst) -> push dst) (loads_of_field t f))
        (store_out t n)
    done;
    !fresh
  end

let apply_edits t edits =
  require_frozen t "Pag.apply_edits";
  let d =
    match t.delta with
    | Some d -> d
    | None ->
      let d = Delta.create () in
      t.delta <- Some d;
      d
  in
  let dirty = Hashtbl.create 16 in
  let mark n = Hashtbl.replace dirty n () in
  let inserted = ref 0 and deleted = ref 0 in
  let seeds = ref [] and store_fields = ref [] in
  let check_node n =
    if n < 0 || n >= t.n_nodes then invalid_arg "Pag.apply_edits: node out of range"
  in
  List.iter
    (fun ed ->
      let k = match ed with Eadd k | Edel k -> k in
      let c = canon k in
      check_node c.e_a;
      check_node c.e_b;
      match ed with
      | Eadd _ ->
        if not (view_mem t c) then begin
          (match k with
          | Enew { obj_; dst = _ } ->
            if not (is_obj t obj_) then
              invalid_arg "Pag.apply_edits: Enew source is not an object node";
            (match new_out t obj_ with
            | [] -> ()
            | existing :: _ ->
              invalid_arg
                (Printf.sprintf "Pag.apply_edits: allocation %s already flows to %s"
                   (node_name t obj_) (node_name t existing)))
          | _ -> ());
          if Delta.is_deleted d c.e_in_side c.e_in_node c.e_aux c.e_in_other then begin
            Delta.unmark_deleted d c.e_in_side c.e_in_node c.e_aux c.e_in_other;
            Delta.unmark_deleted d c.e_out_side c.e_out_node c.e_aux c.e_out_other
          end
          else begin
            Delta.add d c.e_in_side c.e_in_node c.e_aux c.e_in_other;
            Delta.add d c.e_out_side c.e_out_node c.e_aux c.e_out_other
          end;
          t.ghash <- t.ghash lxor edge_hash c.e_tag c.e_a c.e_b c.e_aux;
          bump_count t c.e_tag 1;
          incr inserted;
          mark c.e_a;
          mark c.e_b;
          (match k with
          | Eload { base; fld; dst } -> index_add t.loads_by_field fld (base, dst)
          | Estore { base; fld; src } ->
            index_add t.stores_by_field fld (base, src);
            Hashtbl.replace t.overlay_fields fld ()
          | _ -> ());
          (* oracle seed: where the inserted value first surfaces *)
          (match k with
          | Enew { dst; _ } | Eassign { dst; _ } | Eglobal { dst; _ } | Eload { dst; _ }
          | Eexit { dst; _ } ->
            seeds := dst :: !seeds
          | Eentry { formal; _ } -> seeds := formal :: !seeds
          | Estore { fld; _ } -> store_fields := fld :: !store_fields)
        end
      | Edel _ ->
        if view_mem t c then begin
          if Delta.is_added d c.e_in_side c.e_in_node c.e_aux c.e_in_other then begin
            Delta.remove_added d c.e_in_side c.e_in_node c.e_aux c.e_in_other;
            Delta.remove_added d c.e_out_side c.e_out_node c.e_aux c.e_out_other
          end
          else begin
            Delta.mark_deleted d c.e_in_side c.e_in_node c.e_aux c.e_in_other;
            Delta.mark_deleted d c.e_out_side c.e_out_node c.e_aux c.e_out_other
          end;
          t.ghash <- t.ghash lxor edge_hash c.e_tag c.e_a c.e_b c.e_aux;
          bump_count t c.e_tag (-1);
          incr deleted;
          mark c.e_a;
          mark c.e_b;
          match k with
          | Eload { base; fld; dst } -> index_remove t.loads_by_field fld (base, dst)
          | Estore { base; fld; src } ->
            index_remove t.stores_by_field fld (base, src);
            Hashtbl.replace t.overlay_fields fld ()
          | _ -> ()
        end)
    edits;
  Hashtbl.iter (fun n () -> recompute_flags t n) dirty;
  if Hashtbl.length dirty > 0 && Bytes.length t.overlay_dirty = 0 then
    t.overlay_dirty <- Bytes.make (max 1 t.n_nodes) '\000';
  Hashtbl.iter (fun n () -> Bytes.set t.overlay_dirty n '\001') dirty;
  (* a store's value surfaces at every load of its field, under the same
     field-based approximation the invalidation walk itself uses *)
  let seeds =
    !seeds
    @ List.concat_map
        (fun f -> List.map snd (loads_of_field t f))
        (List.sort_uniq compare !store_fields)
  in
  let inv = if !inserted > 0 then invalidate_oracle t seeds else 0 in
  t.epoch <- t.epoch + 1;
  let dl = List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) dirty []) in
  {
    c_epoch = t.epoch;
    c_dirty = dl;
    c_inserted = !inserted;
    c_deleted = !deleted;
    c_oracle_invalidated = inv;
  }

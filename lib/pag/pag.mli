(** The Pointer Assignment Graph (§2 of the paper).

    Nodes are method-local variables (V), globals/static fields (G) and
    allocation sites (O); edges carry the seven labels of the paper:
    [new], [assign], [assignglobal], [load(f)], [store(f)], [entry_i],
    [exit_i]. All edges are oriented in the direction of value flow.

    Adjacency is indexed exactly the way the demand-driven CFL analyses
    traverse it — by label and direction — plus a per-field index of all
    loads and stores (needed by the field-based "match edge" phase of
    REFINEPTS). The paper's local/global edge classification drives
    DYNSUM's PPTA: {!has_local_edges}, {!has_global_in}, {!has_global_out}.

    Node ids are dense: locals first (grouped by method), then globals,
    then allocation sites. *)

type t

type node = int

type fld = int

type site = int
(** Call-site id (context element). *)

(** {2 Construction} *)

val create : Ir.program -> t
(** Allocates all nodes for the program; no edges yet. *)

val program : t -> Ir.program

val local_node : t -> meth:int -> var:int -> node
val global_node : t -> int -> node
val obj_node : t -> int -> node

(** All [add_*] functions deduplicate silently. *)

val add_new : t -> obj_:node -> dst:node -> unit
(** @raise Invalid_argument if [obj_] already flows to a different variable:
    lowering guarantees a unique destination per allocation site, and the
    analyses' [new n̄ew] direction flip relies on it. *)

val add_assign : t -> src:node -> dst:node -> unit
(** Local assignment: both endpoints in the same method. *)

val add_assign_global : t -> src:node -> dst:node -> unit
(** Assignment with at least one global endpoint; context-insensitive. *)

val add_load : t -> base:node -> fld:fld -> dst:node -> unit
(** [dst = base.fld]. *)

val add_store : t -> base:node -> fld:fld -> src:node -> unit
(** [base.fld = src]. *)

val add_entry : t -> site:site -> actual:node -> formal:node -> unit

val add_exit : t -> site:site -> retval:node -> dst:node -> unit

val set_recursive_site : t -> site -> unit
(** Mark a call site as part of a call-graph cycle: the analyses traverse
    its entry/exit edges context-insensitively. *)

val freeze : t -> unit
(** Seal the graph: pack the list adjacency into int-array CSR slabs (one
    per label and direction), precompute the derived per-node flags and
    the per-field load/store indices, and free the construction-only
    state (the edge-dedup table and the build-side lists). Call after all
    edges are added; adding edges afterwards raises. A frozen graph is
    never written again, so it is safe to share across domains. *)

(** {2 The packed (CSR) adjacency — requires {!freeze}}

    The hot paths (the CFL kernel) iterate these slabs directly instead
    of materialising lists. Edges of node [n] in a slab [s] occupy
    [s.off.(n) .. s.off.(n+1) - 1] of [s.dst]; for the labelled slabs
    (load/store/entry/exit) the parallel [s.aux] carries the field or
    call-site id, and for the unlabelled ones it is [[||]]. *)

type slab = private { off : int array; dst : int array; aux : int array }

type packed = private {
  p_new_in : slab;
  p_new_out : slab;
  p_assign_in : slab;
  p_assign_out : slab;
  p_global_in : slab;
  p_global_out : slab;
  p_load_in : slab;
  p_load_out : slab;
  p_store_in : slab;
  p_store_out : slab;
  p_entry_in : slab;
  p_entry_out : slab;
  p_exit_in : slab;
  p_exit_out : slab;
}

val packed : t -> packed
(** @raise Invalid_argument before {!freeze}. *)

val degree : slab -> node -> int

(** {2 Node accessors} *)

type node_kind =
  | Local of { meth : int; var : int }
  | Global of int
  | Obj of int  (** allocation-site id *)

val node_count : t -> int
val kind : t -> node -> node_kind
val is_obj : t -> node -> bool
val obj_site : t -> node -> int
(** @raise Invalid_argument if not an object node. *)

val node_name : t -> node -> string
(** Human-readable, e.g. ["Vector.add::p"], ["Client.vec$static"], ["o26"]. *)

val method_of_node : t -> node -> int option
(** Enclosing method for locals; [None] for globals and objects. *)

(** {2 Adjacency (direction of value flow)}

    List views: backed by the build-side lists before {!freeze} and
    reconstructed from the CSR slabs afterwards (allocating — cold paths
    only; hot loops should use {!packed}). *)

val new_in : t -> node -> node list
(** At a variable [v]: objects [o] with [o -new-> v]. *)

val new_out : t -> node -> node list
(** At an object [o]: its (unique) destination variable, or [] . *)

val assign_in : t -> node -> node list
val assign_out : t -> node -> node list
val global_in : t -> node -> node list
val global_out : t -> node -> node list

val load_in : t -> node -> (fld * node) list
(** At a load destination [v]: pairs [(f, base)] with [v = base.f]. *)

val load_out : t -> node -> (fld * node) list
(** At a base [b]: pairs [(f, dst)] with [dst = b.f]. *)

val store_in : t -> node -> (fld * node) list
(** At a base [b]: pairs [(f, src)] with [b.f = src]. *)

val store_out : t -> node -> (fld * node) list
(** At a source [s]: pairs [(f, base)] with [base.f = s]. *)

val entry_in : t -> node -> (site * node) list
(** At a formal [p]: pairs [(i, actual)]. *)

val entry_out : t -> node -> (site * node) list
(** At an actual [a]: pairs [(i, formal)]. *)

val exit_in : t -> node -> (site * node) list
(** At a caller-side destination [d]: pairs [(i, retval)]. *)

val exit_out : t -> node -> (site * node) list
(** At a callee return value [r]: pairs [(i, dst)]. *)

val loads_of_field : t -> fld -> (node * node) list
(** All [(base, dst)] load edges of a field, program-wide. *)

val stores_of_field : t -> fld -> (node * node) list
(** All [(base, src)] store edges of a field, program-wide. *)

val is_recursive_site : t -> site -> bool

(** {2 PPTA classification (requires {!freeze})} *)

val has_local_edges : t -> node -> bool
(** Any incident [new]/[assign]/[load]/[store] edge. *)

val has_global_in : t -> node -> bool
(** Any incoming [assignglobal]/[entry]/[exit] edge. *)

val has_global_out : t -> node -> bool

(** {2 Pruning oracle}

    An optional flat slab mapping every PAG node to an over-approximate
    allocation-site set (its Andersen points-to set; object nodes map to
    their own site, pointer-free nodes to the empty set). Installed once
    by the whole-program pre-analysis {e before} {!freeze}, after which
    it is immutable and safe to share read-only across domains. The
    demand kernel consults it to skip traversal states that provably
    cannot reach the sought allocation — see {!Kernel.pruner}.

    Every accessor answers conservatively (prune nothing) when no oracle
    is installed, so hand-built and CHA-only graphs keep working. *)

val set_oracle : t -> (node -> Pts_util.Bitset.t) -> unit
(** [set_oracle t row_of] packs [row_of n] for every node into the flat
    slab. Call at most once. @raise Invalid_argument on a second call or
    if a row contains an id that is not an allocation site. *)

val has_oracle : t -> bool

val oracle_row_empty : t -> node -> bool
(** Node provably points to nothing. [false] when no oracle. *)

val oracle_mem : t -> node -> int -> bool
(** May [n] point to allocation site [site]? [true] when no oracle. *)

val oracle_disjoint : t -> node -> node -> bool
(** Are the two rows provably disjoint (definite no-alias)?
    [false] when no oracle. *)

val oracle_singleton : t -> node -> int option
(** [Some site] iff the row is exactly one site {e and} that site is not a
    summary object ({!site_is_summary}): the strong-update admission test.
    A singleton row over a summary site proves nothing — one abstract
    array, null or loop allocation stands for many runtime objects — so
    it answers [None], as it does when no oracle is installed. *)

val site_is_summary : t -> int -> bool
(** Does allocation site [site] conflate several runtime objects — an
    array object (every element collapses onto one field), a null
    pseudo-allocation, or an allocation under a loop (one object per
    iteration)? Sites of methods lowered without {!Ir.meth.depths}
    metadata are conservatively summary. Out-of-range sites answer
    [true]. *)

val oracle_row_size : t -> node -> int
(** Number of allocation sites in the node's row — the cost-model's
    proxy for how much of the graph a query rooted here can reach.
    [0] when no oracle is installed (indistinguishable from a genuinely
    empty row; use {!has_oracle} to tell them apart). *)

(** {2 Statistics} *)

type edge_counts = {
  n_new : int;
  n_assign : int;
  n_load : int;
  n_store : int;
  n_entry : int;
  n_exit : int;
  n_assign_global : int;
}

val edge_counts : t -> edge_counts

val locality : t -> float
(** Fraction of local edges among all edges (Table 3's "Locality"). *)

val touched_counts : t -> int * int * int
(** [(objs, locals, globals)] with at least one incident edge — the
    reachable part of the graph, which is what Table 3 reports. *)

(** {2 Successor view (base + overlay) — requires {!freeze}}

    The allocation-free adjacency the engines traverse: the frozen CSR
    slab first (skipping deleted edges), then edges inserted after
    {!freeze} in insertion order. With no pending edits this compiles
    down to the old direct slab loop; hot paths go through here so every
    engine transparently reads base+delta. *)

module View : sig
  val iter_new_in : t -> node -> (node -> unit) -> unit
  val iter_new_out : t -> node -> (node -> unit) -> unit
  val iter_assign_in : t -> node -> (node -> unit) -> unit
  val iter_assign_out : t -> node -> (node -> unit) -> unit
  val iter_global_in : t -> node -> (node -> unit) -> unit
  val iter_global_out : t -> node -> (node -> unit) -> unit

  val iter_load_in : t -> node -> (fld -> node -> unit) -> unit
  (** [f fld base] at a load destination. Labelled iterators pass the aux
      component (field or call-site id) first, then the other endpoint. *)

  val iter_load_out : t -> node -> (fld -> node -> unit) -> unit
  val iter_store_in : t -> node -> (fld -> node -> unit) -> unit
  val iter_store_out : t -> node -> (fld -> node -> unit) -> unit
  val iter_entry_in : t -> node -> (site -> node -> unit) -> unit
  val iter_entry_out : t -> node -> (site -> node -> unit) -> unit
  val iter_exit_in : t -> node -> (site -> node -> unit) -> unit
  val iter_exit_out : t -> node -> (site -> node -> unit) -> unit

  val has_new_in : t -> node -> bool
  (** Any [new] edge into this variable in the current view? Constant
      time on an unedited graph. *)
end

(** {2 Post-freeze edits}

    The frozen slabs stay immutable; edits accumulate in a delta overlay
    that every list accessor and {!View} iterator composes on the fly.
    Each {!apply_edits} batch bumps the {!epoch} and returns the set of
    dirty nodes so summary caches can invalidate exactly the entries
    whose derivations touched them. Edits must happen strictly between
    query batches (same discipline as {!freeze}): the overlay is read
    lock-free by querying domains. *)

type ekind =
  | Enew of { obj_ : node; dst : node }
  | Eassign of { src : node; dst : node }
  | Eglobal of { src : node; dst : node }
  | Eload of { base : node; fld : fld; dst : node }
  | Estore of { base : node; fld : fld; src : node }
  | Eentry of { site : site; actual : node; formal : node }
  | Eexit of { site : site; retval : node; dst : node }

type edit = Eadd of ekind | Edel of ekind

type commit = {
  c_epoch : int;  (** epoch after the batch *)
  c_dirty : node list;  (** endpoints of changed edges, sorted, deduped *)
  c_inserted : int;  (** edges actually inserted (duplicates skipped) *)
  c_deleted : int;  (** edges actually deleted (absent edges skipped) *)
  c_oracle_invalidated : int;  (** Andersen rows newly flipped to conservative *)
}

val apply_edits : t -> edit list -> commit
(** Apply a batch. Inserting an edge that already exists or deleting one
    that doesn't is a silent no-op (mirroring the builder's dedup); a
    delete followed by a re-add restores the graph exactly, including
    {!graph_hash}. Per-field indices, node flags, edge counts and the
    oracle validity map are maintained; inserted values trigger a
    forward-reachability sweep that conservatively invalidates oracle
    rows (deletions only shrink true sets, so existing rows stay sound).
    @raise Invalid_argument before {!freeze}, on an out-of-range node, or
    on an [Enew] that violates the unique-destination invariant. *)

val epoch : t -> int
(** 0 until the first {!apply_edits}; +1 per batch. Engines with
    graph-derived state (e.g. the field-based reachability index) compare
    this against the epoch they solved at. *)

val node_overlay_clean : t -> node -> bool
(** Has [n] never been an endpoint of an applied edit? Reasoning derived
    from the lowered IR (SUPA's value-flow chains) is only valid at nodes
    the overlay never touched; a delete/re-add round-trip leaves the node
    dirty, conservatively. [true] for every node before the first edit. *)

val field_overlay_clean : t -> fld -> bool
(** Has no applied edit ever added or deleted a store edge on [fld]?
    Overlay store edges carry no program point — they may execute between
    any IR store and a later load — so a flow-sensitive kill on a dirty
    field is unsound even when every node along the scanned chains is
    {!node_overlay_clean}. Cumulative, like the node predicate. *)

val graph_hash : t -> int
(** Order-independent XOR hash over the logical edge multiset, maintained
    incrementally across edits. Two graphs with equal hashes almost
    surely have identical edge sets — this is what the persisted summary
    cache header records, so a cache can never be replayed against a
    graph that has drifted. *)

val delta_counts : t -> int * int
(** [(added, deleted)] overlay edge records (both directions counted). *)

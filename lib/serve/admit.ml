(* Admission control for the serve daemon: a bounded pending queue with
   per-client fair share, plus a predicted-cost ceiling so one
   pathological request is refused up front instead of starving the
   queue from inside an engine run. Single-owner state: the daemon's
   read-admit-drain loop is the only toucher, so no locking here. *)

type 'a t = {
  capacity : int; (* max pending requests; 0 = unbounded *)
  max_cost : int; (* predicted-step ceiling per request; 0 = off *)
  queues : (string, 'a Queue.t) Hashtbl.t; (* client -> its FIFO *)
  rotation : string Queue.t; (* clients holding pending work, round-robin *)
  mutable pending : int;
  mutable accepted : int;
  mutable rejected_oversized : int;
  mutable rejected_overloaded : int;
}

let create ?(capacity = 64) ?(max_cost = 0) () =
  if capacity < 0 then invalid_arg "Admit.create: capacity must be >= 0";
  if max_cost < 0 then invalid_arg "Admit.create: max_cost must be >= 0";
  {
    capacity;
    max_cost;
    queues = Hashtbl.create 8;
    rotation = Queue.create ();
    pending = 0;
    accepted = 0;
    rejected_oversized = 0;
    rejected_overloaded = 0;
  }

let submit t ~client ~cost x =
  if t.max_cost > 0 && cost > t.max_cost then begin
    t.rejected_oversized <- t.rejected_oversized + 1;
    Error
      ( "oversized",
        Printf.sprintf "predicted cost %d exceeds the per-request ceiling %d" cost t.max_cost )
  end
  else if t.capacity > 0 && t.pending >= t.capacity then begin
    t.rejected_overloaded <- t.rejected_overloaded + 1;
    Error ("overloaded", Printf.sprintf "queue full (%d pending)" t.pending)
  end
  else begin
    let q =
      match Hashtbl.find_opt t.queues client with
      | Some q -> q
      | None ->
        (* invariant: a client is in [rotation] exactly once while it has
           a queue in [queues] *)
        let q = Queue.create () in
        Hashtbl.add t.queues client q;
        Queue.push client t.rotation;
        q
    in
    Queue.push x q;
    t.pending <- t.pending + 1;
    t.accepted <- t.accepted + 1;
    Ok ()
  end

let rec next t =
  match Queue.take_opt t.rotation with
  | None -> None
  | Some client -> (
    match Hashtbl.find_opt t.queues client with
    | None -> next t (* defensive: stale rotation slot *)
    | Some q -> (
      match Queue.take_opt q with
      | None ->
        Hashtbl.remove t.queues client;
        next t
      | Some x ->
        t.pending <- t.pending - 1;
        if Queue.is_empty q then Hashtbl.remove t.queues client
        else Queue.push client t.rotation;
        Some x))

let pending t = t.pending
let capacity t = t.capacity
let max_cost t = t.max_cost
let accepted t = t.accepted
let rejected_oversized t = t.rejected_oversized
let rejected_overloaded t = t.rejected_overloaded

(** Admission control: a bounded pending queue with per-client fair
    share and a per-request predicted-cost ceiling.

    The daemon submits every parsed request here before executing
    anything; rejected requests get an immediate structured error while
    accepted ones wait their turn. Draining is round-robin {e across
    clients} and FIFO {e within} a client, so a client that floods the
    queue only delays itself: with clients A and B pending, the service
    order alternates A, B, A, B regardless of how many requests A piled
    up first. Single-owner state — the daemon loop is the only caller —
    so the structure is deliberately lock-free. *)

type 'a t

val create : ?capacity:int -> ?max_cost:int -> unit -> 'a t
(** [capacity] (default 64) bounds pending requests, 0 = unbounded;
    [max_cost] (default 0 = off) is the predicted-step ceiling above
    which a request is rejected as oversized.
    @raise Invalid_argument on negative arguments. *)

val submit : 'a t -> client:string -> cost:int -> 'a -> (unit, string * string) result
(** Enqueue under the client's fair-share key. [Error (code, msg)] with
    code ["oversized"] (cost above the ceiling — counted, never queued)
    or ["overloaded"] (queue full). *)

val next : 'a t -> 'a option
(** Pop the next request in fair-share order; [None] when idle. *)

val pending : 'a t -> int
val capacity : 'a t -> int
val max_cost : 'a t -> int
val accepted : 'a t -> int
val rejected_oversized : 'a t -> int
val rejected_overloaded : 'a t -> int

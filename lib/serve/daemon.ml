module Check = Pts_clients.Check
module Client = Pts_clients.Client
module Pipeline = Pts_clients.Pipeline
module Stats = Pts_util.Stats
module J = Trace.Json

(* The same four query-set clients [ptsto client -c] exposes, so a serve
   [query] request and a one-shot CLI run answer from identical query
   lists (byte-identity between the two is an acceptance gate). *)
let clients =
  [
    ("safecast", ("SafeCast", Pts_clients.Safecast.queries));
    ("nullderef", ("NullDeref", Pts_clients.Nullderef.queries));
    ("factorym", ("FactoryM", Pts_clients.Factorym.queries));
    ("devirt", ("Devirt", Pts_clients.Devirt.queries));
  ]

type config = {
  c_jobs : int;
  c_rounds : int;
  c_schedule : Parsolve.schedule;
  c_budget : int;
  c_max_budget : int;
  c_base_capacity : int;
  c_queue_capacity : int;
  c_max_cost : int;
  c_pipeline : int;
}

let default_config =
  {
    c_jobs = 1;
    c_rounds = 1;
    c_schedule = Parsolve.Steal;
    c_budget = Conf.default.Conf.budget_limit;
    c_max_budget = 0;
    c_base_capacity = 0;
    c_queue_capacity = 64;
    c_max_cost = 0;
    c_pipeline = 1;
  }

type t = {
  cfg : config;
  pl : Pipeline.t;
  checkers : Check.checker list;
  base : Dynsum.base;
  incr : Incr.t;
  admit : Proto.request Admit.t;
  trace : Trace.sink;
  counts : Stats.t;
  mutable latencies_us : int list; (* per served request, newest first *)
  mutable shutdown : bool;
}

let create ?(config = default_config) ?(trace = Trace.null) ~checkers pl =
  let base = Dynsum.base_create ~capacity:config.c_base_capacity () in
  let incr = Incr.create pl.Pipeline.pag in
  Incr.register_base incr base;
  {
    cfg = config;
    pl;
    checkers;
    base;
    incr;
    admit = Admit.create ~capacity:config.c_queue_capacity ~max_cost:config.c_max_cost ();
    trace;
    counts = Stats.create ();
    latencies_us = [];
    shutdown = false;
  }

let base = (fun t -> t.base : t -> Dynsum.base)
let shutting_down t = t.shutdown

let find_checker t name =
  let want = String.lowercase_ascii name in
  List.find_opt (fun ck -> String.lowercase_ascii ck.Check.ck_name = want) t.checkers

(* Admission-time cost estimate: the same per-node Andersen prediction
   that seeds the work-stealing deques, summed over the request's query
   roots. Requests the daemon will reject anyway (unknown client/engine)
   predict 0 and fail later with a better error. *)
let predicted_cost t rq =
  let sum_nodes ~prune nodes =
    List.fold_left (fun acc n -> acc + Costmodel.predict ~prune t.pl.Pipeline.pag n) 0 nodes
  in
  match rq.Proto.rq_op with
  | Proto.Query { client; prune; _ } -> (
    match List.assoc_opt client clients with
    | None -> 0
    | Some (_, queries_of) ->
      sum_nodes ~prune (List.map (fun q -> q.Client.q_node) (queries_of t.pl)))
  | Proto.Check { checkers = names; prune; _ } ->
    let cks =
      if names = [] then t.checkers else List.filter_map (find_checker t) names
    in
    (* dedup like the check driver: each unique node is answered once *)
    let seen = Hashtbl.create 64 in
    List.iter
      (fun ck ->
        List.iter
          (fun q -> Hashtbl.replace seen q.Client.q_node ())
          (Check.queries_of t.pl ck))
      cks;
    sum_nodes ~prune (Hashtbl.fold (fun n () acc -> n :: acc) seen [])
  | Proto.Edit _ | Proto.Stats | Proto.Shutdown -> 0

(* ----------------------------- handlers ----------------------------- *)

let base_json t =
  J.Obj
    [
      ("size", J.Int (Dynsum.base_length t.base));
      ("capacity", J.Int (Dynsum.base_capacity t.base));
      ("hits", J.Int (Dynsum.base_hits t.base));
      ("misses", J.Int (Dynsum.base_misses t.base));
      ("evictions", J.Int (Dynsum.base_evictions t.base));
    ]

let budget_of t = function
  | None -> Ok t.cfg.c_budget
  | Some b when b <= 0 -> Error ("bad_request", "budget must be positive")
  | Some b when t.cfg.c_max_budget > 0 && b > t.cfg.c_max_budget ->
    Error
      ( "budget_too_large",
        Printf.sprintf "budget %d exceeds the per-request ceiling %d" b t.cfg.c_max_budget )
  | Some b -> Ok b

(* Derived from the registry so a newly registered engine (e.g. supa) is
   accepted — and listed in rejections — without touching the daemon. *)
let check_engine name =
  if Engine.find name = None then
    Error
      ( "bad_request",
        Printf.sprintf "unknown engine %S (registered: %s)" name
          (String.concat ", " (Engine.names ())) )
  else Ok ()

let ( let* ) r f = match r with Error (c, m) -> Error (c, m) | Ok v -> f v

let run_query t ~client ~engine ~prune ~budget =
  let* () = check_engine engine in
  let* budget_limit = budget_of t budget in
  let* cname, queries_of =
    match List.assoc_opt client clients with
    | None -> Error ("bad_request", Printf.sprintf "unknown client %S" client)
    | Some c -> Ok c
  in
  let conf = Engine.conf ~budget_limit ~prune () in
  let queries = queries_of t.pl in
  let qarr =
    Array.of_list
      (List.map (fun q -> Parsolve.query ~satisfy:q.Client.q_pred q.Client.q_node) queries)
  in
  let r =
    Parsolve.run ~conf ~jobs:t.cfg.c_jobs ~rounds:t.cfg.c_rounds ~schedule:t.cfg.c_schedule
      ~base:t.base ~engine t.pl.Pipeline.pag qarr
  in
  let verdicts =
    List.mapi (fun i q -> (q, Client.verdict_of q.Client.q_pred r.Parsolve.outcomes.(i))) queries
  in
  Ok
    [
      ("engine", J.String engine);
      ("epoch", J.Int (Pag.epoch t.pl.Pipeline.pag));
      ("verdicts", Client.verdicts_json ~client:cname verdicts);
      ("steps", J.Int (Array.fold_left ( + ) 0 r.Parsolve.actual_steps));
      ("wall_seconds", J.Float r.Parsolve.wall_seconds);
      ("base", base_json t);
    ]

let run_check t ~names ~engine ~prune ~budget =
  let* () = check_engine engine in
  let* budget_limit = budget_of t budget in
  let* checkers =
    if names = [] then Ok t.checkers
    else
      List.fold_left
        (fun acc n ->
          let* acc = acc in
          match find_checker t n with
          | Some ck -> Ok (ck :: acc)
          | None -> Error ("bad_request", Printf.sprintf "unknown checker %S" n))
        (Ok []) names
      |> Result.map List.rev
  in
  let opts =
    {
      Check.o_engine = engine;
      o_conf = Engine.conf ~budget_limit ~prune ();
      o_jobs = t.cfg.c_jobs;
      o_rounds = t.cfg.c_rounds;
      o_schedule = t.cfg.c_schedule;
      o_base = Some t.base;
    }
  in
  let report = Check.run ~opts ~checkers t.pl in
  Ok
    [
      ("engine", J.String engine);
      ("epoch", J.Int (Pag.epoch t.pl.Pipeline.pag));
      ("report", Check.report_json report);
      ("points", J.Int report.Check.r_points);
      ("unique_nodes", J.Int report.Check.r_unique_nodes);
      ("seconds", J.Float report.Check.r_seconds);
      ("base", base_json t);
    ]

let run_edit t ~edits ~seed =
  if edits <= 0 then Error ("bad_request", "edits must be positive")
  else begin
    let rng = Pts_util.Prng.create seed in
    let burst = Pts_workload.Editscript.burst rng t.pl.Pipeline.pag ~n:edits in
    let st = Incr.apply t.incr burst in
    Ok
      [
        ("epoch", J.Int st.Incr.i_epoch);
        ("dirty", J.Int st.Incr.i_dirty);
        ("inserted", J.Int st.Incr.i_inserted);
        ("deleted", J.Int st.Incr.i_deleted);
        ("oracle_invalidated", J.Int st.Incr.i_oracle_invalidated);
        ("summaries_dropped", J.Int st.Incr.i_dropped);
        ("summaries_retained", J.Int st.Incr.i_retained);
        ("base", base_json t);
      ]
  end

(* Nearest-rank percentile over the recorded per-request latencies. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let latency_json t =
  let a = Array.of_list t.latencies_us in
  Array.sort compare a;
  J.Obj
    [
      ("count", J.Int (Array.length a));
      ("p50_micros", J.Int (percentile a 0.50));
      ("p99_micros", J.Int (percentile a 0.99));
    ]

let run_stats t =
  let get k = Stats.get t.counts k in
  Ok
    [
      ("epoch", J.Int (Pag.epoch t.pl.Pipeline.pag));
      ( "requests",
        J.Obj
          [
            ("query", J.Int (get "req_query"));
            ("check", J.Int (get "req_check"));
            ("edit", J.Int (get "req_edit"));
            ("stats", J.Int (get "req_stats"));
            ("shutdown", J.Int (get "req_shutdown"));
          ] );
      ( "admission",
        J.Obj
          [
            ("accepted", J.Int (Admit.accepted t.admit));
            ("rejected_oversized", J.Int (Admit.rejected_oversized t.admit));
            ("rejected_overloaded", J.Int (Admit.rejected_overloaded t.admit));
            ("pending", J.Int (Admit.pending t.admit));
            ("queue_capacity", J.Int (Admit.capacity t.admit));
            ("max_request_cost", J.Int (Admit.max_cost t.admit));
          ] );
      ("base", base_json t);
      ("latency", latency_json t);
    ]

let dispatch t rq =
  let id = rq.Proto.rq_id in
  let finish op = function
    | Ok fields -> Proto.ok ~id ~op fields
    | Error (code, msg) -> Proto.error ~id code msg
  in
  match rq.Proto.rq_op with
  | Proto.Query { client; engine; prune; budget } ->
    finish "query" (run_query t ~client ~engine ~prune ~budget)
  | Proto.Check { checkers; engine; prune; budget } ->
    finish "check" (run_check t ~names:checkers ~engine ~prune ~budget)
  | Proto.Edit { edits; seed } -> finish "edit" (run_edit t ~edits ~seed)
  | Proto.Stats -> finish "stats" (run_stats t)
  | Proto.Shutdown ->
    t.shutdown <- true;
    finish "shutdown" (Ok [ ("base", base_json t) ])

let handle t rq =
  let opn = Proto.op_name rq.Proto.rq_op in
  let resp, seconds = Stats.time (fun () -> dispatch t rq) in
  let micros = int_of_float (seconds *. 1e6) in
  t.latencies_us <- micros :: t.latencies_us;
  Stats.bump t.counts ("req_" ^ opn);
  Trace.emit t.trace (Trace.Request_latency { engine = "serve"; op = opn; micros });
  resp

(* --------------------------- transport loop -------------------------- *)

let respond oc j =
  output_string oc (J.to_string j);
  output_char oc '\n';
  flush oc

let admit_one t oc line =
  match Proto.of_line line with
  | Error (code, msg) -> respond oc (Proto.error ~id:J.Null code msg)
  | Ok rq -> (
    match Admit.submit t.admit ~client:rq.Proto.rq_client ~cost:(predicted_cost t rq) rq with
    | Ok () -> ()
    | Error (code, msg) -> respond oc (Proto.error ~id:rq.Proto.rq_id code msg))

let drain t oc =
  let rec go () =
    match Admit.next t.admit with
    | None -> ()
    | Some rq ->
      if t.shutdown then
        respond oc (Proto.error ~id:rq.Proto.rq_id "shutting_down" "daemon is shutting down")
      else respond oc (handle t rq);
      go ()
  in
  go ()

let serve_channel t ic oc =
  (* Read up to [c_pipeline] requests ahead, then drain the admission
     queue in fair-share order. With the default of 1 this is a strict
     serial request/response loop (what the smoke tests script); larger
     windows exercise the bounded queue and fair share for pipelined
     clients, with responses matched by [id]. *)
  let window = max 1 t.cfg.c_pipeline in
  let eof = ref false in
  while not (!eof || t.shutdown) do
    let filled = ref 0 in
    while (not !eof) && !filled < window && not t.shutdown do
      match input_line ic with
      | exception End_of_file -> eof := true
      | "" -> ()
      | line ->
        incr filled;
        admit_one t oc line
    done;
    drain t oc
  done;
  drain t oc

let serve_socket t path =
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 8;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      (* one connection at a time: accept, serve its stream to EOF (or a
         shutdown request), loop. Concurrency lives in the engine layer
         (jobs), not the transport. *)
      while not t.shutdown do
        let fd, _ = Unix.accept srv in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (try serve_channel t ic oc with End_of_file | Sys_error _ -> ());
        (try flush oc with Sys_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      done)

(** The long-running analysis daemon behind [ptsto serve].

    A daemon loads and freezes one PAG, then answers {!Proto} requests
    for the rest of its life. The perf heart is a single cross-request
    {!Dynsum.base} tier: summaries distilled by one request seed every
    later one, so a warm daemon answers the same workload materially
    faster than a cold one (the [bench serve] target measures the
    ratio). The tier is size-bounded with second-chance eviction and is
    epoch-keyed: an [edit] request routes through {!Incr.apply}, which
    drops exactly the footprint-dirty entries and keeps the rest.

    Single-threaded by construction — one request executes at a time,
    and parallelism lives inside the engine ([c_jobs] worker domains per
    request), so responses are deterministic and byte-identical to the
    one-shot CLI ([ptsto client --verdicts-json] / [ptsto check]). *)

type config = {
  c_jobs : int;  (** {!Parsolve} worker domains per request *)
  c_rounds : int;
  c_schedule : Parsolve.schedule;
  c_budget : int;  (** default per-query step budget *)
  c_max_budget : int;  (** per-request budget ceiling; 0 = no ceiling *)
  c_base_capacity : int;  (** cross-request tier entries; 0 = unbounded *)
  c_queue_capacity : int;  (** admission queue depth; 0 = unbounded *)
  c_max_cost : int;  (** predicted-cost ceiling; 0 = off *)
  c_pipeline : int;  (** requests read ahead before draining *)
}

val default_config : config
(** jobs 1, rounds 1, Steal, budget {!Conf.default}, no ceilings,
    queue capacity 64, pipeline window 1. *)

val clients : (string * (string * (Pts_clients.Pipeline.t -> Pts_clients.Client.query list))) list
(** Query-set clients a [query] request can name, keyed by the same
    lowercase names [ptsto client -c] accepts. *)

type t

val create :
  ?config:config ->
  ?trace:Trace.sink ->
  checkers:Pts_clients.Check.checker list ->
  Pts_clients.Pipeline.t ->
  t
(** Freeze a pipeline into a daemon. [checkers] is the pool a [check]
    request draws from (empty request list = all of them). The daemon's
    base tier is registered with an {!Incr} instance so edit bursts
    invalidate it alongside the engine caches. *)

val base : t -> Dynsum.base
(** The cross-request summary tier (for tests and metrics). *)

val shutting_down : t -> bool

val handle : t -> Proto.request -> Trace.Json.t
(** Execute one request and return its response envelope. Also records
    the request latency (a {!Trace.Request_latency} event and the
    percentile pool [stats] reports). *)

val serve_channel : t -> in_channel -> out_channel -> unit
(** Newline-delimited JSON loop: read up to [c_pipeline] requests,
    admission-check each ({!Admit}), drain in fair-share order, answer
    one line per request. Returns on EOF or after a [shutdown] request
    (queued requests behind it are answered with ["shutting_down"]). *)

val serve_socket : t -> string -> unit
(** Same loop over a Unix-domain socket at the given path (unlinked and
    re-bound on start, removed on exit). One connection at a time. *)

module J = Trace.Json

type op =
  | Query of { client : string; engine : string; prune : bool; budget : int option }
  | Check of { checkers : string list; engine : string; prune : bool; budget : int option }
  | Edit of { edits : int; seed : int }
  | Stats
  | Shutdown

type request = { rq_id : J.t; rq_client : string; rq_op : op }

let op_name = function
  | Query _ -> "query"
  | Check _ -> "check"
  | Edit _ -> "edit"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

(* ----------------------------- decoding ----------------------------- *)

let str_member k j = match J.member k j with Some (J.String s) -> Some s | _ -> None
let int_member k j = match J.member k j with Some (J.Int i) -> Some i | _ -> None
let bool_member k j = match J.member k j with Some (J.Bool b) -> Some b | _ -> None

let of_json j =
  match J.member "op" j with
  | None -> Error ("bad_request", "missing \"op\"")
  | Some (J.String opname) -> (
    let id = Option.value ~default:J.Null (J.member "id" j) in
    let client_id = Option.value ~default:"default" (str_member "client_id" j) in
    let engine = Option.value ~default:"dynsum" (str_member "engine" j) in
    let prune = Option.value ~default:false (bool_member "prune" j) in
    let budget = int_member "budget" j in
    let mk op = Ok { rq_id = id; rq_client = client_id; rq_op = op } in
    match opname with
    | "query" -> (
      match str_member "client" j with
      | None -> Error ("bad_request", "query needs a \"client\"")
      | Some client -> mk (Query { client; engine; prune; budget }))
    | "check" -> (
      match J.member "checkers" j with
      | None -> mk (Check { checkers = []; engine; prune; budget })
      | Some (J.List xs) -> (
        match
          List.map (function J.String s -> s | _ -> raise Exit) xs
        with
        | names -> mk (Check { checkers = names; engine; prune; budget })
        | exception Exit -> Error ("bad_request", "\"checkers\" must be a list of strings"))
      | Some _ -> Error ("bad_request", "\"checkers\" must be a list of strings"))
    | "edit" ->
      mk
        (Edit
           {
             edits = Option.value ~default:8 (int_member "edits" j);
             seed = Option.value ~default:1 (int_member "seed" j);
           })
    | "stats" -> mk Stats
    | "shutdown" -> mk Shutdown
    | other -> Error ("bad_request", Printf.sprintf "unknown op %S" other))
  | Some _ -> Error ("bad_request", "\"op\" must be a string")

let of_line line =
  match J.of_string line with
  | Error msg -> Error ("parse_error", msg)
  | Ok j -> of_json j

(* ----------------------------- encoding ----------------------------- *)

let ok ~id ~op fields =
  J.Obj (("id", id) :: ("ok", J.Bool true) :: ("op", J.String op) :: fields)

let error ~id code msg =
  J.Obj
    [
      ("id", id);
      ("ok", J.Bool false);
      ("error", J.Obj [ ("code", J.String code); ("msg", J.String msg) ]);
    ]

(** Wire protocol of the serve daemon.

    One JSON object per line in, one per line out. Every request may
    carry an [id] (echoed verbatim in the response, so pipelined clients
    can match answers to questions) and a [client_id] (the admission
    controller's fair-share key). Operations:

    - [{"op":"query","client":"safecast","engine":"dynsum","prune":false,
       "budget":75000}] — run a client's query set; the response embeds
      the canonical {!Pts_clients.Client.verdicts_json} object.
    - [{"op":"check","checkers":["nullderef"],...}] — run checkers; the
      response embeds the {!Pts_clients.Check.report_json} report.
    - [{"op":"edit","edits":8,"seed":1}] — apply a seeded edit burst
      through {!Incr.apply}, invalidating exactly the footprint-dirty
      summaries in the cross-request tier.
    - [{"op":"stats"}] — daemon counters, base-tier health, latency
      percentiles.
    - [{"op":"shutdown"}] — acknowledge and stop.

    Failures are structured: [{"id":...,"ok":false,"error":{"code":C,
    "msg":M}}] with codes ["parse_error"], ["bad_request"],
    ["oversized"], ["overloaded"], ["budget_too_large"],
    ["shutting_down"]. *)

type op =
  | Query of { client : string; engine : string; prune : bool; budget : int option }
  | Check of { checkers : string list; engine : string; prune : bool; budget : int option }
      (** empty [checkers] means all registered checkers *)
  | Edit of { edits : int; seed : int }
  | Stats
  | Shutdown

type request = {
  rq_id : Trace.Json.t;  (** echoed back; [Null] when the client sent none *)
  rq_client : string;  (** fair-share key; ["default"] when absent *)
  rq_op : op;
}

val op_name : op -> string

val of_json : Trace.Json.t -> (request, string * string) result
(** Decode a parsed request object; [Error (code, msg)] uses the
    structured-error codes above. *)

val of_line : string -> (request, string * string) result
(** Parse then decode one request line. *)

val ok : id:Trace.Json.t -> op:string -> (string * Trace.Json.t) list -> Trace.Json.t
(** Success envelope: [{"id":...,"ok":true,"op":...,<fields>}]. *)

val error : id:Trace.Json.t -> string -> string -> Trace.Json.t
(** Failure envelope with a structured [error] object. *)

module Stats = Pts_util.Stats
module Check = Pts_clients.Check
module Diag = Pts_clients.Diag
module Pipeline = Pts_clients.Pipeline

let name = "taint"

let points ~spec (cx : Check.ctx) =
  let pl = cx.Check.cx_pl in
  let prog = pl.Pipeline.prog in
  let pag = pl.Pipeline.pag in
  let stats = cx.Check.cx_stats in
  let sources = Spec.source_sites spec prog in
  if sources = [] then []
  else begin
    let sinks =
      Spec.sinks spec ~is_reachable:(Pts_andersen.Solver.is_reachable pl.Pipeline.solver) prog
    in
    Stats.add stats "taint_sources" (List.length sources);
    Stats.add stats "taint_sinks" (List.length sinks);
    let flow = Flow.run ~stats pag ~sources in
    List.filter_map
      (fun (sk : Spec.sink) ->
        let node = Pag.local_node pag ~meth:sk.Spec.sk_meth ~var:sk.Spec.sk_var in
        (* Two sound pre-filters, cheapest first. The Andersen oracle row
           over-approximates every demand answer, and the flow sweep
           over-approximates the source->sink relation, so a miss in
           either means no engine can find the flow and the sink needs no
           CFL traversal at all. *)
        if not (List.exists (fun s -> Pag.oracle_mem pag node s) sources) then begin
          Stats.bump stats "taint_oracle_skips";
          None
        end
        else if not (Flow.any flow node) then begin
          Stats.bump stats "taint_flow_skips";
          None
        end
        else begin
          let meth = prog.Ir.methods.(sk.Spec.sk_meth) in
          Some
            {
              Check.pt_node = node;
              pt_desc =
                Printf.sprintf "taint@%d %s in %s" sk.Spec.sk_line sk.Spec.sk_desc meth.Ir.pretty;
              pt_method = meth.Ir.pretty;
              pt_line = sk.Spec.sk_line;
              pt_severity = Diag.Error;
              pt_pred =
                (fun ts ->
                  not (List.exists (fun site -> List.mem site sources) (Query.sites ts)));
              pt_bad_sites = List.filter (fun site -> List.mem site sources);
              pt_message =
                (fun bad ->
                  Printf.sprintf "tainted: %s reaches %s" (Check.sites_blurb prog bad)
                    sk.Spec.sk_desc);
            }
        end)
      sinks
  end

let checker ?(spec = Spec.default) () =
  Check.make name ~doc:"source objects reaching designated sink positions" ~points:(points ~spec)

let queries ?(spec = Spec.default) pl = Check.queries_of pl (checker ~spec ())

(** The demand-driven taint checker: "does any source object reach this
    sink?" asked as one points-to query per sink through whatever engine
    the driver runs — all four registry engines serve it, and their
    verdicts can be cross-checked.

    A sink is tainted iff the demand points-to set of its variable
    intersects the source allocation sites; the predicate is
    anti-monotone like every other client's. Before any CFL traversal,
    each sink passes two sound pre-filters (skips counted in
    [taint_oracle_skips] / [taint_flow_skips]): the Andersen oracle row
    must contain some source, and the {!Flow} sweep must reach the sink
    variable. Refutations surface as [Error] diagnostics whose witness
    is the CFL path from the sink variable back to the source
    allocation. *)

val name : string

val points : spec:Spec.t -> Pts_clients.Check.ctx -> Pts_clients.Check.point list

val checker : ?spec:Spec.t -> unit -> Pts_clients.Check.checker

val queries : ?spec:Spec.t -> Pts_clients.Pipeline.t -> Pts_clients.Client.query list
(** Legacy [Client.query] view, for the bench harness. *)

module Stats = Pts_util.Stats
module Bitset = Pts_util.Bitset

type t = { reach : (int * Bitset.t) list }

(* Forward closure of one source object over the PAG, field-based and
   context-insensitive: assign edges via the per-node local closure
   below, global/entry/exit edges unconditionally (no call-stack
   balancing), and store/load through a field summarily — storing a
   tainted value into any [base.f] taints every load of [f], with no
   base-alias check. Both coarsenings only ever {e add} flows relative
   to the CFL-reachability relation the engines decide, which is what
   makes [reaches = []] a sound reason to skip a sink (DESIGN.md,
   "checker architecture"). *)
let run ?stats pag ~sources =
  let bump k = match stats with Some s -> Stats.bump s k | None -> () in
  (* The local-closure summary mirrors Ppta's per-method summaries: one
     table entry per node, computed once and reused by every source (and
     every sink re-check) that walks through the node. *)
  let cache : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let closure u =
    match Hashtbl.find_opt cache u with
    | Some c ->
      bump "taint_summary_hits";
      c
    | None ->
      bump "taint_summary_misses";
      let seen = Hashtbl.create 8 in
      let rec go v =
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.replace seen v ();
          List.iter go (Pag.assign_out pag v)
        end
      in
      go u;
      let c = List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen []) in
      Hashtbl.replace cache u c;
      c
  in
  let reach_for src_site =
    let visited = Bitset.create ~capacity:(Pag.node_count pag) () in
    let fields = Hashtbl.create 8 in
    let work = Queue.create () in
    let push v = if not (Bitset.mem visited v) then Queue.add v work in
    List.iter push (Pag.new_out pag (Pag.obj_node pag src_site));
    while not (Queue.is_empty work) do
      let u = Queue.pop work in
      if not (Bitset.mem visited u) then begin
        let cl = closure u in
        List.iter (fun x -> ignore (Bitset.add visited x)) cl;
        List.iter
          (fun x ->
            List.iter push (Pag.global_out pag x);
            List.iter (fun (_, y) -> push y) (Pag.entry_out pag x);
            List.iter (fun (_, y) -> push y) (Pag.exit_out pag x);
            List.iter
              (fun (f, _) ->
                if not (Hashtbl.mem fields f) then begin
                  Hashtbl.replace fields f ();
                  List.iter (fun (_, dst) -> push dst) (Pag.loads_of_field pag f)
                end)
              (Pag.store_out pag x))
          cl
      end
    done;
    visited
  in
  { reach = List.map (fun s -> (s, reach_for s)) sources }

let reaches t node =
  List.filter_map (fun (s, b) -> if Bitset.mem b node then Some s else None) t.reach

let any t node = List.exists (fun (_, b) -> Bitset.mem b node) t.reach

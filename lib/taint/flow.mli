(** Whole-graph taint pre-filter: a field-based, context-insensitive
    forward reachability sweep from each source object over the PAG's
    new/assign/global/entry/exit edges, with store/load coupled through
    the field alone (no base-alias check). Strictly coarser than the
    CFL-reachability relation the engines decide — both dropped
    conditions (call-stack balance, base aliasing) only add flows — so a
    sink the sweep cannot reach needs no demand query.

    Local assign closures are computed once per node into a summary
    table mirroring {!Pts_core.Ppta}'s per-method summaries and shared
    by every source; reuse is counted in [taint_summary_hits] /
    [taint_summary_misses]. *)

type t

val run : ?stats:Pts_util.Stats.t -> Pag.t -> sources:int list -> t

val reaches : t -> Pag.node -> int list
(** Source sites whose sweep reaches the node, in [sources] order. *)

val any : t -> Pag.node -> bool

module Check = Pts_clients.Check

let all ?(taint = Spec.default) () =
  [
    Pts_clients.Safecast.checker;
    Pts_clients.Nullderef.checker;
    Pts_clients.Factorym.checker;
    Pts_clients.Devirt.checker;
    Pts_clients.Deadcode.checker;
    Checker.checker ~spec:taint ();
  ]

let names ?taint () = List.map (fun ck -> ck.Check.ck_name) (all ?taint ())

let find checkers name =
  let want = String.lowercase_ascii name in
  List.find_opt (fun ck -> String.lowercase_ascii ck.Check.ck_name = want) checkers

(** Every checker the [ptsto check] driver can run. Lives here rather
    than in [pts_clients] because the list includes the taint checker,
    which sits above the clients library. *)

val all : ?taint:Spec.t -> unit -> Pts_clients.Check.checker list
(** SafeCast, NullDeref, FactoryM, Devirt, deadcode, taint — in that
    order. [taint] configures the taint checker's sources and sinks
    (default {!Spec.default}). *)

val names : ?taint:Spec.t -> unit -> string list

val find : Pts_clients.Check.checker list -> string -> Pts_clients.Check.checker option
(** Case-insensitive lookup by checker name. *)

type t = {
  source_prefixes : string list;
  sink_prefixes : string list;
  source_lines : int list;
  sink_lines : int list;
}

let source_annotation = "@taint-source"
let sink_annotation = "@taint-sink"

let default =
  { source_prefixes = [ "getSecret" ]; sink_prefixes = [ "send" ]; source_lines = []; sink_lines = [] }

let make ?(source_prefixes = default.source_prefixes) ?(sink_prefixes = default.sink_prefixes)
    ?(source_lines = []) ?(sink_lines = []) () =
  {
    source_prefixes;
    sink_prefixes;
    source_lines = List.sort_uniq Int.compare source_lines;
    sink_lines = List.sort_uniq Int.compare sink_lines;
  }

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let of_source ?(base = default) ?lang source =
  let anns = Frontend.annotations ?lang source in
  let lines_with tag =
    List.filter_map (fun (text, pos) -> if contains_sub text tag then Some pos.Loc.line else None) anns
  in
  {
    base with
    source_lines = List.sort_uniq Int.compare (base.source_lines @ lines_with source_annotation);
    sink_lines = List.sort_uniq Int.compare (base.sink_lines @ lines_with sink_annotation);
  }

let prefix_match p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p
let is_source_method t mname = List.exists (fun p -> prefix_match p mname) t.source_prefixes
let is_sink_method t mname = List.exists (fun p -> prefix_match p mname) t.sink_prefixes

let source_sites t (prog : Ir.program) =
  Array.to_list prog.Ir.allocs
  |> List.filter_map (fun (a : Ir.alloc_site) ->
         if a.Ir.alloc_is_null then None
         else
           let mname = prog.Ir.methods.(a.Ir.alloc_meth).Ir.msig.Types.ms_name in
           if is_source_method t mname || List.mem a.Ir.alloc_pos.Loc.line t.source_lines then
             Some a.Ir.site_id
           else None)

type sink = { sk_meth : int; sk_var : int; sk_line : int; sk_desc : string }

let is_ref (m : Ir.meth) v =
  match m.Ir.var_types.(v) with
  | Ityp.Tclass _ | Ityp.Tarray _ -> true
  | Ityp.Tint | Ityp.Tbool | Ityp.Tvoid -> false

let sinks t ?(is_reachable = fun _ -> true) (prog : Ir.program) =
  let acc = ref [] in
  Array.iter
    (fun (m : Ir.meth) ->
      if is_reachable m.Ir.id then
        List.iter
          (function
            | Ir.Call { kind; args; site; _ } ->
              let callee =
                match kind with
                | Ir.Virtual { mname; _ } -> mname
                | Ir.Static { target } -> target.Types.ms_name
                | Ir.Ctor { ctor; _ } -> ctor.Types.ms_name
              in
              let line = prog.Ir.calls.(site).Ir.cs_pos.Loc.line in
              let by_prefix = is_sink_method t callee in
              let by_line = List.mem line t.sink_lines in
              if by_prefix || by_line then begin
                List.iteri
                  (fun i a ->
                    if is_ref m a then
                      acc :=
                        {
                          sk_meth = m.Ir.id;
                          sk_var = a;
                          sk_line = line;
                          sk_desc =
                            Printf.sprintf "arg %d (%s) of call to %s" (i + 1) (Ir.var_name m a)
                              callee;
                        }
                        :: !acc)
                  args;
                (* For annotated call lines the receiver is a designated
                   dereference position too; for prefix sinks it is just
                   the API object (e.g. the channel [send] is invoked on)
                   and flagging it would be noise. *)
                match kind with
                | Ir.Virtual { recv; _ } when by_line ->
                  acc :=
                    {
                      sk_meth = m.Ir.id;
                      sk_var = recv;
                      sk_line = line;
                      sk_desc =
                        Printf.sprintf "receiver (%s) of call to %s" (Ir.var_name m recv) callee;
                    }
                    :: !acc
                | _ -> ()
              end
            | Ir.Alloc _ | Ir.Move _ | Ir.Load _ | Ir.Store _ | Ir.Load_global _
            | Ir.Store_global _ | Ir.Return _ | Ir.Cast_move _ ->
              ())
          m.Ir.body)
    prog.Ir.methods;
  List.rev !acc

(** What counts as a taint source and a taint sink.

    Sources are allocation sites: every non-null allocation inside a
    method whose simple name matches a source prefix (so a call
    [x = getSecret0()] marks the object the callee returns), plus any
    allocation on a line annotated [// @taint-source]. Sinks are
    caller-side positions: every reference-typed argument of a call to a
    method matching a sink prefix, plus — on lines annotated
    [// @taint-sink] — the arguments and the receiver of the call on
    that line. Annotation lines come from {!Frontend.annotations}, whose
    positions are user-source lines, the same coordinate system
    {!Ir.call_site.cs_pos} and {!Ir.alloc_site.alloc_pos} use.

    IR limitation, documented rather than papered over: [Load]/[Store]
    instructions carry no source position, so {e field} dereferences
    cannot be designated as sinks by line annotation — call positions
    (which carry [cs_pos]) can. *)

type t = {
  source_prefixes : string list;
  sink_prefixes : string list;
  source_lines : int list;  (** sorted *)
  sink_lines : int list;  (** sorted *)
}

val source_annotation : string
(** ["@taint-source"] *)

val sink_annotation : string
(** ["@taint-sink"] *)

val default : t
(** Prefixes [getSecret*] / [send*], no annotated lines. *)

val make :
  ?source_prefixes:string list ->
  ?sink_prefixes:string list ->
  ?source_lines:int list ->
  ?sink_lines:int list ->
  unit ->
  t

val of_source : ?base:t -> ?lang:Loc.lang -> string -> t
(** [base] (default {!default}) extended with the annotation lines
    scanned from the program text with the selected language's lexer
    ([lang] defaults to MiniJava). *)

val is_source_method : t -> string -> bool
val is_sink_method : t -> string -> bool

val source_sites : t -> Ir.program -> int list
(** Allocation-site ids of all sources, in site order. *)

type sink = {
  sk_meth : int;  (** enclosing method id *)
  sk_var : int;  (** the variable whose points-to set decides the sink *)
  sk_line : int;  (** call line *)
  sk_desc : string;  (** e.g. ["arg 1 (s) of call to send"] *)
}

val sinks : t -> ?is_reachable:(int -> bool) -> Ir.program -> sink list
(** All sink positions in methods accepted by [is_reachable] (default:
    all), in method/instruction order. *)

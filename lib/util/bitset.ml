type t = { mutable words : int array }

let bits_per_word = Sys.int_size

let create ?(capacity = 64) () = { words = Array.make (max 1 ((capacity / bits_per_word) + 1)) 0 }

let ensure t word_idx =
  let cap = Array.length t.words in
  if word_idx >= cap then begin
    let words = Array.make (max (2 * cap) (word_idx + 1)) 0 in
    Array.blit t.words 0 words 0 cap;
    t.words <- words
  end

let mem t x =
  if x < 0 then invalid_arg "Bitset.mem: negative element";
  let w = x / bits_per_word in
  w < Array.length t.words && t.words.(w) land (1 lsl (x mod bits_per_word)) <> 0

let add t x =
  if x < 0 then invalid_arg "Bitset.add: negative element";
  let w = x / bits_per_word in
  ensure t w;
  let bit = 1 lsl (x mod bits_per_word) in
  if t.words.(w) land bit = 0 then begin
    t.words.(w) <- t.words.(w) lor bit;
    true
  end
  else false

let union_into ~dst src =
  let n = Array.length src.words in
  if n > 0 then ensure dst (n - 1);
  let changed = ref false in
  for i = 0 to n - 1 do
    let merged = dst.words.(i) lor src.words.(i) in
    if merged <> dst.words.(i) then begin
      dst.words.(i) <- merged;
      changed := true
    end
  done;
  !changed

let diff_union_into ~dst ~delta src =
  let n = Array.length src.words in
  if n > 0 then begin
    ensure dst (n - 1);
    ensure delta (n - 1)
  end;
  let changed = ref false in
  for i = 0 to n - 1 do
    let fresh = src.words.(i) land lnot dst.words.(i) in
    if fresh <> 0 then begin
      dst.words.(i) <- dst.words.(i) lor fresh;
      delta.words.(i) <- delta.words.(i) lor fresh;
      changed := true
    end
  done;
  !changed

let inter_empty a b =
  let n = min (Array.length a.words) (Array.length b.words) in
  let rec go i = i >= n || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let choose_singleton t =
  let found = ref (-1) in
  try
    Array.iteri
      (fun i w ->
        if w <> 0 then begin
          if !found >= 0 || w land (w - 1) <> 0 then raise Exit;
          let rec bit_index b j = if b land 1 <> 0 then j else bit_index (b lsr 1) (j + 1) in
          found := (i * bits_per_word) + bit_index w 0
        end)
      t.words;
    if !found >= 0 then Some !found else None
  with Exit -> None

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let iter t f =
  Array.iteri
    (fun i w ->
      if w <> 0 then
        for b = 0 to bits_per_word - 1 do
          if w land (1 lsl b) <> 0 then f ((i * bits_per_word) + b)
        done)
    t.words

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun x -> acc := f !acc x);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc x -> x :: acc))

let copy t = { words = Array.copy t.words }

let equal a b =
  let n = max (Array.length a.words) (Array.length b.words) in
  let get t i = if i < Array.length t.words then t.words.(i) else 0 in
  let rec go i = i >= n || (get a i = get b i && go (i + 1)) in
  go 0

let subset a b =
  let n = Array.length a.words in
  let get t i = if i < Array.length t.words then t.words.(i) else 0 in
  let rec go i = i >= n || (a.words.(i) land lnot (get b i) = 0 && go (i + 1)) in
  go 0

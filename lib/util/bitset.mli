(** Growable bitsets over non-negative integers.

    The Andersen solver's points-to sets are dense allocation-site ids;
    bitsets make unions (its hottest operation) word-parallel. *)

type t

val create : ?capacity:int -> unit -> t

val mem : t -> int -> bool

val add : t -> int -> bool
(** [add t x] returns [true] iff [x] was not already present. *)

val union_into : dst:t -> t -> bool
(** [union_into ~dst src] adds all of [src] to [dst]; returns [true] iff
    [dst] changed. *)

val diff_union_into : dst:t -> delta:t -> t -> bool
(** [diff_union_into ~dst ~delta src] adds all of [src] to [dst] and
    records the elements that were genuinely new (in [src] but not
    previously in [dst]) into [delta] as well; returns [true] iff [dst]
    changed. The primitive of difference propagation: [delta]
    accumulates exactly the not-yet-propagated frontier. *)

val inter_empty : t -> t -> bool
(** [inter_empty a b] — is [a ∩ b] empty? Allocation-free. *)

val clear : t -> unit
(** Remove all elements (keeps capacity). *)

val choose_singleton : t -> int option
(** [Some x] iff the set is exactly [{x}]; [None] otherwise. *)

val cardinal : t -> int

val is_empty : t -> bool

val iter : t -> (int -> unit) -> unit
(** Ascending order. *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val to_list : t -> int list
(** Ascending. *)

val copy : t -> t

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] — is every element of [a] in [b]? *)

type t =
  | Empty
  | Cons of { id : int; depth : int; top : int; rest : t }

let id = function Empty -> 0 | Cons c -> c.id

let equal = ( == )

let hash t = id t

(* The hash-cons table maps (top, id rest) to the existing cell, so that
   [push] is the only allocator of [Cons] cells. *)
module Key = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 0x1fffffff) lxor b
end

module Cache = Hashtbl.Make (Key)

(* One hash-cons store per domain: plain Hashtbls are not safe under
   concurrent mutation, and worker domains intern stacks continuously.
   Domain-local stores make [push] race-free without a lock on the hot
   path; the price is that ids are only unique {e within} a domain, so
   stacks must be {!rebase}d when they cross domains. [Empty] is the one
   shared constructor and is valid everywhere. *)
type store = { cache : t Cache.t; mutable next_id : int }

let store_key =
  Domain.DLS.new_key (fun () -> { cache = Cache.create 4096; next_id = 1 })

let empty = Empty

let depth = function Empty -> 0 | Cons c -> c.depth

let push t x =
  let store = Domain.DLS.get store_key in
  let key = (x, id t) in
  match Cache.find_opt store.cache key with
  | Some s -> s
  | None ->
    let s = Cons { id = store.next_id; depth = depth t + 1; top = x; rest = t } in
    store.next_id <- store.next_id + 1;
    Cache.add store.cache key s;
    s

let pop = function Empty -> None | Cons c -> Some c.rest

let pop_exn = function
  | Empty -> invalid_arg "Hstack.pop_exn: empty stack"
  | Cons c -> c.rest

let peek = function Empty -> None | Cons c -> Some c.top

let is_empty = function Empty -> true | Cons _ -> false

let rec to_list = function Empty -> [] | Cons c -> c.top :: to_list c.rest

let of_list l = List.fold_left push empty (List.rev l)

let rebase t = of_list (to_list t)

let pp pp_elt fmt t =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_elt)
    (to_list t)

let table_size () = Cache.length (Domain.DLS.get store_key).cache

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

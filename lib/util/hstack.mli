(** Hash-consed immutable stacks of integers.

    Field stacks and context stacks are the hottest data structures of a
    CFL-reachability analysis: they are pushed/popped on every traversal step
    and used as hash-table keys in the summary cache. Hash-consing gives them
    O(1) physical equality and a precomputed hash, and deduplicates storage
    across the millions of stacks a query sweep creates.

    The hash-cons table is {e domain-local} and append-only; stacks from
    different analyses in the same domain share structure safely because
    stacks are immutable. Ids are unique only within a domain: a stack
    received from another domain must be {!rebase}d before it is pushed
    on, compared by {!id}, or used as a table key — every operation here
    other than the pure readers ({!to_list}, {!peek}, {!depth},
    {!is_empty}) assumes its argument was interned in the current
    domain. *)

type t

val empty : t
(** The empty stack. There is exactly one empty stack. *)

val push : t -> int -> t
(** [push s x] is the stack with [x] on top of [s]. Hash-consed: pushing the
    same element on the same stack returns the identical value. *)

val pop : t -> t option
(** [pop s] removes the top element, or [None] if [s] is empty. *)

val pop_exn : t -> t
(** @raise Invalid_argument on the empty stack. *)

val peek : t -> int option
(** Top element without removing it. *)

val is_empty : t -> bool

val depth : t -> int
(** Number of elements. O(1). *)

val equal : t -> t -> bool
(** Physical equality — valid because of hash-consing. O(1). *)

val hash : t -> int
(** Precomputed. O(1). *)

val id : t -> int
(** Unique id of this stack value; stable within a process run. *)

val to_list : t -> int list
(** Top first. *)

val of_list : int list -> t
(** [of_list l] has [List.hd l] on top; inverse of {!to_list}. *)

val rebase : t -> t
(** Re-intern a stack into the current domain's hash-cons table
    ([of_list (to_list t)]). Required before a stack that crossed a
    domain boundary is pushed on or used as a key; a no-op (up to
    physical identity) for stacks already interned here. *)

val pp : (Format.formatter -> int -> unit) -> Format.formatter -> t -> unit
(** [pp pp_elt fmt s] prints [\[x1, x2, ...\]] top-first. *)

val table_size : unit -> int
(** Number of distinct stacks ever created {e in this domain}
    (diagnostics). *)

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by stacks, using the O(1) equality/hash above. *)

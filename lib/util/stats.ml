type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 16

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let bump t name = incr (cell t name)

let add t name n =
  let r = cell t name in
  r := !r + n

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let reset t = Hashtbl.reset t

let merge_into ~into src = Hashtbl.iter (fun k r -> add into k !r) src

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  List.iter (fun (k, v) -> Format.fprintf fmt "%s = %d@." k v) (to_list t)

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let time_n n f =
  let best = ref infinity in
  for _ = 1 to max n 1 do
    let _, dt = time f in
    if dt < !best then best := dt
  done;
  !best

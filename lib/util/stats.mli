(** Lightweight instrumentation: named counters and wall-clock timers.

    The benchmark harness reports both wall-clock time (machine-dependent)
    and deterministic step counters (machine-independent), because the
    paper's claims are ratios and the ratios of step counts are reproducible
    bit-for-bit. *)

type t

val create : unit -> t

val bump : t -> string -> unit
(** Increment a named counter by one. *)

val add : t -> string -> int -> unit

val get : t -> string -> int
(** Current value, 0 if never touched. *)

val reset : t -> unit

val merge_into : into:t -> t -> unit
(** Add every counter of the argument into [into]. The parallel batch
    scheduler accumulates per-domain; a [t] itself is single-domain state
    and must never be bumped from two domains concurrently. *)

val to_list : t -> (string * int) list
(** Sorted by name. *)

val pp : Format.formatter -> t -> unit

(** {2 Timers} *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with elapsed seconds. *)

val time_n : int -> (unit -> 'a) -> float
(** [time_n n f] runs [f] [n] times and returns the {e minimum} elapsed
    seconds over the runs (the usual robust estimator for benchmarks). *)

module Prng = Pts_util.Prng
module Client = Pts_clients.Client
module Pipeline = Pts_clients.Pipeline
module Check = Pts_clients.Check

(* The incremental-editing laboratory: drive seeded edit bursts against a
   long-lived pipeline whose engines are invalidated in place (the
   incremental side), and after every burst rebuild the same edited graph
   from scratch — fresh Andersen run, fresh engines, the recorded scripts
   replayed burst-by-burst so even the oracle's conservative marks line
   up — and require the two worlds to agree: per-engine query outcomes
   must be [Query.equal_outcome] and [ptsto check] reports must be
   byte-identical across engines x prune x jobs. The timing pair
   (incremental re-query vs full rebuild) is what BENCH_incr reports. *)

type burst_report = {
  b_index : int;  (** 1-based burst number *)
  b_edits : int;  (** edits actually applied (after no-op skips) *)
  b_stats : Incr.stats;
  b_incr_seconds : float;
      (** apply + invalidate + re-answer every query on live engines *)
  b_rebuild_seconds : float;
      (** compile + Andersen + replay + fresh engines + answer queries *)
  b_hash_equal : bool;  (** graph hashes agree after replay *)
  b_verdicts_equal : bool;  (** all engine x prune outcome vectors agree *)
  b_reports_equal : bool;  (** check reports byte-identical, all configs *)
}

type result = {
  r_bench : string;
  r_queries : int;
  r_engine_confs : int;  (** engine x prune configurations compared *)
  r_report_runs : int;  (** check-report configurations compared per burst *)
  r_bursts : burst_report list;
  r_ok : bool;
}

(* A budget generous enough that every query resolves on the suite
   benches: warm summary caches then only save work, they can never flip
   a Resolved outcome to Exceeded (or vice versa) between the
   incremental and rebuilt sides. *)
let budget_limit = 2_000_000

let conf_for ~prune name =
  if String.equal name "stasum" then
    (* keep STASUM's offline enumeration bounded, as the benches do *)
    Engine.conf ~budget_limit ~max_field_depth:4 ~overflow:Engine.Widen ~prune ()
  else Engine.conf ~budget_limit ~prune ()

let engine_names = [ "norefine"; "refinepts"; "dynsum"; "stasum" ]

let engine_confs =
  List.concat_map
    (fun name -> [ (name, false); (name, true) ])
    engine_names

let build_engines pag =
  List.map
    (fun (name, prune) -> Engine.create ~conf:(conf_for ~prune name) name pag)
    engine_confs

(* Queries come from the real clients, not a synthetic load: every cast
   and every dereference receiver in the program. Generation is a pure
   function of the IR, and both pipelines compile the same source, so
   the two sides' query lists are node-for-node aligned. *)
let queries_of pl =
  Pts_clients.Safecast.queries pl @ Pts_clients.Nullderef.queries pl

let checkers =
  [
    Pts_clients.Safecast.checker;
    Pts_clients.Nullderef.checker;
    Pts_clients.Devirt.checker;
    Pts_clients.Deadcode.checker;
  ]

(* Outcome vector of one engine over the query list. No [satisfy]: early
   exit would leave resolved sets partial and engine-dependent. *)
let answer engine queries =
  List.map (fun q -> engine.Engine.points_to q.Client.q_node) queries

let vectors_equal a b =
  List.length a = List.length b && List.for_all2 Query.equal_outcome a b

let report_string pl ~engine ~prune ~jobs =
  let opts =
    {
      Check.default_opts with
      Check.o_engine = engine;
      o_conf = conf_for ~prune engine;
      o_jobs = jobs;
    }
  in
  Trace.Json.to_string (Check.report_json (Check.run ~opts ~checkers pl))

let reports_agree ~jobs incr_pl rebuilt_pl =
  List.for_all
    (fun (engine, prune) ->
      List.for_all
        (fun j ->
          String.equal
            (report_string incr_pl ~engine ~prune ~jobs:j)
            (report_string rebuilt_pl ~engine ~prune ~jobs:j))
        jobs)
    engine_confs

let now () = Unix.gettimeofday ()

let run ?(report_jobs = [ 1; 2; 4 ]) ?(progress = fun _ -> ()) ~bench ~bursts
    ~edits_per_burst ~seed () =
  let source = Suite.source bench in
  (* Private pipeline: [Suite.pipeline] memoises, and an edited PAG must
     never leak into other users of the suite. *)
  let pl = Pipeline.of_source source in
  let incr = Incr.create pl.Pipeline.pag in
  let engines = build_engines pl.Pipeline.pag in
  List.iter (Incr.register incr) engines;
  let queries = queries_of pl in
  (* Warm pass: populate the summary caches so the first burst has
     something to retain (and something to invalidate). *)
  List.iter (fun e -> ignore (answer e queries)) engines;
  let rng = Prng.create seed in
  let scripts = ref [] (* newest first *) in
  let rows = ref [] in
  for b = 1 to bursts do
    let script = Editscript.burst rng pl.Pipeline.pag ~n:edits_per_burst in
    scripts := script :: !scripts;
    (* Incremental side: edit in place, invalidate, re-answer. *)
    let t0 = now () in
    let stats = Incr.apply incr script in
    let incr_vectors = List.map (fun e -> answer e queries) engines in
    let incr_seconds = now () -. t0 in
    (* From-scratch side: recompile, re-run Andersen, replay the recorded
       scripts burst-by-burst (so oracle invalidation marks match), build
       fresh engines. *)
    let t0 = now () in
    let rpl = Pipeline.of_source source in
    List.iter
      (fun s -> ignore (Pag.apply_edits rpl.Pipeline.pag s))
      (List.rev !scripts);
    let rebuilt_engines = build_engines rpl.Pipeline.pag in
    let rqueries = queries_of rpl in
    let rebuilt_vectors = List.map (fun e -> answer e rqueries) rebuilt_engines in
    let rebuild_seconds = now () -. t0 in
    let hash_equal =
      Pag.graph_hash pl.Pipeline.pag = Pag.graph_hash rpl.Pipeline.pag
      && Pag.epoch pl.Pipeline.pag = Pag.epoch rpl.Pipeline.pag
    in
    let verdicts_equal = List.for_all2 vectors_equal incr_vectors rebuilt_vectors in
    let reports_equal = reports_agree ~jobs:report_jobs pl rpl in
    progress
      (Printf.sprintf
         "burst %d/%d: %d edits, %d dirty, dropped %d retained %d, incr %.3fs \
          rebuild %.3fs, hash=%b verdicts=%b reports=%b"
         b bursts
         (stats.Incr.i_inserted + stats.Incr.i_deleted)
         stats.Incr.i_dirty stats.Incr.i_dropped stats.Incr.i_retained
         incr_seconds rebuild_seconds hash_equal verdicts_equal reports_equal);
    rows :=
      {
        b_index = b;
        b_edits = stats.Incr.i_inserted + stats.Incr.i_deleted;
        b_stats = stats;
        b_incr_seconds = incr_seconds;
        b_rebuild_seconds = rebuild_seconds;
        b_hash_equal = hash_equal;
        b_verdicts_equal = verdicts_equal;
        b_reports_equal = reports_equal;
      }
      :: !rows
  done;
  let bursts_done = List.rev !rows in
  {
    r_bench = bench;
    r_queries = List.length queries;
    r_engine_confs = List.length engine_confs;
    r_report_runs = List.length engine_confs * List.length report_jobs;
    r_bursts = bursts_done;
    r_ok =
      List.for_all
        (fun r -> r.b_hash_equal && r.b_verdicts_equal && r.b_reports_equal)
        bursts_done;
  }

(** The incremental-editing laboratory.

    Drives seeded {!Editscript} bursts against a long-lived pipeline
    whose engines are invalidated in place through {!Incr}, and after
    every burst rebuilds the same edited graph from scratch (fresh
    compile, fresh Andersen run, recorded scripts replayed
    burst-by-burst, fresh engines). Correctness is pinned two ways:
    per-engine query outcomes must be {!Query.equal_outcome}, and
    [ptsto check] reports must serialise to byte-identical JSON across
    all four engines x prune on/off x the given job counts. The timing
    pair (incremental re-query vs full rebuild) is what [BENCH_incr]
    reports. *)

type burst_report = {
  b_index : int;  (** 1-based burst number *)
  b_edits : int;  (** edits actually applied (after no-op skips) *)
  b_stats : Incr.stats;
  b_incr_seconds : float;
      (** apply + invalidate + re-answer every query on live engines *)
  b_rebuild_seconds : float;
      (** compile + Andersen + replay + fresh engines + answer queries *)
  b_hash_equal : bool;  (** graph hash and epoch agree after replay *)
  b_verdicts_equal : bool;  (** all engine x prune outcome vectors agree *)
  b_reports_equal : bool;  (** check reports byte-identical, all configs *)
}

type result = {
  r_bench : string;
  r_queries : int;
  r_engine_confs : int;  (** engine x prune configurations compared *)
  r_report_runs : int;  (** check-report configurations compared per burst *)
  r_bursts : burst_report list;
  r_ok : bool;  (** every burst passed every equality check *)
}

val run :
  ?report_jobs:int list ->
  ?progress:(string -> unit) ->
  bench:string ->
  bursts:int ->
  edits_per_burst:int ->
  seed:int ->
  unit ->
  result
(** [run ~bench ~bursts ~edits_per_burst ~seed ()] uses a private
    pipeline for [bench] (the memoised {!Suite.pipeline} is never
    edited). [report_jobs] defaults to [[1; 2; 4]]. [progress] receives
    one human-readable line per burst. *)

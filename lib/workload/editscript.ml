module Prng = Pts_util.Prng

(* Seeded edit-script generation over a frozen (possibly already edited)
   PAG: the IDE/CI workload of method-body rewrites (assign/load/store
   churn inside methods) and added/removed call edges (entry/exit).
   Deletions are drawn from the edges currently visible in the view,
   insertions from harvested node/field/site pools, so a script is a
   pure function of (seed, graph state) — the incremental side and the
   from-scratch rebuild replay identical scripts. *)

(* Harvest every edge in the current view as a deletable edit, scanning
   in-sides in ascending node order for determinism. [Enew] edges are
   included — deleting an allocation is a legal rewrite — but never
   generated as insertions (re-adding one must respect the unique-
   destination invariant, which deletions of other kinds never break). *)
let existing_edges pag =
  let acc = ref [] in
  for v = 0 to Pag.node_count pag - 1 do
    List.iter (fun o -> acc := Pag.Enew { obj_ = o; dst = v } :: !acc) (Pag.new_in pag v);
    List.iter (fun s -> acc := Pag.Eassign { src = s; dst = v } :: !acc) (Pag.assign_in pag v);
    List.iter (fun s -> acc := Pag.Eglobal { src = s; dst = v } :: !acc) (Pag.global_in pag v);
    List.iter
      (fun (f, b) -> acc := Pag.Eload { base = b; fld = f; dst = v } :: !acc)
      (Pag.load_in pag v);
    List.iter
      (fun (f, s) -> acc := Pag.Estore { base = v; fld = f; src = s } :: !acc)
      (Pag.store_in pag v);
    List.iter
      (fun (i, a) -> acc := Pag.Eentry { site = i; actual = a; formal = v } :: !acc)
      (Pag.entry_in pag v);
    List.iter
      (fun (i, r) -> acc := Pag.Eexit { site = i; retval = r; dst = v } :: !acc)
      (Pag.exit_in pag v)
  done;
  Array.of_list (List.rev !acc)

(* Pools for insertions: locals grouped per method (assigns stay
   intra-method, like the builder produces), globals, and the field and
   call-site ids already in use (fresh ids would never interact with the
   existing program). *)
type pools = {
  method_locals : Pag.node array array; (* methods with >= 2 locals *)
  locals : Pag.node array;
  globals : Pag.node array;
  fields : int array;
  sites : int array;
}

let pools pag =
  let prog = Pag.program pag in
  let per_method =
    Array.to_list prog.Ir.methods
    |> List.filter_map (fun (m : Ir.meth) ->
           if m.Ir.nvars < 2 then None
           else
             Some
               (Array.init m.Ir.nvars (fun v -> Pag.local_node pag ~meth:m.Ir.id ~var:v)))
  in
  let locals = ref [] and globals = ref [] in
  for n = Pag.node_count pag - 1 downto 0 do
    match Pag.kind pag n with
    | Pag.Local _ -> locals := n :: !locals
    | Pag.Global _ -> globals := n :: !globals
    | Pag.Obj _ -> ()
  done;
  let fields = Hashtbl.create 16 and sites = Hashtbl.create 16 in
  for v = 0 to Pag.node_count pag - 1 do
    List.iter (fun (f, _) -> Hashtbl.replace fields f ()) (Pag.load_in pag v);
    List.iter (fun (f, _) -> Hashtbl.replace fields f ()) (Pag.store_in pag v);
    List.iter (fun (i, _) -> Hashtbl.replace sites i ()) (Pag.entry_in pag v);
    List.iter (fun (i, _) -> Hashtbl.replace sites i ()) (Pag.exit_in pag v)
  done;
  let sorted_keys h = Hashtbl.fold (fun k () acc -> k :: acc) h [] |> List.sort compare in
  {
    method_locals = Array.of_list per_method;
    locals = Array.of_list !locals;
    globals = Array.of_list !globals;
    fields = Array.of_list (sorted_keys fields);
    sites = Array.of_list (sorted_keys sites);
  }

let gen_insert rng p =
  let two_locals_same_method () =
    let vars = Prng.choose rng p.method_locals in
    let a = Prng.choose rng vars and b = Prng.choose rng vars in
    (a, b)
  in
  let local () = Prng.choose rng p.locals in
  let cases =
    List.concat
      [
        (if Array.length p.method_locals > 0 then
           [
             ( 4,
               fun () ->
                 let src, dst = two_locals_same_method () in
                 Pag.Eassign { src; dst } );
           ]
         else []);
        (if Array.length p.globals > 0 && Array.length p.locals > 0 then
           [
             ( 2,
               fun () ->
                 let g = Prng.choose rng p.globals and l = local () in
                 if Prng.bool rng then Pag.Eglobal { src = l; dst = g }
                 else Pag.Eglobal { src = g; dst = l } );
           ]
         else []);
        (if Array.length p.fields > 0 && Array.length p.locals > 0 then
           [
             ( 3,
               fun () ->
                 let f = Prng.choose rng p.fields in
                 if Prng.bool rng then
                   Pag.Eload { base = local (); fld = f; dst = local () }
                 else Pag.Estore { base = local (); fld = f; src = local () } );
           ]
         else []);
        (if Array.length p.sites > 0 && Array.length p.locals > 0 then
           [
             ( 2,
               fun () ->
                 let i = Prng.choose rng p.sites in
                 if Prng.bool rng then
                   Pag.Eentry { site = i; actual = local (); formal = local () }
                 else Pag.Eexit { site = i; retval = local (); dst = local () } );
           ]
         else []);
      ]
  in
  match cases with [] -> None | _ -> Some ((Prng.weighted rng cases) ())

let burst rng pag ~n =
  let edges = existing_edges pag in
  let p = pools pag in
  let edits = ref [] in
  for _ = 1 to n do
    let del =
      Array.length edges > 0 && (Prng.bool rng || Array.length p.locals = 0)
    in
    if del then edits := Pag.Edel (Prng.choose rng edges) :: !edits
    else
      match gen_insert rng p with
      | Some k -> edits := Pag.Eadd k :: !edits
      | None -> ()
  done;
  List.rev !edits

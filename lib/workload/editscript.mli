(** Seeded edit scripts over a frozen PAG — the IDE/CI editing workload.

    A burst mixes method-body rewrites (intra-method assign churn,
    load/store changes on fields already in use) with added/removed call
    edges (entry/exit on existing call sites) and deletions sampled
    uniformly from the edges currently visible in the view. Generation
    is a pure function of the generator state and the graph, so the
    incremental side and a from-scratch rebuild replaying the recorded
    scripts see bit-identical edit histories. *)

val burst : Pts_util.Prng.t -> Pag.t -> n:int -> Pag.edit list
(** [burst rng pag ~n] draws up to [n] edits (fewer only on degenerate
    graphs with nothing to insert between). Roughly half are deletions
    of existing edges when any exist. *)

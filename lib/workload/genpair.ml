(* Matched MiniJava/MiniFun program pairs for the cross-frontend
   equivalence property.

   Each pair renders the same set of heap scenarios in both surface
   languages, with per-scenario query variables whose names are unique
   program-wide. A scenario is either monomorphic (the query variable can
   reach exactly one non-null allocation site) or polymorphic (two sites),
   and the two renderings are built to have the same answer — so every
   engine, with or without pruning, at any job count, must return the same
   verdict for the same query on either half of the pair.

   The shapes deliberately exercise what each frontend lowers differently:
   MiniFun ref cells vs. a MiniJava field, [if]-merges, Ok/Err vs. a
   subtyped result hierarchy, and closure [apply] dispatch vs. virtual
   dispatch on a class hierarchy. *)

type kind = Cell | Select | Wrap | App

type query_spec = {
  q_var : string;  (* unique across the whole program, both halves *)
  q_mono : bool;  (* true: exactly one non-null site; false: two *)
  q_kind : kind;
}

type pair = {
  p_name : string;
  p_seed : int;
  p_mjava : string;
  p_minifun : string;
  p_queries : query_spec list;
}

let kind_name = function Cell -> "cell" | Select -> "select" | Wrap -> "wrap" | App -> "app"

(* ------------------------- MiniJava rendering ------------------------ *)

let mj_classes buf i kind =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "class PayA%d { int tag; PayA%d() { this.tag = 0; } }\n" i i;
  (match kind with
  | Cell | Select | Wrap | App -> ());
  (match kind with
  | Cell ->
    p "class PayB%d { int tag; PayB%d() { this.tag = 1; } }\n" i i;
    p "class Cell%d { Object val; Cell%d() { this.val = null; } }\n" i i
  | Select -> p "class PayB%d { int tag; PayB%d() { this.tag = 1; } }\n" i i
  | Wrap ->
    p "class PayB%d { int tag; PayB%d() { this.tag = 1; } }\n" i i;
    p "class Res%d { Object value; Res%d() { this.value = null; } }\n" i i;
    p "class ResOk%d extends Res%d { ResOk%d() { } }\n" i i i;
    p "class ResErr%d extends Res%d { ResErr%d() { } }\n" i i i
  | App ->
    p "class Fn%d { Fn%d() { } Object call(Object x) { return x; } }\n" i i;
    p "class FnA%d extends Fn%d { FnA%d() { } Object call(Object x) { return x; } }\n" i i i;
    p "class FnB%d extends Fn%d { FnB%d() { } Object call(Object x) { return x; } }\n" i i i)

let mj_scenario buf i kind mono =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "  void s%d() {\n" i;
  (match kind with
  | Cell ->
    p "    PayA%d pa%d = new PayA%d();\n" i i i;
    p "    Cell%d c%d = new Cell%d();\n" i i i;
    p "    c%d.val = pa%d;\n" i i;
    if not mono then begin
      p "    PayB%d pb%d = new PayB%d();\n" i i i;
      p "    c%d.val = pb%d;\n" i i
    end;
    p "    Object qcell%d = c%d.val;\n" i i
  | Select ->
    p "    PayA%d pa%d = new PayA%d();\n" i i i;
    p "    Object qsel%d = pa%d;\n" i i;
    if not mono then begin
      p "    PayB%d pb%d = new PayB%d();\n" i i i;
      p "    if (this.flip > 0) { qsel%d = pb%d; } else { }\n" i i
    end
  | Wrap ->
    p "    PayA%d pw%d = new PayA%d();\n" i i i;
    p "    ResOk%d ok%d = new ResOk%d();\n" i i i;
    p "    ok%d.value = pw%d;\n" i i;
    p "    Res%d r%d = ok%d;\n" i i i;
    if not mono then begin
      p "    PayB%d pv%d = new PayB%d();\n" i i i;
      p "    ResErr%d er%d = new ResErr%d();\n" i i i;
      p "    er%d.value = pv%d;\n" i i;
      p "    if (this.flip > 0) { r%d = er%d; } else { }\n" i i
    end;
    p "    Object qwrap%d = r%d.value;\n" i i
  | App ->
    p "    Fn%d fa%d = new FnA%d();\n" i i i;
    p "    Fn%d fb%d = new FnB%d();\n" i i i;
    p "    Fn%d qapp%d = fa%d;\n" i i i;
    if not mono then p "    if (this.flip > 0) { qapp%d = fb%d; } else { }\n" i i;
    p "    PayA%d px%d = new PayA%d();\n" i i i;
    p "    Object qres%d = qapp%d.call(px%d);\n" i i i);
  p "  }\n"

let render_mjava name scenarios =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "// genpair %s: MiniJava half\n" name;
  List.iter (fun (i, kind, _) -> mj_classes buf i kind) scenarios;
  p "class Scen {\n  int flip;\n  Scen() { this.flip = 1; }\n";
  List.iter (fun (i, kind, mono) -> mj_scenario buf i kind mono) scenarios;
  p "}\nclass Main {\n  static void main() {\n    Scen t = new Scen();\n";
  List.iter (fun (i, _, _) -> p "    t.s%d();\n" i) scenarios;
  p "  }\n}\n";
  Buffer.contents buf

(* ------------------------- MiniFun rendering ------------------------- *)

let mf_scenario buf i kind mono =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "let scen%d = fun scen%d () ->\n" i i;
  (match (kind, mono) with
  | Cell, true ->
    p "  let pa%d = ref 0 in\n" i;
    p "  let c%d = ref pa%d in\n" i i;
    p "  let qcell%d = !c%d in 0;;\n" i i
  | Cell, false ->
    p "  let pa%d = ref 0 in\n" i;
    p "  let c%d = ref pa%d in\n" i i;
    p "  let pb%d = ref 0 in\n" i;
    p "  let u%d = c%d := pb%d in\n" i i i;
    p "  let qcell%d = !c%d in 0;;\n" i i
  | Select, true ->
    p "  let pa%d = ref 0 in\n" i;
    p "  let qsel%d = pa%d in 0;;\n" i i
  | Select, false ->
    p "  let pa%d = ref 0 in\n" i;
    p "  let pb%d = ref 0 in\n" i;
    p "  let qsel%d = if 1 > 0 then pa%d else pb%d in 0;;\n" i i i
  | Wrap, true ->
    p "  let pw%d = ref 0 in\n" i;
    p "  let r%d = Ok(pw%d) in\n" i i;
    p "  let qwrap%d = match r%d with | Ok(x%d) -> x%d | Err(y%d) -> y%d end in 0;;\n" i i i i i i
  | Wrap, false ->
    p "  let pw%d = ref 0 in\n" i;
    p "  let pv%d = ref 0 in\n" i;
    p "  let r%d = if 1 > 0 then Ok(pw%d) else Err(pv%d) in\n" i i i;
    p "  let qwrap%d = match r%d with | Ok(x%d) -> x%d | Err(y%d) -> y%d end in 0;;\n" i i i i i i
  | App, mono ->
    p "  let ida%d = fun ida%d (ax%d) -> ax%d in\n" i i i i;
    p "  let idb%d = fun idb%d (bx%d) -> bx%d in\n" i i i i;
    if mono then p "  let qapp%d = ida%d in\n" i i
    else p "  let qapp%d = if 1 > 0 then ida%d else idb%d in\n" i i i;
    p "  let qres%d = qapp%d(ref 0) in 0;;\n" i i)

let render_minifun name scenarios =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "// genpair %s: MiniFun half\n" name;
  List.iter (fun (i, kind, mono) -> mf_scenario buf i kind mono) scenarios;
  p "let main = fun main () ->\n  (";
  List.iteri
    (fun j (i, _, _) ->
      if j > 0 then p "; ";
      p "scen%d()" i)
    scenarios;
  p "; 0);;\n";
  Buffer.contents buf

(* ------------------------------ driver ------------------------------- *)

let query_of (i, kind, mono) =
  let prefix = match kind with Cell -> "qcell" | Select -> "qsel" | Wrap -> "qwrap" | App -> "qapp" in
  { q_var = Printf.sprintf "%s%d" prefix i; q_mono = mono; q_kind = kind }

let generate ?(scenarios = 8) ~name ~seed () =
  if scenarios < 2 then invalid_arg "Genpair.generate: need at least 2 scenarios";
  let rng = Random.State.make [| seed |] in
  let kinds = [| App; Cell; Select; Wrap |] in
  let scens =
    List.init scenarios (fun i ->
        (* scenario 0 is always a monomorphic apply (so Devirtopt has a
           beyond-CHA rewrite to make) and scenario 1 a polymorphic one;
           the rest draw from the seeded RNG *)
        let kind = kinds.(i mod Array.length kinds) in
        let mono = if i = 0 then true else if i = 1 then false else Random.State.bool rng in
        let kind = if i <= 1 then App else kind in
        (i, kind, mono))
  in
  {
    p_name = name;
    p_seed = seed;
    p_mjava = render_mjava name scens;
    p_minifun = render_minifun name scens;
    p_queries = List.map query_of scens;
  }

let describe p =
  Printf.sprintf "%s: %d scenarios (%s), seed %d" p.p_name (List.length p.p_queries)
    (String.concat ","
       (List.map (fun q -> Printf.sprintf "%s/%s" (kind_name q.q_kind) (if q.q_mono then "mono" else "poly")) p.p_queries))
    p.p_seed

(* The committed pair suite: small/medium/large, fixed seeds. *)
let configs = [ ("pair-s", 201, 4); ("pair-m", 202, 8); ("pair-l", 203, 12) ]

let names = List.map (fun (n, _, _) -> n) configs

let get name =
  match List.find_opt (fun (n, _, _) -> String.equal n name) configs with
  | Some (n, seed, scenarios) -> generate ~scenarios ~name:n ~seed ()
  | None -> raise Not_found

module Prng = Pts_util.Prng

type config = {
  name : string;
  seed : int;
  n_elem_classes : int;
  n_containers : int;
  n_boxes : int;
  n_lists : int;
  n_factories : int;
  n_utils : int;
  util_chain : int;
  n_apps : int;
  n_globals : int;
  churn : int;
  null_rate : float;
  bad_cast_rate : float;
  shared_rate : float;
  interact_rate : float;
  n_taint_flows : int;
  n_taint_clean : int;
  n_taint_kill : int;
  n_taint_weak : int;
}

let default =
  {
    name = "default";
    seed = 42;
    n_elem_classes = 4;
    n_containers = 3;
    n_boxes = 2;
    n_lists = 2;
    n_factories = 2;
    n_utils = 2;
    util_chain = 4;
    n_apps = 6;
    n_globals = 3;
    churn = 5;
    null_rate = 0.3;
    bad_cast_rate = 0.2;
    shared_rate = 0.3;
    interact_rate = 0.25;
    n_taint_flows = 0;
    n_taint_clean = 0;
    n_taint_kill = 0;
    n_taint_weak = 0;
  }

let describe c =
  Printf.sprintf
    "%s(seed=%d elems=%d containers=%d boxes=%d lists=%d factories=%d utils=%dx%d apps=%d globals=%d taint=%d/%d kill=%d weak=%d)"
    c.name c.seed c.n_elem_classes c.n_containers c.n_boxes c.n_lists c.n_factories c.n_utils
    c.util_chain c.n_apps c.n_globals c.n_taint_flows c.n_taint_clean c.n_taint_kill c.n_taint_weak

(* ------------------------------------------------------------------ *)
(* Emission helpers                                                    *)
(* ------------------------------------------------------------------ *)

type taint_label = { tl_method : string; tl_line : int; tl_tainted : bool }

type st = {
  buf : Buffer.t;
  cfg : config;
  rng : Prng.t;
  mutable lineno : int; (* 1-based line the next [line] call lands on *)
  mutable labels : taint_label list; (* reversed *)
}

let line st fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string st.buf s;
      Buffer.add_char st.buf '\n';
      st.lineno <- st.lineno + 1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s)
    fmt

let elem st i = Printf.sprintf "Item%d" (i mod st.cfg.n_elem_classes)
let elem_sub st i = Printf.sprintf "Item%dSub" (i mod st.cfg.n_elem_classes)
let vec st k = Printf.sprintf "Vec%d" (k mod st.cfg.n_containers)
let box st b = Printf.sprintf "Box%d" (b mod max 1 st.cfg.n_boxes)
let list_cls st l = Printf.sprintf "List%d" (l mod max 1 st.cfg.n_lists)
let factory st f = Printf.sprintf "Factory%d" (f mod max 1 st.cfg.n_factories)
let util st u = Printf.sprintf "Util%d" (u mod max 1 st.cfg.n_utils)

(* ------------------------------------------------------------------ *)
(* Library classes                                                     *)
(* ------------------------------------------------------------------ *)

(* A chain of local reference copies: [Object p0 = src; Object p1 = p0;
   ...]. Returns the name of the last link. Real method bodies are mostly
   such local data flow, which is exactly what PPTA summarises; the chain
   length drives the PAG's locality ratio. *)
let churn st ~prefix ~src =
  let n = max 0 st.cfg.churn in
  if n = 0 then src
  else begin
    line st "    Object %s0 = %s;" prefix src;
    for i = 1 to n - 1 do
      line st "    Object %s%d = %s%d;" prefix i prefix (i - 1)
    done;
    Printf.sprintf "%s%d" prefix (n - 1)
  end


let emit_elements st =
  for i = 0 to st.cfg.n_elem_classes - 1 do
    line st "class Item%d {" i;
    line st "  int tag;";
    line st "  Item%d payload;" i;
    line st "  Item%d() { this.tag = %d; }" i i;
    line st "  Item%d weave(Item%d other) { this.payload = other; return this.payload; }" i i;
    line st "}";
    line st "class Item%dSub extends Item%d {" i i;
    line st "  Item%dSub() { this.tag = %d; }" i (i + 100);
    line st "  Item%d weave(Item%d other) { this.payload = other; return other; }" i i;
    line st "}"
  done

let emit_containers st =
  for k = 0 to st.cfg.n_containers - 1 do
    line st "class Vec%d {" k;
    line st "  Object[] elems;";
    line st "  int count;";
    line st "  Vec%d() {" k;
    line st "    Object[] t = new Object[16];";
    line st "    this.elems = t;";
    line st "    this.count = 0;";
    line st "  }";
    line st "  void add(Object p) {";
    line st "    Object[] t = this.elems;";
    let stored = churn st ~prefix:"ca" ~src:"p" in
    line st "    t[this.count] = %s;" stored;
    line st "    this.count = this.count + 1;";
    line st "  }";
    line st "  Object get(int i) {";
    line st "    Object[] t = this.elems;";
    let got = churn st ~prefix:"cg" ~src:"t[i]" in
    line st "    return %s;" got;
    line st "  }";
    line st "  Object first() { return this.get(0); }";
    line st "  Object last() { return this.get(this.count - 1); }";
    line st "  void mix() {";
    line st "    Object m0 = this.elems[0];";
    let mixed = churn st ~prefix:"mx" ~src:"m0" in
    let mixed2 = churn st ~prefix:"my" ~src:mixed in
    let mixed3 = churn st ~prefix:"mz" ~src:mixed2 in
    line st "    this.elems[1] = %s;" mixed3;
    line st "  }";
    line st "  Object shuffle(Object s) {";
    let sh1 = churn st ~prefix:"sa" ~src:"s" in
    let sh2 = churn st ~prefix:"sb" ~src:sh1 in
    let sh3 = churn st ~prefix:"sc" ~src:sh2 in
    let sh4 = churn st ~prefix:"sd" ~src:sh3 in
    line st "    return %s;" sh4;
    line st "  }";
    line st "  void tidy() {";
    line st "    this.mix();";
    line st "    Object[] t = this.elems;";
    line st "    Object td = t[0];";
    let rec long_chain prefix src rounds =
      if rounds = 0 then src
      else long_chain prefix (churn st ~prefix:(Printf.sprintf "%s%d_" prefix rounds) ~src) (rounds - 1)
    in
    let last = long_chain "td" "td" ((st.cfg.churn / 3) + 1) in
    line st "    t[1] = %s;" last;
    line st "  }";
    line st "  void addAll(Vec%d other) {" k;
    line st "    for (int i = 0; i < other.count; i = i + 1) {";
    line st "      this.add(other.get(i));";
    line st "    }";
    line st "  }";
    line st "}"
  done

let emit_boxes st =
  for b = 0 to st.cfg.n_boxes - 1 do
    line st "class Box%d {" b;
    line st "  Object val;";
    line st "  Box%d() {}" b;
    line st "  void put(Object v) {";
    let put = churn st ~prefix:"cp" ~src:"v" in
    line st "    this.val = %s;" put;
    line st "  }";
    line st "  Object take() {";
    let took = churn st ~prefix:"ct" ~src:"this.val" in
    line st "    return %s;" took;
    line st "  }";
    line st "  Object pipe(Object v) {";
    line st "    this.put(v);";
    line st "    return this.take();";
    line st "  }";
    line st "  void refresh() {";
    line st "    Object r0 = this.val;";
    let last = churn st ~prefix:"rf" ~src:"r0" in
    line st "    this.val = %s;" last;
    line st "  }";
    line st "  Object swap(Box%d other) {" b;
    line st "    Object mine = this.take();";
    line st "    this.put(other.take());";
    line st "    other.put(mine);";
    line st "    return this.take();";
    line st "  }";
    line st "}"
  done

let emit_lists st =
  for l = 0 to st.cfg.n_lists - 1 do
    line st "class Node%d {" l;
    line st "  Object val;";
    line st "  Node%d next;" l;
    line st "  Node%d(Object v) { this.val = v; }" l;
    line st "}";
    line st "class List%d {" l;
    line st "  Node%d head;" l;
    line st "  List%d() {}" l;
    line st "  void push(Object v) {";
    let pushed = churn st ~prefix:"cl" ~src:"v" in
    line st "    Node%d n = new Node%d(%s);" l l pushed;
    line st "    n.next = this.head;";
    line st "    this.head = n;";
    line st "  }";
    (* Recursive lookup: exercises call-graph cycle collapsing, and its
       [return null] feeds genuine NullDeref refutations downstream. *)
    line st "  Object find(Node%d cur, int k) {" l;
    line st "    if (cur == null) { return null; }";
    line st "    if (k == 0) { return cur.val; }";
    line st "    return this.find(cur.next, k - 1);";
    line st "  }";
    line st "  Object nth(int k) { return this.find(this.head, k); }";
    line st "}"
  done

let emit_factories st =
  for f = 0 to st.cfg.n_factories - 1 do
    let product = elem st (Prng.int st.rng st.cfg.n_elem_classes) in
    line st "class Factory%d {" f;
    line st "  static Object cache;";
    line st "  Factory%d() {}" f;
    line st "  Object fresh() { return new %s(); }" product;
    line st "  Object freshSub() { return new %sSub(); }" product;
    (* Returns a memoised object: a genuine factory-property violation. *)
    line st "  Object cached() {";
    line st "    Object c = Factory%d.cache;" f;
    line st "    if (c == null) {";
    line st "      c = new %s();" product;
    line st "      Factory%d.cache = c;" f;
    line st "    }";
    line st "    return c;";
    line st "  }";
    (* Allocates, but hands the caller's own object back: the FactoryM
       client must refute these calls. *)
    line st "  Object relay(Object x) {";
    line st "    Object d = new %s();" product;
    line st "    Factory%d.cache = d;" f;
    line st "    return x;";
    line st "  }";
    line st "}"
  done

let emit_utils st =
  for u = 0 to st.cfg.n_utils - 1 do
    line st "class Util%d {" u;
    for d = 0 to st.cfg.util_chain - 1 do
      if d = st.cfg.util_chain - 1 then
        line st "  static Object pass%d(Object x) { return x; }" d
      else line st "  static Object pass%d(Object x) { return Util%d.pass%d(x); }" d u (d + 1)
    done;
    line st "  static Object route(Object a, Object b) {";
    line st "    if (1 < 2) { return Util%d.pass0(a); }" u;
    line st "    return Util%d.pass0(b);" u;
    line st "  }";
    line st "}"
  done

let emit_registry st =
  line st "class Registry {";
  for g = 0 to st.cfg.n_globals - 1 do
    line st "  static Object slot%d;" g
  done;
  line st "  static Vec0 shared = new Vec0();";
  for g = 0 to st.cfg.n_globals - 1 do
    line st "  static void publish%d(Object v) { Registry.slot%d = v; }" g g;
    line st "  static Object fetch%d() { return Registry.slot%d; }" g g
  done;
  line st "}"

(* ------------------------------------------------------------------ *)
(* Application classes                                                 *)
(* ------------------------------------------------------------------ *)

(* Each app is (mostly) monomorphic in one element class so that
   context-sensitive analysis can prove its casts while context-insensitive
   merging cannot. *)
let emit_app st a =
  let cfg = st.cfg in
  let rng = st.rng in
  let my_elem = a mod cfg.n_elem_classes in
  let k = Prng.int rng cfg.n_containers in
  let b = if cfg.n_boxes > 0 then Prng.int rng cfg.n_boxes else 0 in
  let l = if cfg.n_lists > 0 then Prng.int rng cfg.n_lists else 0 in
  let f = if cfg.n_factories > 0 then Prng.int rng cfg.n_factories else 0 in
  let u = if cfg.n_utils > 0 then Prng.int rng cfg.n_utils else 0 in
  let e = elem st my_elem in
  let es = elem_sub st my_elem in
  line st "class App%d {" a;
  line st "  %s mine;" (vec st k);
  line st "  %s extra;" (vec st k);
  line st "  %s spare;" (box st b);
  line st "  App%d() {" a;
  line st "    this.mine = new %s();" (vec st k);
  line st "    this.extra = new %s();" (vec st k);
  line st "    this.spare = new %s();" (box st b);
  line st "  }";
  (* fill: populate the private container *)
  line st "  void fill() {";
  line st "    Object seed = new %s();" e;
  let seeded = churn st ~prefix:"fl" ~src:"seed" in
  line st "    this.mine.add(%s);" seeded;
  line st "    this.mine.add(new %s());" es;
  if cfg.n_factories > 0 then begin
    line st "    %s fac = new %s();" (factory st f) (factory st f);
    line st "    this.extra.add(fac.fresh());";
    if Prng.chance rng 0.5 then line st "    this.extra.add(fac.cached());";
    if Prng.chance rng 0.4 then line st "    this.extra.add(fac.relay(new %s()));" es
  end;
  if Prng.chance rng cfg.null_rate then line st "    this.mine.add(null);";
  line st "  }";
  (* consume: read back and downcast *)
  let cast_target =
    if Prng.chance rng cfg.bad_cast_rate then
      elem st (Prng.int rng cfg.n_elem_classes)
    else e
  in
  line st "  void consume() {";
  line st "    Object xo = this.extra.first();";
  line st "    int th = xo.hashCode();";
  line st "    Object o = this.mine.get(0);";
  line st "    boolean own = o instanceof %s;" e;
  line st "    %s solo = new %s();" e e;
  line st "    %s woven = solo.weave(solo);" e;
  line st "    int wt = woven.tag;";
  let oc = churn st ~prefix:"cn" ~src:"o" in
  line st "    Object oo = %s;" oc;
  line st "    int tz = oo.hashCode();";
  line st "    %s it = (%s) o;" e e;
  line st "    int t1 = it.tag;";
  (* a polymorphic weave receiver in a few apps: a devirtualisation the
     analysis must refute; kept rare because the shared per-class method
     is a cross-app mixing point that inflates every engine's work *)
  if Prng.chance rng 0.15 then begin
    line st "    %s mixed = it.weave(it);" e;
    line st "    int mt = mixed.tag;"
  end;
  line st "    Object piped = this.spare.pipe(o);";
  line st "    %s it2 = (%s) piped;" cast_target cast_target;
  line st "    int t2 = it2.tag;";
  if cfg.n_utils > 0 then begin
    line st "    Object routed = %s.pass0(o);" (util st u);
    line st "    %s it3 = (%s) routed;" e e;
    line st "    int t3 = it3.tag;"
  end;
  if cfg.n_lists > 0 then begin
    line st "    %s lst = new %s();" (list_cls st l) (list_cls st l);
    line st "    lst.push(o);";
    line st "    Object found = lst.nth(%d);" (Prng.int rng 3);
    line st "    int h = found.hashCode();"
  end;
  line st "  }";
  (* deep: nested boxes exercise multi-level field stacks *)
  let b2 = if cfg.n_boxes > 0 then Prng.int rng cfg.n_boxes else 0 in
  line st "  void deep() {";
  line st "    %s outer = new %s();" (box st b2) (box st b2);
  line st "    %s inner = new %s();" (box st b) (box st b);
  line st "    inner.put(this.mine.first());";
  line st "    outer.put(inner);";
  line st "    %s back = (%s) outer.take();" (box st b) (box st b);
  line st "    Object v = back.take();";
  line st "    %s it4 = (%s) v;" e e;
  line st "    int t4 = it4.tag;";
  line st "  }";
  (* optional interactions *)
  let uses_registry = Prng.chance rng cfg.shared_rate in
  if uses_registry then begin
    let g = Prng.int rng cfg.n_globals in
    line st "  void viaRegistry() {";
    line st "    Registry.publish%d(this.mine.first());" g;
    line st "    Object got = Registry.fetch%d();" g;
    line st "    int h2 = got.hashCode();";
    line st "    Registry.shared.add(got);";
    line st "  }"
  end;
  line st "  void feed(%s other) { other.add(this.mine.first()); }" (vec st k);
  line st "  void run() {";
  line st "    this.fill();";
  line st "    this.consume();";
  line st "    this.deep();";
  line st "    this.mine.tidy();";
  line st "    this.spare.refresh();";
  if uses_registry then line st "    this.viaRegistry();";
  line st "  }";
  line st "}";
  k

(* ------------------------------------------------------------------ *)
(* Seeded taint flows                                                  *)
(* ------------------------------------------------------------------ *)

(* Everything below is emitted only when the config asks for taint
   seeding, and draws nothing from the RNG — configs with
   [n_taint_flows = n_taint_clean = 0] generate byte-identical programs
   to what they generated before this section existed.

   Each [TaintFlow<i>.go] routes the object allocated in
   [TaintKit.getSecret<i>] (a distinct source site per flow) into
   [TaintKit.send] through one of five carriers, cycling by index:
   directly, through a fresh Box, through a dedicated TaintVault static
   slot, through the Util pass chain, or — the annotation variant —
   from a [// @taint-source] allocation into a [// @taint-sink] call on
   a method ([log]) that matches no sink prefix. Each [TaintClean<j>.go]
   performs the same dance with a benign object (and, for the direct
   variant, additionally creates a secret it never sends), so a checker
   with any precision loss across these carriers shows up as a false
   positive against the ground-truth labels. *)
let emit_taint_lib st ~flows ~clean =
  let kills = st.cfg.n_taint_kill and weaks = st.cfg.n_taint_weak in
  if flows + clean + kills + weaks > 0 then begin
    line st "class Secret {";
    line st "  int token;";
    line st "  Secret() { this.token = 41; }";
    line st "}";
    line st "class TaintKit {";
    line st "  TaintKit() {}";
    for i = 0 to flows - 1 do
      line st "  static Object getSecret%d() { return new Secret(); }" i
    done;
    for k = 0 to kills - 1 do
      line st "  static Object getSecretK%d() { return new Secret(); }" k
    done;
    for k = 0 to weaks - 1 do
      line st "  static Object getSecretW%d() { return new Secret(); }" k
    done;
    line st "  static void send(Object x) { int h = x.hashCode(); }";
    line st "  static void log(Object x) { int h = x.hashCode(); }";
    line st "}";
    line st "class TaintVault {";
    for i = 0 to flows - 1 do
      line st "  static Object fslot%d;" i
    done;
    for j = 0 to clean - 1 do
      line st "  static Object cslot%d;" j
    done;
    line st "}";
    for k = 0 to kills - 1 do
      line st "class KillBox%d {" k;
      line st "  Object slot;";
      line st "  KillBox%d() {}" k;
      line st "}"
    done;
    for k = 0 to weaks - 1 do
      line st "class WeakBox%d {" k;
      line st "  Object slot;";
      line st "  WeakBox%d() {}" k;
      line st "}"
    done
  end

let taint_variant st i = match i mod 5 with 3 when st.cfg.n_utils = 0 -> 0 | v -> v

let add_label st ~meth ~tainted =
  st.labels <- { tl_method = meth; tl_line = st.lineno; tl_tainted = tainted } :: st.labels

let emit_taint_flow st i =
  let meth = Printf.sprintf "TaintFlow%d.go" i in
  line st "class TaintFlow%d {" i;
  line st "  static void go() {";
  (match taint_variant st i with
  | 0 ->
    line st "    Object s = TaintKit.getSecret%d();" i;
    add_label st ~meth ~tainted:true;
    line st "    TaintKit.send(s);"
  | 1 ->
    line st "    Object s = TaintKit.getSecret%d();" i;
    line st "    Box0 carrier = new Box0();";
    line st "    carrier.put(s);";
    line st "    Object out = carrier.take();";
    add_label st ~meth ~tainted:true;
    line st "    TaintKit.send(out);"
  | 2 ->
    line st "    Object s = TaintKit.getSecret%d();" i;
    line st "    TaintVault.fslot%d = s;" i;
    line st "    Object out = TaintVault.fslot%d;" i;
    add_label st ~meth ~tainted:true;
    line st "    TaintKit.send(out);"
  | 3 ->
    line st "    Object s = TaintKit.getSecret%d();" i;
    line st "    Object out = Util0.pass0(s);";
    add_label st ~meth ~tainted:true;
    line st "    TaintKit.send(out);"
  | _ ->
    line st "    Object s = new Item0(); // @taint-source";
    add_label st ~meth ~tainted:true;
    line st "    TaintKit.log(s); // @taint-sink");
  line st "  }";
  line st "}"

let emit_taint_clean st ~flows j =
  let meth = Printf.sprintf "TaintClean%d.go" j in
  line st "class TaintClean%d {" j;
  line st "  static void go() {";
  (match taint_variant st j with
  | 0 ->
    line st "    Object c = new Item0();";
    (* a secret that is created but flows into no sink *)
    if flows > 0 then line st "    Object drop = TaintKit.getSecret0();";
    add_label st ~meth ~tainted:false;
    line st "    TaintKit.send(c);"
  | 1 ->
    line st "    Object c = new Item0();";
    line st "    Box0 carrier = new Box0();";
    line st "    carrier.put(c);";
    line st "    Object out = carrier.take();";
    add_label st ~meth ~tainted:false;
    line st "    TaintKit.send(out);"
  | 2 ->
    line st "    Object c = new Item0();";
    line st "    TaintVault.cslot%d = c;" j;
    line st "    Object out = TaintVault.cslot%d;" j;
    add_label st ~meth ~tainted:false;
    line st "    TaintKit.send(out);"
  | 3 ->
    line st "    Object c = new Item0();";
    line st "    Object out = Util0.pass0(c);";
    add_label st ~meth ~tainted:false;
    line st "    TaintKit.send(out);"
  | _ ->
    line st "    Object c = new Item0();";
    add_label st ~meth ~tainted:false;
    line st "    TaintKit.log(c); // @taint-sink");
  line st "  }";
  line st "}"

(* Overwrite-kill shapes: the secret is stored into a dedicated box and
   unconditionally overwritten with a benign object before the load that
   feeds the sink, so at runtime the sink only ever receives the clean
   value — labelled [tainted:false]. A flow-insensitive engine reports
   the dead store's secret anyway (a false positive); a strong-update
   engine proves the kill. Variants cycle: overwrite through the box
   variable itself, overwrite through a must-alias copy of it. *)
let emit_taint_kill st k =
  let meth = Printf.sprintf "TaintKill%d.go" k in
  line st "class TaintKill%d {" k;
  line st "  static void go() {";
  line st "    Object s = TaintKit.getSecretK%d();" k;
  line st "    KillBox%d b = new KillBox%d();" k k;
  (match k mod 2 with
  | 0 ->
    line st "    b.slot = s;";
    line st "    Object c = new Item0();";
    line st "    b.slot = c;"
  | _ ->
    line st "    KillBox%d same = b;" k;
    line st "    b.slot = s;";
    line st "    Object c = new Item0();";
    line st "    same.slot = c;");
  line st "    Object out = b.slot;";
  add_label st ~meth ~tainted:false;
  line st "    TaintKit.send(out);";
  line st "  }";
  line st "}"

(* Weak-update controls: the same overwrite dance, but through a channel
   no sound engine may treat as a kill — a conditional store (whose
   branch is dead at runtime), a store through an alias that at runtime
   targets a different box, or boxes allocated under a loop (a summary
   site: the overwrite hits the last box, the load reads the first). In
   every variant the secret genuinely reaches the sink at runtime, so
   the label is [tainted:true] and an engine that strong-updates here is
   unsound (recall < 1). *)
let emit_taint_weak st k =
  let meth = Printf.sprintf "TaintWeak%d.go" k in
  line st "class TaintWeak%d {" k;
  line st "  static void go() {";
  line st "    Object s = TaintKit.getSecretW%d();" k;
  (match k mod 3 with
  | 0 ->
    line st "    WeakBox%d b = new WeakBox%d();" k k;
    line st "    b.slot = s;";
    line st "    Object c = new Item0();";
    line st "    if (1 > 2) { b.slot = c; }";
    line st "    Object out = b.slot;"
  | 1 ->
    line st "    WeakBox%d b1 = new WeakBox%d();" k k;
    line st "    WeakBox%d b2 = new WeakBox%d();" k k;
    line st "    b1.slot = s;";
    line st "    WeakBox%d w = b1;" k;
    line st "    if (1 < 2) { w = b2; }";
    line st "    Object c = new Item0();";
    line st "    w.slot = c;";
    line st "    Object out = b1.slot;"
  | _ ->
    line st "    WeakBox%d b = null;" k;
    line st "    WeakBox%d keep = null;" k;
    line st "    for (int i = 0; i < 2; i = i + 1) {";
    line st "      b = new WeakBox%d();" k;
    line st "      if (keep == null) { keep = b; }";
    line st "      b.slot = s;";
    line st "    }";
    line st "    Object c = new Item0();";
    line st "    b.slot = c;";
    line st "    Object out = keep.slot;");
  add_label st ~meth ~tainted:true;
  line st "    TaintKit.send(out);";
  line st "  }";
  line st "}"

let emit_main st app_containers =
  let cfg = st.cfg in
  let rng = st.rng in
  line st "class Main {";
  line st "  static void main() {";
  for a = 0 to cfg.n_apps - 1 do
    line st "    App%d app%d = new App%d();" a a a;
    line st "    app%d.run();" a
  done;
  for i = 0 to cfg.n_taint_flows - 1 do
    line st "    TaintFlow%d.go();" i
  done;
  for j = 0 to cfg.n_taint_clean - 1 do
    line st "    TaintClean%d.go();" j
  done;
  for k = 0 to cfg.n_taint_kill - 1 do
    line st "    TaintKill%d.go();" k
  done;
  for k = 0 to cfg.n_taint_weak - 1 do
    line st "    TaintWeak%d.go();" k
  done;
  (* cross-app pollution through shared containers *)
  for a = 0 to cfg.n_apps - 1 do
    if Prng.chance rng cfg.interact_rate then begin
      let b = Prng.int rng cfg.n_apps in
      if a <> b && List.nth app_containers a = List.nth app_containers b then
        line st "    app%d.feed(app%d.mine);" a b
    end
  done;
  line st "  }";
  line st "}"

let generate_with_truth cfg =
  if
    cfg.n_elem_classes <= 0 || cfg.n_containers <= 0 || cfg.n_apps <= 0 || cfg.n_boxes <= 0
    || cfg.n_lists <= 0 || cfg.n_factories <= 0 || cfg.n_globals <= 0
  then
    invalid_arg
      "Genprog.generate: element, container, box, list, factory, global and app counts must be \
       positive (only n_utils may be 0)";
  if cfg.n_taint_flows < 0 || cfg.n_taint_clean < 0 || cfg.n_taint_kill < 0 || cfg.n_taint_weak < 0
  then invalid_arg "Genprog.generate: taint counts must be non-negative";
  let st = { buf = Buffer.create 65536; cfg; rng = Prng.create cfg.seed; lineno = 1; labels = [] } in
  emit_elements st;
  emit_containers st;
  emit_boxes st;
  emit_lists st;
  emit_factories st;
  if cfg.n_utils > 0 then emit_utils st;
  emit_registry st;
  let app_containers = List.init cfg.n_apps (fun a -> emit_app st a) in
  emit_taint_lib st ~flows:cfg.n_taint_flows ~clean:cfg.n_taint_clean;
  for i = 0 to cfg.n_taint_flows - 1 do
    emit_taint_flow st i
  done;
  for j = 0 to cfg.n_taint_clean - 1 do
    emit_taint_clean st ~flows:cfg.n_taint_flows j
  done;
  for k = 0 to cfg.n_taint_kill - 1 do
    emit_taint_kill st k
  done;
  for k = 0 to cfg.n_taint_weak - 1 do
    emit_taint_weak st k
  done;
  emit_main st app_containers;
  (Buffer.contents st.buf, List.rev st.labels)

let generate cfg = fst (generate_with_truth cfg)

(** Deterministic synthetic MiniJava workload generator.

    The paper evaluates on SPECjvm98/DaCapo Java programs, which are not
    reproducible here (no JVM, no bytecode frontend), so this generator
    emits programs with the two properties DYNSUM's speedup depends on:

    - {b locality}: most PAG edges are local (Table 3 reports 80–90%),
      produced by container/box/list "library" classes with real
      field-manipulating method bodies;
    - {b cross-context reuse}: many application classes funnel distinct
      element classes through the {e same} library code under different
      calling contexts (including static utility chains and shared global
      registries), so a context-sensitive analysis must re-traverse the
      library per context — unless, like DYNSUM, it summarises it.

    Programs also seed the three clients: downcasts of container contents
    (some deliberately wrong), null values pushed into structures and
    recursive lookups that may return null, and factory methods (some
    returning cached statics, violating the factory property).

    Generation is a pure function of the config (seeded SplitMix64), so
    every benchmark run sees byte-identical programs. *)

type config = {
  name : string;
  seed : int;
  n_elem_classes : int; (** distinct payload classes (each with a subclass) *)
  n_containers : int; (** Vector-like classes *)
  n_boxes : int; (** single-slot wrapper classes *)
  n_lists : int; (** linked-list classes with recursive lookup *)
  n_factories : int; (** factory classes (fresh + cached variants) *)
  n_utils : int; (** static pass-through utility chains *)
  util_chain : int; (** length of each utility chain *)
  n_apps : int; (** application classes *)
  n_globals : int; (** global registry slots *)
  churn : int;
      (** length of the local reference-copy chains woven into library
          method bodies; raises the PAG's locality toward the paper's
          80â90% band and gives PPTA summaries real local work *)
  null_rate : float; (** P(an app pushes null into a structure) *)
  bad_cast_rate : float; (** P(a generated downcast is to the wrong class) *)
  shared_rate : float; (** P(an app also goes through the global registry) *)
  interact_rate : float; (** P(an app feeds another app's container) *)
  n_taint_flows : int;
      (** seeded source->sink taint flows with ground-truth labels; the
          taint classes draw nothing from the RNG, so [0] (the default)
          generates exactly the pre-seeding program text *)
  n_taint_clean : int; (** known-clean taint look-alikes, also labelled *)
  n_taint_kill : int;
      (** overwrite-kill shapes: the secret is unconditionally
          overwritten in a dedicated box before the sink load, so the
          sink is clean at runtime ([tainted:false]) — flow-insensitive
          engines report it anyway, a strong-update engine proves the
          kill. RNG-neutral like the other taint counts. *)
  n_taint_weak : int;
      (** weak-update controls: the overwrite goes through a conditional
          store, an ambiguous alias, or loop-allocated (summary) boxes,
          and the secret genuinely reaches the sink ([tainted:true]) —
          an engine that strong-updates here is unsound *)
}

val default : config

type taint_label = {
  tl_method : string;  (** the sink's method, e.g. ["TaintFlow0.go"] *)
  tl_line : int;  (** the sink call's source line *)
  tl_tainted : bool;  (** ground truth: does a source object reach it? *)
}

val generate : config -> string
(** The program source (prelude classes not included). *)

val generate_with_truth : config -> string * taint_label list
(** {!generate} plus the ground-truth labels of every seeded taint flow
    and clean variant, in emission order — the reference a checker's
    precision/recall is scored against. Empty unless the taint counts
    are positive. *)

val describe : config -> string
(** One-line summary for logs. *)

let mk name seed ~elems ~containers ~boxes ~lists ~factories ~utils ~chain ~apps ~globals ~churn
    ~null ~bad ~shared ~interact =
  {
    Genprog.name;
    seed;
    n_elem_classes = elems;
    n_containers = containers;
    n_boxes = boxes;
    n_lists = lists;
    n_factories = factories;
    n_utils = utils;
    util_chain = chain;
    n_apps = apps;
    n_globals = globals;
    churn;
    null_rate = null;
    bad_cast_rate = bad;
    shared_rate = shared;
    interact_rate = interact;
    n_taint_flows = 0;
    n_taint_clean = 0;
    n_taint_kill = 0;
    n_taint_weak = 0;
  }

(* Sizes scale with the paper's relative ordering (soot-c/bloat/jython
   large; jack/avrora/luindex small); the low-locality group gets longer
   utility chains and more registry traffic. *)
let configs =
  [
    mk "jack" 101 ~elems:6 ~containers:3 ~boxes:2 ~lists:2 ~factories:2 ~utils:2 ~chain:3
      ~apps:10 ~globals:3 ~churn:32 ~null:0.3 ~bad:0.2 ~shared:0.25 ~interact:0.2;
    mk "javac" 102 ~elems:8 ~containers:4 ~boxes:3 ~lists:2 ~factories:3 ~utils:2 ~chain:3
      ~apps:16 ~globals:4 ~churn:32 ~null:0.3 ~bad:0.2 ~shared:0.25 ~interact:0.25;
    mk "soot-c" 103 ~elems:12 ~containers:6 ~boxes:4 ~lists:3 ~factories:4 ~utils:3 ~chain:3
      ~apps:34 ~globals:5 ~churn:36 ~null:0.3 ~bad:0.2 ~shared:0.2 ~interact:0.25;
    mk "bloat" 104 ~elems:10 ~containers:5 ~boxes:4 ~lists:3 ~factories:4 ~utils:2 ~chain:3
      ~apps:30 ~globals:4 ~churn:36 ~null:0.35 ~bad:0.25 ~shared:0.2 ~interact:0.3;
    mk "jython" 105 ~elems:9 ~containers:5 ~boxes:3 ~lists:3 ~factories:3 ~utils:2 ~chain:4
      ~apps:24 ~globals:4 ~churn:32 ~null:0.3 ~bad:0.2 ~shared:0.25 ~interact:0.25;
    mk "avrora" 106 ~elems:5 ~containers:2 ~boxes:2 ~lists:2 ~factories:2 ~utils:4 ~chain:6
      ~apps:9 ~globals:6 ~churn:18 ~null:0.35 ~bad:0.2 ~shared:0.5 ~interact:0.3;
    mk "batik" 107 ~elems:8 ~containers:3 ~boxes:3 ~lists:2 ~factories:3 ~utils:4 ~chain:6
      ~apps:18 ~globals:7 ~churn:18 ~null:0.3 ~bad:0.25 ~shared:0.5 ~interact:0.3;
    mk "luindex" 108 ~elems:5 ~containers:2 ~boxes:2 ~lists:2 ~factories:2 ~utils:3 ~chain:6
      ~apps:10 ~globals:6 ~churn:18 ~null:0.35 ~bad:0.2 ~shared:0.5 ~interact:0.25;
    mk "xalan" 109 ~elems:8 ~containers:3 ~boxes:3 ~lists:3 ~factories:3 ~utils:4 ~chain:5
      ~apps:22 ~globals:7 ~churn:18 ~null:0.35 ~bad:0.25 ~shared:0.5 ~interact:0.3;
  ]

let names = List.map (fun c -> c.Genprog.name) configs

let figure45_names = [ "soot-c"; "bloat"; "jython" ]

let largest = "soot-c"

let config name =
  match List.find_opt (fun c -> String.equal c.Genprog.name name) configs with
  | Some c -> c
  | None -> raise Not_found

let scaled name k =
  if k < 1 then invalid_arg "Suite.scaled: factor must be >= 1";
  let c = config name in
  {
    c with
    Genprog.name = Printf.sprintf "%s-x%d" c.Genprog.name k;
    n_apps = c.Genprog.n_apps * k;
    n_elem_classes = c.Genprog.n_elem_classes * ((k + 1) / 2);
  }

(* The seeded-defect variant of a benchmark: same generator state (the
   taint classes draw nothing from the RNG), plus [flows] known
   source->sink flows, [clean] known-clean look-alikes, [kill]
   overwrite-kill shapes and [weak] weak-update controls, all with
   ground-truth labels. *)
let tainted ?(flows = 6) ?(clean = 6) ?(kill = 0) ?(weak = 0) name =
  let c = config name in
  {
    c with
    Genprog.name = Printf.sprintf "%s+taint%d/%d/%d/%d" c.Genprog.name flows clean kill weak;
    n_taint_flows = flows;
    n_taint_clean = clean;
    n_taint_kill = kill;
    n_taint_weak = weak;
  }

let source_cache : (string, string) Hashtbl.t = Hashtbl.create 9

let source name =
  match Hashtbl.find_opt source_cache name with
  | Some s -> s
  | None ->
    let s = Genprog.generate (config name) in
    Hashtbl.add source_cache name s;
    s

let pipeline_cache : (string, Pts_clients.Pipeline.t) Hashtbl.t = Hashtbl.create 9

let pipeline name =
  match Hashtbl.find_opt pipeline_cache name with
  | Some p -> p
  | None ->
    let p = Pts_clients.Pipeline.of_source (source name) in
    Hashtbl.add pipeline_cache name p;
    p

(* -------------------- cross-frontend matched pairs ------------------- *)

let pair_names = Genpair.names

let pair_cache : (string, Genpair.pair) Hashtbl.t = Hashtbl.create 3

let pair name =
  match Hashtbl.find_opt pair_cache name with
  | Some p -> p
  | None ->
    let p = Genpair.get name in
    Hashtbl.add pair_cache name p;
    p

let pair_pipeline_cache : (string * Loc.lang, Pts_clients.Pipeline.t) Hashtbl.t = Hashtbl.create 6

(* One analysed pipeline per pair half, memoised like [pipeline] — the
   equivalence tests hit every engine x prune x jobs combination on the
   same halves, so rebuilding each time would dominate the suite. *)
let pair_pipeline name lang =
  match Hashtbl.find_opt pair_pipeline_cache (name, lang) with
  | Some p -> p
  | None ->
    let pr = pair name in
    let src = match lang with Loc.Mjava -> pr.Genpair.p_mjava | Loc.Minifun -> pr.Genpair.p_minifun in
    let p = Pts_clients.Pipeline.of_source ~lang src in
    Hashtbl.add pair_pipeline_cache (name, lang) p;
    p

(** The nine-benchmark suite, mirroring the paper's Table 3 selection from
    SPECjvm98 and DaCapo. Each name maps to a generator configuration whose
    relative size ordering and locality band follow the paper: soot-c,
    bloat and jython are the large, query-heavy programs used in Figures
    4–5; avrora, batik, luindex and xalan sit in the lower locality band
    (80–84%) through heavier utility-chain and global-registry traffic. *)

val names : string list
(** In the paper's order: jack javac soot-c bloat jython avrora batik
    luindex xalan. *)

val config : string -> Genprog.config
(** @raise Not_found for unknown names. *)

val scaled : string -> int -> Genprog.config
(** [scaled name k] multiplies the benchmark's application count (and
    element diversity) by [k], for scalability studies beyond the default
    laptop-sized suite. [scaled name 1 = config name]. *)

val tainted : ?flows:int -> ?clean:int -> ?kill:int -> ?weak:int -> string -> Genprog.config
(** [tainted name] is [config name] with [flows] (default 6) seeded
    source->sink taint flows, [clean] (default 6) known-clean variants,
    [kill] (default 0) overwrite-kill shapes and [weak] (default 0)
    weak-update controls added; ground truth comes from
    {!Genprog.generate_with_truth}. The added classes draw nothing from
    the generator's RNG, so the rest of the program is byte-identical to
    the unseeded benchmark. *)

val figure45_names : string list
(** The three programs of Figures 4 and 5: soot-c, bloat, jython. *)

val largest : string
(** The biggest, most query-heavy program of the suite (soot-c) — the
    workload the parallel batch benchmarks report speedups on. *)

val source : string -> string
(** Generated program text (memoised). *)

val pipeline : string -> Pts_clients.Pipeline.t
(** Compiled and Andersen-analysed (memoised). *)

val pair_names : string list
(** The committed cross-frontend pair suite ({!Genpair.configs}):
    pair-s, pair-m, pair-l. *)

val pair : string -> Genpair.pair
(** Matched MiniJava/MiniFun renderings plus query specs (memoised).
    @raise Not_found for unknown names. *)

val pair_pipeline : string -> Loc.lang -> Pts_clients.Pipeline.t
(** The analysed pipeline for one half of a pair (memoised per
    [name, lang]). *)

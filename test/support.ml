(* Shared test support, linked into every test executable in this stanza.

   The QCheck property suites (test_equiv, test_prune, and the
   cross-frontend tests) all draw small workload configurations from the
   same generator and need one frontend+Andersen run per distinct
   configuration: identical configs recur across properties, and each
   used to recompile the program and re-run the whole-program solver from
   scratch. The config record is plain scalars, so structural equality is
   a sound memo key. *)

module G = Pts_workload.Genprog

(* [name] tags the generated config (it shows up in QCheck
   counterexample printouts) without perturbing the draw. *)
let small_config ~name =
  let open QCheck.Gen in
  let* seed = int_bound 10_000 in
  let* elems = int_range 2 5 in
  let* containers = int_range 1 3 in
  let* boxes = int_range 1 3 in
  let* lists = int_range 1 2 in
  let* factories = int_range 1 2 in
  let* utils = int_range 0 2 in
  let* chain = int_range 2 4 in
  let* apps = int_range 2 5 in
  let* globals = int_range 1 3 in
  let* churn = int_range 0 4 in
  let* null_rate = float_bound_inclusive 0.5 in
  let* bad = float_bound_inclusive 0.4 in
  let* shared = float_bound_inclusive 0.6 in
  let* interact = float_bound_inclusive 0.5 in
  return
    {
      G.name;
      seed;
      n_elem_classes = elems;
      n_containers = containers;
      n_boxes = boxes;
      n_lists = lists;
      n_factories = factories;
      n_utils = utils;
      util_chain = chain;
      n_apps = apps;
      n_globals = globals;
      churn;
      null_rate;
      bad_cast_rate = bad;
      shared_rate = shared;
      interact_rate = interact;
      n_taint_flows = 0;
      n_taint_clean = 0;
      n_taint_kill = 0;
      n_taint_weak = 0;
    }

let config_arbitrary ~name = QCheck.make ~print:G.describe (small_config ~name)

let build_cache : (G.config, Pts_clients.Pipeline.t) Hashtbl.t = Hashtbl.create 16

let build cfg =
  match Hashtbl.find_opt build_cache cfg with
  | Some pl -> pl
  | None ->
    let pl = Pts_clients.Pipeline.of_source (G.generate cfg) in
    Hashtbl.add build_cache cfg pl;
    pl

(* The checker subsystem's acceptance properties:

   - the report JSON is byte-identical across all four engines, across
     --jobs 1/2/4 and with pruning on or off (ISSUE 5's determinism
     criterion — it holds because the driver queries without [satisfy]
     and the report carries only engine-independent data);
   - on seeded-defect workloads the taint checker attains recall 1.0
     and flags no clean variant (ground truth from
     Genprog.generate_with_truth);
   - every points-to-backed diagnostic carries a witness chain that
     Witness.validate accepts, and tampered chains are rejected;
   - the driver's node-dedup arithmetic, NullDeref's per-method deref
     numbering, the deadcode lint and the annotation scanner behave. *)

module G = Pts_workload.Genprog
module Check = Pts_clients.Check
module Diag = Pts_clients.Diag
module Client = Pts_clients.Client
module Pipeline = Pts_clients.Pipeline
module Spec = Pts_taint.Spec
module Stats = Pts_util.Stats

let tainted_config =
  let open QCheck.Gen in
  let* seed = int_bound 10_000 in
  let* elems = int_range 2 4 in
  let* boxes = int_range 1 2 in
  let* apps = int_range 2 4 in
  let* utils = int_range 0 2 in
  let* flows = int_range 1 6 in
  let* clean = int_range 1 6 in
  return
    {
      G.name = "taintprop";
      seed;
      n_elem_classes = elems;
      n_containers = 2;
      n_boxes = boxes;
      n_lists = 1;
      n_factories = 1;
      n_utils = utils;
      util_chain = 2;
      n_apps = apps;
      n_globals = 2;
      churn = 4;
      null_rate = 0.3;
      bad_cast_rate = 0.2;
      shared_rate = 0.3;
      interact_rate = 0.3;
      n_taint_flows = flows;
      n_taint_clean = clean;
      (* kill/weak shapes deliberately absent: the properties below pin
         the flow-insensitive engines, which report kill shapes as
         (labelled) false positives — test_supa covers those. *)
      n_taint_kill = 0;
      n_taint_weak = 0;
    }

let config_arbitrary = QCheck.make ~print:G.describe tainted_config

(* One compile + Andersen run per distinct config across all properties. *)
let build_cache : (G.config, string * G.taint_label list * Pipeline.t) Hashtbl.t =
  Hashtbl.create 16

let build cfg =
  match Hashtbl.find_opt build_cache cfg with
  | Some v -> v
  | None ->
    let source, labels = G.generate_with_truth cfg in
    let v = (source, labels, Pipeline.of_source source) in
    Hashtbl.add build_cache cfg v;
    v

let checkers_for source = [ Pts_taint.Checker.checker ~spec:(Spec.of_source source) () ]

let report_string ?(engine = "dynsum") ?(jobs = 1) ?(prune = false) source pl =
  let conf = Engine.conf ~prune () in
  let opts = { Check.default_opts with Check.o_engine = engine; o_jobs = jobs; o_conf = conf } in
  Trace.Json.to_string (Check.report_json (Check.run ~opts ~checkers:(checkers_for source) pl))

(* Byte-identity of the report across engines, job counts and pruning. *)
let prop_report_identical =
  QCheck.Test.make ~name:"check report byte-identical across engines/jobs/prune" ~count:6
    config_arbitrary
    (fun cfg ->
      let source, _, pl = build cfg in
      let reference = report_string source pl in
      List.for_all
        (fun (engine, jobs, prune) ->
          String.equal reference (report_string ~engine ~jobs ~prune source pl))
        [
          ("norefine", 1, false);
          ("refinepts", 1, false);
          ("stasum", 1, false);
          ("dynsum", 2, false);
          ("dynsum", 4, false);
          ("dynsum", 1, true);
          ("refinepts", 2, true);
        ])

(* Seeded ground truth: recall 1.0, clean variants silent, and every
   finding lands on a labelled sink line. *)
let prop_ground_truth =
  QCheck.Test.make ~name:"taint recall 1.0 and clean variants unflagged" ~count:8
    config_arbitrary
    (fun cfg ->
      let source, labels, pl = build cfg in
      let report = Check.run ~checkers:(checkers_for source) pl in
      let flagged l =
        List.exists
          (fun d ->
            String.equal d.Diag.d_method l.G.tl_method && d.Diag.d_line = l.G.tl_line)
          report.Check.r_diags
      in
      let labelled d =
        List.exists (fun l -> String.equal l.G.tl_method d.Diag.d_method) labels
      in
      List.for_all (fun l -> if l.G.tl_tainted then flagged l else not (flagged l)) labels
      && List.for_all labelled report.Check.r_diags)

(* Every taint refutation is explainable by a witness chain the
   independent validator accepts; tampered chains are rejected. *)
let prop_witness_valid =
  QCheck.Test.make ~name:"taint witnesses validate (and tampered ones do not)" ~count:6
    config_arbitrary
    (fun cfg ->
      let source, _, pl = build cfg in
      let pag = pl.Pipeline.pag in
      let ctx = { Check.cx_pl = pl; cx_stats = Stats.create () } in
      let points = Pts_taint.Checker.points ~spec:(Spec.of_source source) ctx in
      let engine = Engine.create "dynsum" pag in
      List.for_all
        (fun (pt : Check.point) ->
          match engine.Engine.points_to pt.Check.pt_node with
          | Query.Exceeded -> true
          | Query.Resolved targets ->
            let sites = Query.sites targets in
            if pt.Check.pt_pred targets then true
            else begin
              match pt.Check.pt_bad_sites sites with
              | [] -> false (* refuted points must expose a violating site *)
              | site :: _ -> (
                match Witness.explain pag pt.Check.pt_node ~site with
                | None -> false (* every refutation must be explainable *)
                | Some steps ->
                  Witness.validate pag ~query:pt.Check.pt_node ~site steps
                  && (* dropping the initial state breaks the chain *)
                  not (Witness.validate pag ~query:pt.Check.pt_node ~site (List.tl steps))
                  && (* so does rebasing it on a different query node *)
                  not (Witness.validate pag ~query:(pt.Check.pt_node + 1) ~site steps))
            end)
        points)

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let diag ?(checker = "t") ?(severity = Diag.Error) ?(meth = "M.m") ?(line = 1) ?(msg = "x")
    ?(witness = []) () =
  {
    Diag.d_checker = checker;
    d_severity = severity;
    d_method = meth;
    d_line = line;
    d_message = msg;
    d_witness = witness;
  }

let test_diag_order () =
  let a = diag ~checker:"a" () in
  let b = diag ~checker:"b" () in
  let l1 = diag ~line:1 () and l2 = diag ~line:2 () in
  Alcotest.(check bool) "checker major" true (Diag.compare a b < 0);
  Alcotest.(check bool) "line ascending" true (Diag.compare l1 l2 < 0);
  Alcotest.(check int) "reflexive" 0 (Diag.compare a a);
  (* sort_uniq with this comparator is what dedups the report *)
  let sorted = List.sort_uniq Diag.compare [ b; a; b; l2; l1; a ] in
  Alcotest.(check int) "dedup" 4 (List.length sorted)

let test_diag_json () =
  let d = diag ~witness:[ "s1"; "s2" ] () in
  Alcotest.(check string) "field order fixed"
    "{\"checker\":\"t\",\"severity\":\"error\",\"method\":\"M.m\",\"line\":1,\"message\":\"x\",\"witness\":[\"s1\",\"s2\"]}"
    (Trace.Json.to_string (Diag.to_json d))

let test_severity () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "roundtrip" true
        (Diag.severity_of_string (Diag.severity_to_string s) = Some s))
    [ Diag.Info; Diag.Warning; Diag.Error ];
  Alcotest.(check bool) "error >= warning" true (Diag.severity_geq Diag.Error Diag.Warning);
  Alcotest.(check bool) "info < warning" false (Diag.severity_geq Diag.Info Diag.Warning)

(* Many NullDeref points share a PAG node (the same variable dereferenced
   repeatedly); the driver answers each node once and counts the rest. *)
let test_dedup_hits () =
  let pl = Pts_workload.Suite.pipeline "jack" in
  let report = Check.run ~checkers:[ Pts_clients.Nullderef.checker ] pl in
  Alcotest.(check int) "arithmetic"
    (report.Check.r_points - report.Check.r_unique_nodes)
    report.Check.r_dedup_hits;
  Alcotest.(check bool) "nullderef dedups on jack" true (report.Check.r_dedup_hits > 0);
  Alcotest.(check int) "stats mirror" report.Check.r_dedup_hits
    (Stats.get report.Check.r_stats "dedup_hits")

(* The satellite fix: deref numbering restarts at 0 in every method, so a
   method's query descriptions no longer depend on how many methods were
   scanned before it. *)
let test_nullderef_numbering () =
  let pl = Pts_workload.Suite.pipeline "jack" in
  let per_method = Hashtbl.create 64 in
  List.iter
    (fun (q : Client.query) ->
      Scanf.sscanf q.Client.q_desc "deref#%d of %s in %s" (fun i _ m ->
          let r =
            match Hashtbl.find_opt per_method m with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.add per_method m r;
              r
          in
          r := i :: !r))
    (Pts_clients.Nullderef.queries pl);
  Alcotest.(check bool) "some methods have derefs" true (Hashtbl.length per_method > 1);
  Hashtbl.iter
    (fun m r ->
      (* numbering is 1-based and restarts in every method: indices are
         exactly 1..k regardless of what earlier methods contained *)
      let ids = List.rev !r in
      List.iteri
        (fun idx got ->
          Alcotest.(check int) (Printf.sprintf "%s deref %d" m idx) (idx + 1) got)
        ids)
    per_method

let test_deadcode () =
  let src =
    "class Box { Object f; Object g; Box() { } void set(Object x) { this.f = x; this.g = x; } \
     Object get() { return this.f; } }\n\
     class Main { Main() { } static void main() { Box b = new Box(); b.set(b); Object y = \
     b.get(); } static void orphan() { Box c = new Box(); } }\n"
  in
  let pl = Pipeline.of_source src in
  let report = Check.run ~checkers:[ Pts_clients.Deadcode.checker ] pl in
  let mentions needle d =
    let n = String.length needle and msg = d.Diag.d_message in
    let rec at i = i + n <= String.length msg && (String.sub msg i n = needle || at (i + 1)) in
    at 0
  in
  let find sev needle =
    List.exists
      (fun d -> d.Diag.d_severity = sev && d.Diag.d_checker = "deadcode" && mentions needle d)
      report.Check.r_diags
  in
  Alcotest.(check bool) "dead store on g" true (find Diag.Warning "g");
  Alcotest.(check bool) "orphan unreachable" true (find Diag.Info "orphan");
  Alcotest.(check bool) "f is live" false (find Diag.Warning "field f")

let test_annotations () =
  let src =
    "class A { // plain note\n\
     /* block comment\n\
     spanning */\n\
     A() { String s = \"// not a comment @taint-source\"; } // @taint-source\n\
     } // @taint-sink trailing\n"
  in
  let anns = Frontend.annotations src in
  Alcotest.(check int) "only @-comments" 2 (List.length anns);
  (match anns with
  | (a, p1) :: (b, p2) :: [] ->
    Alcotest.(check bool) "source ann" true (String.length a >= 2 && p1.Loc.line = 4);
    Alcotest.(check bool) "sink ann" true (String.length b >= 2 && p2.Loc.line = 5)
  | _ -> Alcotest.fail "expected two annotations");
  let spec = Spec.of_source src in
  Alcotest.(check (list int)) "source lines" [ 4 ] spec.Spec.source_lines;
  Alcotest.(check (list int)) "sink lines" [ 5 ] spec.Spec.sink_lines

(* End-to-end on a hand-written annotated program: the annotated flow is
   found with a witness; the structurally identical clean flow is not. *)
let test_annotated_taint () =
  let src =
    "class Cell { Object v; Cell() { } void put(Object x) { this.v = x; } Object take() { \
     return this.v; } }\n\
     class Main { Main() { }\n\
     static void main() {\n\
     Cell c = new Cell();\n\
     Object s = new Cell(); // @taint-source\n\
     c.put(s);\n\
     Object out = c.take();\n\
     Main.report(out); // @taint-sink\n\
     Cell clean = new Cell();\n\
     Cell box = new Cell();\n\
     box.put(clean);\n\
     Object ok = box.take();\n\
     Main.report(ok);\n\
     }\n\
     static void report(Object x) { Object y = x; } }\n"
  in
  let pl = Pipeline.of_source src in
  let report = Check.run ~checkers:(checkers_for src) pl in
  Alcotest.(check int) "exactly one finding" 1 (List.length report.Check.r_diags);
  let d = List.hd report.Check.r_diags in
  Alcotest.(check string) "taint checker" "taint" d.Diag.d_checker;
  Alcotest.(check int) "at the annotated sink line" 8 d.Diag.d_line;
  Alcotest.(check bool) "carries a witness" true (d.Diag.d_witness <> [])

let test_max_severity () =
  let r report = Check.max_severity report in
  let pl = Pts_workload.Suite.pipeline "jack" in
  let none = Check.run ~checkers:[ Pts_taint.Checker.checker () ] pl in
  Alcotest.(check bool) "clean suite: no taint severity" true (r none = None);
  let all = Check.run ~checkers:(Pts_taint.Registry.all ()) pl in
  Alcotest.(check bool) "full suite: errors" true (r all = Some Diag.Error)

let () =
  Alcotest.run "check"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest ~long:false prop_report_identical;
          QCheck_alcotest.to_alcotest ~long:false prop_ground_truth;
          QCheck_alcotest.to_alcotest ~long:false prop_witness_valid;
        ] );
      ( "units",
        [
          Alcotest.test_case "diag ordering and dedup" `Quick test_diag_order;
          Alcotest.test_case "diag json field order" `Quick test_diag_json;
          Alcotest.test_case "severity round trips" `Quick test_severity;
          Alcotest.test_case "driver dedups shared nodes" `Quick test_dedup_hits;
          Alcotest.test_case "nullderef numbering is per-method" `Quick test_nullderef_numbering;
          Alcotest.test_case "deadcode lint" `Quick test_deadcode;
          Alcotest.test_case "annotation scanner" `Quick test_annotations;
          Alcotest.test_case "annotated taint end to end" `Quick test_annotated_taint;
          Alcotest.test_case "max severity gate" `Quick test_max_severity;
        ] );
    ]

(* Tests for the demand-driven engines: NOREFINE, REFINEPTS, DYNSUM,
   STASUM, plus the PPTA and field-stack machinery. *)

let check = Alcotest.check

module Hstack = Pts_util.Hstack

let pipeline src = Pts_clients.Pipeline.of_source src

let classes_of (pl : Pts_clients.Pipeline.t) outcome =
  let prog = pl.Pts_clients.Pipeline.prog in
  match outcome with
  | Query.Exceeded -> [ "<exceeded>" ]
  | Query.Resolved ts ->
    Query.sites ts
    |> List.map (fun site -> Types.class_name prog.Ir.ctable prog.Ir.allocs.(site).Ir.alloc_cls)
    |> List.sort_uniq compare

let all_engines ?conf (pl : Pts_clients.Pipeline.t) =
  Pts_clients.Pipeline.engines ?conf ~with_stasum:true pl

(* ------------------------------ Fstack ------------------------------ *)

let conf_abort = Engine.conf ~max_field_depth:4 ~overflow:Engine.Abort ()
let conf_widen = Engine.conf ~max_field_depth:4 ~overflow:Engine.Widen ()

let test_fstack_symbols () =
  check Alcotest.bool "load/store symbols differ" true (Fstack.load_sym 3 <> Fstack.store_sym 3);
  check Alcotest.int "field of load sym" 3 (Fstack.sym_field (Fstack.load_sym 3));
  check Alcotest.int "field of store sym" 3 (Fstack.sym_field (Fstack.store_sym 3));
  check Alcotest.bool "polarity" true (Fstack.sym_is_load (Fstack.load_sym 1));
  check Alcotest.bool "polarity store" false (Fstack.sym_is_load (Fstack.store_sym 1))

let test_fstack_push_pop () =
  let f =
    match Fstack.push conf_abort Hstack.empty (Fstack.load_sym 1) with
    | Some f -> f
    | None -> Alcotest.fail "push cut unexpectedly"
  in
  (match Fstack.pop_match f (Fstack.load_sym 1) with
  | Some f' -> check Alcotest.bool "pop matches" true (Hstack.is_empty f')
  | None -> Alcotest.fail "pop should match");
  check Alcotest.bool "mismatched field" true (Fstack.pop_match f (Fstack.load_sym 2) = None);
  check Alcotest.bool "mismatched polarity" true (Fstack.pop_match f (Fstack.store_sym 1) = None)

let test_fstack_repeat_cut () =
  let push f g = Fstack.push conf_abort f (Fstack.load_sym g) in
  let f1 = Option.get (push Hstack.empty 5) in
  let f2 = Option.get (push f1 5) in
  (* default max_field_repeat = 2: a third occurrence is cut *)
  check Alcotest.bool "third repeat cut" true (push f2 5 = None);
  check Alcotest.bool "other fields fine" true (push f2 6 <> None)

let test_fstack_depth_abort () =
  let rec fill f g n =
    if n = 0 then f else fill (Option.get (Fstack.push conf_abort f (Fstack.load_sym g))) (g + 1) (n - 1)
  in
  let f = fill Hstack.empty 0 4 in
  match Fstack.push conf_abort f (Fstack.load_sym 99) with
  | exception Budget.Out_of_budget -> ()
  | _ -> Alcotest.fail "depth overflow should abort"

let test_fstack_widen () =
  let rec fill f g n =
    if n = 0 then f else fill (Option.get (Fstack.push conf_widen f (Fstack.load_sym g))) (g + 1) (n - 1)
  in
  let f = fill Hstack.empty 0 4 in
  let w = Option.get (Fstack.push conf_widen f (Fstack.load_sym 99)) in
  check Alcotest.bool "widened" true (Fstack.is_widened w);
  check Alcotest.bool "bounded" true (Hstack.depth w <= 4);
  (* the unknown tail matches any pop *)
  let rec drain f n = if n = 0 then f else drain (Option.get (Fstack.pop_match f (Hstack.peek f |> Option.get))) (n - 1) in
  let tail = drain w (Hstack.depth w - 1) in
  check Alcotest.bool "tail may be empty" true (Fstack.may_be_empty tail);
  check Alcotest.bool "tail still matches pops" true (Fstack.pop_match tail (Fstack.load_sym 123) <> None)

(* ---------------------------- Fieldbased ---------------------------- *)

let test_fieldbased_pts_of_field () =
  let pl =
    pipeline
      {|
class Box { Object v; Box() {} }
class A {} class B {}
class Main {
  static void main() {
    Box x = new Box();
    x.v = new A();
    Box y = new Box();
    y.v = new B();
    Object r = x.v;
  }
}|}
  in
  let pag = pl.Pts_clients.Pipeline.pag in
  let prog = pl.Pts_clients.Pipeline.prog in
  let fb = Fieldbased.create pag in
  let fld =
    match Types.lookup_field prog.Ir.ctable (Option.get (Types.find_class prog.Ir.ctable "Box")) "v" with
    | Some (`Instance f) -> f.Types.fld_id
    | _ -> Alcotest.fail "no field"
  in
  let classes =
    Fieldbased.pts_of_field fb fld
    |> List.map (fun s -> Types.class_name prog.Ir.ctable prog.Ir.allocs.(s).Ir.alloc_cls)
    |> List.sort_uniq compare
  in
  (* field-based = both boxes' contents merged: that is the point *)
  check (Alcotest.list Alcotest.string) "merged over instances" [ "A"; "B" ] classes;
  (* and the flow side reaches the load destination r *)
  let r = Pts_clients.Pipeline.find_local pl ~meth_pretty:"Main.main" ~var:"r" in
  check Alcotest.bool "flows reach the load dst" true (List.mem r (Fieldbased.flows_of_field fb fld))

let test_fieldbased_overapproximates_exact () =
  (* field-based pts of a field contains every exact demand answer read
     through that field *)
  let pl = Pts_workload.Suite.pipeline "jack" in
  let pag = pl.Pts_clients.Pipeline.pag in
  let prog = pl.Pts_clients.Pipeline.prog in
  let fb = Fieldbased.create pag in
  let dynsum = Dynsum.create pag in
  let arr = (Types.arr_field prog.Ir.ctable).Types.fld_id in
  let fb_sites = Fieldbased.pts_of_field fb arr in
  List.iteri
    (fun i (base, dst) ->
      ignore base;
      if i mod 5 = 0 then
        match Dynsum.points_to dynsum dst with
        | Query.Exceeded -> ()
        | Query.Resolved ts ->
          (* dst's exact answer flows through arr and possibly other edges;
             restrict to targets that can only come from arr loads is hard,
             so check the weaker inclusion on nodes whose ONLY in-edges are
             arr loads *)
          if
            Pag.assign_in pag dst = [] && Pag.new_in pag dst = []
            && Pag.global_in pag dst = [] && Pag.entry_in pag dst = []
            && Pag.exit_in pag dst = []
            && List.for_all (fun (f, _) -> f = arr) (Pag.load_in pag dst)
          then
            List.iter
              (fun s -> check Alcotest.bool "fb covers exact" true (List.mem s fb_sites))
              (Query.sites ts))
    (Pag.loads_of_field pag arr)

(* ------------------------------ Budget ------------------------------ *)

let test_budget () =
  let b = Budget.create ~limit:3 in
  Budget.start_query b;
  Budget.step b;
  Budget.step b;
  Budget.step b;
  (match Budget.step b with
  | exception Budget.Out_of_budget -> ()
  | () -> Alcotest.fail "limit not enforced");
  check Alcotest.int "total keeps counting" 4 (Budget.total_steps b);
  Budget.start_query b;
  Budget.step b;
  check Alcotest.int "per-query reset" 1 (Budget.steps_this_query b)

let test_budget_exceeded_outcome () =
  let pl = pipeline Pts_workload.Figure2.source in
  let conf = Engine.conf ~budget_limit:5 () in
  let dynsum = Dynsum.create ~conf pl.Pts_clients.Pipeline.pag in
  match Dynsum.points_to dynsum (Pts_workload.Figure2.s1 pl) with
  | Query.Exceeded -> ()
  | Query.Resolved _ -> Alcotest.fail "tiny budget should exceed"

(* --------------------------- Figure 2 ------------------------------- *)

let test_figure2_all_engines () =
  let pl = pipeline Pts_workload.Figure2.source in
  let s1 = Pts_workload.Figure2.s1 pl in
  let s2 = Pts_workload.Figure2.s2 pl in
  List.iter
    (fun (e : Engine.engine) ->
      check (Alcotest.list Alcotest.string)
        (e.Engine.name ^ " s1")
        [ "Integer" ]
        (classes_of pl (e.Engine.points_to s1));
      check (Alcotest.list Alcotest.string)
        (e.Engine.name ^ " s2")
        [ "String" ]
        (classes_of pl (e.Engine.points_to s2)))
    (all_engines pl)

(* ------------------------ Small scenarios --------------------------- *)

(* each scenario: source, query (method, var), expected classes *)
let scenarios =
  [
    ( "direct-alloc",
      "class A {} class Main { static void main() { A a = new A(); } }",
      ("Main.main", "a"),
      [ "A" ] );
    ( "through-box",
      {|
class Box { Object v; Box() {} void put(Object x) { this.v = x; } Object take() { return this.v; } }
class A {} class B {}
class Main {
  static void main() {
    Box b1 = new Box();
    b1.put(new A());
    Box b2 = new Box();
    b2.put(new B());
    Object r = b1.take();
  }
}|},
      ("Main.main", "r"),
      [ "A" ] );
    ( "nested-boxes",
      {|
class Box { Object v; Box() {} void put(Object x) { this.v = x; } Object take() { return this.v; } }
class A {}
class Main {
  static void main() {
    Box inner = new Box();
    inner.put(new A());
    Box outer = new Box();
    outer.put(inner);
    Box back = (Box) outer.take();
    Object r = back.take();
  }
}|},
      ("Main.main", "r"),
      [ "A" ] );
    ( "global-roundtrip",
      {|
class A {}
class G { static Object slot; }
class Main { static void main() { G.slot = new A(); Object r = G.slot; } }|},
      ("Main.main", "r"),
      [ "A" ] );
    ( "call-chain",
      {|
class A {}
class U {
  static Object p1(Object x) { return U.p2(x); }
  static Object p2(Object x) { return U.p3(x); }
  static Object p3(Object x) { return x; }
}
class Main { static void main() { Object r = U.p1(new A()); } }|},
      ("Main.main", "r"),
      [ "A" ] );
    ( "context-separation",
      {|
class A {} class B {}
class Id { Object id(Object x) { return x; } }
class Main {
  static void main() {
    Id i = new Id();
    Object ra = i.id(new A());
    Object rb = i.id(new B());
  }
}|},
      ("Main.main", "ra"),
      [ "A" ] );
    ( "list-recursion",
      {|
class Node { Object val; Node next; Node(Object v) { this.val = v; } }
class List {
  Node head;
  List() {}
  void push(Object v) { Node n = new Node(v); n.next = this.head; this.head = n; }
  Object find(Node cur, int k) { if (cur == null) { return null; } if (k == 0) { return cur.val; } return this.find(cur.next, k - 1); }
  Object nth(int k) { return this.find(this.head, k); }
}
class A {}
class Main { static void main() { List l = new List(); l.push(new A()); Object r = l.nth(0); } }|},
      ("Main.main", "r"),
      [ "$Null"; "A" ] );
    ( "array-roundtrip",
      {|
class A {}
class Main { static void main() { Object[] arr = new Object[4]; arr[0] = new A(); Object r = arr[1]; } }|},
      ("Main.main", "r"),
      [ "A" ] );
    ( "null-tracking",
      {|
class A {}
class Main { static void main() { Object x = null; Object y = x; } }|},
      ("Main.main", "y"),
      [ "$Null" ] );
    ( "virtual-override",
      {|
class A { Object mk() { return new A(); } }
class B extends A { Object mk() { return new B(); } }
class Main { static void main() { A o = new B(); Object r = o.mk(); } }|},
      ("Main.main", "r"),
      [ "B" ] );
  ]

let scenario_tests =
  List.map
    (fun (name, src, (meth, var), expected) ->
      Alcotest.test_case name `Quick (fun () ->
          let pl = pipeline src in
          let node = Pts_clients.Pipeline.find_local pl ~meth_pretty:meth ~var in
          List.iter
            (fun (e : Engine.engine) ->
              check (Alcotest.list Alcotest.string)
                (name ^ "/" ^ e.Engine.name)
                expected
                (classes_of pl (e.Engine.points_to node)))
            (all_engines pl)))
    scenarios

(* ------------------------------- PPTA ------------------------------- *)

let test_ppta_figure2_retget () =
  (* the paper's example: ppta(ret_get, [], S1) must record the frontier
     tuple at this_get with the pending loads of arr then elems *)
  let pl = pipeline Pts_workload.Figure2.source in
  let pag = pl.Pts_clients.Pipeline.pag in
  let prog = pl.Pts_clients.Pipeline.prog in
  let get = Array.to_list prog.Ir.methods |> List.find (fun m -> m.Ir.pretty = "Vector.get") in
  let ret_var =
    List.filter_map (function Ir.Return { src = Some v } -> Some v | _ -> None) get.Ir.body
    |> List.hd
  in
  let node = Pag.local_node pag ~meth:get.Ir.id ~var:ret_var in
  let budget = Budget.unlimited () in
  let summary = Ppta.compute pag Engine.default_conf budget node Hstack.empty Ppta.S1 in
  check (Alcotest.list Alcotest.int) "no objects locally" [] summary.Ppta.objs;
  check Alcotest.bool "has frontier tuples" true (summary.Ppta.tuples <> []);
  (* one frontier must be this_get with a two-deep load stack *)
  let this_node = Pag.local_node pag ~meth:get.Ir.id ~var:(Option.get get.Ir.this_var) in
  check Alcotest.bool "frontier at this_get with depth-2 stack" true
    (List.exists
       (fun (n, f, s) -> n = this_node && Hstack.depth f = 2 && s = Ppta.S1)
       summary.Ppta.tuples)

let test_ppta_context_independence () =
  (* the same summary must be returned regardless of how it is reached:
     compute twice, compare structurally *)
  let pl = pipeline Pts_workload.Figure2.source in
  let pag = pl.Pts_clients.Pipeline.pag in
  let s1 = Pts_workload.Figure2.s1 pl in
  let budget = Budget.unlimited () in
  let a = Ppta.compute pag Engine.default_conf budget s1 Hstack.empty Ppta.S1 in
  let b = Ppta.compute pag Engine.default_conf budget s1 Hstack.empty Ppta.S1 in
  check Alcotest.int "same objs" (List.length a.Ppta.objs) (List.length b.Ppta.objs);
  check Alcotest.int "same tuples" (List.length a.Ppta.tuples) (List.length b.Ppta.tuples)

(* ------------------------------ DYNSUM ------------------------------ *)

let test_dynsum_cache_reuse () =
  let pl = pipeline Pts_workload.Figure2.source in
  let dynsum = Dynsum.create pl.Pts_clients.Pipeline.pag in
  let s1 = Pts_workload.Figure2.s1 pl in
  let s2 = Pts_workload.Figure2.s2 pl in
  ignore (Dynsum.points_to dynsum s1);
  let steps_s1 = Budget.total_steps (Dynsum.budget dynsum) in
  let summaries_after_s1 = Dynsum.summary_count dynsum in
  ignore (Dynsum.points_to dynsum s2);
  let steps_s2 = Budget.total_steps (Dynsum.budget dynsum) - steps_s1 in
  check Alcotest.bool "s2 cheaper than s1 thanks to reuse" true (steps_s2 < steps_s1);
  check Alcotest.bool "cache grew or stayed" true (Dynsum.summary_count dynsum >= summaries_after_s1);
  let hits = Pts_util.Stats.get (Dynsum.stats dynsum) "cache_hits" in
  check Alcotest.bool "cache hits occurred" true (hits > 0)

let test_dynsum_clear_cache () =
  let pl = pipeline Pts_workload.Figure2.source in
  let dynsum = Dynsum.create pl.Pts_clients.Pipeline.pag in
  ignore (Dynsum.points_to dynsum (Pts_workload.Figure2.s1 pl));
  check Alcotest.bool "cache populated" true (Dynsum.summary_count dynsum > 0);
  Dynsum.clear_cache dynsum;
  check Alcotest.int "cache cleared" 0 (Dynsum.summary_count dynsum)

let test_dynsum_results_stable_under_reuse () =
  (* answering the same query twice (cold then warm) gives equal results *)
  let pl = Pts_workload.Suite.pipeline "jack" in
  let dynsum = Dynsum.create pl.Pts_clients.Pipeline.pag in
  let queries = Pts_clients.Safecast.queries pl in
  let first = List.map (fun q -> Dynsum.points_to dynsum q.Pts_clients.Client.q_node) queries in
  let second = List.map (fun q -> Dynsum.points_to dynsum q.Pts_clients.Client.q_node) queries in
  List.iter2
    (fun a b -> check Alcotest.bool "idempotent" true (Query.equal_outcome a b))
    first second

let test_dynsum_query_order_irrelevant () =
  let pl = Pts_workload.Suite.pipeline "jack" in
  let queries = Pts_clients.Safecast.queries pl in
  let forward = Dynsum.create pl.Pts_clients.Pipeline.pag in
  let backward = Dynsum.create pl.Pts_clients.Pipeline.pag in
  let r1 = List.map (fun q -> Dynsum.points_to forward q.Pts_clients.Client.q_node) queries in
  let r2 =
    List.rev_map (fun q -> Dynsum.points_to backward q.Pts_clients.Client.q_node) (List.rev queries)
  in
  List.iter2
    (fun a b -> check Alcotest.bool "order-independent" true (Query.equal_outcome a b))
    r1 r2

let test_dynsum_cache_persistence () =
  let pl = Pts_workload.Suite.pipeline "jack" in
  let pag = pl.Pts_clients.Pipeline.pag in
  let queries = Pts_clients.Safecast.queries pl in
  let warm = Dynsum.create pag in
  let cold_answers = List.map (fun q -> Dynsum.points_to warm q.Pts_clients.Client.q_node) queries in
  let path = Filename.temp_file "dynsum" ".cache" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dynsum.save_cache warm path;
      let restored = Dynsum.create pag in
      (match Dynsum.load_cache restored path with
      | Ok n -> check Alcotest.bool "entries loaded" true (n > 0)
      | Error e -> Alcotest.fail e);
      check Alcotest.int "cache size restored" (Dynsum.summary_count warm)
        (Dynsum.summary_count restored);
      (* restored engine answers identically and without recomputation *)
      let restored_answers =
        List.map (fun q -> Dynsum.points_to restored q.Pts_clients.Client.q_node) queries
      in
      List.iter2
        (fun a b -> check Alcotest.bool "same answers after reload" true (Query.equal_outcome a b))
        cold_answers restored_answers;
      check Alcotest.int "no recomputation" 0
        (Pts_util.Stats.get (Dynsum.stats restored) "cache_misses");
      (* loading against a different PAG is refused *)
      let other = Pts_workload.Suite.pipeline "javac" in
      let wrong = Dynsum.create other.Pts_clients.Pipeline.pag in
      match Dynsum.load_cache wrong path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "fingerprint mismatch accepted")

let test_dynsum_cache_corrupt_file () =
  let pl = pipeline Pts_workload.Figure2.source in
  let dynsum = Dynsum.create pl.Pts_clients.Pipeline.pag in
  let path = Filename.temp_file "dynsum" ".cache" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a cache";
      close_out oc;
      (match Dynsum.load_cache dynsum path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt file accepted");
      check Alcotest.int "live cache untouched" 0 (Dynsum.summary_count dynsum))

let test_dynsum_cache_missing_file () =
  let pl = pipeline Pts_workload.Figure2.source in
  let dynsum = Dynsum.create pl.Pts_clients.Pipeline.pag in
  ignore (Dynsum.points_to dynsum (Pts_workload.Figure2.s1 pl));
  let before = Dynsum.summary_count dynsum in
  (match Dynsum.load_cache dynsum "/nonexistent/dynsum.cache" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted");
  check Alcotest.int "live cache untouched" before (Dynsum.summary_count dynsum)

let test_dynsum_cache_truncated_file () =
  (* a payload cut off mid-marshal must be rejected atomically: the live
     cache keeps its pre-load contents *)
  let pl = Pts_workload.Suite.pipeline "jack" in
  let pag = pl.Pts_clients.Pipeline.pag in
  let warm = Dynsum.create pag in
  List.iter
    (fun q -> ignore (Dynsum.points_to warm q.Pts_clients.Client.q_node))
    (Pts_clients.Safecast.queries pl);
  let path = Filename.temp_file "dynsum" ".cache" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dynsum.save_cache warm path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      check Alcotest.bool "cache file non-trivial" true (String.length full > 64);
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full / 2));
      close_out oc;
      let victim = Dynsum.create pag in
      ignore (Dynsum.points_to victim (List.hd (Pts_clients.Safecast.queries pl)).Pts_clients.Client.q_node);
      let before = Dynsum.summary_count victim in
      (match Dynsum.load_cache victim path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated file accepted");
      check Alcotest.int "live cache untouched" before (Dynsum.summary_count victim);
      (* the engine still works after the failed load *)
      ignore
        (Dynsum.points_to victim
           (List.hd (Pts_clients.Safecast.queries pl)).Pts_clients.Client.q_node))

let test_dynsum_cache_fingerprint_no_mutation () =
  (* the fingerprint-mismatch refusal must also leave the target cache
     alone *)
  let pl = Pts_workload.Suite.pipeline "jack" in
  let warm = Dynsum.create pl.Pts_clients.Pipeline.pag in
  List.iter
    (fun q -> ignore (Dynsum.points_to warm q.Pts_clients.Client.q_node))
    (Pts_clients.Safecast.queries pl);
  let path = Filename.temp_file "dynsum" ".cache" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dynsum.save_cache warm path;
      let other = Pts_workload.Suite.pipeline "javac" in
      let wrong = Dynsum.create other.Pts_clients.Pipeline.pag in
      ignore (Dynsum.points_to wrong (List.hd (Pts_clients.Safecast.queries other)).Pts_clients.Client.q_node);
      let before = Dynsum.summary_count wrong in
      (match Dynsum.load_cache wrong path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "fingerprint mismatch accepted");
      check Alcotest.int "live cache untouched" before (Dynsum.summary_count wrong))

(* ------------------------------ STASUM ------------------------------ *)

let test_stasum_covers_queries () =
  let pl = pipeline Pts_workload.Figure2.source in
  let stasum = Stasum.create pl.Pts_clients.Pipeline.pag in
  check Alcotest.bool "not truncated" false (Stasum.truncated stasum);
  ignore (Stasum.points_to stasum (Pts_workload.Figure2.s1 pl));
  ignore (Stasum.points_to stasum (Pts_workload.Figure2.s2 pl));
  check Alcotest.int "no online misses" 0 (Pts_util.Stats.get (Stasum.stats stasum) "online_misses")

let test_stasum_computes_more_summaries_than_dynsum () =
  let pl = Pts_workload.Suite.pipeline "jack" in
  let pag = pl.Pts_clients.Pipeline.pag in
  let stasum = Stasum.create pag in
  let dynsum = Dynsum.create pag in
  let queries = Pts_clients.Safecast.queries pl in
  List.iter (fun q -> ignore (Dynsum.points_to dynsum q.Pts_clients.Client.q_node)) queries;
  check Alcotest.bool "dynsum needs fewer summaries" true
    (Dynsum.summary_count dynsum < Stasum.summary_count stasum)

let test_stasum_truncation_path () =
  (* a tiny cap forces truncation; queries must still be answered (missing
     summaries are computed lazily and counted) *)
  let pl = Pts_workload.Suite.pipeline "jack" in
  let stasum = Stasum.create ~max_summaries:10 pl.Pts_clients.Pipeline.pag in
  check Alcotest.bool "truncated" true (Stasum.truncated stasum);
  let queries = Pts_clients.Safecast.queries pl in
  let norefine = Sb.create Sb.No_refine pl.Pts_clients.Pipeline.pag in
  List.iteri
    (fun i q ->
      if i mod 5 = 0 then begin
        let a = Stasum.points_to stasum q.Pts_clients.Client.q_node in
        let b = Sb.points_to norefine q.Pts_clients.Client.q_node in
        match (a, b) with
        | Query.Resolved _, Query.Resolved _ ->
          check Alcotest.bool "truncated stasum still exact" true (Query.equal_sites a b)
        | _ -> ()
      end)
    queries;
  check Alcotest.bool "lazy misses recorded" true
    (Pts_util.Stats.get (Stasum.stats stasum) "online_misses" > 0)

let test_alias_unknown_on_budget () =
  let pl = Pts_workload.Figure2.pipeline () in
  let conf = Engine.conf ~budget_limit:2 () in
  let engine = Engine.dynsum (Dynsum.create ~conf pl.Pts_clients.Pipeline.pag) in
  let s1 = Pts_workload.Figure2.s1 pl in
  let s2 = Pts_workload.Figure2.s2 pl in
  check Alcotest.bool "unknown under tiny budget" true
    (Alias.may_alias engine s1 s2 = Alias.Unknown)

let test_engine_conf_variants () =
  (* every configuration combination still answers Figure 2 exactly *)
  let pl = Pts_workload.Figure2.pipeline () in
  let s1 = Pts_workload.Figure2.s1 pl in
  List.iter
    (fun conf ->
      let dynsum = Dynsum.create ~conf pl.Pts_clients.Pipeline.pag in
      match Dynsum.points_to dynsum s1 with
      | Query.Resolved ts -> check Alcotest.int "one target" 1 (List.length (Query.sites ts))
      | Query.Exceeded -> Alcotest.fail "exceeded on figure 2")
    [
      Engine.conf ();
      Engine.conf ~max_field_repeat:1 ();
      Engine.conf ~max_field_repeat:4 ();
      Engine.conf ~max_field_depth:4 ~overflow:Engine.Widen ();
      Engine.conf ~max_field_depth:16 ~overflow:Engine.Abort ();
      Engine.conf ~budget_limit:1_000_000 ();
    ]

let test_points_to_in_nonempty_context () =
  (* querying under a specific calling context restricts the answer *)
  let pl = Pts_workload.Figure2.pipeline () in
  let pag = pl.Pts_clients.Pipeline.pag in
  let prog = pl.Pts_clients.Pipeline.prog in
  (* ret_retrieve under an unknown context sees both vectors' contents *)
  let retrieve =
    Array.to_list prog.Ir.methods |> List.find (fun m -> m.Ir.pretty = "Client.retrieve")
  in
  let ret_var =
    List.filter_map (function Ir.Return { src = Some v } -> Some v | _ -> None) retrieve.Ir.body
    |> List.hd
  in
  let node = Pag.local_node pag ~meth:retrieve.Ir.id ~var:ret_var in
  let dynsum = Dynsum.create pag in
  match Dynsum.points_to_in dynsum node Pts_util.Hstack.empty with
  | Query.Exceeded -> Alcotest.fail "exceeded"
  | Query.Resolved ts ->
    check Alcotest.int "unknown caller sees both" 2 (List.length (Query.sites ts))

(* --------------------------- REFINEPTS ------------------------------ *)

let test_refinepts_early_satisfaction_is_sound () =
  (* a satisfiable predicate answered early must also hold for the exact
     answer (anti-monotonicity in action) *)
  let pl = Pts_workload.Suite.pipeline "jack" in
  let pag = pl.Pts_clients.Pipeline.pag in
  let refine = Sb.create Sb.Refine pag in
  let norefine = Sb.create Sb.No_refine pag in
  let queries = Pts_clients.Safecast.queries pl in
  List.iter
    (fun q ->
      let pred = q.Pts_clients.Client.q_pred in
      let early = Sb.points_to refine ~satisfy:pred q.Pts_clients.Client.q_node in
      let exact = Sb.points_to norefine q.Pts_clients.Client.q_node in
      match (early, exact) with
      | Query.Resolved e, Query.Resolved x when pred e ->
        check Alcotest.bool "early satisfaction implies exact satisfaction" true (pred x)
      | _ -> ())
    queries

let test_refinepts_refines_to_exact () =
  (* without a satisfy predicate REFINEPTS fully refines: equal to NOREFINE *)
  let pl = pipeline Pts_workload.Figure2.source in
  let pag = pl.Pts_clients.Pipeline.pag in
  let refine = Sb.create Sb.Refine pag in
  let norefine = Sb.create Sb.No_refine pag in
  List.iter
    (fun node ->
      check Alcotest.bool "refined = exact" true
        (Query.equal_sites (Sb.points_to refine node) (Sb.points_to norefine node)))
    [ Pts_workload.Figure2.s1 pl; Pts_workload.Figure2.s2 pl ];
  check Alcotest.bool "multiple passes happened" true
    (Pts_util.Stats.get (Sb.stats refine) "passes" > Pts_util.Stats.get (Sb.stats refine) "queries")

let () =
  Alcotest.run "core"
    [
      ( "fstack",
        [
          Alcotest.test_case "symbols" `Quick test_fstack_symbols;
          Alcotest.test_case "push/pop" `Quick test_fstack_push_pop;
          Alcotest.test_case "repeat cut" `Quick test_fstack_repeat_cut;
          Alcotest.test_case "depth abort" `Quick test_fstack_depth_abort;
          Alcotest.test_case "widening" `Quick test_fstack_widen;
        ] );
      ( "fieldbased",
        [
          Alcotest.test_case "pts of field" `Quick test_fieldbased_pts_of_field;
          Alcotest.test_case "over-approximates exact" `Quick test_fieldbased_overapproximates_exact;
        ] );
      ( "budget",
        [
          Alcotest.test_case "limits" `Quick test_budget;
          Alcotest.test_case "exceeded outcome" `Quick test_budget_exceeded_outcome;
        ] );
      ("figure2", [ Alcotest.test_case "all engines agree with the paper" `Quick test_figure2_all_engines ]);
      ("scenarios", scenario_tests);
      ( "ppta",
        [
          Alcotest.test_case "figure2 ret_get summary" `Quick test_ppta_figure2_retget;
          Alcotest.test_case "context independence" `Quick test_ppta_context_independence;
        ] );
      ( "dynsum",
        [
          Alcotest.test_case "cache reuse" `Quick test_dynsum_cache_reuse;
          Alcotest.test_case "clear cache" `Quick test_dynsum_clear_cache;
          Alcotest.test_case "idempotent" `Quick test_dynsum_results_stable_under_reuse;
          Alcotest.test_case "order-independent" `Quick test_dynsum_query_order_irrelevant;
          Alcotest.test_case "cache persistence" `Quick test_dynsum_cache_persistence;
          Alcotest.test_case "corrupt cache file" `Quick test_dynsum_cache_corrupt_file;
          Alcotest.test_case "missing cache file" `Quick test_dynsum_cache_missing_file;
          Alcotest.test_case "truncated cache file" `Quick test_dynsum_cache_truncated_file;
          Alcotest.test_case "fingerprint mismatch is atomic" `Quick
            test_dynsum_cache_fingerprint_no_mutation;
        ] );
      ( "stasum",
        [
          Alcotest.test_case "covers queries" `Quick test_stasum_covers_queries;
          Alcotest.test_case "more summaries than dynsum" `Quick test_stasum_computes_more_summaries_than_dynsum;
          Alcotest.test_case "truncation path" `Quick test_stasum_truncation_path;
        ] );
      ( "api",
        [
          Alcotest.test_case "alias unknown on budget" `Quick test_alias_unknown_on_budget;
          Alcotest.test_case "conf variants" `Quick test_engine_conf_variants;
          Alcotest.test_case "non-empty context query" `Quick test_points_to_in_nonempty_context;
        ] );
      ( "refinepts",
        [
          Alcotest.test_case "early satisfaction sound" `Quick test_refinepts_early_satisfaction_is_sound;
          Alcotest.test_case "refines to exact" `Quick test_refinepts_refines_to_exact;
        ] );
    ]

(* The cross-frontend equivalence property pinned by ISSUE 6: matched
   MiniJava/MiniFun program pairs (Genpair) must yield identical
   points-to verdicts for every engine, with and without Andersen-guided
   pruning, sequentially and under the parallel batch scheduler at
   jobs 1/2/4. The per-query ground truth (mono = exactly one non-null
   site) doubles as a lowering correctness check for both frontends.

   Also here: the Devirtopt acceptance criterion — the pass rewrites at
   least one beyond-CHA closure call on the committed pairs, and the
   rewritten program re-analyzes with unchanged verdicts. *)

module Suite = Pts_workload.Suite
module Genpair = Pts_workload.Genpair
module Pipeline = Pts_clients.Pipeline
module Client = Pts_clients.Client
module Devirtopt = Pts_clients.Devirtopt

let check = Alcotest.check

let langs = [ Loc.Mjava; Loc.Minifun ]
let engine_names = Engine.names ()

let conf_with prune = Engine.conf ~budget_limit:2_000_000 ~prune ()

(* At most one non-null allocation site: anti-monotone in the target set,
   so it is a valid [satisfy] early-exit predicate. *)
let mono_pred prog ts =
  let nonnull =
    List.filter (fun s -> not prog.Ir.allocs.(s).Ir.alloc_is_null) (Query.sites ts)
  in
  List.length nonnull <= 1

let verdict_name = function
  | Client.Proved -> "proved"
  | Client.Refuted -> "refuted"
  | Client.Unknown -> "unknown"

let expected q = if q.Genpair.q_mono then Client.Proved else Client.Refuted

(* The Cell/poly scenario overwrites the cell unconditionally before the
   load, so at runtime the query variable holds exactly one site: the
   "poly" label records the flow-insensitive engines' false positive.
   SUPA's strong update kills the dead store and proves it — pin that
   precision win instead of the shared FP. *)
let expected_for engine_name q =
  if engine_name = "supa" && q.Genpair.q_kind = Genpair.Cell && not q.Genpair.q_mono then
    Client.Proved
  else expected q

let vt = Alcotest.testable (Fmt.of_to_string verdict_name) ( = )

(* ------------------------- sequential engines ------------------------ *)

let verdict_seq pl engine_name prune (q : Genpair.query_spec) =
  let prog = pl.Pipeline.prog in
  let node = Pipeline.find_local_any pl ~var:q.Genpair.q_var in
  let engine = Engine.create ~conf:(conf_with prune) engine_name pl.Pipeline.pag in
  Client.verdict_of (mono_pred prog) (engine.Engine.points_to ~satisfy:(mono_pred prog) node)

let test_pair_seq name () =
  let pair = Suite.pair name in
  List.iter
    (fun engine_name ->
      List.iter
        (fun prune ->
          List.iter
            (fun q ->
              let label lang =
                Printf.sprintf "%s %s %s prune=%b %s" name (Loc.lang_name lang) engine_name prune
                  q.Genpair.q_var
              in
              let v lang = verdict_seq (Suite.pair_pipeline name lang) engine_name prune q in
              let vmj = v Loc.Mjava and vmf = v Loc.Minifun in
              check vt (label Loc.Mjava) (expected_for engine_name q) vmj;
              check vt (label Loc.Minifun) (expected_for engine_name q) vmf)
            pair.Genpair.p_queries)
        [ false; true ])
    engine_names

(* ------------------------- parallel batches -------------------------- *)

let verdicts_par pl engine_name prune jobs (queries : Genpair.query_spec list) =
  let prog = pl.Pipeline.prog in
  let qarr =
    Array.of_list
      (List.map
         (fun q ->
           Parsolve.query ~satisfy:(mono_pred prog) (Pipeline.find_local_any pl ~var:q.Genpair.q_var))
         queries)
  in
  let r = Parsolve.run ~conf:(conf_with prune) ~jobs ~rounds:1 ~engine:engine_name pl.Pipeline.pag qarr in
  Array.to_list (Array.map (Client.verdict_of (mono_pred prog)) r.Parsolve.outcomes)

let test_pair_par name () =
  let pair = Suite.pair name in
  List.iter
    (fun engine_name ->
      let expected_all = List.map (expected_for engine_name) pair.Genpair.p_queries in
      List.iter
        (fun prune ->
          List.iter
            (fun jobs ->
              List.iter
                (fun lang ->
                  let vs =
                    verdicts_par (Suite.pair_pipeline name lang) engine_name prune jobs
                      pair.Genpair.p_queries
                  in
                  check (Alcotest.list vt)
                    (Printf.sprintf "%s %s %s prune=%b jobs=%d" name (Loc.lang_name lang)
                       engine_name prune jobs)
                    expected_all vs)
                langs)
            [ 1; 2; 4 ])
        [ false; true ])
    engine_names

(* ---------------------------- devirtopt ------------------------------ *)

(* desc -> verdict for one client on one pipeline, under dynsum. *)
let client_verdicts queries_of pl =
  let conf = conf_with false in
  let engine = Engine.create ~conf "dynsum" pl.Pipeline.pag in
  List.map
    (fun (q : Client.query) ->
      ( q.Client.q_desc,
        Client.verdict_of q.Client.q_pred
          (engine.Engine.points_to ~satisfy:q.Client.q_pred q.Client.q_node) ))
    (queries_of pl)
  |> List.sort compare

(* Safecast derives queries from casts, so its descriptor set is stable
   under call rewriting and verdicts must match exactly. Nullderef
   queries virtual-call receivers and Factorym skips statically-bound
   calls, so a Virtual->Ctor rewrite legitimately removes queries from
   both: there the rewritten set must be a sub-map of the original
   (nothing appears or changes verdict, entries may only vanish with
   their rewritten call sites). *)
let check_client_stability label pl pl' =
  check
    (Alcotest.list (Alcotest.pair Alcotest.string vt))
    (Printf.sprintf "%s: safecast verdicts" label)
    (client_verdicts Pts_clients.Safecast.queries pl)
    (client_verdicts Pts_clients.Safecast.queries pl');
  List.iter
    (fun (cname, queries_of) ->
      let before = client_verdicts queries_of pl in
      let after = client_verdicts queries_of pl' in
      List.iter
        (fun (desc, v) ->
          match List.assoc_opt desc before with
          | Some v0 -> check vt (Printf.sprintf "%s: %s %s" label cname desc) v0 v
          | None -> Alcotest.failf "%s: %s query %S appeared after rewrite" label cname desc)
        after)
    [ ("nullderef", Pts_clients.Nullderef.queries); ("factorym", Pts_clients.Factorym.queries) ]

let test_devirtopt_pair name lang () =
  let pair = Suite.pair name in
  let pl = Suite.pair_pipeline name lang in
  List.iter
    (fun engine_name ->
      let dv = Devirtopt.run ~conf:(conf_with false) ~engine:engine_name pl in
      (* scenario 0 is a monomorphic apply/call with >= 2 CHA targets *)
      check Alcotest.bool
        (Printf.sprintf "%s %s %s: rewrites a beyond-CHA site" name (Loc.lang_name lang) engine_name)
        true
        (Devirtopt.analysis_rewrites dv >= 1);
      (* the rewritten program re-analyzes with unchanged verdicts *)
      let pl' = Pipeline.of_program dv.Devirtopt.dv_prog in
      List.iter
        (fun q ->
          let v = verdict_seq pl' engine_name false q in
          check vt
            (Printf.sprintf "%s %s %s %s after rewrite" name (Loc.lang_name lang) engine_name
               q.Genpair.q_var)
            (expected_for engine_name q) v)
        pair.Genpair.p_queries;
      check_client_stability
        (Printf.sprintf "%s %s %s" name (Loc.lang_name lang) engine_name)
        pl pl')
    engine_names

let test_devirtopt_idempotent () =
  (* a second pass over the rewritten program finds nothing new beyond
     CHA: every provably-monomorphic virtual site is already direct *)
  let pl = Suite.pair_pipeline "pair-m" Loc.Minifun in
  let dv = Devirtopt.run ~engine:"dynsum" pl in
  let pl' = Pipeline.of_program dv.Devirtopt.dv_prog in
  let dv' = Devirtopt.run ~engine:"dynsum" pl' in
  check Alcotest.int "no rewrites left" 0 (List.length dv'.Devirtopt.dv_rewrites)

let () =
  Alcotest.run "crossfrontend"
    [
      ( "equivalence",
        List.map
          (fun name -> Alcotest.test_case (name ^ " sequential") `Quick (test_pair_seq name))
          Suite.pair_names
        @ List.map
            (fun name -> Alcotest.test_case (name ^ " parallel") `Quick (test_pair_par name))
            Suite.pair_names );
      ( "devirtopt",
        List.concat_map
          (fun name ->
            List.map
              (fun lang ->
                Alcotest.test_case
                  (Printf.sprintf "%s %s" name (Loc.lang_name lang))
                  `Quick
                  (test_devirtopt_pair name lang))
              langs)
          Suite.pair_names
        @ [ Alcotest.test_case "idempotent" `Quick test_devirtopt_idempotent ] );
    ]

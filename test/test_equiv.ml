(* The reproduction's central property, from the paper's title claim:
   DYNSUM (and STASUM over the same summaries) answers demand queries
   with exactly the precision of the Sridharan–Bodík baselines — "without
   any precision loss" — while every answer stays inside the Andersen
   over-approximation.

   QCheck generates random workload configurations; for each we compile
   the program, build the PAG, and compare all four engines on every
   client query. *)

module G = Pts_workload.Genprog

(* config generation and the memoised frontend+Andersen build live in
   the shared [Support] module *)
let config_arbitrary = Support.config_arbitrary ~name:"prop"
let build = Support.build

let all_queries pl =
  Pts_clients.Safecast.queries pl @ Pts_clients.Factorym.queries pl
  (* NullDeref is by far the largest query set; sample it *)
  @ List.filteri (fun i _ -> i mod 5 = 0) (Pts_clients.Nullderef.queries pl)

let outcomes_comparable a b =
  match (a, b) with Query.Resolved _, Query.Resolved _ -> true | _ -> false

(* Engines agree on the exact site sets (whenever neither exceeds). *)
let prop_engines_agree =
  QCheck.Test.make ~name:"all engines compute identical points-to sets" ~count:10
    config_arbitrary
    (fun cfg ->
      let pl = build cfg in
      let pag = pl.Pts_clients.Pipeline.pag in
      let norefine = Sb.create Sb.No_refine pag in
      let refine = Sb.create Sb.Refine pag in
      let dynsum = Dynsum.create pag in
      let stasum = Stasum.create pag in
      List.for_all
        (fun q ->
          let n = q.Pts_clients.Client.q_node in
          let a = Sb.points_to norefine n in
          let b = Sb.points_to refine n in
          let c = Dynsum.points_to dynsum n in
          let d = Stasum.points_to stasum n in
          let agree x y = if outcomes_comparable x y then Query.equal_sites x y else true in
          agree a b && agree a c && agree a d && agree c d)
        (all_queries pl))

(* Demand answers stay inside the Andersen whole-program solution. *)
let prop_sound_wrt_andersen =
  QCheck.Test.make ~name:"demand answers within the Andersen over-approximation" ~count:10
    config_arbitrary
    (fun cfg ->
      let pl = build cfg in
      let pag = pl.Pts_clients.Pipeline.pag in
      let dynsum = Dynsum.create pag in
      List.for_all
        (fun q ->
          let n = q.Pts_clients.Client.q_node in
          match Dynsum.points_to dynsum n with
          | Query.Exceeded -> true
          | Query.Resolved ts ->
            let ander = Pts_andersen.Solver.points_to pl.Pts_clients.Pipeline.solver n in
            List.for_all (fun site -> Pts_util.Bitset.mem ander site) (Query.sites ts))
        (all_queries pl))

(* Client verdicts are engine-independent (Unknowns excepted). *)
let prop_verdicts_agree =
  QCheck.Test.make ~name:"client verdicts are engine-independent" ~count:8 config_arbitrary
    (fun cfg ->
      let pl = build cfg in
      let engines = Pts_clients.Pipeline.engines pl in
      List.for_all
        (fun q ->
          let verdicts =
            List.map
              (fun (e : Engine.engine) ->
                Pts_clients.Client.verdict_of q.Pts_clients.Client.q_pred
                  (e.Engine.points_to ~satisfy:q.Pts_clients.Client.q_pred
                     q.Pts_clients.Client.q_node))
              engines
          in
          let known = List.filter (fun v -> v <> Pts_clients.Client.Unknown) verdicts in
          match known with [] -> true | v :: rest -> List.for_all (fun w -> w = v) rest)
        (all_queries pl))

(* DYNSUM's summary cache never grows beyond STASUM's static enumeration. *)
let prop_summary_counts =
  QCheck.Test.make ~name:"dynsum summaries within stasum's enumeration" ~count:8 config_arbitrary
    (fun cfg ->
      let pl = build cfg in
      let pag = pl.Pts_clients.Pipeline.pag in
      let dynsum = Dynsum.create pag in
      let stasum = Stasum.create pag in
      List.iter
        (fun q -> ignore (Dynsum.points_to dynsum q.Pts_clients.Client.q_node))
        (all_queries pl);
      QCheck.assume (not (Stasum.truncated stasum));
      Dynsum.summary_count dynsum <= Stasum.summary_count stasum)

(* Heap contexts included: dynsum and norefine agree on full targets. *)
let prop_targets_agree_with_contexts =
  QCheck.Test.make ~name:"targets agree including heap contexts" ~count:8 config_arbitrary
    (fun cfg ->
      let pl = build cfg in
      let pag = pl.Pts_clients.Pipeline.pag in
      let norefine = Sb.create Sb.No_refine pag in
      let dynsum = Dynsum.create pag in
      List.for_all
        (fun q ->
          let n = q.Pts_clients.Client.q_node in
          match (Sb.points_to norefine n, Dynsum.points_to dynsum n) with
          | Query.Resolved a, Query.Resolved b -> Query.Target_set.equal a b
          | _ -> true)
        (List.filteri (fun i _ -> i mod 3 = 0) (all_queries pl)))

let () =
  Alcotest.run "equivalence"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest ~long:false prop_engines_agree;
          QCheck_alcotest.to_alcotest ~long:false prop_sound_wrt_andersen;
          QCheck_alcotest.to_alcotest ~long:false prop_verdicts_agree;
          QCheck_alcotest.to_alcotest ~long:false prop_summary_counts;
          QCheck_alcotest.to_alcotest ~long:false prop_targets_agree_with_contexts;
        ] );
    ]

(* Lexer, parser, class table and lowering tests. *)

let check = Alcotest.check

(* ------------------------------- Lexer ------------------------------ *)

let toks src = List.map fst (Lexer.tokenize src)

let test_lexer_basics () =
  check Alcotest.int "count" 5
    (List.length (toks "class Foo { }"));
  (* class Foo { } EOF = 5 tokens + EOF *)
  (match toks "x = y + 42;" with
  | [ IDENT "x"; ASSIGN; IDENT "y"; PLUS; INT_LIT 42; SEMI; EOF ] -> ()
  | _ -> Alcotest.fail "token stream mismatch");
  match toks "a <= b && c != d" with
  | [ IDENT "a"; LE; IDENT "b"; ANDAND; IDENT "c"; NEQ; IDENT "d"; EOF ] -> ()
  | _ -> Alcotest.fail "operator stream mismatch"

let test_lexer_comments () =
  match toks "x // line comment\n /* block \n comment */ y" with
  | [ IDENT "x"; IDENT "y"; EOF ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lexer_strings () =
  (match toks {|"hi\n\"there\""|} with
  | [ STR_LIT "hi\n\"there\""; EOF ] -> ()
  | _ -> Alcotest.fail "string escapes");
  Alcotest.check_raises "unterminated"
    (Lexer.Error ("unterminated string literal", { Loc.line = 1; col = 1 }))
    (fun () -> ignore (Lexer.tokenize "\"oops"))

let test_lexer_positions () =
  let all = Lexer.tokenize "x\n  y" in
  match all with
  | [ (IDENT "x", p1); (IDENT "y", p2); (EOF, _) ] ->
    check Alcotest.int "line 1" 1 p1.Loc.line;
    check Alcotest.int "line 2" 2 p2.Loc.line;
    check Alcotest.int "col 3" 3 p2.Ast.col
  | _ -> Alcotest.fail "positions"

(* ------------------------------ Parser ------------------------------ *)

let expr s = (Parser.parse_expr_string s).Ast.desc

let test_parser_precedence () =
  (match expr "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, _, { Ast.desc = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "mul binds tighter");
  match expr "a == b && c == d" with
  | Ast.Binop (Ast.And, { Ast.desc = Ast.Binop (Ast.Eq, _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "eq binds tighter than and"

let test_parser_cast_disambiguation () =
  (match expr "(Foo) x" with
  | Ast.Cast (Ast.Tclass "Foo", { Ast.desc = Ast.Ident "x"; _ }) -> ()
  | _ -> Alcotest.fail "cast");
  (match expr "(x) + y" with
  | Ast.Binop (Ast.Add, { Ast.desc = Ast.Ident "x"; _ }, _) -> ()
  | _ -> Alcotest.fail "parenthesised expr");
  (match expr "(Foo[]) x" with
  | Ast.Cast (Ast.Tarray (Ast.Tclass "Foo"), _) -> ()
  | _ -> Alcotest.fail "array cast");
  match expr "(int) 3" with
  | Ast.Cast (Ast.Tint, _) -> ()
  | _ -> Alcotest.fail "int cast"

let test_parser_postfix_chains () =
  match expr "a.b.c(x)[0].d" with
  | Ast.Field_access
      ( { Ast.desc = Ast.Array_index ({ Ast.desc = Ast.Method_call (Some _, "c", [ _ ]); _ }, _); _ },
        "d" ) ->
    ()
  | _ -> Alcotest.fail "postfix chain shape"

let test_parser_new_forms () =
  (match expr "new Foo(1, x)" with
  | Ast.New_object ("Foo", [ _; _ ]) -> ()
  | _ -> Alcotest.fail "new object");
  match expr "new int[10]" with
  | Ast.New_array (Ast.Tint, _) -> ()
  | _ -> Alcotest.fail "new array"

let test_parser_class () =
  match Parser.parse_program "class A extends B { int x; static A f; A() {} void m(int a) { return; } }" with
  | [ c ] ->
    check Alcotest.string "name" "A" c.Ast.c_name;
    check (Alcotest.option Alcotest.string) "super" (Some "B") c.Ast.c_super;
    check Alcotest.int "fields" 2 (List.length c.Ast.c_fields);
    check Alcotest.int "methods" 2 (List.length c.Ast.c_methods);
    let ctor = List.find (fun m -> m.Ast.m_is_ctor) c.Ast.c_methods in
    check Alcotest.string "ctor name" "A" ctor.Ast.m_name
  | _ -> Alcotest.fail "class parse"

let test_parser_decl_vs_expr_stmt () =
  let prog = "class A { void m() { A x; x = new A(); x.m(); int[] ys; } }" in
  match Parser.parse_program prog with
  | [ c ] -> (
    match c.Ast.c_methods with
    | [ m ] -> check Alcotest.int "4 statements" 4 (List.length m.Ast.m_body)
    | _ -> Alcotest.fail "methods")
  | _ -> Alcotest.fail "parse"

let test_parser_for_loop () =
  let prog =
    "class A { void m() { for (int i = 0; i < 10; i = i + 1) { int x = i; } for (;;) {} } }"
  in
  match Parser.parse_program prog with
  | [ c ] -> (
    match (List.hd c.Ast.c_methods).Ast.m_body with
    | [ Ast.For { init = Some _; cond = Some _; step = Some _; _ };
        Ast.For { init = None; cond = None; step = None; _ } ] ->
      ()
    | _ -> Alcotest.fail "for loop shapes")
  | _ -> Alcotest.fail "parse"

let test_parser_instanceof_and_super () =
  (match expr "x instanceof Foo" with
  | Ast.Instanceof ({ Ast.desc = Ast.Ident "x"; _ }, Ast.Tclass "Foo") -> ()
  | _ -> Alcotest.fail "instanceof");
  match expr "super.m(a, b)" with
  | Ast.Super_call ("m", [ _; _ ]) -> ()
  | _ -> Alcotest.fail "super call"

let test_parser_errors () =
  let fails s =
    match Parser.parse_program s with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  fails "class { }";
  fails "class A extends { }";
  fails "class A { void m( { } }";
  fails "class A { void m() { 1 + ; } }";
  fails "class A { void m() { x.f().g = ; } }";
  fails "class A { void m() { (x + y) = z; } }" (* not an l-value *)

(* --------------------------- Pretty-printer ------------------------- *)

let roundtrips src =
  let ast = Parser.parse_program src in
  let printed = Pretty.program_to_string ast in
  match Parser.parse_program printed with
  | ast' -> Pretty.equal_program ast ast'
  | exception Parser.Error (msg, pos) ->
    Alcotest.fail
      (Printf.sprintf "printed program does not reparse (%d:%d %s):\n%s" pos.Loc.line pos.Ast.col
         msg printed)

let test_pretty_roundtrip_handwritten () =
  List.iter
    (fun src -> Alcotest.check Alcotest.bool "roundtrip" true (roundtrips src))
    [
      Pts_workload.Figure2.source;
      "class A { int x; static A f; A() { super.hashCode(); } void m(int[] a) { for (int i = 0; i < 3; i = i + 1) { a[i] = i; } } }";
      {|class S { String s = "a\n\"b\""; boolean t; void m() { this.t = this instanceof S; } }|};
      "class N { Object o; void m() { this.o = new int[3][]; N[] ns = new N[2]; ns[0] = this; } }";
      "class E { void m(boolean b) { if (b) { return; } while (!b) { b = true; } } }";
    ]

let test_pretty_roundtrip_generated =
  QCheck.Test.make ~name:"print/parse roundtrip on generated programs" ~count:8
    QCheck.(int_bound 1000)
    (fun seed ->
      let cfg = { Pts_workload.Genprog.default with seed } in
      roundtrips (Pts_workload.Genprog.generate cfg))

let test_pretty_printed_program_compiles () =
  (* the printed program is semantically identical: same PAG statistics *)
  let src = Pts_workload.Genprog.generate Pts_workload.Genprog.default in
  let printed = Pretty.program_to_string (Parser.parse_program src) in
  let pl1 = Pts_clients.Pipeline.of_source src in
  let pl2 = Pts_clients.Pipeline.of_source printed in
  let counts pl =
    let c = Pag.edge_counts pl.Pts_clients.Pipeline.pag in
    (c.Pag.n_new, c.Pag.n_assign, c.Pag.n_load, c.Pag.n_store, c.Pag.n_entry, c.Pag.n_exit)
  in
  Alcotest.check Alcotest.bool "same PAG shape" true (counts pl1 = counts pl2)

(* --------------------------- Class table ---------------------------- *)

let compile = Frontend.compile

let test_subtyping () =
  let p = compile "class A {} class B extends A {} class C extends B {} class D {}" in
  let ct = p.Ir.ctable in
  let cls n = match Types.find_class ct n with Some c -> c | None -> Alcotest.fail ("no " ^ n) in
  check Alcotest.bool "C <: A" true (Types.subclass ct (cls "C") (cls "A"));
  check Alcotest.bool "A not <: C" false (Types.subclass ct (cls "A") (cls "C"));
  check Alcotest.bool "D <: Object" true (Types.subclass ct (cls "D") (Types.object_class ct));
  check Alcotest.bool "reflexive" true (Types.subclass ct (cls "B") (cls "B"));
  check Alcotest.bool "typ subtype arrays covariant" true
    (Types.subtype ct (Ast.Tarray (Ast.Tclass "C")) (Ast.Tarray (Ast.Tclass "A")));
  check Alcotest.bool "array <: Object" true
    (Types.subtype ct (Ast.Tarray Ast.Tint) (Ast.Tclass "Object"))

let test_dispatch () =
  let p = compile "class A { int m() { return 1; } } class B extends A { int m() { return 2; } } class C extends B {}" in
  let ct = p.Ir.ctable in
  let cls n = match Types.find_class ct n with Some c -> c | None -> Alcotest.fail "cls" in
  let target c =
    match Types.lookup_method ct (cls c) "m" with
    | Some ms -> Types.class_name ct ms.Types.ms_class
    | None -> Alcotest.fail "no target"
  in
  check Alcotest.string "A dispatches to A.m" "A" (target "A");
  check Alcotest.string "B overrides" "B" (target "B");
  check Alcotest.string "C inherits B.m" "B" (target "C")

let test_hierarchy_cycle_rejected () =
  match compile "class A extends B {} class B extends A {}" with
  | exception Frontend.Error _ -> ()
  | _ -> Alcotest.fail "cycle accepted"

(* ----------------------------- Lowering ----------------------------- *)

let find_method p name =
  match Array.to_list p.Ir.methods |> List.find_opt (fun m -> m.Ir.pretty = name) with
  | Some m -> m
  | None -> Alcotest.fail ("method not found: " ^ name)

let test_lower_figure2 () =
  let p = compile Pts_workload.Figure2.source in
  let main = find_method p "Main.main" in
  check Alcotest.bool "main has allocations" true
    (List.exists (function Ir.Alloc _ -> true | _ -> false) main.Ir.body);
  (* unique destination per allocation site *)
  let dsts = Hashtbl.create 16 in
  Array.iter
    (fun (m : Ir.meth) ->
      List.iter
        (function
          | Ir.Alloc { site; dst; _ } ->
            (match Hashtbl.find_opt dsts site with
            | Some d when d <> (m.Ir.id, dst) -> Alcotest.fail "allocation with two destinations"
            | _ -> Hashtbl.replace dsts site (m.Ir.id, dst))
          | _ -> ())
        m.Ir.body)
    p.Ir.methods;
  (* every site id appears in the allocs table with the right method *)
  Array.iteri
    (fun i (a : Ir.alloc_site) -> check Alcotest.int "site ids dense" i a.Ir.site_id)
    p.Ir.allocs

let test_lower_field_init_in_ctor () =
  let p = compile "class A { A next = new A(); } class Main { static void main() { A a = new A(); } }" in
  let ctor = find_method p "A.A" in
  check Alcotest.bool "ctor stores field init" true
    (List.exists (function Ir.Store _ -> true | _ -> false) ctor.Ir.body)

let test_lower_static_init_in_clinit () =
  let p = compile "class A { static A root = new A(); } class Main { static void main() {} }" in
  let clinit = find_method p "A.$clinit" in
  check Alcotest.bool "clinit stores global" true
    (List.exists (function Ir.Store_global _ -> true | _ -> false) clinit.Ir.body);
  let entry = find_method p "$Entry.$entry" in
  check Alcotest.bool "entry calls clinit and main" true (List.length entry.Ir.body >= 2)

let test_lower_cast_sites () =
  let p =
    compile
      "class A {} class B extends A {} class Main { static void main() { A a = new B(); B b = (B) a; A up = (A) b; } }"
  in
  let nontrivial = Array.to_list p.Ir.casts |> List.filter (fun c -> not c.Ir.cast_trivial) in
  let trivial = Array.to_list p.Ir.casts |> List.filter (fun c -> c.Ir.cast_trivial) in
  check Alcotest.int "one downcast" 1 (List.length nontrivial);
  check Alcotest.int "one upcast" 1 (List.length trivial)

let test_lower_errors () =
  let fails s =
    match compile s with
    | exception Frontend.Error _ -> ()
    | _ -> Alcotest.fail ("should be rejected: " ^ s)
  in
  fails "class A {} class A {}" (* duplicate class *);
  fails "class A { int x; int x; }" (* duplicate field *);
  fails "class A { void m() {} void m() {} }" (* no overloading *);
  fails "class A { void m() { y = 1; } }" (* unknown identifier *);
  fails "class A { void m() { int x; boolean y; x = y; } }" (* type mismatch *);
  fails "class A { void m() { A a = new A(1); } }" (* ctor arity *);
  fails "class A { Unknown f; }" (* unknown type *);
  fails "class A { void m() { int x; int x; } }" (* duplicate local *);
  fails "class A { void m() { return 1; } }" (* return from void *);
  fails "class A { static void s() { this.s(); } }" (* this in static *);
  fails "class A { void m(int a) { a.f(); } }" (* call on int *)

let test_ctor_overloading_by_arity () =
  let p =
    compile
      "class A { A() {} A(A other) {} } class Main { static void main() { A a = new A(); A b = new A(a); } }"
  in
  let ct = p.Ir.ctable in
  let cls = match Types.find_class ct "A" with Some c -> c | None -> Alcotest.fail "A" in
  check Alcotest.int "two ctors" 2 (List.length (Types.constructors ct cls));
  check Alcotest.bool "arity 0" true (Types.constructor ct cls 0 <> None);
  check Alcotest.bool "arity 1" true (Types.constructor ct cls 1 <> None);
  check Alcotest.bool "arity 2 missing" true (Types.constructor ct cls 2 = None)

let test_null_and_strings_become_allocs () =
  let p =
    compile
      {|class Main { static void main() { Object x = null; String s = "hi"; } }|}
  in
  let nulls = Array.to_list p.Ir.allocs |> List.filter (fun a -> a.Ir.alloc_is_null) in
  check Alcotest.bool "one null pseudo-site" true (List.length nulls >= 1);
  let ct = p.Ir.ctable in
  let strs =
    Array.to_list p.Ir.allocs
    |> List.filter (fun a -> a.Ir.alloc_cls = Types.string_class ct && not a.Ir.alloc_is_null)
  in
  check Alcotest.bool "string literal allocates" true (List.length strs >= 1)

let test_array_length_is_int () =
  let p = compile "class Main { static void main() { int[] a = new int[3]; int n = a.length; } }" in
  ignore p (* compiling without error is the assertion *)

let test_lower_for_loop () =
  let p =
    compile
      {|class A {}
class Main {
  static void main() {
    A last = null;
    for (int i = 0; i < 3; i = i + 1) { last = new A(); }
  }
}|}
  in
  let main = find_method p "Main.main" in
  check Alcotest.bool "loop body lowered" true
    (List.exists
       (function Ir.Alloc { cls; _ } -> Types.class_name p.Ir.ctable cls = "A" | _ -> false)
       main.Ir.body)

let test_lower_for_scoping () =
  (* the for-init variable is not visible after the loop *)
  match
    compile
      "class Main { static void main() { for (int i = 0; i < 3; i = i + 1) {} int j = i; } }"
  with
  | exception Frontend.Error _ -> ()
  | _ -> Alcotest.fail "for-init variable escaped its scope"

let test_lower_super_call () =
  let p =
    compile
      {|class A { Object who() { return new A(); } }
class B extends A {
  Object who() { return new B(); }
  Object parent() { return super.who(); }
}
class Main { static void main() { B b = new B(); Object r = b.parent(); } }|}
  in
  (* super.who() must be statically bound: r can only be the A allocation *)
  let pl = Pts_clients.Pipeline.of_program p in
  let dynsum = Pts_core.Dynsum.create pl.Pts_clients.Pipeline.pag in
  let r = Pts_clients.Pipeline.find_local pl ~meth_pretty:"Main.main" ~var:"r" in
  (match Pts_core.Dynsum.points_to dynsum r with
  | Pts_core.Query.Resolved ts ->
    let classes =
      List.map
        (fun site -> Types.class_name p.Ir.ctable p.Ir.allocs.(site).Ir.alloc_cls)
        (Pts_core.Query.sites ts)
    in
    check (Alcotest.list Alcotest.string) "statically bound" [ "A" ] classes
  | Pts_core.Query.Exceeded -> Alcotest.fail "exceeded")

let test_lower_instanceof () =
  let p =
    compile
      "class A {} class Main { static void main() { Object o = new A(); boolean b = o instanceof A; } }"
  in
  ignore p;
  match compile "class Main { static void main() { boolean b = 1 instanceof Object; } }" with
  | exception Frontend.Error _ -> ()
  | _ -> Alcotest.fail "instanceof on int accepted"

let test_lower_string_concat () =
  let p =
    compile {|class Main { static void main() { String a = "x"; String b = a + "y"; } }|}
  in
  let ct = p.Ir.ctable in
  let main = find_method p "Main.main" in
  let strings =
    Array.to_list p.Ir.allocs
    |> List.filter (fun a ->
           a.Ir.alloc_cls = Types.string_class ct && a.Ir.alloc_meth = main.Ir.id)
  in
  (* two literals plus the concatenation result *)
  check Alcotest.int "concat allocates" 3 (List.length strings)

let test_prelude_always_available () =
  let p = compile "class Main { static void main() { Integer i = new Integer(3); int v = i.intValue(); } }" in
  check Alcotest.bool "Integer exists" true (Types.find_class p.Ir.ctable "Integer" <> None)

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "strings" `Quick test_lexer_strings;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "casts" `Quick test_parser_cast_disambiguation;
          Alcotest.test_case "postfix" `Quick test_parser_postfix_chains;
          Alcotest.test_case "new" `Quick test_parser_new_forms;
          Alcotest.test_case "class" `Quick test_parser_class;
          Alcotest.test_case "decl vs expr" `Quick test_parser_decl_vs_expr_stmt;
          Alcotest.test_case "for loops" `Quick test_parser_for_loop;
          Alcotest.test_case "instanceof and super" `Quick test_parser_instanceof_and_super;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "handwritten roundtrips" `Quick test_pretty_roundtrip_handwritten;
          QCheck_alcotest.to_alcotest test_pretty_roundtrip_generated;
          Alcotest.test_case "printed program compiles" `Quick test_pretty_printed_program_compiles;
        ] );
      ( "types",
        [
          Alcotest.test_case "subtyping" `Quick test_subtyping;
          Alcotest.test_case "dispatch" `Quick test_dispatch;
          Alcotest.test_case "cycle rejected" `Quick test_hierarchy_cycle_rejected;
        ] );
      ( "lower",
        [
          Alcotest.test_case "figure2" `Quick test_lower_figure2;
          Alcotest.test_case "field init" `Quick test_lower_field_init_in_ctor;
          Alcotest.test_case "static init" `Quick test_lower_static_init_in_clinit;
          Alcotest.test_case "cast sites" `Quick test_lower_cast_sites;
          Alcotest.test_case "errors" `Quick test_lower_errors;
          Alcotest.test_case "ctor overloading" `Quick test_ctor_overloading_by_arity;
          Alcotest.test_case "null and strings" `Quick test_null_and_strings_become_allocs;
          Alcotest.test_case "for loops" `Quick test_lower_for_loop;
          Alcotest.test_case "for scoping" `Quick test_lower_for_scoping;
          Alcotest.test_case "super call" `Quick test_lower_super_call;
          Alcotest.test_case "instanceof" `Quick test_lower_instanceof;
          Alcotest.test_case "string concat" `Quick test_lower_string_concat;
          Alcotest.test_case "array length" `Quick test_array_length_is_int;
          Alcotest.test_case "prelude" `Quick test_prelude_always_available;
        ] );
    ]

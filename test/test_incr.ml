(* Incremental PAG edits: the epoch/delta/view contract and its
   consumers. Covers:

   - delete-then-readd is a perfect roundtrip (graph hash, accessor
     lists, edge counts, node flags all restored);
   - the View iterators agree with the overlay-aware list accessors
     after random edit bursts;
   - after every burst, live engines invalidated through Incr answer
     exactly like fresh engines on a from-scratch rebuild that replayed
     the same scripts — while retaining most of their summary caches;
   - a persisted dynsum cache is rejected once the graph hash moves,
     even when the edit preserves every edge count (satellite: stale
     cache rejection);
   - a witness captured pre-edit over a since-deleted edge fails
     validation instead of crashing. *)

module Suite = Pts_workload.Suite
module Editscript = Pts_workload.Editscript
module Pipeline = Pts_clients.Pipeline
module Client = Pts_clients.Client
module Prng = Pts_util.Prng

let check = Alcotest.check

(* Editing mutates the PAG in place, so every test builds its own
   pipeline — the memoised [Suite.pipeline] must never be edited. *)
let private_pipeline bench = Pipeline.of_source (Suite.source bench)

let conf = Engine.conf ~budget_limit:2_000_000 ()

(* ------------------- delete-then-readd roundtrip --------------------- *)

let find_assign pag =
  let rec go v =
    if v >= Pag.node_count pag then Alcotest.fail "no assign edge in benchmark"
    else
      match Pag.assign_in pag v with
      | src :: _ -> (src, v)
      | [] -> go (v + 1)
  in
  go 0

let test_delete_readd () =
  let pl = private_pipeline "jack" in
  let pag = pl.Pipeline.pag in
  let src, dst = find_assign pag in
  let e = Pag.Eassign { src; dst } in
  let h0 = Pag.graph_hash pag in
  let e0 = Pag.epoch pag in
  let c0 = (Pag.edge_counts pag).Pag.n_assign in
  let in0 = List.sort compare (Pag.assign_in pag dst) in
  let out0 = List.sort compare (Pag.assign_out pag src) in
  let commit = Pag.apply_edits pag [ Pag.Edel e ] in
  check Alcotest.int "one deletion" 1 commit.Pag.c_deleted;
  check Alcotest.bool "dirty set holds both endpoints" true
    (List.mem src commit.Pag.c_dirty && List.mem dst commit.Pag.c_dirty);
  check Alcotest.bool "hash moved" true (Pag.graph_hash pag <> h0);
  check Alcotest.bool "edge gone from view" false (List.mem src (Pag.assign_in pag dst));
  check Alcotest.int "assign count down" (c0 - 1) (Pag.edge_counts pag).Pag.n_assign;
  ignore (Pag.apply_edits pag [ Pag.Eadd e ]);
  check Alcotest.int "hash restored (xor is self-inverse)" h0 (Pag.graph_hash pag);
  check (Alcotest.list Alcotest.int) "in-list restored" in0
    (List.sort compare (Pag.assign_in pag dst));
  check (Alcotest.list Alcotest.int) "out-list restored" out0
    (List.sort compare (Pag.assign_out pag src));
  check Alcotest.int "assign count restored" c0 (Pag.edge_counts pag).Pag.n_assign;
  check Alcotest.int "epoch bumped per batch" (e0 + 2) (Pag.epoch pag);
  (* a no-op batch (deleting a missing edge, re-adding a present one)
     still bumps the epoch but changes nothing else *)
  let commit = Pag.apply_edits pag [ Pag.Eadd e; Pag.Edel (Pag.Eassign { src = dst; dst = src }) ] in
  check Alcotest.int "no-op batch inserts nothing" 0 commit.Pag.c_inserted;
  check Alcotest.int "no-op batch deletes nothing" 0 commit.Pag.c_deleted;
  check Alcotest.int "hash still restored" h0 (Pag.graph_hash pag)

(* ----------------- view vs list accessors after edits ---------------- *)

let collect_nodes iter pag v =
  let acc = ref [] in
  iter pag v (fun n -> acc := n :: !acc);
  List.sort compare !acc

let collect_pairs iter pag v =
  let acc = ref [] in
  iter pag v (fun a n -> acc := (a, n) :: !acc);
  List.sort compare !acc

let test_view_consistency () =
  let pl = private_pipeline "jack" in
  let pag = pl.Pipeline.pag in
  let rng = Prng.create 1234 in
  for _ = 1 to 3 do
    ignore (Pag.apply_edits pag (Editscript.burst rng pag ~n:12))
  done;
  let pair = Alcotest.pair Alcotest.int Alcotest.int in
  for v = 0 to Pag.node_count pag - 1 do
    let ctx = Printf.sprintf "node %d" v in
    check (Alcotest.list Alcotest.int) ctx
      (List.sort compare (Pag.new_in pag v))
      (collect_nodes Pag.View.iter_new_in pag v);
    check (Alcotest.list Alcotest.int) ctx
      (List.sort compare (Pag.assign_in pag v))
      (collect_nodes Pag.View.iter_assign_in pag v);
    check (Alcotest.list Alcotest.int) ctx
      (List.sort compare (Pag.assign_out pag v))
      (collect_nodes Pag.View.iter_assign_out pag v);
    check (Alcotest.list Alcotest.int) ctx
      (List.sort compare (Pag.global_out pag v))
      (collect_nodes Pag.View.iter_global_out pag v);
    check (Alcotest.list pair) ctx
      (List.sort compare (Pag.load_in pag v))
      (collect_pairs Pag.View.iter_load_in pag v);
    check (Alcotest.list pair) ctx
      (List.sort compare (Pag.store_out pag v))
      (collect_pairs Pag.View.iter_store_out pag v);
    check (Alcotest.list pair) ctx
      (List.sort compare (Pag.entry_in pag v))
      (collect_pairs Pag.View.iter_entry_in pag v);
    check (Alcotest.list pair) ctx
      (List.sort compare (Pag.exit_out pag v))
      (collect_pairs Pag.View.iter_exit_out pag v);
    check Alcotest.bool ctx (Pag.new_in pag v <> []) (Pag.View.has_new_in pag v)
  done

(* ------------- incremental vs rebuild, retention > 0 ------------------ *)

let sample_queries pl =
  Pts_clients.Safecast.queries pl
  @ List.filteri (fun i _ -> i mod 3 = 0) (Pts_clients.Nullderef.queries pl)

let engine_confs =
  [ ("norefine", false); ("refinepts", true); ("dynsum", false); ("dynsum", true) ]

let build_engines pag =
  List.map
    (fun (name, prune) ->
      Engine.create ~conf:(Engine.conf ~budget_limit:2_000_000 ~prune ()) name pag)
    engine_confs

let outcomes e queries =
  List.map (fun q -> e.Engine.points_to q.Client.q_node) queries

let test_incremental_matches_rebuild () =
  let source = Suite.source "jack" in
  let pl = Pipeline.of_source source in
  let incr = Incr.create pl.Pipeline.pag in
  let engines = build_engines pl.Pipeline.pag in
  List.iter (Incr.register incr) engines;
  let queries = sample_queries pl in
  (* warm the caches so the bursts have summaries to retain *)
  List.iter (fun e -> ignore (outcomes e queries)) engines;
  let rng = Prng.create 5 in
  let scripts = ref [] in
  let retained = ref 0 in
  for burst = 1 to 2 do
    let script = Editscript.burst rng pl.Pipeline.pag ~n:6 in
    scripts := !scripts @ [ script ];
    let stats = Incr.apply incr script in
    retained := !retained + stats.Incr.i_retained;
    let rpl = Pipeline.of_source source in
    List.iter (fun s -> ignore (Pag.apply_edits rpl.Pipeline.pag s)) !scripts;
    check Alcotest.int
      (Printf.sprintf "burst %d: replay reproduces the graph hash" burst)
      (Pag.graph_hash pl.Pipeline.pag)
      (Pag.graph_hash rpl.Pipeline.pag);
    let rebuilt = build_engines rpl.Pipeline.pag in
    let rqueries = sample_queries rpl in
    List.iter2
      (fun live fresh ->
        List.iter2
          (fun a b ->
            check Alcotest.bool
              (Printf.sprintf "burst %d: %s outcome equal" burst live.Engine.name)
              true (Query.equal_outcome a b))
          (outcomes live queries) (outcomes fresh rqueries))
      engines rebuilt
  done;
  check Alcotest.bool "summaries were retained across bursts" true (!retained > 0)

(* -------------------- stale persisted cache ------------------------- *)

(* The edit deletes one assign edge and inserts a different one, so every
   edge count — the legacy fingerprint — is unchanged; only the graph
   hash can catch the staleness. *)
let test_stale_cache_rejected () =
  let pl = private_pipeline "jack" in
  let pag = pl.Pipeline.pag in
  let d = Dynsum.create ~conf pag in
  List.iteri (fun i q -> if i < 5 then ignore (Dynsum.points_to d q.Client.q_node))
    (sample_queries pl);
  check Alcotest.bool "something cached" true (Dynsum.summary_count d > 0);
  let path = Filename.temp_file "ptsto-incr" ".cache" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dynsum.save_cache d path;
      (match Dynsum.load_cache (Dynsum.create ~conf pag) path with
      | Ok n -> check Alcotest.bool "same-graph load succeeds" true (n > 0)
      | Error e -> Alcotest.failf "same-graph load failed: %s" e);
      let src, dst = find_assign pag in
      let other =
        let rec go v =
          if v >= Pag.node_count pag then Alcotest.fail "no insertion candidate"
          else if
            (not (Pag.is_obj pag v))
            && v <> dst
            && (not (List.mem src (Pag.assign_in pag v)))
            && v <> src
          then v
          else go (v + 1)
        in
        go 0
      in
      ignore
        (Pag.apply_edits pag
           [ Pag.Edel (Pag.Eassign { src; dst }); Pag.Eadd (Pag.Eassign { src; dst = other }) ]);
      match Dynsum.load_cache (Dynsum.create ~conf pag) path with
      | Ok _ -> Alcotest.fail "stale cache (count-preserving edit) was accepted"
      | Error msg ->
        check Alcotest.bool "error names the version mismatch" true
          (String.length msg > 0))

(* ------------- witness across a deleted edge: fail, not crash -------- *)

let incident_deletions pag v =
  let es = ref [] in
  List.iter (fun o -> es := Pag.Edel (Pag.Enew { obj_ = o; dst = v }) :: !es) (Pag.new_in pag v);
  List.iter (fun s -> es := Pag.Edel (Pag.Eassign { src = s; dst = v }) :: !es) (Pag.assign_in pag v);
  List.iter (fun d -> es := Pag.Edel (Pag.Eassign { src = v; dst = d }) :: !es) (Pag.assign_out pag v);
  List.iter (fun s -> es := Pag.Edel (Pag.Eglobal { src = s; dst = v }) :: !es) (Pag.global_in pag v);
  List.iter (fun d -> es := Pag.Edel (Pag.Eglobal { src = v; dst = d }) :: !es) (Pag.global_out pag v);
  List.iter
    (fun (f, b) -> es := Pag.Edel (Pag.Eload { base = b; fld = f; dst = v }) :: !es)
    (Pag.load_in pag v);
  List.iter
    (fun (f, d) -> es := Pag.Edel (Pag.Eload { base = v; fld = f; dst = d }) :: !es)
    (Pag.load_out pag v);
  List.iter
    (fun (f, s) -> es := Pag.Edel (Pag.Estore { base = v; fld = f; src = s }) :: !es)
    (Pag.store_in pag v);
  List.iter
    (fun (f, b) -> es := Pag.Edel (Pag.Estore { base = b; fld = f; src = v }) :: !es)
    (Pag.store_out pag v);
  List.iter
    (fun (i, a) -> es := Pag.Edel (Pag.Eentry { site = i; actual = a; formal = v }) :: !es)
    (Pag.entry_in pag v);
  List.iter
    (fun (i, p) -> es := Pag.Edel (Pag.Eentry { site = i; actual = v; formal = p }) :: !es)
    (Pag.entry_out pag v);
  List.iter
    (fun (i, r) -> es := Pag.Edel (Pag.Eexit { site = i; retval = r; dst = v }) :: !es)
    (Pag.exit_in pag v);
  List.iter
    (fun (i, d) -> es := Pag.Edel (Pag.Eexit { site = i; retval = v; dst = d }) :: !es)
    (Pag.exit_out pag v);
  !es

let test_witness_after_delete () =
  let pl = private_pipeline "jack" in
  let pag = pl.Pipeline.pag in
  let d = Dynsum.create ~conf pag in
  (* find a query with a provable witness *)
  let found =
    List.find_map
      (fun q ->
        let node = q.Client.q_node in
        match Dynsum.points_to d node with
        | Query.Resolved ts -> (
          match Query.sites ts with
          | site :: _ -> (
            match Witness.explain pag node ~site with
            | Some steps -> Some (node, site, steps)
            | None -> None)
          | [] -> None)
        | Query.Exceeded -> None)
      (sample_queries pl)
  in
  let node, site, steps =
    match found with Some x -> x | None -> Alcotest.fail "no witness found on jack"
  in
  check Alcotest.bool "witness validates pre-edit" true
    (Witness.validate pag ~query:node ~site steps);
  (* sever every edge at the query node: whatever boundary edge or local
     summary the chain relied on at its first step is now gone *)
  ignore (Pag.apply_edits pag (incident_deletions pag node));
  check Alcotest.bool "witness fails validation post-delete (no crash)" false
    (Witness.validate pag ~query:node ~site steps)

let () =
  Alcotest.run "incr"
    [
      ( "pag",
        [
          Alcotest.test_case "delete then re-add roundtrip" `Quick test_delete_readd;
          Alcotest.test_case "view matches accessors after bursts" `Quick test_view_consistency;
        ] );
      ( "engines",
        [
          Alcotest.test_case "incremental matches rebuild, retention > 0" `Quick
            test_incremental_matches_rebuild;
        ] );
      ( "persistence",
        [ Alcotest.test_case "stale cache rejected on hash mismatch" `Quick test_stale_cache_rejected ] );
      ( "witness",
        [ Alcotest.test_case "deleted-edge witness fails, not crashes" `Quick test_witness_after_delete ] );
    ]

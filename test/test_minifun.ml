(* MiniFun frontend: pretty->parse round-trip (the QCheck property the
   MiniJava frontend already pins, for the second surface language),
   annotation scanning in comments, and closure-conversion smoke tests
   against the lowering contract. *)

module Mf_ast = Pts_frontend_minifun.Mf_ast
module Mf_parser = Pts_frontend_minifun.Mf_parser
module Mf_pretty = Pts_frontend_minifun.Mf_pretty

let check = Alcotest.check

(* ------------------------ random AST generator ----------------------- *)

let dummy = Loc.dummy_pos
let mk desc = { Mf_ast.desc; pos = dummy }

let gen_ident = QCheck.Gen.oneofl [ "a"; "b"; "c"; "f"; "g"; "acc" ]

(* Only shapes the printer guarantees to round-trip: non-negative int
   literals (negative ones re-parse as [Neg]) and strings over the
   escaped-or-safe charset. *)
let gen_leaf =
  let open QCheck.Gen in
  oneof
    [
      return (mk Mf_ast.Unit);
      map (fun n -> mk (Mf_ast.Int_lit n)) (int_bound 1000);
      map (fun b -> mk (Mf_ast.Bool_lit b)) bool;
      map (fun s -> mk (Mf_ast.Str_lit s)) (string_size ~gen:(char_range 'a' 'z') (int_bound 6));
      map (fun x -> mk (Mf_ast.Var x)) gen_ident;
    ]

let gen_binop =
  QCheck.Gen.oneofl
    [
      Mf_ast.Add; Mf_ast.Sub; Mf_ast.Mul; Mf_ast.Div; Mf_ast.Mod; Mf_ast.Eq; Mf_ast.Neq;
      Mf_ast.Lt; Mf_ast.Gt; Mf_ast.Le; Mf_ast.Ge; Mf_ast.And; Mf_ast.Or;
    ]

let gen_expr =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then gen_leaf
         else
           let sub = self (n / 2) in
           oneof
             [
               gen_leaf;
               (let* fname = opt gen_ident in
                let* params = list_size (int_range 0 2) gen_ident in
                let* body = sub in
                return (mk (Mf_ast.Fun { fname; params; body })));
               (let* f = sub in
                let* args = list_size (int_range 0 2) sub in
                return (mk (Mf_ast.App (f, args))));
               (let* name = gen_ident in
                let* rhs = sub in
                let* body = sub in
                return (mk (Mf_ast.Let { name; rhs; body })));
               (let* a = sub in
                let* b = sub in
                return (mk (Mf_ast.Seq (a, b))));
               map (fun e -> mk (Mf_ast.Ref e)) sub;
               map (fun e -> mk (Mf_ast.Deref e)) sub;
               (let* r = sub in
                let* v = sub in
                return (mk (Mf_ast.Setref (r, v))));
               map (fun e -> mk (Mf_ast.Ok_ e)) sub;
               map (fun e -> mk (Mf_ast.Err_ e)) sub;
               (let* scrut = sub in
                let* ok_name = gen_ident in
                let* ok_body = sub in
                let* err_name = gen_ident in
                let* err_body = sub in
                return (mk (Mf_ast.Match { scrut; ok_name; ok_body; err_name; err_body })));
               (let* c = sub in
                let* t = sub in
                let* e = sub in
                return (mk (Mf_ast.If (c, t, e))));
               (let* op = gen_binop in
                let* a = sub in
                let* b = sub in
                return (mk (Mf_ast.Binop (op, a, b))));
               map (fun e -> mk (Mf_ast.Not e)) sub;
               map (fun e -> mk (Mf_ast.Neg e)) sub;
             ])

let gen_program =
  let open QCheck.Gen in
  list_size (int_range 1 4)
    (let* d_name = gen_ident in
     let* d_rhs = gen_expr in
     return { Mf_ast.d_name; d_rhs; d_pos = dummy })

let program_arbitrary = QCheck.make ~print:Mf_pretty.program_to_string gen_program

let prop_roundtrip =
  QCheck.Test.make ~name:"minifun pretty->parse roundtrip" ~count:200 program_arbitrary
    (fun ast ->
      let printed = Mf_pretty.program_to_string ast in
      match Mf_parser.parse_program printed with
      | ast' -> Mf_ast.equal_program ast ast'
      | exception Mf_parser.Error (msg, pos) ->
        QCheck.Test.fail_reportf "printed program does not reparse (%d:%d %s):\n%s" pos.Loc.line
          pos.Loc.col msg printed)

let test_roundtrip_committed () =
  (* the committed pair suite's MiniFun halves round-trip too *)
  List.iter
    (fun name ->
      let p = Pts_workload.Suite.pair name in
      let ast = Mf_parser.parse_program p.Pts_workload.Genpair.p_minifun in
      let printed = Mf_pretty.program_to_string ast in
      check Alcotest.bool name true (Mf_ast.equal_program ast (Mf_parser.parse_program printed)))
    Pts_workload.Suite.pair_names

(* -------------------------- annotations ------------------------------ *)

let test_annotations () =
  let src =
    "let secret = fun secret () -> ref 0;; // @taint-source\n\
     let send = fun send (x) -> x;; // @taint-sink\n\
     /* a block comment, no at-sign */\n\
     let main = fun main () -> send(secret());;\n"
  in
  let anns = Frontend.annotations ~lang:Loc.Minifun src in
  check Alcotest.int "two annotations" 2 (List.length anns);
  let texts = List.map fst anns and lines = List.map (fun (_, p) -> p.Loc.line) anns in
  check Alcotest.bool "source annotation" true
    (List.exists (fun t -> t = "@taint-source") texts);
  check Alcotest.bool "sink annotation" true (List.exists (fun t -> t = "@taint-sink") texts);
  check (Alcotest.list Alcotest.int) "lines" [ 1; 2 ] lines;
  (* and the taint spec picks the lines up through the facade *)
  let spec = Pts_taint.Spec.of_source ~lang:Loc.Minifun src in
  let pl = Pts_clients.Pipeline.of_source ~lang:Loc.Minifun src in
  check Alcotest.bool "source site on line 1" true
    (Pts_taint.Spec.source_sites spec pl.Pts_clients.Pipeline.prog <> [])

let test_comments_never_raise () =
  List.iter
    (fun src -> ignore (Frontend.comments ~lang:Loc.Minifun src))
    [ ""; "// unterminated"; "(* unterminated"; "\"open string"; "let x = 1;;" ]

(* ------------------------- lowering smoke ---------------------------- *)

let compile_mf src = Frontend.compile ~lang:Loc.Minifun src

let test_closure_classes () =
  let prog =
    compile_mf
      "let make = fun make (s) -> (let cell = ref s in fun bump (by) -> (cell := !cell + by; !cell));;\n\
       let main = fun main () -> (let inc = make(1) in inc(2));;"
  in
  check Alcotest.string "language" "minifun" (Loc.lang_name prog.Ir.lang);
  let has_class n = Types.find_class prog.Ir.ctable n <> None in
  check Alcotest.bool "arity-1 base class" true (has_class "$Fun$1");
  check Alcotest.bool "ref cell class" true (has_class "$Ref");
  (* the closure for [bump] captures [cell]: its class has one field *)
  let bump_cls =
    Array.to_list prog.Ir.methods
    |> List.find_map (fun (m : Ir.meth) ->
           if m.Ir.pretty = "$Clo1$bump.apply" then
             Types.class_of_typ prog.Ir.ctable m.Ir.var_types.(Option.get m.Ir.this_var)
           else None)
  in
  match bump_cls with
  | None -> Alcotest.fail "no $Clo1$bump.apply method"
  | Some cls ->
    let ct = prog.Ir.ctable in
    let captured = ref 0 in
    for i = 0 to Types.field_count ct - 1 do
      if Types.class_name ct (Types.field_info ct i).Types.fld_class = Types.class_name ct cls then
        incr captured
    done;
    check Alcotest.int "one captured field" 1 !captured

let test_apply_dispatches () =
  (* two same-arity closures reachable from one apply site: the Andersen
     call graph must include both targets *)
  let pl =
    Pts_clients.Pipeline.of_source ~lang:Loc.Minifun
      "let ida = fun ida (x) -> x;;\n\
       let idb = fun idb (y) -> y;;\n\
       let main = fun main () -> (let f = if 1 > 0 then ida else idb in f(ref 0));;"
  in
  let prog = pl.Pts_clients.Pipeline.prog in
  let reach (m : Ir.meth) =
    Pts_andersen.Solver.is_reachable pl.Pts_clients.Pipeline.solver m.Ir.id
  in
  let applies =
    Array.to_list prog.Ir.methods
    |> List.filter (fun (m : Ir.meth) ->
           reach m
           && m.Ir.msig.Types.ms_name = "apply"
           && (m.Ir.pretty = "$Clo0$ida.apply" || m.Ir.pretty = "$Clo1$idb.apply"))
  in
  check Alcotest.int "both closures' apply reachable" 2 (List.length applies)

let test_lower_errors () =
  let fails src =
    match compile_mf src with
    | exception Frontend.Error _ -> ()
    | _ -> Alcotest.fail ("should not lower: " ^ src)
  in
  fails "let main = fun main () -> nope;;" (* unbound variable *);
  fails "let main = fun main () -> (let r = ref 0 in 1 + whoops);;" (* unbound in operand *)

let () =
  Alcotest.run "minifun"
    [
      ( "pretty",
        [
          QCheck_alcotest.to_alcotest ~long:false prop_roundtrip;
          Alcotest.test_case "committed pairs roundtrip" `Quick test_roundtrip_committed;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "taint annotations" `Quick test_annotations;
          Alcotest.test_case "comments never raise" `Quick test_comments_never_raise;
        ] );
      ( "lower",
        [
          Alcotest.test_case "closure classes" `Quick test_closure_classes;
          Alcotest.test_case "apply dispatches" `Quick test_apply_dispatches;
          Alcotest.test_case "errors" `Quick test_lower_errors;
        ] );
    ]

(* PAG construction, classification, indices and call-graph tests. *)

let check = Alcotest.check

let pipeline src = Pts_clients.Pipeline.of_source src

let fig2 = lazy (pipeline Pts_workload.Figure2.source)

let test_edge_counts_consistent () =
  let pl = Lazy.force fig2 in
  let pag = pl.Pts_clients.Pipeline.pag in
  let c = Pag.edge_counts pag in
  check Alcotest.bool "has new edges" true (c.Pag.n_new > 0);
  check Alcotest.bool "has entry edges" true (c.Pag.n_entry > 0);
  check Alcotest.bool "has loads and stores" true (c.Pag.n_load > 0 && c.Pag.n_store > 0);
  (* the alloc table and new-edge count agree: every reachable alloc has
     exactly one new edge *)
  let reachable_allocs = ref 0 in
  let prog = pl.Pts_clients.Pipeline.prog in
  Array.iteri
    (fun site _ -> if Pag.new_out pag (Pag.obj_node pag site) <> [] then incr reachable_allocs)
    prog.Ir.allocs;
  check Alcotest.int "one new edge per reachable alloc" !reachable_allocs c.Pag.n_new

let test_unique_new_destination () =
  let pl = Lazy.force fig2 in
  let pag = pl.Pts_clients.Pipeline.pag in
  for n = 0 to Pag.node_count pag - 1 do
    if Pag.is_obj pag n then
      check Alcotest.bool "at most one new destination" true (List.length (Pag.new_out pag n) <= 1)
  done

let test_adjacency_symmetry () =
  let pl = Lazy.force fig2 in
  let pag = pl.Pts_clients.Pipeline.pag in
  for v = 0 to Pag.node_count pag - 1 do
    List.iter
      (fun x -> check Alcotest.bool "assign symmetric" true (List.mem v (Pag.assign_out pag x)))
      (Pag.assign_in pag v);
    List.iter
      (fun (f, b) ->
        check Alcotest.bool "load symmetric" true (List.mem (f, v) (Pag.load_out pag b)))
      (Pag.load_in pag v);
    List.iter
      (fun (f, s) ->
        check Alcotest.bool "store symmetric" true (List.mem (f, v) (Pag.store_out pag s)))
      (Pag.store_in pag v);
    List.iter
      (fun (i, a) ->
        check Alcotest.bool "entry symmetric" true (List.mem (i, v) (Pag.entry_out pag a)))
      (Pag.entry_in pag v);
    List.iter
      (fun (i, r) ->
        check Alcotest.bool "exit symmetric" true (List.mem (i, v) (Pag.exit_out pag r)))
      (Pag.exit_in pag v)
  done

let test_field_indices () =
  let pl = Lazy.force fig2 in
  let pag = pl.Pts_clients.Pipeline.pag in
  let prog = pl.Pts_clients.Pipeline.prog in
  let arr = (Types.arr_field prog.Ir.ctable).Types.fld_id in
  let loads = Pag.loads_of_field pag arr in
  let stores = Pag.stores_of_field pag arr in
  check Alcotest.bool "arr loads exist" true (loads <> []);
  check Alcotest.bool "arr stores exist" true (stores <> []);
  List.iter
    (fun (base, dst) ->
      check Alcotest.bool "load index consistent" true (List.mem (arr, dst) (Pag.load_out pag base)))
    loads;
  List.iter
    (fun (base, src) ->
      check Alcotest.bool "store index consistent" true (List.mem (arr, src) (Pag.store_in pag base)))
    stores

let test_classification_flags () =
  let pl = Lazy.force fig2 in
  let pag = pl.Pts_clients.Pipeline.pag in
  for v = 0 to Pag.node_count pag - 1 do
    let expect_local =
      Pag.new_in pag v <> [] || Pag.new_out pag v <> [] || Pag.assign_in pag v <> []
      || Pag.assign_out pag v <> [] || Pag.load_in pag v <> [] || Pag.load_out pag v <> []
      || Pag.store_in pag v <> [] || Pag.store_out pag v <> []
    in
    check Alcotest.bool "local flag" expect_local (Pag.has_local_edges pag v);
    let expect_gin =
      Pag.global_in pag v <> [] || Pag.entry_in pag v <> [] || Pag.exit_in pag v <> []
    in
    check Alcotest.bool "global-in flag" expect_gin (Pag.has_global_in pag v)
  done

let test_node_naming () =
  let pl = Lazy.force fig2 in
  let pag = pl.Pts_clients.Pipeline.pag in
  let s1 = Pts_workload.Figure2.s1 pl in
  check Alcotest.string "s1 name" "Main.main::s1" (Pag.node_name pag s1);
  match Pag.kind pag s1 with
  | Pag.Local _ -> ()
  | _ -> Alcotest.fail "s1 should be a local"

let test_locality_metric () =
  let pl = Lazy.force fig2 in
  let pag = pl.Pts_clients.Pipeline.pag in
  let l = Pag.locality pag in
  check Alcotest.bool "locality in (0,1)" true (l > 0.0 && l < 1.0)

let test_frozen_rejects_mutation () =
  let pl = Lazy.force fig2 in
  let pag = pl.Pts_clients.Pipeline.pag in
  match Pag.add_assign pag ~src:0 ~dst:1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "frozen PAG accepted an edge"

(* The packed CSR slabs must carry exactly the edges the counters report,
   and the reconstructed list views must agree with them node by node. *)
let test_packed_csr_consistency () =
  let pl = Lazy.force fig2 in
  let pag = pl.Pts_clients.Pipeline.pag in
  let p = Pag.packed pag in
  let c = Pag.edge_counts pag in
  let len (s : Pag.slab) = Array.length s.Pag.dst in
  check Alcotest.int "new slab" c.Pag.n_new (len p.Pag.p_new_in);
  check Alcotest.int "new slabs symmetric" (len p.Pag.p_new_in) (len p.Pag.p_new_out);
  check Alcotest.int "assign slab" c.Pag.n_assign (len p.Pag.p_assign_in);
  check Alcotest.int "global slab" c.Pag.n_assign_global (len p.Pag.p_global_out);
  check Alcotest.int "load slab" c.Pag.n_load (len p.Pag.p_load_in);
  check Alcotest.int "store slab" c.Pag.n_store (len p.Pag.p_store_out);
  check Alcotest.int "entry slab" c.Pag.n_entry (len p.Pag.p_entry_in);
  check Alcotest.int "exit slab" c.Pag.n_exit (len p.Pag.p_exit_out);
  for n = 0 to Pag.node_count pag - 1 do
    check Alcotest.int "new_in degree" (List.length (Pag.new_in pag n)) (Pag.degree p.Pag.p_new_in n);
    check Alcotest.int "load_out degree"
      (List.length (Pag.load_out pag n))
      (Pag.degree p.Pag.p_load_out n);
    check Alcotest.int "entry_out degree"
      (List.length (Pag.entry_out pag n))
      (Pag.degree p.Pag.p_entry_out n)
  done

(* --------------------------- Call graph ----------------------------- *)

let test_callgraph_virtual_dispatch () =
  let pl =
    pipeline
      {|
class A { int m() { return 1; } }
class B extends A { int m() { return 2; } }
class Main {
  static void main() {
    A x = new A();
    int r1 = x.m();
    A y = new B();
    int r2 = y.m();
  }
}|}
  in
  let prog = pl.Pts_clients.Pipeline.prog in
  let cg = pl.Pts_clients.Pipeline.callgraph in
  let name mid = prog.Ir.methods.(mid).Ir.pretty in
  (* collect targets of the two interesting call sites *)
  let targets = ref [] in
  Callgraph.iter_edges cg (fun ~site:_ ~caller ~target ->
      if name caller = "Main.main" && (name target = "A.m" || name target = "B.m") then
        targets := name target :: !targets);
  let targets = List.sort_uniq compare !targets in
  check (Alcotest.list Alcotest.string) "precise dispatch" [ "A.m"; "B.m" ] targets

let test_callgraph_no_spurious_dispatch () =
  (* receiver only ever holds B, so A.m must not be a target *)
  let pl =
    pipeline
      {|
class A { int m() { return 1; } }
class B extends A { int m() { return 2; } }
class Main { static void main() { A y = new B(); int r = y.m(); } }|}
  in
  let prog = pl.Pts_clients.Pipeline.prog in
  let cg = pl.Pts_clients.Pipeline.callgraph in
  Callgraph.iter_edges cg (fun ~site:_ ~caller:_ ~target ->
      if prog.Ir.methods.(target).Ir.pretty = "A.m" then Alcotest.fail "spurious A.m target")

let test_recursion_marked () =
  let pl =
    pipeline
      {|
class R {
  Object walk(Object x, int n) { if (n == 0) { return x; } return this.walk(x, n - 1); }
}
class Main { static void main() { R r = new R(); Object o = r.walk(new Object(), 3); } }|}
  in
  let pag = pl.Pts_clients.Pipeline.pag in
  let prog = pl.Pts_clients.Pipeline.prog in
  (* find the recursive call site inside walk *)
  let walk = Array.to_list prog.Ir.methods |> List.find (fun m -> m.Ir.pretty = "R.walk") in
  let rec_sites =
    List.filter_map (function Ir.Call { site; _ } -> Some site | _ -> None) walk.Ir.body
  in
  check Alcotest.bool "walk calls" true (rec_sites <> []);
  check Alcotest.bool "recursive site marked" true
    (List.exists (fun s -> Pag.is_recursive_site pag s) rec_sites)

let test_mutual_recursion_marked () =
  let pl =
    pipeline
      {|
class M {
  Object ping(Object x, int n) { if (n == 0) { return x; } return this.pong(x, n - 1); }
  Object pong(Object x, int n) { return this.ping(x, n); }
}
class Main { static void main() { M m = new M(); Object o = m.ping(new Object(), 2); } }|}
  in
  let pag = pl.Pts_clients.Pipeline.pag in
  let prog = pl.Pts_clients.Pipeline.prog in
  let sites_of name =
    let m = Array.to_list prog.Ir.methods |> List.find (fun m -> m.Ir.pretty = name) in
    List.filter_map (function Ir.Call { site; _ } -> Some site | _ -> None) m.Ir.body
  in
  check Alcotest.bool "ping->pong recursive" true
    (List.exists (Pag.is_recursive_site pag) (sites_of "M.ping"));
  check Alcotest.bool "pong->ping recursive" true
    (List.exists (Pag.is_recursive_site pag) (sites_of "M.pong"))

let test_nonrecursive_not_marked () =
  let pl = Lazy.force fig2 in
  let pag = pl.Pts_clients.Pipeline.pag in
  let prog = pl.Pts_clients.Pipeline.prog in
  Array.iter
    (fun (cs : Ir.call_site) ->
      check Alcotest.bool "figure2 has no recursion" false (Pag.is_recursive_site pag cs.Ir.cs_id))
    prog.Ir.calls

let () =
  Alcotest.run "pag"
    [
      ( "structure",
        [
          Alcotest.test_case "edge counts" `Quick test_edge_counts_consistent;
          Alcotest.test_case "unique new destination" `Quick test_unique_new_destination;
          Alcotest.test_case "adjacency symmetry" `Quick test_adjacency_symmetry;
          Alcotest.test_case "field indices" `Quick test_field_indices;
          Alcotest.test_case "classification flags" `Quick test_classification_flags;
          Alcotest.test_case "node naming" `Quick test_node_naming;
          Alcotest.test_case "locality" `Quick test_locality_metric;
          Alcotest.test_case "frozen" `Quick test_frozen_rejects_mutation;
          Alcotest.test_case "packed CSR" `Quick test_packed_csr_consistency;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "virtual dispatch" `Quick test_callgraph_virtual_dispatch;
          Alcotest.test_case "no spurious dispatch" `Quick test_callgraph_no_spurious_dispatch;
          Alcotest.test_case "recursion marked" `Quick test_recursion_marked;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion_marked;
          Alcotest.test_case "non-recursive clean" `Quick test_nonrecursive_not_marked;
        ] );
    ]

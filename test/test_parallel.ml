(* Determinism and equivalence of the parallel batch scheduler (Parsolve):
   sharding a batch across domains, at any jobs/rounds setting, must
   return exactly the sequential engine's answers; merging per-domain
   DYNSUM caches must never change an answer; traces written through the
   shared writer must interleave whole lines only.

   All runs use a budget generous enough that every query resolves: a
   resolved demand query is the exact CFL answer and hence independent of
   sharding and cache warmth, which is what makes cross-jobs equality a
   deterministic property rather than a flaky one. *)

module Hstack = Pts_util.Hstack
module Client = Pts_clients.Client
module Pipeline = Pts_clients.Pipeline
module Suite = Pts_workload.Suite

let conf = Engine.conf ~budget_limit:10_000_000 ~max_field_depth:4 ()

let pl = lazy (Suite.pipeline "jack")

let queries = lazy (Pts_clients.Safecast.queries (Lazy.force pl))

let qarr () =
  Array.of_list (List.map (fun q -> Parsolve.query q.Client.q_node) (Lazy.force queries))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------- parallel == sequential, per engine ------------------- *)

let test_engine_jobs_equal engine_name () =
  let pl = Lazy.force pl in
  let seq = Engine.create ~conf engine_name pl.Pipeline.pag in
  let expected =
    List.map (fun q -> seq.Engine.points_to q.Client.q_node) (Lazy.force queries)
  in
  List.iter
    (fun jobs ->
      let r = Parsolve.run ~conf ~jobs ~engine:engine_name pl.Pipeline.pag (qarr ()) in
      List.iteri
        (fun i expect ->
          if not (Query.equal_outcome expect r.Parsolve.outcomes.(i)) then
            Alcotest.failf "%s: query %d differs from sequential at jobs=%d" engine_name i jobs)
        expected)
    [ 1; 2; 4 ]

let test_rounds_equal () =
  let pl = Lazy.force pl in
  let seq = Engine.create ~conf "dynsum" pl.Pipeline.pag in
  let expected =
    List.map (fun q -> seq.Engine.points_to q.Client.q_node) (Lazy.force queries)
  in
  let r = Parsolve.run ~conf ~jobs:2 ~rounds:3 ~engine:"dynsum" pl.Pipeline.pag (qarr ()) in
  Alcotest.(check bool) "summaries were merged" true (r.Parsolve.merged_summaries > 0);
  Alcotest.(check int) "one report per (round, domain)" 6 (List.length r.Parsolve.reports);
  List.iteri
    (fun i expect ->
      if not (Query.equal_outcome expect r.Parsolve.outcomes.(i)) then
        Alcotest.failf "dynsum: query %d differs from sequential at jobs=2 rounds=3" i)
    expected

(* --------------------- cache merging preserves answers -------------------- *)

let test_snapshot_merge_preserves_answers () =
  let pl = Lazy.force pl in
  let pag = pl.Pipeline.pag in
  let qs = Lazy.force queries in
  let half1 = List.filteri (fun i _ -> i mod 2 = 0) qs in
  let half2 = List.filteri (fun i _ -> i mod 2 = 1) qs in
  let d1 = Dynsum.create ~conf pag and d2 = Dynsum.create ~conf pag in
  List.iter (fun q -> ignore (Dynsum.points_to d1 q.Client.q_node)) half1;
  List.iter (fun q -> ignore (Dynsum.points_to d2 q.Client.q_node)) half2;
  let merged = Dynsum.snapshot_union [ Dynsum.snapshot d1; Dynsum.snapshot d2 ] in
  Alcotest.(check bool) "union is non-empty" true (Dynsum.snapshot_length merged > 0);
  let seeded = Dynsum.create ~conf pag in
  Alcotest.(check bool) "absorb adds entries" true (Dynsum.absorb seeded merged > 0);
  let fresh = Dynsum.create ~conf pag in
  List.iter
    (fun q ->
      let a = Dynsum.points_to seeded q.Client.q_node in
      let b = Dynsum.points_to fresh q.Client.q_node in
      if not (Query.equal_outcome a b) then
        Alcotest.failf "merged cache changed the answer for %s" q.Client.q_desc)
    qs

let test_snapshot_union_is_idempotent () =
  let pl = Lazy.force pl in
  let d = Dynsum.create ~conf pl.Pipeline.pag in
  List.iter (fun q -> ignore (Dynsum.points_to d q.Client.q_node)) (Lazy.force queries);
  let s = Dynsum.snapshot d in
  Alcotest.(check int) "union with itself adds nothing"
    (Dynsum.snapshot_length (Dynsum.snapshot_union [ s ]))
    (Dynsum.snapshot_length (Dynsum.snapshot_union [ s; s; s ]))

(* ------------------------- trace line integrity --------------------------- *)

let test_parallel_trace_whole_lines () =
  let pl = Lazy.force pl in
  let path = Filename.temp_file "ptsto_trace" ".jsonl" in
  let w = Trace.writer_to_file path in
  (* tiny flush threshold forces many buffer handoffs to the shared writer *)
  ignore
    (Parsolve.run ~conf ~trace_writer:w ~jobs:4 ~engine:"dynsum" pl.Pipeline.pag (qarr ()));
  Trace.writer_close w;
  let ic = open_in path in
  let lines = ref 0 and starts = ref 0 and ends = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       if
         not
           (String.length line > 1
           && line.[0] = '{'
           && line.[String.length line - 1] = '}'
           && contains line "\"ev\":")
       then Alcotest.failf "mangled trace line %d: %s" !lines line;
       if contains line "\"ev\":\"query_start\"" then incr starts;
       if contains line "\"ev\":\"query_end\"" then incr ends
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "one query_start per query" (Array.length (qarr ())) !starts;
  Alcotest.(check int) "one query_end per query" (Array.length (qarr ())) !ends

(* ------------------------ hash-cons domain-locality ------------------------ *)

let test_hstack_rebase_across_domains () =
  let foreign = Domain.join (Domain.spawn (fun () -> Hstack.of_list [ 3; 1; 4; 1 ])) in
  (* reading a foreign stack is fine; rebase re-interns it locally *)
  let r = Hstack.rebase foreign in
  Alcotest.(check (list int)) "symbols survive the crossing" [ 3; 1; 4; 1 ] (Hstack.to_list r);
  Alcotest.(check bool) "rebased stack is hash-consed in this domain" true
    (Hstack.equal r (Hstack.of_list [ 3; 1; 4; 1 ]))

(* ------------------------------ validations ------------------------------- *)

let test_run_validations () =
  let pl = Lazy.force pl in
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Parsolve.run: jobs must be >= 1") (fun () ->
      ignore (Parsolve.run ~jobs:0 ~engine:"dynsum" pl.Pipeline.pag [||]));
  Alcotest.check_raises "rounds must be positive"
    (Invalid_argument "Parsolve.run: rounds must be >= 1") (fun () ->
      ignore (Parsolve.run ~rounds:0 ~engine:"dynsum" pl.Pipeline.pag [||]));
  (match Parsolve.run ~engine:"nosuch" pl.Pipeline.pag [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown engine accepted");
  let unfrozen = Pag.create pl.Pipeline.prog in
  Alcotest.check_raises "unfrozen PAG rejected"
    (Invalid_argument "Pag.packed: call Pag.freeze first") (fun () ->
      ignore (Parsolve.run ~engine:"dynsum" unfrozen [||]))

let () =
  Alcotest.run "parallel"
    [
      ( "equivalence",
        List.map
          (fun name ->
            Alcotest.test_case (name ^ " jobs 1/2/4") `Quick (test_engine_jobs_equal name))
          (Engine.names ())
        @ [ Alcotest.test_case "dynsum jobs=2 rounds=3" `Quick test_rounds_equal ] );
      ( "snapshots",
        [
          Alcotest.test_case "merge preserves answers" `Quick test_snapshot_merge_preserves_answers;
          Alcotest.test_case "union idempotent" `Quick test_snapshot_union_is_idempotent;
        ] );
      ("trace", [ Alcotest.test_case "whole lines only" `Quick test_parallel_trace_whole_lines ]);
      ("hstack", [ Alcotest.test_case "rebase across domains" `Quick test_hstack_rebase_across_domains ]);
      ("validation", [ Alcotest.test_case "argument checks" `Quick test_run_validations ]);
    ]
